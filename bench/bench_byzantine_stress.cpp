// T4 — Verify under live Byzantine behavior.
//
// Claim under test (Theorems 43/112): Verify terminates — with bounded
// degradation — under every adversary the model admits: f silent
// processes, f vote-flipping colluders, and an erasing/denying writer.
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "byzantine/behaviors.hpp"
#include "core/system.hpp"
#include "core/verifiable_register.hpp"

namespace {

using namespace swsig;
using Reg = core::VerifiableRegister<std::uint64_t>;
using bench::max_f;

constexpr int kIters = 200;

std::set<int> last_f_pids(int n, int f) {
  std::set<int> pids;
  for (int pid = n; pid > n - f; --pid) pids.insert(pid);
  return pids;
}

double fault_free(int n, int f) {
  core::FreeSystem<Reg> sys(Reg::Config{n, f, 0, false});
  sys.as(1, [](Reg& r) {
    r.write(42);
    r.sign(42);
  });
  return sys.as(2, [&](Reg& r) {
    return bench::sample_latency(kIters, [&] { r.verify(42); }).median();
  });
}

// f processes crash: their helpers never run.
double silent(int n, int f) {
  core::FreeSystem<Reg> sys(Reg::Config{n, f, 0, false},
                            core::HelperOptions{.exclude = last_f_pids(n, f)});
  sys.as(1, [](Reg& r) {
    r.write(42);
    r.sign(42);
  });
  return sys.as(2, [&](Reg& r) {
    return bench::sample_latency(kIters, [&] { r.verify(42); }).median();
  });
}

// f colluders alternate between witnessing and denying the target value.
double vote_flip(int n, int f) {
  const auto byz = last_f_pids(n, f);
  core::FreeSystem<Reg> sys(Reg::Config{n, f, 0, false},
                            core::HelperOptions{.exclude = byz});
  for (int b : byz) {
    sys.spawn(b, [&sys](std::stop_token st) {
      byzantine::VoteFlipHelper<Reg> flipper(sys.alg(), 42);
      while (!st.stop_requested()) {
        if (!flipper.round()) std::this_thread::yield();
      }
    });
  }
  sys.as(1, [](Reg& r) {
    r.write(42);
    r.sign(42);
  });
  return sys.as(2, [&](Reg& r) {
    return bench::sample_latency(kIters, [&] { r.verify(42); }).median();
  });
}

// The writer erases everything after signing and denies from then on.
double eraser_writer(int n, int f) {
  core::FreeSystem<Reg> sys(Reg::Config{n, f, 0, false},
                            core::HelperOptions{.exclude = {1}});
  std::atomic<bool> erased{false};
  sys.spawn(1, [&](std::stop_token st) {
    // Honest helper until the sign lands, then erase + deny.
    byzantine::DenyingHelper<Reg> denier(sys.alg());
    while (!st.stop_requested()) {
      if (!erased.load()) {
        if (!sys.alg().help_round()) std::this_thread::yield();
      } else {
        if (!denier.round()) std::this_thread::yield();
      }
    }
  });
  sys.as(1, [](Reg& r) {
    r.write(42);
    r.sign(42);
  });
  // Ensure the value propagated to correct witnesses once.
  sys.as(2, [](Reg& r) { r.verify(42); });
  sys.as(1, [](Reg& r) { byzantine::erase_verifiable_registers(r); });
  erased = true;
  return sys.as(2, [&](Reg& r) {
    return bench::sample_latency(kIters, [&] { r.verify(42); }).median();
  });
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter report(argc, argv, "byzantine_stress");
  bench::heading(
      "T4 — Verify(42) median us under adversaries (value signed; relay "
      "must hold in every column)");
  util::Table table({"n", "f", "fault-free", "f silent", "f vote-flippers",
                     "eraser writer"});
  for (int n : {4, 7, 10, 13}) {
    const int f = max_f(n);
    const double ff = fault_free(n, f);
    const double si = silent(n, f);
    const double vf = vote_flip(n, f);
    const double er = eraser_writer(n, f);
    table.add_row({util::Table::num(n), util::Table::num(f),
                   util::Table::num(ff), util::Table::num(si),
                   util::Table::num(vf), util::Table::num(er)});
    const std::string tag = "byz.n" + std::to_string(n);
    report.metric(tag + ".fault_free_us", ff);
    report.metric(tag + ".silent_us", si);
    report.metric(tag + ".vote_flip_us", vf);
    report.metric(tag + ".eraser_us", er);
  }
  table.print();
  return 0;
}
