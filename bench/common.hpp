// Shared helpers for the benchmark binaries. Every bench prints markdown
// tables whose shape matches the per-experiment index in EXPERIMENTS.md,
// and (via bench/baseline.hpp) dumps machine-readable metrics with --json.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace swsig::bench {

inline double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Times fn() once, in microseconds.
template <typename F>
double time_us(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  std::forward<F>(fn)();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

// Per-iteration latency samples. Runs an untimed warmup batch first so
// cold-start effects (cache misses, lazy page faults, branch training) do
// not skew the sampled distribution; warmup < 0 picks a default of 10% of
// the iteration count (at least 8).
template <typename F>
util::Samples sample_latency(int iterations, F&& fn, int warmup = -1) {
  if (warmup < 0) warmup = std::max(8, iterations / 10);
  for (int i = 0; i < warmup; ++i) fn();
  util::Samples samples;
  for (int i = 0; i < iterations; ++i) samples.add(time_us(fn));
  return samples;
}

// Summary of a latency distribution: mean with tail percentiles, so tables
// report p50/p99 alongside the mean instead of a bare median.
struct LatencySummary {
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

inline LatencySummary summarize(const util::Samples& samples) {
  return {samples.mean(), samples.percentile(50.0), samples.percentile(99.0)};
}

// "mean/p50/p99" cell for latency tables.
inline std::string latency_cell(const LatencySummary& s, int precision = 2) {
  return util::Table::num(s.mean, precision) + "/" +
         util::Table::num(s.p50, precision) + "/" +
         util::Table::num(s.p99, precision);
}

// Largest f the algorithms tolerate at this n (n > 3f).
inline int max_f(int n) { return (n - 1) / 3; }

inline void heading(const std::string& title) {
  std::cout << "\n### " << title << "\n\n";
}

}  // namespace swsig::bench
