// Shared helpers for the benchmark binaries. Every bench prints markdown
// tables whose shape matches the per-experiment index in EXPERIMENTS.md.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace swsig::bench {

inline double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Times fn() once, in microseconds.
template <typename F>
double time_us(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  std::forward<F>(fn)();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

// Per-iteration latency samples.
template <typename F>
util::Samples sample_latency(int iterations, F&& fn) {
  util::Samples samples;
  for (int i = 0; i < iterations; ++i) samples.add(time_us(fn));
  return samples;
}

// Largest f the algorithms tolerate at this n (n > 3f).
inline int max_f(int n) { return (n - 1) / 3; }

inline void heading(const std::string& title) {
  std::cout << "\n### " << title << "\n\n";
}

}  // namespace swsig::bench
