// T3 — Read cost vs n across the three register types, plus the register
// substrate fast-path comparison.
//
// Claims under test: a verifiable-register Read is one register read
// (flat); an authenticated Read embeds a full Verify (§7.1), so it pays
// the quorum cost; a sticky Read needs an n−f witness quorum. The first
// section isolates the substrate: the free-mode read fast path (seqlock
// storage + devirtualized step gate + sharded metering) against the
// pre-optimization baseline (mutex storage + virtual StepController::step),
// which Space::Dispatch::kVirtual and registers::MutexStorage reproduce
// exactly.
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "core/authenticated_register.hpp"
#include "core/sticky_register.hpp"
#include "core/system.hpp"
#include "core/verifiable_register.hpp"

namespace {

using namespace swsig;
using bench::max_f;

constexpr int kIters = 300;
constexpr std::uint64_t kSingleReads = 2'000'000;
constexpr std::uint64_t kMtReadsPerThread = 1'000'000;
constexpr int kMtThreads = 4;

// The seed's register read path, reproduced verbatim as the baseline:
// a virtual StepController::step() bumping one shared atomic counter, a
// shared-atomic access meter, and a per-register mutex (this was
// Space::before_read + Swmr<T>::read before the fast-path rework; the
// ROADMAP's "one mutex + StepController::step()" bullet). Kept as a
// self-contained replica so the committed before/after JSON dumps keep
// measuring the same baseline as the substrate evolves.
class SeedGate {
 public:
  virtual ~SeedGate() = default;
  virtual void step() = 0;  // dynamic dispatch, as StepController::step was
  void before_read() {
    step();
    reads_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> reads_{0};
};

class SeedFreeGate final : public SeedGate {
 public:
  void step() override { count_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> count_{0};
};

// Returned through the base pointer so the step() call cannot be
// devirtualized, exactly like Space's StepController* in the seed.
inline SeedGate& seed_gate() {
  static SeedFreeGate gate;
  return gate;
}

template <typename T>
class SeedSwmr {
 public:
  SeedSwmr(SeedGate& gate, T initial) : gate_(&gate), value_(initial) {}
  T read() const {
    gate_->before_read();
    std::scoped_lock lock(mu_);
    return value_;
  }

 private:
  SeedGate* gate_;
  mutable std::mutex mu_;
  T value_;
};

// ns per read, single thread hammering one register.
template <typename Reg>
double single_thread_read_ns(Reg& reg) {
  // Warmup batch.
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < kSingleReads / 10; ++i) sink += reg.read();
  const double us = bench::time_us([&] {
    for (std::uint64_t i = 0; i < kSingleReads; ++i) sink += reg.read();
  });
  // Keep `sink` alive so the reads cannot be elided.
  static volatile std::uint64_t keep;
  keep = sink;
  return us * 1000.0 / static_cast<double>(kSingleReads);
}

// ns per read with kMtThreads concurrent readers on one register.
template <typename Reg>
double concurrent_read_ns(Reg& reg) {
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kMtThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t sink = 0;
      for (std::uint64_t i = 0; i < kMtReadsPerThread; ++i)
        sink += reg.read();
      static volatile std::uint64_t keep;
      keep = sink;
    });
  }
  const double us = bench::time_us([&] {
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
  });
  return us * 1000.0 /
         static_cast<double>(kMtReadsPerThread * kMtThreads);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter report(argc, argv, "read");

  // ------------------------------------------------- substrate fast path
  bench::heading(
      "Substrate — free-mode read: fast path vs mutex+virtual-step "
      "baseline (ns/read)");
  double fast_single, fast_mt, legacy_single, legacy_mt;
  {
    runtime::FreeStepController ctrl;
    registers::Space space(ctrl);  // Dispatch::kAuto: devirtualized gate
    auto& reg = space.make_swmr<std::uint64_t>(1, 7, "fast");
    fast_single = single_thread_read_ns(reg);
    fast_mt = concurrent_read_ns(reg);
  }
  {
    SeedSwmr<std::uint64_t> reg(seed_gate(), 7);
    legacy_single = single_thread_read_ns(reg);
    legacy_mt = concurrent_read_ns(reg);
  }
  const double single_speedup = legacy_single / fast_single;
  const double mt_speedup = legacy_mt / fast_mt;
  {
    util::Table table({"readers", "baseline ns/read", "fast ns/read",
                       "speedup"});
    table.add_row({"1", util::Table::num(legacy_single),
                   util::Table::num(fast_single),
                   util::Table::num(single_speedup) + "x"});
    table.add_row({util::Table::num(kMtThreads),
                   util::Table::num(legacy_mt), util::Table::num(fast_mt),
                   util::Table::num(mt_speedup) + "x"});
    table.print();
  }
  report.metric("read.substrate.legacy_single_ns", legacy_single);
  report.metric("read.substrate.fast_single_ns", fast_single);
  report.metric("read.substrate.single_speedup", single_speedup);
  report.metric("read.substrate.legacy_mt4_ns", legacy_mt);
  report.metric("read.substrate.fast_mt4_ns", fast_mt);
  report.metric("read.substrate.mt4_speedup", mt_speedup);

  // ----------------------------------------------------- T3 across types
  bench::heading(
      "T3 — Read latency vs n (mean/p50/p99 us over 300 reads)");
  util::Table table({"n", "f", "plain-SWMR read", "verifiable read",
                     "authenticated read", "sticky read"});
  for (int n : {4, 7, 10, 13, 16, 25}) {
    const int f = max_f(n);
    const std::string tag = "read.n" + std::to_string(n);

    // Plain substrate register, for scale.
    runtime::FreeStepController ctrl;
    registers::Space space(ctrl);
    auto& plain = space.make_swmr<std::uint64_t>(1, 7, "plain");
    bench::LatencySummary plain_s;
    {
      runtime::ThisProcess::Binder bind(2);
      plain_s = bench::summarize(
          bench::sample_latency(kIters, [&] { plain.read(); }));
    }

    // Each system is scoped so only one set of helper threads exists at a
    // time (three live n=25 systems would mean 75 spinning helpers).
    bench::LatencySummary verif_s, auth_s, sticky_s;
    {
      using VReg = core::VerifiableRegister<std::uint64_t>;
      core::FreeSystem<VReg> vsys(VReg::Config{n, f, 0, false});
      vsys.as(1, [](VReg& r) { r.write(7); });
      verif_s = vsys.as(2, [&](VReg& r) {
        return bench::summarize(
            bench::sample_latency(kIters, [&] { r.read(); }));
      });
    }
    {
      using AReg = core::AuthenticatedRegister<std::uint64_t>;
      core::FreeSystem<AReg> asys(AReg::Config{n, f, 0, false});
      asys.as(1, [](AReg& r) { r.write(7); });
      auth_s = asys.as(2, [&](AReg& r) {
        return bench::summarize(
            bench::sample_latency(kIters, [&] { r.read(); }));
      });
    }
    {
      using SReg = core::StickyRegister<std::uint64_t>;
      core::FreeSystem<SReg> ssys(SReg::Config{n, f, false});
      ssys.as(1, [](SReg& r) { r.write(7); });
      sticky_s = ssys.as(2, [&](SReg& r) {
        return bench::summarize(
            bench::sample_latency(kIters, [&] { r.read(); }));
      });
    }

    table.add_row({util::Table::num(n), util::Table::num(f),
                   bench::latency_cell(plain_s),
                   bench::latency_cell(verif_s), bench::latency_cell(auth_s),
                   bench::latency_cell(sticky_s)});
    report.metric(tag + ".plain_p50_us", plain_s.p50);
    report.metric(tag + ".verifiable_p50_us", verif_s.p50);
    report.metric(tag + ".authenticated_p50_us", auth_s.p50);
    report.metric(tag + ".sticky_p50_us", sticky_s.p50);
  }
  table.print();
  return 0;
}
