// T3 — Read cost vs n across the three register types.
//
// Claims under test: a verifiable-register Read is one register read
// (flat); an authenticated Read embeds a full Verify (§7.1), so it pays
// the quorum cost; a sticky Read needs an n−f witness quorum.
#include <cstdint>

#include "bench/common.hpp"
#include "core/authenticated_register.hpp"
#include "core/sticky_register.hpp"
#include "core/system.hpp"
#include "core/verifiable_register.hpp"

namespace {

using namespace swsig;
using bench::max_f;

constexpr int kIters = 300;

}  // namespace

int main() {
  bench::heading("T3 — Read latency vs n (median us over 300 reads)");
  util::Table table({"n", "f", "plain-SWMR read", "verifiable read",
                     "authenticated read", "sticky read"});
  for (int n : {4, 7, 10, 13, 16, 25}) {
    const int f = max_f(n);

    // Plain substrate register, for scale.
    runtime::FreeStepController ctrl;
    registers::Space space(ctrl);
    auto& plain = space.make_swmr<std::uint64_t>(1, 7, "plain");
    double plain_us;
    {
      runtime::ThisProcess::Binder bind(2);
      plain_us =
          bench::sample_latency(kIters, [&] { plain.read(); }).median();
    }

    // Each system is scoped so only one set of helper threads exists at a
    // time (three live n=25 systems would mean 75 spinning helpers).
    double verif_us, auth_us, sticky_us;
    {
      using VReg = core::VerifiableRegister<std::uint64_t>;
      core::FreeSystem<VReg> vsys(VReg::Config{n, f, 0, false});
      vsys.as(1, [](VReg& r) { r.write(7); });
      verif_us = vsys.as(2, [&](VReg& r) {
        return bench::sample_latency(kIters, [&] { r.read(); }).median();
      });
    }
    {
      using AReg = core::AuthenticatedRegister<std::uint64_t>;
      core::FreeSystem<AReg> asys(AReg::Config{n, f, 0, false});
      asys.as(1, [](AReg& r) { r.write(7); });
      auth_us = asys.as(2, [&](AReg& r) {
        return bench::sample_latency(kIters, [&] { r.read(); }).median();
      });
    }
    {
      using SReg = core::StickyRegister<std::uint64_t>;
      core::FreeSystem<SReg> ssys(SReg::Config{n, f, false});
      ssys.as(1, [](SReg& r) { r.write(7); });
      sticky_us = ssys.as(2, [&](SReg& r) {
        return bench::sample_latency(kIters, [&] { r.read(); }).median();
      });
    }

    table.add_row({util::Table::num(n), util::Table::num(f),
                   util::Table::num(plain_us), util::Table::num(verif_us),
                   util::Table::num(auth_us), util::Table::num(sticky_us)});
  }
  table.print();
  return 0;
}
