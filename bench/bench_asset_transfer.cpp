// T12 — Asset transfer end to end: signature-free (sticky broadcast,
// n>3f) vs signed-certificate broadcast (n>2f).
#include <thread>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "broadcast/reliable_broadcast.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"
#include "transfer/asset_transfer.hpp"

namespace {

using namespace swsig;
using bench::max_f;

constexpr int kTransfers = 5;

struct Row {
  double transfer_us;
  double balance_us;
};

template <typename RB>
Row run(RB& rb, int n) {
  std::vector<std::jthread> helpers;
  for (int pid = 1; pid <= n; ++pid) {
    helpers.emplace_back([&rb, pid](std::stop_token st) {
      runtime::ThisProcess::Binder bind(pid);
      while (!st.stop_requested()) {
        if (!rb.help_round()) std::this_thread::yield();
      }
    });
  }
  transfer::AssetTransfer at(rb, {.n = n,
                                  .initial_balance = 1000,
                                  .max_transfers = kTransfers + 1});
  Row row{};
  {
    runtime::ThisProcess::Binder bind(1);
    util::Samples samples;
    for (int i = 0; i < kTransfers; ++i)
      samples.add(bench::time_us([&] { at.transfer(2, 1); }));
    row.transfer_us = samples.median();
  }
  {
    runtime::ThisProcess::Binder bind(3);
    row.balance_us =
        bench::sample_latency(30, [&] { at.balance_of(2); }).median();
  }
  for (auto& t : helpers) t.request_stop();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter report(argc, argv, "asset_transfer");
  bench::heading("T12 — asset transfer latency (median us)");
  util::Table table({"n", "f", "backend", "transfer", "balance query"});
  for (int n : {4, 7, 10}) {
    const int f = max_f(n);
    const std::string tag = "transfer.n" + std::to_string(n);
    {
      runtime::FreeStepController ctrl;
      registers::Space space(ctrl);
      broadcast::StickyReliableBroadcast rb(space, {n, f, kTransfers + 1});
      const Row r = run(rb, n);
      table.add_row({util::Table::num(n), util::Table::num(f),
                     "sticky (sig-free)", util::Table::num(r.transfer_us),
                     util::Table::num(r.balance_us)});
      report.metric(tag + ".sticky_transfer_us", r.transfer_us);
      report.metric(tag + ".sticky_balance_us", r.balance_us);
    }
    {
      runtime::FreeStepController ctrl;
      registers::Space space(ctrl);
      crypto::SignatureAuthority auth({.n = n, .seed = 3});
      broadcast::SignedReliableBroadcast rb(space, auth,
                                            {n, f, kTransfers + 1});
      const Row r = run(rb, n);
      table.add_row({"", "", "signed (n>2f)",
                     util::Table::num(r.transfer_us),
                     util::Table::num(r.balance_us)});
      report.metric(tag + ".signed_transfer_us", r.transfer_us);
      report.metric(tag + ".signed_balance_us", r.balance_us);
    }
  }
  table.print();
  return 0;
}
