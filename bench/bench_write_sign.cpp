// T2 — Write and Sign cost vs n.
//
// Claims under test (paper §5/§7/§9.1): a verifiable-register Write is a
// single register write (flat in n); Sign is a single owner RMW (flat);
// an authenticated Write is one owner RMW (flat); a sticky Write must WAIT
// for n−f witnesses (grows with n and depends on helper latency); the
// signed baselines pay one signature per Sign/Write.
#include <cstdint>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "core/authenticated_register.hpp"
#include "core/sticky_register.hpp"
#include "core/system.hpp"
#include "core/verifiable_register.hpp"
#include "crypto/signed_registers.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"

namespace {

using namespace swsig;
using bench::max_f;

constexpr int kIters = 400;
constexpr int kStickyRounds = 25;

double bench_verifiable_write(int n, int f) {
  using Reg = core::VerifiableRegister<std::uint64_t>;
  core::FreeSystem<Reg> sys(Reg::Config{n, f, 0, false});
  std::uint64_t v = 0;
  return sys.as(1, [&](Reg& r) {
    return bench::sample_latency(kIters, [&] { r.write(++v); }).median();
  });
}

double bench_verifiable_sign(int n, int f) {
  using Reg = core::VerifiableRegister<std::uint64_t>;
  core::FreeSystem<Reg> sys(Reg::Config{n, f, 0, false});
  std::uint64_t v = 0;
  sys.as(1, [&](Reg& r) {
    for (int i = 0; i < kIters; ++i) r.write(static_cast<std::uint64_t>(i));
  });
  return sys.as(1, [&](Reg& r) {
    return bench::sample_latency(kIters, [&] { r.sign(v++); }).median();
  });
}

double bench_authenticated_write(int n, int f) {
  using Reg = core::AuthenticatedRegister<std::uint64_t>;
  core::FreeSystem<Reg> sys(Reg::Config{n, f, 0, false});
  std::uint64_t v = 0;
  return sys.as(1, [&](Reg& r) {
    return bench::sample_latency(kIters, [&] { r.write(++v); }).median();
  });
}

// Sticky registers are one-shot: each sample uses a fresh register (all in
// one Space/system so helper threads are shared-per-register).
double bench_sticky_write(int n, int f) {
  using Reg = core::StickyRegister<std::uint64_t>;
  util::Samples samples;
  for (int round = 0; round < kStickyRounds; ++round) {
    core::FreeSystem<Reg> sys(Reg::Config{n, f, false});
    samples.add(sys.as(1, [&](Reg& r) {
      return bench::time_us([&] { r.write(7); });
    }));
  }
  return samples.median();
}

double bench_signed_write_sign(int n, int f, bool pk) {
  runtime::FreeStepController ctrl;
  registers::Space space(ctrl);
  crypto::SignatureAuthority auth(
      {.n = n,
       .seed = 1,
       .mode = pk ? crypto::SignatureAuthority::Mode::kSlowPk
                  : crypto::SignatureAuthority::Mode::kHmac,
       .pk_iterations = 64});
  crypto::SignedVerifiableRegister<std::uint64_t> reg(space, auth, {n, f, 0});
  runtime::ThisProcess::Binder bind(1);
  std::uint64_t v = 0;
  return bench::sample_latency(kIters, [&] {
           ++v;
           reg.write(v);
           reg.sign(v);
         })
      .median();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter report(argc, argv, "write_sign");
  bench::heading("T2 — Write/Sign latency vs n (median us)");
  util::Table table({"n", "f", "verif write", "verif sign", "auth write",
                     "sticky write", "signed w+s HMAC", "signed w+s PK"});
  for (int n : {4, 7, 10, 13, 16, 25}) {
    const int f = max_f(n);
    const double vw = bench_verifiable_write(n, f);
    const double vs = bench_verifiable_sign(n, f);
    const double aw = bench_authenticated_write(n, f);
    const double sw = bench_sticky_write(n, f);
    table.add_row({util::Table::num(n), util::Table::num(f),
                   util::Table::num(vw), util::Table::num(vs),
                   util::Table::num(aw), util::Table::num(sw),
                   util::Table::num(bench_signed_write_sign(n, f, false)),
                   util::Table::num(bench_signed_write_sign(n, f, true))});
    const std::string tag = "write.n" + std::to_string(n);
    report.metric(tag + ".verifiable_write_us", vw);
    report.metric(tag + ".verifiable_sign_us", vs);
    report.metric(tag + ".authenticated_write_us", aw);
    report.metric(tag + ".sticky_write_us", sw);
  }
  table.print();
  return 0;
}
