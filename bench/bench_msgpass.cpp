// T9 — The closing corollary, measured: emulated SWMR registers over
// Byzantine message passing (write/read latency, messages per op), and the
// full stack — a verifiable register running on those emulated registers.
#include <atomic>
#include <thread>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "core/verifiable_register.hpp"
#include "msgpass/emulated_swmr.hpp"
#include "runtime/process.hpp"

namespace {

using namespace swsig;
using bench::max_f;

constexpr int kIters = 40;

struct Row {
  double write_us, read_us;
  double msgs_per_write, msgs_per_read;
};

Row emulated_register(int n, int f) {
  msgpass::EmulatedSpace space({.n = n, .f = f});
  auto& reg = space.make_swmr<std::uint64_t>(1, 0, "r");
  Row row{};
  {
    runtime::ThisProcess::Binder bind(1);
    const auto before = space.network().messages_sent();
    std::uint64_t v = 0;
    row.write_us =
        bench::sample_latency(kIters, [&] { reg.write(++v); }).median();
    row.msgs_per_write = static_cast<double>(
                             space.network().messages_sent() - before) /
                         kIters;
  }
  {
    runtime::ThisProcess::Binder bind(2);
    const auto before = space.network().messages_sent();
    row.read_us =
        bench::sample_latency(kIters, [&] { reg.read(); }).median();
    row.msgs_per_read = static_cast<double>(
                            space.network().messages_sent() - before) /
                        kIters;
  }
  return row;
}

double full_stack_verify(int n, int f) {
  msgpass::EmulatedSpace space({.n = n, .f = f});
  using Reg = core::VerifiableRegister<std::uint64_t, msgpass::EmulatedSpace>;
  Reg::Config cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.v0 = 0;
  Reg reg(space, cfg);
  std::atomic<bool> stop{false};
  std::vector<std::jthread> helpers;
  for (int pid = 1; pid <= n; ++pid) {
    helpers.emplace_back([&, pid](std::stop_token st) {
      runtime::ThisProcess::Binder bind(pid);
      while (!st.stop_requested() && !stop.load()) {
        if (!reg.help_round()) std::this_thread::yield();
      }
    });
  }
  {
    runtime::ThisProcess::Binder bind(1);
    reg.write(42);
    reg.sign(42);
  }
  double median;
  {
    runtime::ThisProcess::Binder bind(2);
    median = bench::sample_latency(10, [&] { reg.verify(42); }).median();
  }
  stop = true;
  for (auto& t : helpers) t.request_stop();
  return median;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter report(argc, argv, "msgpass");
  bench::heading("T9 — SWMR register emulation over message passing");
  util::Table table({"n", "f", "write us", "msgs/write", "read us",
                     "msgs/read"});
  for (int n : {4, 7, 10}) {
    const int f = max_f(n);
    const Row r = emulated_register(n, f);
    table.add_row({util::Table::num(n), util::Table::num(f),
                   util::Table::num(r.write_us),
                   util::Table::num(r.msgs_per_write, 1),
                   util::Table::num(r.read_us),
                   util::Table::num(r.msgs_per_read, 1)});
    const std::string tag = "msgpass.n" + std::to_string(n);
    report.metric(tag + ".write_us", r.write_us);
    report.metric(tag + ".read_us", r.read_us);
    report.metric(tag + ".msgs_per_write", r.msgs_per_write);
  }
  table.print();

  bench::heading(
      "T9b — full stack: verifiable register OVER emulated registers "
      "(median Verify us, 10 calls)");
  util::Table stack({"n", "f", "verify us"});
  const double us = full_stack_verify(4, 1);
  stack.add_row({"4", "1", util::Table::num(us)});
  stack.print();
  report.metric("msgpass.fullstack.n4.verify_us", us);
  return 0;
}
