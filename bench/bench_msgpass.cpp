// T9 — The closing corollary, measured: emulated SWMR registers over
// Byzantine message passing (write/read latency, messages per op), the
// full stack — a verifiable register running on those emulated registers —
// and the batched/sharded substrate (T9c/T9d): amortized messages per
// write with one ECHO/ACCEPT/ACK ladder per round, and throughput scaling
// when registers shard across independent networks.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "core/verifiable_register.hpp"
#include "msgpass/batched_space.hpp"
#include "msgpass/emulated_swmr.hpp"
#include "runtime/process.hpp"

namespace {

using namespace swsig;
using bench::max_f;

constexpr int kIters = 40;

// Message counts sampled right after the last client call are
// scheduling-dependent (write() returns on n−f ACKs with the trailing f
// servers' traffic still in flight) — and these counts are compared
// against a committed baseline in CI, so drain the tail first.
template <typename CountFn>
std::uint64_t drained(CountFn&& count) {
  return msgpass::drain_message_count(std::forward<CountFn>(count),
                                      std::chrono::milliseconds(2));
}

struct Row {
  double write_us, read_us;
  double msgs_per_write, msgs_per_read;
};

Row emulated_register(int n, int f) {
  msgpass::EmulatedSpace space({.n = n, .f = f});
  auto& reg = space.make_swmr<std::uint64_t>(1, 0, "r");
  Row row{};
  const auto count = [&] { return space.network().messages_sent(); };
  {
    runtime::ThisProcess::Binder bind(1);
    const auto before = drained(count);
    std::uint64_t v = 0;
    row.write_us =
        bench::sample_latency(kIters, [&] { reg.write(++v); }).median();
    row.msgs_per_write =
        static_cast<double>(drained(count) - before) / kIters;
  }
  {
    runtime::ThisProcess::Binder bind(2);
    const auto before = drained(count);
    row.read_us =
        bench::sample_latency(kIters, [&] { reg.read(); }).median();
    row.msgs_per_read =
        static_cast<double>(drained(count) - before) / kIters;
  }
  return row;
}

double full_stack_verify(int n, int f) {
  msgpass::EmulatedSpace space({.n = n, .f = f});
  using Reg = core::VerifiableRegister<std::uint64_t, msgpass::EmulatedSpace>;
  Reg::Config cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.v0 = 0;
  Reg reg(space, cfg);
  std::atomic<bool> stop{false};
  std::vector<std::jthread> helpers;
  for (int pid = 1; pid <= n; ++pid) {
    helpers.emplace_back([&, pid](std::stop_token st) {
      runtime::ThisProcess::Binder bind(pid);
      while (!st.stop_requested() && !stop.load()) {
        if (!reg.help_round()) std::this_thread::yield();
      }
    });
  }
  {
    runtime::ThisProcess::Binder bind(1);
    reg.write(42);
    reg.sign(42);
  }
  double median;
  {
    runtime::ThisProcess::Binder bind(2);
    median = bench::sample_latency(10, [&] { reg.verify(42); }).median();
  }
  stop = true;
  for (auto& t : helpers) t.request_stop();
  return median;
}

// T9c — amortized messages per write: the unbatched per-write ladder vs
// the batched space driving bursts of async writes through shared rounds.
struct AmortRow {
  double unbatched_mpw = 0;
  double batched_mpw = 0;
  double batched_write_us = 0;
  double amortization = 0;  // unbatched_mpw / batched_mpw
};

AmortRow amortization(int n, int f, int writes, int batch, int burst) {
  AmortRow row{};
  {
    msgpass::EmulatedSpace space({.n = n, .f = f});
    auto& reg = space.make_swmr<std::uint64_t>(1, 0, "r");
    runtime::ThisProcess::Binder bind(1);
    const auto count = [&] { return space.network().messages_sent(); };
    const auto before = drained(count);
    for (int i = 0; i < writes; ++i) reg.write(static_cast<std::uint64_t>(i + 1));
    row.unbatched_mpw = static_cast<double>(drained(count) - before) / writes;
  }
  {
    msgpass::BatchedEmulatedSpace space(
        {.n = n, .f = f, .shards = 1, .batch_max = batch});
    auto& reg = space.make_swmr<std::uint64_t>(1, 0, "r");
    runtime::ThisProcess::Binder bind(1);
    const auto count = [&] { return space.messages_sent(); };
    const auto before = drained(count);
    std::uint64_t v = 0;
    const double us = bench::time_us([&] {
      for (int b = 0; b < writes / burst; ++b) {
        std::uint64_t last = 0;
        for (int i = 0; i < burst; ++i) last = reg.write_async(++v);
        reg.await(last);
      }
    });
    row.batched_mpw = static_cast<double>(drained(count) - before) / writes;
    row.batched_write_us = us / writes;
  }
  row.amortization =
      row.batched_mpw > 0 ? row.unbatched_mpw / row.batched_mpw : 0;
  return row;
}

// T9d — register sharding: k owners pipeline async bursts into k
// independent registers; with one shard every message funnels through one
// per-pid inbox and one server thread per process, with k shards each
// register's traffic has its own network and server threads. Sharding
// removes queue serialization, so it needs real cores to pay off — the
// hardware_concurrency figure is reported next to the numbers (on a
// 1-core CI box the extra threads are pure scheduling overhead).
double sharded_throughput(int n, int f, int shards, int owners, int writes,
                          int burst) {
  msgpass::BatchedEmulatedSpace space(
      {.n = n, .f = f, .shards = shards, .batch_max = 8});
  std::vector<msgpass::BatchedSwmr<std::uint64_t>*> regs;
  for (int o = 1; o <= owners; ++o)
    regs.push_back(&space.make_swmr<std::uint64_t>(
        o, 0, "r" + std::to_string(o)));
  const double us = bench::time_us([&] {
    std::vector<std::thread> ts;
    for (int o = 1; o <= owners; ++o) {
      ts.emplace_back([&, o] {
        runtime::ThisProcess::Binder bind(o);
        auto& reg = *regs[static_cast<std::size_t>(o - 1)];
        std::uint64_t v = 0;
        for (int b = 0; b < writes / burst; ++b) {
          std::uint64_t last = 0;
          for (int i = 0; i < burst; ++i) last = reg.write_async(++v);
          reg.await(last);
        }
      });
    }
    for (auto& t : ts) t.join();
  });
  return static_cast<double>(owners) * writes / (us / 1e6);  // writes per s
}

// T9e — the async protocol engine (design note 15): depth-k pipelined
// owner writes as a sliding window (issue k, then await the oldest before
// each new issue — k ops continuously in flight), and same-pid read
// coalescing (one quorum round serving k overlapping readers). On the
// batched substrate the group-commit gate rides a full depth-k window on
// one ECHO/ACCEPT/ACK round, so pipelining pays in messages, not just
// overlap; on the per-write substrate each sn keeps its own ladder and
// pipelining only hides the per-write ACK wait.
struct PipeRow {
  double write_us = 0;
  double msgs_per_write = 0;
};

template <typename Space, typename Reg, typename CountFn>
PipeRow pipelined_writes(Space& space, Reg& reg, CountFn&& count, int depth,
                         int writes) {
  PipeRow row{};
  runtime::ThisProcess::Binder bind(1);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) reg.write(++v);  // warm up, outside the count
  const auto before = drained(count);
  std::vector<std::uint64_t> window;
  std::size_t oldest = 0;
  const double us = bench::time_us([&] {
    for (int i = 0; i < writes; ++i) {
      if (static_cast<int>(window.size() - oldest) == depth)
        reg.await(window[oldest++]);
      window.push_back(reg.write_async(++v));
    }
    while (oldest < window.size()) reg.await(window[oldest++]);
  });
  row.write_us = us / writes;
  row.msgs_per_write = static_cast<double>(drained(count) - before) / writes;
  return row;
}

// k reader threads bound to the SAME pid hammer overlapping reads: the
// coalescer lets joiners adopt the next led round's result, so quorum
// traffic per read drops roughly with the overlap factor. Returns
// sequential msgs/read divided by coalesced msgs/read.
double read_coalescing(int n, int f, int readers, int reads_each) {
  msgpass::EmulatedSpace space({.n = n, .f = f});
  auto& reg = space.make_swmr<std::uint64_t>(1, 0, "r");
  {
    runtime::ThisProcess::Binder bind(1);
    reg.write(1);
  }
  const auto count = [&] { return space.network().messages_sent(); };
  const auto before = drained(count);
  std::vector<std::thread> ts;
  for (int r = 0; r < readers; ++r) {
    ts.emplace_back([&] {
      runtime::ThisProcess::Binder bind(2);
      for (int i = 0; i < reads_each; ++i) reg.read();
    });
  }
  for (auto& t : ts) t.join();
  const double coalesced_mpr = static_cast<double>(drained(count) - before) /
                               (static_cast<double>(readers) * reads_each);
  const auto before_seq = drained(count);
  {
    runtime::ThisProcess::Binder bind(2);
    for (int i = 0; i < reads_each; ++i) reg.read();
  }
  const double seq_mpr =
      static_cast<double>(drained(count) - before_seq) / reads_each;
  return coalesced_mpr > 0 ? seq_mpr / coalesced_mpr : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter report(argc, argv, "msgpass");
  bench::heading("T9 — SWMR register emulation over message passing");
  util::Table table({"n", "f", "write us", "msgs/write", "read us",
                     "msgs/read"});
  for (int n : {4, 7, 10}) {
    const int f = max_f(n);
    const Row r = emulated_register(n, f);
    table.add_row({util::Table::num(n), util::Table::num(f),
                   util::Table::num(r.write_us),
                   util::Table::num(r.msgs_per_write, 1),
                   util::Table::num(r.read_us),
                   util::Table::num(r.msgs_per_read, 1)});
    const std::string tag = "msgpass.n" + std::to_string(n);
    report.metric(tag + ".write_us", r.write_us);
    report.metric(tag + ".read_us", r.read_us);
    report.metric(tag + ".msgs_per_write", r.msgs_per_write);
  }
  table.print();

  bench::heading(
      "T9b — full stack: verifiable register OVER emulated registers "
      "(median Verify us, 10 calls)");
  util::Table stack({"n", "f", "verify us"});
  const double us = full_stack_verify(4, 1);
  stack.add_row({"4", "1", util::Table::num(us)});
  stack.print();
  report.metric("msgpass.fullstack.n4.verify_us", us);

  bench::heading(
      "T9c — batched rounds: amortized msgs/write, one ECHO/ACCEPT/ACK "
      "ladder per round of <= B ops (bursts of async owner writes)");
  util::Table amort({"n", "f", "B", "msgs/write plain", "msgs/write batched",
                     "amortization", "write us (amortized)"});
  for (int n : {10, 16}) {
    const int f = max_f(n);
    const AmortRow r = amortization(n, f, /*writes=*/128, /*batch=*/8,
                                    /*burst=*/32);
    amort.add_row({util::Table::num(n), util::Table::num(f), "8",
                   util::Table::num(r.unbatched_mpw, 1),
                   util::Table::num(r.batched_mpw, 1),
                   util::Table::num(r.amortization, 2),
                   util::Table::num(r.batched_write_us)});
    const std::string tag = "msgpass.n" + std::to_string(n);
    report.metric(tag + ".unbatched_msgs_per_write", r.unbatched_mpw);
    report.metric(tag + ".batched_msgs_per_write", r.batched_mpw);
    report.metric(tag + ".batch_amortization_speedup", r.amortization);
    report.metric(tag + ".batched_write_us", r.batched_write_us);
  }
  amort.print();

  bench::heading(
      "T9d — register sharding: 4 owners pipelining async bursts into 4 "
      "registers, 1 shard vs 4 shards (total writes/s; hw threads: " +
      std::to_string(std::thread::hardware_concurrency()) + ")");
  util::Table shard({"n", "f", "shards", "writes/s"});
  {
    const int n = 8, f = max_f(8);
    const double one = sharded_throughput(n, f, /*shards=*/1, /*owners=*/4,
                                          /*writes=*/256, /*burst=*/32);
    const double four = sharded_throughput(n, f, /*shards=*/4, /*owners=*/4,
                                           /*writes=*/256, /*burst=*/32);
    shard.add_row({util::Table::num(n), util::Table::num(f), "1",
                   util::Table::num(one, 0)});
    shard.add_row({util::Table::num(n), util::Table::num(f), "4",
                   util::Table::num(four, 0)});
    shard.print();
    report.metric("msgpass.shard1.n8.writes_per_s", one);
    report.metric("msgpass.shard4.n8.writes_per_s", four);
    report.metric("msgpass.shard.n8.scaling_speedup", four / one);
  }

  bench::heading(
      "T9e — async engine: depth-4 sliding-window pipelined writes on both "
      "substrates, and 8-way same-pid read coalescing (n=10)");
  util::Table pipe({"substrate", "depth", "write us (pipelined)",
                    "msgs/write"});
  {
    const int n = 10, f = max_f(10), depth = 4, writes = 128;
    PipeRow batched;
    {
      msgpass::BatchedEmulatedSpace space({.n = n, .f = f, .shards = 1,
                                           .batch_max = 8,
                                           .pipeline_depth = depth});
      auto& reg = space.make_swmr<std::uint64_t>(1, 0, "r");
      batched = pipelined_writes(
          space, reg, [&] { return space.messages_sent(); }, depth, writes);
    }
    PipeRow emulated;
    {
      msgpass::EmulatedSpace space({.n = n, .f = f,
                                    .pipeline_depth = depth});
      auto& reg = space.make_swmr<std::uint64_t>(1, 0, "r");
      emulated = pipelined_writes(
          space, reg, [&] { return space.network().messages_sent(); }, depth,
          writes);
    }
    pipe.add_row({"batched", "4", util::Table::num(batched.write_us),
                  util::Table::num(batched.msgs_per_write, 1)});
    pipe.add_row({"emulated", "4", util::Table::num(emulated.write_us),
                  util::Table::num(emulated.msgs_per_write, 1)});
    pipe.print();
    const double amort = read_coalescing(n, f, /*readers=*/8,
                                         /*reads_each=*/kIters);
    bench::heading("      read coalescing amortization (k=8): " +
                   util::Table::num(amort, 2) + "x fewer msgs/read");
    report.metric("msgpass.n10.pipelined_write_us", batched.write_us);
    report.metric("msgpass.n10.pipelined_msgs_per_write",
                  batched.msgs_per_write);
    report.metric("msgpass.n10.pipelined_write_us_emulated",
                  emulated.write_us);
    report.metric("msgpass.n10.read_batch_amortization", amort);
  }
  return 0;
}
