// T1 — Verify latency and register-step cost vs n.
//
// Claim under test: signature-free Verify is quorum-bound (cost grows with
// n: it needs n−f witness answers and O(n) register reads per round),
// while signature-based Verify is crypto-bound (near-flat in n when the
// writer is honest). Absolute numbers are machine-local; the shape is the
// reproduction target.
#include <cstdint>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "core/authenticated_register.hpp"
#include "core/system.hpp"
#include "core/verifiable_register.hpp"
#include "crypto/signed_registers.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"

namespace {

using namespace swsig;
using bench::max_f;

constexpr int kIters = 300;

struct Row {
  int n, f;
  double verifiable_us, verifiable_steps;
  double authenticated_us;
  double signed_hmac_us, signed_pk_us;
};

Row run(int n) {
  Row row{};
  row.n = n;
  row.f = max_f(n);

  {  // verifiable register (Algorithm 1)
    using Reg = core::VerifiableRegister<std::uint64_t>;
    core::FreeSystem<Reg> sys(Reg::Config{n, row.f, 0, false});
    sys.as(1, [](Reg& r) {
      r.write(42);
      r.sign(42);
    });
    // Warm up outside the metrics window so steps/op divides exactly the
    // kIters sampled verifies (sample_latency runs with warmup=0 below).
    sys.as(2, [&](Reg& r) {
      for (int i = 0; i < 30; ++i) r.verify(42);
    });
    const auto before = sys.metrics().snapshot();
    const auto samples = sys.as(2, [&](Reg& r) {
      return bench::sample_latency(kIters, [&] { r.verify(42); }, 0);
    });
    const auto delta = sys.metrics().snapshot().delta(before);
    row.verifiable_us = samples.median();
    // Steps by all threads (incl. helpers) per verify — the model-level
    // cost measure.
    row.verifiable_steps =
        static_cast<double>(delta.total()) / kIters;
  }

  {  // authenticated register (Algorithm 2)
    using Reg = core::AuthenticatedRegister<std::uint64_t>;
    core::FreeSystem<Reg> sys(Reg::Config{n, row.f, 0, false});
    sys.as(1, [](Reg& r) { r.write(42); });
    const auto samples = sys.as(2, [&](Reg& r) {
      return bench::sample_latency(kIters, [&] { r.verify(42); });
    });
    row.authenticated_us = samples.median();
  }

  for (const bool pk : {false, true}) {  // signed baselines
    runtime::FreeStepController ctrl;
    registers::Space space(ctrl);
    crypto::SignatureAuthority auth(
        {.n = n,
         .seed = 1,
         .mode = pk ? crypto::SignatureAuthority::Mode::kSlowPk
                    : crypto::SignatureAuthority::Mode::kHmac,
         .pk_iterations = 64});
    crypto::SignedVerifiableRegister<std::uint64_t> reg(space, auth,
                                                        {n, row.f, 0});
    {
      runtime::ThisProcess::Binder bind(1);
      reg.write(42);
      reg.sign(42);
    }
    runtime::ThisProcess::Binder bind(2);
    const auto samples =
        bench::sample_latency(kIters, [&] { reg.verify(42); });
    (pk ? row.signed_pk_us : row.signed_hmac_us) = samples.median();
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter report(argc, argv, "verify_latency");
  bench::heading(
      "T1 — Verify latency vs n (median us over 300 calls, fault-free)");
  util::Table table({"n", "f", "verifiable us", "steps/op",
                     "authenticated us", "signed-HMAC us", "signed-PK us"});
  for (int n : {4, 7, 10, 13, 16, 25, 31}) {
    const Row r = run(n);
    table.add_row({util::Table::num(r.n), util::Table::num(r.f),
                   util::Table::num(r.verifiable_us),
                   util::Table::num(r.verifiable_steps, 1),
                   util::Table::num(r.authenticated_us),
                   util::Table::num(r.signed_hmac_us),
                   util::Table::num(r.signed_pk_us)});
    const std::string tag = "verify.n" + std::to_string(n);
    report.metric(tag + ".verifiable_us", r.verifiable_us);
    report.metric(tag + ".verifiable_steps_per_op", r.verifiable_steps);
    report.metric(tag + ".authenticated_us", r.authenticated_us);
    report.metric(tag + ".signed_hmac_us", r.signed_hmac_us);
  }
  table.print();
  return 0;
}
