// T5 — Figure 1 / Theorem 29 mechanized: the reset attack across the
// n = 3f boundary.
//
// Claim under test: the H1/H2/H3 construction forges a relay violation
// (Test=1 followed by Test'=0 between correct testers) in EVERY trial when
// 3 <= n <= 3f, and in NO trial when n > 3f. This is the executable form
// of the impossibility proof — a 100%/0% split at the exact boundary.
#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "byzantine/reset_attack.hpp"

int main(int argc, char** argv) {
  using namespace swsig;
  bench::Reporter report(argc, argv, "impossibility");
  constexpr int kTrials = 25;

  bench::heading(
      "T5 — reset attack outcomes over 25 trials per configuration");
  util::Table table({"n", "f(cfg)", "regime", "phase-1 Test=1", "relay "
                     "violations", "violation rate"});
  struct Cfg {
    int n, f;
  };
  for (const Cfg cfg : {Cfg{3, 1}, Cfg{4, 2}, Cfg{5, 2}, Cfg{6, 2},
                        Cfg{6, 3}, Cfg{9, 3}, Cfg{4, 1}, Cfg{7, 2},
                        Cfg{10, 3}, Cfg{13, 4}}) {
    int first_ok = 0;
    int violations = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto out = byzantine::run_reset_attack(cfg.n, cfg.f);
      if (out.first_test == 1) ++first_ok;
      if (out.relay_violated()) ++violations;
    }
    const bool impossible_regime = cfg.n <= 3 * cfg.f;
    table.add_row(
        {util::Table::num(cfg.n), util::Table::num(cfg.f),
         impossible_regime ? "n <= 3f (impossible)" : "n > 3f (safe)",
         util::Table::num(first_ok), util::Table::num(violations),
         util::Table::num(100.0 * violations / kTrials, 0) + "%"});
    report.metric("impossibility.n" + std::to_string(cfg.n) + "f" +
                      std::to_string(cfg.f) + ".violation_rate",
                  static_cast<double>(violations) / kTrials);
  }
  table.print();
  return 0;
}
