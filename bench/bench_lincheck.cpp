// T13 — Linearizability-checker scaling: the partitioned + pruned
// Wing–Gong checker on generated wide histories.
//
// Histories are widened sequential executions: a valid sequential run over
// k registers gets every interval stretched by a jitter J around its
// linearization point, so operations overlap ~2J/spacing neighbors while
// the history stays linearizable by construction. We measure wall time and
// states_explored as history length, register count, and concurrency width
// grow — and pin the brute-force baseline (the pre-partitioning checker)
// on the largest history it accepts, plus an unpartitioned ablation that
// shows what P-compositional partitioning buys.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "lincheck/history_gen.hpp"
#include "lincheck/register_specs.hpp"
#include "util/rng.hpp"

namespace {

using namespace swsig;
using lincheck::CheckOptions;
using lincheck::CheckResult;
using lincheck::Operation;
using lincheck::SpecFactory;
using lincheck::Verdict;

SpecFactory plain_factory() {
  return [](const std::string&) {
    return std::make_unique<lincheck::PlainRegisterSpec>("0");
  };
}

// Widened sequential execution (lincheck/history_gen.hpp): linearizable by
// construction, overlap controlled by `jitter`.
std::vector<Operation> gen_history(int registers, int nops,
                                   std::uint64_t jitter, std::uint64_t seed) {
  lincheck::WidenedHistoryOptions opt;
  opt.registers = registers;
  opt.nops = nops;
  opt.jitter = jitter;
  return lincheck::gen_widened_sequential(opt, seed);
}

struct Measured {
  double us = 0.0;
  std::uint64_t states = 0;
  Verdict verdict = Verdict::kViolation;
};

Measured measure(const std::vector<Operation>& ops, const CheckOptions& opts,
                 int iterations) {
  Measured m;
  util::Samples samples;
  CheckResult result;
  for (int i = 0; i < iterations; ++i)
    samples.add(bench::time_us(
        [&] { result = check_linearizable(ops, plain_factory(), opts); }));
  m.us = samples.median();
  m.states = result.states_explored;
  m.verdict = result.verdict;
  return m;
}

const char* verdict_str(Verdict v) {
  switch (v) {
    case Verdict::kLinearizable:
      return "lin";
    case Verdict::kViolation:
      return "viol";
    case Verdict::kBudgetExhausted:
      return "budget";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter report(argc, argv, "lincheck");

  bench::heading(
      "T13 — partitioned+pruned checker on widened sequential histories "
      "(median us over 5 runs)");
  util::Table table(
      {"registers", "ops", "jitter", "check us", "states", "verdict"});
  struct Config {
    int registers;
    int nops;
    std::uint64_t jitter;
  };
  for (const Config& c : std::vector<Config>{{1, 64, 150},
                                             {4, 256, 150},
                                             {4, 256, 400},
                                             {8, 1024, 400}}) {
    const auto ops = gen_history(c.registers, c.nops, c.jitter, 42);
    const Measured m = measure(ops, CheckOptions{}, 5);
    table.add_row({util::Table::num(c.registers), util::Table::num(c.nops),
                   util::Table::num(static_cast<double>(c.jitter)),
                   util::Table::num(m.us),
                   util::Table::num(static_cast<double>(m.states)),
                   verdict_str(m.verdict)});
    if (m.verdict != Verdict::kLinearizable) {
      std::cerr << "bench_lincheck: generated history unexpectedly "
                << verdict_str(m.verdict) << "\n";
      return 1;
    }
    const std::string tag = "lincheck.k" + std::to_string(c.registers) +
                            ".ops" + std::to_string(c.nops) + ".j" +
                            std::to_string(c.jitter);
    report.metric(tag + ".check_us", m.us);
    report.metric(tag + ".states", static_cast<double>(m.states));
  }
  table.print();

  // Brute-force baseline on the largest history the 62-op cap accepts.
  bench::heading("T13b — brute force vs pruned (32 ops, 1 register)");
  {
    const auto ops = gen_history(1, 32, 150, 7);
    util::Samples brute_samples;
    CheckResult brute;
    for (int i = 0; i < 5; ++i)
      brute_samples.add(bench::time_us([&] {
        brute = check_linearizable_brute(
            ops, lincheck::PlainRegisterSpec("0"));
      }));
    const Measured pruned = measure(ops, CheckOptions{}, 5);
    const double brute_us = brute_samples.median();
    const double speedup = pruned.us > 0 ? brute_us / pruned.us : 0.0;
    util::Table t2({"checker", "check us", "states"});
    t2.add_row({"brute", util::Table::num(brute_us),
                util::Table::num(static_cast<double>(brute.states_explored))});
    t2.add_row({"pruned", util::Table::num(pruned.us),
                util::Table::num(static_cast<double>(pruned.states))});
    t2.print();
    report.metric("lincheck.brute.ops32.check_us", brute_us);
    report.metric("lincheck.pruned.ops32.check_us", pruned.us);
    report.metric("lincheck.ops32_speedup", speedup);
  }

  // Partitioning ablation: the same multi-register history checked as ONE
  // unpartitioned search (product spec). The states blowup is the point.
  bench::heading("T13c — partitioning ablation (4 registers, 64 ops)");
  {
    const auto ops = gen_history(4, 64, 150, 11);
    const Measured part = measure(ops, CheckOptions{}, 5);
    CheckOptions whole;
    whole.partition_by_object = false;
    util::Samples samples;
    CheckResult result;
    for (int i = 0; i < 3; ++i)
      samples.add(bench::time_us([&] {
        result = check_linearizable(
            ops, lincheck::MultiObjectSpec(plain_factory()), whole);
      }));
    util::Table t3({"mode", "check us", "states", "verdict"});
    t3.add_row({"partitioned", util::Table::num(part.us),
                util::Table::num(static_cast<double>(part.states)),
                verdict_str(part.verdict)});
    t3.add_row({"unpartitioned", util::Table::num(samples.median()),
                util::Table::num(static_cast<double>(result.states_explored)),
                verdict_str(result.verdict)});
    t3.print();
    report.metric("lincheck.partitioned.k4.ops64.states",
                  static_cast<double>(part.states));
    report.metric("lincheck.unpartitioned.k4.ops64.states",
                  static_cast<double>(result.states_explored));
  }

  return 0;
}
