// T6 — Observation 30: test-or-set from each register type.
//
// Measures Set latency and Test latency (before and after the Set) per
// backend — the three constructions are wait-free wrappers, so their cost
// profile mirrors the underlying register's Verify/Read cost.
#include <memory>
#include <thread>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "core/system.hpp"
#include "core/test_or_set.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"

namespace {

using namespace swsig;
using bench::max_f;

constexpr int kIters = 200;

struct Measured {
  double test_unset_us;
  double set_us;
  double test_set_us;
};

template <typename Impl, typename RegConfig>
Measured run(int n, int f) {
  runtime::FreeStepController ctrl;
  registers::Space space(ctrl);
  RegConfig rc;
  rc.n = n;
  rc.f = f;
  Impl impl(space, rc);
  std::vector<std::jthread> helpers;
  for (int pid = 1; pid <= n; ++pid) {
    helpers.emplace_back([&impl, pid](std::stop_token st) {
      runtime::ThisProcess::Binder bind(pid);
      while (!st.stop_requested()) {
        if (!impl.reg().help_round()) std::this_thread::yield();
      }
    });
  }
  Measured m{};
  {
    runtime::ThisProcess::Binder bind(2);
    m.test_unset_us =
        bench::sample_latency(kIters, [&] { impl.test(); }).median();
  }
  {
    runtime::ThisProcess::Binder bind(1);
    m.set_us = bench::time_us([&] { impl.set(); });
  }
  {
    runtime::ThisProcess::Binder bind(3);
    m.test_set_us =
        bench::sample_latency(kIters, [&] { impl.test(); }).median();
  }
  for (auto& t : helpers) t.request_stop();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter report(argc, argv, "testorset");
  bench::heading("T6 — test-or-set latency per backend (us)");
  util::Table table({"n", "f", "backend", "Test (unset)", "Set",
                     "Test (set)"});
  for (int n : {4, 7, 10}) {
    const int f = max_f(n);
    const auto v = run<core::TestOrSetFromVerifiable,
                       core::VerifiableRegister<int>::Config>(n, f);
    const auto a = run<core::TestOrSetFromAuthenticated,
                       core::AuthenticatedRegister<int>::Config>(n, f);
    const auto s = run<core::TestOrSetFromSticky,
                       core::StickyRegister<int>::Config>(n, f);
    const std::string tag = "testorset.n" + std::to_string(n);
    report.metric(tag + ".verifiable_set_us", v.set_us);
    report.metric(tag + ".authenticated_set_us", a.set_us);
    report.metric(tag + ".sticky_set_us", s.set_us);
    table.add_row({util::Table::num(n), util::Table::num(f), "verifiable",
                   util::Table::num(v.test_unset_us),
                   util::Table::num(v.set_us),
                   util::Table::num(v.test_set_us)});
    table.add_row({"", "", "authenticated",
                   util::Table::num(a.test_unset_us),
                   util::Table::num(a.set_us),
                   util::Table::num(a.test_set_us)});
    table.add_row({"", "", "sticky", util::Table::num(s.test_unset_us),
                   util::Table::num(s.set_us),
                   util::Table::num(s.test_set_us)});
  }
  table.print();
  return 0;
}
