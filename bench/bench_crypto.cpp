// T11 — Crypto substrate calibration: what one signature costs in the
// baseline registers (so T1-T3 comparisons can be interpreted).
#include <string>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signer.hpp"
#include "runtime/process.hpp"

int main(int argc, char** argv) {
  using namespace swsig;
  bench::Reporter report(argc, argv, "crypto");

  bench::heading("T11a — SHA-256 throughput");
  util::Table ta({"message size", "us/op", "MB/s"});
  for (std::size_t size : {64u, 1024u, 8192u, 65536u}) {
    const std::string msg(size, 'x');
    const int iters = size >= 65536 ? 200 : 1000;
    const double us =
        bench::sample_latency(iters, [&] { crypto::Sha256::hash(msg); })
            .median();
    ta.add_row({std::to_string(size) + " B", util::Table::num(us),
                util::Table::num(static_cast<double>(size) / us, 1)});
    report.metric("crypto.sha256." + std::to_string(size) + "B_us", us);
  }
  ta.print();

  bench::heading("T11b — HMAC-SHA256");
  util::Table tb({"message size", "us/op"});
  for (std::size_t size : {8u, 64u, 1024u}) {
    const std::string msg(size, 'x');
    const double us = bench::sample_latency(1000, [&] {
                        crypto::hmac_sha256("key", msg);
                      }).median();
    tb.add_row({std::to_string(size) + " B", util::Table::num(us)});
  }
  tb.print();

  bench::heading("T11c — signature service (8-byte values)");
  util::Table tc({"mode", "sign us", "verify us"});
  for (const bool pk : {false, true}) {
    crypto::SignatureAuthority auth(
        {.n = 4,
         .seed = 1,
         .mode = pk ? crypto::SignatureAuthority::Mode::kSlowPk
                    : crypto::SignatureAuthority::Mode::kHmac,
         .pk_iterations = 64});
    runtime::ThisProcess::Binder bind(1);
    const std::string msg = crypto::encode_value<std::uint64_t>(42);
    const double sign_us =
        bench::sample_latency(500, [&] { auth.sign(1, msg); }).median();
    const auto sig = auth.sign(1, msg);
    const double verify_us =
        bench::sample_latency(500, [&] { auth.verify(msg, sig); }).median();
    tc.add_row({pk ? "slow-PK (64x)" : "HMAC", util::Table::num(sign_us),
                util::Table::num(verify_us)});
    const std::string tag = pk ? "crypto.pk" : "crypto.hmac";
    report.metric(tag + ".sign_us", sign_us);
    report.metric(tag + ".verify_us", verify_us);
  }
  tc.print();
  return 0;
}
