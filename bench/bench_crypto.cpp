// T11 — Crypto substrate calibration: what one signature costs in the
// baseline registers (so T1-T3 comparisons can be interpreted).
#include <string>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signer.hpp"
#include "runtime/process.hpp"

int main(int argc, char** argv) {
  using namespace swsig;
  bench::Reporter report(argc, argv, "crypto");

  bench::heading("T11a — SHA-256 throughput");
  util::Table ta({"message size", "us/op", "MB/s"});
  for (std::size_t size : {64u, 1024u, 8192u, 65536u}) {
    const std::string msg(size, 'x');
    const int iters = size >= 65536 ? 200 : 1000;
    const double us =
        bench::sample_latency(iters, [&] { crypto::Sha256::hash(msg); })
            .median();
    ta.add_row({std::to_string(size) + " B", util::Table::num(us),
                util::Table::num(static_cast<double>(size) / us, 1)});
    report.metric("crypto.sha256." + std::to_string(size) + "B_us", us);
  }
  ta.print();

  bench::heading("T11b — HMAC-SHA256 (one-shot vs precomputed schedule)");
  util::Table tb({"message size", "one-shot us", "schedule us", "speedup"});
  for (std::size_t size : {8u, 64u, 1024u}) {
    const std::string msg(size, 'x');
    const double oneshot_us = bench::sample_latency(1000, [&] {
                                crypto::hmac_sha256("key", msg);
                              }).median();
    const crypto::HmacSchedule sched("key");
    const double sched_us = bench::sample_latency(1000, [&] {
                              crypto::hmac_sha256(sched, msg);
                            }).median();
    tb.add_row({std::to_string(size) + " B", util::Table::num(oneshot_us),
                util::Table::num(sched_us),
                util::Table::num(oneshot_us / sched_us, 2) + "x"});
    const std::string sz = std::to_string(size) + "B_us";
    report.metric("crypto.hmac_oneshot." + sz, oneshot_us);
    report.metric("crypto.hmac_sched." + sz, sched_us);
  }
  tb.print();

  bench::heading("T11c — signature service (8-byte values)");
  util::Table tc({"mode", "sign us", "verify us"});
  for (const bool pk : {false, true}) {
    crypto::SignatureAuthority auth(
        {.n = 4,
         .seed = 1,
         .mode = pk ? crypto::SignatureAuthority::Mode::kSlowPk
                    : crypto::SignatureAuthority::Mode::kHmac,
         .pk_iterations = 64});
    runtime::ThisProcess::Binder bind(1);
    const std::string msg = crypto::encode_value<std::uint64_t>(42);
    const double sign_us =
        bench::sample_latency(500, [&] { auth.sign(1, msg); }).median();
    const auto sig = auth.sign(1, msg);
    const double verify_us =
        bench::sample_latency(500, [&] { auth.verify(msg, sig); }).median();
    tc.add_row({pk ? "slow-PK (64x)" : "HMAC", util::Table::num(sign_us),
                util::Table::num(verify_us)});
    const std::string tag = pk ? "crypto.pk" : "crypto.hmac";
    report.metric(tag + ".sign_us", sign_us);
    report.metric(tag + ".verify_us", verify_us);
  }
  tc.print();

  bench::heading("T11d — verify amortization (cache + batch, n=10 quorum)");
  {
    constexpr int kN = 10;
    crypto::SignatureAuthority auth({.n = kN, .seed = 1});
    const std::string msg =
        crypto::encode_message("swsig.bench.t11d", 1, std::uint64_t{42});
    std::vector<crypto::Signature> sigs;
    for (int pid = 1; pid <= kN; ++pid) {
      runtime::ThisProcess::Binder bind(pid);
      sigs.push_back(auth.sign(pid, msg));
    }
    runtime::ThisProcess::Binder bind(1);
    const double cold_us =
        bench::sample_latency(500, [&] { auth.verify(msg, sigs[0]); })
            .median();
    (void)auth.verify_cached(msg, sigs[0]);  // prove once
    const double cached_us =
        bench::sample_latency(500, [&] { auth.verify_cached(msg, sigs[0]); })
            .median();
    // Batch: the whole quorum round's signatures in one verify_all call,
    // through a cold cache each iteration (fresh authority) is dominated by
    // construction — instead measure the steady state: proven signatures,
    // shared digest.
    std::vector<crypto::SignatureAuthority::VerifyEntry> entries;
    for (const auto& s : sigs) entries.push_back({msg, &s});
    (void)auth.verify_all(entries);  // prove all once
    const double batch_us = bench::sample_latency(500, [&] {
                              auth.verify_all(entries);
                            }).median();
    util::Table td({"path", "us/op"});
    td.add_row({"verify (uncached)", util::Table::num(cold_us)});
    td.add_row({"verify_cached (hit)", util::Table::num(cached_us)});
    td.add_row({"verify_all, " + std::to_string(kN) + " sigs (hot)",
                util::Table::num(batch_us)});
    td.print();
    report.metric("crypto.verify_uncached_us", cold_us);
    report.metric("crypto.verify_cached_hit_us", cached_us);
    report.metric("crypto.verify_all_n10_hot_us", batch_us);
  }
  return 0;
}
