// T7 — Reliable broadcast: signature-free sticky backend (n>3f) vs signed
// certificates (n>2f) vs message-passing witness broadcast (ST87/Bracha
// style, eventual delivery).
//
// Claims under test: the sticky backend trades crypto for quorum waiting;
// the witness broadcast delivers eventually but offers no linearizable
// deliver/verify operation (we measure its end-to-end delivery latency for
// scale); signed broadcast shifts cost into signing/verifying.
#include <thread>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "broadcast/reliable_broadcast.hpp"
#include "msgpass/witness_broadcast.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"

namespace {

using namespace swsig;
using bench::max_f;

constexpr int kMessages = 8;

template <typename RB>
double run_shared(RB& rb, int n) {
  std::vector<std::jthread> helpers;
  for (int pid = 1; pid <= n; ++pid) {
    helpers.emplace_back([&rb, pid](std::stop_token st) {
      runtime::ThisProcess::Binder bind(pid);
      while (!st.stop_requested()) {
        if (!rb.help_round()) std::this_thread::yield();
      }
    });
  }
  // Latency: broadcast by p1 until deliverable at p2.
  util::Samples samples;
  for (int seq = 0; seq < kMessages; ++seq) {
    samples.add(bench::time_us([&] {
      {
        runtime::ThisProcess::Binder bind(1);
        rb.broadcast(seq, 1000 + static_cast<broadcast::Value>(seq));
      }
      runtime::ThisProcess::Binder bind(2);
      while (!rb.deliver(1, seq)) std::this_thread::yield();
    }));
  }
  for (auto& t : helpers) t.request_stop();
  return samples.median();
}

double sticky_backend(int n, int f) {
  runtime::FreeStepController ctrl;
  registers::Space space(ctrl);
  broadcast::StickyReliableBroadcast rb(space, {n, f, kMessages});
  return run_shared(rb, n);
}

double signed_backend(int n, int f) {
  runtime::FreeStepController ctrl;
  registers::Space space(ctrl);
  crypto::SignatureAuthority auth({.n = n, .seed = 2});
  broadcast::SignedReliableBroadcast rb(space, auth, {n, f, kMessages});
  return run_shared(rb, n);
}

double witness_msgpass(int n, int f) {
  msgpass::WitnessBroadcast wb({n, f});
  util::Samples samples;
  for (int seq = 1; seq <= kMessages; ++seq) {
    samples.add(bench::time_us([&] {
      {
        runtime::ThisProcess::Binder bind(1);
        wb.broadcast(static_cast<std::uint64_t>(seq), 7);
      }
      runtime::ThisProcess::Binder bind(2);
      wb.await_delivery(1, static_cast<std::uint64_t>(seq));
    }));
  }
  return samples.median();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter report(argc, argv, "broadcast");
  bench::heading(
      "T7 — broadcast->first-delivery latency (median us over 8 messages)");
  util::Table table({"n", "f", "sticky (regs, n>3f)", "signed (regs, n>2f)",
                     "witness bcast (msgs, n>3f)"});
  for (int n : {4, 7, 10}) {
    const int f = max_f(n);
    const double sticky_us = sticky_backend(n, f);
    const double signed_us = signed_backend(n, f);
    const double witness_us = witness_msgpass(n, f);
    table.add_row({util::Table::num(n), util::Table::num(f),
                   util::Table::num(sticky_us), util::Table::num(signed_us),
                   util::Table::num(witness_us)});
    const std::string tag = "broadcast.n" + std::to_string(n);
    report.metric(tag + ".sticky_us", sticky_us);
    report.metric(tag + ".signed_us", signed_us);
    report.metric(tag + ".witness_us", witness_us);
  }
  table.print();
  return 0;
}
