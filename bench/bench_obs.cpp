// Observability overhead: what the flight recorder and metrics registry
// cost on the paths they instrument.
//
// Two layers of measurement:
//   * microbenchmarks of the primitives — obs::record() with the recorder
//     enabled vs runtime-disabled (one relaxed flag load, the floor a
//     SWSIG_OBS_DISABLED build reaches exactly, minus that single load),
//     sharded counter add, histogram add;
//   * the end-to-end write path of the emulated SWMR substrate, recorder
//     on vs off. Each write is a full ECHO/ACCEPT/ACK quorum ladder, so
//     the recorder's handful of nanoseconds per event must vanish in the
//     noise: the acceptance budget is write_overhead_ratio <= 1.05. The
//     quorum path is scheduling-noise-dominated (single runs swing ~10%),
//     so the ratio is computed per alternating-order trial — both sides
//     of one trial share the machine conditions of the moment — and the
//     reported overhead is the median trial ratio.
//
// One caveat, by construction: a single binary cannot contain both the
// instrumented and the compiled-out code, so the "off" side of the write
// comparison is the runtime toggle — record() returning after its relaxed
// load. The microbenchmark section bounds how far that floor sits from a
// true compiled-out build (sub-nanosecond), which keeps the single-binary
// comparison honest. BENCH_obs.json is tracked by the warn-only perf-smoke
// job like every other bench baseline.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "msgpass/emulated_swmr.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "runtime/process.hpp"
#include "util/sharded_counter.hpp"
#include "util/table.hpp"

namespace {

using namespace swsig;

constexpr std::uint64_t kRecordIters = 2'000'000;
constexpr std::uint64_t kCounterIters = 8'000'000;
constexpr int kWrites = 2000;
constexpr int kTrials = 15;     // alternating-order write-path trials
constexpr int kValuePool = 64;  // bounds value interning in the write loop

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// ns per call over a tight loop of `iters` calls.
template <typename F>
double ns_per_call(std::uint64_t iters, F&& fn) {
  const double us = bench::time_us([&] {
    for (std::uint64_t i = 0; i < iters; ++i) fn(i);
  });
  return us * 1000.0 / static_cast<double>(iters);
}

double bench_record(bool enabled) {
  obs::FlightRecorder& rec = obs::FlightRecorder::instance();
  rec.clear();
  rec.set_enabled(enabled);
  const double ns = ns_per_call(kRecordIters, [](std::uint64_t i) {
    obs::Event e;
    e.ts_ns = i + 1;  // pre-stamped: measures the ring, not the clock
    e.kind = obs::EventKind::kMsgSend;
    e.tag = obs::MsgTag::kEcho;
    e.pid = 1;
    e.sn = i;
    obs::record(e);
  });
  rec.set_enabled(true);
  rec.clear();
  return ns;
}

// Mean us per write over the full quorum ladder, recorder toggled by the
// caller. One space per measurement so sn/interning state is identical on
// both sides.
double bench_write_path() {
  msgpass::EmulatedSpace space(msgpass::EmulatedSpace::Options{4, 1, 0, true});
  auto& reg = space.make_swmr<std::string>(1, "v0", "bench-reg");
  std::vector<std::string> pool;
  pool.reserve(kValuePool);
  for (int i = 0; i < kValuePool; ++i) pool.push_back("v" + std::to_string(i));
  runtime::ThisProcess::Binder bind(1);
  for (int i = 0; i < kWrites / 10; ++i) reg.write(pool[0]);  // warmup
  const double us = bench::time_us([&] {
    for (int i = 0; i < kWrites; ++i)
      reg.write(pool[static_cast<std::size_t>(i % kValuePool)]);
  });
  space.stop();
  return us / kWrites;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "obs");
  obs::FlightRecorder& rec = obs::FlightRecorder::instance();

  bench::heading("Primitive costs (ns/call)");
  const double record_on_ns = bench_record(true);
  const double record_off_ns = bench_record(false);

  util::ShardedCounter counter;
  const double counter_ns =
      ns_per_call(kCounterIters, [&](std::uint64_t) { counter.add(); });
  obs::LogHistogram hist;
  const double hist_ns =
      ns_per_call(kCounterIters, [&](std::uint64_t i) {
        hist.add(static_cast<double>((i % 1000) + 1));
      });

  util::Table t({"primitive", "ns/call"});
  t.add_row({"record (enabled)", util::Table::num(record_on_ns, 2)});
  t.add_row({"record (runtime off)", util::Table::num(record_off_ns, 2)});
  t.add_row({"sharded counter add", util::Table::num(counter_ns, 2)});
  t.add_row({"histogram add", util::Table::num(hist_ns, 2)});
  t.print();
  rep.metric("obs.record_ns", record_on_ns);
  rep.metric("obs.record_off_ns", record_off_ns);
  rep.metric("obs.counter_add_ns", counter_ns);
  rep.metric("obs.hist_add_ns", hist_ns);

  bench::heading("Emulated SWMR write path, recorder on vs off (us/write)");
  (void)bench_write_path();  // process-wide warmup (threads, pages); discard
  std::vector<double> on_us, off_us, ratios;
  for (int t = 0; t < kTrials; ++t) {
    const bool on_first = (t % 2 == 0);  // alternate order across trials
    double trial_on = 0, trial_off = 0;
    for (int side = 0; side < 2; ++side) {
      const bool on = (side == 0) == on_first;
      rec.set_enabled(on);
      (on ? trial_on : trial_off) = bench_write_path();
    }
    on_us.push_back(trial_on);
    off_us.push_back(trial_off);
    ratios.push_back(trial_off > 0 ? trial_on / trial_off : 0.0);
  }
  rec.set_enabled(true);
  const double write_on_us = median(on_us);
  const double write_off_us = median(off_us);
  const double ratio = median(ratios);

  // How many flight-recorder events one quorum write generates end to end
  // (send/recv plane + ladder phases), for reasoning about the budget.
  const std::uint64_t e0 = rec.events_recorded();
  (void)bench_write_path();
  const double events_per_write =
      static_cast<double>(rec.events_recorded() - e0) /
      (kWrites + kWrites / 10);  // the helper's warmup writes record too

  util::Table w({"recorder", "us/write"});
  w.add_row({"on", util::Table::num(write_on_us, 2)});
  w.add_row({"off", util::Table::num(write_off_us, 2)});
  w.add_row({"overhead ratio", util::Table::num(ratio, 4)});
  w.add_row({"events/write", util::Table::num(events_per_write, 1)});
  w.print();
  rep.metric("obs.write_us_on", write_on_us);
  rep.metric("obs.write_us_off", write_off_us);
  rep.metric("obs.write_overhead_ratio", ratio);
  rep.metric("obs.events_per_write", events_per_write);

  // Snapshot cost while rings are warm (forensics-path latency).
  const double snapshot_us = bench::time_us([&] { (void)rec.snapshot(); });
  rep.metric("obs.snapshot_us", snapshot_us);
  std::cout << "\nsnapshot of warm rings: " << snapshot_us << " us\n";

  rep.write();
  return 0;
}
