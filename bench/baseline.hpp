// Persisted benchmark baselines.
//
// Every bench binary constructs a Reporter from (argc, argv) and records
// its headline numbers as flat key -> double metrics. With
//
//   bench_<name> --json [path]
//
// the metrics are dumped as JSON (default path BENCH_<name>.json) on exit;
// without --json the Reporter is inert. tools/bench_compare.py diffs two
// dumps with a regression threshold, and bench/baselines/ holds committed
// snapshots so perf PRs can prove their wins (see README, "Benchmark
// baselines").
//
// Conventions: metric keys are dot-separated paths ("read.n4.plain_us");
// lower is better, except keys ending in "_per_s", "_ops" or "_speedup",
// which bench_compare.py treats as higher-is-better.
#pragma once

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace swsig::bench {

class Reporter {
 public:
  Reporter(int argc, char** argv, std::string name) : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        enabled_ = true;
        path_ = "BENCH_" + name_ + ".json";
        if (i + 1 < argc && argv[i + 1][0] != '-') path_ = argv[++i];
      }
    }
  }

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  ~Reporter() {
    if (enabled_ && !written_) write();
  }

  bool enabled() const { return enabled_; }

  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  void write() {
    written_ = true;
    if (!enabled_) return;
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "bench: cannot write " << path_ << "\n";
      return;
    }
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n");
      out << "    \"" << metrics_[i].first << "\": " << fmt(metrics_[i].second);
    }
    out << "\n  }\n}\n";
    std::cerr << "bench: wrote " << path_ << " (" << metrics_.size()
              << " metrics)\n";
  }

 private:
  static std::string fmt(double v) {
    std::ostringstream os;
    os.precision(9);
    os << v;
    const std::string s = os.str();
    // JSON numbers: "inf"/"nan" are not representable; clamp to null-safe 0.
    if (s.find("inf") != std::string::npos ||
        s.find("nan") != std::string::npos)
      return "0";
    return s;
  }

  std::string name_;
  std::string path_;
  bool enabled_ = false;
  bool written_ = false;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace swsig::bench
