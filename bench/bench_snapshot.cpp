// T8 — Signature-free atomic snapshot: update/scan latency vs n, idle and
// under concurrent update churn.
#include <atomic>
#include <thread>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "runtime/process.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using namespace swsig;
using bench::max_f;

constexpr int kIters = 60;

struct Row {
  double update_us;
  double scan_idle_us;
  double scan_churn_us;
};

Row run(int n, int f) {
  runtime::FreeStepController ctrl;
  registers::Space space(ctrl);
  snapshot::AtomicSnapshot snap(space, {.n = n, .f = f, .v0 = 0});
  std::vector<std::jthread> helpers;
  for (int pid = 1; pid <= n; ++pid) {
    helpers.emplace_back([&snap, pid](std::stop_token st) {
      runtime::ThisProcess::Binder bind(pid);
      while (!st.stop_requested()) {
        if (!snap.help_round()) std::this_thread::yield();
      }
    });
  }

  Row row{};
  {
    runtime::ThisProcess::Binder bind(2);
    std::uint64_t v = 0;
    row.update_us =
        bench::sample_latency(kIters, [&] { snap.update(++v); }).median();
    row.scan_idle_us =
        bench::sample_latency(kIters, [&] { snap.scan(); }).median();
  }
  // Scan while another process updates continuously.
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    runtime::ThisProcess::Binder bind(3);
    std::uint64_t v = 1000;
    while (!stop.load()) snap.update(++v);
  });
  {
    runtime::ThisProcess::Binder bind(4);
    row.scan_churn_us =
        bench::sample_latency(kIters, [&] { snap.scan(); }).median();
  }
  stop = true;
  churner.join();
  for (auto& t : helpers) t.request_stop();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter report(argc, argv, "snapshot");
  bench::heading("T8 — snapshot latency (median us over 60 ops)");
  util::Table table(
      {"n", "f", "update", "scan (idle)", "scan (under churn)"});
  for (int n : {4, 7, 10}) {
    const int f = max_f(n);
    const Row r = run(n, f);
    table.add_row({util::Table::num(n), util::Table::num(f),
                   util::Table::num(r.update_us),
                   util::Table::num(r.scan_idle_us),
                   util::Table::num(r.scan_churn_us)});
    const std::string tag = "snapshot.n" + std::to_string(n);
    report.metric(tag + ".update_us", r.update_us);
    report.metric(tag + ".scan_idle_us", r.scan_idle_us);
    report.metric(tag + ".scan_churn_us", r.scan_churn_us);
  }
  table.print();
  return 0;
}
