// T10 — Ablations of design choices recorded in docs/ARCHITECTURE.md:
//  (a) register substrate: mutex-protected Swmr vs seqlock (read-mostly);
//  (b) the paper's set0-reset Verify loop vs the §5.1 naive-quorum
//      strawman — the strawman breaks the relay property under vote-flip
//      collusion, the paper's loop does not (this is WHY the algorithm has
//      its unusual shape);
//  (c) helper idle backoff on/off.
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>

#include "bench/baseline.hpp"
#include "bench/common.hpp"
#include "byzantine/behaviors.hpp"
#include "core/system.hpp"
#include "core/verifiable_register.hpp"
#include "registers/seqlock.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"

namespace {

using namespace swsig;
using Reg = core::VerifiableRegister<std::uint64_t>;

// ---- (a) substrate read throughput: 1 writer, 3 readers, 50 ms window.
struct SubstrateResult {
  double mutex_mops;
  double seqlock_mops;
};

SubstrateResult substrate() {
  SubstrateResult result{};
  {
    runtime::FreeStepController ctrl;
    registers::Space space(ctrl, registers::Space::Enforcement::kPermissive);
    // Swmr<T> now defaults to seqlock storage for trivially copyable T;
    // the ablation's mutex arm forces the mutex engine explicitly.
    registers::Swmr<std::uint64_t, registers::MutexStorage<std::uint64_t>>
        reg(space, 1, 0, "m");
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reads{0};
    std::thread writer([&] {
      runtime::ThisProcess::Binder bind(1);
      std::uint64_t v = 0;
      while (!stop.load()) reg.write(++v);
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r)
      readers.emplace_back([&] {
        std::uint64_t local = 0;
        while (!stop.load()) {
          reg.read();
          ++local;
        }
        reads.fetch_add(local);
      });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop = true;
    writer.join();
    for (auto& t : readers) t.join();
    result.mutex_mops = static_cast<double>(reads.load()) / 50e3;
  }
  {
    registers::SeqlockRegister<std::uint64_t> reg(0);
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reads{0};
    std::thread writer([&] {
      std::uint64_t v = 0;
      while (!stop.load()) reg.write(++v);
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r)
      readers.emplace_back([&] {
        std::uint64_t local = 0;
        while (!stop.load()) {
          reg.read();
          ++local;
        }
        reads.fetch_add(local);
      });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop = true;
    writer.join();
    for (auto& t : readers) t.join();
    result.seqlock_mops = static_cast<double>(reads.load()) / 50e3;
  }
  return result;
}

// ---- (b) §5.1 strawman Verify: one-shot quorum, no set0 reset. The
// strawman must fix SOME collection order; we scan descending, which the
// colluders (high pids) exploit — the point of §5.1 is that every fixed
// one-shot rule has a schedule the adversary can exploit.
bool naive_verify(Reg& reg, std::uint64_t v) {
  const int k = runtime::ThisProcess::id();
  const int n = reg.config().n;
  const int f = reg.config().f;
  auto raw = reg.raw();
  const auto ck =
      (*raw.round)[k]->update([](core::RoundCounter& c) { ++c; });
  std::map<int, bool> votes;
  while (static_cast<int>(votes.size()) < n - f) {
    for (int j = n; j >= 1 && static_cast<int>(votes.size()) < n - f; --j) {
      if (votes.contains(j)) continue;
      const auto t = (*raw.channel)[j][k]->read();
      if (t.second >= ck) votes[j] = t.first.contains(v);
    }
    std::this_thread::yield();
  }
  int yes = 0;
  for (const auto& [pid, vote] : votes) yes += vote ? 1 : 0;
  if (yes >= n - f) return true;  // 2f+1 "Yes" among the first n−f replies
  return false;                   // forced answer in the f < k < 2f+1 gap
}

struct RelayResult {
  int paper_violations;
  int naive_violations;
};

RelayResult relay_under_flippers(int n, int f, int rounds) {
  const std::set<int> byz = [&] {
    std::set<int> s;
    for (int pid = n; pid > n - f; --pid) s.insert(pid);
    return s;
  }();
  core::FreeSystem<Reg> sys(Reg::Config{n, f, 0, false},
                            core::HelperOptions{.exclude = byz});
  for (int b : byz) {
    sys.spawn(b, [&sys](std::stop_token st) {
      byzantine::VoteFlipHelper<Reg> flipper(sys.alg(), 42);
      while (!st.stop_requested()) flipper.round();  // hot loop: fast liar
    });
  }
  sys.as(1, [](Reg& r) {
    r.write(42);
    r.sign(42);
  });

  RelayResult result{0, 0};
  bool paper_seen_true = false;
  bool naive_seen_true = false;
  for (int i = 0; i < rounds; ++i) {
    const bool paper = sys.as(2, [](Reg& r) { return r.verify(42); });
    if (paper_seen_true && !paper) ++result.paper_violations;
    paper_seen_true |= paper;
    const bool naive =
        sys.as(3, [](Reg& r) { return naive_verify(r, 42); });
    if (naive_seen_true && !naive) ++result.naive_violations;
    naive_seen_true |= naive;
  }
  return result;
}

// ---- (c) helper idle backoff.
double verify_latency(bool backoff) {
  core::FreeSystem<Reg> sys(Reg::Config{7, 2, 0, false},
                            core::HelperOptions{.exclude = {}, .idle_backoff = backoff});
  sys.as(1, [](Reg& r) {
    r.write(42);
    r.sign(42);
  });
  return sys.as(2, [&](Reg& r) {
    return bench::sample_latency(200, [&] { r.verify(42); }).median();
  });
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter report(argc, argv, "ablation");
  bench::heading("T10a — register substrate read throughput (Mops/s, "
                 "1 writer + 3 readers, 50 ms)");
  const SubstrateResult sub = substrate();
  util::Table ta({"substrate", "reads Mops/s"});
  ta.add_row({"mutex Swmr", util::Table::num(sub.mutex_mops)});
  ta.add_row({"seqlock", util::Table::num(sub.seqlock_mops)});
  ta.print();
  report.metric("ablation.substrate.mutex_mops_per_s", sub.mutex_mops);
  report.metric("ablation.substrate.seqlock_mops_per_s", sub.seqlock_mops);

  bench::heading("T10b — relay violations over 150 verifies of a SIGNED "
                 "value under f vote-flip colluders (paper loop must be 0)");
  util::Table tb({"n", "f", "paper Verify violations",
                  "naive-quorum Verify violations"});
  for (int n : {4, 7}) {
    const int f = (n - 1) / 3;
    const RelayResult r = relay_under_flippers(n, f, 150);
    tb.add_row({util::Table::num(n), util::Table::num(f),
                util::Table::num(r.paper_violations),
                util::Table::num(r.naive_violations)});
  }
  tb.print();

  bench::heading("T10c — helper idle backoff (n=7, f=2)");
  const double backoff_on = verify_latency(true);
  const double backoff_off = verify_latency(false);
  util::Table tc({"idle backoff", "verify median us"});
  tc.add_row({"on", util::Table::num(backoff_on)});
  tc.add_row({"off", util::Table::num(backoff_off)});
  tc.print();
  report.metric("ablation.backoff_on_verify_us", backoff_on);
  report.metric("ablation.backoff_off_verify_us", backoff_off);
  return 0;
}
