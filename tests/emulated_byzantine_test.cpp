// Adversarial tests for the message-passing register emulation: Byzantine
// writers equivocate at the network level, Byzantine processes flood fake
// protocol messages and garbage payloads — none of it may violate the
// register's semantics for correct processes.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <set>
#include <thread>

#include "msgpass/emulated_swmr.hpp"
#include "runtime/process.hpp"

namespace swsig::msgpass {
namespace {

using runtime::ThisProcess;

// Byzantine writer sends DIFFERENT values for the same sequence number to
// different processes (network-level equivocation, the attack the
// echo-once-per-sn rule exists for). Correct readers may see the old value
// or whichever variant got certified — but never both variants.
TEST(EmulatedByzantine, WriterEquivocationPerSnIsResolved) {
  for (int round = 0; round < 5; ++round) {
    EmulatedSpace space({.n = 4, .f = 1});
    auto& reg = space.make_swmr<int>(1, 0, "r");
    {
      ThisProcess::Binder bind(1);
      for (int to = 1; to <= 4; ++to) {
        Message m;
        m.to = to;
        m.reg = 0;
        m.type = "WRITE";
        m.sn = 1;
        m.payload = (to <= 2) ? 100 : 200;  // two variants of write #1
        space.network().send(m);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::set<int> observed;
    for (int pid = 2; pid <= 4; ++pid) {
      ThisProcess::Binder bind(pid);
      observed.insert(reg.read());
    }
    // 0 (initial) plus at most ONE of the two variants.
    EXPECT_FALSE(observed.contains(100) && observed.contains(200))
        << "round " << round;
  }
}

// A Byzantine process floods ACCEPT messages for a value the writer never
// wrote: with only f=1 voice it stays below the f+1 amplification and the
// n−f delivery thresholds, so no correct process ever stores it.
TEST(EmulatedByzantine, FakeAcceptFloodCannotForgeValues) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& reg = space.make_swmr<int>(1, 7, "r");
  {
    ThisProcess::Binder bind(3);  // Byzantine non-writer
    for (int i = 0; i < 20; ++i) {
      Message m;
      m.reg = 0;
      m.type = "ACCEPT";
      m.sn = 99;
      m.payload = 666;
      space.network().broadcast(m);
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  for (int pid = 2; pid <= 4; ++pid) {
    ThisProcess::Binder bind(pid);
    EXPECT_EQ(reg.read(), 7) << "p" << pid;
  }
}

// Same for fake WRITE messages from a non-owner: dropped at the source
// check (only the owner's WRITEs are echoed).
TEST(EmulatedByzantine, NonOwnerWriteMessagesIgnored) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& reg = space.make_swmr<int>(1, 7, "r");
  {
    ThisProcess::Binder bind(2);
    Message m;
    m.reg = 0;
    m.type = "WRITE";
    m.sn = 5;
    m.payload = 123;
    space.network().broadcast(m);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ThisProcess::Binder bind(3);
  EXPECT_EQ(reg.read(), 7);
}

// Garbage payloads (wrong std::any type) must not crash server threads,
// and the register must keep functioning afterwards.
TEST(EmulatedByzantine, GarbagePayloadsAreDropped) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& reg = space.make_swmr<int>(1, 0, "r");
  {
    ThisProcess::Binder bind(4);
    for (const char* type : {"WRITE", "ECHO", "ACCEPT", "STATE", "READ"}) {
      Message m;
      m.reg = 0;
      m.type = type;
      m.sn = 1;
      m.payload = std::string("not-an-int");
      space.network().broadcast(m);
    }
  }
  // The system still works end-to-end.
  {
    ThisProcess::Binder bind(1);
    reg.write(11);
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 11);
}

// Messages for unknown register ids are ignored (no out-of-bounds access).
TEST(EmulatedByzantine, UnknownRegisterIdIgnored) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& reg = space.make_swmr<int>(1, 3, "r");
  {
    ThisProcess::Binder bind(2);
    Message m;
    m.reg = 999;
    m.type = "WRITE";
    m.sn = 1;
    m.payload = 5;
    space.network().broadcast(m);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ThisProcess::Binder bind(3);
  EXPECT_EQ(reg.read(), 3);
}

// A crashed (silent) process: writes and reads still complete with n−f
// live processes.
TEST(EmulatedByzantine, ToleratesSilentProcess) {
  EmulatedSpace space({.n = 4, .f = 1});
  // We cannot "crash" a server thread via public API, so emulate silence
  // by having the Byzantine process never participate as a CLIENT; its
  // server still runs, which only HELPS — so additionally check the
  // protocol thresholds directly: with n=4, f=1, the writer needs 3 acks
  // and a reader needs 3 matching states; both exist without p4's client.
  auto& reg = space.make_swmr<int>(1, 0, "r");
  {
    ThisProcess::Binder bind(1);
    reg.write(9);
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 9);
}

// Concurrent equivocation + honest traffic on a SECOND register: protocol
// instances are isolated by register id.
TEST(EmulatedByzantine, RegistersAreIsolated) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& bad = space.make_swmr<int>(1, 0, "bad");
  auto& good = space.make_swmr<int>(2, 0, "good");
  std::atomic<bool> stop{false};
  std::thread byz([&] {
    ThisProcess::Binder bind(1);
    int i = 0;
    while (!stop.load()) {
      Message m;
      m.reg = 0;  // the "bad" register
      m.type = "WRITE";
      m.sn = 1;
      m.to = 1 + (i % 4);
      m.payload = (i % 2) ? 100 : 200;
      space.network().send(m);
      ++i;
      std::this_thread::yield();
    }
  });
  {
    ThisProcess::Binder bind(2);
    good.write(55);
  }
  {
    ThisProcess::Binder bind(3);
    EXPECT_EQ(good.read(), 55);
  }
  stop = true;
  byz.join();
  (void)bad;
}

}  // namespace
}  // namespace swsig::msgpass
