// Adversarial tests for the message-passing register emulation: Byzantine
// writers equivocate at the network level, Byzantine processes flood fake
// protocol messages and garbage payloads — none of it may violate the
// register's semantics for correct processes.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <set>
#include <thread>

#include "msgpass/batched_space.hpp"
#include "msgpass/emulated_swmr.hpp"
#include "runtime/process.hpp"

namespace swsig::msgpass {
namespace {

using runtime::ThisProcess;

// Waits until the network sent no new messages for several consecutive
// poll intervals, then returns the total sent count — the yardstick for
// "and nothing else happened" assertions. Ten stable 5 ms polls: a server
// thread descheduled while holding a still-cascading message would have to
// stall more than 50 ms to slip a straggler past the baseline, so the
// exact-count assertions stay sharp without being flake-prone.
std::uint64_t quiesce(Network& net) {
  return drain_message_count([&] { return net.messages_sent(); },
                             std::chrono::milliseconds(5), /*stable_polls=*/10);
}

// Byzantine writer sends DIFFERENT values for the same sequence number to
// different processes (network-level equivocation, the attack the
// echo-once-per-sn rule exists for). Correct readers may see the old value
// or whichever variant got certified — but never both variants.
TEST(EmulatedByzantine, WriterEquivocationPerSnIsResolved) {
  for (int round = 0; round < 5; ++round) {
    EmulatedSpace space({.n = 4, .f = 1});
    auto& reg = space.make_swmr<int>(1, 0, "r");
    {
      ThisProcess::Binder bind(1);
      for (int to = 1; to <= 4; ++to) {
        Message m;
        m.to = to;
        m.reg = 0;
        m.type = "WRITE";
        m.sn = 1;
        m.payload = (to <= 2) ? 100 : 200;  // two variants of write #1
        space.network().send(m);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::set<int> observed;
    for (int pid = 2; pid <= 4; ++pid) {
      ThisProcess::Binder bind(pid);
      observed.insert(reg.read());
    }
    // 0 (initial) plus at most ONE of the two variants.
    EXPECT_FALSE(observed.contains(100) && observed.contains(200))
        << "round " << round;
  }
}

// A Byzantine process floods ACCEPT messages for a value the writer never
// wrote: with only f=1 voice it stays below the f+1 amplification and the
// n−f delivery thresholds, so no correct process ever stores it.
TEST(EmulatedByzantine, FakeAcceptFloodCannotForgeValues) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& reg = space.make_swmr<int>(1, 7, "r");
  {
    ThisProcess::Binder bind(3);  // Byzantine non-writer
    for (int i = 0; i < 20; ++i) {
      Message m;
      m.reg = 0;
      m.type = "ACCEPT";
      m.sn = 99;
      m.payload = 666;
      space.network().broadcast(m);
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  for (int pid = 2; pid <= 4; ++pid) {
    ThisProcess::Binder bind(pid);
    EXPECT_EQ(reg.read(), 7) << "p" << pid;
  }
}

// Same for fake WRITE messages from a non-owner: dropped at the source
// check (only the owner's WRITEs are echoed).
TEST(EmulatedByzantine, NonOwnerWriteMessagesIgnored) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& reg = space.make_swmr<int>(1, 7, "r");
  {
    ThisProcess::Binder bind(2);
    Message m;
    m.reg = 0;
    m.type = "WRITE";
    m.sn = 5;
    m.payload = 123;
    space.network().broadcast(m);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ThisProcess::Binder bind(3);
  EXPECT_EQ(reg.read(), 7);
}

// Garbage payloads (wrong std::any type) must not crash server threads,
// and the register must keep functioning afterwards.
TEST(EmulatedByzantine, GarbagePayloadsAreDropped) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& reg = space.make_swmr<int>(1, 0, "r");
  {
    ThisProcess::Binder bind(4);
    for (const char* type : {"WRITE", "ECHO", "ACCEPT", "STATE", "READ"}) {
      Message m;
      m.reg = 0;
      m.type = type;
      m.sn = 1;
      m.payload = std::string("not-an-int");
      space.network().broadcast(m);
    }
  }
  // The system still works end-to-end.
  {
    ThisProcess::Binder bind(1);
    reg.write(11);
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 11);
}

// Messages for unknown register ids are ignored (no out-of-bounds access).
TEST(EmulatedByzantine, UnknownRegisterIdIgnored) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& reg = space.make_swmr<int>(1, 3, "r");
  {
    ThisProcess::Binder bind(2);
    Message m;
    m.reg = 999;
    m.type = "WRITE";
    m.sn = 1;
    m.payload = 5;
    space.network().broadcast(m);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ThisProcess::Binder bind(3);
  EXPECT_EQ(reg.read(), 3);
}

// A crashed (silent) process: writes and reads still complete with n−f
// live processes.
TEST(EmulatedByzantine, ToleratesSilentProcess) {
  EmulatedSpace space({.n = 4, .f = 1});
  // We cannot "crash" a server thread via public API, so emulate silence
  // by having the Byzantine process never participate as a CLIENT; its
  // server still runs, which only HELPS — so additionally check the
  // protocol thresholds directly: with n=4, f=1, the writer needs 3 acks
  // and a reader needs 3 matching states; both exist without p4's client.
  auto& reg = space.make_swmr<int>(1, 0, "r");
  {
    ThisProcess::Binder bind(1);
    reg.write(9);
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 9);
}

// ACCEPT replays for an already-delivered sn must be inert. Delivery prunes
// the per-sn vote tallies; without the persistent `delivered` guard, a
// Byzantine replay pooling with one correct straggler's late ACCEPT (played
// here by two test-driven senders, making the f+1 coincidence
// deterministic) re-assembled the amplification threshold on a fresh
// candidate and re-ran the whole ACCEPT/ACK storm — and every duplicate ACK
// recreated an acks_ entry at the owner that was never erased.
TEST(EmulatedByzantine, ReplayedAcceptsAfterDeliveryAreInert) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& reg = space.make_swmr<int>(1, 0, "r");
  {
    ThisProcess::Binder bind(1);
    reg.write(8);  // sn=1 delivers at every process
  }
  const std::uint64_t before = quiesce(space.network());
  for (int pid : {2, 3}) {  // f+1 distinct senders replay the real ACCEPT
    ThisProcess::Binder bind(pid);
    Message m;
    m.reg = 0;
    m.type = "ACCEPT";
    m.sn = 1;
    m.payload = 8;  // the genuinely delivered value
    space.network().broadcast(m);
  }
  // Exactly the 2 replay broadcasts (x4 recipients) and nothing else: any
  // re-amplification or duplicate ACK would add to the count.
  EXPECT_EQ(quiesce(space.network()) - before, 8u);
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 8);
}

// Concurrent equivocation + honest traffic on a SECOND register: protocol
// instances are isolated by register id.
TEST(EmulatedByzantine, RegistersAreIsolated) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& bad = space.make_swmr<int>(1, 0, "bad");
  auto& good = space.make_swmr<int>(2, 0, "good");
  std::atomic<bool> stop{false};
  std::thread byz([&] {
    ThisProcess::Binder bind(1);
    int i = 0;
    while (!stop.load()) {
      Message m;
      m.reg = 0;  // the "bad" register
      m.type = "WRITE";
      m.sn = 1;
      m.to = 1 + (i % 4);
      m.payload = (i % 2) ? 100 : 200;
      space.network().send(m);
      ++i;
      std::this_thread::yield();
    }
  });
  {
    ThisProcess::Binder bind(2);
    good.write(55);
  }
  {
    ThisProcess::Binder bind(3);
    EXPECT_EQ(good.read(), 55);
  }
  stop = true;
  byz.join();
  (void)bad;
}

// ----------------------- the same adversary against the batched substrate

// Byzantine writer sends DIFFERENT batches for the same round to different
// processes (round-level equivocation; the echo-once-per-(origin, round)
// rule). At most one variant can gather the n−f echo quorum.
TEST(BatchedByzantine, RoundEquivocationPerRoundIsResolved) {
  for (int round = 0; round < 5; ++round) {
    BatchedEmulatedSpace space({.n = 4, .f = 1, .shards = 1, .batch_max = 4});
    auto& reg = space.make_swmr<int>(1, 0, "r");
    {
      ThisProcess::Binder bind(1);
      for (int to = 1; to <= 4; ++to) {
        Message m;
        m.to = to;
        m.reg = BatchShard::kBatchProto;
        m.type = "BWRITE";
        m.sn = 1;
        m.payload = Batch{{0, 1, std::any((to <= 2) ? 100 : 200)}};
        space.shard(0).network().send(m);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::set<int> observed;
    for (int pid = 2; pid <= 4; ++pid) {
      ThisProcess::Binder bind(pid);
      observed.insert(reg.read());
    }
    // 0 (initial) plus at most ONE of the two variants.
    EXPECT_FALSE(observed.contains(100) && observed.contains(200))
        << "round " << round;
  }
}

// A Byzantine process cannot smuggle an op for someone ELSE's register
// into its own round: servers reject any batch containing an op whose
// register the origin does not own.
TEST(BatchedByzantine, SmuggledForeignOpsAreRejected) {
  BatchedEmulatedSpace space({.n = 4, .f = 1, .shards = 1, .batch_max = 4});
  auto& owned = space.make_swmr<int>(1, 7, "p1s");    // reg 0, owner p1
  auto& byz = space.make_swmr<int>(2, 3, "p2s");      // reg 1, owner p2
  {
    ThisProcess::Binder bind(2);  // Byzantine p2 targets p1's register
    Message m;
    m.reg = BatchShard::kBatchProto;
    m.type = "BWRITE";
    m.sn = 1;
    m.payload = Batch{{/*reg=*/0, /*sn=*/99, std::any(666)},
                      {/*reg=*/1, /*sn=*/1, std::any(4)}};
    space.shard(0).network().broadcast(m);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    ThisProcess::Binder bind(3);
    EXPECT_EQ(owned.read(), 7);  // p1's register untouched
    EXPECT_EQ(byz.read(), 3);    // the whole poisoned batch was dropped
  }
  // Honest traffic still works afterwards.
  {
    ThisProcess::Binder bind(1);
    owned.write(8);
  }
  ThisProcess::Binder bind(4);
  EXPECT_EQ(owned.read(), 8);
}

// A Byzantine process floods BACCEPT votes: one voice stays below the f+1
// amplification and n−f delivery thresholds even for a digest that really
// exists (votes are counted per distinct sender, so repeats don't help),
// and out-of-range digest ids are dropped outright.
TEST(BatchedByzantine, FakeAcceptFloodCannotForgeValues) {
  BatchedEmulatedSpace space({.n = 4, .f = 1, .shards = 1, .batch_max = 4});
  auto& reg = space.make_swmr<int>(1, 7, "r");
  {
    ThisProcess::Binder bind(1);
    reg.write(8);  // seeds digest id 0: the honest round's batch
  }
  // write() returns on n−f BACKs; the last server's BACK may still be in
  // flight — wait for traffic to go quiet before counting.
  const std::uint64_t before = quiesce(space.shard(0).network());
  {
    ThisProcess::Binder bind(3);
    for (int i = 0; i < 20; ++i) {
      Message m;
      m.reg = BatchShard::kBatchProto;
      m.type = "BACCEPT";
      // Replay the real digest (0) under a fresh round id, plus bogus ids.
      m.sn = 99 + static_cast<std::uint64_t>(i % 2);
      m.payload = std::pair<int, int>(1, i % 3 == 0 ? 0 : i);
      space.shard(0).network().broadcast(m);
    }
  }
  // Exactly the 20 flood broadcasts (x4 recipients) and nothing else: had
  // a server mis-counted the duplicate sender toward f+1 or n−f, it would
  // have amplified BACCEPTs or sent BACKs of its own.
  EXPECT_EQ(quiesce(space.shard(0).network()) - before, 80u);
  for (int pid = 2; pid <= 4; ++pid) {
    ThisProcess::Binder bind(pid);
    EXPECT_EQ(reg.read(), 8) << "p" << pid;
  }
}

// A Byzantine owner reuses the same register sn in two DIFFERENT rounds
// with two different values — the equivocation vector that round-keyed
// echo-once reopens (each round is an independent candidate key, so both
// digests could gather quorums and split servers' stored state 2-2,
// livelocking honest quorum reads). Servers echo-support a (reg, sn) op at
// most once across rounds, so at most one variant can certify: correct
// readers must agree on a single value and must terminate.
TEST(BatchedByzantine, CrossRoundSnReuseCannotSplitServers) {
  for (int attempt = 0; attempt < 5; ++attempt) {
    BatchedEmulatedSpace space({.n = 4, .f = 1, .shards = 1, .batch_max = 4});
    auto& reg = space.make_swmr<int>(1, 0, "r");
    {
      ThisProcess::Binder bind(1);
      for (int round = 1; round <= 2; ++round) {
        Message m;
        m.reg = BatchShard::kBatchProto;
        m.type = "BWRITE";
        m.sn = static_cast<std::uint64_t>(round);
        m.payload = Batch{{/*reg=*/0, /*sn=*/5,
                           std::any(round == 1 ? 100 : 200)}};
        space.shard(0).network().broadcast(m);
      }
    }
    quiesce(space.shard(0).network());
    std::set<int> observed;
    for (int pid = 2; pid <= 4; ++pid) {
      ThisProcess::Binder bind(pid);
      observed.insert(reg.read());
    }
    // All correct readers agree (one certified variant, or the initial 0
    // if neither certified) — and in particular never both variants.
    EXPECT_EQ(observed.size(), 1u) << "attempt " << attempt;
    EXPECT_FALSE(observed.contains(100) && observed.contains(200))
        << "attempt " << attempt;
  }
}

// The batched flavor of the replay-storm regression: BACCEPT replays for a
// delivered (origin, round) must not re-assemble a quorum once the round's
// tallies are pruned (same `delivered`-set guard, lifted to round keys).
TEST(BatchedByzantine, ReplayedAcceptsAfterDeliveryAreInert) {
  BatchedEmulatedSpace space({.n = 4, .f = 1, .shards = 1, .batch_max = 4});
  auto& reg = space.make_swmr<int>(1, 0, "r");
  {
    ThisProcess::Binder bind(1);
    reg.write(8);  // round 1, digest 0 delivers at every process
  }
  const std::uint64_t before = quiesce(space.shard(0).network());
  for (int pid : {2, 3}) {  // f+1 distinct senders replay the real BACCEPT
    ThisProcess::Binder bind(pid);
    Message m;
    m.reg = BatchShard::kBatchProto;
    m.type = "BACCEPT";
    m.sn = 1;                                // the delivered round
    m.payload = std::pair<int, int>(1, 0);   // (origin p1, the real digest)
    space.shard(0).network().broadcast(m);
  }
  // Exactly the 2 replay broadcasts (x4 recipients) and nothing else.
  EXPECT_EQ(quiesce(space.shard(0).network()) - before, 8u);
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 8);
}

// Garbage payloads (wrong std::any type) on every batched message type
// must not crash server threads; the substrate keeps working afterwards.
TEST(BatchedByzantine, GarbagePayloadsAreDropped) {
  BatchedEmulatedSpace space({.n = 4, .f = 1, .shards = 1, .batch_max = 4});
  auto& reg = space.make_swmr<int>(1, 0, "r");
  {
    ThisProcess::Binder bind(4);
    for (const char* type : {"BWRITE", "BECHO", "BACCEPT", "BACK"}) {
      Message m;
      m.reg = BatchShard::kBatchProto;
      m.type = type;
      m.sn = 1;
      m.payload = std::string("not-a-batch");
      space.shard(0).network().broadcast(m);
    }
    for (const char* type : {"READ", "STATE"}) {
      Message m;
      m.reg = 0;
      m.type = type;
      m.sn = 1;
      m.payload = std::string("not-an-int");
      space.shard(0).network().broadcast(m);
    }
  }
  {
    ThisProcess::Binder bind(1);
    reg.write(11);
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 11);
}

// Messages for unknown register ids are ignored on the batched space too.
TEST(BatchedByzantine, UnknownRegisterIdIgnored) {
  BatchedEmulatedSpace space({.n = 4, .f = 1, .shards = 1, .batch_max = 4});
  auto& reg = space.make_swmr<int>(1, 3, "r");
  {
    ThisProcess::Binder bind(2);
    Message m;
    m.reg = BatchShard::kBatchProto;
    m.type = "BWRITE";
    m.sn = 1;
    m.payload = Batch{{/*reg=*/999, /*sn=*/1, std::any(5)}};
    space.shard(0).network().broadcast(m);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ThisProcess::Binder bind(3);
  EXPECT_EQ(reg.read(), 3);
}

}  // namespace
}  // namespace swsig::msgpass
