// Runtime tests: thread→process binding, step counting, and the
// deterministic step controller's serialization + same-seed-same-trace
// replay guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "runtime/harness.hpp"
#include "runtime/process.hpp"
#include "runtime/schedule_policy.hpp"
#include "runtime/step_controller.hpp"

namespace swsig::runtime {
namespace {

TEST(ThisProcess, DefaultUnbound) { EXPECT_EQ(ThisProcess::id(), kNoProcess); }

TEST(ThisProcess, BinderScopesIdentity) {
  EXPECT_EQ(ThisProcess::id(), kNoProcess);
  {
    ThisProcess::Binder bind(3);
    EXPECT_EQ(ThisProcess::id(), 3);
    {
      ThisProcess::Binder nested(7);
      EXPECT_EQ(ThisProcess::id(), 7);
    }
    EXPECT_EQ(ThisProcess::id(), 3);
  }
  EXPECT_EQ(ThisProcess::id(), kNoProcess);
}

TEST(FreeStepController, CountsSteps) {
  FreeStepController ctrl;
  EXPECT_EQ(ctrl.steps(), 0u);
  ctrl.step();
  ctrl.step();
  EXPECT_EQ(ctrl.steps(), 2u);
}

TEST(FreeStepController, AttachTokensDistinct) {
  FreeStepController ctrl;
  EXPECT_NE(ctrl.attach(1, "a"), ctrl.attach(2, "b"));
}

// Deterministic controller serializes execution: with two threads each
// incrementing a non-atomic counter at gates, there is no data race because
// only one thread runs at a time (validated by TSAN-style logic: alternating
// increments must interleave but never corrupt).
TEST(DeterministicStepController, SerializesThreads) {
  Harness h({.deterministic = true, .seed = 1, .policy = {}});
  int counter = 0;  // deliberately non-atomic
  constexpr int kIters = 500;
  for (int pid = 1; pid <= 4; ++pid) {
    h.spawn(pid, "op", [&counter, &h](std::stop_token) {
      for (int i = 0; i < kIters; ++i) {
        h.controller().step();
        ++counter;
      }
    });
  }
  h.start();
  h.join();
  EXPECT_EQ(counter, 4 * kIters);
}

TEST(DeterministicStepController, SameSeedSameTrace) {
  auto run = [](std::uint64_t seed) {
    Harness h({.deterministic = true,
               .policy = std::make_shared<RandomPolicy>(seed)});
    for (int pid = 1; pid <= 3; ++pid) {
      h.spawn(pid, "op", [&h](std::stop_token) {
        for (int i = 0; i < 200; ++i) h.controller().step();
      });
    }
    h.start();
    h.join();
    return h.trace_hash();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_EQ(run(8), run(8));
  EXPECT_NE(run(7), run(8));
}

TEST(DeterministicStepController, RoundRobinIsFair) {
  Harness h({.deterministic = true, .seed = 1, .policy = {}});
  std::vector<int> order;
  for (int pid = 1; pid <= 3; ++pid) {
    h.spawn(pid, "op", [&, pid](std::stop_token) {
      for (int i = 0; i < 10; ++i) {
        h.controller().step();
        order.push_back(pid);  // safe: serialized
      }
    });
  }
  h.start();
  h.join();
  ASSERT_EQ(order.size(), 30u);
  // Every window of 3 consecutive grants contains all 3 pids.
  for (std::size_t i = 0; i + 3 <= order.size(); i += 3) {
    std::set<int> window(order.begin() + i, order.begin() + i + 3);
    EXPECT_EQ(window.size(), 3u) << "at window " << i;
  }
}

TEST(GatedPolicy, OnlyEnabledRun) {
  auto gated = std::make_shared<GatedPolicy>(
      std::make_shared<RoundRobinPolicy>(), std::set<ProcessId>{1, 2});
  Harness h({.deterministic = true, .policy = gated});
  std::vector<int> order;
  std::atomic<bool> p3_done{false};
  for (int pid = 1; pid <= 3; ++pid) {
    h.spawn(pid, "op", [&, pid](std::stop_token) {
      for (int i = 0; i < 20; ++i) {
        h.controller().step();
        order.push_back(pid);
      }
      if (pid == 3) p3_done = true;
    });
  }
  h.start();
  // p1 and p2 finish their 20 steps each while p3 is disabled; once they
  // detach, the fallback lets p3 run so nothing deadlocks.
  h.join();
  ASSERT_EQ(order.size(), 60u);
  // First 40 grants go to p1/p2 only.
  for (std::size_t i = 0; i < 40; ++i) EXPECT_NE(order[i], 3) << "at " << i;
  EXPECT_TRUE(p3_done.load());
  EXPECT_GT(gated->fallback_grants(), 0u);
}

TEST(Harness, JoinRoleWaitsOnlyThatRole) {
  Harness h;
  std::atomic<bool> op_done{false};
  std::atomic<bool> helper_stopped{false};
  h.spawn(1, "op", [&](std::stop_token) { op_done = true; });
  h.spawn(1, "help", [&](std::stop_token st) {
    while (!st.stop_requested()) std::this_thread::yield();
    helper_stopped = true;
  });
  h.start();
  h.join_role("op");
  EXPECT_TRUE(op_done.load());
  EXPECT_FALSE(helper_stopped.load());
  h.request_stop();
  h.join();
  EXPECT_TRUE(helper_stopped.load());
}

TEST(Harness, PropagatesThreadException) {
  Harness h;
  h.spawn(1, "op", [](std::stop_token) {
    throw std::runtime_error("boom");
  });
  h.start();
  EXPECT_THROW(h.join(), std::runtime_error);
}

TEST(Harness, StopBeforeStartIsClean) {
  Harness h;
  h.spawn(1, "help", [](std::stop_token st) {
    while (!st.stop_requested()) std::this_thread::yield();
  });
  // Destructor must release the start gate, stop, and join without hanging.
}

}  // namespace
}  // namespace swsig::runtime
