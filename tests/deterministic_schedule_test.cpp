// Schedule-coverage tests: run the register algorithms under MANY seeded
// deterministic interleavings and check every recorded history with the
// Wing–Gong linearizability checker plus the paper's property checkers.
// This explores interleavings a free-running scheduler would rarely hit,
// and every failure is replayable from its seed.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/authenticated_register.hpp"
#include "core/sticky_register.hpp"
#include "core/system.hpp"
#include "core/test_or_set.hpp"
#include "core/verifiable_register.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "lincheck/properties.hpp"
#include "lincheck/register_specs.hpp"
#include "runtime/harness.hpp"
#include "byzantine/behaviors.hpp"
#include "runtime/schedule_policy.hpp"

namespace swsig {
namespace {

using lincheck::check_linearizable;
using lincheck::check_relay;
using lincheck::check_uniqueness;
using lincheck::check_validity;
using lincheck::HistoryRecorder;

std::string render_bool(bool b) { return b ? "true" : "false"; }

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

// --------------------------------------------------------- verifiable

TEST_P(SeedSweep, VerifiableLinearizableUnderScheduler) {
  const std::uint64_t seed = GetParam();
  runtime::Harness h(
      {.deterministic = true,
       .policy = std::make_shared<runtime::RandomPolicy>(seed)});
  registers::Space space(h.controller());
  core::VerifiableRegister<int> reg(space, {.n = 4, .f = 1, .v0 = 0});
  HistoryRecorder rec;
  std::atomic<int> ops_done{0};

  h.spawn(1, "op", [&](std::stop_token) {
    rec.record("write", "1", [&] { reg.write(1); return true; },
               [](bool) { return std::string("done"); });
    rec.record("sign", "1", [&] { return reg.sign(1); },
               [](core::SignResult r) {
                 return std::string(
                     r == core::SignResult::kSuccess ? "success" : "fail");
               });
    rec.record("write", "2", [&] { reg.write(2); return true; },
               [](bool) { return std::string("done"); });
    ops_done.fetch_add(1);
  });
  h.spawn(2, "op", [&](std::stop_token) {
    rec.record("verify", "1", [&] { return reg.verify(1); }, render_bool);
    rec.record("read", "", [&] { return reg.read(); },
               [](int v) { return std::to_string(v); });
    ops_done.fetch_add(1);
  });
  h.spawn(3, "op", [&](std::stop_token) {
    rec.record("verify", "2", [&] { return reg.verify(2); }, render_bool);
    rec.record("verify", "1", [&] { return reg.verify(1); }, render_bool);
    ops_done.fetch_add(1);
  });
  for (int pid = 1; pid <= 4; ++pid) {
    h.spawn(pid, "help", [&](std::stop_token) {
      while (ops_done.load(std::memory_order_relaxed) < 3) reg.help_round();
    });
  }
  h.start();
  h.join();

  const auto ops = rec.operations();
  EXPECT_TRUE(
      check_linearizable(ops, lincheck::VerifiableRegisterSpec("0"))
          .linearizable())
      << "seed " << seed;
  EXPECT_TRUE(check_relay(ops).empty()) << "seed " << seed;
  EXPECT_TRUE(check_validity(ops).empty()) << "seed " << seed;
}

// ------------------------------------------------------ authenticated

TEST_P(SeedSweep, AuthenticatedLinearizableUnderScheduler) {
  const std::uint64_t seed = GetParam();
  runtime::Harness h(
      {.deterministic = true,
       .policy = std::make_shared<runtime::RandomPolicy>(seed)});
  registers::Space space(h.controller());
  core::AuthenticatedRegister<int> reg(space, {.n = 4, .f = 1, .v0 = 0});
  HistoryRecorder rec;
  std::atomic<int> ops_done{0};

  h.spawn(1, "op", [&](std::stop_token) {
    for (int v : {1, 2}) {
      rec.record("write", std::to_string(v),
                 [&] { reg.write(v); return true; },
                 [](bool) { return std::string("done"); });
    }
    ops_done.fetch_add(1);
  });
  h.spawn(2, "op", [&](std::stop_token) {
    rec.record("read", "", [&] { return reg.read(); },
               [](int v) { return std::to_string(v); });
    rec.record("verify", "1", [&] { return reg.verify(1); }, render_bool);
    ops_done.fetch_add(1);
  });
  h.spawn(3, "op", [&](std::stop_token) {
    rec.record("verify", "0", [&] { return reg.verify(0); }, render_bool);
    rec.record("verify", "2", [&] { return reg.verify(2); }, render_bool);
    ops_done.fetch_add(1);
  });
  for (int pid = 1; pid <= 4; ++pid) {
    h.spawn(pid, "help", [&](std::stop_token) {
      while (ops_done.load(std::memory_order_relaxed) < 3) reg.help_round();
    });
  }
  h.start();
  h.join();

  const auto ops = rec.operations();
  EXPECT_TRUE(
      check_linearizable(ops, lincheck::AuthenticatedRegisterSpec("0"))
          .linearizable())
      << "seed " << seed;
  EXPECT_TRUE(check_relay(ops).empty()) << "seed " << seed;
}

// ------------------------------------------------------------- sticky

TEST_P(SeedSweep, StickyLinearizableUnderScheduler) {
  const std::uint64_t seed = GetParam();
  runtime::Harness h(
      {.deterministic = true,
       .policy = std::make_shared<runtime::RandomPolicy>(seed)});
  registers::Space space(h.controller());
  core::StickyRegister<int> reg(space, {.n = 4, .f = 1});
  HistoryRecorder rec;
  std::atomic<int> ops_done{0};

  auto render_slot = [](const std::optional<int>& v) {
    return v ? std::to_string(*v) : std::string("⊥");
  };

  h.spawn(1, "op", [&](std::stop_token) {
    rec.record("write", "5", [&] { reg.write(5); return true; },
               [](bool) { return std::string("done"); });
    ops_done.fetch_add(1);
  });
  for (int k : {2, 3}) {
    h.spawn(k, "op", [&, render_slot](std::stop_token) {
      rec.record("read", "", [&] { return reg.read(); }, render_slot);
      rec.record("read", "", [&] { return reg.read(); }, render_slot);
      ops_done.fetch_add(1);
    });
  }
  for (int pid = 1; pid <= 4; ++pid) {
    h.spawn(pid, "help", [&](std::stop_token) {
      while (ops_done.load(std::memory_order_relaxed) < 3) reg.help_round();
    });
  }
  h.start();
  h.join();

  const auto ops = rec.operations();
  EXPECT_TRUE(check_linearizable(ops, lincheck::StickyRegisterSpec())
                  .linearizable())
      << "seed " << seed;
  EXPECT_TRUE(check_uniqueness(ops).empty()) << "seed " << seed;
}

// -------------------------------------------------------- test-or-set

TEST_P(SeedSweep, TestOrSetLinearizableUnderScheduler) {
  const std::uint64_t seed = GetParam();
  runtime::Harness h(
      {.deterministic = true,
       .policy = std::make_shared<runtime::RandomPolicy>(seed)});
  registers::Space space(h.controller());
  core::TestOrSetFromVerifiable tos(space, {.n = 4, .f = 1});
  HistoryRecorder rec;
  std::atomic<int> ops_done{0};

  h.spawn(1, "op", [&](std::stop_token) {
    rec.record("set", "", [&] { tos.set(); return true; },
               [](bool) { return std::string("done"); });
    ops_done.fetch_add(1);
  });
  for (int k : {2, 3, 4}) {
    h.spawn(k, "op", [&](std::stop_token) {
      rec.record("test", "", [&] { return tos.test(); },
                 [](int v) { return std::to_string(v); });
      rec.record("test", "", [&] { return tos.test(); },
                 [](int v) { return std::to_string(v); });
      ops_done.fetch_add(1);
    });
  }
  for (int pid = 1; pid <= 4; ++pid) {
    h.spawn(pid, "help", [&](std::stop_token) {
      while (ops_done.load(std::memory_order_relaxed) < 4)
        tos.reg().help_round();
    });
  }
  h.start();
  h.join();

  const auto ops = rec.operations();
  EXPECT_TRUE(
      check_linearizable(ops, lincheck::TestOrSetSpec()).linearizable())
      << "seed " << seed;
  EXPECT_TRUE(lincheck::check_test_relay(ops).empty()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(1, 13),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

// ---------------------------------------------- determinism regression

// trace_hash() pinned for fixed seeds, captured on the pre-fast-path
// substrate (mutex storage + virtual step gate + busy-polling helpers).
// The free-mode optimizations (seqlock storage, devirtualized gate,
// version-gated helper wakeup, cached Verify collection) must be invisible
// here: in deterministic mode every register access still parks on
// StepController::step() and helpers re-read registers exactly as the
// paper writes them, so the granted (token, pid) sequence — and hence the
// hash — is byte-identical to the pre-optimization build. If this test
// fails, a fast path leaked into deterministic mode.
std::uint64_t pinned_trace(std::uint64_t seed) {
  runtime::Harness h(
      {.deterministic = true,
       .policy = std::make_shared<runtime::RandomPolicy>(seed)});
  registers::Space space(h.controller());
  core::VerifiableRegister<int> reg(space, {.n = 4, .f = 1, .v0 = 0});
  std::atomic<int> ops_done{0};

  h.spawn(1, "op", [&](std::stop_token) {
    reg.write(1);
    reg.sign(1);
    reg.write(2);
    reg.sign(2);
    ops_done.fetch_add(1);
  });
  h.spawn(2, "op", [&](std::stop_token) {
    reg.verify(1);
    reg.read();
    ops_done.fetch_add(1);
  });
  h.spawn(3, "op", [&](std::stop_token) {
    reg.verify(2);
    reg.verify(1);
    ops_done.fetch_add(1);
  });
  for (int pid = 1; pid <= 4; ++pid) {
    h.spawn(pid, "help", [&](std::stop_token) {
      while (ops_done.load(std::memory_order_relaxed) < 3) reg.help_round();
    });
  }
  h.start();
  h.join();
  return h.trace_hash();
}

TEST(DeterminismRegression, TraceHashPinnedAcrossFastPathChanges) {
  EXPECT_EQ(pinned_trace(1), 17356776577621113944ULL);
  EXPECT_EQ(pinned_trace(7), 4670788948032501584ULL);
  EXPECT_EQ(pinned_trace(42), 7002199874767147162ULL);
}

// Deterministic mode must never take the free-mode fast path.
TEST(DeterminismRegression, DeterministicSpaceIsNotFreeMode) {
  runtime::Harness h(
      {.deterministic = true,
       .policy = std::make_shared<runtime::RandomPolicy>(1)});
  registers::Space space(h.controller());
  EXPECT_FALSE(space.free_mode());
}

// The literal H1/H2 schedule of the impossibility proof, reproduced under
// the deterministic scheduler with GatedPolicy: pb (p3) takes NO steps
// until the Byzantine reset completed — the "blank interval" of Fig. 1.
// Every thread blocks only at step gates, so the run is fully serialized
// and reproducible.
TEST(DeterministicImpossibility, LiteralFig1ScheduleBreaksRelay) {
  using Reg = core::VerifiableRegister<int>;
  // n=4 with f configured 2 (n <= 3f): thresholds n-f=2, f+1=3.
  auto gated = std::make_shared<runtime::GatedPolicy>(
      std::make_shared<runtime::RoundRobinPolicy>(),
      std::set<runtime::ProcessId>{1, 2, 4});  // p3 asleep
  runtime::Harness h({.deterministic = true, .policy = gated});
  registers::Space space(h.controller());
  Reg reg(space, {.n = 4, .f = 2, .v0 = 0, .allow_suboptimal = true});

  // Phases: 1 = pre-attack, 2 = pa's Test done, 3 = resets done (pb may
  // wake), 4 = pb's Test' done (everyone exits).
  std::atomic<int> phase{1};
  std::atomic<int> resets{0};
  int first_test = -1, second_test = -1;

  auto deny_until_done = [&](Reg& r) {
    byzantine::DenyingHelper<Reg> denier(r);
    while (phase.load() < 4) {
      denier.round();  // every round reads registers => gates
    }
  };

  h.spawn(1, "op", [&](std::stop_token) {  // s = p1, Byzantine
    reg.write(1);
    reg.sign(1);
    while (phase.load() < 2) reg.help_round();  // honest helping, phase 1
    byzantine::erase_verifiable_registers(reg);
    if (resets.fetch_add(1) + 1 == 2) {
      phase.store(3);
      gated->enable(3);  // wake pb — Fig. 1's t6
    }
    deny_until_done(reg);
  });
  h.spawn(4, "op", [&](std::stop_token) {  // Q1 member, Byzantine
    while (phase.load() < 2) reg.help_round();
    byzantine::erase_verifiable_registers(reg);
    if (resets.fetch_add(1) + 1 == 2) {
      phase.store(3);
      gated->enable(3);
    }
    deny_until_done(reg);
  });
  h.spawn(2, "op", [&](std::stop_token) {  // pa
    first_test = reg.verify(1) ? 1 : 0;    // Test -> must be 1
    phase.store(2);
    while (phase.load() < 4) reg.help_round();  // honest helping after
  });
  h.spawn(3, "op", [&](std::stop_token) {  // pb — parked at gates until woken
    while (phase.load() < 3) h.controller().step();
    second_test = reg.verify(1) ? 1 : 0;  // Test' — relay demands 1
    phase.store(4);
  });
  h.spawn(3, "help", [&](std::stop_token) {  // pb's helper, same sleep
    while (phase.load() < 3) h.controller().step();
    while (phase.load() < 4) reg.help_round();
  });

  h.start();
  h.join();
  EXPECT_EQ(first_test, 1);
  EXPECT_EQ(second_test, 0) << "relay must break at n=4, f=2 (n <= 3f)";
  EXPECT_EQ(gated->fallback_grants(), 0u)
      << "the asleep process must never have been scheduled while disabled";
}

}  // namespace
}  // namespace swsig
