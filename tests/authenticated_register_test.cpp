// Unit and property tests for Algorithm 2 (authenticated register).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "core/authenticated_register.hpp"
#include "core/system.hpp"
#include "runtime/harness.hpp"
#include "util/rng.hpp"

namespace swsig::core {
namespace {

using Reg = AuthenticatedRegister<int>;
using Sys = FreeSystem<Reg>;

Reg::Config cfg(int n, int f, int v0 = 0) {
  Reg::Config c;
  c.n = n;
  c.f = f;
  c.v0 = v0;
  return c;
}

TEST(AuthenticatedConfig, RejectsInsufficientResilience) {
  runtime::FreeStepController ctrl;
  registers::Space space(ctrl);
  EXPECT_THROW(Reg(space, cfg(3, 1)), std::invalid_argument);
  EXPECT_NO_THROW(Reg(space, cfg(4, 1)));
}

TEST(Authenticated, ReadReturnsInitialValue) {
  Sys sys(cfg(4, 1, 77));
  EXPECT_EQ(sys.as(2, [](Reg& r) { return r.read(); }), 77);
}

TEST(Authenticated, ReadSeesLastWrite) {
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) {
    r.write(10);
    r.write(20);
    r.write(30);
  });
  EXPECT_EQ(sys.as(2, [](Reg& r) { return r.read(); }), 30);
}

// [validity] Observation 16: every written value verifies, immediately —
// write and "sign" are atomic; there is no unsigned gap as in the
// verifiable register.
TEST(Authenticated, ValidityEveryWriteVerifies) {
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) { r.write(5); });
  for (int k = 2; k <= 4; ++k)
    EXPECT_TRUE(sys.as(k, [](Reg& r) { return r.verify(5); }));
}

// Initial value is deemed signed: Verify(v0) always true (Definition 15).
TEST(Authenticated, InitialValueAlwaysVerifies) {
  Sys sys(cfg(4, 1, 9));
  EXPECT_TRUE(sys.as(2, [](Reg& r) { return r.verify(9); }));
  sys.as(1, [](Reg& r) { r.write(5); });
  EXPECT_TRUE(sys.as(3, [](Reg& r) { return r.verify(9); }));
}

// [unforgeability] Observation 17: never-written values do not verify.
TEST(Authenticated, UnforgeabilityUnwrittenValue) {
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) { r.write(5); });
  EXPECT_FALSE(sys.as(2, [](Reg& r) { return r.verify(123); }));
  EXPECT_FALSE(sys.as(3, [](Reg& r) { return r.verify(123); }));
}

// Old (overwritten) values still verify: the register "signs" everything
// it ever wrote.
TEST(Authenticated, OverwrittenValuesStillVerify) {
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) {
    r.write(1);
    r.write(2);
    r.write(3);
  });
  EXPECT_TRUE(sys.as(2, [](Reg& r) { return r.verify(1); }));
  EXPECT_TRUE(sys.as(2, [](Reg& r) { return r.verify(2); }));
  EXPECT_TRUE(sys.as(2, [](Reg& r) { return r.verify(3); }));
}

// [relay] Observation 18.
TEST(Authenticated, RelayAcrossReaders) {
  Sys sys(cfg(7, 2));
  sys.as(1, [](Reg& r) { r.write(42); });
  ASSERT_TRUE(sys.as(2, [](Reg& r) { return r.verify(42); }));
  for (int round = 0; round < 3; ++round)
    for (int k = 2; k <= 7; ++k)
      EXPECT_TRUE(sys.as(k, [](Reg& r) { return r.verify(42); }));
}

// Observation 19: if a Read returns v, subsequent Verify(v) returns true.
TEST(Authenticated, ReadImpliesVerify) {
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) { r.write(13); });
  const int v = sys.as(2, [](Reg& r) { return r.read(); });
  for (int k = 2; k <= 4; ++k)
    EXPECT_TRUE(sys.as(k, [v](Reg& r) { return r.verify(v); }));
}

TEST(Authenticated, OperationsEnforceRoles) {
  Sys sys(cfg(4, 1));
  EXPECT_THROW(sys.as(2, [](Reg& r) { r.write(1); }), std::logic_error);
  EXPECT_THROW(sys.as(1, [](Reg& r) { r.read(); }), std::logic_error);
  EXPECT_THROW(sys.as(1, [](Reg& r) { r.verify(1); }), std::logic_error);
}

// Byzantine writer erases its register (writes the empty set): readers must
// fall back to v0, and Observation 19 must survive — Read never returns a
// value whose Verify would subsequently fail.
TEST(Authenticated, ByzantineEraseFallsBackToInitial) {
  Sys sys(cfg(4, 1, 0));
  sys.as(1, [](Reg& r) { r.write(5); });
  // Let a reader verify 5 so witnesses exist.
  ASSERT_TRUE(sys.as(2, [](Reg& r) { return r.verify(5); }));
  // Byzantine erase: p1 rewrites its own R_1 to empty (allowed: own port).
  sys.as(1, [](Reg& r) { r.raw().writer_set->write({}); });
  // Read now finds no tuples; must return v0 = 0, not garbage.
  EXPECT_EQ(sys.as(3, [](Reg& r) { return r.read(); }), 0);
  // Relay: 5 was verified once, so it must verify forever, erase or not.
  EXPECT_TRUE(sys.as(3, [](Reg& r) { return r.verify(5); }));
}

// A Byzantine writer removes the latest value but readers who saw it via
// Read still rely on Observation 19: Read re-verifies before returning.
TEST(Authenticated, ReadNeverReturnsUnverifiableValue) {
  Sys sys(cfg(4, 1, 0));
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  runtime::Harness h;
  // Byzantine writer: churns values and erases them again, via raw port.
  h.spawn(1, "byz", [&](std::stop_token) {
    auto raw = sys.alg().raw();
    for (int i = 1; i <= 200; ++i) {
      raw.writer_set->update([&](Reg::StampedSet& s) {
        s.insert({static_cast<SeqNo>(i), i});
      });
      raw.writer_set->write({});  // erase everything
    }
    stop = true;
  });
  for (int k = 2; k <= 4; ++k) {
    h.spawn(k, "op", [&](std::stop_token) {
      while (!stop.load()) {
        const int v = sys.alg().read();
        if (v != 0 && !sys.alg().verify(v)) violation = true;
      }
    });
  }
  h.start();
  h.join();
  EXPECT_FALSE(violation.load());
}

// Property sweep over (n, f, seed): random write/verify workloads.
struct SweepParam {
  int n;
  int f;
  std::uint64_t seed;
};

class AuthenticatedSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AuthenticatedSweep, RandomWorkloadHonorsSpec) {
  const auto [n, f, seed] = GetParam();
  Sys sys(cfg(n, f));
  util::Rng rng(seed);

  std::set<int> written{0};  // v0 counts as written
  int last = 0;
  sys.as(1, [&](Reg& r) {
    for (int i = 0; i < 15; ++i) {
      const int v = static_cast<int>(rng.uniform(1, 10));
      r.write(v);
      written.insert(v);
      last = v;
    }
  });
  EXPECT_EQ(sys.as(2, [](Reg& r) { return r.read(); }), last);
  for (int v = 0; v <= 10; ++v) {
    const int reader = 2 + static_cast<int>(rng.uniform(0, n - 2));
    const bool ok = sys.as(reader, [v](Reg& r) { return r.verify(v); });
    EXPECT_EQ(ok, written.contains(v)) << "value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AuthenticatedSweep,
    ::testing::Values(SweepParam{4, 1, 1}, SweepParam{4, 1, 2},
                      SweepParam{5, 1, 3}, SweepParam{7, 2, 4},
                      SweepParam{10, 3, 5}, SweepParam{13, 4, 6}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "n" + std::to_string(info.param.n) + "f" +
             std::to_string(info.param.f) + "s" +
             std::to_string(info.param.seed);
    });

// Works with a non-trivial value domain too.
TEST(Authenticated, StringValues) {
  FreeSystem<AuthenticatedRegister<std::string>> sys([] {
    AuthenticatedRegister<std::string>::Config c;
    c.n = 4;
    c.f = 1;
    c.v0 = "init";
    return c;
  }());
  sys.as(1, [](AuthenticatedRegister<std::string>& r) { r.write("hello"); });
  EXPECT_EQ(sys.as(2, [](AuthenticatedRegister<std::string>& r) {
    return r.read();
  }),
            "hello");
  EXPECT_TRUE(sys.as(3, [](AuthenticatedRegister<std::string>& r) {
    return r.verify("hello");
  }));
  EXPECT_FALSE(sys.as(3, [](AuthenticatedRegister<std::string>& r) {
    return r.verify("forged");
  }));
}

}  // namespace
}  // namespace swsig::core
