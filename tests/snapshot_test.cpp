// Tests for the signature-free Byzantine-tolerant atomic snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "runtime/harness.hpp"
#include "runtime/process.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "lincheck/register_specs.hpp"
#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"

namespace swsig::snapshot {
namespace {

using runtime::ThisProcess;

class SnapshotSystem {
 public:
  SnapshotSystem(int n, int f)
      : space_(controller_), snap_(space_, {.n = n, .f = f, .v0 = 0}) {
    for (int pid = 1; pid <= n; ++pid) {
      helpers_.emplace_back([this, pid](std::stop_token st) {
        ThisProcess::Binder bind(pid);
        while (!st.stop_requested()) {
          if (!snap_.help_round()) std::this_thread::yield();
        }
      });
    }
  }
  ~SnapshotSystem() {
    for (auto& t : helpers_) t.request_stop();
  }

  AtomicSnapshot& snap() { return snap_; }

  template <typename F>
  auto as(int pid, F&& fn) {
    ThisProcess::Binder bind(pid);
    return std::forward<F>(fn)(snap_);
  }

 private:
  runtime::FreeStepController controller_;
  registers::Space space_;
  AtomicSnapshot snap_;
  std::vector<std::jthread> helpers_;
};

TEST(Snapshot, InitialScanAllZero) {
  SnapshotSystem sys(4, 1);
  const Scan s = sys.as(2, [](AtomicSnapshot& sn) { return sn.scan(); });
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(s[static_cast<std::size_t>(i)].seq, 0u);
    EXPECT_EQ(s[static_cast<std::size_t>(i)].value, 0u);
  }
}

TEST(Snapshot, UpdateVisibleToScan) {
  SnapshotSystem sys(4, 1);
  sys.as(2, [](AtomicSnapshot& sn) { sn.update(5); });
  sys.as(3, [](AtomicSnapshot& sn) { sn.update(7); });
  const Scan s = sys.as(4, [](AtomicSnapshot& sn) { return sn.scan(); });
  EXPECT_EQ(s[2].value, 5u);
  EXPECT_EQ(s[3].value, 7u);
  EXPECT_EQ(s[1].value, 0u);
}

TEST(Snapshot, SequenceNumbersAdvance) {
  SnapshotSystem sys(4, 1);
  sys.as(2, [](AtomicSnapshot& sn) {
    sn.update(1);
    sn.update(2);
    sn.update(3);
  });
  const Scan s = sys.as(3, [](AtomicSnapshot& sn) { return sn.scan(); });
  EXPECT_EQ(s[2].seq, 3u);
  EXPECT_EQ(s[2].value, 3u);
}

TEST(Snapshot, ReadSegmentMatchesScan) {
  SnapshotSystem sys(4, 1);
  sys.as(2, [](AtomicSnapshot& sn) { sn.update(9); });
  const Cell c = sys.as(3, [](AtomicSnapshot& sn) {
    return sn.read_segment(2);
  });
  EXPECT_EQ(c.value, 9u);
}

// Scans are monotone: a scan that starts after another scan finished must
// dominate it component-wise (this is implied by linearizability).
TEST(Snapshot, ScanMonotonicityUnderConcurrentUpdates) {
  SnapshotSystem sys(4, 1);
  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};
  runtime::Harness h;
  h.spawn(1, "op", [&](std::stop_token) {
    for (int i = 1; i <= 10; ++i) sys.snap().update(static_cast<unsigned>(i));
    stop = true;
  });
  h.spawn(2, "op", [&](std::stop_token) {
    for (int i = 1; i <= 10; ++i)
      sys.snap().update(static_cast<unsigned>(100 + i));
  });
  h.spawn(3, "op", [&](std::stop_token) {
    Scan last;
    while (!stop.load()) {
      Scan s = sys.snap().scan();
      if (!last.empty()) {
        for (std::size_t i = 1; i < s.size(); ++i)
          if (s[i].seq < last[i].seq) violated = true;
      }
      last = std::move(s);
    }
  });
  h.start();
  h.join();
  EXPECT_FALSE(violated.load());
}

// Two scanners racing two updaters: every returned scan must be a
// consistent cut — formalized here as pairwise comparability (all scans
// must form a chain under component-wise <=, which linearizability
// implies for single-writer snapshots).
TEST(Snapshot, ScansFormAChain) {
  SnapshotSystem sys(4, 1);
  std::vector<Scan> scans;
  std::mutex mu;
  std::atomic<bool> stop{false};
  runtime::Harness h;
  h.spawn(1, "op", [&](std::stop_token) {
    for (int i = 1; i <= 8; ++i) sys.snap().update(static_cast<unsigned>(i));
    stop = true;
  });
  for (int pid : {2, 3}) {
    h.spawn(pid, "op", [&](std::stop_token) {
      while (!stop.load()) {
        Scan s = sys.snap().scan();
        std::scoped_lock lock(mu);
        scans.push_back(std::move(s));
      }
    });
  }
  h.start();
  h.join();
  auto leq = [](const Scan& a, const Scan& b) {
    for (std::size_t i = 1; i < a.size(); ++i)
      if (a[i].seq > b[i].seq) return false;
    return true;
  };
  for (const Scan& a : scans)
    for (const Scan& b : scans)
      EXPECT_TRUE(leq(a, b) || leq(b, a)) << "incomparable scans (no chain)";
}

// A Byzantine updater churning its own segment (bounded) cannot corrupt
// other segments in any returned scan, and scans still terminate.
TEST(Snapshot, ByzantineChurnDoesNotCorruptOthers) {
  SnapshotSystem sys(4, 1);
  sys.as(2, [](AtomicSnapshot& sn) { sn.update(5); });
  runtime::Harness h;
  std::atomic<bool> bad{false};
  h.spawn(1, "byz", [&](std::stop_token) {
    // Byzantine p1: rapid updates with garbage values (its own segment —
    // that is allowed; "its value" is whatever it writes).
    for (int i = 0; i < 50; ++i) sys.snap().update(static_cast<unsigned>(i));
  });
  h.spawn(3, "op", [&](std::stop_token) {
    for (int i = 0; i < 10; ++i) {
      const Scan s = sys.snap().scan();
      if (s[2].value != 5) bad = true;  // p2's segment must be untouched
    }
  });
  h.start();
  h.join();
  EXPECT_FALSE(bad.load());
}

// Full Wing-Gong linearizability check of recorded update/scan histories
// across seeds (all processes correct).
TEST(Snapshot, RecordedHistoriesLinearizable) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SnapshotSystem sys(4, 1);
    lincheck::HistoryRecorder rec;
    runtime::Harness h;
    auto render_scan = [](const Scan& s) {
      std::string out;
      for (std::size_t i = 1; i < s.size(); ++i) {
        if (i > 1) out += "|";
        out += std::to_string(s[i].value);
      }
      return out;
    };
    for (int pid : {1, 2}) {
      h.spawn(pid, "op", [&, pid, seed](std::stop_token) {
        util::Rng rng(seed * 10 + static_cast<std::uint64_t>(pid));
        for (int i = 0; i < 3; ++i) {
          const auto v = rng.uniform(1, 9);
          rec.record("snap", "update",
                     std::to_string(pid) + ":" + std::to_string(v),
                     [&] { sys.snap().update(v); return true; },
                     [](bool) { return std::string("done"); });
        }
      });
    }
    for (int pid : {3, 4}) {
      h.spawn(pid, "op", [&, render_scan](std::stop_token) {
        for (int i = 0; i < 3; ++i) {
          rec.record("snap", "scan", "",
                     [&] { return sys.snap().scan(); },
                     render_scan);
        }
      });
    }
    h.start();
    h.join();
    const auto result = lincheck::check_linearizable(
        rec.operations(), lincheck::SnapshotSpec(4, "0"));
    EXPECT_TRUE(result.linearizable()) << "seed " << seed;
  }
}

TEST(Snapshot, RejectsBadResilience) {
  runtime::FreeStepController ctrl;
  registers::Space space(ctrl);
  EXPECT_THROW(AtomicSnapshot(space, {.n = 6, .f = 2, .v0 = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace swsig::snapshot
