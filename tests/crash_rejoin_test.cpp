// Crash/rejoin regression tests for the emulated register substrate: a
// process killed mid-protocol loses its volatile replica state; on restart
// the recovery subsystem resyncs it from f+1 live peers before it serves
// again. The NoRecovery test demonstrates exactly the stale state a
// rejoined server would otherwise hold — disable recovery and the resync
// assertions here fail.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "lincheck/register_specs.hpp"
#include "msgpass/emulated_swmr.hpp"
#include "runtime/process.hpp"

namespace swsig::msgpass {
namespace {

using runtime::ThisProcess;

// Kill p4 while the owner's write ladder is in full flight, keep writing
// while it is down, restart it, and assert the recovery resync brought its
// replica to the latest certified (sn, value) — then that reads and writes
// AFTER the rejoin linearize, with the rejoined process both serving and
// issuing operations.
TEST(CrashRejoin, MidLadderCrashResyncsOnRestart) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    EmulatedSpace space({.n = 4, .f = 1});
    auto& reg = space.make_swmr<std::string>(1, "v0", "r");

    // Writer streams writes; the crash lands mid-ladder for one of them
    // (the write itself completes: its quorums need only {1,2,3}).
    std::atomic<int> written{0};
    std::thread writer([&] {
      ThisProcess::Binder bind(1);
      for (int i = 1; i <= 40; ++i) {
        reg.write("v" + std::to_string(i));
        written.store(i, std::memory_order_release);
      }
    });
    while (written.load(std::memory_order_acquire) < 5) std::this_thread::yield();
    space.crash(4);
    writer.join();

    // While down, the crashed replica holds its wiped post-crash state.
    EXPECT_EQ(reg.stored_state(4).first, 0u) << "seed " << seed;
    const auto owner_state = reg.stored_state(1);
    EXPECT_EQ(owner_state.second, "v40") << "seed " << seed;

    // Restart runs the f+1 resync before returning.
    space.restart(4);
    EXPECT_EQ(reg.stored_state(4).first, owner_state.first) << "seed " << seed;
    EXPECT_EQ(reg.stored_state(4).second, "v40") << "seed " << seed;

    // Post-rejoin history: owner writes race reads from p3 AND from the
    // rejoined p4; the full history must linearize.
    lincheck::HistoryRecorder rec;
    const auto render = [](const std::string& v) { return v; };
    std::thread w2([&] {
      ThisProcess::Binder bind(1);
      for (int i = 41; i <= 60; ++i) {
        const std::string v = "v" + std::to_string(i);
        rec.record("r", "write", v,
                   [&] { reg.write(v); return std::string("done"); }, render);
      }
    });
    std::thread r3([&] {
      ThisProcess::Binder bind(3);
      for (int i = 0; i < 20; ++i)
        rec.record("r", "read", "", [&] { return reg.read(); }, render);
    });
    std::thread r4([&] {
      ThisProcess::Binder bind(4);
      for (int i = 0; i < 20; ++i)
        rec.record("r", "read", "", [&] { return reg.read(); }, render);
    });
    w2.join();
    r3.join();
    r4.join();

    const auto ops = rec.operations();
    const lincheck::SpecFactory factory =
        [](const std::string&) -> std::unique_ptr<lincheck::SequentialSpec> {
      return std::make_unique<lincheck::PlainRegisterSpec>("v40");
    };
    const auto result = lincheck::check_linearizable(ops, factory);
    EXPECT_EQ(result.verdict, lincheck::Verdict::kLinearizable)
        << "REPRO: crash_rejoin seed=" << seed << " n=4 f=1 substrate=emulated"
        << ": " << result.detail;
    EXPECT_TRUE(lincheck::replay_witness(ops, result.witness, factory))
        << "seed " << seed;
    space.stop();
  }
}

// The other half of the regression: with recovery disabled the rejoined
// server keeps its wiped (0, initial) replica — the exact staleness the
// resync exists to fix. If recovery were silently disabled in the product
// path, MidLadderCrashResyncsOnRestart above fails; this test pins down
// WHAT it would fail with.
TEST(CrashRejoin, WithoutRecoveryRejoinsStale) {
  EmulatedSpace space({.n = 4, .f = 1, .recover_on_restart = false});
  auto& reg = space.make_swmr<std::string>(1, "v0", "r");
  {
    ThisProcess::Binder bind(1);
    for (int i = 1; i <= 5; ++i) reg.write("v" + std::to_string(i));
  }
  // The write returns on its ACK quorum; p4's ladder may still be in
  // flight, so wait for its replica to catch up before killing it.
  while (reg.stored_state(4).first < 5) std::this_thread::yield();
  space.crash(4);
  space.restart(4);
  // No resync: the replica restarts with the wiped initial state.
  EXPECT_EQ(reg.stored_state(4).first, 0u);
  EXPECT_EQ(reg.stored_state(4).second, "v0");
  // Quorum reads still mask the stale replica (n-f identical replies come
  // from the live majority) — which is why the soak's consistency checker
  // alone cannot catch a broken recovery path, and this test exists.
  {
    ThisProcess::Binder bind(2);
    EXPECT_EQ(reg.read(), "v5");
  }
  // An explicit resync heals it even with recover_on_restart off.
  space.resync(4);
  EXPECT_EQ(reg.stored_state(4).second, "v5");
  space.stop();
}

// Crashing one process must not disturb concurrent operations of the
// others: at most f down keeps every live quorum intact.
TEST(CrashRejoin, LiveQuorumsUnaffectedWhileOneDown) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& r2 = space.make_swmr<int>(2, 0, "r2");
  auto& r3 = space.make_swmr<int>(3, 0, "r3");
  space.crash(4);
  std::thread t2([&] {
    ThisProcess::Binder bind(2);
    for (int i = 1; i <= 30; ++i) {
      r2.write(i);
      EXPECT_EQ(r2.read(), i);
    }
  });
  std::thread t3([&] {
    ThisProcess::Binder bind(3);
    for (int i = 1; i <= 30; ++i) r3.write(i);
  });
  t2.join();
  t3.join();
  space.restart(4);
  EXPECT_EQ(r2.stored_state(4).second, 30);
  EXPECT_EQ(r3.stored_state(4).second, 30);
  space.stop();
}

// Rejoin against a NON-quiescent quorum: p4 restarts and resyncs while
// write ladders for two other registers are in full flight. The rejoined
// server must serve reads immediately and its replica must converge to the
// final certified state through organic ladder traffic alone.
TEST(CrashRejoin, RejoinUnderLoad) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& r1 = space.make_swmr<std::string>(1, "a0", "r1");
  auto& r2 = space.make_swmr<std::string>(2, "b0", "r2");
  std::atomic<bool> stop{false};
  std::atomic<int> w1{0}, w2{0};
  std::thread t1([&] {
    ThisProcess::Binder bind(1);
    for (int i = 1; !stop.load(std::memory_order_acquire); ++i) {
      r1.write("a" + std::to_string(i));
      w1.store(i, std::memory_order_release);
    }
  });
  std::thread t2([&] {
    ThisProcess::Binder bind(2);
    for (int i = 1; !stop.load(std::memory_order_acquire); ++i) {
      r2.write("b" + std::to_string(i));
      w2.store(i, std::memory_order_release);
    }
  });
  while (w1.load(std::memory_order_acquire) < 5 ||
         w2.load(std::memory_order_acquire) < 5)
    std::this_thread::yield();
  space.crash(4);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  space.restart(4);  // the resync races the live ladders of r1 and r2
  {
    // The rejoined process serves and issues operations right away.
    ThisProcess::Binder bind(4);
    EXPECT_EQ(r1.read()[0], 'a');
    EXPECT_EQ(r2.read()[0], 'b');
  }
  stop.store(true, std::memory_order_release);
  t1.join();
  t2.join();
  const std::string fin1 = "a" + std::to_string(w1.load());
  const std::string fin2 = "b" + std::to_string(w2.load());
  {
    ThisProcess::Binder bind(3);
    EXPECT_EQ(r1.read(), fin1);
    EXPECT_EQ(r2.read(), fin2);
  }
  // Organic amplification (deliver on n-f accepts, amplify on f+1) must
  // catch the rejoined replica up without any further resync.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((r1.stored_state(4).second != fin1 ||
          r2.stored_state(4).second != fin2) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(r1.stored_state(4).second, fin1);
  EXPECT_EQ(r2.stored_state(4).second, fin2);
  space.stop();
}

// Regression for an owner-read fast path that was removed: serving an
// owner-local view (pending OR ack-committed) races remote quorum reads —
// a remote reader can assemble n-f identical STATE replies and respond
// before the owner's own ACK wait finishes, so a later owner-local read
// returning the owner's view inverts the order (new-old inversion). The
// owner must take the quorum path like everyone else; this pins it.
TEST(CrashRejoin, OwnerReadsTakeTheQuorumPath) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EmulatedSpace space({.n = 4, .f = 1});
    auto& reg = space.make_swmr<std::string>(1, "0", "r");
    lincheck::HistoryRecorder rec;
    const auto render = [](const std::string& v) { return v; };

    std::thread writer([&] {
      ThisProcess::Binder bind(1);
      for (int i = 1; i <= 150; ++i) {
        const std::string v = std::to_string(i);
        rec.record("r", "write", v,
                   [&] { reg.write(v); return std::string("done"); }, render);
      }
    });
    std::thread owner_reader([&] {
      ThisProcess::Binder bind(1);
      for (int i = 0; i < 100; ++i)
        rec.record("r", "read", "", [&] { return reg.read(); }, render);
    });
    std::thread remote_reader([&] {
      ThisProcess::Binder bind(2);
      for (int i = 0; i < 100; ++i)
        rec.record("r", "read", "", [&] { return reg.read(); }, render);
    });
    writer.join();
    owner_reader.join();
    remote_reader.join();

    const auto ops = rec.operations();
    const lincheck::SpecFactory factory =
        [](const std::string&) -> std::unique_ptr<lincheck::SequentialSpec> {
      return std::make_unique<lincheck::PlainRegisterSpec>("0");
    };
    lincheck::CheckOptions opts;
    opts.max_states = 1u << 24;
    const auto result = lincheck::check_linearizable(ops, factory, opts);
    EXPECT_NE(result.verdict, lincheck::Verdict::kViolation)
        << "REPRO: owner_read_race seed=" << seed
        << " n=4 f=1 substrate=emulated: " << result.detail;
    space.stop();
  }
}

}  // namespace
}  // namespace swsig::msgpass
