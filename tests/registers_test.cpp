// Register substrate tests: port-ownership enforcement (the paper's §1
// write-port axiom), atomicity of Swmr/Swsr accesses and owner update(),
// and access metering.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "registers/errors.hpp"
#include "registers/seqlock.hpp"
#include "registers/space.hpp"
#include "runtime/harness.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"

namespace swsig::registers {
namespace {

using runtime::FreeStepController;
using runtime::ThisProcess;

class SpaceTest : public ::testing::Test {
 protected:
  FreeStepController ctrl;
  Space space{ctrl};
};

TEST_F(SpaceTest, SwmrInitialValue) {
  auto& reg = space.make_swmr<int>(1, 41, "r");
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 41);
}

TEST_F(SpaceTest, SwmrOwnerWriteReadBack) {
  auto& reg = space.make_swmr<std::string>(1, "init", "r");
  ThisProcess::Binder bind(1);
  reg.write("hello");
  EXPECT_EQ(reg.read(), "hello");
}

TEST_F(SpaceTest, SwmrNonOwnerWriteThrows) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  ThisProcess::Binder bind(2);
  EXPECT_THROW(reg.write(5), PortViolation);
  EXPECT_EQ(reg.read(), 0);
}

TEST_F(SpaceTest, SwmrUnboundWriteThrows) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  EXPECT_THROW(reg.write(5), PortViolation);
}

TEST_F(SpaceTest, SwmrUpdateIsOwnerOnly) {
  auto& reg = space.make_swmr<std::set<int>>(1, {}, "r");
  {
    ThisProcess::Binder bind(1);
    auto after = reg.update([](std::set<int>& s) { s.insert(3); });
    EXPECT_TRUE(after.contains(3));
  }
  ThisProcess::Binder bind(2);
  EXPECT_THROW(reg.update([](std::set<int>& s) { s.insert(4); }),
               PortViolation);
  EXPECT_EQ(reg.read(), (std::set<int>{3}));
}

TEST_F(SpaceTest, SwsrReaderEnforced) {
  auto& reg = space.make_swsr<int>(1, 3, 9, "r13");
  {
    ThisProcess::Binder bind(3);
    EXPECT_EQ(reg.read(), 9);
  }
  ThisProcess::Binder bind(2);
  EXPECT_THROW(reg.read(), PortViolation);
}

TEST_F(SpaceTest, SwsrWriterEnforced) {
  auto& reg = space.make_swsr<int>(1, 3, 0, "r13");
  {
    ThisProcess::Binder bind(1);
    reg.write(7);
  }
  ThisProcess::Binder bind(3);
  EXPECT_THROW(reg.write(8), PortViolation);
  EXPECT_EQ(reg.read(), 7);
}

TEST_F(SpaceTest, PermissiveModeSkipsChecks) {
  FreeStepController c2;
  Space lax(c2, Space::Enforcement::kPermissive);
  auto& reg = lax.make_swmr<int>(1, 0, "r");
  // Unbound thread may write in permissive mode.
  reg.write(5);
  EXPECT_EQ(reg.read(), 5);
}

TEST_F(SpaceTest, MetricsCountAccesses) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  ThisProcess::Binder bind(1);
  const auto before = space.metrics().snapshot();
  reg.write(1);
  reg.read();
  reg.read();
  const auto delta = space.metrics().snapshot().delta(before);
  EXPECT_EQ(delta.writes, 1u);
  EXPECT_EQ(delta.reads, 2u);
}

TEST_F(SpaceTest, StepControllerGatesEveryAccess) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  ThisProcess::Binder bind(1);
  const auto before = ctrl.steps();
  reg.write(1);
  reg.read();
  EXPECT_EQ(ctrl.steps(), before + 2);
}

TEST_F(SpaceTest, RegisterCountTracksCreation) {
  EXPECT_EQ(space.register_count(), 0u);
  space.make_swmr<int>(1, 0, "a");
  space.make_swsr<int>(1, 2, 0, "b");
  EXPECT_EQ(space.register_count(), 2u);
}

TEST_F(SpaceTest, RegistersKeepStableAddressesAcrossCreation) {
  auto& first = space.make_swmr<int>(1, 1, "first");
  std::vector<Swmr<int>*> more;
  for (int i = 0; i < 100; ++i)
    more.push_back(&space.make_swmr<int>(1, i, "r" + std::to_string(i)));
  ThisProcess::Binder bind(1);
  EXPECT_EQ(first.read(), 1);
  EXPECT_EQ(more[50]->read(), 50);
}

// Concurrent readers + single writer: every read observes some written
// value (atomicity smoke test under free concurrency).
TEST_F(SpaceTest, ConcurrentReadersSeeAtomicValues) {
  auto& reg = space.make_swmr<std::pair<int, int>>(1, {0, 0}, "pair");
  runtime::Harness h;
  h.spawn(1, "op", [&](std::stop_token) {
    for (int i = 1; i <= 2000; ++i) reg.write({i, -i});
  });
  for (int pid = 2; pid <= 4; ++pid) {
    h.spawn(pid, "op", [&](std::stop_token) {
      for (int i = 0; i < 2000; ++i) {
        auto [a, b] = reg.read();
        ASSERT_EQ(a, -b);  // never a torn pair
      }
    });
  }
  h.start();
  h.join();
}

TEST(Seqlock, SingleThreadRoundTrip) {
  SeqlockRegister<std::uint64_t> reg(5);
  EXPECT_EQ(reg.read(), 5u);
  reg.write(9);
  EXPECT_EQ(reg.read(), 9u);
}

// A reader must make progress while a writer storms the register: the read
// loop's bounded yield backoff keeps the reader live even when writes keep
// the sequence moving (and, on a single core, hands the writer its slice
// so the odd "write in flight" window cannot starve the reader).
TEST(Seqlock, ReaderMakesProgressUnderStormingWriter) {
  SeqlockRegister<std::uint64_t> reg(0);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t v = 0;
    while (!stop.load(std::memory_order_acquire)) reg.write(++v);
  });
  constexpr int kReads = 50000;
  std::uint64_t last = 0;
  for (int i = 0; i < kReads; ++i) last = reg.read();  // must terminate
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_LE(last, reg.read());  // reads observe the monotone write stream
}

TEST(Seqlock, VersionCountsCompletedWrites) {
  SeqlockRegister<std::uint64_t> reg(5);
  EXPECT_EQ(reg.version(), 0u);
  reg.write(6);
  reg.write(7);
  EXPECT_EQ(reg.version(), 2u);
  reg.read();
  EXPECT_EQ(reg.version(), 2u);
}

TEST(Seqlock, NoTornReadsUnderContention) {
  struct Pair {
    std::uint64_t a, b;
  };
  SeqlockRegister<Pair> reg(Pair{0, 0});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 200000; ++i) reg.write({i, ~i});
    stop = true;
  });
  std::vector<std::thread> readers;
  std::atomic<bool> torn{false};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        Pair p = reg.read();
        if (p.a != 0 && p.b != ~p.a) torn = true;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(torn.load());
}

}  // namespace
}  // namespace swsig::registers
