// Seeded fault-schedule tests: the soak harness's fault decisions must be
// a pure function of (seed, window, message) — reproducible bit-for-bit —
// and the schedule's contract with the protocol must hold: impairing at
// most f processes never blocks the quorums of honest operations, and
// delayed messages are held, not lost.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "msgpass/batched_space.hpp"
#include "msgpass/emulated_swmr.hpp"
#include "runtime/process.hpp"
#include "soak/fault_schedule.hpp"

namespace swsig::soak {
namespace {

using msgpass::Message;
using runtime::ThisProcess;

Message make_message(const std::string& type, int from, int to,
                     std::uint64_t sn, int reg) {
  Message m;
  m.type = type;
  m.from = from;
  m.to = to;
  m.sn = sn;
  m.reg = reg;
  return m;
}

// Every decision surface — per-message drop/delay, victim rotation, crash
// windows — replays identically for an identical config. The sweep covers
// both phases of many windows and all protocol message types.
TEST(FaultSchedule, SameSeedSameDecisions) {
  const FaultScheduleConfig config{.seed = 42,
                                  .kinds = FaultKinds::parse("drop+delay"),
                                  .victims = {3, 4},
                                  .period_ms = 100,
                                  .active_ms = 40,
                                  .max_delay_ms = 4,
                                  .drop_permille = 500,
                                  .delay_permille = 300};
  FaultSchedule a(config);
  FaultSchedule b(config);
  const char* kTypes[] = {"WRITE", "ECHO", "ACCEPT", "ACK", "READ", "STATE"};
  std::uint64_t drops = 0, delays = 0;
  for (std::uint64_t t = 0; t < 1200; t += 7) {
    EXPECT_EQ(a.victim_of(a.window_at(t)), b.victim_of(b.window_at(t)));
    for (const char* type : kTypes) {
      for (int from = 1; from <= 4; ++from) {
        const Message m = make_message(type, from, 5 - from, t % 9, 2);
        const auto da = a.decide(t, m);
        const auto db = b.decide(t, m);
        EXPECT_EQ(da.drop, db.drop) << type << " from " << from << " t " << t;
        EXPECT_EQ(da.delay.count(), db.delay.count())
            << type << " from " << from << " t " << t;
        drops += da.drop ? 1 : 0;
        delays += da.delay.count() > 0 ? 1 : 0;
      }
    }
  }
  // The sweep must actually exercise both fault kinds to mean anything.
  EXPECT_GT(drops, 0u);
  EXPECT_GT(delays, 0u);
}

// A different seed yields a genuinely different schedule (statistically
// certain with 500‰/300‰ rates over hundreds of draws).
TEST(FaultSchedule, DifferentSeedsDiffer) {
  FaultScheduleConfig config{.seed = 1,
                             .kinds = FaultKinds::parse("drop+delay"),
                             .victims = {4},
                             .period_ms = 100,
                             .active_ms = 100,
                             .drop_permille = 500,
                             .delay_permille = 300};
  FaultSchedule a(config);
  config.seed = 2;
  FaultSchedule b(config);
  bool differ = false;
  for (std::uint64_t t = 0; t < 500 && !differ; ++t) {
    const Message m = make_message("ECHO", 4, 1, t, 0);
    const auto da = a.decide(t, m);
    const auto db = b.decide(t, m);
    differ = da.drop != db.drop || da.delay != db.delay;
  }
  EXPECT_TRUE(differ);
}

TEST(FaultSchedule, WindowGeometryAndCrashCadence) {
  FaultSchedule s({.seed = 7,
                   .kinds = FaultKinds::parse("drop+crash"),
                   .victims = {2, 3, 4},
                   .period_ms = 400,
                   .active_ms = 150,
                   .crash_every = 4});
  EXPECT_EQ(s.window_at(0), 0u);
  EXPECT_EQ(s.window_at(399), 0u);
  EXPECT_EQ(s.window_at(400), 1u);
  EXPECT_TRUE(s.active_at(0));
  EXPECT_TRUE(s.active_at(149));
  EXPECT_FALSE(s.active_at(150));
  EXPECT_FALSE(s.active_at(399));
  for (std::uint64_t w = 0; w < 64; ++w) {
    // Victim always drawn from the pool; crash windows on the exact cadence.
    const auto victim = s.victim_of(w);
    EXPECT_TRUE(victim == 2 || victim == 3 || victim == 4) << "window " << w;
    EXPECT_EQ(s.crash_window(w), w % 4 == 3) << "window " << w;
  }
  // No impairing kind => no victim, regardless of the pool.
  FaultSchedule delay_only({.seed = 7,
                            .kinds = FaultKinds::parse("delay"),
                            .victims = {2, 3, 4}});
  EXPECT_EQ(delay_only.victim_of(5), runtime::kNoProcess);
}

TEST(FaultSchedule, DropsRequireTheEngagedGate) {
  FaultSchedule s({.seed = 3,
                   .kinds = FaultKinds::parse("drop"),
                   .victims = {4},
                   .period_ms = 100,
                   .active_ms = 100,
                   .drop_permille = 1000});
  s.set_clock([] { return std::uint64_t{10}; });
  const Message m = make_message("STATE", 4, 1, 1, 0);
  ASSERT_TRUE(s.decide(10, m).drop);  // time says drop...
  EXPECT_FALSE(s.on_deliver(m).drop);  // ...but the gate is not engaged
  s.engage(true);
  EXPECT_TRUE(s.on_deliver(m).drop);
  s.engage(false);
  EXPECT_FALSE(s.on_deliver(m).drop);
}

TEST(FaultKindsGrammar, ParseAndRoundTrip) {
  EXPECT_FALSE(FaultKinds::parse("none").any());
  EXPECT_FALSE(FaultKinds::parse("").any());
  const FaultKinds k = FaultKinds::parse("drop+delay+reorder+crash+partition");
  EXPECT_TRUE(k.drop && k.delay && k.reorder && k.crash && k.partition);
  EXPECT_EQ(k.to_string(), "drop+delay+reorder+crash+partition");
  EXPECT_EQ(FaultKinds::parse("delay+crash").to_string(), "delay+crash");
  EXPECT_EQ(FaultKinds::parse("drop+partition").to_string(),
            "drop+partition");
  EXPECT_TRUE(FaultKinds::parse("crash").impairing());
  EXPECT_TRUE(FaultKinds::parse("partition").impairing());
  EXPECT_FALSE(FaultKinds::parse("delay+reorder").impairing());
  EXPECT_THROW(FaultKinds::parse("drop+lag"), std::invalid_argument);
  EXPECT_THROW(FaultKinds::parse("dropdelay"), std::invalid_argument);
}

// A typo is self-diagnosing: the error names the offending token AND the
// full list of valid kinds.
TEST(FaultKindsGrammar, UnknownKindErrorListsValidKinds) {
  try {
    FaultKinds::parse("drop+dorp");
    FAIL() << "parse accepted a typo";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dorp"), std::string::npos) << what;
    EXPECT_NE(what.find("valid: drop, delay, reorder, crash, partition, none"),
              std::string::npos)
        << what;
  }
}

// Partition decisions are seeded and pure: the cut follows the window's
// mode exactly (inbound / outbound / symmetric), never touches bystander
// links or self-delivery, and all three directions occur over a long run.
TEST(FaultSchedule, PartitionCutsFollowTheSeededMode) {
  FaultSchedule s({.seed = 21,
                   .kinds = FaultKinds::parse("partition"),
                   .victims = {4},
                   .period_ms = 100,
                   .active_ms = 100});
  bool saw[3] = {false, false, false};
  for (std::uint64_t w = 0; w < 64; ++w) {
    ASSERT_TRUE(s.partition_window(w));  // no drop scheduled: every window
    const PartitionMode mode = s.partition_mode(w);
    saw[static_cast<int>(mode)] = true;
    const std::uint64_t t = w * 100 + 10;
    EXPECT_EQ(s.decide(t, make_message("ECHO", 2, 4, 1, 0)).drop,
              mode != PartitionMode::kOutbound)
        << "window " << w;
    EXPECT_EQ(s.decide(t, make_message("ECHO", 4, 2, 1, 0)).drop,
              mode != PartitionMode::kInbound)
        << "window " << w;
    EXPECT_FALSE(s.decide(t, make_message("ECHO", 2, 3, 1, 0)).drop);
    EXPECT_FALSE(s.decide(t, make_message("ECHO", 4, 4, 1, 0)).drop)
        << "self-delivery must never be cut";
  }
  EXPECT_TRUE(saw[0] && saw[1] && saw[2]);
}

// With drop also scheduled the two loss shapes alternate on a seeded coin,
// and crash windows take precedence over both.
TEST(FaultSchedule, PartitionAlternatesWithDropAndYieldsToCrash) {
  FaultSchedule s({.seed = 33,
                   .kinds = FaultKinds::parse("drop+crash+partition"),
                   .victims = {4},
                   .period_ms = 100,
                   .active_ms = 100,
                   .crash_every = 4});
  bool part = false, plain = false;
  for (std::uint64_t w = 0; w < 64; ++w) {
    if (s.crash_window(w)) {
      EXPECT_FALSE(s.partition_window(w)) << "window " << w;
      continue;
    }
    (s.partition_window(w) ? part : plain) = true;
  }
  EXPECT_TRUE(part);
  EXPECT_TRUE(plain);
}

// End-to-end partition: 100% loss on the victim's cut links, yet the
// quorums of the other n-1 processes complete untouched, and the post-heal
// resync brings the victim current whatever the cut direction was.
TEST(FaultInjection, PartitionHealsAndVictimCatchesUp) {
  msgpass::EmulatedSpace space({.n = 4, .f = 1});
  auto& r1 = space.make_swmr<int>(1, 0, "r1");
  FaultSchedule sched({.seed = 17,
                       .kinds = FaultKinds::parse("partition"),
                       .victims = {4},
                       .period_ms = 1000000,
                       .active_ms = 1000000});
  space.network().set_fault_injector(&sched);
  sched.engage(true);
  for (int i = 1; i <= 10; ++i) {
    ThisProcess::Binder bind(1);
    r1.write(i);
    EXPECT_EQ(r1.read(), i);
  }
  sched.engage(false);
  space.resync(4);
  EXPECT_EQ(r1.stored_state(4).second, 10);
  space.network().set_fault_injector(nullptr);
  space.stop();
}

// The f-budget contract, emulated substrate: with EVERY message touching
// the single victim dropped (permille 1000, always active), operations of
// the n-1 honest processes still complete — their quorums (n-f echoes,
// accepts, ACKs, STATE replies) never require the victim. Afterwards a
// resync heals the victim's staleness once drops disengage.
TEST(FaultInjection, DropsBelowFNeverBlockQuorum) {
  msgpass::EmulatedSpace space({.n = 4, .f = 1});
  auto& r1 = space.make_swmr<int>(1, 0, "r1");
  auto& r2 = space.make_swmr<int>(2, 0, "r2");
  FaultSchedule sched({.seed = 9,
                       .kinds = FaultKinds::parse("drop"),
                       .victims = {4},
                       .period_ms = 1000,
                       .active_ms = 1000,
                       .drop_permille = 1000});
  space.network().set_fault_injector(&sched);
  sched.engage(true);

  for (int i = 1; i <= 20; ++i) {
    {
      ThisProcess::Binder bind(1);
      r1.write(i);
    }
    {
      ThisProcess::Binder bind(2);
      r2.write(100 + i);
      EXPECT_EQ(r1.read(), i);
    }
    {
      ThisProcess::Binder bind(3);
      EXPECT_EQ(r2.read(), 100 + i);
    }
  }
  EXPECT_GT(space.network().messages_dropped(), 0u);
  // The victim's replica is stale (every certificate to it was dropped);
  // the post-window heal brings it current.
  EXPECT_LT(r1.stored_state(4).first, r1.stored_state(1).first);
  sched.engage(false);
  space.resync(4);
  EXPECT_EQ(r1.stored_state(4).first, r1.stored_state(1).first);
  EXPECT_EQ(r1.stored_state(4).second, 20);
  space.network().set_fault_injector(nullptr);
  space.stop();
}

// Same contract on the batched substrate, injector attached to every shard.
TEST(FaultInjection, DropsBelowFNeverBlockQuorumBatched) {
  msgpass::BatchedEmulatedSpace space(
      {.n = 4, .f = 1, .shards = 2, .batch_max = 4});
  auto& r1 = space.make_swmr<int>(1, 0, "r1");
  auto& r2 = space.make_swmr<int>(3, 0, "r2");
  FaultSchedule sched({.seed = 11,
                       .kinds = FaultKinds::parse("drop"),
                       .victims = {4},
                       .period_ms = 1000,
                       .active_ms = 1000,
                       .drop_permille = 1000});
  for (int s = 0; s < space.shard_count(); ++s)
    space.shard(s).network().set_fault_injector(&sched);
  sched.engage(true);

  for (int i = 1; i <= 20; ++i) {
    {
      ThisProcess::Binder bind(1);
      r1.write(i);
    }
    {
      ThisProcess::Binder bind(3);
      r2.write(100 + i);
      EXPECT_EQ(r1.read(), i);
    }
    {
      ThisProcess::Binder bind(2);
      EXPECT_EQ(r2.read(), 100 + i);
    }
  }
  std::uint64_t dropped = 0;
  for (int s = 0; s < space.shard_count(); ++s)
    dropped += space.shard(s).network().messages_dropped();
  EXPECT_GT(dropped, 0u);
  sched.engage(false);
  for (int s = 0; s < space.shard_count(); ++s)
    space.shard(s).network().set_fault_injector(nullptr);
  space.stop();
}

// Delay is loss-free: with EVERY message held back (permille 1000), all
// operations still complete — just later. This also hammers the delay
// pump's heap under concurrent pushes (regression: the pump once slept on
// a deadline held by reference into the heap; a concurrent push moved the
// element and the pump slept forever on the dangling value, wedging every
// quorum wait in the system).
TEST(FaultInjection, DelayEventuallyDelivers) {
  msgpass::EmulatedSpace space({.n = 4, .f = 1});
  auto& r1 = space.make_swmr<int>(1, 0, "r1");
  auto& r2 = space.make_swmr<int>(2, 0, "r2");
  FaultSchedule sched({.seed = 13,
                       .kinds = FaultKinds::parse("delay"),
                       .victims = {},
                       .period_ms = 1000,
                       .active_ms = 1000,
                       .max_delay_ms = 3,
                       .delay_permille = 1000});
  space.network().set_fault_injector(&sched);

  std::thread t1([&] {
    ThisProcess::Binder bind(1);
    for (int i = 1; i <= 60; ++i) r1.write(i);
  });
  std::thread t2([&] {
    ThisProcess::Binder bind(2);
    for (int i = 1; i <= 60; ++i) r2.write(-i);
  });
  std::thread t3([&] {
    ThisProcess::Binder bind(3);
    int last1 = 0, last2 = 0;
    for (int i = 0; i < 40; ++i) {
      const int v1 = r1.read();
      const int v2 = r2.read();
      EXPECT_GE(v1, last1);  // writer is monotone; reads may not regress
      EXPECT_LE(v2, last2);
      last1 = v1;
      last2 = v2;
    }
  });
  t1.join();
  t2.join();
  t3.join();
  EXPECT_GT(space.network().messages_delayed(), 0u);
  {
    ThisProcess::Binder bind(4);
    EXPECT_EQ(r1.read(), 60);
    EXPECT_EQ(r2.read(), -60);
  }
  space.network().set_fault_injector(nullptr);
  space.stop();
}

}  // namespace
}  // namespace swsig::soak
