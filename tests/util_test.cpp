// Utility tests: seeded RNG determinism and distribution sanity, Samples
// statistics, and Table formatting.
#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace swsig::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(3, 17);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 17u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(rng.chance(1, 1));
    EXPECT_FALSE(rng.chance(0, 100));
  }
}

TEST(Rng, ForkIndependence) {
  Rng parent(9);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Samples, BasicMoments) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.5);
}

TEST(Samples, EmptyIsSafe) {
  Samples s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(Samples, Merge) {
  Samples a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Table, RendersMarkdown) {
  Table t({"n", "latency"});
  t.add_row({"4", "1.25"});
  t.add_row({"7", "2.50"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| n | latency |"), std::string::npos);
  EXPECT_NE(out.find("| 4 | 1.25"), std::string::npos);
  EXPECT_NE(out.find("|---|"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

}  // namespace
}  // namespace swsig::util
