// Message-passing substrate tests: network, MPRJ17-style emulated SWMR
// registers, witness broadcast, and the full-stack corollary — the paper's
// registers running unchanged over message passing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/sticky_register.hpp"
#include "core/verifiable_register.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "lincheck/register_specs.hpp"
#include "msgpass/emulated_swmr.hpp"
#include "msgpass/network.hpp"
#include "msgpass/witness_broadcast.hpp"
#include "runtime/harness.hpp"
#include "runtime/process.hpp"

namespace swsig::msgpass {
namespace {

using runtime::ThisProcess;

// ------------------------------------------------------------- network

TEST(Network, PointToPointDelivery) {
  Network net({.n = 3});
  {
    ThisProcess::Binder bind(1);
    Message m;
    m.to = 2;
    m.type = "PING";
    net.send(m);
  }
  ThisProcess::Binder bind(2);
  const auto m = net.try_recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, "PING");
  EXPECT_EQ(m->from, 1);  // stamped, not spoofable
}

TEST(Network, SenderIdentityIsStamped) {
  Network net({.n = 3});
  {
    ThisProcess::Binder bind(3);
    Message m;
    m.to = 2;
    m.from = 1;  // attempted spoof
    net.send(m);
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(net.try_recv()->from, 3);
}

TEST(Network, UnboundSenderRejected) {
  Network net({.n = 3});
  Message m;
  m.to = 1;
  EXPECT_THROW(net.send(m), std::logic_error);
}

TEST(Network, BroadcastReachesEveryoneIncludingSelf) {
  Network net({.n = 3});
  {
    ThisProcess::Binder bind(1);
    Message m;
    m.type = "ALL";
    net.broadcast(m);
  }
  for (int pid = 1; pid <= 3; ++pid) {
    ThisProcess::Binder bind(pid);
    EXPECT_TRUE(net.try_recv().has_value()) << "p" << pid;
  }
  EXPECT_EQ(net.messages_sent(), 3u);
}

TEST(Network, TryRecvEmptyInbox) {
  Network net({.n = 2});
  ThisProcess::Binder bind(1);
  EXPECT_EQ(net.try_recv(), std::nullopt);
}

// ------------------------------------------------------- emulated SWMR

class EmulatedTest : public ::testing::Test {
 protected:
  EmulatedSpace space{{.n = 4, .f = 1}};
};

TEST_F(EmulatedTest, InitialValueReadable) {
  auto& reg = space.make_swmr<int>(1, 42, "r");
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 42);
}

TEST_F(EmulatedTest, WriteThenRead) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  {
    ThisProcess::Binder bind(1);
    reg.write(7);
  }
  for (int pid = 2; pid <= 4; ++pid) {
    ThisProcess::Binder bind(pid);
    EXPECT_EQ(reg.read(), 7) << "p" << pid;
  }
}

TEST_F(EmulatedTest, SequenceOfWritesReadsLatest) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  {
    ThisProcess::Binder bind(1);
    for (int v = 1; v <= 5; ++v) reg.write(v);
  }
  ThisProcess::Binder bind(3);
  EXPECT_EQ(reg.read(), 5);
}

TEST_F(EmulatedTest, NonOwnerWriteRejected) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  ThisProcess::Binder bind(2);
  EXPECT_THROW(reg.write(5), registers::PortViolation);
}

TEST_F(EmulatedTest, UpdateIsOwnerRmw) {
  auto& reg = space.make_swmr<std::set<int>>(1, {}, "r");
  {
    ThisProcess::Binder bind(1);
    reg.update([](std::set<int>& s) { s.insert(3); });
    reg.update([](std::set<int>& s) { s.insert(5); });
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), (std::set<int>{3, 5}));
}

// ------------------- owner-RMW race regression (PR 4) -------------------
// update() must hold a writer-side mutex across the whole
// read-compute-write. Before the fix it read owner_view_, unlocked, then
// called write() — two owner-bound threads (the model's op thread and its
// Help() thread, which Algorithms 1–3 run concurrently) could both read
// the same view, and the second write erased the first's insert (a lost
// update).
//
// To pin that interleaving deterministically, RaceHook::Payload's copy
// constructor blocks the FIRST copy performed by the armed thread after
// arming — which is exactly write()'s by-value argument copy, the copy the
// buggy code performed outside any lock — until the partner thread's whole
// update() has completed. The fixed code performs that copy while still
// holding the writer mutex, so the partner cannot run and the hook falls
// through on its timeout instead.
namespace RaceHook {
std::atomic<bool> armed{false};
std::atomic<std::thread::id> armed_thread{};
std::atomic<bool> partner_done{false};

struct Payload {
  std::set<int> s;
  Payload() = default;
  Payload(const Payload& o) : s(o.s) { maybe_block(); }
  Payload(Payload&&) = default;
  Payload& operator=(const Payload&) = default;
  Payload& operator=(Payload&&) = default;
  bool operator==(const Payload& o) const { return s == o.s; }

  static void maybe_block() {
    if (!armed.load(std::memory_order_acquire)) return;
    if (armed_thread.load() != std::this_thread::get_id()) return;
    if (!armed.exchange(false)) return;  // trip once
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
    while (!partner_done.load() &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
};
}  // namespace RaceHook

TEST_F(EmulatedTest, UpdateHoldsWriterMutexAcrossReadComputeWrite) {
  RaceHook::armed = false;
  RaceHook::partner_done = false;
  auto& reg = space.make_swmr<RaceHook::Payload>(1, {}, "r");
  std::thread a([&] {
    ThisProcess::Binder bind(1);
    reg.update([](RaceHook::Payload& p) {
      p.s.insert(1);
      // Arm AFTER update() captured its copy of owner_view_: the next copy
      // on this thread is the one handed to the write path.
      RaceHook::armed_thread.store(std::this_thread::get_id());
      RaceHook::armed.store(true, std::memory_order_release);
    });
  });
  std::thread b([&] {
    ThisProcess::Binder bind(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    reg.update([](RaceHook::Payload& p) { p.s.insert(2); });
    RaceHook::partner_done.store(true);
  });
  a.join();
  b.join();
  ThisProcess::Binder bind(1);
  const auto s = reg.read().s;
  EXPECT_TRUE(s.contains(1)) << "thread a's insert was lost";
  EXPECT_TRUE(s.contains(2)) << "thread b's insert was lost";
}

// Statistical companion to the deterministic test above: hammer update()
// from two owner-bound threads; every insert must survive. Run under ASan
// in CI like every other suite.
TEST_F(EmulatedTest, OwnerRmwFromTwoThreadsLosesNoUpdates) {
  auto& reg = space.make_swmr<std::set<int>>(1, {}, "r");
  constexpr int kPerThread = 40;
  std::thread a([&] {
    ThisProcess::Binder bind(1);
    for (int i = 0; i < kPerThread; ++i)
      reg.update([&](std::set<int>& s) { s.insert(i); });
  });
  std::thread b([&] {
    ThisProcess::Binder bind(1);
    for (int i = 0; i < kPerThread; ++i)
      reg.update([&](std::set<int>& s) { s.insert(1000 + i); });
  });
  a.join();
  b.join();
  {
    ThisProcess::Binder bind(1);
    EXPECT_EQ(reg.read().size(), 2u * kPerThread);  // owner-local view
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read().size(), 2u * kPerThread);  // quorum view
}

// Regression (PR 4): the owner's local view stays coherent under
// concurrent owner writers. Pre-fix, write() assigned owner_view_ with no
// writer-side serialization and no sn ordering, so with two owner-bound
// threads writing (the model's op + Help() threads) the owner could be
// left holding the OLDER value while the higher sn was broadcast — an
// owner-local read then disagreed with the quorum. Post-fix (writer_mu_
// plus the sn-monotone assignment in allocate_sn_locked) the owner-local
// read must equal the quorum read once traffic drains.
TEST(EmulatedOwnerView, AgreesWithQuorumUnderConcurrentWriters) {
  for (int round = 0; round < 8; ++round) {
    EmulatedSpace space({.n = 4, .f = 1});
    auto& reg = space.make_swmr<int>(1, 0, "r");
    std::thread a([&] {
      ThisProcess::Binder bind(1);
      for (int v = 1; v <= 10; ++v) reg.write(v);
    });
    std::thread b([&] {
      ThisProcess::Binder bind(1);
      for (int v = 101; v <= 110; ++v) reg.write(v);
    });
    a.join();
    b.join();
    // Let the trailing f servers' protocol traffic drain so the quorum
    // read below is the converged highest-sn value.
    drain_message_count([&] { return space.network().messages_sent(); });
    int local;
    {
      ThisProcess::Binder bind(1);
      local = reg.read();  // owner-local: owner_view_
    }
    ThisProcess::Binder bind(2);
    EXPECT_EQ(local, reg.read()) << "round " << round;
  }
}

TEST_F(EmulatedTest, SwsrReaderEnforced) {
  auto& reg = space.make_swsr<int>(1, 3, 9, "r13");
  {
    ThisProcess::Binder bind(3);
    EXPECT_EQ(reg.read(), 9);
  }
  ThisProcess::Binder bind(2);
  EXPECT_THROW(reg.read(), registers::PortViolation);
}

TEST_F(EmulatedTest, NoTornOrInventedValues) {
  auto& reg = space.make_swmr<std::pair<int, int>>(1, {0, 0}, "pair");
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::thread writer([&] {
    ThisProcess::Binder bind(1);
    for (int i = 1; i <= 30; ++i) reg.write({i, -i});
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int pid = 2; pid <= 4; ++pid) {
    readers.emplace_back([&, pid] {
      ThisProcess::Binder bind(pid);
      while (!stop.load()) {
        const auto [a, b] = reg.read();
        if (a != -(-a) || b != -a) bad = true;  // torn/invented pair
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(bad.load());
}

// Atomicity: two sequential reads by different processes never observe a
// new-old inversion.
TEST_F(EmulatedTest, NoNewOldInversion) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  std::atomic<bool> stop{false};
  std::atomic<bool> inversion{false};
  std::atomic<int> watermark{0};
  std::thread writer([&] {
    ThisProcess::Binder bind(1);
    for (int i = 1; i <= 30; ++i) reg.write(i);
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int pid = 2; pid <= 4; ++pid) {
    readers.emplace_back([&, pid] {
      ThisProcess::Binder bind(pid);
      while (!stop.load()) {
        const int before = watermark.load();
        const int v = reg.read();
        if (v < before) inversion = true;
        // Raise the watermark to the value we returned: any read that
        // STARTS after this point must return >= v.
        int cur = watermark.load();
        while (cur < v && !watermark.compare_exchange_weak(cur, v)) {
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(inversion.load());
}

TEST(EmulatedReorder, WorksUnderMessageReordering) {
  EmulatedSpace space({.n = 4, .f = 1, .reorder_seed = 99});
  auto& reg = space.make_swmr<int>(1, 0, "r");
  {
    ThisProcess::Binder bind(1);
    for (int v = 1; v <= 10; ++v) reg.write(v);
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 10);
}

// ---------------------------------------------- pipelined writes (note 15)

// A burst of async writes deeper than the pipeline: every sn settles
// exactly once (the settle callback is the proof), awaits return in issue
// order, and the final value is the last write — on the owner's local view
// and through a quorum read alike.
TEST(EmulatedPipeline, AsyncBurstSettlesEverySnExactlyOnce) {
  EmulatedSpace space({.n = 4, .f = 1, .pipeline_depth = 4});
  auto& reg = space.make_swmr<int>(1, 0, "r");
  std::mutex mu;
  std::map<std::uint64_t, int> settles;  // sn -> callback count
  std::vector<std::uint64_t> sns;
  {
    ThisProcess::Binder bind(1);
    for (int v = 1; v <= 8; ++v) {  // 8 writes through a depth-4 window
      sns.push_back(reg.write_async(v, [&](std::uint64_t sn, bool aborted) {
        std::scoped_lock lock(mu);
        ++settles[sn];
        EXPECT_FALSE(aborted) << "sn " << sn;
      }));
    }
    for (const std::uint64_t sn : sns) reg.await(sn);
    EXPECT_EQ(reg.read(), 8);  // owner view already reflects the burst
  }
  // The last callback runs on the server thread that saw the quorum; give
  // it a bounded moment to land before asserting exactly-once.
  for (int spin = 0; spin < 2000; ++spin) {
    {
      std::scoped_lock lock(mu);
      if (settles.size() == sns.size()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::scoped_lock lock(mu);
    ASSERT_EQ(settles.size(), sns.size());
    for (const std::uint64_t sn : sns)
      EXPECT_EQ(settles.at(sn), 1) << "sn " << sn;
  }
  // sns are allocated strictly increasing — no reuse across the window.
  for (std::size_t i = 1; i < sns.size(); ++i) EXPECT_GT(sns[i], sns[i - 1]);
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 8);
}

// Depth 1 (the default) must behave like the blocking protocol: a second
// write_async blocks in the capacity gate until the first is settled, so
// issuing + awaiting one at a time is just write() — and traces stay
// byte-identical (tests/batched_msgpass_test.cpp pins the trace; here we
// pin the client-visible semantics).
TEST(EmulatedPipeline, DepthOneIsTheBlockingProtocol) {
  EmulatedSpace space({.n = 4, .f = 1});  // pipeline_depth defaults to 1
  auto& reg = space.make_swmr<int>(1, 0, "r");
  {
    ThisProcess::Binder bind(1);
    for (int v = 1; v <= 5; ++v) reg.await(reg.write_async(v));
  }
  ThisProcess::Binder bind(3);
  EXPECT_EQ(reg.read(), 5);
}

// Read coalescing (design note 15): concurrent readers of one process
// share quorum rounds instead of each broadcasting its own READ. The
// recorded history of overlapping reads racing a writer must still be
// linearizable, and the coalesce counter must show the sharing actually
// happened (otherwise the test silently degenerates to sequential reads).
TEST(EmulatedPipeline, CoalescedReadBurstsLinearize) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& reg = space.make_swmr<int>(1, 0, "r");
  lincheck::HistoryRecorder rec;
  const std::uint64_t coalesced0 = detail::coalesce_counter().value();

  std::thread writer([&] {
    ThisProcess::Binder bind(1);
    for (int v = 1; v <= 24; ++v) {
      rec.record("r", "write", std::to_string(v),
                 [&] { reg.write(v); return true; },
                 [](bool) { return std::string("done"); });
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      // All four threads bind as process 2: same-pid concurrent reads are
      // the coalescing unit (joiners adopt the next led round).
      ThisProcess::Binder bind(2);
      for (int i = 0; i < 32; ++i) {
        rec.record("r", "read", "", [&] { return reg.read(); },
                   [](int x) { return std::to_string(x); });
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_GT(detail::coalesce_counter().value(), coalesced0)
      << "no read ever shared a round: the burst did not overlap";
  const auto ops = rec.operations();
  ASSERT_EQ(ops.size(), 24u + 4u * 32u);
  const lincheck::SpecFactory factory = [](const std::string&) {
    return std::make_unique<lincheck::PlainRegisterSpec>("0");
  };
  const auto result = lincheck::check_linearizable(ops, factory);
  EXPECT_EQ(result.verdict, lincheck::Verdict::kLinearizable)
      << result.detail << " (states=" << result.states_explored << ")";
}

// --------------------------------------------------- witness broadcast

TEST(WitnessBroadcastTest, DeliverToAll) {
  WitnessBroadcast wb({.n = 4, .f = 1});
  {
    ThisProcess::Binder bind(1);
    wb.broadcast(1, 77);
  }
  for (int pid = 1; pid <= 4; ++pid) {
    ThisProcess::Binder bind(pid);
    EXPECT_EQ(wb.await_delivery(1, 1), 77u) << "p" << pid;
  }
}

TEST(WitnessBroadcastTest, MultipleSendersAndSeqs) {
  WitnessBroadcast wb({.n = 4, .f = 1});
  {
    ThisProcess::Binder bind(1);
    wb.broadcast(1, 10);
    wb.broadcast(2, 20);
  }
  {
    ThisProcess::Binder bind(3);
    wb.broadcast(1, 30);
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(wb.await_delivery(1, 1), 10u);
  EXPECT_EQ(wb.await_delivery(1, 2), 20u);
  EXPECT_EQ(wb.await_delivery(3, 1), 30u);
}

// Non-equivocation: a Byzantine sender INITs two values for the same seq;
// correct processes never deliver different values.
TEST(WitnessBroadcastTest, EquivocationYieldsAgreement) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    WitnessBroadcast wb({.n = 4, .f = 1}, seed);
    {
      // Byzantine p1 sends INIT(5) to half the processes and INIT(6) to
      // the rest — raw network access, its own identity.
      ThisProcess::Binder bind(1);
      for (int to = 1; to <= 4; ++to) {
        Message m;
        m.to = to;
        m.type = "INIT";
        m.sn = 1;
        m.payload = std::uint64_t{to <= 2 ? 5u : 6u};
        wb.network().send(m);
      }
    }
    // Give the protocol a moment; then check agreement among whoever
    // delivered (delivery is not guaranteed under equivocation).
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::set<std::uint64_t> outcomes;
    for (int pid = 2; pid <= 4; ++pid) {
      const auto v = wb.delivered(pid, 1, 1);
      if (v) outcomes.insert(*v);
    }
    EXPECT_LE(outcomes.size(), 1u) << "seed " << seed;
  }
}

// --------------------------- full stack: paper registers over messages

// The closing corollary: a verifiable register built on message-passing-
// emulated SWMR registers, no signatures anywhere.
TEST(FullStack, VerifiableRegisterOverMessagePassing) {
  EmulatedSpace space({.n = 4, .f = 1});
  using Reg = core::VerifiableRegister<int, EmulatedSpace>;
  Reg::Config cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.v0 = 0;
  Reg reg(space, cfg);

  std::atomic<bool> stop{false};
  std::vector<std::jthread> helpers;
  for (int pid = 1; pid <= 4; ++pid) {
    helpers.emplace_back([&, pid](std::stop_token st) {
      ThisProcess::Binder bind(pid);
      while (!st.stop_requested() && !stop.load()) {
        if (!reg.help_round()) std::this_thread::yield();
      }
    });
  }

  {
    ThisProcess::Binder bind(1);
    reg.write(5);
    ASSERT_EQ(reg.sign(5), core::SignResult::kSuccess);
  }
  {
    ThisProcess::Binder bind(2);
    EXPECT_EQ(reg.read(), 5);
    EXPECT_TRUE(reg.verify(5));
    EXPECT_FALSE(reg.verify(9));
  }
  {
    ThisProcess::Binder bind(3);
    EXPECT_TRUE(reg.verify(5));  // relay across readers, over messages
  }
  stop = true;
  for (auto& t : helpers) t.request_stop();
}

// Sticky register over message passing: non-equivocation end to end.
TEST(FullStack, StickyRegisterOverMessagePassing) {
  EmulatedSpace space({.n = 4, .f = 1});
  using Reg = core::StickyRegister<int, EmulatedSpace>;
  Reg::Config cfg;
  cfg.n = 4;
  cfg.f = 1;
  Reg reg(space, cfg);

  std::atomic<bool> stop{false};
  std::vector<std::jthread> helpers;
  for (int pid = 1; pid <= 4; ++pid) {
    helpers.emplace_back([&, pid](std::stop_token st) {
      ThisProcess::Binder bind(pid);
      while (!st.stop_requested() && !stop.load()) {
        if (!reg.help_round()) std::this_thread::yield();
      }
    });
  }

  {
    ThisProcess::Binder bind(1);
    reg.write(11);
  }
  for (int pid = 2; pid <= 4; ++pid) {
    ThisProcess::Binder bind(pid);
    EXPECT_EQ(reg.read(), std::optional<int>(11)) << "p" << pid;
  }
  stop = true;
  for (auto& t : helpers) t.request_stop();
}

// Full-stack history check: two owners write their emulated registers while
// reading each other's; the COMPLETE recorded multi-register history is
// verified linearizable by the partitioned checker (no truncation).
TEST(EmulatedFullStack, RecordedMultiRegisterHistoryLinearizable) {
  EmulatedSpace space{{.n = 4, .f = 1}};
  auto& r0 = space.make_swmr<int>(1, 0, "r0");
  auto& r1 = space.make_swmr<int>(2, 0, "r1");

  lincheck::HistoryRecorder rec;
  runtime::Harness h;
  const auto driver = [&](int pid, auto& own_reg, const std::string& own,
                          auto& other_reg, const std::string& other) {
    return [&, pid, own, other](std::stop_token) {
      for (int v = 1; v <= 16; ++v) {
        const int value = 100 * pid + v;
        rec.record(own, "write", std::to_string(value),
                   [&] { own_reg.write(value); return true; },
                   [](bool) { return std::string("done"); });
        rec.record(other, "read", "", [&] { return other_reg.read(); },
                   [](int x) { return std::to_string(x); });
      }
    };
  };
  h.spawn(1, "op", driver(1, r0, "r0", r1, "r1"));
  h.spawn(2, "op", driver(2, r1, "r1", r0, "r0"));
  for (int pid : {3, 4}) {
    h.spawn(pid, "op", [&](std::stop_token) {
      for (int i = 0; i < 8; ++i) {
        rec.record("r0", "read", "", [&] { return r0.read(); },
                   [](int x) { return std::to_string(x); });
        rec.record("r1", "read", "", [&] { return r1.read(); },
                   [](int x) { return std::to_string(x); });
      }
    });
  }
  h.start();
  h.join();

  const auto ops = rec.operations();
  ASSERT_GE(ops.size(), 96u);
  const lincheck::SpecFactory factory = [](const std::string&) {
    return std::make_unique<lincheck::PlainRegisterSpec>("0");
  };
  const auto result = lincheck::check_linearizable(ops, factory);
  EXPECT_EQ(result.verdict, lincheck::Verdict::kLinearizable)
      << result.detail << " (states=" << result.states_explored << ")";
  EXPECT_TRUE(lincheck::replay_witness(ops, result.witness, factory));
}

}  // namespace
}  // namespace swsig::msgpass
