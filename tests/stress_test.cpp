// Long-running mixed-workload stress tests with live invariant monitors.
// These run heavier traffic than the unit tests, with relay/uniqueness
// monitors racing the operations, across multiple seeds and with Byzantine
// participants active the whole time.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "byzantine/behaviors.hpp"
#include "core/authenticated_register.hpp"
#include "core/sticky_register.hpp"
#include "core/system.hpp"
#include "core/verifiable_register.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "lincheck/register_specs.hpp"
#include "runtime/harness.hpp"
#include "util/rng.hpp"

namespace swsig::core {
namespace {

struct StressParam {
  int n;
  int f;
  std::uint64_t seed;
};

class Stress : public ::testing::TestWithParam<StressParam> {};

// Full reproduction line for failure messages: which binary, which gtest
// filter, which configuration — one copy-paste away from a replay.
std::string repro(const char* test, int n, int f, std::uint64_t seed) {
  return "REPRO: stress_test --gtest_filter='*" + std::string(test) + "/n" +
         std::to_string(n) + "f" + std::to_string(f) + "s" +
         std::to_string(seed) + "' (n=" + std::to_string(n) +
         " f=" + std::to_string(f) + " seed=" + std::to_string(seed) +
         " substrate=shared-memory)";
}

// Verifiable register: writer keeps writing/signing from a random stream
// while readers verify random values; per-value relay monitors check that
// no verified value is ever un-verified, even with a vote-flip colluder.
TEST_P(Stress, VerifiableRelayNeverRegresses) {
  const auto [n, f, seed] = GetParam();
  using Reg = VerifiableRegister<int>;
  const std::set<int> byz = {n};  // one colluder (<= f)
  FreeSystem<Reg> sys(Reg::Config{n, f, 0, false},
                      HelperOptions{.exclude = byz});
  sys.spawn(n, [&sys](std::stop_token st) {
    byzantine::VoteFlipHelper<Reg> flipper(sys.alg(), 3);
    while (!st.stop_requested()) {
      if (!flipper.round()) std::this_thread::yield();
    }
  });

  constexpr int kValues = 6;
  std::array<std::atomic<bool>, kValues + 1> verified{};
  std::atomic<bool> violation{false};
  std::atomic<bool> done{false};

  runtime::Harness h;
  h.spawn(1, "op", [&, seed = seed](std::stop_token) {
    util::Rng rng(seed);
    for (int i = 0; i < 60; ++i) {
      const int v = static_cast<int>(rng.uniform(1, kValues));
      sys.alg().write(v);
      if (rng.chance(2, 3)) sys.alg().sign(v);
    }
    done = true;
  });
  for (int k = 2; k < n; ++k) {
    h.spawn(k, "op", [&, k, seed = seed](std::stop_token) {
      util::Rng rng(seed * 31 + static_cast<std::uint64_t>(k));
      while (!done.load()) {
        const int v = static_cast<int>(rng.uniform(1, kValues));
        const bool was = verified[static_cast<std::size_t>(v)].load();
        const bool now = sys.alg().verify(v);
        if (now) verified[static_cast<std::size_t>(v)] = true;
        if (was && !now) violation = true;  // relay regression
      }
    });
  }
  h.start();
  h.join();
  EXPECT_FALSE(violation.load())
      << "verified value regressed; "
      << repro("VerifiableRelayNeverRegresses", n, f, seed);
}

// Authenticated register under continuous writes: reads always return a
// value that subsequently verifies (Observation 19 under churn).
TEST_P(Stress, AuthenticatedReadAlwaysVerifiable) {
  const auto [n, f, seed] = GetParam();
  using Reg = AuthenticatedRegister<int>;
  FreeSystem<Reg> sys(Reg::Config{n, f, 0, false});
  std::atomic<bool> done{false};
  std::atomic<bool> violation{false};

  runtime::Harness h;
  h.spawn(1, "op", [&, seed = seed](std::stop_token) {
    util::Rng rng(seed);
    for (int i = 0; i < 40; ++i)
      sys.alg().write(static_cast<int>(rng.uniform(1, 50)));
    done = true;
  });
  for (int k = 2; k <= std::min(n, 4); ++k) {
    h.spawn(k, "op", [&](std::stop_token) {
      while (!done.load()) {
        const int v = sys.alg().read();
        if (!sys.alg().verify(v)) violation = true;
      }
    });
  }
  h.start();
  h.join();
  EXPECT_FALSE(violation.load())
      << "read value failed to verify; "
      << repro("AuthenticatedReadAlwaysVerifiable", n, f, seed);
}

// Sticky register with an equivocating writer flipping its echo register
// the whole time: readers may see ⊥ or one value — never two.
TEST_P(Stress, StickyUniquenessUnderEquivocation) {
  const auto [n, f, seed] = GetParam();
  using Reg = StickyRegister<int>;
  FreeSystem<Reg> sys(Reg::Config{n, f, false},
                      HelperOptions{.exclude = {1}});
  std::atomic<bool> done{false};
  // Byzantine writer: flips E1 between two values forever; its helper
  // otherwise behaves honestly (it may witness either value).
  sys.spawn(1, [&sys, seed = seed](std::stop_token st) {
    util::Rng rng(seed ^ 0xabcd);
    auto raw = sys.alg().raw();
    while (!st.stop_requested()) {
      (*raw.echo)[1]->write(std::optional<int>(rng.chance(1, 2) ? 10 : 20));
      sys.alg().help_round();
    }
  });

  std::set<int> observed;
  std::mutex mu;
  runtime::Harness h;
  for (int k = 2; k <= std::min(n, 5); ++k) {
    h.spawn(k, "op", [&](std::stop_token) {
      for (int i = 0; i < 8; ++i) {
        const auto v = sys.alg().read();
        if (v) {
          std::scoped_lock lock(mu);
          observed.insert(*v);
        }
      }
    });
  }
  h.start();
  h.join();
  done = true;
  EXPECT_LE(observed.size(), 1u)
      << "sticky register returned two different values; "
      << repro("StickyUniquenessUnderEquivocation", n, f, seed);
}

// Full-history stress: four register instances of three different types
// run concurrently, EVERY operation is recorded, and the complete
// multi-register history (hundreds of operations) is checked in one
// partitioned Wing–Gong pass with a heterogeneous per-object spec factory
// — the check the 64-operation cap used to make impossible.
TEST(StressHistories, HeterogeneousRegistersFullHistoryLinearizable) {
  using VReg = VerifiableRegister<int>;
  using AReg = AuthenticatedRegister<int>;
  using SReg = StickyRegister<int>;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    FreeSystem<VReg> vsys0(VReg::Config{4, 1, 0, false});
    FreeSystem<VReg> vsys1(VReg::Config{4, 1, 0, false});
    FreeSystem<AReg> asys(AReg::Config{4, 1, 0, false});
    FreeSystem<SReg> ssys(SReg::Config{4, 1, false});
    lincheck::HistoryRecorder rec;

    const auto render_done = [](bool) { return std::string("done"); };
    const auto render_bool = [](bool b) {
      return std::string(b ? "true" : "false");
    };
    const auto render_int = [](int v) { return std::to_string(v); };

    runtime::Harness h;
    // p1: the (correct) writer of all four objects, interleaved.
    h.spawn(1, "op", [&, seed](std::stop_token) {
      util::Rng rng(seed);
      rec.record("sreg", "write", "7",
                 [&] { ssys.alg().write(7); return true; }, render_done);
      for (int i = 0; i < 24; ++i) {
        const int v = static_cast<int>(rng.uniform(1, 5));
        rec.record("vreg0", "write", std::to_string(v),
                   [&] { vsys0.alg().write(v); return true; }, render_done);
        if (rng.chance(1, 2)) {
          rec.record("vreg0", "sign", std::to_string(v),
                     [&] {
                       return vsys0.alg().sign(v) ==
                              core::SignResult::kSuccess;
                     },
                     [](bool ok) {
                       return std::string(ok ? "success" : "fail");
                     });
        }
        const int w = static_cast<int>(rng.uniform(1, 5));
        rec.record("vreg1", "write", std::to_string(w),
                   [&] { vsys1.alg().write(w); return true; }, render_done);
        rec.record("areg", "write", std::to_string(v),
                   [&] { asys.alg().write(v); return true; }, render_done);
      }
    });
    // p2..p4: readers sweeping all four objects.
    for (int k = 2; k <= 4; ++k) {
      h.spawn(k, "op", [&, k, seed](std::stop_token) {
        util::Rng rng(seed * 31 + static_cast<std::uint64_t>(k));
        for (int i = 0; i < 16; ++i) {
          rec.record("vreg0", "read", "",
                     [&] { return vsys0.alg().read(); }, render_int);
          const int v = static_cast<int>(rng.uniform(1, 5));
          rec.record("vreg0", "verify", std::to_string(v),
                     [&] { return vsys0.alg().verify(v); }, render_bool);
          rec.record("vreg1", "read", "",
                     [&] { return vsys1.alg().read(); }, render_int);
          rec.record("areg", "read", "",
                     [&] { return asys.alg().read(); }, render_int);
          rec.record("sreg", "read", "",
                     [&] { return ssys.alg().read(); },
                     [](const std::optional<int>& v) {
                       return v ? std::to_string(*v) : std::string("⊥");
                     });
        }
      });
    }
    h.start();
    h.join();

    const auto ops = rec.operations();
    ASSERT_GE(ops.size(), 256u) << "seed " << seed;

    const lincheck::SpecFactory factory = [](const std::string& object)
        -> std::unique_ptr<lincheck::SequentialSpec> {
      if (object == "sreg")
        return std::make_unique<lincheck::StickyRegisterSpec>();
      if (object == "areg")
        return std::make_unique<lincheck::AuthenticatedRegisterSpec>("0");
      return std::make_unique<lincheck::VerifiableRegisterSpec>("0");
    };
    const auto result = lincheck::check_linearizable(ops, factory);
    const std::string line =
        "REPRO: stress_test --gtest_filter='*HeterogeneousRegistersFull"
        "HistoryLinearizable*' (n=4 f=1 seed=" +
        std::to_string(seed) + " substrate=shared-memory)";
    EXPECT_EQ(result.verdict, lincheck::Verdict::kLinearizable)
        << result.detail << " (states=" << result.states_explored << "); "
        << line;
    EXPECT_EQ(result.witness.size(), ops.size()) << line;
    EXPECT_TRUE(lincheck::replay_witness(ops, result.witness, factory))
        << line;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, Stress,
    ::testing::Values(StressParam{4, 1, 1}, StressParam{4, 1, 2},
                      StressParam{7, 2, 3}, StressParam{7, 2, 4},
                      StressParam{10, 3, 5}),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      return "n" + std::to_string(info.param.n) + "f" +
             std::to_string(info.param.f) + "s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace swsig::core
