// Owner-crash-mid-write regression tests (design note 14): the single most
// realistic Byzantine-systems scenario — the writing process dies while its
// own WRITE ladder is in flight — must leave every register in a
// well-defined state. The contract under test:
//
//   * no acknowledged write is ever lost: if write(v) returned, v (or a
//     later write) is what reads return after any crash/restart;
//   * an in-flight write gets a DETERMINATE outcome at recovery — either
//     completed (the ladder is re-driven with CWRITE until the ACKs land)
//     or aborted (registers::WriteAborted), and an aborted value is final:
//     no read can ever return it;
//   * disabling the retry/abort layer demonstrably reintroduces the old
//     failure mode (the write dies with an indeterminate OpTimeout).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "msgpass/batched_space.hpp"
#include "msgpass/emulated_swmr.hpp"
#include "registers/errors.hpp"
#include "runtime/process.hpp"
#include "soak/fault_schedule.hpp"

namespace swsig::msgpass {
namespace {

using runtime::ThisProcess;

// Crash the owner at varying points of a write stream; after recovery the
// final readable value is the last write that did not abort, and no
// aborted value is ever visible.
TEST(OwnerCrash, AcknowledgedWritesSurviveMidWriteCrash) {
  for (int iter = 1; iter <= 3; ++iter) {
    EmulatedSpace space({.n = 4, .f = 1});
    auto& reg = space.make_swmr<std::string>(1, "v0", "r");
    std::atomic<int> acked{0};
    std::vector<std::string> aborted;  // writer-thread-only until join
    std::thread writer([&] {
      ThisProcess::Binder bind(1);
      for (int i = 1; i <= 30; ++i) {
        const std::string v = "v" + std::to_string(i);
        try {
          reg.write(v);
          acked.store(i, std::memory_order_release);
        } catch (const registers::WriteAborted&) {
          aborted.push_back(v);
        }
      }
    });
    while (acked.load(std::memory_order_acquire) < 3 + iter)
      std::this_thread::yield();
    space.crash(1);  // the owner dies with a write (likely) in flight
    std::this_thread::sleep_for(std::chrono::milliseconds(20 * iter));
    space.restart(1);  // recovery completes or fence-aborts the in-flight sn
    writer.join();

    // At most the one write straddling the crash can have aborted.
    EXPECT_LE(aborted.size(), 1u) << "iter " << iter;
    std::string expect = "v0";
    for (int i = 30; i >= 1; --i) {
      const std::string v = "v" + std::to_string(i);
      if (std::find(aborted.begin(), aborted.end(), v) == aborted.end()) {
        expect = v;
        break;
      }
    }
    ThisProcess::Binder bind(2);
    const std::string got = reg.read();
    EXPECT_EQ(got, expect) << "iter " << iter;
    for (const std::string& v : aborted)
      EXPECT_NE(got, v) << "aborted value resurfaced, iter " << iter;
    space.stop();
  }
}

// Deterministic abort: the write is invoked AFTER the crash, so its
// broadcast is squelched and no server ever holds a candidate — the
// recovery fence must finalize it as aborted, the value must stay
// invisible forever, and the owner must be able to write again.
TEST(OwnerCrash, UndeliveredWriteAbortsDeterministically) {
  EmulatedSpace::Options opt{.n = 4, .f = 1};
  opt.retry.base_ms = 5000;  // no retry can race the recovery fence
  EmulatedSpace space(opt);
  auto& reg = space.make_swmr<std::string>(1, "v0", "r");
  {
    ThisProcess::Binder bind(1);
    reg.write("v1");
  }
  space.crash(1);
  std::atomic<bool> threw{false};
  std::thread writer([&] {
    ThisProcess::Binder bind(1);
    try {
      reg.write("lost");  // discarded at the network: nobody sees it
      ADD_FAILURE() << "an undeliverable write completed";
    } catch (const registers::WriteAborted&) {
      threw.store(true, std::memory_order_release);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  space.restart(1);  // fence finds no echo/accept/deliver anywhere -> abort
  writer.join();
  EXPECT_TRUE(threw.load(std::memory_order_acquire));
  {
    ThisProcess::Binder bind(2);
    EXPECT_EQ(reg.read(), "v1");
  }
  // The abort rolled the owner's view back to the certified state and the
  // sn was burned, not reused: the next write runs a fresh ladder.
  std::thread w2([&] {
    ThisProcess::Binder bind(1);
    reg.write("v2");
  });
  w2.join();
  {
    ThisProcess::Binder bind(3);
    EXPECT_EQ(reg.read(), "v2");
  }
  space.stop();
}

// The failure mode the retry/abort layer exists to fix: with the layer
// disabled, an owner crash mid-write leaves the client with nothing but an
// indeterminate deadline expiry.
TEST(OwnerCrash, WithoutRetryTheWriteDiesIndeterminate) {
  EmulatedSpace::Options opt{.n = 4, .f = 1};
  opt.retry.enabled = false;
  opt.retry.op_timeout_ms = 300;
  EmulatedSpace space(opt);
  auto& reg = space.make_swmr<std::string>(1, "v0", "r");
  space.crash(1);
  std::thread writer([&] {
    ThisProcess::Binder bind(1);
    EXPECT_THROW(reg.write("lost"), registers::OpTimeout);
  });
  writer.join();
  space.restart(1);
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), "v0");
  space.stop();
}

// Unparked-mode contract, loss shape: a client whose traffic is 100%
// dropped keeps its op in flight and the retry layer completes it once the
// window heals — no parking, no error.
TEST(OwnerCrash, RetryCarriesLiveClientThroughTotalLossWindow) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& reg = space.make_swmr<std::string>(1, "v0", "r");
  soak::FaultSchedule sched({.seed = 5,
                             .kinds = soak::FaultKinds::parse("drop"),
                             .victims = {1},
                             .period_ms = 100000,
                             .active_ms = 100000,
                             .drop_permille = 1000});
  space.network().set_fault_injector(&sched);
  sched.engage(true);  // the victim's OWN client keeps operating
  const std::uint64_t retries0 = detail::retry_counter().value();
  std::thread writer([&] {
    ThisProcess::Binder bind(1);
    reg.write("v1");  // every message touching p1 is dropped right now
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  sched.engage(false);  // heal: the next backoff retry completes the write
  writer.join();
  EXPECT_GT(detail::retry_counter().value(), retries0);
  space.network().set_fault_injector(nullptr);
  {
    ThisProcess::Binder bind(2);
    EXPECT_EQ(reg.read(), "v1");
  }
  space.stop();
}

// Pipelined writes (design note 15), deterministic flavor: every sn of a
// burst issued AFTER the owner crashed is squelched at the network, so
// recovery must fence-abort all of them — and it decides the sns in
// ascending order (a later sn never settles before an earlier one is
// decided), which the settle callbacks observe directly.
TEST(OwnerCrash, PipelinedUndeliveredBurstAbortsInAscendingSnOrder) {
  EmulatedSpace::Options opt{.n = 4, .f = 1};
  opt.retry.base_ms = 5000;  // no retry can race the recovery fence
  opt.pipeline_depth = 4;
  EmulatedSpace space(opt);
  auto& reg = space.make_swmr<std::string>(1, "v0", "r");
  {
    ThisProcess::Binder bind(1);
    reg.write("v1");
  }
  space.crash(1);

  std::mutex mu;
  std::vector<std::pair<std::uint64_t, bool>> settled;  // (sn, aborted)
  std::vector<std::uint64_t> issued;
  {
    // The capacity gate (depth 4) admits three unsettled writes without
    // blocking; their broadcasts are discarded — no server ever sees them.
    ThisProcess::Binder bind(1);
    for (int i = 0; i < 3; ++i)
      issued.push_back(reg.write_async(
          "lost" + std::to_string(i), [&](std::uint64_t sn, bool aborted) {
            std::scoped_lock lock(mu);
            settled.emplace_back(sn, aborted);
          }));
  }
  space.restart(1);  // recovery fences sn 2, 3, 4 — ascending, all aborted

  {
    std::scoped_lock lock(mu);
    ASSERT_EQ(settled.size(), issued.size());
    for (std::size_t i = 0; i < settled.size(); ++i) {
      EXPECT_EQ(settled[i].first, issued[i]) << "settle order broke at " << i;
      EXPECT_TRUE(settled[i].second) << "sn " << settled[i].first;
    }
  }
  {
    ThisProcess::Binder bind(1);
    for (const std::uint64_t sn : issued)
      EXPECT_THROW(reg.await(sn), registers::WriteAborted) << "sn " << sn;
  }
  {
    ThisProcess::Binder bind(2);
    EXPECT_EQ(reg.read(), "v1");
  }
  // The aborted sns were burned, not reused: the owner writes on normally.
  {
    ThisProcess::Binder bind(1);
    reg.write("v2");
  }
  ThisProcess::Binder bind(3);
  EXPECT_EQ(reg.read(), "v2");
  space.stop();
}

// Pipelined writes, adversarial flavor: the owner dies at an arbitrary
// point of a stream of depth-4 bursts. Every issued sn must still get a
// DETERMINATE outcome from await (completed or WriteAborted — never a
// timeout, never a third thing), the final readable value is the highest
// completed write, and no aborted value is ever visible.
TEST(OwnerCrash, PipelinedCrashMidBurstSettlesEverySn) {
  for (int iter = 1; iter <= 3; ++iter) {
    EmulatedSpace::Options opt{.n = 4, .f = 1};
    opt.pipeline_depth = 4;
    EmulatedSpace space(opt);
    auto& reg = space.make_swmr<std::string>(1, "v0", "r");

    std::atomic<int> progressed{0};
    std::map<std::uint64_t, std::string> completed;  // writer-only until join
    std::set<std::string> aborted;
    std::thread writer([&] {
      ThisProcess::Binder bind(1);
      int v = 0;
      for (int burst = 0; burst < 6; ++burst) {
        std::vector<std::pair<std::uint64_t, std::string>> inflight;
        for (int i = 0; i < 4; ++i) {
          const std::string val = "v" + std::to_string(++v);
          inflight.emplace_back(reg.write_async(val), val);
        }
        for (const auto& [sn, val] : inflight) {
          try {
            reg.await(sn);
            completed.emplace(sn, val);
            progressed.fetch_add(1, std::memory_order_release);
          } catch (const registers::WriteAborted&) {
            aborted.insert(val);
          } catch (...) {
            ADD_FAILURE() << "indeterminate outcome for sn " << sn;
          }
        }
      }
    });
    while (progressed.load(std::memory_order_acquire) < 2 * iter)
      std::this_thread::yield();
    space.crash(1);  // lands mid-burst: several sns are in flight
    std::this_thread::sleep_for(std::chrono::milliseconds(15 * iter));
    space.restart(1);
    writer.join();

    ASSERT_FALSE(completed.empty());
    const std::string expect = completed.rbegin()->second;  // highest sn
    ThisProcess::Binder bind(2);
    const std::string got = reg.read();
    EXPECT_EQ(got, expect) << "iter " << iter;
    EXPECT_FALSE(aborted.contains(got))
        << "aborted value resurfaced, iter " << iter;
    space.stop();
  }
}

// Retry storm mid-pipeline: a depth-4 burst is issued while 100% of the
// owner's traffic is dropped. The awaits drive per-sn retries; once the
// window heals, every sn of the burst completes — no abort, no timeout.
TEST(OwnerCrash, RetryCarriesPipelinedBurstThroughTotalLossWindow) {
  EmulatedSpace::Options opt{.n = 4, .f = 1};
  opt.pipeline_depth = 4;
  EmulatedSpace space(opt);
  auto& reg = space.make_swmr<std::string>(1, "v0", "r");
  soak::FaultSchedule sched({.seed = 5,
                             .kinds = soak::FaultKinds::parse("drop"),
                             .victims = {1},
                             .period_ms = 100000,
                             .active_ms = 100000,
                             .drop_permille = 1000});
  space.network().set_fault_injector(&sched);
  sched.engage(true);
  const std::uint64_t retries0 = detail::retry_counter().value();
  std::thread writer([&] {
    ThisProcess::Binder bind(1);
    std::vector<std::uint64_t> burst;
    for (int i = 1; i <= 4; ++i)
      burst.push_back(reg.write_async("v" + std::to_string(i)));
    for (const std::uint64_t sn : burst) reg.await(sn);  // parks, retries
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  sched.engage(false);  // heal: backoff retries re-drive all four ladders
  writer.join();
  EXPECT_GT(detail::retry_counter().value(), retries0);
  space.network().set_fault_injector(nullptr);
  {
    ThisProcess::Binder bind(2);
    EXPECT_EQ(reg.read(), "v4");
  }
  space.stop();
}

// Batched substrate: the shard leader's in-flight (origin, round) is
// re-led on restart — BWRITE re-issue is idempotent at servers (digest
// dedup), so every submitted write still completes exactly once.
TEST(OwnerCrash, BatchedLeaderCrashRecoversInFlightBatch) {
  BatchedEmulatedSpace space({.n = 4, .f = 1, .shards = 1, .batch_max = 4});
  auto& reg = space.make_swmr<std::string>(1, "v0", "r");
  std::atomic<int> acked{0};
  std::thread writer([&] {
    ThisProcess::Binder bind(1);
    for (int i = 1; i <= 20; ++i) {
      reg.write("v" + std::to_string(i));
      acked.store(i, std::memory_order_release);
    }
  });
  while (acked.load(std::memory_order_acquire) < 5) std::this_thread::yield();
  space.crash(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  space.restart(1);
  writer.join();
  {
    ThisProcess::Binder bind(2);
    EXPECT_EQ(reg.read(), "v20");
  }
  space.stop();
}

// Same, with the pipeline group-commit gate engaged (depth 4): the owner
// dies with a whole window of async ops split between the in-flight round
// and the pending queue. Recovery is complete-only on this substrate —
// re-lead the interrupted round, then await() flushes what was queued — so
// every ticket still completes; nothing aborts and nothing is lost.
TEST(OwnerCrash, BatchedLeaderCrashMidPipelinedBurst) {
  BatchedEmulatedSpace space(
      {.n = 4, .f = 1, .shards = 1, .batch_max = 4, .pipeline_depth = 4});
  auto& reg = space.make_swmr<std::string>(1, "v0", "r");
  std::atomic<int> acked{0};
  std::thread writer([&] {
    ThisProcess::Binder bind(1);
    int v = 0;
    for (int burst = 0; burst < 6; ++burst) {
      std::vector<std::uint64_t> tickets;
      for (int i = 0; i < 4; ++i)
        tickets.push_back(reg.write_async("v" + std::to_string(++v)));
      for (const std::uint64_t t : tickets) {
        reg.await(t);
        acked.fetch_add(1, std::memory_order_release);
      }
    }
  });
  while (acked.load(std::memory_order_acquire) < 5) std::this_thread::yield();
  space.crash(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  space.restart(1);
  writer.join();
  {
    ThisProcess::Binder bind(2);
    EXPECT_EQ(reg.read(), "v24");
  }
  space.stop();
}

}  // namespace
}  // namespace swsig::msgpass
