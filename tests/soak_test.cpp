// Soak-harness component tests: the liveness monitor's stall/error
// accounting, the repro line every failure prints, and a short sanitizer-
// friendly end-to-end run_soak() with a crash/recovery cycle. The full
// wall-clock soak is the Release-only `soak_smoke` CTest and the long-soak
// workflow; these tests keep the harness itself honest in every build.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "msgpass/emulated_swmr.hpp"
#include "soak/liveness.hpp"
#include "soak/report.hpp"
#include "soak/runner.hpp"

namespace swsig::soak {
namespace {

TEST(LivenessMonitor, FlagsStallsOncePerEpisode) {
  LivenessMonitor mon({.stall_budget_ms = 40});
  mon.attach("c1");
  mon.attach("c2");
  mon.success("c1");
  mon.success("c2");
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  mon.success("c2");
  LivenessMonitor::Report r = mon.check();
  EXPECT_EQ(r.violations, 1u);
  ASSERT_EQ(r.stalled.size(), 1u);
  EXPECT_EQ(r.stalled[0], "c1");
  EXPECT_GE(r.max_stall_ms, 40u);
  // Still stalled: same episode, not re-counted.
  r = mon.check();
  EXPECT_EQ(r.violations, 1u);
  // Recovery re-arms the detector for a future episode.
  mon.success("c1");
  r = mon.check();
  EXPECT_EQ(r.violations, 1u);
  EXPECT_TRUE(r.stalled.empty());
}

TEST(LivenessMonitor, DetachedClientsAreExempt) {
  LivenessMonitor mon({.stall_budget_ms = 30});
  mon.attach("parked");
  mon.detach("parked");  // the driver parks it on purpose (fault window)
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  EXPECT_EQ(mon.check().violations, 0u);
  // Re-attach re-arms the clock — no retroactive stall.
  mon.attach("parked");
  EXPECT_EQ(mon.check().violations, 0u);
}

TEST(LivenessMonitor, ErrorBudget) {
  LivenessMonitor mon({.stall_budget_ms = 1000, .error_budget = 1});
  mon.attach("c");
  EXPECT_FALSE(mon.error_budget_exceeded());
  mon.error("c");
  EXPECT_FALSE(mon.error_budget_exceeded());
  mon.error("c");
  EXPECT_TRUE(mon.error_budget_exceeded());
  EXPECT_EQ(mon.check().errors, 2u);
}

// Every soak failure prints cfg.repro_line(); it must carry everything a
// replay needs: substrate, n/f, scale, duration, fault schedule and seed.
TEST(SoakConfigRepro, LineIsComplete) {
  SoakConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.registers = 64;
  cfg.clients = 4;
  cfg.duration_ms = 4000;
  cfg.seed = 8;
  cfg.faults = FaultKinds::parse("drop+delay+crash");
  cfg.byzantine = 1;
  cfg.substrate = "emulated";
  const std::string line = cfg.repro_line();
  EXPECT_NE(line.find("soak_driver"), std::string::npos);
  EXPECT_NE(line.find("--substrate emulated"), std::string::npos);
  EXPECT_NE(line.find("--n 4"), std::string::npos);
  EXPECT_NE(line.find("--f 1"), std::string::npos);
  EXPECT_NE(line.find("--registers 64"), std::string::npos);
  EXPECT_NE(line.find("--clients 4"), std::string::npos);
  EXPECT_NE(line.find("--duration 4"), std::string::npos);
  EXPECT_NE(line.find("--faults drop+delay+crash"), std::string::npos);
  EXPECT_NE(line.find("--byzantine 1"), std::string::npos);
  EXPECT_NE(line.find("--seed 8"), std::string::npos);
}

TEST(SoakMetricsReport, SloGatesOnTheThreeCounters) {
  SoakMetrics m;
  m.substrate = "emulated";
  m.duration_ms = 1000;
  m.reads = 900;
  m.writes = 100;
  EXPECT_TRUE(m.slo_ok());
  EXPECT_EQ(m.total_ops(), 1000u);
  EXPECT_DOUBLE_EQ(m.ops_per_s(), 1000.0);
  m.window_violations = 1;
  EXPECT_FALSE(m.slo_ok());
  m.window_violations = 0;
  m.liveness_violations = 1;
  EXPECT_FALSE(m.slo_ok());
  m.liveness_violations = 0;
  m.op_errors = 1;
  EXPECT_FALSE(m.slo_ok());
}

// End-to-end, scaled for sanitizer builds: a short run with crash/rejoin
// cycles and online checking must meet its SLO — every sampled window
// linearizable, no stalls, and at least one crash/recovery exercised.
TEST(SoakEndToEnd, ShortRunWithCrashRecoveryMeetsSlo) {
  msgpass::EmulatedSpace space({.n = 4, .f = 1});
  SoakConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.registers = 16;
  cfg.clients = 2;
  cfg.duration_ms = 2600;
  cfg.seed = 3;
  cfg.faults = FaultKinds::parse("crash");
  cfg.byzantine = 0;
  cfg.substrate = "emulated";
  cfg.window_ops = 64;
  cfg.stall_budget_ms = 20000;  // sanitizer headroom
  const SoakOutcome out = run_soak(space, cfg);
  EXPECT_TRUE(out.ok()) << cfg.repro_line();
  for (const std::string& failure : out.failures)
    ADD_FAILURE() << failure;
  EXPECT_GT(out.metrics.total_ops(), 0u);
  EXPECT_GE(out.metrics.windows_checked, 1u);
  EXPECT_EQ(out.metrics.window_violations, 0u);
  EXPECT_EQ(out.metrics.liveness_violations, 0u);
  // Default schedule: every 4th 400 ms window crashes its victim, so a
  // 2.6 s run sees at least one full crash/restart/resync cycle.
  EXPECT_GE(out.metrics.crashes, 1u);
  EXPECT_GE(out.metrics.resyncs, out.metrics.crashes);
  space.stop();
}

}  // namespace
}  // namespace swsig::soak
