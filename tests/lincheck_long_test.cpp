// Full-history linearizability checks at stress scale — the suites the
// 64-operation cap used to truncate. Histories of 256+ operations across
// 4+ registers, recorded from BOTH substrates (shared-memory registers::
// Space and the batched message-passing emulation), are checked complete:
// no sampling, no truncation. CTest label "lincheck-long" lets local runs
// exclude them (ctest -LE lincheck-long); Release CI runs everything.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "lincheck/register_specs.hpp"
#include "msgpass/batched_space.hpp"
#include "registers/space.hpp"
#include "runtime/harness.hpp"
#include "runtime/step_controller.hpp"
#include "util/rng.hpp"

namespace swsig::lincheck {
namespace {

SpecFactory plain_factory() {
  return [](const std::string&) {
    return std::make_unique<PlainRegisterSpec>("0");
  };
}

double check_seconds(const std::vector<Operation>& ops, CheckResult& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = check_linearizable(ops, plain_factory());
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Acceptance bar for the partitioned checker: a seeded stress history of
// >= 256 operations across >= 4 registers, fully checked in < 5 s
// (Release). Four writers hammer their own seqlock-backed register while
// three readers sweep all four; every operation is recorded.
TEST(LincheckLong, SharedMemoryFullHistoryChecked) {
  constexpr int kRegisters = 4;
  constexpr int kWritesPerOwner = 32;
  constexpr int kReaderSweeps = 12;

  runtime::FreeStepController controller;
  registers::Space space(controller);
  std::vector<registers::Swmr<int>*> regs;
  for (int r = 0; r < kRegisters; ++r)
    regs.push_back(&space.make_swmr<int>(r + 1, 0, "r" + std::to_string(r)));

  HistoryRecorder rec;
  runtime::Harness h;
  for (int owner = 1; owner <= kRegisters; ++owner) {
    h.spawn(owner, "op", [&, owner](std::stop_token) {
      util::Rng rng(static_cast<std::uint64_t>(owner) * 7919);
      const std::string obj = "r" + std::to_string(owner - 1);
      auto& reg = *regs[static_cast<std::size_t>(owner - 1)];
      for (int v = 1; v <= kWritesPerOwner; ++v) {
        const int value = static_cast<int>(rng.uniform(1, 99));
        rec.record(obj, "write", std::to_string(value),
                   [&] { reg.write(value); return true; },
                   [](bool) { return std::string("done"); });
      }
    });
  }
  for (int pid = kRegisters + 1; pid <= kRegisters + 3; ++pid) {
    h.spawn(pid, "op", [&](std::stop_token) {
      for (int i = 0; i < kReaderSweeps; ++i) {
        for (int r = 0; r < kRegisters; ++r) {
          rec.record("r" + std::to_string(r), "read", "",
                     [&] { return regs[static_cast<std::size_t>(r)]->read(); },
                     [](int v) { return std::to_string(v); });
        }
      }
    });
  }
  h.start();
  h.join();

  const auto ops = rec.operations();
  ASSERT_GE(ops.size(), 256u);
  EXPECT_EQ(rec.pending_count(), 0u);

  CheckResult result;
  const double secs = check_seconds(ops, result);
  EXPECT_EQ(result.verdict, Verdict::kLinearizable)
      << result.detail << " (states=" << result.states_explored << ")";
  EXPECT_EQ(result.witness.size(), ops.size());  // complete: no truncation
  EXPECT_TRUE(replay_witness(ops, result.witness, plain_factory()));
#ifdef NDEBUG
  EXPECT_LT(secs, 5.0) << "states=" << result.states_explored;
#else
  (void)secs;
#endif
}

// Same bar on the batched message-passing substrate (PR 4): four owners on
// two shards, sync writes + cross-owner quorum reads + an async burst per
// owner whose operations genuinely overlap (invoke at write_async, respond
// at await). The recorded history is checked complete.
TEST(LincheckLong, BatchedMsgpassFullHistoryChecked) {
  constexpr int kOwners = 4;
  constexpr int kSyncWrites = 30;
  constexpr int kReads = 30;
  constexpr int kBurst = 4;

  msgpass::BatchedEmulatedSpace space(
      {.n = kOwners, .f = 1, .reorder_seed = 0, .shards = 2, .batch_max = 4});
  std::vector<msgpass::BatchedSwmr<int>*> regs;
  for (int r = 0; r < kOwners; ++r)
    regs.push_back(&space.make_swmr<int>(r + 1, 0, "r" + std::to_string(r)));

  HistoryRecorder rec;
  runtime::Harness h;
  for (int pid = 1; pid <= kOwners; ++pid) {
    h.spawn(pid, "op", [&, pid](std::stop_token) {
      util::Rng rng(static_cast<std::uint64_t>(pid) * 104729);
      const std::string own = "r" + std::to_string(pid - 1);
      const int other_idx = pid % kOwners;  // the next owner's register
      const std::string other = "r" + std::to_string(other_idx);
      auto& own_reg = *regs[static_cast<std::size_t>(pid - 1)];
      auto& other_reg = *regs[static_cast<std::size_t>(other_idx)];

      for (int i = 1; i <= kSyncWrites; ++i) {
        const int value = static_cast<int>(rng.uniform(1, 999));
        rec.record(own, "write", std::to_string(value),
                   [&] { own_reg.write(value); return true; },
                   [](bool) { return std::string("done"); });
        if (i <= kReads) {
          rec.record(other, "read", "", [&] { return other_reg.read(); },
                     [](int v) { return std::to_string(v); });
        }
      }

      // Async burst: the writes ride shared batch rounds and their recorded
      // intervals genuinely overlap one another.
      std::vector<std::pair<int, std::uint64_t>> in_flight;
      for (int i = 1; i <= kBurst; ++i) {
        const int value = 1000 * pid + i;
        const int token = rec.invoke(own, "write", std::to_string(value));
        in_flight.emplace_back(token, own_reg.write_async(value));
      }
      for (const auto& [token, ticket] : in_flight) {
        own_reg.await(ticket);
        rec.respond(token, "done");
      }
      // Owner-local read observes the final burst value.
      rec.record(own, "read", "", [&] { return own_reg.read(); },
                 [](int v) { return std::to_string(v); });
    });
  }
  h.start();
  h.join();

  const auto ops = rec.operations();
  ASSERT_GE(ops.size(), 256u);

  CheckResult result;
  const double secs = check_seconds(ops, result);
  EXPECT_EQ(result.verdict, Verdict::kLinearizable)
      << result.detail << " (states=" << result.states_explored << ")";
  EXPECT_EQ(result.witness.size(), ops.size());
  EXPECT_TRUE(replay_witness(ops, result.witness, plain_factory()));
#ifdef NDEBUG
  EXPECT_LT(secs, 5.0) << "states=" << result.states_explored;
#else
  (void)secs;
#endif
}

}  // namespace
}  // namespace swsig::lincheck
