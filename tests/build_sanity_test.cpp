// Build/link smoke test: instantiates at least one object from every layer
// library so that a future change breaking a library's compile, its archive,
// or the CMake link graph fails here first, with an obvious name, instead of
// deep inside a behavioral suite.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "byzantine/behaviors.hpp"
#include "byzantine/reset_attack.hpp"
#include "core/test_or_set.hpp"
#include "core/types.hpp"
#include "core/verifiable_register.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signer.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "lincheck/register_specs.hpp"
#include "msgpass/network.hpp"
#include "registers/seqlock.hpp"
#include "registers/space.hpp"
#include "runtime/harness.hpp"
#include "runtime/process.hpp"
#include "runtime/schedule_policy.hpp"
#include "runtime/step_controller.hpp"
#include "snapshot/snapshot.hpp"
#include "transfer/asset_transfer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace swsig {
namespace {

TEST(BuildSanity, UtilLayer) {
  util::Rng rng(7);
  EXPECT_EQ(rng.uniform(3, 3), 3u);
  util::Samples samples;
  samples.add(1.0);
  EXPECT_DOUBLE_EQ(samples.mean(), 1.0);
  util::Table table({"col"});
}

TEST(BuildSanity, CryptoLayer) {
  EXPECT_EQ(crypto::Sha256::hash("abc").size(), 32u);
  EXPECT_EQ(crypto::hmac_sha256("key", "msg").size(), 32u);
  crypto::SignatureAuthority authority({.n = 4, .seed = 1});
  EXPECT_EQ(authority.n(), 4);
}

TEST(BuildSanity, RuntimeAndRegistersLayers) {
  runtime::Harness harness;
  runtime::RoundRobinPolicy policy;
  runtime::FreeStepController controller;
  registers::Space space(controller);
  auto& reg = space.make_swmr<int>(1, 41, "smoke");
  {
    runtime::ThisProcess::Binder bind(1);
    reg.write(42);
  }
  registers::SeqlockRegister<int> seqlock(0);
}

TEST(BuildSanity, CoreAndByzantineLayers) {
  runtime::FreeStepController controller;
  registers::Space space(controller);
  core::VerifiableRegister<int> reg(space, {.n = 4, .f = 1, .v0 = 0});
  byzantine::DenyingHelper<core::VerifiableRegister<int>> denier(reg);
  // Link-check the compiled attack driver without paying for a full run.
  auto* attack = &byzantine::run_reset_attack;
  EXPECT_NE(attack, nullptr);
}

TEST(BuildSanity, BroadcastTransferSnapshotLayers) {
  runtime::FreeStepController controller;
  registers::Space space(controller);
  broadcast::StickyReliableBroadcast rb(space, {.n = 4, .f = 1, .max_broadcasts = 2});
  transfer::AssetTransfer at(rb, {.n = 4, .initial_balance = 10, .max_transfers = 2});
  snapshot::AtomicSnapshot snap(space, {.n = 4, .f = 1, .v0 = 0});
}

TEST(BuildSanity, MsgpassLayer) {
  msgpass::Network net({.n = 3});
}

TEST(BuildSanity, LincheckLayer) {
  lincheck::HistoryRecorder recorder;
  const std::vector<lincheck::Operation> empty;
  EXPECT_TRUE(
      lincheck::check_linearizable(empty, lincheck::VerifiableRegisterSpec("0"))
          .linearizable());
}

}  // namespace
}  // namespace swsig
