// Minimal single-header test framework, API-compatible with the subset of
// GoogleTest used by this repository (TEST, TEST_F, TEST_P, value-parameterized
// suites, EXPECT_*/ASSERT_* with streamed messages). Bundled so that the tier-1
// verify command needs no external dependency: the build injects this directory
// ahead of any system include path, so `#include <gtest/gtest.h>` resolves here.
//
// Intentional simplifications relative to GoogleTest:
//  - tests run sequentially in registration/instantiation order
//  - no death tests, no matchers, no typed tests (unused in this repo)
//  - --gtest_* command-line flags are accepted and ignored
#ifndef SWSIG_TESTS_SUPPORT_GTEST_GTEST_H_
#define SWSIG_TESTS_SUPPORT_GTEST_GTEST_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <functional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

class Test {
 public:
  virtual ~Test() = default;

 protected:
  virtual void SetUp() {}
  virtual void TearDown() {}

 public:
  virtual void TestBody() = 0;
  void RunFullBody() {
    SetUp();
    TestBody();
    TearDown();
  }
};

// Streamed user message attached to a failing assertion via `<<`.
class Message {
 public:
  template <typename T>
  Message& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

template <typename T>
struct TestParamInfo {
  T param;
  std::size_t index;
};

namespace internal {

struct TestEntry {
  std::string full_name;
  std::function<void()> run;
};

inline std::vector<TestEntry>& Registry() {
  static std::vector<TestEntry> r;
  return r;
}

// Deferred INSTANTIATE_TEST_SUITE_P expansions, run once by RUN_ALL_TESTS so
// that every TEST_P in the translation unit is visible regardless of order.
inline std::vector<std::function<void()>>& Expanders() {
  static std::vector<std::function<void()>> e;
  return e;
}

inline std::atomic<bool>& CurrentTestFailed() {
  static std::atomic<bool> failed{false};
  return failed;
}

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

template <typename T>
std::string PrintValue(const T& value) {
  if constexpr (std::is_same_v<T, bool>) {
    return value ? "true" : "false";
  } else if constexpr (IsStreamable<T>::value) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else if constexpr (std::is_enum_v<T>) {
    std::ostringstream os;
    os << static_cast<std::underlying_type_t<T>>(value);
    return os.str();
  } else {
    return "<value of " + std::string(sizeof(T) < 10 ? "small" : "large") +
           " unprintable type>";
  }
}

struct CmpResult {
  bool ok;
  std::string detail;
};

#define SWSIG_GTEST_DEFINE_CMP_(name, op)                            \
  template <typename A, typename B>                                  \
  CmpResult Cmp##name(const A& a, const B& b) {                      \
    if (a op b) return {true, {}};                                   \
    return {false, "actual: " + PrintValue(a) + " vs " +             \
                       PrintValue(b)};                               \
  }
SWSIG_GTEST_DEFINE_CMP_(EQ, ==)
SWSIG_GTEST_DEFINE_CMP_(NE, !=)
SWSIG_GTEST_DEFINE_CMP_(LT, <)
SWSIG_GTEST_DEFINE_CMP_(LE, <=)
SWSIG_GTEST_DEFINE_CMP_(GT, >)
SWSIG_GTEST_DEFINE_CMP_(GE, >=)
#undef SWSIG_GTEST_DEFINE_CMP_

inline CmpResult CmpNear(double a, double b, double tol) {
  if (std::fabs(a - b) <= tol) return {true, {}};
  std::ostringstream os;
  os << "actual: " << a << " vs " << b << " (tolerance " << tol << ")";
  return {false, os.str()};
}

// 4-ULP comparison, matching GoogleTest's EXPECT_DOUBLE_EQ semantics.
inline CmpResult CmpDoubleEq(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return {false, "NaN operand"};
  if (a == b) return {true, {}};
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(a));
  std::memcpy(&ib, &b, sizeof(b));
  const auto biased = [](std::int64_t bits) -> std::uint64_t {
    const std::uint64_t u = static_cast<std::uint64_t>(bits);
    const std::uint64_t sign = std::uint64_t{1} << 63;
    return (u & sign) ? (sign - (u & ~sign)) : (u | sign);
  };
  const std::uint64_t ba = biased(ia), bb = biased(ib);
  const std::uint64_t dist = ba > bb ? ba - bb : bb - ba;
  if (dist <= 4) return {true, {}};
  std::ostringstream os;
  os.precision(17);
  os << "actual: " << a << " vs " << b;
  return {false, os.str()};
}

// Records one assertion failure. Built on the gtest trick that
// `helper = Message() << a << b` streams first, then assigns, so a trailing
// `return` (for ASSERT_*) can prefix the whole expression.
class AssertHelper {
 public:
  AssertHelper(const char* file, int line, std::string summary)
      : file_(file), line_(line), summary_(std::move(summary)) {}
  void operator=(const Message& message) const {
    CurrentTestFailed().store(true, std::memory_order_relaxed);
    std::string user = message.str();
    std::fprintf(stderr, "%s:%d: Failure\n%s%s%s\n", file_, line_, summary_.c_str(),
                 user.empty() ? "" : "\n", user.c_str());
  }

 private:
  const char* file_;
  int line_;
  std::string summary_;
};

inline bool RegisterTest(const char* suite, const char* name,
                         std::function<Test*()> factory) {
  Registry().push_back(
      {std::string(suite) + "." + name, [factory = std::move(factory)]() {
         Test* t = factory();
         t->RunFullBody();
         delete t;
       }});
  return true;
}

template <typename Fixture>
struct ParamRegistry {
  struct Pattern {
    const char* suite;
    const char* name;
    std::function<Fixture*()> factory;
  };
  static std::vector<Pattern>& Patterns() {
    static std::vector<Pattern> p;
    return p;
  }
  static bool Add(const char* suite, const char* name,
                  std::function<Fixture*()> factory) {
    Patterns().push_back({suite, name, std::move(factory)});
    return true;
  }
};

template <typename P>
std::string DefaultParamName(const TestParamInfo<P>& info) {
  return std::to_string(info.index);
}

template <typename Fixture, typename Generator, typename Namer>
bool InstantiateParamSuite(const char* prefix, const Generator& generator,
                           Namer namer) {
  using P = typename Fixture::ParamType;
  const std::vector<P> params = generator;  // generators convert on demand
  Expanders().push_back([prefix, params, namer]() {
    for (const auto& pattern : ParamRegistry<Fixture>::Patterns()) {
      for (std::size_t i = 0; i < params.size(); ++i) {
        const std::string pname = namer(TestParamInfo<P>{params[i], i});
        Registry().push_back(
            {std::string(prefix) + "/" + pattern.suite + "." + pattern.name +
                 "/" + pname,
             [factory = pattern.factory, param = params[i]]() {
               // Param must be visible before construction: real gtest
               // allows GetParam() from the fixture constructor.
               Fixture::CurrentParam() = &param;
               Fixture* t = factory();
               t->RunFullBody();
               Fixture::CurrentParam() = nullptr;
               delete t;
             }});
      }
    }
  });
  return true;
}

template <typename Fixture, typename Generator>
bool InstantiateParamSuite(const char* prefix, const Generator& generator) {
  using P = typename Fixture::ParamType;
  return InstantiateParamSuite<Fixture>(prefix, generator,
                                        &DefaultParamName<P>);
}

inline int RunAllTestsImpl() {
  for (auto& expand : Expanders()) expand();
  Expanders().clear();
  int failed = 0;
  const auto& tests = Registry();
  std::fprintf(stderr, "[==========] Running %zu tests.\n", tests.size());
  for (const auto& test : tests) {
    std::fprintf(stderr, "[ RUN      ] %s\n", test.full_name.c_str());
    CurrentTestFailed().store(false, std::memory_order_relaxed);
    try {
      test.run();
    } catch (const std::exception& e) {
      CurrentTestFailed().store(true, std::memory_order_relaxed);
      std::fprintf(stderr, "  unexpected exception: %s\n", e.what());
    } catch (...) {
      CurrentTestFailed().store(true, std::memory_order_relaxed);
      std::fprintf(stderr, "  unexpected non-std exception\n");
    }
    if (CurrentTestFailed().load(std::memory_order_relaxed)) {
      ++failed;
      std::fprintf(stderr, "[  FAILED  ] %s\n", test.full_name.c_str());
    } else {
      std::fprintf(stderr, "[       OK ] %s\n", test.full_name.c_str());
    }
  }
  std::fprintf(stderr, "[==========] %zu tests ran.\n", tests.size());
  std::fprintf(stderr, "[  PASSED  ] %zu tests.\n", tests.size() - failed);
  if (failed) std::fprintf(stderr, "[  FAILED  ] %d tests.\n", failed);
  return failed == 0 ? 0 : 1;
}

}  // namespace internal

template <typename T>
class TestWithParam : public Test {
 public:
  using ParamType = T;
  const T& GetParam() const { return *CurrentParam(); }
  static const T*& CurrentParam() {
    static const T* current = nullptr;
    return current;
  }
};

// Value generators. They stay polymorphic (templated conversion to
// std::vector<P>) so `Values(1, 2u)` can instantiate a suite whose ParamType
// is neither argument's exact type, as in GoogleTest.
template <typename... Ts>
struct ValueArrayGen {
  std::tuple<Ts...> values;
  template <typename P>
  operator std::vector<P>() const {
    std::vector<P> out;
    out.reserve(sizeof...(Ts));
    std::apply([&out](const Ts&... v) { (out.push_back(static_cast<P>(v)), ...); },
               values);
    return out;
  }
};

template <typename... Ts>
ValueArrayGen<Ts...> Values(Ts... values) {
  return {std::tuple<Ts...>(std::move(values)...)};
}

template <typename T, typename S = int>
struct RangeGen {
  T begin, end;
  S step;
  template <typename P>
  operator std::vector<P>() const {
    std::vector<P> out;
    for (T v = begin; v < end; v = static_cast<T>(v + step))
      out.push_back(static_cast<P>(v));
    return out;
  }
};

template <typename T>
RangeGen<T> Range(T begin, T end) {
  return {begin, end, 1};
}
template <typename T, typename S>
RangeGen<T, S> Range(T begin, T end, S step) {
  return {begin, end, step};
}

inline void InitGoogleTest(int*, char**) {}
inline void InitGoogleTest() {}

}  // namespace testing

#define RUN_ALL_TESTS() ::testing::internal::RunAllTestsImpl()

#define SWSIG_GTEST_CLASS_(suite, name) suite##_##name##_Test

#define SWSIG_GTEST_TEST_(suite, name, parent)                                 \
  class SWSIG_GTEST_CLASS_(suite, name) : public parent {                      \
   public:                                                                     \
    void TestBody() override;                                                  \
  };                                                                           \
  [[maybe_unused]] static const bool swsig_gtest_reg_##suite##_##name =        \
      ::testing::internal::RegisterTest(#suite, #name, []() -> ::testing::Test* { \
        return new SWSIG_GTEST_CLASS_(suite, name);                            \
      });                                                                      \
  void SWSIG_GTEST_CLASS_(suite, name)::TestBody()

#define TEST(suite, name) SWSIG_GTEST_TEST_(suite, name, ::testing::Test)
#define TEST_F(fixture, name) SWSIG_GTEST_TEST_(fixture, name, fixture)

#define TEST_P(fixture, name)                                                  \
  class SWSIG_GTEST_CLASS_(fixture, name) : public fixture {                   \
   public:                                                                     \
    void TestBody() override;                                                  \
  };                                                                           \
  [[maybe_unused]] static const bool swsig_gtest_preg_##fixture##_##name =     \
      ::testing::internal::ParamRegistry<fixture>::Add(                        \
          #fixture, #name, []() -> fixture* {                                  \
            return new SWSIG_GTEST_CLASS_(fixture, name);                      \
          });                                                                  \
  void SWSIG_GTEST_CLASS_(fixture, name)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(prefix, fixture, ...)                         \
  [[maybe_unused]] static const bool swsig_gtest_inst_##prefix##_##fixture =   \
      ::testing::internal::InstantiateParamSuite<fixture>(#prefix, __VA_ARGS__)

// Core assertion machinery. The switch/if shape makes each macro a single
// statement usable in un-braced if/else, and lets ASSERT_* prefix `return`.
#define SWSIG_GTEST_ASSERT_(ok_expr, summary, on_fail)                         \
  switch (0)                                                                   \
  case 0:                                                                      \
  default:                                                                     \
    if (ok_expr)                                                               \
      ;                                                                        \
    else                                                                       \
      on_fail ::testing::internal::AssertHelper(__FILE__, __LINE__, summary) = \
          ::testing::Message()

#define SWSIG_GTEST_CMP_(name, a, b, on_fail)                                  \
  switch (0)                                                                   \
  case 0:                                                                      \
  default:                                                                     \
    if (::testing::internal::CmpResult swsig_gtest_r =                         \
            ::testing::internal::Cmp##name((a), (b));                          \
        swsig_gtest_r.ok)                                                      \
      ;                                                                        \
    else                                                                       \
      on_fail ::testing::internal::AssertHelper(                               \
          __FILE__, __LINE__,                                                  \
          std::string(#name "(" #a ", " #b ") failed: ") +                     \
              swsig_gtest_r.detail) = ::testing::Message()

#define EXPECT_EQ(a, b) SWSIG_GTEST_CMP_(EQ, a, b, )
#define EXPECT_NE(a, b) SWSIG_GTEST_CMP_(NE, a, b, )
#define EXPECT_LT(a, b) SWSIG_GTEST_CMP_(LT, a, b, )
#define EXPECT_LE(a, b) SWSIG_GTEST_CMP_(LE, a, b, )
#define EXPECT_GT(a, b) SWSIG_GTEST_CMP_(GT, a, b, )
#define EXPECT_GE(a, b) SWSIG_GTEST_CMP_(GE, a, b, )
#define ASSERT_EQ(a, b) SWSIG_GTEST_CMP_(EQ, a, b, return)
#define ASSERT_NE(a, b) SWSIG_GTEST_CMP_(NE, a, b, return)
#define ASSERT_LT(a, b) SWSIG_GTEST_CMP_(LT, a, b, return)
#define ASSERT_LE(a, b) SWSIG_GTEST_CMP_(LE, a, b, return)
#define ASSERT_GT(a, b) SWSIG_GTEST_CMP_(GT, a, b, return)
#define ASSERT_GE(a, b) SWSIG_GTEST_CMP_(GE, a, b, return)

#define EXPECT_TRUE(x) \
  SWSIG_GTEST_ASSERT_(static_cast<bool>(x), "EXPECT_TRUE(" #x ") failed", )
#define EXPECT_FALSE(x) \
  SWSIG_GTEST_ASSERT_(!static_cast<bool>(x), "EXPECT_FALSE(" #x ") failed", )
#define ASSERT_TRUE(x) \
  SWSIG_GTEST_ASSERT_(static_cast<bool>(x), "ASSERT_TRUE(" #x ") failed", return)
#define ASSERT_FALSE(x)                                                  \
  SWSIG_GTEST_ASSERT_(!static_cast<bool>(x), "ASSERT_FALSE(" #x ") failed", \
                      return)

#define EXPECT_NEAR(a, b, tol)                                                 \
  switch (0)                                                                   \
  case 0:                                                                      \
  default:                                                                     \
    if (::testing::internal::CmpResult swsig_gtest_r =                         \
            ::testing::internal::CmpNear((a), (b), (tol));                     \
        swsig_gtest_r.ok)                                                      \
      ;                                                                        \
    else                                                                       \
      ::testing::internal::AssertHelper(                                       \
          __FILE__, __LINE__,                                                  \
          std::string("EXPECT_NEAR(" #a ", " #b ", " #tol ") failed: ") +      \
              swsig_gtest_r.detail) = ::testing::Message()

#define EXPECT_DOUBLE_EQ(a, b)                                                 \
  switch (0)                                                                   \
  case 0:                                                                      \
  default:                                                                     \
    if (::testing::internal::CmpResult swsig_gtest_r =                         \
            ::testing::internal::CmpDoubleEq((a), (b));                        \
        swsig_gtest_r.ok)                                                      \
      ;                                                                        \
    else                                                                       \
      ::testing::internal::AssertHelper(                                       \
          __FILE__, __LINE__,                                                  \
          std::string("EXPECT_DOUBLE_EQ(" #a ", " #b ") failed: ") +           \
              swsig_gtest_r.detail) = ::testing::Message()

// Outcome codes for the lambda probe: 0 = no throw, 1 = expected type,
// 2 = wrong type.
#define SWSIG_GTEST_THROW_PROBE_(stmt, extype)                        \
  [&]() -> int {                                                      \
    try {                                                             \
      stmt;                                                           \
    } catch (const extype&) {                                         \
      return 1;                                                       \
    } catch (...) {                                                   \
      return 2;                                                       \
    }                                                                 \
    return 0;                                                         \
  }()

#define EXPECT_THROW(stmt, extype)                                          \
  SWSIG_GTEST_ASSERT_(SWSIG_GTEST_THROW_PROBE_(stmt, extype) == 1,          \
                      "EXPECT_THROW(" #stmt ", " #extype                    \
                      ") failed: wrong or missing exception", )

#define ASSERT_THROW(stmt, extype)                                          \
  SWSIG_GTEST_ASSERT_(SWSIG_GTEST_THROW_PROBE_(stmt, extype) == 1,          \
                      "ASSERT_THROW(" #stmt ", " #extype                    \
                      ") failed: wrong or missing exception", return)

#define EXPECT_NO_THROW(stmt)                                               \
  SWSIG_GTEST_ASSERT_(                                                      \
      [&]() -> bool {                                                       \
        try {                                                               \
          stmt;                                                             \
        } catch (...) {                                                     \
          return false;                                                     \
        }                                                                   \
        return true;                                                        \
      }(),                                                                  \
      "EXPECT_NO_THROW(" #stmt ") failed: exception thrown", )

#define ASSERT_NO_THROW(stmt)                                               \
  SWSIG_GTEST_ASSERT_(                                                      \
      [&]() -> bool {                                                       \
        try {                                                               \
          stmt;                                                             \
        } catch (...) {                                                     \
          return false;                                                     \
        }                                                                   \
        return true;                                                        \
      }(),                                                                  \
      "ASSERT_NO_THROW(" #stmt ") failed: exception thrown", return)

#define ADD_FAILURE()                                                        \
  ::testing::internal::AssertHelper(__FILE__, __LINE__, "Failure") =         \
      ::testing::Message()
#define FAIL()                                                               \
  return ::testing::internal::AssertHelper(__FILE__, __LINE__, "Failure") = \
      ::testing::Message()
#define SUCCEED() static_cast<void>(0)

#endif  // SWSIG_TESTS_SUPPORT_GTEST_GTEST_H_
