// Tests for the asset transfer object, including the double-spend-via-
// equivocation attack that non-equivocating broadcast blocks.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "registers/space.hpp"
#include "runtime/harness.hpp"
#include "runtime/process.hpp"
#include "transfer/asset_transfer.hpp"

namespace swsig::transfer {
namespace {

using runtime::ThisProcess;

class TransferSystem {
 public:
  TransferSystem(int n, int f, std::uint64_t initial = 100,
                 int max_transfers = 6)
      : space_(controller_),
        rb_(space_, {n, f, max_transfers}),
        at_(rb_, {.n = n,
                  .initial_balance = initial,
                  .max_transfers = max_transfers}) {
    for (int pid = 1; pid <= n; ++pid) {
      helpers_.emplace_back([this, pid](std::stop_token st) {
        ThisProcess::Binder bind(pid);
        while (!st.stop_requested()) {
          if (!rb_.help_round()) std::this_thread::yield();
        }
      });
    }
  }
  ~TransferSystem() {
    for (auto& t : helpers_) t.request_stop();
  }

  AssetTransfer& at() { return at_; }
  broadcast::StickyReliableBroadcast& rb() { return rb_; }

  template <typename F>
  auto as(int pid, F&& fn) {
    ThisProcess::Binder bind(pid);
    return std::forward<F>(fn)(at_);
  }

 private:
  runtime::FreeStepController controller_;
  registers::Space space_;
  broadcast::StickyReliableBroadcast rb_;
  AssetTransfer at_;
  std::vector<std::jthread> helpers_;
};

TEST(Transfer, InitialBalances) {
  TransferSystem sys(4, 1, 100);
  for (int p = 1; p <= 4; ++p)
    EXPECT_EQ(sys.as(2, [p](AssetTransfer& at) { return at.balance_of(p); }),
              100u);
}

TEST(Transfer, SimpleTransferMovesFunds) {
  TransferSystem sys(4, 1, 100);
  EXPECT_TRUE(sys.as(1, [](AssetTransfer& at) { return at.transfer(2, 30); }));
  EXPECT_EQ(sys.as(3, [](AssetTransfer& at) { return at.balance_of(1); }),
            70u);
  EXPECT_EQ(sys.as(3, [](AssetTransfer& at) { return at.balance_of(2); }),
            130u);
}

TEST(Transfer, ChainedTransfers) {
  TransferSystem sys(4, 1, 100);
  sys.as(1, [](AssetTransfer& at) { ASSERT_TRUE(at.transfer(2, 100)); });
  // p2 can now spend 200.
  sys.as(2, [](AssetTransfer& at) { ASSERT_TRUE(at.transfer(3, 150)); });
  EXPECT_EQ(sys.as(4, [](AssetTransfer& at) { return at.balance_of(1); }), 0u);
  EXPECT_EQ(sys.as(4, [](AssetTransfer& at) { return at.balance_of(2); }),
            50u);
  EXPECT_EQ(sys.as(4, [](AssetTransfer& at) { return at.balance_of(3); }),
            250u);
}

TEST(Transfer, HonestOverdraftRefused) {
  TransferSystem sys(4, 1, 100);
  EXPECT_FALSE(
      sys.as(1, [](AssetTransfer& at) { return at.transfer(2, 101); }));
  EXPECT_EQ(sys.as(3, [](AssetTransfer& at) { return at.balance_of(1); }),
            100u);
}

// A Byzantine owner broadcasts an overdraft directly (bypassing the honest
// client check): every correct process independently refuses to apply it.
TEST(Transfer, ByzantineOverdraftNotApplied) {
  TransferSystem sys(4, 1, 100);
  {
    ThisProcess::Binder bind(1);
    sys.rb().broadcast(0, encode_transfer({2, 5000}));  // overdraft
  }
  EXPECT_EQ(sys.as(3, [](AssetTransfer& at) { return at.balance_of(2); }),
            100u);
  EXPECT_EQ(sys.as(3, [](AssetTransfer& at) { return at.balance_of(1); }),
            100u);
}

// The double-spend attack: a Byzantine owner tries to publish TWO
// different transfers under the same sequence number — sticky slots make
// the second write a no-op, so all correct processes agree on one debit.
TEST(Transfer, EquivocationDoubleSpendBlocked) {
  TransferSystem sys(4, 1, 100);
  {
    ThisProcess::Binder bind(1);
    sys.rb().broadcast(0, encode_transfer({2, 100}));
    sys.rb().broadcast(0, encode_transfer({3, 100}));  // same seq! no-op
  }
  const auto b2 =
      sys.as(4, [](AssetTransfer& at) { return at.balance_of(2); });
  const auto b3 =
      sys.as(4, [](AssetTransfer& at) { return at.balance_of(3); });
  EXPECT_EQ(b2, 200u);
  EXPECT_EQ(b3, 100u);  // the second "spend" of the same money never lands
  // Total supply conserved.
  std::uint64_t total = 0;
  for (int p = 1; p <= 4; ++p)
    total += sys.as(4, [p](AssetTransfer& at) { return at.balance_of(p); });
  EXPECT_EQ(total, 400u);
}

// Malformed Byzantine transfers (self-transfer, bad recipient) are skipped
// deterministically and do not wedge the owner's later valid transfers...
TEST(Transfer, MalformedTransfersSkipped) {
  TransferSystem sys(4, 1, 100);
  {
    ThisProcess::Binder bind(1);
    sys.rb().broadcast(0, encode_transfer({1, 10}));  // self-transfer: bad
    sys.rb().broadcast(1, encode_transfer({2, 10}));  // valid
  }
  EXPECT_EQ(sys.as(3, [](AssetTransfer& at) { return at.balance_of(2); }),
            110u);
  EXPECT_EQ(sys.as(3, [](AssetTransfer& at) { return at.balance_of(1); }),
            90u);
}

// Balance queries agree across processes (agreement on the delivered set +
// deterministic replay).
TEST(Transfer, BalancesAgreeAcrossProcesses) {
  TransferSystem sys(4, 1, 100);
  sys.as(1, [](AssetTransfer& at) { ASSERT_TRUE(at.transfer(3, 25)); });
  sys.as(2, [](AssetTransfer& at) { ASSERT_TRUE(at.transfer(4, 10)); });
  for (int account = 1; account <= 4; ++account) {
    std::set<std::uint64_t> answers;
    for (int pid = 1; pid <= 4; ++pid)
      answers.insert(sys.as(pid, [account](AssetTransfer& at) {
        return at.balance_of(account);
      }));
    EXPECT_EQ(answers.size(), 1u) << "account " << account;
  }
}

TEST(Transfer, EncodingRoundTrip) {
  const Transfer t{7, 123456789};
  const Transfer r = decode_transfer(encode_transfer(t));
  EXPECT_EQ(r.to, 7);
  EXPECT_EQ(r.amount, 123456789u);
}

}  // namespace
}  // namespace swsig::transfer
