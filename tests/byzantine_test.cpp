// Tests for the Byzantine behavior library and the mechanized Theorem-29
// reset attack: the attack must succeed (relay violation) exactly when
// 3 <= n <= 3f, and must fail for n > 3f.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "byzantine/behaviors.hpp"
#include "byzantine/reset_attack.hpp"
#include "core/system.hpp"
#include "core/verifiable_register.hpp"
#include "runtime/harness.hpp"

namespace swsig::byzantine {
namespace {

using VReg = core::VerifiableRegister<int>;

// --------------------------------------------------------- behaviors

// A denying colluder cannot break validity/relay when n > 3f: quorums of
// correct witnesses dominate.
TEST(Behaviors, DenierCannotBlockVerification) {
  core::FreeSystem<VReg> sys(
      [] {
        VReg::Config c;
        c.n = 4;
        c.f = 1;
        c.v0 = 0;
        return c;
      }(),
      core::HelperOptions{.exclude = {4}});  // p4 runs the denier instead
  std::atomic<bool> stop{false};
  sys.spawn(4, [&](std::stop_token st) {
    DenyingHelper<VReg> denier(sys.alg());
    while (!st.stop_requested() && !stop.load()) {
      if (!denier.round()) std::this_thread::yield();
    }
  });
  sys.as(1, [](VReg& r) {
    r.write(5);
    ASSERT_EQ(r.sign(5), core::SignResult::kSuccess);
  });
  EXPECT_TRUE(sys.as(2, [](VReg& r) { return r.verify(5); }));
  EXPECT_TRUE(sys.as(3, [](VReg& r) { return r.verify(5); }));
  stop = true;
}

// Vote-flipping colluders (the §5.1 scenario) cannot break relay for
// n > 3f: set1 never un-grows, so flipped votes only delay.
TEST(Behaviors, VoteFlipperCannotBreakRelay) {
  core::FreeSystem<VReg> sys(
      [] {
        VReg::Config c;
        c.n = 7;
        c.f = 2;
        c.v0 = 0;
        return c;
      }(),
      core::HelperOptions{.exclude = {6, 7}});
  std::atomic<bool> stop{false};
  for (int b : {6, 7}) {
    sys.spawn(b, [&](std::stop_token st) {
      VoteFlipHelper<VReg> flipper(sys.alg(), 5);
      while (!st.stop_requested() && !stop.load()) {
        if (!flipper.round()) std::this_thread::yield();
      }
    });
  }
  sys.as(1, [](VReg& r) {
    r.write(5);
    ASSERT_EQ(r.sign(5), core::SignResult::kSuccess);
  });
  bool seen_true = false;
  for (int round = 0; round < 10; ++round) {
    for (int k = 2; k <= 5; ++k) {
      const bool ok = sys.as(k, [](VReg& r) { return r.verify(5); });
      if (seen_true) {
        EXPECT_TRUE(ok) << "relay broken at round " << round;
      }
      if (ok) seen_true = true;
    }
  }
  EXPECT_TRUE(seen_true);
  stop = true;
}

// Erasure by the (Byzantine) writer after a verify: relay must survive via
// the correct witnesses.
TEST(Behaviors, EraseAfterVerifyRelaySurvives) {
  core::FreeSystem<VReg> sys([] {
    VReg::Config c;
    c.n = 4;
    c.f = 1;
    c.v0 = 0;
    return c;
  }());
  sys.as(1, [](VReg& r) {
    r.write(5);
    ASSERT_EQ(r.sign(5), core::SignResult::kSuccess);
  });
  ASSERT_TRUE(sys.as(2, [](VReg& r) { return r.verify(5); }));
  // The writer "denies": erases every register it owns.
  sys.as(1, [](VReg& r) { erase_verifiable_registers(r); });
  // All correct readers can still prove the lie.
  for (int k = 2; k <= 4; ++k)
    EXPECT_TRUE(sys.as(k, [](VReg& r) { return r.verify(5); }));
}

// ------------------------------------------------------ reset attack

struct AttackParam {
  int n;
  int f;
  bool expect_violation;
};

class ResetAttack : public ::testing::TestWithParam<AttackParam> {};

TEST_P(ResetAttack, BoundaryExactlyAt3f) {
  const auto [n, f, expect_violation] = GetParam();
  const ResetAttackOutcome out = run_reset_attack(n, f);
  EXPECT_EQ(out.first_test, 1)
      << "phase-1 Test by pa must succeed in every configuration";
  EXPECT_EQ(out.relay_violated(), expect_violation)
      << "n=" << n << " f=" << f << " first=" << out.first_test
      << " second=" << out.second_test;
}

INSTANTIATE_TEST_SUITE_P(
    Boundary, ResetAttack,
    ::testing::Values(
        // n <= 3f: the paper's impossibility bites — attack succeeds.
        AttackParam{3, 1, true}, AttackParam{4, 2, true},
        AttackParam{5, 2, true}, AttackParam{6, 2, true},
        AttackParam{6, 3, true}, AttackParam{9, 3, true},
        // n > 3f: same schedule, attack must fail.
        AttackParam{4, 1, false}, AttackParam{7, 2, false},
        AttackParam{10, 3, false}),
    [](const ::testing::TestParamInfo<AttackParam>& info) {
      return "n" + std::to_string(info.param.n) + "f" +
             std::to_string(info.param.f) +
             (info.param.expect_violation ? "Breaks" : "Holds");
    });

TEST(ResetAttackMeta, PartitionRespectsProofShape) {
  const ResetAttackOutcome out = run_reset_attack(6, 2);
  // Byzantine = {s} ∪ Q1 with |Q1| <= f-1 -> at most f processes.
  EXPECT_LE(out.byzantine.size(), 2u);
  EXPECT_EQ(out.byzantine.front(), 1);
  // Asleep = {pb} ∪ Q3.
  EXPECT_EQ(out.asleep.front(), 3);
  EXPECT_LE(out.asleep.size(), 2u);
}

TEST(ResetAttackMeta, RejectsDegenerateParameters) {
  EXPECT_THROW(run_reset_attack(2, 1), std::invalid_argument);
  EXPECT_THROW(run_reset_attack(5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace swsig::byzantine
