// Crypto substrate tests: SHA-256 against FIPS 180-4 / NIST vectors,
// HMAC-SHA256 against RFC 4231, and the oracle-enforced signature service.
#include <gtest/gtest.h>

#include <string>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signer.hpp"
#include "runtime/process.hpp"

namespace swsig::crypto {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, LongMessageMillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte message: padding spills into a second block.
  const std::string msg(64, 'x');
  Sha256 h;
  h.update(msg);
  const Digest d1 = h.finish();
  // Same content fed byte-by-byte must agree.
  Sha256 h2;
  for (char c : msg) h2.update(&c, 1);
  EXPECT_EQ(d1, h2.finish());
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog and keeps running";
  Sha256 h;
  h.update(msg.substr(0, 10));
  h.update(msg.substr(10, 25));
  h.update(msg.substr(35));
  EXPECT_EQ(h.finish(), Sha256::hash(msg));
}

TEST(Sha256, ResetReusesObject) {
  Sha256 h;
  h.update("abc");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ(to_hex(hmac_sha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
TEST(Hmac, Rfc4231Case3) {
  const std::string key(20, '\xaa');
  const std::string data(50, '\xdd');
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than block size.
TEST(Hmac, Rfc4231Case6LongKey) {
  const std::string key(131, '\xaa');
  EXPECT_EQ(to_hex(hmac_sha256(
                key, "Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(EncodeValue, IntegralLittleEndian) {
  const std::string e = encode_value<std::uint64_t>(0x0102030405060708ULL);
  ASSERT_EQ(e.size(), 8u);
  EXPECT_EQ(static_cast<unsigned char>(e[0]), 0x08);
  EXPECT_EQ(static_cast<unsigned char>(e[7]), 0x01);
}

TEST(EncodeValue, StringPassThrough) {
  EXPECT_EQ(encode_value<std::string>("hello"), "hello");
}

class SignerTest : public ::testing::Test {
 protected:
  SignatureAuthority auth{{.n = 4, .seed = 7}};
};

TEST_F(SignerTest, SignVerifyRoundTrip) {
  runtime::ThisProcess::Binder bind(2);
  const Signature sig = auth.sign(2, "message");
  EXPECT_TRUE(auth.verify("message", sig));
}

TEST_F(SignerTest, VerifyRejectsTamperedMessage) {
  runtime::ThisProcess::Binder bind(2);
  const Signature sig = auth.sign(2, "message");
  EXPECT_FALSE(auth.verify("messagE", sig));
}

TEST_F(SignerTest, VerifyRejectsWrongSigner) {
  runtime::ThisProcess::Binder bind(2);
  Signature sig = auth.sign(2, "message");
  sig.signer = 3;  // claim it came from p3
  EXPECT_FALSE(auth.verify("message", sig));
}

TEST_F(SignerTest, VerifyRejectsForgedTag) {
  runtime::ThisProcess::Binder bind(2);
  Signature sig = auth.sign(2, "message");
  sig.tag[0] ^= 1;
  EXPECT_FALSE(auth.verify("message", sig));
}

// The unforgeability oracle: you can lie (sign anything as yourself), but
// you cannot sign as someone else.
TEST_F(SignerTest, CannotSignAsAnotherProcess) {
  runtime::ThisProcess::Binder bind(2);
  EXPECT_NO_THROW(auth.sign(2, "any lie I want"));
  EXPECT_THROW(auth.sign(3, "forged"), ForgeryAttempt);
  EXPECT_THROW(auth.sign(1, "forged"), ForgeryAttempt);
}

TEST_F(SignerTest, UnboundThreadCannotSign) {
  EXPECT_THROW(auth.sign(1, "m"), ForgeryAttempt);
}

TEST_F(SignerTest, RejectsUnknownSigner) {
  runtime::ThisProcess::Binder bind(2);
  EXPECT_THROW(auth.sign(9, "m"), std::invalid_argument);
  Signature sig{9, {}};
  EXPECT_FALSE(auth.verify("m", sig));
}

TEST_F(SignerTest, DifferentSignersDifferentTags) {
  Signature a, b;
  {
    runtime::ThisProcess::Binder bind(1);
    a = auth.sign(1, "m");
  }
  {
    runtime::ThisProcess::Binder bind(2);
    b = auth.sign(2, "m");
  }
  EXPECT_NE(a.tag, b.tag);
}

TEST_F(SignerTest, DeterministicAcrossInstancesWithSameSeed) {
  SignatureAuthority other({.n = 4, .seed = 7});
  runtime::ThisProcess::Binder bind(1);
  EXPECT_EQ(auth.sign(1, "m").tag, other.sign(1, "m").tag);
  // ...and a different seed yields different keys.
  SignatureAuthority third({.n = 4, .seed = 8});
  EXPECT_NE(auth.sign(1, "m").tag, third.sign(1, "m").tag);
}

TEST(SignerPk, SlowModeStillCorrect) {
  SignatureAuthority auth(
      {.n = 2, .seed = 1, .mode = SignatureAuthority::Mode::kSlowPk,
       .pk_iterations = 16});
  runtime::ThisProcess::Binder bind(1);
  const Signature sig = auth.sign(1, "m");
  EXPECT_TRUE(auth.verify("m", sig));
  EXPECT_FALSE(auth.verify("x", sig));
}

}  // namespace
}  // namespace swsig::crypto
