// Crypto substrate tests: SHA-256 against FIPS 180-4 / NIST vectors,
// HMAC-SHA256 against RFC 4231, and the oracle-enforced signature service.
#include <gtest/gtest.h>

#include <string>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signer.hpp"
#include "runtime/process.hpp"

namespace swsig::crypto {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, LongMessageMillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte message: padding spills into a second block.
  const std::string msg(64, 'x');
  Sha256 h;
  h.update(msg);
  const Digest d1 = h.finish();
  // Same content fed byte-by-byte must agree.
  Sha256 h2;
  for (char c : msg) h2.update(&c, 1);
  EXPECT_EQ(d1, h2.finish());
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog and keeps running";
  Sha256 h;
  h.update(msg.substr(0, 10));
  h.update(msg.substr(10, 25));
  h.update(msg.substr(35));
  EXPECT_EQ(h.finish(), Sha256::hash(msg));
}

TEST(Sha256, ResetReusesObject) {
  Sha256 h;
  h.update("abc");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ(to_hex(hmac_sha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
TEST(Hmac, Rfc4231Case3) {
  const std::string key(20, '\xaa');
  const std::string data(50, '\xdd');
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than block size.
TEST(Hmac, Rfc4231Case6LongKey) {
  const std::string key(131, '\xaa');
  EXPECT_EQ(to_hex(hmac_sha256(
                key, "Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(EncodeValue, IntegralFramedLittleEndian) {
  // [tag 'u'][8-byte LE length = 8][8-byte LE payload]
  const std::string e = encode_value<std::uint64_t>(0x0102030405060708ULL);
  ASSERT_EQ(e.size(), 1u + 8u + 8u);
  EXPECT_EQ(e[0], 'u');
  EXPECT_EQ(static_cast<unsigned char>(e[1]), 0x08);  // length, LE
  for (int i = 2; i < 9; ++i) EXPECT_EQ(e[i], '\0');
  EXPECT_EQ(static_cast<unsigned char>(e[9]), 0x08);   // payload, LE
  EXPECT_EQ(static_cast<unsigned char>(e[16]), 0x01);
}

TEST(EncodeValue, StringFramed) {
  // [tag 's'][8-byte LE length = 5]["hello"]
  const std::string e = encode_value<std::string>("hello");
  ASSERT_EQ(e.size(), 1u + 8u + 5u);
  EXPECT_EQ(e[0], 's');
  EXPECT_EQ(static_cast<unsigned char>(e[1]), 0x05);
  EXPECT_EQ(e.substr(9), "hello");
}

// The seed-era encoder: integrals became bare 8-byte LE words, strings
// passed through verbatim, and multi-field messages were built by bare
// concatenation. Reproduced here so the regression tests can prove the
// collisions were real, not hypothetical.
template <typename V>
std::string old_encode_value(const V& v) {
  if constexpr (std::is_integral_v<V>) {
    std::string out(8, '\0');
    const auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i)
      out[static_cast<std::size_t>(i)] = static_cast<char>((u >> (8 * i)) & 0xff);
    return out;
  } else {
    return std::string(v);
  }
}

// Regression: the uint64 42 and the 8-byte string "\x2a\0..\0" collided
// under the old encoding (one signature covered both statements). The
// framed encoding keeps them distinct.
TEST(EncodeFraming, CrossTypeCollisionFixed) {
  const std::string as_int = std::string("\x2a", 1) + std::string(7, '\0');
  // Old encoding: demonstrably one byte string for two typed statements.
  ASSERT_EQ(old_encode_value<std::uint64_t>(42),
            old_encode_value<std::string>(as_int));
  // New encoding: type tags separate them.
  EXPECT_NE(encode_value<std::uint64_t>(42), encode_value<std::string>(as_int));
}

// Regression: bare concatenation let bytes migrate between fields —
// ("ab","c") and ("a","bc") shared an encoding. Length prefixes pin each
// field's extent.
TEST(EncodeFraming, CrossFieldCollisionFixed) {
  const std::string old_ab_c = old_encode_value<std::string>("ab") +
                               old_encode_value<std::string>("c");
  const std::string old_a_bc = old_encode_value<std::string>("a") +
                               old_encode_value<std::string>("bc");
  ASSERT_EQ(old_ab_c, old_a_bc);
  EXPECT_NE(encode_message("t", std::string("ab"), std::string("c")),
            encode_message("t", std::string("a"), std::string("bc")));
}

TEST(EncodeFraming, DomainSeparatesProtocols) {
  // Same payload fields signed for different protocol contexts must not be
  // interchangeable.
  EXPECT_NE(encode_message("swsig.rb.slot", 1, 2),
            encode_message("swsig.other", 1, 2));
  // And the domain cannot blend into the first field.
  EXPECT_NE(encode_message("ab", std::string("c")),
            encode_message("a", std::string("bc")));
}

class SignerTest : public ::testing::Test {
 protected:
  SignatureAuthority auth{{.n = 4, .seed = 7}};
};

TEST_F(SignerTest, SignVerifyRoundTrip) {
  runtime::ThisProcess::Binder bind(2);
  const Signature sig = auth.sign(2, "message");
  EXPECT_TRUE(auth.verify("message", sig));
}

TEST_F(SignerTest, VerifyRejectsTamperedMessage) {
  runtime::ThisProcess::Binder bind(2);
  const Signature sig = auth.sign(2, "message");
  EXPECT_FALSE(auth.verify("messagE", sig));
}

TEST_F(SignerTest, VerifyRejectsWrongSigner) {
  runtime::ThisProcess::Binder bind(2);
  Signature sig = auth.sign(2, "message");
  sig.signer = 3;  // claim it came from p3
  EXPECT_FALSE(auth.verify("message", sig));
}

TEST_F(SignerTest, VerifyRejectsForgedTag) {
  runtime::ThisProcess::Binder bind(2);
  Signature sig = auth.sign(2, "message");
  sig.tag[0] ^= 1;
  EXPECT_FALSE(auth.verify("message", sig));
}

// The unforgeability oracle: you can lie (sign anything as yourself), but
// you cannot sign as someone else.
TEST_F(SignerTest, CannotSignAsAnotherProcess) {
  runtime::ThisProcess::Binder bind(2);
  EXPECT_NO_THROW(auth.sign(2, "any lie I want"));
  EXPECT_THROW(auth.sign(3, "forged"), ForgeryAttempt);
  EXPECT_THROW(auth.sign(1, "forged"), ForgeryAttempt);
}

TEST_F(SignerTest, UnboundThreadCannotSign) {
  EXPECT_THROW(auth.sign(1, "m"), ForgeryAttempt);
}

TEST_F(SignerTest, RejectsUnknownSigner) {
  runtime::ThisProcess::Binder bind(2);
  EXPECT_THROW(auth.sign(9, "m"), std::invalid_argument);
  Signature sig{9, {}};
  EXPECT_FALSE(auth.verify("m", sig));
}

TEST_F(SignerTest, DifferentSignersDifferentTags) {
  Signature a, b;
  {
    runtime::ThisProcess::Binder bind(1);
    a = auth.sign(1, "m");
  }
  {
    runtime::ThisProcess::Binder bind(2);
    b = auth.sign(2, "m");
  }
  EXPECT_NE(a.tag, b.tag);
}

TEST_F(SignerTest, DeterministicAcrossInstancesWithSameSeed) {
  SignatureAuthority other({.n = 4, .seed = 7});
  runtime::ThisProcess::Binder bind(1);
  EXPECT_EQ(auth.sign(1, "m").tag, other.sign(1, "m").tag);
  // ...and a different seed yields different keys.
  SignatureAuthority third({.n = 4, .seed = 8});
  EXPECT_NE(auth.sign(1, "m").tag, third.sign(1, "m").tag);
}

// The precomputed schedule is an optimization, not a different MAC: it
// must be bit-identical to the one-shot derivation for every key shape.
TEST(Hmac, ScheduleMatchesOneShot) {
  const std::string keys[] = {std::string("Jefe"), std::string(20, '\x0b'),
                              std::string(64, 'k'), std::string(131, '\xaa')};
  const std::string msgs[] = {"", "Hi There", std::string(1000, 'd')};
  for (const auto& key : keys) {
    const HmacSchedule sched(key);
    for (const auto& msg : msgs)
      EXPECT_EQ(hmac_sha256(sched, msg), hmac_sha256(key, msg));
  }
}

class VerifyCacheTest : public ::testing::Test {
 protected:
  SignatureAuthority auth{{.n = 4, .seed = 7}};
};

TEST_F(VerifyCacheTest, CachedVerifyMatchesUncached) {
  runtime::ThisProcess::Binder bind(2);
  const Signature sig = auth.sign(2, "message");
  const std::uint64_t misses0 = auth.cache().misses();
  EXPECT_TRUE(auth.verify_cached("message", sig));  // real HMAC, then insert
  const std::uint64_t hits0 = auth.cache().hits();
  EXPECT_TRUE(auth.verify_cached("message", sig));  // pure cache hit
  EXPECT_GT(auth.cache().hits(), hits0);
  EXPECT_GT(auth.cache().misses(), misses0);
}

// A tampered tag must never hit the cache, even after the genuine
// signature for the same (signer, message) was proven and cached.
TEST_F(VerifyCacheTest, TamperedTagNeverHits) {
  runtime::ThisProcess::Binder bind(2);
  const Signature sig = auth.sign(2, "message");
  ASSERT_TRUE(auth.verify_cached("message", sig));
  ASSERT_TRUE(auth.verify_cached("message", sig));  // cached positive exists
  for (std::size_t byte = 0; byte < sig.tag.size(); ++byte) {
    Signature forged = sig;
    forged.tag[byte] ^= 1;
    EXPECT_FALSE(auth.verify_cached("message", forged));
  }
}

// A hit requires the exact (signer, message, tag) triple: perturbing any
// coordinate of a cached-positive verification must verify (and fail) for
// real.
TEST_F(VerifyCacheTest, HitRequiresExactTriple) {
  runtime::ThisProcess::Binder bind(2);
  const Signature sig = auth.sign(2, "message");
  ASSERT_TRUE(auth.verify_cached("message", sig));
  Signature wrong_signer = sig;
  wrong_signer.signer = 3;
  EXPECT_FALSE(auth.verify_cached("message", wrong_signer));
  EXPECT_FALSE(auth.verify_cached("messagE", sig));
}

// Negative verdicts are never cached: a failed verify must not poison a
// later verify of the genuine signature.
TEST_F(VerifyCacheTest, NegativesNotCached) {
  runtime::ThisProcess::Binder bind(2);
  const Signature sig = auth.sign(2, "message");
  Signature forged = sig;
  forged.tag[0] ^= 1;
  EXPECT_FALSE(auth.verify_cached("message", forged));
  EXPECT_FALSE(auth.verify_cached("message", forged));  // still re-checked
  EXPECT_TRUE(auth.verify_cached("message", sig));
}

TEST_F(VerifyCacheTest, VerifyAllSharesDigestAcrossQuorum) {
  // n signers of one statement — the quorum-round shape.
  const std::string msg = encode_message("swsig.test", 7, std::string("v"));
  std::vector<Signature> sigs;
  for (int pid = 1; pid <= 4; ++pid) {
    runtime::ThisProcess::Binder bind(pid);
    sigs.push_back(auth.sign(pid, msg));
  }
  std::vector<SignatureAuthority::VerifyEntry> entries;
  for (const Signature& s : sigs) entries.push_back({msg, &s});
  EXPECT_EQ(auth.verify_all(entries), 4u);
  for (const auto& e : entries) EXPECT_TRUE(e.ok);
  // One bad entry among good ones: count excludes it, positions are right.
  Signature forged = sigs[2];
  forged.tag[8] ^= 1;
  entries[2].sig = &forged;
  EXPECT_EQ(auth.verify_all(entries), 3u);
  EXPECT_TRUE(entries[0].ok && entries[1].ok && entries[3].ok);
  EXPECT_FALSE(entries[2].ok);
}

// Regression: the interner must key handles on the FULL 32-byte digest.
// We craft two distinct digests whose 64-bit fold — the interner's shard/
// bucket hash, whose formula we replicate here — collides. An earlier
// revision keyed the handle map on that fold alone, so the second
// (never-verified) certificate silently shared the first one's verified
// handle; with full-digest keys the collision only co-locates a bucket.
TEST(CertInternerTest, CraftedFoldCollisionDoesNotAliasHandle) {
  using detail::fold64;
  using detail::mix;
  const auto fold = [](const Digest& d) {
    return mix(fold64(d, 0) ^ mix(fold64(d, 8)) ^ fold64(d, 16) ^
               mix(fold64(d, 24)));
  };
  const auto store_le64 = [](Digest& d, std::size_t off, std::uint64_t w) {
    for (std::size_t i = 0; i < 8; ++i)
      d[off + i] = static_cast<std::uint8_t>(w >> (8 * i));
  };
  const Digest a = Sha256::hash("legit-cert");
  // Solve the fold backwards: perturb word 1, then pick word 0 so the
  // xor of (optionally mixed) words matches a's pre-mix state.
  Digest b = a;
  const std::uint64_t w1b = fold64(a, 8) + 1;
  store_le64(b, 8, w1b);
  store_le64(b, 0, fold64(a, 0) ^ mix(fold64(a, 8)) ^ mix(w1b));
  ASSERT_NE(a, b);
  ASSERT_EQ(fold(a), fold(b));  // the crafted 64-bit collision is real
  CertInterner interner;
  const std::uint64_t ha = interner.intern(a);
  EXPECT_FALSE(interner.find(b).has_value());
  EXPECT_NE(interner.intern(b), ha);
  EXPECT_EQ(*interner.find(a), ha);
}

TEST(CertInternerTest, InternAndFindRoundTrip) {
  CertInterner interner;
  const Digest a = Sha256::hash("cert-a");
  const Digest b = Sha256::hash("cert-b");
  EXPECT_FALSE(interner.find(a).has_value());
  const std::uint64_t ha = interner.intern(a);
  const std::uint64_t hb = interner.intern(b);
  EXPECT_NE(ha, hb);
  EXPECT_EQ(interner.intern(a), ha);  // stable handle
  ASSERT_TRUE(interner.find(a).has_value());
  EXPECT_EQ(*interner.find(a), ha);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(SignerPk, SlowModeStillCorrect) {
  SignatureAuthority auth(
      {.n = 2, .seed = 1, .mode = SignatureAuthority::Mode::kSlowPk,
       .pk_iterations = 16});
  runtime::ThisProcess::Binder bind(1);
  const Signature sig = auth.sign(1, "m");
  EXPECT_TRUE(auth.verify("m", sig));
  EXPECT_FALSE(auth.verify("x", sig));
}

}  // namespace
}  // namespace swsig::crypto
