// Tests for the Definition-78 Byzantine-completion checker: histories of
// correct readers facing a FAULTY writer must admit a witness completion
// (and histories that violate relay must not).
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "byzantine/behaviors.hpp"
#include "core/authenticated_register.hpp"
#include "core/system.hpp"
#include "core/verifiable_register.hpp"
#include "lincheck/byzantine_completion.hpp"
#include "lincheck/history.hpp"
#include "runtime/harness.hpp"
#include "util/rng.hpp"

namespace swsig::lincheck {
namespace {

Operation op(int id, int pid, std::string name, std::string arg,
             std::string result, std::uint64_t inv, std::uint64_t resp,
             std::string object = "") {
  Operation o;
  o.id = id;
  o.pid = pid;
  o.object = std::move(object);
  o.name = std::move(name);
  o.arg = std::move(arg);
  o.result = std::move(result);
  o.invoke_ts = inv;
  o.response_ts = resp;
  return o;
}

// ------------------------------------------------- synthetic histories

TEST(ByzantineCompletion, VerifyTrueJustifiedBySyntheticSign) {
  // Readers saw verify(5)=false then verify(5)=true: a Sign must fit in
  // between — and does.
  std::vector<Operation> h{
      op(0, 2, "verify", "5", "false", 1, 2),
      op(1, 3, "verify", "5", "true", 3, 4),
      op(2, 2, "verify", "5", "true", 5, 6),
  };
  const auto res = check_byzantine_verifiable(h, "0");
  EXPECT_TRUE(res.byzantine_linearizable) << res.reason;
  EXPECT_GE(res.inserted_ops, 2u);  // write(5) + sign(5)
}

TEST(ByzantineCompletion, RelayViolationHasNoCompletion) {
  // verify=true strictly before verify=false: no Sign placement exists.
  std::vector<Operation> h{
      op(0, 2, "verify", "5", "true", 1, 2),
      op(1, 3, "verify", "5", "false", 3, 4),
  };
  const auto res = check_byzantine_verifiable(h, "0");
  EXPECT_FALSE(res.byzantine_linearizable);
  EXPECT_NE(res.reason.find("relay"), std::string::npos) << res.reason;
}

TEST(ByzantineCompletion, ReadsJustifiedBySyntheticWrites) {
  std::vector<Operation> h{
      op(0, 2, "read", "", "7", 1, 2),
      op(1, 3, "read", "", "9", 3, 4),
      op(2, 4, "read", "", "0", 5, 6),  // back to v0: Byzantine writer may
                                        // have re-written it
  };
  // For the authenticated register the v0 read needs no justification and
  // reads re-verify, so all three are completable.
  const auto res = check_byzantine_authenticated(h, "0");
  EXPECT_TRUE(res.byzantine_linearizable) << res.reason;
}

TEST(ByzantineCompletion, AuthenticatedInitialValueAlwaysVerifies) {
  std::vector<Operation> h{
      op(0, 2, "verify", "0", "true", 1, 2),
  };
  const auto res = check_byzantine_authenticated(h, "0");
  EXPECT_TRUE(res.byzantine_linearizable) << res.reason;
  EXPECT_EQ(res.inserted_ops, 0u);  // v0 is deemed signed
}

TEST(ByzantineCompletion, MultiRegisterHistoriesDecompose) {
  // Reader operations across two verifiable registers: the witness
  // construction is per register (windows keyed by (object, value), every
  // inserted writer op inherits its register), and the partitioned checker
  // verifies each completion independently.
  std::vector<Operation> h{
      op(0, 2, "verify", "5", "false", 1, 2, "r0"),
      op(1, 3, "verify", "5", "true", 3, 4, "r0"),
      op(2, 2, "verify", "7", "false", 5, 6, "r1"),
      op(3, 4, "verify", "7", "true", 7, 8, "r1"),
  };
  auto res = check_byzantine_verifiable(h, "0");
  EXPECT_TRUE(res.byzantine_linearizable) << res.reason;
  EXPECT_EQ(res.verdict, Verdict::kLinearizable);
  EXPECT_GE(res.inserted_ops, 4u);  // write+sign per register

  // verify=true strictly before verify=false on DIFFERENT registers is NOT
  // a relay violation (the registers are independent)...
  std::vector<Operation> cross{
      op(0, 2, "verify", "5", "true", 1, 2, "r0"),
      op(1, 3, "verify", "5", "false", 3, 4, "r1"),
  };
  EXPECT_TRUE(check_byzantine_verifiable(cross, "0").byzantine_linearizable);

  // ... but on the SAME register it still is, and the reason names it.
  h.push_back(op(4, 2, "verify", "9", "true", 9, 10, "r1"));
  h.push_back(op(5, 3, "verify", "9", "false", 11, 12, "r1"));
  res = check_byzantine_verifiable(h, "0");
  EXPECT_FALSE(res.byzantine_linearizable);
  EXPECT_NE(res.reason.find("relay"), std::string::npos) << res.reason;
  EXPECT_NE(res.reason.find("r1"), std::string::npos) << res.reason;
}

TEST(ByzantineCompletion, BudgetThreadsThroughToVerdict) {
  std::vector<Operation> h{
      op(0, 2, "verify", "5", "false", 1, 2),
      op(1, 3, "verify", "5", "true", 3, 4),
  };
  CheckOptions zero;
  zero.max_states = 0;
  const auto res = check_byzantine_verifiable(h, "0", zero);
  EXPECT_FALSE(res.byzantine_linearizable);
  EXPECT_EQ(res.verdict, Verdict::kBudgetExhausted);
  EXPECT_NE(res.reason.find("undecided"), std::string::npos) << res.reason;
}

// ------------------------------------------- histories from real runs

// Byzantine writer: writes, signs, lets readers verify, then erases and
// denies. Record ONLY the correct readers' operations and check that the
// recorded history is Byzantine linearizable via the completion.
TEST(ByzantineCompletion, RealEraserWriterHistoryCompletes) {
  using Reg = core::VerifiableRegister<int>;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    core::FreeSystem<Reg> sys(Reg::Config{4, 1, 0, false});
    HistoryRecorder rec;
    std::atomic<bool> done{false};

    runtime::Harness h;
    // The Byzantine writer's actions are NOT recorded (it is faulty; the
    // completion has to invent a consistent writer).
    h.spawn(1, "byz", [&](std::stop_token) {
      util::Rng rng(seed);
      sys.alg().write(5);
      sys.alg().sign(5);
      while (!done.load()) {
        if (rng.chance(1, 3))
          byzantine::erase_verifiable_registers(sys.alg());
        else
          sys.alg().help_round();
      }
    });
    for (int k = 2; k <= 4; ++k) {
      h.spawn(k, "op", [&, k](std::stop_token) {
        util::Rng rng(seed * 7 + static_cast<std::uint64_t>(k));
        for (int i = 0; i < 4; ++i) {
          const int v = rng.chance(1, 2) ? 5 : 9;
          rec.record("verify", std::to_string(v),
                     [&] { return sys.alg().verify(v); },
                     [](bool b) { return std::string(b ? "true" : "false"); });
        }
      });
    }
    h.start();
    h.join_role("op");
    done = true;
    h.join();

    const auto res = check_byzantine_verifiable(rec.operations(), "0");
    EXPECT_TRUE(res.byzantine_linearizable)
        << "seed " << seed << ": " << res.reason;
  }
}

// Same for the authenticated register with a churning/erasing writer:
// reader-only histories (reads + verifies) must complete.
TEST(ByzantineCompletion, RealChurningAuthenticatedWriterCompletes) {
  using Reg = core::AuthenticatedRegister<int>;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    core::FreeSystem<Reg> sys(Reg::Config{4, 1, 0, false});
    HistoryRecorder rec;
    std::atomic<bool> done{false};

    runtime::Harness h;
    h.spawn(1, "byz", [&](std::stop_token) {
      util::Rng rng(seed);
      auto raw = sys.alg().raw();
      int i = 0;
      while (!done.load()) {
        ++i;
        if (rng.chance(1, 4)) {
          raw.writer_set->write({});  // erase everything
        } else {
          sys.alg().write(static_cast<int>(rng.uniform(1, 3)));
        }
        (void)i;
      }
    });
    for (int k = 2; k <= 4; ++k) {
      h.spawn(k, "op", [&, k](std::stop_token) {
        util::Rng rng(seed * 13 + static_cast<std::uint64_t>(k));
        for (int i = 0; i < 3; ++i) {
          if (rng.chance(1, 2)) {
            rec.record("read", "", [&] { return sys.alg().read(); },
                       [](int v) { return std::to_string(v); });
          } else {
            const int v = static_cast<int>(rng.uniform(0, 3));
            rec.record("verify", std::to_string(v),
                       [&] { return sys.alg().verify(v); },
                       [](bool b) { return std::string(b ? "true" : "false"); });
          }
        }
      });
    }
    h.start();
    h.join_role("op");
    done = true;
    h.join();

    const auto res = check_byzantine_authenticated(rec.operations(), "0");
    EXPECT_TRUE(res.byzantine_linearizable)
        << "seed " << seed << ": " << res.reason;
  }
}

}  // namespace
}  // namespace swsig::lincheck
