// Unit and property tests for Algorithm 1 (verifiable register).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "core/verifiable_register.hpp"
#include "runtime/harness.hpp"
#include "util/rng.hpp"

namespace swsig::core {
namespace {

using Reg = VerifiableRegister<int>;
using Sys = FreeSystem<Reg>;

Reg::Config cfg(int n, int f, int v0 = 0) {
  Reg::Config c;
  c.n = n;
  c.f = f;
  c.v0 = v0;
  return c;
}

TEST(VerifiableConfig, RejectsInsufficientResilience) {
  runtime::FreeStepController ctrl;
  registers::Space space(ctrl);
  EXPECT_THROW(Reg(space, cfg(3, 1)), std::invalid_argument);
  EXPECT_THROW(Reg(space, cfg(6, 2)), std::invalid_argument);
  EXPECT_NO_THROW(Reg(space, cfg(4, 1)));
  EXPECT_NO_THROW(Reg(space, cfg(7, 2)));
}

TEST(VerifiableConfig, SuboptimalOptIn) {
  runtime::FreeStepController ctrl;
  registers::Space space(ctrl);
  Reg::Config c = cfg(3, 1);
  c.allow_suboptimal = true;
  EXPECT_NO_THROW(Reg(space, c));
}

TEST(Verifiable, ReadReturnsInitialValue) {
  Sys sys(cfg(4, 1, 99));
  EXPECT_EQ(sys.as(2, [](Reg& r) { return r.read(); }), 99);
}

TEST(Verifiable, ReadSeesLastWrite) {
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) {
    r.write(10);
    r.write(20);
  });
  EXPECT_EQ(sys.as(3, [](Reg& r) { return r.read(); }), 20);
}

TEST(Verifiable, SignFailsForUnwrittenValue) {
  Sys sys(cfg(4, 1));
  EXPECT_EQ(sys.as(1, [](Reg& r) { return r.sign(5); }), SignResult::kFail);
}

TEST(Verifiable, SignSucceedsForWrittenValue) {
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) { r.write(5); });
  EXPECT_EQ(sys.as(1, [](Reg& r) { return r.sign(5); }),
            SignResult::kSuccess);
}

TEST(Verifiable, SignWorksForOlderValues) {
  // The writer may sign any previously written value, even after
  // overwriting it (Definition 10 discussion, §4).
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) {
    r.write(1);
    r.write(2);
    r.write(3);
  });
  EXPECT_EQ(sys.as(1, [](Reg& r) { return r.sign(1); }),
            SignResult::kSuccess);
}

TEST(Verifiable, VerifyFalseWhenNothingSigned) {
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) { r.write(5); });  // written but NOT signed
  EXPECT_FALSE(sys.as(2, [](Reg& r) { return r.verify(5); }));
}

// [validity] Observation 11: after a successful Sign(v), every Verify(v)
// returns true.
TEST(Verifiable, ValidityAfterSign) {
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) {
    r.write(5);
    ASSERT_EQ(r.sign(5), SignResult::kSuccess);
  });
  for (int k = 2; k <= 4; ++k)
    EXPECT_TRUE(sys.as(k, [](Reg& r) { return r.verify(5); }))
        << "reader p" << k;
}

// [unforgeability] Observation 12: Verify of a never-signed value is false,
// repeatedly and for every reader.
TEST(Verifiable, UnforgeabilityUnsignedValue) {
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) {
    r.write(5);
    ASSERT_EQ(r.sign(5), SignResult::kSuccess);
  });
  for (int k = 2; k <= 4; ++k)
    EXPECT_FALSE(sys.as(k, [](Reg& r) { return r.verify(123); }));
}

// [relay] Observation 13: once some reader's Verify(v) returns true, every
// subsequent Verify(v) by any reader returns true.
TEST(Verifiable, RelayAcrossReaders) {
  Sys sys(cfg(7, 2));
  sys.as(1, [](Reg& r) {
    r.write(42);
    ASSERT_EQ(r.sign(42), SignResult::kSuccess);
  });
  ASSERT_TRUE(sys.as(2, [](Reg& r) { return r.verify(42); }));
  for (int round = 0; round < 3; ++round)
    for (int k = 2; k <= 7; ++k)
      EXPECT_TRUE(sys.as(k, [](Reg& r) { return r.verify(42); }));
}

TEST(Verifiable, MultipleSignedValuesAllVerify) {
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) {
    for (int v = 1; v <= 8; ++v) {
      r.write(v);
      ASSERT_EQ(r.sign(v), SignResult::kSuccess);
    }
  });
  for (int v = 1; v <= 8; ++v)
    EXPECT_TRUE(sys.as(3, [v](Reg& r) { return r.verify(v); }));
}

TEST(Verifiable, SignedSubsetOnlyVerifies) {
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) {
    for (int v = 1; v <= 6; ++v) r.write(v);
    ASSERT_EQ(r.sign(2), SignResult::kSuccess);
    ASSERT_EQ(r.sign(4), SignResult::kSuccess);
  });
  EXPECT_FALSE(sys.as(2, [](Reg& r) { return r.verify(1); }));
  EXPECT_TRUE(sys.as(2, [](Reg& r) { return r.verify(2); }));
  EXPECT_FALSE(sys.as(2, [](Reg& r) { return r.verify(3); }));
  EXPECT_TRUE(sys.as(2, [](Reg& r) { return r.verify(4); }));
}

TEST(Verifiable, OperationsEnforceRoles) {
  Sys sys(cfg(4, 1));
  EXPECT_THROW(sys.as(2, [](Reg& r) { r.write(1); }), std::logic_error);
  EXPECT_THROW(sys.as(2, [](Reg& r) { r.sign(1); }), std::logic_error);
  EXPECT_THROW(sys.as(1, [](Reg& r) { r.read(); }), std::logic_error);
  EXPECT_THROW(sys.as(1, [](Reg& r) { r.verify(1); }), std::logic_error);
}

// Concurrent verify storm while the writer signs: all verifies terminate
// and, once one returns true, later ones must as well (relay under real
// concurrency).
TEST(Verifiable, ConcurrentVerifyRelayConsistency) {
  Sys sys(cfg(4, 1));
  std::atomic<bool> any_true{false};
  std::atomic<bool> violation{false};
  runtime::Harness h;
  h.spawn(1, "op", [&](std::stop_token) {
    sys.alg().write(7);
    sys.alg().sign(7);
  });
  for (int k = 2; k <= 4; ++k) {
    h.spawn(k, "op", [&](std::stop_token) {
      for (int i = 0; i < 50; ++i) {
        const bool seen_before = any_true.load();
        const bool ok = sys.alg().verify(7);
        if (ok) any_true = true;
        if (seen_before && !ok) violation = true;  // relay broken
      }
    });
  }
  h.start();
  h.join();
  EXPECT_FALSE(violation.load());
  EXPECT_TRUE(any_true.load());  // sign completed, so last verifies succeed
}

// Property sweep: random write/sign/verify workloads across (n, f) and
// seeds; checks validity + unforgeability + relay on every history.
struct SweepParam {
  int n;
  int f;
  std::uint64_t seed;
};

class VerifiableSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(VerifiableSweep, RandomWorkloadHonorsSpec) {
  const auto [n, f, seed] = GetParam();
  Sys sys(cfg(n, f));
  util::Rng rng(seed);

  std::set<int> written, signed_vals;
  // Writer phase: interleave writes and signs of random values.
  sys.as(1, [&](Reg& r) {
    for (int i = 0; i < 20; ++i) {
      const int v = static_cast<int>(rng.uniform(1, 10));
      if (rng.chance(1, 2)) {
        r.write(v);
        written.insert(v);
      } else {
        const auto res = r.sign(v);
        EXPECT_EQ(res == SignResult::kSuccess, written.contains(v));
        if (res == SignResult::kSuccess) signed_vals.insert(v);
      }
    }
  });
  // Reader phase: every signed value verifies true (validity), every
  // unsigned one false (unforgeability).
  for (int v = 1; v <= 10; ++v) {
    const int reader = 2 + static_cast<int>(rng.uniform(0, n - 2));
    const bool ok = sys.as(reader, [v](Reg& r) { return r.verify(v); });
    EXPECT_EQ(ok, signed_vals.contains(v)) << "value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, VerifiableSweep,
    ::testing::Values(SweepParam{4, 1, 1}, SweepParam{4, 1, 2},
                      SweepParam{5, 1, 3}, SweepParam{7, 2, 4},
                      SweepParam{7, 2, 5}, SweepParam{10, 3, 6},
                      SweepParam{13, 4, 7}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "n" + std::to_string(info.param.n) + "f" +
             std::to_string(info.param.f) + "s" +
             std::to_string(info.param.seed);
    });

// Deterministic mode: a full write/sign/verify scenario under the
// serialized scheduler, twice with the same seed, must produce identical
// traces and results.
TEST(VerifiableDeterministic, ReproducibleRuns) {
  auto run = [](std::uint64_t seed) {
    runtime::Harness h(
        {.deterministic = true,
         .policy = std::make_shared<runtime::RandomPolicy>(seed)});
    registers::Space space(h.controller());
    Reg reg(space, cfg(4, 1));
    std::vector<int> results;
    // Helpers stop via an in-schedule signal (the ops-done counter is only
    // read while a thread holds the step grant), NOT via request_stop():
    // a wall-clock stop would make the shutdown tail of the trace racy.
    std::atomic<int> ops_done{0};
    h.spawn(1, "op", [&](std::stop_token) {
      reg.write(5);
      reg.sign(5);
      ops_done.fetch_add(1);
    });
    h.spawn(2, "op", [&](std::stop_token) {
      results.push_back(reg.verify(5) ? 1 : 0);  // serialized: safe
      ops_done.fetch_add(1);
    });
    h.spawn(3, "op", [&](std::stop_token) {
      results.push_back(reg.verify(5) ? 1 : 0);
      ops_done.fetch_add(1);
    });
    for (int pid = 1; pid <= 4; ++pid) {
      h.spawn(pid, "help", [&reg, &ops_done](std::stop_token) {
        while (ops_done.load(std::memory_order_relaxed) < 3)
          reg.help_round();
      });
    }
    h.start();
    h.join();
    return std::pair(h.trace_hash(), results);
  };
  const auto [hash_a, res_a] = run(11);
  const auto [hash_b, res_b] = run(11);
  EXPECT_EQ(hash_a, hash_b);
  EXPECT_EQ(res_a, res_b);

  // A different seed explores a different interleaving.
  const auto [hash_c, res_c] = run(12);
  EXPECT_NE(hash_a, hash_c);
}

}  // namespace
}  // namespace swsig::core
