// Tests for the linearizability checker itself, then checks of REAL
// histories recorded from the register implementations.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/authenticated_register.hpp"
#include "core/sticky_register.hpp"
#include "core/system.hpp"
#include "core/verifiable_register.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "lincheck/properties.hpp"
#include "lincheck/register_specs.hpp"
#include "runtime/harness.hpp"
#include "util/rng.hpp"

namespace swsig::lincheck {
namespace {

Operation op(int id, int pid, std::string name, std::string arg,
             std::string result, std::uint64_t inv, std::uint64_t resp) {
  Operation o;
  o.id = id;
  o.pid = pid;
  o.name = std::move(name);
  o.arg = std::move(arg);
  o.result = std::move(result);
  o.invoke_ts = inv;
  o.response_ts = resp;
  return o;
}

// ------------------------------------------------ checker unit tests

TEST(Checker, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(check_linearizable({}, PlainRegisterSpec("0")).linearizable);
}

TEST(Checker, SequentialReadAfterWrite) {
  std::vector<Operation> h{
      op(0, 1, "write", "5", "done", 1, 2),
      op(1, 2, "read", "", "5", 3, 4),
  };
  EXPECT_TRUE(check_linearizable(h, PlainRegisterSpec("0")).linearizable);
}

TEST(Checker, StaleReadNotLinearizable) {
  std::vector<Operation> h{
      op(0, 1, "write", "5", "done", 1, 2),
      op(1, 2, "read", "", "0", 3, 4),  // reads initial AFTER write completed
  };
  EXPECT_FALSE(check_linearizable(h, PlainRegisterSpec("0")).linearizable);
}

TEST(Checker, ConcurrentReadMayReturnEitherValue) {
  // Read overlaps the write: both old and new value are linearizable.
  for (const std::string result : {"0", "5"}) {
    std::vector<Operation> h{
        op(0, 1, "write", "5", "done", 1, 10),
        op(1, 2, "read", "", result, 2, 3),
    };
    EXPECT_TRUE(check_linearizable(h, PlainRegisterSpec("0")).linearizable)
        << result;
  }
  // But a value never written is not.
  std::vector<Operation> h{
      op(0, 1, "write", "5", "done", 1, 10),
      op(1, 2, "read", "", "7", 2, 3),
  };
  EXPECT_FALSE(check_linearizable(h, PlainRegisterSpec("0")).linearizable);
}

TEST(Checker, NewOldInversionRejected) {
  // Two sequential reads around two writes: r1=new, r2=old is NOT
  // linearizable (the classic new/old inversion).
  std::vector<Operation> h{
      op(0, 1, "write", "1", "done", 1, 2),
      op(1, 1, "write", "2", "done", 3, 4),
      op(2, 2, "read", "", "2", 5, 6),
      op(3, 3, "read", "", "1", 7, 8),
  };
  EXPECT_FALSE(check_linearizable(h, PlainRegisterSpec("0")).linearizable);
}

TEST(Checker, WitnessRespectsPrecedence) {
  std::vector<Operation> h{
      op(0, 1, "write", "5", "done", 1, 2),
      op(1, 2, "read", "", "5", 3, 4),
  };
  const auto res = check_linearizable(h, PlainRegisterSpec("0"));
  ASSERT_TRUE(res.linearizable);
  ASSERT_EQ(res.witness.size(), 2u);
  EXPECT_EQ(res.witness[0], 0);
  EXPECT_EQ(res.witness[1], 1);
}

TEST(Checker, VerifiableSpecSignVerify) {
  std::vector<Operation> h{
      op(0, 1, "write", "5", "done", 1, 2),
      op(1, 1, "sign", "5", "success", 3, 4),
      op(2, 2, "verify", "5", "true", 5, 6),
      op(3, 2, "verify", "7", "false", 7, 8),
      op(4, 1, "sign", "9", "fail", 9, 10),
  };
  EXPECT_TRUE(
      check_linearizable(h, VerifiableRegisterSpec("0")).linearizable);
}

TEST(Checker, VerifiableSpecRejectsVerifyWithoutSign) {
  std::vector<Operation> h{
      op(0, 1, "write", "5", "done", 1, 2),
      op(1, 2, "verify", "5", "true", 3, 4),  // never signed
  };
  EXPECT_FALSE(
      check_linearizable(h, VerifiableRegisterSpec("0")).linearizable);
}

TEST(Checker, VerifiableConcurrentSignVerifyEitherWay) {
  for (const std::string result : {"true", "false"}) {
    std::vector<Operation> h{
        op(0, 1, "write", "5", "done", 1, 2),
        op(1, 1, "sign", "5", "success", 3, 10),
        op(2, 2, "verify", "5", result, 4, 5),
    };
    EXPECT_TRUE(
        check_linearizable(h, VerifiableRegisterSpec("0")).linearizable)
        << result;
  }
}

TEST(Checker, AuthenticatedSpecInitialValueVerifies) {
  std::vector<Operation> h{
      op(0, 2, "verify", "0", "true", 1, 2),
      op(1, 1, "write", "5", "done", 3, 4),
      op(2, 2, "verify", "5", "true", 5, 6),
      op(3, 3, "verify", "9", "false", 7, 8),
  };
  EXPECT_TRUE(
      check_linearizable(h, AuthenticatedRegisterSpec("0")).linearizable);
}

TEST(Checker, StickySpecFirstWriteWins) {
  std::vector<Operation> h{
      op(0, 2, "read", "", "⊥", 1, 2),
      op(1, 1, "write", "5", "done", 3, 4),
      op(2, 1, "write", "6", "done", 5, 6),
      op(3, 2, "read", "", "5", 7, 8),
  };
  EXPECT_TRUE(check_linearizable(h, StickyRegisterSpec()).linearizable);
  // Second write winning is NOT sticky behavior.
  std::vector<Operation> bad{
      op(0, 1, "write", "5", "done", 1, 2),
      op(1, 1, "write", "6", "done", 3, 4),
      op(2, 2, "read", "", "6", 5, 6),
  };
  EXPECT_FALSE(check_linearizable(bad, StickyRegisterSpec()).linearizable);
}

TEST(Checker, TestOrSetSpec) {
  std::vector<Operation> h{
      op(0, 2, "test", "", "0", 1, 2),
      op(1, 1, "set", "", "done", 3, 4),
      op(2, 3, "test", "", "1", 5, 6),
  };
  EXPECT_TRUE(check_linearizable(h, TestOrSetSpec()).linearizable);
  std::vector<Operation> bad{
      op(0, 1, "set", "", "done", 1, 2),
      op(1, 2, "test", "", "0", 3, 4),
  };
  EXPECT_FALSE(check_linearizable(bad, TestOrSetSpec()).linearizable);
}

TEST(Checker, RejectsOversizedHistory) {
  std::vector<Operation> h;
  for (int i = 0; i < 63; ++i)
    h.push_back(op(i, 1, "write", "1", "done", 2 * i + 1, 2 * i + 2));
  EXPECT_THROW(check_linearizable(h, PlainRegisterSpec("0")),
               std::invalid_argument);
}

// ------------------------------------------------ property checkers

TEST(Properties, RelayViolationDetected) {
  std::vector<Operation> h{
      op(0, 2, "verify", "5", "true", 1, 2),
      op(1, 3, "verify", "5", "false", 3, 4),
  };
  EXPECT_FALSE(check_relay(h).empty());
  // Concurrent verifies may disagree without violating relay.
  std::vector<Operation> ok{
      op(0, 2, "verify", "5", "true", 1, 5),
      op(1, 3, "verify", "5", "false", 2, 6),
  };
  EXPECT_TRUE(check_relay(ok).empty());
}

TEST(Properties, ValidityViolationDetected) {
  std::vector<Operation> h{
      op(0, 1, "sign", "5", "success", 1, 2),
      op(1, 2, "verify", "5", "false", 3, 4),
  };
  EXPECT_FALSE(check_validity(h).empty());
}

TEST(Properties, UnforgeabilityViolationDetected) {
  std::vector<Operation> h{
      op(0, 2, "verify", "5", "true", 1, 2),
  };
  EXPECT_FALSE(check_unforgeability(h).empty());
  // ... but v0 is always verifiable in authenticated registers.
  EXPECT_TRUE(check_unforgeability(h, "write", "5").empty());
}

TEST(Properties, UniquenessViolationDetected) {
  std::vector<Operation> two_values{
      op(0, 2, "read", "", "5", 1, 2),
      op(1, 3, "read", "", "6", 3, 4),
  };
  EXPECT_FALSE(check_uniqueness(two_values).empty());
  std::vector<Operation> value_then_bottom{
      op(0, 2, "read", "", "5", 1, 2),
      op(1, 3, "read", "", "⊥", 3, 4),
  };
  EXPECT_FALSE(check_uniqueness(value_then_bottom).empty());
  std::vector<Operation> ok{
      op(0, 2, "read", "", "⊥", 1, 2),
      op(1, 3, "read", "", "5", 3, 4),
  };
  EXPECT_TRUE(check_uniqueness(ok).empty());
}

// ----------------------------- real histories from the implementations

using VReg = core::VerifiableRegister<int>;
using AReg = core::AuthenticatedRegister<int>;
using SReg = core::StickyRegister<int>;

std::string render_bool(bool b) { return b ? "true" : "false"; }

// Concurrent workload against the real verifiable register; full Wing-Gong
// check of the recorded history (all processes correct).
TEST(RealHistories, VerifiableRegisterLinearizable) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    core::FreeSystem<VReg> sys([] {
      VReg::Config c;
      c.n = 4;
      c.f = 1;
      c.v0 = 0;
      return c;
    }());
    HistoryRecorder rec;
    runtime::Harness h;
    h.spawn(1, "op", [&](std::stop_token) {
      util::Rng rng(seed);
      for (int i = 0; i < 4; ++i) {
        const int v = static_cast<int>(rng.uniform(1, 3));
        rec.record("write", std::to_string(v),
                   [&] { sys.alg().write(v); return true; },
                   [](bool) { return std::string("done"); });
        if (rng.chance(1, 2)) {
          rec.record("sign", std::to_string(v),
                     [&] { return sys.alg().sign(v); },
                     [](core::SignResult r) {
                       return std::string(r == core::SignResult::kSuccess
                                              ? "success"
                                              : "fail");
                     });
        }
      }
    });
    for (int k = 2; k <= 4; ++k) {
      h.spawn(k, "op", [&, k](std::stop_token) {
        util::Rng rng(seed * 100 + static_cast<std::uint64_t>(k));
        for (int i = 0; i < 4; ++i) {
          if (rng.chance(1, 2)) {
            rec.record("read", "", [&] { return sys.alg().read(); },
                       [](int v) { return std::to_string(v); });
          } else {
            const int v = static_cast<int>(rng.uniform(1, 3));
            rec.record("verify", std::to_string(v),
                       [&] { return sys.alg().verify(v); }, render_bool);
          }
        }
      });
    }
    h.start();
    h.join();
    const auto ops = rec.operations();
    const auto result = check_linearizable(ops, VerifiableRegisterSpec("0"));
    EXPECT_TRUE(result.linearizable) << "seed " << seed;
  }
}

TEST(RealHistories, AuthenticatedRegisterLinearizable) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    core::FreeSystem<AReg> sys([] {
      AReg::Config c;
      c.n = 4;
      c.f = 1;
      c.v0 = 0;
      return c;
    }());
    HistoryRecorder rec;
    runtime::Harness h;
    h.spawn(1, "op", [&](std::stop_token) {
      util::Rng rng(seed);
      for (int i = 0; i < 5; ++i) {
        const int v = static_cast<int>(rng.uniform(1, 3));
        rec.record("write", std::to_string(v),
                   [&] { sys.alg().write(v); return true; },
                   [](bool) { return std::string("done"); });
      }
    });
    for (int k = 2; k <= 4; ++k) {
      h.spawn(k, "op", [&, k](std::stop_token) {
        util::Rng rng(seed * 100 + static_cast<std::uint64_t>(k));
        for (int i = 0; i < 4; ++i) {
          if (rng.chance(1, 2)) {
            rec.record("read", "", [&] { return sys.alg().read(); },
                       [](int v) { return std::to_string(v); });
          } else {
            const int v = static_cast<int>(rng.uniform(0, 3));
            rec.record("verify", std::to_string(v),
                       [&] { return sys.alg().verify(v); }, render_bool);
          }
        }
      });
    }
    h.start();
    h.join();
    const auto result =
        check_linearizable(rec.operations(), AuthenticatedRegisterSpec("0"));
    EXPECT_TRUE(result.linearizable) << "seed " << seed;
  }
}

TEST(RealHistories, StickyRegisterLinearizable) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    core::FreeSystem<SReg> sys([] {
      SReg::Config c;
      c.n = 4;
      c.f = 1;
      return c;
    }());
    HistoryRecorder rec;
    runtime::Harness h;
    h.spawn(1, "op", [&](std::stop_token) {
      rec.record("write", "7", [&] { sys.alg().write(7); return true; },
                 [](bool) { return std::string("done"); });
    });
    for (int k = 2; k <= 4; ++k) {
      h.spawn(k, "op", [&](std::stop_token) {
        for (int i = 0; i < 4; ++i) {
          rec.record("read", "", [&] { return sys.alg().read(); },
                     [](const std::optional<int>& v) {
                       return v ? std::to_string(*v) : std::string("⊥");
                     });
        }
      });
    }
    h.start();
    h.join();
    const auto ops = rec.operations();
    EXPECT_TRUE(check_linearizable(ops, StickyRegisterSpec()).linearizable)
        << "seed " << seed;
    EXPECT_TRUE(check_uniqueness(ops).empty()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace swsig::lincheck
