// Tests for the linearizability checker itself, then checks of REAL
// histories recorded from the register implementations.
//
// The checker is partitioned (per-register sub-histories, P-compositional)
// and pruned (forced-prefix frontier + interval-window candidates); the
// original brute-force Wing–Gong search is kept as a reference oracle and
// the two are differentially tested on ~1k randomized small histories.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/authenticated_register.hpp"
#include "core/sticky_register.hpp"
#include "core/system.hpp"
#include "core/verifiable_register.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "lincheck/history_gen.hpp"
#include "lincheck/partition.hpp"
#include "lincheck/properties.hpp"
#include "lincheck/register_specs.hpp"
#include "runtime/harness.hpp"
#include "util/rng.hpp"

namespace swsig::lincheck {
namespace {

Operation op(int id, int pid, std::string name, std::string arg,
             std::string result, std::uint64_t inv, std::uint64_t resp,
             std::string object = "") {
  Operation o;
  o.id = id;
  o.pid = pid;
  o.object = std::move(object);
  o.name = std::move(name);
  o.arg = std::move(arg);
  o.result = std::move(result);
  o.invoke_ts = inv;
  o.response_ts = resp;
  return o;
}

SpecFactory plain_factory(const std::string& v0 = "0") {
  return [v0](const std::string&) {
    return std::make_unique<PlainRegisterSpec>(v0);
  };
}

// ------------------------------------------------ checker unit tests

TEST(Checker, EmptyHistoryIsLinearizable) {
  const auto res = check_linearizable({}, PlainRegisterSpec("0"));
  EXPECT_EQ(res.verdict, Verdict::kLinearizable);
  EXPECT_TRUE(res.witness.empty());
  EXPECT_EQ(res.pending_dropped, 0u);
}

TEST(Checker, PendingInvocationIsDroppedNotMisjudged) {
  // A write that never responded must not be required by (or poison) the
  // check: Definition 2's completion construction removes it.
  std::vector<Operation> h{
      op(0, 1, "write", "5", "", 1, 0),  // response_ts = 0: still pending
      op(1, 2, "read", "", "0", 3, 4),
  };
  const auto res = check_linearizable(h, PlainRegisterSpec("0"));
  EXPECT_EQ(res.verdict, Verdict::kLinearizable);
  EXPECT_EQ(res.pending_dropped, 1u);
  ASSERT_EQ(res.witness.size(), 1u);
  EXPECT_EQ(res.witness[0], 1);
}

TEST(Checker, HistoryOfOnlyPendingInvocationsIsLinearizable) {
  std::vector<Operation> h{
      op(0, 1, "write", "5", "", 1, 0),
      op(1, 2, "read", "", "", 2, 0),
  };
  const auto res = check_linearizable(h, PlainRegisterSpec("0"));
  EXPECT_EQ(res.verdict, Verdict::kLinearizable);
  EXPECT_EQ(res.pending_dropped, 2u);
  EXPECT_TRUE(res.witness.empty());
}

TEST(Checker, SequentialReadAfterWrite) {
  std::vector<Operation> h{
      op(0, 1, "write", "5", "done", 1, 2),
      op(1, 2, "read", "", "5", 3, 4),
  };
  EXPECT_TRUE(check_linearizable(h, PlainRegisterSpec("0")).linearizable());
}

TEST(Checker, StaleReadNotLinearizable) {
  std::vector<Operation> h{
      op(0, 1, "write", "5", "done", 1, 2),
      op(1, 2, "read", "", "0", 3, 4),  // reads initial AFTER write completed
  };
  const auto res = check_linearizable(h, PlainRegisterSpec("0"));
  EXPECT_EQ(res.verdict, Verdict::kViolation);
  EXPECT_FALSE(res.linearizable());
}

TEST(Checker, ConcurrentReadMayReturnEitherValue) {
  // Read overlaps the write: both old and new value are linearizable.
  for (const std::string result : {"0", "5"}) {
    std::vector<Operation> h{
        op(0, 1, "write", "5", "done", 1, 10),
        op(1, 2, "read", "", result, 2, 3),
    };
    EXPECT_TRUE(check_linearizable(h, PlainRegisterSpec("0")).linearizable())
        << result;
  }
  // But a value never written is not.
  std::vector<Operation> h{
      op(0, 1, "write", "5", "done", 1, 10),
      op(1, 2, "read", "", "7", 2, 3),
  };
  EXPECT_FALSE(check_linearizable(h, PlainRegisterSpec("0")).linearizable());
}

TEST(Checker, NewOldInversionRejected) {
  // Two sequential reads around two writes: r1=new, r2=old is NOT
  // linearizable (the classic new/old inversion).
  std::vector<Operation> h{
      op(0, 1, "write", "1", "done", 1, 2),
      op(1, 1, "write", "2", "done", 3, 4),
      op(2, 2, "read", "", "2", 5, 6),
      op(3, 3, "read", "", "1", 7, 8),
  };
  EXPECT_FALSE(check_linearizable(h, PlainRegisterSpec("0")).linearizable());
}

TEST(Checker, WitnessRespectsPrecedence) {
  std::vector<Operation> h{
      op(0, 1, "write", "5", "done", 1, 2),
      op(1, 2, "read", "", "5", 3, 4),
  };
  const auto res = check_linearizable(h, PlainRegisterSpec("0"));
  ASSERT_TRUE(res.linearizable());
  ASSERT_EQ(res.witness.size(), 2u);
  EXPECT_EQ(res.witness[0], 0);
  EXPECT_EQ(res.witness[1], 1);
  EXPECT_TRUE(replay_witness(h, res.witness, plain_factory()));
}

TEST(Checker, VerifiableSpecSignVerify) {
  std::vector<Operation> h{
      op(0, 1, "write", "5", "done", 1, 2),
      op(1, 1, "sign", "5", "success", 3, 4),
      op(2, 2, "verify", "5", "true", 5, 6),
      op(3, 2, "verify", "7", "false", 7, 8),
      op(4, 1, "sign", "9", "fail", 9, 10),
  };
  EXPECT_TRUE(
      check_linearizable(h, VerifiableRegisterSpec("0")).linearizable());
}

TEST(Checker, VerifiableSpecRejectsVerifyWithoutSign) {
  std::vector<Operation> h{
      op(0, 1, "write", "5", "done", 1, 2),
      op(1, 2, "verify", "5", "true", 3, 4),  // never signed
  };
  EXPECT_FALSE(
      check_linearizable(h, VerifiableRegisterSpec("0")).linearizable());
}

TEST(Checker, VerifiableConcurrentSignVerifyEitherWay) {
  for (const std::string result : {"true", "false"}) {
    std::vector<Operation> h{
        op(0, 1, "write", "5", "done", 1, 2),
        op(1, 1, "sign", "5", "success", 3, 10),
        op(2, 2, "verify", "5", result, 4, 5),
    };
    EXPECT_TRUE(
        check_linearizable(h, VerifiableRegisterSpec("0")).linearizable())
        << result;
  }
}

TEST(Checker, AuthenticatedSpecInitialValueVerifies) {
  std::vector<Operation> h{
      op(0, 2, "verify", "0", "true", 1, 2),
      op(1, 1, "write", "5", "done", 3, 4),
      op(2, 2, "verify", "5", "true", 5, 6),
      op(3, 3, "verify", "9", "false", 7, 8),
  };
  EXPECT_TRUE(
      check_linearizable(h, AuthenticatedRegisterSpec("0")).linearizable());
}

TEST(Checker, StickySpecFirstWriteWins) {
  std::vector<Operation> h{
      op(0, 2, "read", "", "⊥", 1, 2),
      op(1, 1, "write", "5", "done", 3, 4),
      op(2, 1, "write", "6", "done", 5, 6),
      op(3, 2, "read", "", "5", 7, 8),
  };
  EXPECT_TRUE(check_linearizable(h, StickyRegisterSpec()).linearizable());
  // Second write winning is NOT sticky behavior.
  std::vector<Operation> bad{
      op(0, 1, "write", "5", "done", 1, 2),
      op(1, 1, "write", "6", "done", 3, 4),
      op(2, 2, "read", "", "6", 5, 6),
  };
  EXPECT_FALSE(check_linearizable(bad, StickyRegisterSpec()).linearizable());
}

TEST(Checker, TestOrSetSpec) {
  std::vector<Operation> h{
      op(0, 2, "test", "", "0", 1, 2),
      op(1, 1, "set", "", "done", 3, 4),
      op(2, 3, "test", "", "1", 5, 6),
  };
  EXPECT_TRUE(check_linearizable(h, TestOrSetSpec()).linearizable());
  std::vector<Operation> bad{
      op(0, 1, "set", "", "done", 1, 2),
      op(1, 2, "test", "", "0", 3, 4),
  };
  EXPECT_FALSE(check_linearizable(bad, TestOrSetSpec()).linearizable());
}

// ----------------------------------------- pruning, budget, long histories

// The old checker threw on > 62 operations; the pruned checker handles a
// long sequential history in a single forced-prefix sweep (one state per
// operation, no branching).
TEST(Checker, LongSequentialHistoryIsCheap) {
  std::vector<Operation> h;
  for (int i = 0; i < 300; ++i)
    h.push_back(op(i, 1, "write", std::to_string(i % 7), "done",
                   static_cast<std::uint64_t>(2 * i + 1),
                   static_cast<std::uint64_t>(2 * i + 2)));
  const auto res = check_linearizable(h, PlainRegisterSpec("0"));
  ASSERT_EQ(res.verdict, Verdict::kLinearizable);
  EXPECT_EQ(res.witness.size(), 300u);
  // Every operation was forced: the search never branched.
  EXPECT_LE(res.states_explored, 301u);
}

TEST(Checker, BruteStillRejectsOversizedHistory) {
  std::vector<Operation> h;
  for (int i = 0; i < 63; ++i)
    h.push_back(op(i, 1, "write", "1", "done",
                   static_cast<std::uint64_t>(2 * i + 1),
                   static_cast<std::uint64_t>(2 * i + 2)));
  EXPECT_THROW(check_linearizable_brute(h, PlainRegisterSpec("0")),
               std::invalid_argument);
  // ... and the partitioned checker takes the same history in stride.
  EXPECT_TRUE(check_linearizable(h, PlainRegisterSpec("0")).linearizable());
}

TEST(Checker, BudgetExhaustedIsDistinctVerdict) {
  // Many mutually concurrent writes of distinct values plus a read of a
  // value never written: a genuine violation, but finding it requires
  // branching — with a tiny budget the checker must say "undecided", never
  // "linearizable" or a wrong "violation".
  std::vector<Operation> h;
  for (int i = 0; i < 10; ++i)
    h.push_back(op(i, i + 1, "write", std::to_string(i + 1), "done", 1, 100));
  h.push_back(op(10, 11, "read", "", "99", 1, 100));
  CheckOptions tight;
  tight.max_states = 4;
  const auto res = check_linearizable(h, PlainRegisterSpec("0"), tight);
  EXPECT_EQ(res.verdict, Verdict::kBudgetExhausted);
  EXPECT_FALSE(res.linearizable());
  EXPECT_FALSE(res.detail.empty());
  EXPECT_LE(res.states_explored, 5u);

  // With a real budget the same history is decided as a violation.
  const auto full = check_linearizable(h, PlainRegisterSpec("0"));
  EXPECT_EQ(full.verdict, Verdict::kViolation);
}

TEST(Checker, ZeroBudgetExhaustsImmediately) {
  std::vector<Operation> h{op(0, 1, "write", "1", "done", 1, 2)};
  CheckOptions zero;
  zero.max_states = 0;
  EXPECT_EQ(check_linearizable(h, PlainRegisterSpec("0"), zero).verdict,
            Verdict::kBudgetExhausted);
}

// ------------------------------------------------ per-register partitioning

TEST(Checker, PartitionByObjectSplitsHistories) {
  std::vector<Operation> h{
      op(0, 1, "write", "1", "done", 1, 2, "r0"),
      op(1, 2, "write", "2", "done", 3, 4, "r1"),
      op(2, 3, "read", "", "1", 5, 6, "r0"),
  };
  const auto parts = partition_by_object(h);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts.at("r0").size(), 2u);
  EXPECT_EQ(parts.at("r1").size(), 1u);
}

TEST(Checker, MultiRegisterHistoryCheckedPerPartition) {
  // Interleaved ops on two independent registers; each partition is
  // linearizable, so the whole history is.
  std::vector<Operation> h{
      op(0, 1, "write", "1", "done", 1, 4, "r0"),
      op(1, 2, "write", "2", "done", 2, 5, "r1"),
      op(2, 3, "read", "", "1", 6, 8, "r0"),
      op(3, 4, "read", "", "2", 7, 9, "r1"),
  };
  const auto res = check_linearizable(h, plain_factory());
  ASSERT_EQ(res.verdict, Verdict::kLinearizable);
  // The merged witness is a single valid global linearization.
  EXPECT_EQ(res.witness.size(), 4u);
  EXPECT_TRUE(replay_witness(h, res.witness, plain_factory()));
}

TEST(Checker, ViolationNamesTheFailingRegister) {
  std::vector<Operation> h{
      op(0, 1, "write", "1", "done", 1, 2, "r0"),
      op(1, 3, "read", "", "1", 3, 4, "r0"),
      op(2, 2, "write", "2", "done", 5, 6, "r1"),
      op(3, 4, "read", "", "7", 7, 8, "r1"),  // never written to r1
  };
  const auto res = check_linearizable(h, plain_factory());
  EXPECT_EQ(res.verdict, Verdict::kViolation);
  EXPECT_NE(res.detail.find("r1"), std::string::npos) << res.detail;
}

TEST(Checker, MergedWitnessRespectsCrossRegisterPrecedence) {
  // r0's write strictly precedes r1's read in real time; the merged global
  // witness must keep that order even though they live in different
  // partitions.
  std::vector<Operation> h{
      op(0, 1, "write", "1", "done", 1, 2, "r0"),
      op(1, 2, "write", "2", "done", 3, 4, "r1"),
      op(2, 3, "read", "", "2", 5, 6, "r1"),
      op(3, 4, "read", "", "1", 7, 8, "r0"),
  };
  const auto res = check_linearizable(h, plain_factory());
  ASSERT_TRUE(res.linearizable());
  ASSERT_EQ(res.witness.size(), 4u);
  auto pos = [&](int id) {
    for (std::size_t i = 0; i < res.witness.size(); ++i)
      if (res.witness[i] == id) return i;
    return res.witness.size();
  };
  EXPECT_LT(pos(0), pos(2));  // r0.write before r1.read
  EXPECT_LT(pos(1), pos(3));  // r1.write before r0.read
  EXPECT_TRUE(replay_witness(h, res.witness, plain_factory()));
}

TEST(Checker, HeterogeneousSpecsViaFactory) {
  // One verifiable register and one sticky register in a single history.
  std::vector<Operation> h{
      op(0, 1, "write", "5", "done", 1, 2, "vreg"),
      op(1, 1, "sign", "5", "success", 3, 4, "vreg"),
      op(2, 2, "verify", "5", "true", 5, 6, "vreg"),
      op(3, 1, "write", "7", "done", 1, 3, "sticky"),
      op(4, 3, "read", "", "7", 4, 6, "sticky"),
  };
  const SpecFactory factory = [](const std::string& object)
      -> std::unique_ptr<SequentialSpec> {
    if (object == "sticky") return std::make_unique<StickyRegisterSpec>();
    return std::make_unique<VerifiableRegisterSpec>("0");
  };
  const auto res = check_linearizable(h, factory);
  EXPECT_EQ(res.verdict, Verdict::kLinearizable);
  EXPECT_TRUE(replay_witness(h, res.witness, factory));
}

TEST(Checker, UnpartitionedModeMatchesViaMultiObjectSpec) {
  std::vector<Operation> h{
      op(0, 1, "write", "1", "done", 1, 4, "r0"),
      op(1, 2, "write", "2", "done", 2, 5, "r1"),
      op(2, 3, "read", "", "1", 6, 8, "r0"),
  };
  CheckOptions whole;
  whole.partition_by_object = false;
  const auto res =
      check_linearizable(h, MultiObjectSpec(plain_factory()), whole);
  EXPECT_EQ(res.verdict, Verdict::kLinearizable);
}

// ----------------------------------------------------- witness replay

TEST(Checker, ReplayRejectsBadWitnesses) {
  std::vector<Operation> h{
      op(0, 1, "write", "5", "done", 1, 2),
      op(1, 2, "read", "", "5", 3, 4),
  };
  // Wrong order: the read precedes the write in real time -> rejected.
  EXPECT_FALSE(replay_witness(h, {1, 0}, plain_factory()));
  // Not a permutation.
  EXPECT_FALSE(replay_witness(h, {0, 0}, plain_factory()));
  EXPECT_FALSE(replay_witness(h, {0}, plain_factory()));
  EXPECT_FALSE(replay_witness(h, {0, 1, 2}, plain_factory()));
}

// ------------------------------------- differential: pruned vs brute force

// Randomized small histories (<= 10 ops, two registers, three processes)
// checked by the partitioned+pruned checker AND by the original
// brute-force Wing–Gong search (over the product spec, unpartitioned).
// Verdicts must agree on every seed.
TEST(CheckerDifferential, AgreesWithBruteForceOnRandomHistories) {
  const std::vector<std::string> objects = {"a", "b"};
  int linearizable_count = 0;
  int violation_count = 0;
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    util::Rng rng(seed);
    std::vector<Operation> h;
    const int nops = static_cast<int>(rng.uniform(1, 10));
    const bool widened_sequential = seed % 2 == 0;
    if (widened_sequential) {
      // Widened sequential execution (the generator bench_lincheck also
      // uses): guaranteed linearizable.
      WidenedHistoryOptions opt;
      opt.registers = 2;
      opt.nops = nops;
      opt.spacing = 10;
      opt.jitter = 15;
      opt.processes = 3;
      opt.max_value = 3;
      h = gen_widened_sequential(opt, seed);
    } else {
      // Fully random results: mostly violations, some linearizable.
      for (int i = 0; i < nops; ++i) {
        const std::string obj = objects[rng.uniform(0, 1)];
        const std::uint64_t inv = rng.uniform(1, 20);
        const std::uint64_t resp = inv + rng.uniform(0, 6);
        if (rng.chance(1, 2)) {
          h.push_back(op(i, static_cast<int>(rng.uniform(1, 3)), "write",
                         std::to_string(rng.uniform(0, 2)), "done", inv, resp,
                         obj));
        } else {
          h.push_back(op(i, static_cast<int>(rng.uniform(1, 3)), "read", "",
                         std::to_string(rng.uniform(0, 2)), inv, resp, obj));
        }
      }
    }

    const auto pruned = check_linearizable(h, plain_factory());
    const auto brute =
        check_linearizable_brute(h, MultiObjectSpec(plain_factory()));
    ASSERT_NE(pruned.verdict, Verdict::kBudgetExhausted) << "seed " << seed;
    ASSERT_NE(brute.verdict, Verdict::kBudgetExhausted) << "seed " << seed;
    EXPECT_EQ(pruned.verdict, brute.verdict)
        << "seed " << seed << " (widened=" << widened_sequential << ")";
    if (pruned.linearizable()) {
      ++linearizable_count;
      EXPECT_TRUE(replay_witness(h, pruned.witness, plain_factory()))
          << "seed " << seed;
      EXPECT_TRUE(replay_witness(h, brute.witness, plain_factory()))
          << "seed " << seed;
    } else {
      ++violation_count;
    }
    if (widened_sequential)
      EXPECT_TRUE(pruned.linearizable()) << "seed " << seed;
  }
  // The generator must exercise both verdicts, or the test proves nothing.
  EXPECT_GT(linearizable_count, 100);
  EXPECT_GT(violation_count, 100);
}

// ------------------------------------------------ property checkers

TEST(Properties, RelayViolationDetected) {
  std::vector<Operation> h{
      op(0, 2, "verify", "5", "true", 1, 2),
      op(1, 3, "verify", "5", "false", 3, 4),
  };
  EXPECT_FALSE(check_relay(h).empty());
  // Concurrent verifies may disagree without violating relay.
  std::vector<Operation> ok{
      op(0, 2, "verify", "5", "true", 1, 5),
      op(1, 3, "verify", "5", "false", 2, 6),
  };
  EXPECT_TRUE(check_relay(ok).empty());
  // Same pattern on DIFFERENT registers is not a relay violation.
  std::vector<Operation> two_regs{
      op(0, 2, "verify", "5", "true", 1, 2, "r0"),
      op(1, 3, "verify", "5", "false", 3, 4, "r1"),
  };
  EXPECT_TRUE(check_relay(two_regs).empty());
}

TEST(Properties, ValidityViolationDetected) {
  std::vector<Operation> h{
      op(0, 1, "sign", "5", "success", 1, 2),
      op(1, 2, "verify", "5", "false", 3, 4),
  };
  EXPECT_FALSE(check_validity(h).empty());
}

TEST(Properties, UnforgeabilityViolationDetected) {
  std::vector<Operation> h{
      op(0, 2, "verify", "5", "true", 1, 2),
  };
  EXPECT_FALSE(check_unforgeability(h).empty());
  // ... but v0 is always verifiable in authenticated registers.
  EXPECT_TRUE(check_unforgeability(h, "write", "5").empty());
}

TEST(Properties, UniquenessViolationDetected) {
  std::vector<Operation> two_values{
      op(0, 2, "read", "", "5", 1, 2),
      op(1, 3, "read", "", "6", 3, 4),
  };
  EXPECT_FALSE(check_uniqueness(two_values).empty());
  std::vector<Operation> value_then_bottom{
      op(0, 2, "read", "", "5", 1, 2),
      op(1, 3, "read", "", "⊥", 3, 4),
  };
  EXPECT_FALSE(check_uniqueness(value_then_bottom).empty());
  std::vector<Operation> ok{
      op(0, 2, "read", "", "⊥", 1, 2),
      op(1, 3, "read", "", "5", 3, 4),
  };
  EXPECT_TRUE(check_uniqueness(ok).empty());
  // Two sticky registers may hold different values.
  std::vector<Operation> two_regs{
      op(0, 2, "read", "", "5", 1, 2, "s0"),
      op(1, 3, "read", "", "6", 3, 4, "s1"),
  };
  EXPECT_TRUE(check_uniqueness(two_regs).empty());
}

// ----------------------------- real histories from the implementations

using VReg = core::VerifiableRegister<int>;
using AReg = core::AuthenticatedRegister<int>;
using SReg = core::StickyRegister<int>;

std::string render_bool(bool b) { return b ? "true" : "false"; }

// Concurrent workload against the real verifiable register; full Wing-Gong
// check of the recorded history (all processes correct).
TEST(RealHistories, VerifiableRegisterLinearizable) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    core::FreeSystem<VReg> sys([] {
      VReg::Config c;
      c.n = 4;
      c.f = 1;
      c.v0 = 0;
      return c;
    }());
    HistoryRecorder rec;
    runtime::Harness h;
    h.spawn(1, "op", [&](std::stop_token) {
      util::Rng rng(seed);
      for (int i = 0; i < 4; ++i) {
        const int v = static_cast<int>(rng.uniform(1, 3));
        rec.record("vreg", "write", std::to_string(v),
                   [&] { sys.alg().write(v); return true; },
                   [](bool) { return std::string("done"); });
        if (rng.chance(1, 2)) {
          rec.record("vreg", "sign", std::to_string(v),
                     [&] { return sys.alg().sign(v); },
                     [](core::SignResult r) {
                       return std::string(r == core::SignResult::kSuccess
                                              ? "success"
                                              : "fail");
                     });
        }
      }
    });
    for (int k = 2; k <= 4; ++k) {
      h.spawn(k, "op", [&, k](std::stop_token) {
        util::Rng rng(seed * 100 + static_cast<std::uint64_t>(k));
        for (int i = 0; i < 4; ++i) {
          if (rng.chance(1, 2)) {
            rec.record("vreg", "read", "", [&] { return sys.alg().read(); },
                       [](int v) { return std::to_string(v); });
          } else {
            const int v = static_cast<int>(rng.uniform(1, 3));
            rec.record("vreg", "verify", std::to_string(v),
                       [&] { return sys.alg().verify(v); }, render_bool);
          }
        }
      });
    }
    h.start();
    h.join();
    const auto ops = rec.operations();
    const auto result = check_linearizable(ops, VerifiableRegisterSpec("0"));
    EXPECT_TRUE(result.linearizable()) << "seed " << seed;
  }
}

TEST(RealHistories, AuthenticatedRegisterLinearizable) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    core::FreeSystem<AReg> sys([] {
      AReg::Config c;
      c.n = 4;
      c.f = 1;
      c.v0 = 0;
      return c;
    }());
    HistoryRecorder rec;
    runtime::Harness h;
    h.spawn(1, "op", [&](std::stop_token) {
      util::Rng rng(seed);
      for (int i = 0; i < 5; ++i) {
        const int v = static_cast<int>(rng.uniform(1, 3));
        rec.record("areg", "write", std::to_string(v),
                   [&] { sys.alg().write(v); return true; },
                   [](bool) { return std::string("done"); });
      }
    });
    for (int k = 2; k <= 4; ++k) {
      h.spawn(k, "op", [&, k](std::stop_token) {
        util::Rng rng(seed * 100 + static_cast<std::uint64_t>(k));
        for (int i = 0; i < 4; ++i) {
          if (rng.chance(1, 2)) {
            rec.record("areg", "read", "", [&] { return sys.alg().read(); },
                       [](int v) { return std::to_string(v); });
          } else {
            const int v = static_cast<int>(rng.uniform(0, 3));
            rec.record("areg", "verify", std::to_string(v),
                       [&] { return sys.alg().verify(v); }, render_bool);
          }
        }
      });
    }
    h.start();
    h.join();
    const auto result =
        check_linearizable(rec.operations(), AuthenticatedRegisterSpec("0"));
    EXPECT_TRUE(result.linearizable()) << "seed " << seed;
  }
}

TEST(RealHistories, StickyRegisterLinearizable) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    core::FreeSystem<SReg> sys([] {
      SReg::Config c;
      c.n = 4;
      c.f = 1;
      return c;
    }());
    HistoryRecorder rec;
    runtime::Harness h;
    h.spawn(1, "op", [&](std::stop_token) {
      rec.record("sreg", "write", "7",
                 [&] { sys.alg().write(7); return true; },
                 [](bool) { return std::string("done"); });
    });
    for (int k = 2; k <= 4; ++k) {
      h.spawn(k, "op", [&](std::stop_token) {
        for (int i = 0; i < 4; ++i) {
          rec.record("sreg", "read", "", [&] { return sys.alg().read(); },
                     [](const std::optional<int>& v) {
                       return v ? std::to_string(*v) : std::string("⊥");
                     });
        }
      });
    }
    h.start();
    h.join();
    const auto ops = rec.operations();
    EXPECT_TRUE(check_linearizable(ops, StickyRegisterSpec()).linearizable())
        << "seed " << seed;
    EXPECT_TRUE(check_uniqueness(ops).empty()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace swsig::lincheck
