// Flight recorder, metrics registry, and wedge forensics.
//
// Covers the observability substrate end to end: event word packing, ring
// wraparound and torn-slot discipline under concurrent writers (run under
// ASan/UBSan in CI), histogram bucket math against util::Samples' exact
// percentiles, registry counters/gauges, and — the payoff — a forced
// protocol wedge whose trace dump names the stalled ladder and the last
// rung it reached.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "msgpass/emulated_swmr.hpp"
#include "msgpass/faults.hpp"
#include "msgpass/message.hpp"
#include "obs/event.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "registers/metrics.hpp"
#include "runtime/process.hpp"
#include "util/stats.hpp"

namespace swsig {
namespace {

using obs::Event;
using obs::EventKind;
using obs::FlightRecorder;
using obs::LogHistogram;
using obs::MsgTag;

TEST(ObsEvent, PackUnpackRoundTrip) {
  Event e;
  e.ts_ns = 0x123456789abcdefull;
  e.kind = EventKind::kPhaseDeliver;
  e.tag = MsgTag::kBAccept;
  e.pid = 7;
  e.peer = -3;
  e.reg = -2;  // witness sentinel: negative regs must survive packing
  e.origin = 1000000;
  e.sn = ~0ull - 5;
  e.aux = 0xdeadbeefull;
  std::uint64_t w[5];
  obs::pack(e, w);
  const Event back = obs::unpack(w);
  EXPECT_EQ(back.ts_ns, e.ts_ns);
  EXPECT_EQ(back.kind, e.kind);
  EXPECT_EQ(back.tag, e.tag);
  EXPECT_EQ(back.pid, e.pid);
  EXPECT_EQ(back.peer, e.peer);
  EXPECT_EQ(back.reg, e.reg);
  EXPECT_EQ(back.origin, e.origin);
  EXPECT_EQ(back.sn, e.sn);
  EXPECT_EQ(back.aux, e.aux);
}

TEST(ObsEvent, TagInterningCoversProtocolVocabulary) {
  for (std::size_t t = 1; t < static_cast<std::size_t>(MsgTag::kCount); ++t) {
    const MsgTag tag = static_cast<MsgTag>(t);
    if (tag == MsgTag::kWbEcho) continue;  // shares "ECHO" with the ladder
    EXPECT_EQ(obs::tag_of(obs::tag_name(tag)), tag)
        << "tag " << obs::tag_name(tag);
  }
  EXPECT_EQ(obs::tag_of("GARBAGE"), MsgTag::kOther);
  EXPECT_EQ(obs::tag_of(""), MsgTag::kOther);
}

// The ring and wedge tests drive obs::record(), which a SWSIG_OBS=OFF
// build compiles to nothing — gate them on the kill switch (the event
// packing, histogram, and registry tests are not gated, those layers
// stay compiled either way).
#if defined(SWSIG_OBS_ENABLED)

// Wraparound: record 3x capacity; the snapshot must contain exactly the
// last `capacity - 1` events (the oldest slot of a full ring is one
// wraparound behind the writer and never attempted), contiguous and
// bit-exact.
TEST(ObsRecorder, WraparoundKeepsContiguousTail) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.clear();
  constexpr std::uint64_t kTotal = 3 * FlightRecorder::kRingCapacity;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    Event e;
    e.ts_ns = i + 1;  // nonzero so record() doesn't re-stamp
    e.kind = EventKind::kMsgSend;
    e.sn = i;
    e.aux = i ^ 0x5a5a5a5aull;
    obs::record(e);
  }
  const std::vector<Event> events = rec.snapshot();
  ASSERT_EQ(events.size(), FlightRecorder::kRingCapacity - 1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::uint64_t expect_sn = kTotal - events.size() + i;
    EXPECT_EQ(events[i].sn, expect_sn);
    EXPECT_EQ(events[i].aux, expect_sn ^ 0x5a5a5a5aull);
    EXPECT_EQ(events[i].kind, EventKind::kMsgSend);
  }
  EXPECT_GE(rec.events_recorded(), kTotal);
  rec.clear();
}

// Concurrent writers wrapping their rings while a reader snapshots
// continuously: every decoded event must be internally consistent (the
// torn-slot check discards mixed slots, it must never emit one). Run under
// sanitizers in CI; the slot words are relaxed atomics, so this is
// race-free by construction — the assertion is about torn DATA.
TEST(ObsRecorder, ConcurrentWritersNeverYieldTornEvents) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.clear();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 3 * FlightRecorder::kRingCapacity;
  std::atomic<bool> go{false};
  std::atomic<int> done{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t, &go, &done] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        Event e;
        e.ts_ns = 1;  // fixed: contiguity is checked via sn, not time
        e.kind = EventKind::kMsgRecv;
        e.pid = static_cast<std::int16_t>(t + 1);
        e.sn = (static_cast<std::uint64_t>(t) << 32) | i;
        e.aux = e.sn ^ 0xabcdef0123ull;
        obs::record(e);
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  go.store(true, std::memory_order_release);
  // Reader: snapshot while writers are mid-wraparound. Every event that
  // survives the torn-slot filter must satisfy the aux invariant. Keep
  // snapshotting until something was observed — the writers can outrace
  // the first scan, but once they finish the rings stay full, so a later
  // pass always sees events and the loop terminates.
  std::size_t reader_saw = 0;
  do {
    for (const Event& e : rec.snapshot()) {
      if (e.kind != EventKind::kMsgRecv) continue;
      EXPECT_EQ(e.aux, e.sn ^ 0xabcdef0123ull);
      ++reader_saw;
    }
  } while (done.load(std::memory_order_acquire) < kThreads ||
           reader_saw == 0);
  for (auto& w : writers) w.join();
  EXPECT_GT(reader_saw, 0u);
  // Quiescent final snapshot: each writer's tail is the full reachable
  // window (ring capacity - 1), contiguous per thread.
  std::map<int, std::set<std::uint64_t>> per_thread;
  for (const Event& e : rec.snapshot()) {
    if (e.kind != EventKind::kMsgRecv) continue;
    EXPECT_EQ(e.aux, e.sn ^ 0xabcdef0123ull);
    per_thread[e.pid].insert(e.sn & 0xffffffffull);
  }
  ASSERT_EQ(per_thread.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [pid, sns] : per_thread) {
    EXPECT_EQ(sns.size(), FlightRecorder::kRingCapacity - 1) << "pid " << pid;
    EXPECT_EQ(*sns.rbegin(), kPerThread - 1) << "pid " << pid;
    EXPECT_EQ(*sns.rbegin() - *sns.begin() + 1, sns.size())
        << "pid " << pid << ": tail not contiguous";
  }
  rec.clear();
}

TEST(ObsRecorder, RuntimeToggleStopsRecording) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.clear();
  rec.set_enabled(false);
  Event e;
  e.ts_ns = 1;
  e.kind = EventKind::kCrash;
  obs::record(e);
  EXPECT_TRUE(rec.snapshot().empty());
  rec.set_enabled(true);
  obs::record(e);
  EXPECT_EQ(rec.snapshot().size(), 1u);
  rec.clear();
}

#endif  // SWSIG_OBS_ENABLED (recorder tests)

// Bucket bounds: every in-range value lands in a bucket whose [lo, hi)
// contains it. The representable range is [2^(kMinExp-1), 2^(kMaxExp-1))
// microseconds (frexp mantissas live in [0.5, 1)).
TEST(ObsHistogram, BucketBoundsContainValue) {
  for (double v : {1e-3, 0.5, 1.0, 1.5, 2.0, 3.7, 100.0, 12345.6, 4e8}) {
    const int b = LogHistogram::bucket_of(v);
    EXPECT_LE(LogHistogram::bucket_lo(b), v) << v;
    EXPECT_GT(LogHistogram::bucket_hi(b), v) << v;
  }
  // Clamps, not UB, at the extremes.
  EXPECT_EQ(LogHistogram::bucket_of(-1.0), 0);
  EXPECT_EQ(LogHistogram::bucket_of(0.0), 0);
  EXPECT_EQ(LogHistogram::bucket_of(9e8), LogHistogram::kBuckets - 1);
  EXPECT_EQ(LogHistogram::bucket_of(1e300), LogHistogram::kBuckets - 1);
}

// Percentile reconstruction against util::Samples' exact percentiles: the
// geometric-midpoint estimate must stay within one bucket's relative width
// (2^(1/8) ~ 9%) of the exact value, across a latency-like log-spread
// sample.
TEST(ObsHistogram, PercentilesTrackExactSamples) {
  LogHistogram hist;
  util::Samples exact;
  // Deterministic log-uniform spread over [1us, 10ms] — the shape of real
  // quorum latencies (long right tail).
  std::uint64_t state = 42;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double u =
        static_cast<double>(state >> 11) / static_cast<double>(1ull << 53);
    const double v = std::exp(std::log(1.0) + u * std::log(10000.0));
    hist.add(v);
    exact.add(v);
  }
  EXPECT_EQ(hist.count(), 20000u);
  for (double p : {50.0, 99.0, 99.9}) {
    const double got = hist.quantile(p);
    const double want = exact.percentile(p);
    EXPECT_NEAR(got / want, 1.0, 0.10)
        << "p" << p << ": hist " << got << " vs exact " << want;
  }
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.quantile(50.0), 0.0);
}

TEST(ObsRegistry, CountersHistogramsAndGauges) {
  obs::MetricsRegistry reg;
  util::ShardedCounter& c1 = reg.counter("test.a");
  util::ShardedCounter& c1_again = reg.counter("test.a");
  EXPECT_EQ(&c1, &c1_again);  // stable reference
  c1.add();
  c1.add();
  reg.counter("other.b").add();
  std::uint64_t gauge_src = 40;
  {
    const auto handle =
        reg.gauge("test.g", [&gauge_src] { return gauge_src + 2; });
    const auto counters = reg.counters("test.");
    ASSERT_EQ(counters.size(), 2u);
    std::map<std::string, std::uint64_t> by_name;
    for (const auto& c : counters) by_name[c.name] = c.value;
    EXPECT_EQ(by_name.at("test.a"), 2u);
    EXPECT_EQ(by_name.at("test.g"), 42u);
  }
  // Handle destruction deregisters the gauge.
  EXPECT_EQ(reg.counters("test.").size(), 1u);

  reg.histogram("test.h").add(5.0);
  reg.histogram("keep.h").add(7.0);
  const auto hists = reg.histograms("test.");
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].count, 1u);
  reg.reset_histograms("test.");
  EXPECT_EQ(reg.histograms("test.")[0].count, 0u);
  EXPECT_EQ(reg.histograms("keep.")[0].count, 1u);  // prefix respected
}

TEST(ObsRegistry, RegisterMetricsPublishAsGauges) {
  obs::MetricsRegistry reg;
  registers::Metrics m;
  m.on_read();
  m.on_read();
  m.on_write();
  {
    const auto published = m.publish(reg, "regs.test");
    std::map<std::string, std::uint64_t> by_name;
    for (const auto& c : reg.counters("regs.test.")) by_name[c.name] = c.value;
    EXPECT_EQ(by_name.at("regs.test.reads"), 2u);
    EXPECT_EQ(by_name.at("regs.test.writes"), 1u);
  }
  EXPECT_TRUE(reg.counters("regs.test.").empty());
}

#if defined(SWSIG_OBS_ENABLED)

// The payoff test: wedge a write ladder on purpose — drop every ECHO and
// ACCEPT for one register — and assert the wedge report names the stalled
// (origin, sn) and the last rung any process completed ("echo": servers
// echoed the WRITE, but no echo quorum could assemble).
class LadderWedger : public msgpass::FaultInjector {
 public:
  msgpass::FaultDecision on_deliver(const msgpass::Message& m) override {
    if (m.type == "ECHO" || m.type == "ACCEPT") return {.drop = true};
    return {};
  }
  bool reorder(runtime::ProcessId) override { return false; }
};

TEST(ObsWedge, ForcedWedgeDumpNamesStalledLadderAndPhase) {
  FlightRecorder::instance().clear();
  constexpr int kN = 4;
  msgpass::EmulatedSpace space(
      msgpass::EmulatedSpace::Options{kN, 1, 0, true});
  auto& reg = space.make_swmr<std::string>(1, "0", "wedge-reg");
  (void)reg;
  LadderWedger wedger;
  space.network().set_fault_injector(&wedger);

  // Owner side, done manually: a real write() would block forever on its
  // ACK quorum. Broadcasting the WRITE under the owner's identity runs the
  // genuine server path — every server echoes, no echo ever arrives.
  {
    runtime::ThisProcess::Binder bind(1);
    Event start;
    start.kind = EventKind::kWriteStart;
    start.pid = 1;
    start.reg = 0;
    start.origin = 1;
    start.sn = 1;
    obs::record(start);
    msgpass::Message m;
    m.reg = 0;
    m.type = "WRITE";
    m.sn = 1;
    m.payload = std::string("doomed");
    space.network().broadcast(m);
  }

  // Wait until every server has echoed (the echo events are recorded
  // before the ECHO broadcast, so this also bounds the test).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::vector<Event> events;
  std::size_t echoes = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    events = FlightRecorder::instance().snapshot();
    echoes = 0;
    for (const Event& e : events)
      if (e.kind == EventKind::kPhaseEcho && e.reg == 0 && e.sn == 1)
        ++echoes;
    if (echoes >= kN) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(echoes, static_cast<std::size_t>(kN));

  const auto ladders = obs::correlate_ladders(events);
  const obs::LadderSummary* stalled = nullptr;
  for (const auto& l : ladders)
    if (l.reg == 0 && l.origin == 1 && l.sn == 1) stalled = &l;
  ASSERT_NE(stalled, nullptr);
  EXPECT_TRUE(stalled->stalled());
  EXPECT_EQ(std::string(stalled->last_phase()), "echo");
  EXPECT_EQ(stalled->echoed.size(), static_cast<std::size_t>(kN));

  std::ostringstream report;
  obs::wedge_report(report, events);
  const std::string text = report.str();
  EXPECT_NE(text.find("STALLED"), std::string::npos) << text;
  EXPECT_NE(text.find("reg=0 origin=p1 sn=1"), std::string::npos) << text;
  EXPECT_NE(text.find("last phase echo"), std::string::npos) << text;

  space.network().set_fault_injector(nullptr);
  space.stop();
  FlightRecorder::instance().clear();
}

#endif  // SWSIG_OBS_ENABLED (wedge test)

}  // namespace
}  // namespace swsig
