// Batched + sharded message-passing substrate: register semantics match
// the unbatched EmulatedSpace (trace equivalence under a deterministic
// reorder seed), async writes amortize rounds, shards isolate registers,
// and Algorithms 1–3 run unchanged on top (the SpaceT seam).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/sticky_register.hpp"
#include "core/verifiable_register.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "lincheck/register_specs.hpp"
#include "msgpass/batched_space.hpp"
#include "msgpass/emulated_swmr.hpp"
#include "runtime/process.hpp"

namespace swsig::msgpass {
namespace {

using runtime::ThisProcess;

class BatchedTest : public ::testing::Test {
 protected:
  BatchedEmulatedSpace space{
      {.n = 4, .f = 1, .reorder_seed = 0, .shards = 2, .batch_max = 4}};
};

TEST_F(BatchedTest, InitialValueReadable) {
  auto& reg = space.make_swmr<int>(1, 42, "r");
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 42);
}

TEST_F(BatchedTest, WriteThenReadFromAllProcesses) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  {
    ThisProcess::Binder bind(1);
    reg.write(7);
  }
  for (int pid = 2; pid <= 4; ++pid) {
    ThisProcess::Binder bind(pid);
    EXPECT_EQ(reg.read(), 7) << "p" << pid;
  }
}

TEST_F(BatchedTest, SequenceOfWritesReadsLatest) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  {
    ThisProcess::Binder bind(1);
    for (int v = 1; v <= 5; ++v) reg.write(v);
  }
  ThisProcess::Binder bind(3);
  EXPECT_EQ(reg.read(), 5);
}

TEST_F(BatchedTest, NonOwnerWriteRejected) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  ThisProcess::Binder bind(2);
  EXPECT_THROW(reg.write(5), registers::PortViolation);
  EXPECT_THROW(reg.write_async(5), registers::PortViolation);
}

// writers_/state_ are indexed by owner pid: an out-of-range owner must be
// a clean configuration error, not out-of-bounds UB at the first submit.
TEST_F(BatchedTest, OutOfRangeOwnerRejectedAtCreation) {
  EXPECT_THROW(space.make_swmr<int>(5, 0, "bad"), std::invalid_argument);
  EXPECT_THROW(space.make_swmr<int>(0, 0, "bad"), std::invalid_argument);
  EXPECT_THROW(space.make_swsr<int>(-1, 2, 0, "bad"), std::invalid_argument);
}

TEST_F(BatchedTest, UpdateIsOwnerRmw) {
  auto& reg = space.make_swmr<std::set<int>>(1, {}, "r");
  {
    ThisProcess::Binder bind(1);
    reg.update([](std::set<int>& s) { s.insert(3); });
    reg.update([](std::set<int>& s) { s.insert(5); });
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), (std::set<int>{3, 5}));
}

TEST_F(BatchedTest, SwsrReaderEnforced) {
  auto& reg = space.make_swsr<int>(1, 3, 9, "r13");
  {
    ThisProcess::Binder bind(3);
    EXPECT_EQ(reg.read(), 9);
  }
  ThisProcess::Binder bind(2);
  EXPECT_THROW(reg.read(), registers::PortViolation);
}

// Async writes ride shared rounds: after awaiting the last ticket every
// earlier write is complete too (tickets complete in order), and readers
// see the final value.
TEST_F(BatchedTest, AsyncWritesCompleteInOrder) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  std::uint64_t last = 0;
  {
    ThisProcess::Binder bind(1);
    for (int v = 1; v <= 16; ++v) last = reg.write_async(v);
    reg.await(last);
    EXPECT_EQ(reg.read(), 16);  // owner view
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 16);
}

// The owner-RMW lost-update regression on the batched substrate: two
// owner-bound threads (the model's op + Help() threads) hammer update();
// the writer-side mutex must make every insert survive.
TEST_F(BatchedTest, OwnerRmwFromTwoThreadsLosesNoUpdates) {
  auto& reg = space.make_swmr<std::set<int>>(1, {}, "r");
  constexpr int kPerThread = 40;
  std::thread a([&] {
    ThisProcess::Binder bind(1);
    for (int i = 0; i < kPerThread; ++i)
      reg.update([&](std::set<int>& s) { s.insert(i); });
  });
  std::thread b([&] {
    ThisProcess::Binder bind(1);
    for (int i = 0; i < kPerThread; ++i)
      reg.update([&](std::set<int>& s) { s.insert(1000 + i); });
  });
  a.join();
  b.join();
  {
    ThisProcess::Binder bind(1);
    EXPECT_EQ(reg.read().size(), 2u * kPerThread);
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read().size(), 2u * kPerThread);
}

// Registers round-robin across shards: with two shards, consecutive
// registers land on different networks and their traffic does not mix.
TEST_F(BatchedTest, RegistersShardAcrossNetworks) {
  ASSERT_EQ(space.shard_count(), 2);
  auto& r0 = space.make_swmr<int>(1, 0, "r0");  // reg id 0 -> shard 0
  auto& r1 = space.make_swmr<int>(2, 0, "r1");  // reg id 1 -> shard 1
  const std::uint64_t s0_before = space.shard(0).network().messages_sent();
  const std::uint64_t s1_before = space.shard(1).network().messages_sent();
  {
    ThisProcess::Binder bind(1);
    r0.write(5);
  }
  EXPECT_GT(space.shard(0).network().messages_sent(), s0_before);
  EXPECT_EQ(space.shard(1).network().messages_sent(), s1_before);
  {
    ThisProcess::Binder bind(2);
    r1.write(6);
  }
  EXPECT_GT(space.shard(1).network().messages_sent(), s1_before);
  {
    ThisProcess::Binder bind(3);
    EXPECT_EQ(r0.read(), 5);
    EXPECT_EQ(r1.read(), 6);
  }
}

// Concurrent owners on different shards make progress independently.
TEST_F(BatchedTest, ConcurrentOwnersOnDistinctShards) {
  auto& r0 = space.make_swmr<int>(1, 0, "r0");
  auto& r1 = space.make_swmr<int>(2, 0, "r1");
  std::thread w1([&] {
    ThisProcess::Binder bind(1);
    for (int v = 1; v <= 20; ++v) r0.write(v);
  });
  std::thread w2([&] {
    ThisProcess::Binder bind(2);
    for (int v = 1; v <= 20; ++v) r1.write(v);
  });
  w1.join();
  w2.join();
  ThisProcess::Binder bind(3);
  EXPECT_EQ(r0.read(), 20);
  EXPECT_EQ(r1.read(), 20);
}

TEST_F(BatchedTest, NoTornOrInventedValues) {
  auto& reg = space.make_swmr<std::pair<int, int>>(1, {0, 0}, "pair");
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::thread writer([&] {
    ThisProcess::Binder bind(1);
    for (int i = 1; i <= 30; ++i) reg.write({i, -i});
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int pid = 2; pid <= 4; ++pid) {
    readers.emplace_back([&, pid] {
      ThisProcess::Binder bind(pid);
      while (!stop.load()) {
        const auto [a, b] = reg.read();
        if (b != -a) bad = true;  // torn/invented pair
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(bad.load());
}

// ---------------------------------------- batched vs unbatched equivalence

// Same deterministic reorder seed, same client schedule: the batched space
// (any shard/batch configuration) produces exactly the read trace of the
// unbatched EmulatedSpace. Batching groups an owner's writes but never
// reorders them, so the substrates are observationally equivalent. The
// schedule has two phases: per-write rounds with a read after each, then
// an async burst into TWO registers of the same owner — on the batched
// spaces those ops ride shared multi-op rounds (the achieved batch exceeds
// 1, so the round apply loop that walks a digest's op vector is on the
// hook: dropping or mis-routing any op would corrupt a register's final
// value).
TEST(BatchedEquivalence, TraceMatchesUnbatchedUnderReorderSeed) {
  constexpr std::uint64_t kSeed = 1234;
  constexpr int kWrites = 12;
  constexpr int kBurst = 8;
  // `burst(r0, r1)` issues writes 101..100+kBurst to r0 and 201..200+kBurst
  // to r1, interleaved, and returns once all are durable.
  const auto drive = [&](auto& space, const auto& burst) {
    auto& r0 = space.template make_swmr<int>(1, 0, "r0");
    auto& r1 = space.template make_swmr<int>(1, 0, "r1");
    std::vector<int> trace;
    for (int v = 1; v <= kWrites; ++v) {
      {
        ThisProcess::Binder bind(1);
        r0.write(v);
      }
      ThisProcess::Binder bind(2);
      trace.push_back(r0.read());
    }
    {
      ThisProcess::Binder bind(1);
      burst(r0, r1);
    }
    ThisProcess::Binder bind(3);
    trace.push_back(r0.read());
    trace.push_back(r1.read());
    return trace;
  };
  std::vector<int> expected;
  {
    EmulatedSpace space({.n = 4, .f = 1, .reorder_seed = kSeed});
    expected = drive(space, [&](auto& r0, auto& r1) {
      for (int i = 1; i <= kBurst; ++i) {
        r0.write(100 + i);
        r1.write(200 + i);
      }
    });
  }
  for (const auto& [shards, batch] :
       std::vector<std::pair<int, int>>{{1, 1}, {1, 8}, {2, 4}}) {
    BatchedEmulatedSpace space({.n = 4,
                                .f = 1,
                                .reorder_seed = kSeed,
                                .shards = shards,
                                .batch_max = batch});
    const auto trace = drive(space, [&](auto& r0, auto& r1) {
      std::uint64_t t0 = 0, t1 = 0;
      for (int i = 1; i <= kBurst; ++i) {
        t0 = r0.write_async(100 + i);
        t1 = r1.write_async(200 + i);
      }
      r0.await(t0);
      r1.await(t1);
    });
    EXPECT_EQ(trace, expected) << "shards=" << shards
                               << " batch_max=" << batch;
  }
}

// ----------------------------------- pipelined bursts under lincheck

// Overlapping async write bursts (depth-4 windows through the group-commit
// gate) racing coalesced read bursts from three reader processes: the
// recorded history must be linearizable. Writes are recorded as pending
// from write_async (invoke) until their await returns (respond), so the
// checker sees the real overlap windows — a read concurrent with an
// unsettled write may return either value, but reads after the await must
// never regress.
TEST(BatchedLincheck, OverlappingAsyncWriteAndReadBurstsLinearize) {
  BatchedEmulatedSpace space(
      {.n = 4, .f = 1, .shards = 1, .batch_max = 8, .pipeline_depth = 4});
  auto& reg = space.make_swmr<int>(1, 0, "r");
  lincheck::HistoryRecorder rec;

  std::thread writer([&] {
    ThisProcess::Binder bind(1);
    int v = 0;
    for (int burst = 0; burst < 6; ++burst) {
      struct InFlight {
        int token;
        std::uint64_t ticket;
      };
      std::vector<InFlight> window;
      for (int i = 0; i < 4; ++i) {
        ++v;
        const int token = rec.invoke("r", "write", std::to_string(v));
        window.push_back({token, reg.write_async(v)});
      }
      for (const InFlight& op : window) {
        reg.await(op.ticket);
        rec.respond(op.token, "done");
      }
    }
  });
  std::vector<std::thread> readers;
  for (int pid = 2; pid <= 4; ++pid) {
    readers.emplace_back([&, pid] {
      ThisProcess::Binder bind(pid);
      for (int i = 0; i < 16; ++i) {
        rec.record("r", "read", "", [&] { return reg.read(); },
                   [](int x) { return std::to_string(x); });
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  const auto ops = rec.operations();
  ASSERT_EQ(ops.size(), 24u + 3u * 16u);
  const lincheck::SpecFactory factory = [](const std::string&) {
    return std::make_unique<lincheck::PlainRegisterSpec>("0");
  };
  const auto result = lincheck::check_linearizable(ops, factory);
  EXPECT_EQ(result.verdict, lincheck::Verdict::kLinearizable)
      << result.detail << " (states=" << result.states_explored << ")";
}

// ------------------------------- Algorithms 1–3 on the batched substrate

// The closing corollary on the batched substrate: Algorithm 1 (verifiable
// register) runs unchanged — the SpaceT seam is satisfied by
// BatchedEmulatedSpace.
TEST(BatchedFullStack, VerifiableRegisterRunsUnchanged) {
  BatchedEmulatedSpace space({.n = 4, .f = 1, .shards = 2, .batch_max = 4});
  using Reg = core::VerifiableRegister<int, BatchedEmulatedSpace>;
  Reg::Config cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.v0 = 0;
  Reg reg(space, cfg);

  std::atomic<bool> stop{false};
  std::vector<std::jthread> helpers;
  for (int pid = 1; pid <= 4; ++pid) {
    helpers.emplace_back([&, pid](std::stop_token st) {
      ThisProcess::Binder bind(pid);
      while (!st.stop_requested() && !stop.load()) {
        if (!reg.help_round()) std::this_thread::yield();
      }
    });
  }

  {
    ThisProcess::Binder bind(1);
    reg.write(5);
    ASSERT_EQ(reg.sign(5), core::SignResult::kSuccess);
  }
  {
    ThisProcess::Binder bind(2);
    EXPECT_EQ(reg.read(), 5);
    EXPECT_TRUE(reg.verify(5));
    EXPECT_FALSE(reg.verify(9));
  }
  {
    ThisProcess::Binder bind(3);
    EXPECT_TRUE(reg.verify(5));
  }
  stop = true;
  for (auto& t : helpers) t.request_stop();
}

// Algorithm 2 (sticky register): non-equivocation end to end, batched.
TEST(BatchedFullStack, StickyRegisterRunsUnchanged) {
  BatchedEmulatedSpace space({.n = 4, .f = 1, .shards = 2, .batch_max = 4});
  using Reg = core::StickyRegister<int, BatchedEmulatedSpace>;
  Reg::Config cfg;
  cfg.n = 4;
  cfg.f = 1;
  Reg reg(space, cfg);

  std::atomic<bool> stop{false};
  std::vector<std::jthread> helpers;
  for (int pid = 1; pid <= 4; ++pid) {
    helpers.emplace_back([&, pid](std::stop_token st) {
      ThisProcess::Binder bind(pid);
      while (!st.stop_requested() && !stop.load()) {
        if (!reg.help_round()) std::this_thread::yield();
      }
    });
  }

  {
    ThisProcess::Binder bind(1);
    reg.write(11);
  }
  for (int pid = 2; pid <= 4; ++pid) {
    ThisProcess::Binder bind(pid);
    EXPECT_EQ(reg.read(), std::optional<int>(11)) << "p" << pid;
  }
  stop = true;
  for (auto& t : helpers) t.request_stop();
}

}  // namespace
}  // namespace swsig::msgpass
