// The extracted Bracha ladder (msgpass/detail/bracha_ladder.hpp) is the
// ONE copy of the echo/accept/amplify/deliver state machine behind both
// message-passing substrates (design note 15). The unit tests pin each
// guard once — echo-once, the PR-4 delivered-set replay guard, the PR-8
// abort fence, crash persistence, the cross-run op claims — and the
// substrate tests then inject the two classic Byzantine replays into real
// networks and watch BOTH substrates stay inert: a post-delivery ACCEPT
// storm (emulated and batched) and a cross-round register-sn reuse
// (batched). Message-count deltas are exact: with no faults attached every
// injected broadcast fans out to n processes and, if the guards hold,
// provokes nothing beyond at most a per-server re-ACK.
#include <gtest/gtest.h>

#include <any>
#include <cstdint>
#include <string>
#include <utility>

#include "msgpass/batched_space.hpp"
#include "msgpass/detail/bracha_ladder.hpp"
#include "msgpass/emulated_swmr.hpp"
#include "runtime/process.hpp"

namespace swsig::msgpass {
namespace {

using runtime::ThisProcess;
using Ladder = detail::BrachaLadder<std::uint64_t>;

// n = 4, f = 1 throughout: echo quorum n−f = 3, amplification rung f+1 = 2.

// ------------------------------------------------------------ unit tests

TEST(BrachaLadder, EchoOncePerKeyReissuesOriginalVote) {
  Ladder lad(4, 1);
  int interns = 0;
  auto step = lad.on_write(7, /*complete=*/false, [&] {
    ++interns;
    return 3;
  });
  EXPECT_EQ(step.action, Ladder::WriteAction::kEcho);
  EXPECT_EQ(step.value_id, 3);
  EXPECT_TRUE(step.first);

  // A duplicate WRITE — even an equivocated one carrying a different value
  // — re-issues the ORIGINAL vote; the intern hook never runs again, so a
  // second value cannot recruit this process's echo support.
  step = lad.on_write(7, false, [&] {
    ++interns;
    return 9;  // the equivocated value, were it ever judged
  });
  EXPECT_EQ(step.action, Ladder::WriteAction::kEcho);
  EXPECT_EQ(step.value_id, 3);
  EXPECT_FALSE(step.first);
  EXPECT_EQ(interns, 1);
}

TEST(BrachaLadder, RefusalOfMalformedWritePersists) {
  Ladder lad(4, 1);
  auto step = lad.on_write(7, false, [] { return -1; });  // judged malformed
  EXPECT_EQ(step.action, Ladder::WriteAction::kRefused);
  // A retried copy is not re-judged into support.
  step = lad.on_write(7, false, [] {
    ADD_FAILURE() << "refused write was re-interned";
    return 3;
  });
  EXPECT_EQ(step.action, Ladder::WriteAction::kRefused);
}

TEST(BrachaLadder, QuorumRungsFireOnceEach) {
  Ladder lad(4, 1);
  // Echo quorum: the third distinct echo fires the (non-amplified) ACCEPT.
  EXPECT_FALSE(lad.on_vote(7, 3, 1, /*is_echo=*/true).send_accept);
  EXPECT_FALSE(lad.on_vote(7, 3, 2, true).send_accept);
  auto step = lad.on_vote(7, 3, 3, true);
  EXPECT_TRUE(step.send_accept);
  EXPECT_FALSE(step.amplified);
  EXPECT_FALSE(step.deliver);
  // A duplicate voter neither double-counts nor re-fires the rung.
  EXPECT_FALSE(lad.on_vote(7, 3, 3, true).send_accept);

  // Accept quorum: n−f accepts deliver (the ACCEPT was already sent).
  EXPECT_FALSE(lad.on_vote(7, 3, 1, false).deliver);
  EXPECT_FALSE(lad.on_vote(7, 3, 2, false).deliver);
  step = lad.on_vote(7, 3, 3, false);
  EXPECT_TRUE(step.deliver);
  EXPECT_FALSE(step.send_accept);  // sent at the echo quorum already
  EXPECT_TRUE(lad.has_delivered(7));
}

TEST(BrachaLadder, AmplificationRungFiresOnFPlusOneAccepts) {
  Ladder lad(4, 1);
  // No echoes at all: f+1 accepts alone must fire the amplified ACCEPT
  // (Bracha totality — this process vouches without having echoed).
  EXPECT_FALSE(lad.on_vote(8, 5, 1, /*is_echo=*/false).send_accept);
  auto step = lad.on_vote(8, 5, 2, false);
  EXPECT_TRUE(step.send_accept);
  EXPECT_TRUE(step.amplified);
}

TEST(BrachaLadder, ReplayedAcceptAfterDeliveryIsInert) {
  Ladder lad(4, 1);
  for (int voter = 1; voter <= 3; ++voter) lad.on_vote(7, 3, voter, false);
  ASSERT_TRUE(lad.has_delivered(7));

  // The PR-4 guard: the candidate map is pruned at delivery, so a replayed
  // ACCEPT landing afterwards must not pool with fresh votes into a new
  // f+1 and re-trigger the amplification + ACK storm.
  for (int voter = 1; voter <= 4; ++voter) {
    const auto step = lad.on_vote(7, 3, voter, false);
    EXPECT_FALSE(step.send_accept) << "voter " << voter;
    EXPECT_FALSE(step.deliver) << "voter " << voter;
  }
  // Votes for a DIFFERENT candidate of the delivered key are inert too.
  EXPECT_FALSE(lad.on_vote(7, 9, 4, false).send_accept);
  // And a replayed WRITE only refreshes the ACK.
  const auto w = lad.on_write(7, false, [] {
    ADD_FAILURE() << "delivered key was re-interned";
    return 0;
  });
  EXPECT_EQ(w.action, Ladder::WriteAction::kReAck);
}

TEST(BrachaLadder, CrashDropsTalliesButKeepsDedupSets) {
  Ladder lad(4, 1);
  lad.on_write(1, false, [] { return 5; });
  lad.on_vote(1, 5, 1, true);
  lad.on_vote(1, 5, 2, true);
  for (int voter = 1; voter <= 3; ++voter) lad.on_vote(2, 6, voter, false);
  ASSERT_TRUE(lad.has_delivered(2));

  lad.crash();

  // echoed_ is stable storage: the rejoined process re-issues its ORIGINAL
  // echo instead of judging a (possibly equivocated) retry afresh.
  const auto w = lad.on_write(1, false, [] {
    ADD_FAILURE() << "echoed key was re-interned after crash";
    return 9;
  });
  EXPECT_EQ(w.action, Ladder::WriteAction::kEcho);
  EXPECT_EQ(w.value_id, 5);
  EXPECT_FALSE(w.first);
  // The in-progress tally was volatile: the quorum needs three fresh votes.
  EXPECT_FALSE(lad.on_vote(1, 5, 3, true).send_accept);
  EXPECT_FALSE(lad.on_vote(1, 5, 1, true).send_accept);
  EXPECT_TRUE(lad.on_vote(1, 5, 2, true).send_accept);
  // delivered_ persists: no replay storm through a crash either.
  EXPECT_TRUE(lad.has_delivered(2));
  EXPECT_FALSE(lad.on_vote(2, 6, 4, false).send_accept);
  EXPECT_EQ(lad.on_write(2, false, [] { return 0; }).action,
            Ladder::WriteAction::kReAck);
}

TEST(BrachaLadder, FenceBlocksUntilCompletionReissue) {
  Ladder lad(4, 1);
  lad.on_write(4, false, [] { return 2; });
  // Echoed but never accepted: fencing is clean (safe to abort) ...
  EXPECT_FALSE(lad.fence(4));
  EXPECT_TRUE(lad.is_fenced(4));
  // ... and the promise holds: plain writes and votes stay inert.
  EXPECT_EQ(lad.on_write(4, false, [] { return 2; }).action,
            Ladder::WriteAction::kFenced);
  for (int voter = 1; voter <= 3; ++voter) {
    const auto step = lad.on_vote(4, 2, voter, true);
    EXPECT_FALSE(step.send_accept);
    EXPECT_FALSE(step.deliver);
  }
  // Only the completion re-issue (CWRITE) lifts the fence.
  const auto w = lad.on_write(4, /*complete=*/true, [] {
    ADD_FAILURE() << "fenced key was re-interned";
    return 0;
  });
  EXPECT_EQ(w.action, Ladder::WriteAction::kEcho);
  EXPECT_EQ(w.value_id, 2);
  EXPECT_FALSE(lad.is_fenced(4));
}

TEST(BrachaLadder, FenceReportsUnsafeAfterAcceptOrDelivery) {
  // An accept-sender must report unsafe: its ACCEPT is already in flight
  // and could combine with others into a delivery after the fence.
  Ladder sent_accept(4, 1);
  sent_accept.on_vote(5, 1, 1, false);
  ASSERT_TRUE(sent_accept.on_vote(5, 1, 2, false).send_accept);
  EXPECT_TRUE(sent_accept.fence(5));

  Ladder delivered(4, 1);
  for (int voter = 1; voter <= 3; ++voter) delivered.on_vote(5, 1, voter, false);
  ASSERT_TRUE(delivered.has_delivered(5));
  EXPECT_TRUE(delivered.fence(5));

  Ladder echoed_only(4, 1);
  echoed_only.on_write(5, false, [] { return 1; });
  EXPECT_FALSE(echoed_only.fence(5));
}

TEST(BrachaLadder, CrossRunOpClaimsSurviveCrash) {
  using RoundKey = std::pair<int, std::uint64_t>;
  detail::BrachaLadder<RoundKey, RoundKey> lad(4, 1);
  const RoundKey op{2, 9};  // (reg, sn) — the batched substrate's OpKey
  EXPECT_FALSE(lad.op_claimed(op));
  lad.claim_op(op);
  EXPECT_TRUE(lad.op_claimed(op));
  lad.crash();
  // Claims are the write-ahead judgment that made a batch valid; losing
  // them at a crash would let a Byzantine origin re-certify the same
  // register sn with a different value through a rejoined server.
  EXPECT_TRUE(lad.op_claimed(op));
}

// ------------------------------------------------------- substrate tests

// Per-write substrate: after a write fully delivers everywhere, (a) a
// Byzantine owner replaying WRITE(sn) with an equivocated value provokes
// exactly one re-ACK per server — no echo of the new value — and (b) an
// f+1-sized forged ACCEPT storm for the delivered sn provokes nothing at
// all. Both deltas are exact because the fault-free network is reliable.
TEST(LadderOnEmulated, ReplayedWriteAndAcceptStormAreInert) {
  EmulatedSpace space({.n = 4, .f = 1});
  auto& reg = space.make_swmr<std::string>(1, "v0", "r");
  {
    ThisProcess::Binder bind(1);
    reg.write("v1");  // sn 1: delivered at all 4 servers once traffic drains
  }
  Network& net = space.network();
  const auto count = [&] { return net.messages_sent(); };
  drain_message_count(count);

  {
    const std::uint64_t base = count();
    ThisProcess::Binder bind(1);  // the Byzantine owner itself
    Message m;
    m.reg = 0;
    m.type = "WRITE";
    m.sn = 1;
    m.payload = std::string("evil");
    net.broadcast(m);
    // Fan-out (4) + one re-ACK per delivered server (4): the equivocated
    // value recruited no echo anywhere.
    EXPECT_EQ(drain_message_count(count) - base, 8u);
  }
  {
    const std::uint64_t base = count();
    for (const int pid : {2, 3}) {  // f+1 distinct forged accept-senders
      ThisProcess::Binder bind(pid);
      Message m;
      m.reg = 0;
      m.type = "ACCEPT";
      m.sn = 1;
      m.payload = std::string("evil");
      net.broadcast(m);
    }
    // Two fan-outs, zero reaction: without the delivered-set guard these
    // votes would reach f+1 and re-trigger the amplification + ACK storm.
    EXPECT_EQ(drain_message_count(count) - base, 8u);
  }
  ThisProcess::Binder bind(4);
  EXPECT_EQ(reg.read(), "v1");
}

// Batched substrate: (a) a Byzantine origin reusing an already-certified
// (reg, sn) op in a fresh round is refused by every server (cross-round
// claim — without it two rounds could certify two values for one register
// sn), and (b) a forged BACCEPT storm for a delivered round is inert. The
// honest owner's round chain is unaffected afterwards.
TEST(LadderOnBatched, CrossRoundSnReuseAndReplayedAcceptAreInert) {
  BatchedEmulatedSpace space({.n = 4, .f = 1, .shards = 1, .batch_max = 4});
  auto& reg = space.make_swmr<int>(1, 7, "r");
  {
    ThisProcess::Binder bind(1);
    reg.write(11);  // (reg 0, sn 1) rides round 1 and delivers everywhere
  }
  Network& net = space.shard(0).network();
  const auto count = [&] { return net.messages_sent(); };
  drain_message_count(count);

  {
    // Round 99 re-batches the certified (reg 0, sn 1) with value 99.
    const std::uint64_t base = count();
    ThisProcess::Binder bind(1);
    Message m;
    m.reg = BatchShard::kBatchProto;
    m.type = "BWRITE";
    m.sn = 99;
    m.payload = Batch{BatchOp{0, 1, std::any(99)}};
    net.broadcast(m);
    // Fan-out only: every server's claim check refuses the batch, so no
    // BECHO is ever sent and the second value cannot gather any support.
    EXPECT_EQ(drain_message_count(count) - base, 4u);
  }
  {
    // Forged BACCEPT storm for delivered round 1 (digest id 0: the first
    // interned batch) from f+1 distinct senders.
    const std::uint64_t base = count();
    for (const int pid : {2, 3}) {
      ThisProcess::Binder bind(pid);
      Message m;
      m.reg = BatchShard::kBatchProto;
      m.type = "BACCEPT";
      m.sn = 1;
      m.payload = std::pair<int, int>(1, 0);
      net.broadcast(m);
    }
    EXPECT_EQ(drain_message_count(count) - base, 8u);
  }
  {
    ThisProcess::Binder bind(3);
    EXPECT_EQ(reg.read(), 11);
  }
  // The refused round did not wedge the honest chain: the next write leads
  // round 2 with a fresh (reg 0, sn 2) and completes normally.
  {
    ThisProcess::Binder bind(1);
    reg.write(12);
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 12);
}

}  // namespace
}  // namespace swsig::msgpass
