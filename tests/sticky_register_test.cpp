// Unit and property tests for Algorithm 3 (sticky register).
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/sticky_register.hpp"
#include "core/system.hpp"
#include "runtime/harness.hpp"
#include "util/rng.hpp"

namespace swsig::core {
namespace {

using Reg = StickyRegister<int>;
using Sys = FreeSystem<Reg>;

Reg::Config cfg(int n, int f) {
  Reg::Config c;
  c.n = n;
  c.f = f;
  return c;
}

TEST(StickyConfig, RejectsInsufficientResilience) {
  runtime::FreeStepController ctrl;
  registers::Space space(ctrl);
  EXPECT_THROW(Reg(space, cfg(3, 1)), std::invalid_argument);
  EXPECT_NO_THROW(Reg(space, cfg(4, 1)));
}

TEST(Sticky, ReadBeforeWriteReturnsBottom) {
  Sys sys(cfg(4, 1));
  EXPECT_EQ(sys.as(2, [](Reg& r) { return r.read(); }), std::nullopt);
}

// [validity] Observation 22: after the first Write(v), every Read returns v.
TEST(Sticky, ValidityFirstWriteWins) {
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) { r.write(42); });
  for (int k = 2; k <= 4; ++k) {
    const auto v = sys.as(k, [](Reg& r) { return r.read(); });
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
  }
}

// A correct writer's second Write is a no-op (one-shot semantics: the
// register keeps the first value).
TEST(Sticky, SecondWriteIsNoOp) {
  Sys sys(cfg(4, 1));
  sys.as(1, [](Reg& r) {
    r.write(1);
    r.write(2);  // returns done without changing anything
  });
  const auto v = sys.as(3, [](Reg& r) { return r.read(); });
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
}

// [uniqueness] Observation 24: once any reader reads v != ⊥, every
// subsequent Read by any reader returns v.
TEST(Sticky, UniquenessAcrossReaders) {
  Sys sys(cfg(7, 2));
  sys.as(1, [](Reg& r) { r.write(5); });
  const auto first = sys.as(2, [](Reg& r) { return r.read(); });
  ASSERT_TRUE(first.has_value());
  for (int round = 0; round < 3; ++round) {
    for (int k = 2; k <= 7; ++k) {
      const auto v = sys.as(k, [](Reg& r) { return r.read(); });
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, *first);
    }
  }
}

TEST(Sticky, OperationsEnforceRoles) {
  Sys sys(cfg(4, 1));
  EXPECT_THROW(sys.as(2, [](Reg& r) { r.write(1); }), std::logic_error);
  EXPECT_THROW(sys.as(1, [](Reg& r) { r.read(); }), std::logic_error);
}

// Byzantine writer tries to equivocate by rewriting its echo register E1
// after the value propagated: correct readers must never observe two
// different non-⊥ values.
TEST(Sticky, ByzantineEquivocationDefeated) {
  Sys sys(cfg(4, 1));
  // Honest-looking first write.
  sys.as(1, [](Reg& r) { r.write(7); });
  ASSERT_EQ(sys.as(2, [](Reg& r) { return r.read(); }), std::optional<int>(7));
  // Byzantine overwrite of own E1 (port allows it — it's p1's register).
  sys.as(1, [](Reg& r) { (*r.raw().echo)[1]->write(std::optional<int>(999)); });
  // Every subsequent read still returns 7: witnesses are already locked in
  // and correct processes only echo the FIRST value they saw.
  for (int k = 2; k <= 4; ++k)
    EXPECT_EQ(sys.as(k, [](Reg& r) { return r.read(); }),
              std::optional<int>(7));
}

// Byzantine writer that equivocates from the very start: writes a to E1,
// then flips it to b before anyone echoes a consistent quorum. Readers may
// return a, b, or ⊥ — but all concurrent and later readers must agree on
// any non-⊥ value (uniqueness among correct readers).
TEST(Sticky, EquivocationFromStartStillUnique) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Sys sys(cfg(4, 1));
    std::atomic<int> seen_a{0}, seen_b{0};
    runtime::Harness h;
    h.spawn(1, "byz", [&](std::stop_token) {
      auto raw = sys.alg().raw();
      util::Rng rng(seed);
      for (int i = 0; i < 50; ++i)
        (*raw.echo)[1]->write(std::optional<int>(rng.chance(1, 2) ? 1 : 2));
    });
    for (int k = 2; k <= 4; ++k) {
      h.spawn(k, "op", [&](std::stop_token) {
        for (int i = 0; i < 5; ++i) {
          const auto v = sys.alg().read();
          if (v == std::optional<int>(1)) seen_a = 1;
          if (v == std::optional<int>(2)) seen_b = 1;
        }
      });
    }
    h.start();
    h.join();
    EXPECT_FALSE(seen_a.load() && seen_b.load())
        << "two different values read from one sticky register, seed "
        << seed;
  }
}

// Write termination requires n-f witnesses; with f crashed helpers the
// writer must still return (n-f reachable witnesses remain).
TEST(Sticky, WriteTerminatesWithCrashedProcesses) {
  // p4 is crashed: its helper never runs.
  Sys sys(cfg(4, 1), HelperOptions{.exclude = {4}});
  sys.as(1, [](Reg& r) { r.write(11); });  // must not hang
  EXPECT_EQ(sys.as(2, [](Reg& r) { return r.read(); }),
            std::optional<int>(11));
}

// Read termination with a crashed process: |set⊥| can exceed f only via
// actual ⊥-answers, and n-f witnesses still exist.
TEST(Sticky, ReadTerminatesWithCrashedProcesses) {
  Sys sys(cfg(7, 2), HelperOptions{.exclude = {6, 7}});
  sys.as(1, [](Reg& r) { r.write(3); });
  EXPECT_EQ(sys.as(2, [](Reg& r) { return r.read(); }),
            std::optional<int>(3));
  // Read of an unwritten register also terminates (⊥ via f+1 ⊥-answers)...
  Sys fresh(cfg(7, 2), HelperOptions{.exclude = {6, 7}});
  const auto bottom = fresh.as(2, [](Reg& r) { return r.read(); });
  EXPECT_EQ(bottom, std::nullopt);
}

// Concurrent readers racing the writer: any mix of ⊥ and v is fine, but
// never two different non-⊥ values, and after the Write completes all
// reads return v.
TEST(Sticky, ConcurrentReadersAgreeDuringWrite) {
  Sys sys(cfg(4, 1));
  std::set<int> observed;
  std::mutex mu;
  runtime::Harness h;
  h.spawn(1, "op", [&](std::stop_token) { sys.alg().write(5); });
  for (int k = 2; k <= 4; ++k) {
    h.spawn(k, "op", [&](std::stop_token) {
      for (int i = 0; i < 20; ++i) {
        const auto v = sys.alg().read();
        if (v.has_value()) {
          std::scoped_lock lock(mu);
          observed.insert(*v);
        }
      }
    });
  }
  h.start();
  h.join();
  EXPECT_LE(observed.size(), 1u);
  // After write completion, value is visible.
  EXPECT_EQ(sys.as(2, [](Reg& r) { return r.read(); }),
            std::optional<int>(5));
}

struct SweepParam {
  int n;
  int f;
  std::uint64_t seed;
};

class StickySweep : public ::testing::TestWithParam<SweepParam> {};

// Uniqueness property under randomized concurrent reads + one writer.
TEST_P(StickySweep, UniquenessUnderConcurrency) {
  const auto [n, f, seed] = GetParam();
  Sys sys(cfg(n, f));
  util::Rng rng(seed);
  const int value = static_cast<int>(rng.uniform(1, 100));
  std::set<int> observed;
  std::mutex mu;
  runtime::Harness h;
  h.spawn(1, "op", [&](std::stop_token) { sys.alg().write(value); });
  for (int k = 2; k <= n; ++k) {
    h.spawn(k, "op", [&](std::stop_token) {
      for (int i = 0; i < 10; ++i) {
        const auto v = sys.alg().read();
        if (v.has_value()) {
          std::scoped_lock lock(mu);
          observed.insert(*v);
        }
      }
    });
  }
  h.start();
  h.join();
  ASSERT_LE(observed.size(), 1u);
  if (!observed.empty()) {
    EXPECT_EQ(*observed.begin(), value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, StickySweep,
    ::testing::Values(SweepParam{4, 1, 1}, SweepParam{4, 1, 2},
                      SweepParam{5, 1, 3}, SweepParam{7, 2, 4},
                      SweepParam{10, 3, 5}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "n" + std::to_string(info.param.n) + "f" +
             std::to_string(info.param.f) + "s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace swsig::core
