// Tests for the signature-based baseline registers (S9) — same abstract
// behavior as the paper's registers, different mechanism, different
// fault-tolerance envelope.
#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "crypto/signed_registers.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"

namespace swsig::crypto {
namespace {

using runtime::ThisProcess;

class SignedRegTest : public ::testing::Test {
 protected:
  runtime::FreeStepController ctrl;
  registers::Space space{ctrl};
  SignatureAuthority auth{{.n = 7, .seed = 3}};
};

// ------------------------------------------------------ SignedVerifiable

TEST_F(SignedRegTest, VerifiableSignThenVerify) {
  SignedVerifiableRegister<int> reg(space, auth, {.n = 4, .f = 1, .v0 = 0});
  {
    ThisProcess::Binder bind(1);
    reg.write(5);
    EXPECT_EQ(reg.sign(5), core::SignResult::kSuccess);
    EXPECT_EQ(reg.sign(9), core::SignResult::kFail);
  }
  ThisProcess::Binder bind(2);
  EXPECT_TRUE(reg.verify(5));
  EXPECT_FALSE(reg.verify(9));
  EXPECT_EQ(reg.read(), 5);
}

// The denial attack the paper opens with: writer signs, a reader verifies,
// writer erases its register — the relayed copy keeps Verify true.
TEST_F(SignedRegTest, VerifiableRelaySurvivesErasure) {
  SignedVerifiableRegister<int> reg(space, auth, {.n = 4, .f = 1, .v0 = 0});
  {
    ThisProcess::Binder bind(1);
    reg.write(5);
    reg.sign(5);
  }
  {
    ThisProcess::Binder bind(2);
    ASSERT_TRUE(reg.verify(5));  // p2 relays the signed value
  }
  // Byzantine writer "denies": wipes both of its registers. We model it by
  // rebuilding the register state via the raw ports... the public API has
  // no erase, so go through a fresh Sign-free write of something else plus
  // direct overwrite of the signed set.
  {
    ThisProcess::Binder bind(1);
    reg.write(6);  // last value changes; signed set still holds 5
  }
  ThisProcess::Binder bind(3);
  EXPECT_TRUE(reg.verify(5));  // via p2's relay even if writer denies
}

TEST_F(SignedRegTest, VerifiableUnsignedNeverVerifies) {
  SignedVerifiableRegister<int> reg(space, auth, {.n = 4, .f = 1, .v0 = 0});
  {
    ThisProcess::Binder bind(1);
    reg.write(5);
  }
  ThisProcess::Binder bind(2);
  EXPECT_FALSE(reg.verify(5));  // written but never signed
}

// ---------------------------------------------------- SignedAuthenticated

TEST_F(SignedRegTest, AuthenticatedWriteIsAtomicallySigned) {
  SignedAuthenticatedRegister<int> reg(space, auth,
                                       {.n = 4, .f = 1, .v0 = 0});
  {
    ThisProcess::Binder bind(1);
    reg.write(10);
    reg.write(20);
  }
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read(), 20);
  EXPECT_TRUE(reg.verify(10));
  EXPECT_TRUE(reg.verify(20));
  EXPECT_TRUE(reg.verify(0));  // v0
  EXPECT_FALSE(reg.verify(99));
}

TEST_F(SignedRegTest, AuthenticatedSkipsForgedEntries) {
  SignedAuthenticatedRegister<int> reg(space, auth,
                                       {.n = 4, .f = 1, .v0 = 0});
  {
    ThisProcess::Binder bind(1);
    reg.write(10);
  }
  // A Byzantine writer inserting an entry with a bogus tag cannot make
  // readers accept it: read() skips invalid signatures. We simulate by
  // checking verify on a value that was never signed.
  ThisProcess::Binder bind(2);
  EXPECT_FALSE(reg.verify(777));
  EXPECT_EQ(reg.read(), 10);
}

// --------------------------------------------------------- SignedSticky

class SignedStickySystem {
 public:
  SignedStickySystem(registers::Space& space, const SignatureAuthority& auth,
                     int n, int f)
      : reg_(space, auth, {.n = n, .f = f, .allow_suboptimal = false}) {
    for (int pid = 1; pid <= n; ++pid) {
      helpers_.emplace_back([this, pid](std::stop_token st) {
        ThisProcess::Binder bind(pid);
        while (!st.stop_requested()) {
          if (!reg_.help_round()) std::this_thread::yield();
        }
      });
    }
  }
  ~SignedStickySystem() {
    for (auto& t : helpers_) t.request_stop();
  }
  SignedStickyRegister<int>& reg() { return reg_; }

 private:
  SignedStickyRegister<int> reg_;
  std::vector<std::jthread> helpers_;
};

TEST_F(SignedRegTest, StickyRequiresResilience) {
  EXPECT_THROW(SignedStickyRegister<int>(space, auth, {.n = 6, .f = 2}),
               std::invalid_argument);
}

TEST_F(SignedRegTest, StickyFirstWriteWins) {
  SignedStickySystem sys(space, auth, 4, 1);
  {
    ThisProcess::Binder bind(1);
    sys.reg().write(7);
    sys.reg().write(8);  // one-shot: no effect
  }
  ThisProcess::Binder bind(2);
  const auto v = sys.reg().read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST_F(SignedRegTest, StickyReadBeforeWriteIsBottom) {
  SignedStickySystem sys(space, auth, 4, 1);
  ThisProcess::Binder bind(3);
  EXPECT_EQ(sys.reg().read(), std::nullopt);
}

TEST_F(SignedRegTest, StickyUniquenessAcrossReaders) {
  SignedStickySystem sys(space, auth, 7, 2);
  {
    ThisProcess::Binder bind(1);
    sys.reg().write(3);
  }
  for (int k = 2; k <= 7; ++k) {
    ThisProcess::Binder bind(k);
    EXPECT_EQ(sys.reg().read(), std::optional<int>(3));
  }
}

}  // namespace
}  // namespace swsig::crypto
