// Fast-path substrate tests: storage-engine selection (seqlock vs mutex),
// atomicity of the seqlock-backed Swmr under concurrent readers, sharded
// Metrics aggregation, per-register version() monotonicity, the
// devirtualized free-mode step gate, and the write-epoch parking protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "registers/metrics.hpp"
#include "registers/space.hpp"
#include "registers/storage.hpp"
#include "runtime/harness.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"
#include "util/sharded_counter.hpp"

namespace swsig::registers {
namespace {

using runtime::FreeStepController;
using runtime::ThisProcess;

// ------------------------------------------------ storage-engine selection

struct TrivialPair {
  std::uint64_t a = 0, b = 0;
};

static_assert(std::is_same_v<RegisterStorage<std::uint64_t>::type,
                             SeqlockStorage<std::uint64_t>>,
              "trivially copyable payloads must select the seqlock engine");
static_assert(std::is_same_v<RegisterStorage<TrivialPair>::type,
                             SeqlockStorage<TrivialPair>>,
              "trivially copyable structs must select the seqlock engine");
static_assert(std::is_same_v<RegisterStorage<std::set<int>>::type,
                             MutexStorage<std::set<int>>>,
              "non-trivially-copyable payloads must fall back to the mutex");
static_assert(std::is_same_v<RegisterStorage<std::string>::type,
                             MutexStorage<std::string>>,
              "std::string must fall back to the mutex engine");

class PerfSpaceTest : public ::testing::Test {
 protected:
  FreeStepController ctrl;
  Space space{ctrl};
};

// (a) Seqlock-backed Swmr round-trips values with concurrent readers: no
// torn reads, every observed value was actually written. Run under
// -DENABLE_SANITIZERS to get the ASan/UBSan guarantee.
TEST_F(PerfSpaceTest, SeqlockSwmrRoundTripsUnderConcurrentReaders) {
  auto& reg = space.make_swmr<TrivialPair>(1, {0, 0}, "pair");
  constexpr std::uint64_t kWrites = 20000;
  runtime::Harness h;
  h.spawn(1, "op", [&](std::stop_token) {
    for (std::uint64_t i = 1; i <= kWrites; ++i) reg.write({i, ~i});
  });
  for (int pid = 2; pid <= 4; ++pid) {
    h.spawn(pid, "op", [&](std::stop_token) {
      for (int i = 0; i < 20000; ++i) {
        const TrivialPair p = reg.read();
        if (p.a != 0) {
          ASSERT_EQ(p.b, ~p.a) << "torn seqlock read";
          ASSERT_LE(p.a, kWrites);
        }
      }
    });
  }
  h.start();
  h.join();
  ThisProcess::Binder bind(2);
  EXPECT_EQ(reg.read().a, kWrites);
}

// (b) Sharded per-thread Metrics aggregate to exactly the same totals the
// old single-counter implementation produced.
TEST(ShardedMetrics, AggregationEqualsSingleCounterTotals) {
  Metrics metrics;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        metrics.on_read();
        if (i % 2 == 0) metrics.on_write();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(metrics.reads(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(metrics.writes(),
            static_cast<std::uint64_t>(kThreads) * (kOpsPerThread / 2));
  EXPECT_EQ(metrics.total(), metrics.reads() + metrics.writes());
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.reads, metrics.reads());
  EXPECT_EQ(snap.writes, metrics.writes());
}

TEST(ShardedCounter, ManyThreadsNeverLoseIncrements) {
  util::ShardedCounter counter;
  constexpr int kThreads = 32;
  constexpr int kAdds = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAdds; ++i) counter.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

// (c) version() is monotone across write/update, for both storage engines.
TEST_F(PerfSpaceTest, VersionMonotoneAcrossWriteAndUpdate) {
  auto& seq_reg = space.make_swmr<std::uint64_t>(1, 0, "v.seq");
  auto& mtx_reg = space.make_swmr<std::set<int>>(1, {}, "v.mtx");
  ThisProcess::Binder bind(1);

  std::uint64_t prev_seq = seq_reg.version();
  std::uint64_t prev_mtx = mtx_reg.version();
  for (int i = 1; i <= 10; ++i) {
    if (i % 2 == 0) {
      seq_reg.write(static_cast<std::uint64_t>(i));
      mtx_reg.write({i});
    } else {
      seq_reg.update([&](std::uint64_t& v) { v += 1; });
      mtx_reg.update([&](std::set<int>& s) { s.insert(i); });
    }
    EXPECT_GT(seq_reg.version(), prev_seq) << "write " << i;
    EXPECT_GT(mtx_reg.version(), prev_mtx) << "write " << i;
    prev_seq = seq_reg.version();
    prev_mtx = mtx_reg.version();
  }
  // Reads must not advance versions.
  seq_reg.read();
  mtx_reg.read();
  EXPECT_EQ(seq_reg.version(), prev_seq);
  EXPECT_EQ(mtx_reg.version(), prev_mtx);
}

TEST_F(PerfSpaceTest, SwsrVersionMonotone) {
  auto& reg = space.make_swsr<int>(1, 2, 0, "r12");
  std::uint64_t prev = reg.version();
  ThisProcess::Binder bind(1);
  for (int i = 1; i <= 5; ++i) {
    reg.write(i);
    EXPECT_GT(reg.version(), prev);
    prev = reg.version();
  }
}

// ------------------------------------------------- devirtualized step gate

TEST_F(PerfSpaceTest, FreeModeStillCountsAccessesAsSteps) {
  EXPECT_TRUE(space.free_mode());
  auto& reg = space.make_swmr<int>(1, 0, "r");
  ThisProcess::Binder bind(1);
  const auto before = ctrl.steps();
  reg.write(1);
  reg.read();
  reg.read();
  // Metered accesses count as steps even though no virtual step() ran.
  EXPECT_EQ(ctrl.steps(), before + 3);
  // Direct (virtual) steps still add on top.
  ctrl.step();
  EXPECT_EQ(ctrl.steps(), before + 4);
}

TEST(SpaceDispatch, ForcedVirtualDisablesFastPath) {
  FreeStepController ctrl;
  Space legacy(ctrl, Space::Enforcement::kEnforcing,
               Space::Dispatch::kVirtual);
  EXPECT_FALSE(legacy.free_mode());
  auto& reg = legacy.make_swmr<int>(1, 0, "r");
  ThisProcess::Binder bind(1);
  const auto before = ctrl.steps();
  reg.write(1);
  reg.read();
  EXPECT_EQ(ctrl.steps(), before + 2);  // gated through step(), still counted
}

// --------------------------------------------------- write epoch / parking

TEST_F(PerfSpaceTest, WriteEpochAdvancesOnWritesOnly) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  ThisProcess::Binder bind(1);
  const auto e0 = space.write_epoch();
  reg.read();
  EXPECT_EQ(space.write_epoch(), e0);
  reg.write(1);
  EXPECT_GT(space.write_epoch(), e0);
  const auto e1 = space.write_epoch();
  reg.update([](int& v) { ++v; });
  EXPECT_GT(space.write_epoch(), e1);
}

TEST_F(PerfSpaceTest, WaitWriteEpochWakesOnWrite) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  const auto seen = space.write_epoch();
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    // Generous timeout: the write below must wake us long before it.
    space.wait_write_epoch(seen, std::chrono::microseconds(5'000'000));
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  {
    ThisProcess::Binder bind(1);
    reg.write(42);
  }
  waiter.join();
  EXPECT_TRUE(woke.load());
  EXPECT_NE(space.write_epoch(), seen);
}

TEST_F(PerfSpaceTest, WaitWriteEpochReturnsImmediatelyWhenStale) {
  auto& reg = space.make_swmr<int>(1, 0, "r");
  const auto seen = space.write_epoch();
  {
    ThisProcess::Binder bind(1);
    reg.write(1);
  }
  const auto t0 = std::chrono::steady_clock::now();
  space.wait_write_epoch(seen, std::chrono::microseconds(5'000'000));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::seconds(1));
}

}  // namespace
}  // namespace swsig::registers
