// Tests for the reliable broadcast objects: sticky (signature-free, n>3f)
// and signed-certificate (n>2f) backends must provide the same guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "registers/space.hpp"
#include "runtime/harness.hpp"
#include "runtime/process.hpp"

namespace swsig::broadcast {
namespace {

using runtime::ThisProcess;

enum class Backend { kSticky, kSigned };

class BroadcastSystem {
 public:
  BroadcastSystem(Backend backend, int n, int f, int max_broadcasts = 4)
      : space_(controller_), auth_({.n = n, .seed = 5}) {
    if (backend == Backend::kSticky) {
      rb_ = std::make_unique<StickyReliableBroadcast>(
          space_, StickyReliableBroadcast::Config{n, f, max_broadcasts});
    } else {
      rb_ = std::make_unique<SignedReliableBroadcast>(
          space_, auth_,
          SignedReliableBroadcast::Config{n, f, max_broadcasts});
    }
    for (int pid = 1; pid <= n; ++pid) {
      helpers_.emplace_back([this, pid](std::stop_token st) {
        ThisProcess::Binder bind(pid);
        while (!st.stop_requested()) {
          if (!rb_->help_round()) std::this_thread::yield();
        }
      });
    }
  }

  ~BroadcastSystem() {
    for (auto& t : helpers_) t.request_stop();
  }

  ReliableBroadcast& rb() { return *rb_; }

  template <typename F>
  auto as(int pid, F&& fn) {
    ThisProcess::Binder bind(pid);
    return std::forward<F>(fn)(*rb_);
  }

 private:
  runtime::FreeStepController controller_;
  registers::Space space_;
  crypto::SignatureAuthority auth_;
  std::unique_ptr<ReliableBroadcast> rb_;
  std::vector<std::jthread> helpers_;
};

class BroadcastBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(BroadcastBackends, DeliverNothingBeforeBroadcast) {
  BroadcastSystem sys(GetParam(), 4, 1);
  EXPECT_EQ(sys.as(2, [](ReliableBroadcast& rb) { return rb.deliver(1, 0); }),
            std::nullopt);
}

TEST_P(BroadcastBackends, BroadcastThenEveryoneDelivers) {
  BroadcastSystem sys(GetParam(), 4, 1);
  sys.as(1, [](ReliableBroadcast& rb) { rb.broadcast(0, 42); });
  for (int pid = 2; pid <= 4; ++pid) {
    // Deliverability may lag the broadcast's completion only for the
    // sticky backend's readers; poll briefly.
    std::optional<Value> got;
    for (int i = 0; i < 1000 && !got; ++i) {
      got = sys.as(pid, [](ReliableBroadcast& rb) { return rb.deliver(1, 0); });
      if (!got) std::this_thread::yield();
    }
    EXPECT_EQ(got, std::optional<Value>(42)) << "p" << pid;
  }
}

TEST_P(BroadcastBackends, MultipleSlotsIndependent) {
  BroadcastSystem sys(GetParam(), 4, 1);
  sys.as(1, [](ReliableBroadcast& rb) {
    rb.broadcast(0, 10);
    rb.broadcast(1, 11);
  });
  sys.as(2, [](ReliableBroadcast& rb) { rb.broadcast(0, 20); });
  EXPECT_EQ(sys.as(3, [](ReliableBroadcast& rb) { return rb.deliver(1, 0); }),
            std::optional<Value>(10));
  EXPECT_EQ(sys.as(3, [](ReliableBroadcast& rb) { return rb.deliver(1, 1); }),
            std::optional<Value>(11));
  EXPECT_EQ(sys.as(3, [](ReliableBroadcast& rb) { return rb.deliver(2, 0); }),
            std::optional<Value>(20));
  EXPECT_EQ(sys.as(3, [](ReliableBroadcast& rb) { return rb.deliver(3, 0); }),
            std::nullopt);
}

// Agreement (non-equivocation): once any correct process delivers v for a
// slot, no correct process ever delivers a different value for it.
TEST_P(BroadcastBackends, AgreementUnderConcurrentDelivery) {
  BroadcastSystem sys(GetParam(), 4, 1);
  sys.as(1, [](ReliableBroadcast& rb) { rb.broadcast(0, 7); });
  std::set<Value> outcomes;
  std::mutex mu;
  runtime::Harness h;
  for (int pid = 2; pid <= 4; ++pid) {
    h.spawn(pid, "op", [&](std::stop_token) {
      for (int i = 0; i < 20; ++i) {
        const auto v = sys.rb().deliver(1, 0);
        if (v) {
          std::scoped_lock lock(mu);
          outcomes.insert(*v);
        }
      }
    });
  }
  h.start();
  h.join();
  EXPECT_LE(outcomes.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, BroadcastBackends,
                         ::testing::Values(Backend::kSticky, Backend::kSigned),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kSticky ? "Sticky"
                                                                 : "Signed";
                         });

// Sticky backend blocks sender equivocation structurally: the slot's
// register is sticky, so even raw double-writes cannot change the value.
TEST(StickyBroadcast, SenderCannotOverwriteSlot) {
  BroadcastSystem sys(Backend::kSticky, 4, 1);
  sys.as(1, [](ReliableBroadcast& rb) {
    rb.broadcast(0, 1);
    rb.broadcast(0, 2);  // second write to the same slot: sticky no-op
  });
  EXPECT_EQ(sys.as(2, [](ReliableBroadcast& rb) { return rb.deliver(1, 0); }),
            std::optional<Value>(1));
}

// Signed backend resilience domain: n = 3, f = 1 (n > 2f but NOT > 3f) —
// signatures buy resilience the signature-free backend cannot offer.
TEST(SignedBroadcast, WorksAtNThreeFOne) {
  BroadcastSystem sys(Backend::kSigned, 3, 1);
  sys.as(1, [](ReliableBroadcast& rb) { rb.broadcast(0, 9); });
  EXPECT_EQ(sys.as(2, [](ReliableBroadcast& rb) { return rb.deliver(1, 0); }),
            std::optional<Value>(9));
  // ...while the sticky backend refuses this configuration outright.
  runtime::FreeStepController ctrl;
  registers::Space space(ctrl);
  EXPECT_THROW(StickyReliableBroadcast(space, {3, 1, 2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace swsig::broadcast
