// Windowed (online) linearizability checking: soundness in both
// directions. A known-violating window must be reported with its evidence;
// a linearizable history must produce NO window violations — including the
// crossing-op shape that makes naive op-count sliding windows unsound.
// Also covers the HistoryRecorder drain()/watermark contract the checker's
// cut detection is built on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "lincheck/register_specs.hpp"
#include "lincheck/window.hpp"
#include "runtime/process.hpp"

namespace swsig::lincheck {
namespace {

Operation make_op(int id, int pid, const std::string& object,
                  const std::string& name, const std::string& arg,
                  const std::string& result, std::uint64_t invoke,
                  std::uint64_t response) {
  Operation op;
  op.id = id;
  op.pid = pid;
  op.object = object;
  op.name = name;
  op.arg = arg;
  op.result = result;
  op.invoke_ts = invoke;
  op.response_ts = response;
  return op;
}

constexpr std::uint64_t kFar = 1u << 20;  // watermark: "everything is done"

// The window spec starts unanchored: the first read of an object adopts
// its result (any pre-window value is legitimate), while a plain spec with
// an assumed initial value would cry violation.
TEST(WindowRegisterSpec, FirstReadAdoptsUnknownStart) {
  const std::vector<Operation> ops = {
      make_op(1, 1, "r", "read", "", "pre-window-value", 0, 1),
      make_op(2, 1, "r", "read", "", "pre-window-value", 2, 3),
      make_op(3, 1, "r", "write", "b", "done", 4, 5),
      make_op(4, 2, "r", "read", "", "b", 6, 7),
  };
  EXPECT_EQ(check_linearizable(ops, window_register_factory()).verdict,
            Verdict::kLinearizable);
  const SpecFactory plain = [](const std::string&) {
    return std::unique_ptr<SequentialSpec>(new PlainRegisterSpec("0"));
  };
  EXPECT_EQ(check_linearizable(ops, plain).verdict, Verdict::kViolation);
  // Adoption is once per object: a second, different read value after the
  // anchor is a real violation even for the window spec.
  const std::vector<Operation> stale = {
      make_op(1, 1, "r", "read", "", "a", 0, 1),
      make_op(2, 1, "r", "read", "", "b", 2, 3),
  };
  EXPECT_EQ(check_linearizable(stale, window_register_factory()).verdict,
            Verdict::kViolation);
}

// A stale read (old value observed strictly after the new value, with the
// write long finished) must be flagged, with the window's operations
// retained as evidence.
TEST(WindowedChecker, DetectsInjectedStaleRead) {
  WindowedChecker checker({.min_window_ops = 2});
  // The violating trio overlaps one long write, so no quiescent cut can
  // separate the stale read from the read that already observed "b" — the
  // violation is intra-window by construction. (Fed in completion order.)
  std::vector<Operation> ops = {
      make_op(1, 1, "r", "write", "a", "done", 0, 1),
      make_op(2, 2, "r", "read", "", "a", 2, 3),
      make_op(3, 2, "r", "read", "", "b", 5, 6),
      make_op(4, 3, "r", "read", "", "a", 7, 8),  // stale: b already read
      make_op(5, 1, "r", "write", "b", "done", 4, 9),
  };
  checker.feed(std::move(ops), kFar);
  std::vector<WindowVerdict> verdicts = checker.finish();
  ASSERT_FALSE(verdicts.empty());
  std::uint64_t violations = 0;
  for (const WindowVerdict& v : verdicts) {
    if (v.ok()) continue;
    ++violations;
    EXPECT_EQ(v.result.verdict, Verdict::kViolation);
    EXPECT_FALSE(v.ops.empty());  // evidence retained for the report
    EXPECT_GE(v.last_op, v.first_op);
  }
  EXPECT_EQ(violations, 1u);
  EXPECT_EQ(checker.violations(), 1u);
}

// A clean sequential-per-object history split across many quiescent cuts:
// every window linearizable, nothing left buffered after finish().
TEST(WindowedChecker, NoFalsePositivesOnCleanHistory) {
  WindowedChecker checker({.min_window_ops = 8});
  std::uint64_t ts = 0;
  int id = 0;
  std::vector<std::string> last(4, "init");
  std::vector<Operation> batch;
  std::uint64_t fed = 0;
  for (int round = 0; round < 512 / 4; ++round) {
    for (int obj = 0; obj < 4; ++obj) {
      const std::string name = round % 3 == 0 ? "write" : "read";
      const std::string reg = "r" + std::to_string(obj);
      if (name == "write") {
        last[static_cast<std::size_t>(obj)] = "v" + std::to_string(round);
        batch.push_back(make_op(++id, 1 + obj % 3, reg, "write",
                                last[static_cast<std::size_t>(obj)], "done",
                                ts, ts + 1));
      } else {
        batch.push_back(make_op(++id, 1 + obj % 3, reg, "read", "",
                                last[static_cast<std::size_t>(obj)], ts,
                                ts + 1));
      }
      ts += 2;
    }
    if (batch.size() >= 64) {
      fed += batch.size();
      // Nothing pending between rounds: the watermark is the current clock.
      checker.feed(std::move(batch), ts);
      batch.clear();
      for (const WindowVerdict& v : checker.poll()) EXPECT_TRUE(v.ok());
    }
  }
  fed += batch.size();
  checker.feed(std::move(batch), ts);
  for (const WindowVerdict& v : checker.finish()) EXPECT_TRUE(v.ok());
  EXPECT_EQ(fed, 512u);
  EXPECT_GE(checker.windows_checked(), 4u);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.undecided(), 0u);
  EXPECT_EQ(checker.ops_buffered(), 0u);
}

// The unsoundness an op-count sliding window has and a quiescent cut does
// not: a write responds just before a candidate boundary while a
// concurrent read straddles it and legitimately returns the OLD value.
// Cutting there strands {read->old, read->new} with no in-window writer —
// a false violation (the sub-history alone IS non-linearizable, as the
// second check demonstrates). The quiescent-cut checker refuses that cut
// because the straddling read was invoked before the write responded.
TEST(WindowedChecker, CrossingOpsDoNotFalsePositive) {
  const std::vector<Operation> ops = {
      make_op(1, 1, "r", "write", "a", "done", 0, 1),
      make_op(2, 1, "r", "write", "b", "done", 4, 9),
      make_op(3, 2, "r", "read", "", "a", 8, 11),  // concurrent with write b
      make_op(4, 3, "r", "read", "", "b", 12, 13),
      make_op(5, 2, "r", "read", "", "b", 14, 15),
      make_op(6, 3, "r", "read", "", "b", 16, 17),
  };
  // Full history: linearizable (read->a linearizes before write b).
  ASSERT_EQ(check_linearizable(ops, window_register_factory()).verdict,
            Verdict::kLinearizable);
  // The stranded suffix alone is NOT (first read adopts "a", next reads
  // "b" with no write in between) — the false positive a naive window
  // starting after the write would report:
  const std::vector<Operation> stranded(ops.begin() + 2, ops.end());
  ASSERT_EQ(check_linearizable(stranded, window_register_factory()).verdict,
            Verdict::kViolation);
  // The windowed checker, fed the same history with min_window_ops low
  // enough to tempt a cut right after the write, reports no violation.
  WindowedChecker checker({.min_window_ops = 2});
  checker.feed(ops, kFar);
  for (const WindowVerdict& v : checker.poll()) EXPECT_TRUE(v.ok());
  for (const WindowVerdict& v : checker.finish()) EXPECT_TRUE(v.ok());
  EXPECT_EQ(checker.violations(), 0u);
}

// Windows only close once the watermark proves no future operation can
// linearize inside them.
TEST(WindowedChecker, WatermarkHoldsOpenWindows) {
  WindowedChecker checker({.min_window_ops = 2});
  std::vector<Operation> ops;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t t = static_cast<std::uint64_t>(2 * i);
    ops.push_back(make_op(i + 1, 1, "r", "write", "v" + std::to_string(i),
                          "done", t, t + 1));
  }
  // Watermark 0: some not-yet-fed operation may have been invoked before
  // everything here — no cut is sound, nothing may be checked.
  checker.feed(ops, 0);
  EXPECT_TRUE(checker.poll().empty());
  EXPECT_EQ(checker.ops_buffered(), 8u);
  // Raising the watermark past the buffer closes it at the next poll; the
  // fully sequential stream cuts at every second op (min_window_ops = 2).
  checker.feed({}, 100);
  const auto verdicts = checker.poll();
  ASSERT_EQ(verdicts.size(), 4u);
  for (const WindowVerdict& v : verdicts) EXPECT_TRUE(v.ok());
  EXPECT_EQ(checker.ops_buffered(), 0u);
}

// HistoryRecorder::drain() contract: the watermark is a lower bound on
// every future completion's invoke_ts — the clock if nothing is pending,
// else the oldest pending invocation.
TEST(HistoryRecorderDrain, WatermarkTracksOldestPending) {
  runtime::ThisProcess::Binder bind(1);
  HistoryRecorder rec;
  const int t1 = rec.invoke("r", "read", "");
  const int t2 = rec.invoke("r", "read", "");
  rec.respond(t2, "a");

  auto pending = rec.pending_snapshot();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].name, "read");

  HistoryRecorder::Drain d1 = rec.drain();
  ASSERT_EQ(d1.ops.size(), 1u);
  EXPECT_EQ(d1.ops[0].result, "a");
  // t1 is still pending and was invoked first: it bounds the watermark.
  EXPECT_EQ(d1.watermark, d1.ops[0].invoke_ts - 1);

  rec.respond(t1, "a");
  HistoryRecorder::Drain d2 = rec.drain();
  ASSERT_EQ(d2.ops.size(), 1u);
  // Nothing pending now: the watermark advances to the clock, past every
  // completed operation.
  EXPECT_GT(d2.watermark, d2.ops[0].response_ts);
  EXPECT_TRUE(rec.pending_snapshot().empty());
  // Drained operations still count toward the running total.
  EXPECT_EQ(rec.completed_count(), 2u);
}

}  // namespace
}  // namespace swsig::lincheck
