// Tests for the test-or-set object (§10) built from each register type
// (Observation 30) and for Lemma 28's correct-process properties.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/system.hpp"
#include "core/test_or_set.hpp"
#include "runtime/harness.hpp"

namespace swsig::core {
namespace {

enum class Backend { kVerifiable, kAuthenticated, kSticky };

// Wraps backend construction so every test runs against all three
// implementations of Observation 30.
class TestOrSetSystem {
 public:
  TestOrSetSystem(Backend backend, int n, int f)
      : space_(controller_) {
    switch (backend) {
      case Backend::kVerifiable: {
        VerifiableRegister<int>::Config c;
        c.n = n;
        c.f = f;
        auto impl = std::make_unique<TestOrSetFromVerifiable>(space_, c);
        help_ = [reg = &impl->reg()] { return reg->help_round(); };
        tos_ = std::move(impl);
        break;
      }
      case Backend::kAuthenticated: {
        AuthenticatedRegister<int>::Config c;
        c.n = n;
        c.f = f;
        auto impl = std::make_unique<TestOrSetFromAuthenticated>(space_, c);
        help_ = [reg = &impl->reg()] { return reg->help_round(); };
        tos_ = std::move(impl);
        break;
      }
      case Backend::kSticky: {
        StickyRegister<int>::Config c;
        c.n = n;
        c.f = f;
        auto impl = std::make_unique<TestOrSetFromSticky>(space_, c);
        help_ = [reg = &impl->reg()] { return reg->help_round(); };
        tos_ = std::move(impl);
        break;
      }
    }
    for (int pid = 1; pid <= n; ++pid) {
      helpers_.emplace_back([this, pid](std::stop_token st) {
        runtime::ThisProcess::Binder bind(pid);
        while (!st.stop_requested()) {
          if (!help_()) std::this_thread::yield();
        }
      });
    }
  }

  ~TestOrSetSystem() {
    for (auto& t : helpers_) t.request_stop();
  }

  TestOrSet& tos() { return *tos_; }

  template <typename F>
  auto as(int pid, F&& fn) {
    runtime::ThisProcess::Binder bind(pid);
    return std::forward<F>(fn)(*tos_);
  }

 private:
  runtime::FreeStepController controller_;
  registers::Space space_;
  std::unique_ptr<TestOrSet> tos_;
  std::function<bool()> help_;
  std::vector<std::jthread> helpers_;
};

class TestOrSetAllBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(TestOrSetAllBackends, TestBeforeSetReturnsZero) {
  TestOrSetSystem sys(GetParam(), 4, 1);
  EXPECT_EQ(sys.as(2, [](TestOrSet& t) { return t.test(); }), 0);
  EXPECT_EQ(sys.as(3, [](TestOrSet& t) { return t.test(); }), 0);
}

// Observation 27(1): Set before Test implies Test returns 1.
TEST_P(TestOrSetAllBackends, SetThenTestReturnsOne) {
  TestOrSetSystem sys(GetParam(), 4, 1);
  sys.as(1, [](TestOrSet& t) { t.set(); });
  for (int k = 2; k <= 4; ++k)
    EXPECT_EQ(sys.as(k, [](TestOrSet& t) { return t.test(); }), 1);
}

// Observation 27(3) / Lemma 28(3): Test=1 relays to all later Tests.
TEST_P(TestOrSetAllBackends, TestOneRelays) {
  TestOrSetSystem sys(GetParam(), 7, 2);
  sys.as(1, [](TestOrSet& t) { t.set(); });
  ASSERT_EQ(sys.as(2, [](TestOrSet& t) { return t.test(); }), 1);
  for (int round = 0; round < 2; ++round)
    for (int k = 2; k <= 7; ++k)
      EXPECT_EQ(sys.as(k, [](TestOrSet& t) { return t.test(); }), 1);
}

// Lemma 28(2) direction for correct setter: a Test can only return 1 after
// the Set was invoked — concurrent testers that started strictly before the
// Set must return 0 ... unless concurrent with Set. Here we check the
// sequential case only: with no Set at all, storms of Tests all return 0.
TEST_P(TestOrSetAllBackends, NoSetMeansAllTestsZero) {
  TestOrSetSystem sys(GetParam(), 4, 1);
  std::atomic<int> ones{0};
  runtime::Harness h;
  for (int k = 2; k <= 4; ++k) {
    h.spawn(k, "op", [&](std::stop_token) {
      for (int i = 0; i < 10; ++i)
        if (sys.tos().test() == 1) ones.fetch_add(1);
    });
  }
  h.start();
  h.join();
  EXPECT_EQ(ones.load(), 0);
}

// Concurrent Set and Test storm: once any tester sees 1, all later testers
// see 1 (relay under concurrency).
TEST_P(TestOrSetAllBackends, ConcurrentRelayConsistency) {
  TestOrSetSystem sys(GetParam(), 4, 1);
  std::atomic<bool> one_seen{false};
  std::atomic<bool> violation{false};
  runtime::Harness h;
  h.spawn(1, "op", [&](std::stop_token) { sys.tos().set(); });
  for (int k = 2; k <= 4; ++k) {
    h.spawn(k, "op", [&](std::stop_token) {
      for (int i = 0; i < 25; ++i) {
        const bool before = one_seen.load();
        const int r = sys.tos().test();
        if (r == 1) one_seen = true;
        if (before && r == 0) violation = true;
      }
    });
  }
  h.start();
  h.join();
  EXPECT_FALSE(violation.load());
  EXPECT_TRUE(one_seen.load());  // Set completed, final tests must see it
}

INSTANTIATE_TEST_SUITE_P(Backends, TestOrSetAllBackends,
                         ::testing::Values(Backend::kVerifiable,
                                           Backend::kAuthenticated,
                                           Backend::kSticky),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kVerifiable:
                               return "Verifiable";
                             case Backend::kAuthenticated:
                               return "Authenticated";
                             default:
                               return "Sticky";
                           }
                         });

}  // namespace
}  // namespace swsig::core
