// Non-equivocating proposals with sticky registers (the paper's §1
// motivation for stickiness: "a Byzantine process could successively
// propose several different values to try to foil consensus").
//
// Each of n = 4 processes owns one sticky register holding its proposal.
// An equivocating Byzantine proposer tries to show different proposals to
// different observers by rewriting its echo register mid-protocol — and
// fails: all correct processes extract the same proposal vector, so any
// deterministic rule over it (here: minimum proposal wins) agrees.
#include <iostream>
#include <optional>
#include <thread>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"

using namespace swsig;

int main() {
  constexpr int kN = 4;
  constexpr int kF = 1;
  std::cout << "== non-equivocating proposals (n=4, f=1; p3 Byzantine) ==\n\n";

  runtime::FreeStepController ctrl;
  registers::Space space(ctrl);
  // One broadcast slot (seq 0) per proposer = one sticky register each.
  broadcast::StickyReliableBroadcast proposals(space, {kN, kF, 1});

  std::vector<std::jthread> helpers;
  for (int pid = 1; pid <= kN; ++pid) {
    helpers.emplace_back([&proposals, pid](std::stop_token st) {
      runtime::ThisProcess::Binder bind(pid);
      while (!st.stop_requested()) {
        if (!proposals.help_round()) std::this_thread::yield();
      }
    });
  }

  // Honest proposers.
  for (int pid : {1, 2, 4}) {
    runtime::ThisProcess::Binder bind(pid);
    proposals.broadcast(0, static_cast<broadcast::Value>(10 * pid));
    std::cout << "p" << pid << " proposes " << 10 * pid << "\n";
  }
  // Byzantine p3 tries to propose two different values (double proposal).
  {
    runtime::ThisProcess::Binder bind(3);
    proposals.broadcast(0, 5);
    proposals.broadcast(0, 99);  // equivocation attempt: sticky ⇒ no-op
    std::cout << "p3 proposes 5... and then tries to also propose 99\n\n";
  }

  // Every process extracts the proposal vector and decides (min rule).
  for (int pid = 1; pid <= kN; ++pid) {
    runtime::ThisProcess::Binder bind(pid);
    std::optional<broadcast::Value> decision;
    std::cout << "p" << pid << " sees proposals [";
    for (int proposer = 1; proposer <= kN; ++proposer) {
      std::optional<broadcast::Value> v;
      while (!(v = proposals.deliver(proposer, 0)))
        std::this_thread::yield();
      std::cout << (proposer > 1 ? ", " : "") << *v;
      if (!decision || *v < *decision) decision = *v;
    }
    std::cout << "] -> decides " << *decision << "\n";
  }

  std::cout << "\nAll correct processes saw ONE proposal from p3 and "
               "decided identically.\n";
  return 0;
}
