// The paper's closing corollary, as a running program: its registers work
// in message-passing systems with n > 3f, no signatures anywhere.
//
// Stack:  verifiable register (Algorithm 1)
//           └── emulated SWMR registers (MPRJ17-style echo/accept quorums)
//                 └── simulated asynchronous Byzantine network
#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "core/verifiable_register.hpp"
#include "msgpass/emulated_swmr.hpp"
#include "runtime/process.hpp"

using namespace swsig;

int main() {
  constexpr int kN = 4;
  constexpr int kF = 1;
  std::cout << "== verifiable register over message passing (n=4, f=1) ==\n\n";

  msgpass::EmulatedSpace space({.n = kN, .f = kF});
  using Reg = core::VerifiableRegister<int, msgpass::EmulatedSpace>;
  Reg::Config cfg;
  cfg.n = kN;
  cfg.f = kF;
  cfg.v0 = 0;
  Reg reg(space, cfg);

  std::atomic<bool> stop{false};
  std::vector<std::jthread> helpers;
  for (int pid = 1; pid <= kN; ++pid) {
    helpers.emplace_back([&, pid](std::stop_token st) {
      runtime::ThisProcess::Binder bind(pid);
      while (!st.stop_requested() && !stop.load()) {
        if (!reg.help_round()) std::this_thread::yield();
      }
    });
  }

  const auto msgs0 = space.network().messages_sent();
  {
    runtime::ThisProcess::Binder bind(1);
    reg.write(2025);
    reg.sign(2025);
  }
  std::cout << "p1 wrote and signed 2025 ("
            << space.network().messages_sent() - msgs0
            << " network messages so far)\n";

  {
    runtime::ThisProcess::Binder bind(2);
    std::cout << "p2: read() = " << reg.read()
              << ", verify(2025) = " << std::boolalpha << reg.verify(2025)
              << "\n";
  }
  {
    runtime::ThisProcess::Binder bind(3);
    std::cout << "p3: verify(2025) = " << reg.verify(2025)
              << "  (relay holds across the network)\n";
    std::cout << "p3: verify(9999) = " << reg.verify(9999)
              << "  (no forgeries)\n";
  }

  std::cout << "\ntotal network messages: "
            << space.network().messages_sent()
            << "\nEvery register access above was a quorum protocol over "
               "an asynchronous Byzantine network — and the register "
               "semantics survived intact.\n";
  stop = true;
  for (auto& t : helpers) t.request_stop();
  return 0;
}
