// Deterministic replay: the same seed reproduces the same interleaving —
// byte-for-byte — which is how this library debugs concurrency.
//
// The deterministic step controller serializes every register access and
// lets a seeded policy choose which process moves next. The trace hash
// fingerprints the schedule: equal seeds give equal hashes AND equal
// results; a different seed explores a genuinely different interleaving
// (where a verify may legitimately race the sign and return false).
#include <atomic>
#include <iostream>
#include <vector>

#include "core/system.hpp"
#include "core/verifiable_register.hpp"
#include "runtime/harness.hpp"
#include "runtime/schedule_policy.hpp"

using namespace swsig;
using Reg = core::VerifiableRegister<int>;

namespace {

struct RunResult {
  std::uint64_t trace_hash;
  std::vector<int> verifies;  // outcome of each reader's verify
};

RunResult run(std::uint64_t seed) {
  runtime::Harness h(
      {.deterministic = true,
       .policy = std::make_shared<runtime::RandomPolicy>(seed)});
  registers::Space space(h.controller());
  Reg reg(space, {.n = 4, .f = 1, .v0 = 0});
  std::atomic<int> ops_done{0};
  RunResult result{};

  h.spawn(1, "op", [&](std::stop_token) {
    reg.write(7);
    reg.sign(7);  // races the verifies below — the SCHEDULE decides
    ops_done.fetch_add(1);
  });
  for (int k : {2, 3}) {
    h.spawn(k, "op", [&](std::stop_token) {
      const bool ok = reg.verify(7);
      result.verifies.push_back(ok ? 1 : 0);  // serialized: safe
      ops_done.fetch_add(1);
    });
  }
  for (int pid = 1; pid <= 4; ++pid) {
    h.spawn(pid, "help", [&](std::stop_token) {
      while (ops_done.load() < 3) reg.help_round();
    });
  }
  h.start();
  h.join();
  result.trace_hash = h.trace_hash();
  return result;
}

void show(const char* label, const RunResult& r) {
  std::cout << label << ": trace=0x" << std::hex << r.trace_hash << std::dec
            << "  verifies=[";
  for (std::size_t i = 0; i < r.verifies.size(); ++i)
    std::cout << (i ? ", " : "") << r.verifies[i];
  std::cout << "]\n";
}

}  // namespace

int main() {
  std::cout << "== deterministic replay (verify races sign; n=4, f=1) ==\n\n";
  const RunResult a1 = run(7), a2 = run(7);
  show("seed 7, run 1", a1);
  show("seed 7, run 2", a2);
  std::cout << "identical: " << std::boolalpha
            << (a1.trace_hash == a2.trace_hash && a1.verifies == a2.verifies)
            << "\n\n";

  for (std::uint64_t seed : {8, 9, 10, 11}) {
    show(("seed " + std::to_string(seed)).c_str(), run(seed));
  }
  std::cout << "\nDifferent seeds explore different interleavings; any "
               "failing schedule is reproducible from its seed.\n";
  return 0;
}
