// Quickstart: the three register types in five minutes.
//
// Build & run:  ./build/examples/quickstart
//
// A system of n = 4 processes tolerating f = 1 Byzantine process. p1 is
// the writer of each register; p2..p4 are readers. The FreeSystem wrapper
// owns the background Help() threads every algorithm needs.
#include <cassert>
#include <iostream>

#include "core/authenticated_register.hpp"
#include "core/sticky_register.hpp"
#include "core/system.hpp"
#include "core/verifiable_register.hpp"

using namespace swsig;

int main() {
  std::cout << "== swsig quickstart (n=4, f=1) ==\n\n";

  // ---------------------------------------------------------- verifiable
  // Write and Sign are separate operations; Verify tells every reader —
  // forever — whether a value was signed.
  {
    using Reg = core::VerifiableRegister<int>;
    core::FreeSystem<Reg> sys(Reg::Config{.n = 4, .f = 1, .v0 = 0});

    sys.as(1, [](Reg& r) {
      r.write(7);                 // plain write: not yet "signed"
      r.write(8);
    });
    const bool before = sys.as(2, [](Reg& r) { return r.verify(7); });
    sys.as(1, [](Reg& r) {
      const auto res = r.sign(7);
      assert(res == core::SignResult::kSuccess);
      (void)res;
    });
    const bool after = sys.as(3, [](Reg& r) { return r.verify(7); });

    std::cout << "verifiable: verify(7) before sign = " << std::boolalpha
              << before << ", after sign = " << after
              << ", read() = " << sys.as(4, [](Reg& r) { return r.read(); })
              << "\n";
  }

  // -------------------------------------------------------- authenticated
  // Every Write is atomically "signed"; there is no unsigned gap.
  {
    using Reg = core::AuthenticatedRegister<int>;
    core::FreeSystem<Reg> sys(Reg::Config{.n = 4, .f = 1, .v0 = 0});

    sys.as(1, [](Reg& r) { r.write(41); });
    std::cout << "authenticated: read() = "
              << sys.as(2, [](Reg& r) { return r.read(); })
              << ", verify(41) = "
              << sys.as(3, [](Reg& r) { return r.verify(41); })
              << ", verify(99) = "
              << sys.as(3, [](Reg& r) { return r.verify(99); }) << "\n";
  }

  // --------------------------------------------------------------- sticky
  // The first written value is permanent: non-equivocation by
  // construction, even if the writer is Byzantine.
  {
    using Reg = core::StickyRegister<int>;
    core::FreeSystem<Reg> sys(Reg::Config{.n = 4, .f = 1});

    sys.as(1, [](Reg& r) {
      r.write(5);
      r.write(6);  // too late: the register is stuck at 5
    });
    const auto v = sys.as(2, [](Reg& r) { return r.read(); });
    std::cout << "sticky: first write 5, second write 6, read() = "
              << (v ? std::to_string(*v) : "⊥") << "\n";
  }

  std::cout << "\nAll three registers provide signature properties with no "
               "cryptography anywhere.\n";
  return 0;
}
