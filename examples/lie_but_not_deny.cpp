// "You can lie but not deny" — the paper's title, executed.
//
// A Byzantine writer writes a value, signs it, lets one reader verify it —
// and then erases every register it owns and denies everything. The
// whole point of the verifiable register: the denial FAILS. Every correct
// reader can still prove the writer signed the value, forever, without a
// single cryptographic signature in the system.
#include <iostream>

#include "byzantine/behaviors.hpp"
#include "core/system.hpp"
#include "core/verifiable_register.hpp"

using namespace swsig;
using Reg = core::VerifiableRegister<std::string>;

int main() {
  std::cout << "== you can lie but not deny (n=4, f=1; p1 Byzantine) ==\n\n";

  core::FreeSystem<Reg> sys(Reg::Config{.n = 4, .f = 1, .v0 = ""});

  // Act 1: p1 writes and signs a statement. (It can lie! The register
  // doesn't check truth — only authorship.)
  sys.as(1, [](Reg& r) {
    r.write("I will pay Bob 100 coins");
    r.sign("I will pay Bob 100 coins");
  });
  std::cout << "p1 wrote and signed: \"I will pay Bob 100 coins\"\n";

  // Act 2: p2 verifies it — the promise is now on the record.
  const bool seen =
      sys.as(2, [](Reg& r) { return r.verify("I will pay Bob 100 coins"); });
  std::cout << "p2 verified the promise: " << std::boolalpha << seen << "\n";

  // Act 3: p1 turns hostile — erases ALL of its own registers (allowed:
  // they are its write ports) and would now deny ever promising anything.
  sys.as(1, [](Reg& r) { byzantine::erase_verifiable_registers(r); });
  std::cout << "p1 erased all of its registers and denies everything...\n\n";

  // Act 4: every correct reader can still prove the promise was signed.
  for (int reader = 2; reader <= 4; ++reader) {
    const bool still = sys.as(reader, [](Reg& r) {
      return r.verify("I will pay Bob 100 coins");
    });
    std::cout << "p" << reader << ": verify(promise) = " << still << "\n";
  }

  // ...and a statement p1 never signed still verifies false for everyone.
  const bool forged =
      sys.as(3, [](Reg& r) { return r.verify("Bob owes me 100 coins"); });
  std::cout << "\nforged statement verifies: " << forged << "\n";
  std::cout << "\nThe lie was recorded; the denial failed. QED.\n";
  return 0;
}
