// Asset transfer without signatures: double-spend via equivocation is
// structurally impossible because transfers ride on sticky-register
// broadcast slots (the paper's non-equivocation application, §1/§8).
#include <iostream>
#include <thread>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"
#include "transfer/asset_transfer.hpp"

using namespace swsig;

int main() {
  constexpr int kN = 4;
  constexpr int kF = 1;
  std::cout << "== signature-free asset transfer (n=4, f=1) ==\n\n";

  runtime::FreeStepController ctrl;
  registers::Space space(ctrl);
  broadcast::StickyReliableBroadcast rb(space, {kN, kF, 4});
  transfer::AssetTransfer bank(rb,
                               {.n = kN, .initial_balance = 100,
                                .max_transfers = 4});

  std::vector<std::jthread> helpers;
  for (int pid = 1; pid <= kN; ++pid) {
    helpers.emplace_back([&rb, pid](std::stop_token st) {
      runtime::ThisProcess::Binder bind(pid);
      while (!st.stop_requested()) {
        if (!rb.help_round()) std::this_thread::yield();
      }
    });
  }

  auto balances = [&](const char* when) {
    runtime::ThisProcess::Binder bind(2);
    std::cout << when << ": ";
    for (int p = 1; p <= kN; ++p)
      std::cout << "p" << p << "=" << bank.balance_of(p) << "  ";
    std::cout << "\n";
  };

  balances("initial   ");

  {  // Honest payments.
    runtime::ThisProcess::Binder bind(1);
    bank.transfer(2, 40);
  }
  {
    runtime::ThisProcess::Binder bind(2);
    bank.transfer(3, 70);
  }
  balances("after pays");

  // Byzantine p4 attempts the classic double spend: the SAME sequence slot
  // carrying two different transfers of its whole balance.
  {
    runtime::ThisProcess::Binder bind(4);
    rb.broadcast(0, transfer::encode_transfer({1, 100}));
    rb.broadcast(0, transfer::encode_transfer({2, 100}));  // sticky: no-op
    std::cout << "\np4 broadcasts transfer(p1, 100) and ALSO transfer(p2, "
                 "100) under seq 0...\n";
  }
  balances("after dbl ");

  std::uint64_t total = 0;
  {
    runtime::ThisProcess::Binder bind(3);
    for (int p = 1; p <= kN; ++p) total += bank.balance_of(p);
  }
  std::cout << "\ntotal supply = " << total
            << " (conserved; only ONE of the two conflicting spends "
               "landed)\n";
  return 0;
}
