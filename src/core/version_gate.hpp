// Free-mode fast-path helpers shared by the register algorithms (Algorithms
// 1–3): version-gated polling.
//
// Substrate registers may expose a monotone version() ("completed writes");
// the shared-memory registers::Space does, the message-passing emulation
// does not. When available AND the space runs in free mode, pollers use two
// optimizations that are observationally equivalent to the paper-literal
// loops (an unchanged version implies an unchanged value) but skip metered
// register re-reads:
//
//  * VersionedCache — per-register ⟨value, version⟩ cache for the Verify/
//    Read wait loops: a retry pass re-reads only registers whose version
//    changed instead of re-collecting all n from scratch.
//  * aggregate version sums in help_round() — a helper first sums the
//    versions of the registers that could create work for it and returns
//    immediately when the sum is unchanged since its last completed round.
//
// Deterministic mode never takes these paths: skipping a read changes the
// step sequence, and deterministic traces must stay byte-identical
// (pinned by deterministic_schedule_test).
#pragma once

#include <concepts>
#include <cstdint>
#include <vector>

namespace swsig::core::detail {

// Cache of the last ⟨value, version⟩ read from registers 1..n. Disabled
// (never consulted) when constructed with n = 0.
template <typename Value>
class VersionedCache {
 public:
  explicit VersionedCache(int n)
      : entries_(n > 0 ? static_cast<std::size_t>(n) + 1 : 0) {}

  bool enabled() const { return !entries_.empty(); }

  // Returns register j's current value, re-reading it only if its version
  // moved since the cached read. The version is sampled *before* the read,
  // so a write racing the read at worst marks the cached value stale one
  // pass early — never hides a newer value forever.
  template <typename Reg>
  const Value& fetch(int j, Reg& reg) {
    Entry& e = entries_[static_cast<std::size_t>(j)];
    if constexpr (requires {
                    { reg.version() } -> std::convertible_to<std::uint64_t>;
                  }) {
      const std::uint64_t ver = reg.version();
      if (!e.valid || ver != e.version) {
        e.version = ver;
        e.value = reg.read();
        e.valid = true;
      }
    } else {
      e.value = reg.read();  // substrate without versions: plain read
    }
    return e.value;
  }

 private:
  struct Entry {
    Value value{};
    std::uint64_t version = 0;
    bool valid = false;
  };
  std::vector<Entry> entries_;
};

// Space-wide write-epoch gate for composite objects whose helping work can
// only arise from *some* register write in their space (AtomicSnapshot,
// the ReliableBroadcast backends, SignedStickyRegister). One seen-epoch
// slot per process; each process's helper thread touches only its own.
//
// Usage in a help_round() bound as `pid` (free mode only — callers gate on
// space.free_mode()):
//   std::uint64_t epoch = 0;
//   if (gate && !epoch_gate_.changed(space, pid, epoch)) return false;
//   ... full helping round ...
//   if (gate) epoch_gate_.record(pid, epoch);
// The epoch is sampled before the round's reads, so a write landing
// mid-round is picked up by the next call; the caller's own writes bump
// the epoch, which costs one extra (idle) round before quiescing.
class SpaceEpochGate {
 public:
  explicit SpaceEpochGate(int n) : seen_(static_cast<std::size_t>(n) + 1) {}

  // Samples the space's write epoch into `epoch`; false when it is
  // unchanged since record() for this pid (caller should skip the round).
  template <typename SpaceT>
  bool changed(SpaceT& space, int pid, std::uint64_t& epoch) {
    epoch = space.write_epoch();
    const Seen& s = seen_[static_cast<std::size_t>(pid)];
    return !s.valid || epoch != s.epoch;
  }

  void record(int pid, std::uint64_t epoch) {
    seen_[static_cast<std::size_t>(pid)] = {epoch, true};
  }

 private:
  struct Seen {
    std::uint64_t epoch = 0;
    bool valid = false;
  };
  std::vector<Seen> seen_;
};

}  // namespace swsig::core::detail
