// SWMR multivalued *verifiable register* — Algorithm 1 of the paper.
//
// Sequential specification (Definition 10): Write/Read behave like a normal
// SWMR register; Sign(v) by the writer succeeds iff v was previously
// written; Verify(v) by a reader returns true iff a successful Sign(v)
// happened before it. The implementation is Byzantine linearizable and all
// operations of correct processes terminate, for n > 3f (Theorem 14).
//
// Shared state (paper, Algorithm 1 header):
//   R_i   (every p_i)       SWMR set-of-values register, initially ∅.
//                           R_1 doubles as the writer's "signed" set; R_j
//                           (j>1) is p_j's witness set.
//   R_ij  (every p_i, every reader p_j)
//                           SWSR register readable by p_j, initially ⟨∅,0⟩;
//                           p_i's helping channel to p_j.
//   R*    (writer)          SWMR value register, initially v0.
//   C_k   (every reader)    SWMR round counter, initially 0.
//
// Code comments "L<k>" refer to the paper's Algorithm 1 line numbers. Layer
// invariants and deviations from the paper: docs/ARCHITECTURE.md (§core,
// design notes 1-5).
#pragma once

#include <concepts>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "core/version_gate.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"

namespace swsig::core {

template <RegisterValue V, typename SpaceT = registers::Space>
class VerifiableRegister {
 public:
  // Register types of the underlying substrate (shared-memory Space or
  // msgpass::EmulatedSpace) — the algorithm is substrate-generic.
  template <typename T>
  using SwmrT = typename SpaceT::template SwmrFor<T>;
  template <typename T>
  using SwsrT = typename SpaceT::template SwsrFor<T>;

  using Value = V;
  using ValueSet = std::set<V>;
  // ⟨r_j, c_j⟩ tuple stored in the helping channels R_jk.
  using HelpTuple = std::pair<ValueSet, RoundCounter>;
  using ChannelCache = detail::VersionedCache<HelpTuple>;

  // The free-mode fast paths (version-gated helper wakeup, cached channel
  // collection) need per-register versions and a free_mode() flag from the
  // substrate; compiled out for substrates without them (msgpass).
  static constexpr bool kVersionGate =
      requires(SpaceT& s, SwsrT<HelpTuple>& c, SwmrT<RoundCounter>& r) {
        { s.free_mode() } -> std::convertible_to<bool>;
        { c.version() } -> std::convertible_to<std::uint64_t>;
        { r.version() } -> std::convertible_to<std::uint64_t>;
      };

  struct Config {
    int n = 4;          // total number of processes p1..pn
    int f = 1;          // tolerated Byzantine processes; requires n > 3f
    V v0 = V{};         // initial register value
    bool allow_suboptimal = false;  // permit n <= 3f (experiment T5 only)
  };

  VerifiableRegister(SpaceT& space, Config config)
      : space_(&space), cfg_(std::move(config)) {
    check_resilience(cfg_.n, cfg_.f, cfg_.allow_suboptimal);
    const int n = cfg_.n;
    witness_.resize(n + 1, nullptr);
    channel_.assign(n + 1, std::vector<SwsrT<HelpTuple>*>(n + 1));
    round_.resize(n + 1, nullptr);
    help_state_.resize(n + 1);
    verified_.resize(n + 1);
    for (int i = 1; i <= n; ++i) {
      witness_[i] = &space.template make_swmr<ValueSet>(i, {}, "R" + std::to_string(i));
      for (int j = 2; j <= n; ++j) {
        channel_[i][j] = &space.template make_swsr<HelpTuple>(
            i, j, {{}, 0},
            "R" + std::to_string(i) + "," + std::to_string(j));
      }
    }
    last_value_ = &space.template make_swmr<V>(1, cfg_.v0, "R*");
    for (int k = 2; k <= n; ++k) {
      round_[k] = &space.template make_swmr<RoundCounter>(k, 0,
                                                 "C" + std::to_string(k));
    }
  }

  const Config& config() const { return cfg_; }

  // ----------------------------------------------------------- writer ops

  // Write(v) — L1-3. Caller must be bound as p1.
  void write(const V& v) {
    require_self(1, "Write");
    last_value_->write(v);    // L1: R* <- v
    written_.insert(v);       // L2: r* <- r* ∪ {v}  (writer-local)
  }                           // L3: return done

  // Sign(v) — L4-8. Caller must be bound as p1.
  SignResult sign(const V& v) {
    require_self(1, "Sign");
    if (written_.contains(v)) {                           // L4: v ∈ r*?
      witness_[1]->update([&](ValueSet& r1) { r1.insert(v); });  // L5
      return SignResult::kSuccess;                        // L6
    }
    return SignResult::kFail;                             // L7-8
  }

  // ----------------------------------------------------------- reader ops

  // Read() — L9-10. Caller must be bound as a reader p2..pn.
  V read() {
    const int k = require_reader("Read");
    (void)k;
    return last_value_->read();  // L9-10: v <- R*; return v
  }

  // Verify(v) — L11-24. Caller must be bound as a reader p2..pn.
  // Termination relies on helper threads running help_round() for all
  // correct processes (Theorem 43).
  //
  // Free-mode fast path: the wait loop caches each helping channel's last
  // ⟨tuple, version⟩ and only re-reads a channel whose version changed —
  // an unchanged version means a fresh read would return the same tuple,
  // so skipping it is observationally equivalent while collapsing the
  // O(n)-reads-per-retry spin to O(changed). Deterministic mode keeps the
  // paper-literal re-read loop (the step sequence must be reproducible).
  bool verify(const V& v) {
    const int k = require_reader("Verify");
    // Free-mode fast paths (gated off in deterministic mode — the pinned
    // traces pin the paper-literal step sequence):
    //  * per-process verified cache: Verify(v)=true means a successful
    //    Sign(v) happened before, which is permanent — a later Verify(v)
    //    by the same process may return true without re-running the
    //    protocol. Negative results are never cached (a Sign may land).
    //  * witness quorum scan: if >= n−f witness registers already contain
    //    v, return true without a helper round trip. Of those, >= n−2f >=
    //    f+1 are honest, and an honest p_j inserts v only after seeing
    //    v ∈ R_1 or f+1 existing witnesses — by induction on insertion
    //    order the first honest adopter saw the writer's signed set, so
    //    Sign(v) happened. This is the same attestation condition L23
    //    certifies, read from the registers the helpers would relay.
    if (fast_path()) {
      auto& seen = verified_[static_cast<std::size_t>(k)];
      if (seen.contains(v)) return true;
      if (witness_scan(v)) {
        seen.insert(v);
        return true;
      }
    }
    std::set<int> set0, set1;  // L11
    ChannelCache cache(fast_path() ? cfg_.n : 0);
    for (;;) {                 // L12: while true
      // L13: Ck <- Ck + 1 (single owner step; see Swmr::update).
      const RoundCounter ck =
          round_[k]->update([](RoundCounter& c) { ++c; });
      // L14-17: repeat reading R_jk of every p_j ∉ set1 ∪ set0 until some
      // such p_j has c_j >= Ck. We take the smallest satisfying pid of each
      // pass (the paper allows any).
      int chosen = 0;
      HelpTuple chosen_tuple;
      while (chosen == 0) {
        for (int j = 1; j <= cfg_.n; ++j) {
          if (set0.contains(j) || set1.contains(j)) continue;
          if (cache.enabled()) {
            const HelpTuple& t = cache.fetch(j, *channel_[j][k]);
            if (t.second >= ck) {
              chosen = j;
              chosen_tuple = t;
              break;
            }
            continue;
          }
          HelpTuple t = channel_[j][k]->read();  // L16
          if (t.second >= ck && chosen == 0) {   // L17 (∃ p_j: c_j >= Ck)
            chosen = j;
            chosen_tuple = std::move(t);
          }
        }
        if (chosen == 0) {
          // The witness quorum may complete while we wait on helpers.
          if (fast_path() && witness_scan(v)) {
            verified_[static_cast<std::size_t>(k)].insert(v);
            return true;
          }
          std::this_thread::yield();  // free-mode politeness
        }
      }
      if (chosen_tuple.first.contains(v)) {  // L18: v ∈ r_j
        set1.insert(chosen);                 // L19
        set0.clear();                        // L20
      } else {                               // L21: v ∉ r_j
        set0.insert(chosen);                 // L22
      }
      if (static_cast<int>(set1.size()) >= cfg_.n - cfg_.f) {  // L23
        if (fast_path()) verified_[static_cast<std::size_t>(k)].insert(v);
        return true;
      }
      if (static_cast<int>(set0.size()) > cfg_.f)            // L24
        return false;
    }
  }

  // ------------------------------------------------------------- helping

  // One iteration of the while-loop body of Help() — L26-36. Runs as the
  // process the calling thread is bound to (any of p1..pn). Returns true if
  // it served at least one asker (used for idle backoff by the runner).
  bool help_round() {
    const int j = runtime::ThisProcess::id();
    require_valid_pid(j, "Help");
    HelpState& hs = help_state_[static_cast<std::size_t>(j)];

    // Version-gated wakeup (free mode): new work for a helper can only
    // arrive through a reader's round counter, so if the sum of the round
    // counters' versions is unchanged since our last completed round, L28's
    // asker set is empty — skip the O(n) collection without a single
    // metered read. The aggregate is sampled before the reads below, so a
    // counter bumped mid-round is picked up on the next call.
    const bool gate = fast_path();
    std::uint64_t agg = 0;
    if (gate) {
      for (int k = 2; k <= cfg_.n; ++k) agg += round_version(k);
      if (hs.agg_valid && agg == hs.round_agg) return false;
    }

    // L27: read every reader's round counter.
    std::map<int, RoundCounter> ck;
    for (int k = 2; k <= cfg_.n; ++k) ck[k] = round_[k]->read();
    // L28: askers = readers whose counter increased since we last helped.
    std::vector<int> askers;
    for (int k = 2; k <= cfg_.n; ++k)
      if (ck[k] > hs.prev_ck[k]) askers.push_back(k);
    if (askers.empty()) {  // L29
      if (gate) hs.record_agg(agg);
      return false;
    }

    // L30: read every witness register.
    std::vector<ValueSet> r(static_cast<std::size_t>(cfg_.n) + 1);
    for (int i = 1; i <= cfg_.n; ++i)
      r[static_cast<std::size_t>(i)] = witness_[i]->read();

    // L31-32: become a witness of v if the writer signed v (v ∈ r1) or at
    // least f+1 processes are already witnesses of v.
    ValueSet candidates;
    for (int i = 1; i <= cfg_.n; ++i)
      candidates.insert(r[static_cast<std::size_t>(i)].begin(),
                        r[static_cast<std::size_t>(i)].end());
    for (const V& v : candidates) {
      int count = 0;
      for (int i = 1; i <= cfg_.n; ++i)
        if (r[static_cast<std::size_t>(i)].contains(v)) ++count;
      if (r[1].contains(v) || count >= cfg_.f + 1) {
        witness_[j]->update([&](ValueSet& rj) { rj.insert(v); });  // L32
      }
    }

    // L33: r_j <- R_j.
    const ValueSet rj = witness_[j]->read();
    // L34-36: answer each asker and remember the round we served.
    for (int k : askers) {
      channel_[j][k]->write({rj, ck[k]});  // L35
      hs.prev_ck[k] = ck[k];               // L36
    }
    if (gate) hs.record_agg(agg);
    return true;
  }

  // --------------------------------------------------- fault injection API

  // Raw handles to this instance's shared registers. Byzantine behaviors
  // (src/byzantine) use these to mount the attacks from the paper; port
  // enforcement still applies, so a behavior bound as p_i can only write
  // p_i's registers — exactly the model's adversary.
  struct Raw {
    std::vector<SwmrT<ValueSet>*>* witness;  // R_i, index by pid
    std::vector<std::vector<SwsrT<HelpTuple>*>>* channel;  // R_ij
    SwmrT<V>* last_value;                    // R*
    std::vector<SwmrT<RoundCounter>*>* round;  // C_k
  };
  Raw raw() { return Raw{&witness_, &channel_, last_value_, &round_}; }

 private:
  struct HelpState {
    std::map<int, RoundCounter> prev_ck;  // L25 (defaults to 0)
    // Aggregate round-counter version at the last completed help round.
    std::uint64_t round_agg = 0;
    bool agg_valid = false;
    void record_agg(std::uint64_t agg) {
      round_agg = agg;
      agg_valid = true;
    }
  };

  // True iff >= n−f witness registers currently contain v.
  bool witness_scan(const V& v) {
    int count = 0;
    for (int i = 1; i <= cfg_.n; ++i)
      if (witness_[i]->read().contains(v) && ++count >= cfg_.n - cfg_.f)
        return true;
    return false;
  }

  // True when the version-gated fast paths may be used: substrate supports
  // them (kVersionGate) and the space runs free-mode real concurrency.
  bool fast_path() const {
    if constexpr (kVersionGate)
      return space_->free_mode();
    else
      return false;
  }

  std::uint64_t round_version(int k) const {
    if constexpr (kVersionGate)
      return round_[static_cast<std::size_t>(k)]->version();
    else
      return 0;
  }

  void require_valid_pid(int pid, const char* op) const {
    if (pid < 1 || pid > cfg_.n)
      throw std::logic_error(std::string(op) +
                             " requires a thread bound to p1..pn");
  }
  void require_self(int pid, const char* op) const {
    if (runtime::ThisProcess::id() != pid)
      throw std::logic_error(std::string(op) + " may only be called by p" +
                             std::to_string(pid));
  }
  int require_reader(const char* op) const {
    const int k = runtime::ThisProcess::id();
    if (k < 2 || k > cfg_.n)
      throw std::logic_error(std::string(op) +
                             " may only be called by a reader p2..pn");
    return k;
  }

  SpaceT* space_;
  Config cfg_;

  // Shared registers (owned by the Space; raw pointers are stable).
  std::vector<SwmrT<ValueSet>*> witness_;                // R_i
  std::vector<std::vector<SwsrT<HelpTuple>*>> channel_;  // R_ij
  SwmrT<V>* last_value_ = nullptr;                       // R*
  std::vector<SwmrT<RoundCounter>*> round_;              // C_k

  // Writer-local state (touched only by p1's operation thread).
  ValueSet written_;  // r*

  // Helper-local state, one slot per process (touched only by that
  // process's helper thread).
  std::vector<HelpState> help_state_;

  // Per-process positive-verify memo (touched only by that process's
  // operation thread; free mode only). Sound because Verify(v)=true is
  // permanent — see verify().
  std::vector<ValueSet> verified_;
};

}  // namespace swsig::core
