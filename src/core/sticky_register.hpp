// SWMR multivalued *sticky register* — Algorithm 3 of the paper.
//
// Sequential specification (Definition 21): the register is initialized to
// ⊥; a Read returns either ⊥ (no Write before it) or the value of the
// *first* Write. Once any correct process reads v ≠ ⊥, every later Read by
// any correct process returns v — the uniqueness / non-equivocation
// property — even if the writer is Byzantine. Byzantine linearizable and
// terminating for n > 3f (Theorem 25).
//
// The witness policy here is deliberately stricter than Algorithm 1's
// (paper §9.1): a process first *echoes* the first value it sees in E_1
// into its own E_j, becomes a witness only after seeing n−f matching
// echoes (or f+1 matching witnesses while helping), and the writer's
// Write(v) returns only after n−f witnesses hold v.
//
// Code comments "L<k>" refer to the paper's Algorithm 3 line numbers. Layer
// invariants and deviations from the paper: docs/ARCHITECTURE.md (§core,
// design notes 1-5).
#pragma once

#include <concepts>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "core/version_gate.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"

namespace swsig::core {

template <RegisterValue V, typename SpaceT = registers::Space>
class StickyRegister {
 public:
  // Register types of the underlying substrate (shared-memory Space or
  // msgpass::EmulatedSpace) — the algorithm is substrate-generic.
  template <typename T>
  using SwmrT = typename SpaceT::template SwmrFor<T>;
  template <typename T>
  using SwsrT = typename SpaceT::template SwsrFor<T>;

  using Value = V;
  using Slot = std::optional<V>;  // ⊥ is std::nullopt
  using HelpTuple = std::pair<Slot, RoundCounter>;  // ⟨u_j, c_j⟩
  using ChannelCache = detail::VersionedCache<HelpTuple>;

  // See VerifiableRegister::kVersionGate — free-mode fast paths, compiled
  // out for substrates without versions.
  static constexpr bool kVersionGate =
      requires(SpaceT& s, SwsrT<HelpTuple>& c, SwmrT<Slot>& e,
               SwmrT<RoundCounter>& r) {
        { s.free_mode() } -> std::convertible_to<bool>;
        { c.version() } -> std::convertible_to<std::uint64_t>;
        { e.version() } -> std::convertible_to<std::uint64_t>;
        { r.version() } -> std::convertible_to<std::uint64_t>;
      };

  struct Config {
    int n = 4;
    int f = 1;
    bool allow_suboptimal = false;
  };

  StickyRegister(SpaceT& space, Config config)
      : space_(&space), cfg_(std::move(config)) {
    check_resilience(cfg_.n, cfg_.f, cfg_.allow_suboptimal);
    const int n = cfg_.n;
    echo_.resize(n + 1, nullptr);
    witness_.resize(n + 1, nullptr);
    channel_.assign(n + 1, std::vector<SwsrT<HelpTuple>*>(n + 1));
    round_.resize(n + 1, nullptr);
    help_state_.resize(n + 1);
    for (int i = 1; i <= n; ++i) {
      echo_[i] = &space.template make_swmr<Slot>(i, std::nullopt,
                                        "E" + std::to_string(i));
      witness_[i] = &space.template make_swmr<Slot>(i, std::nullopt,
                                           "R" + std::to_string(i));
      for (int j = 2; j <= n; ++j)
        channel_[i][j] = &space.template make_swsr<HelpTuple>(
            i, j, {std::nullopt, 0},
            "R" + std::to_string(i) + "," + std::to_string(j));
    }
    for (int k = 2; k <= n; ++k)
      round_[k] =
          &space.template make_swmr<RoundCounter>(k, 0, "C" + std::to_string(k));
  }

  const Config& config() const { return cfg_; }

  // ----------------------------------------------------------- writer op

  // Write(v) — L1-6. Caller must be bound as p1. Returns only once n−f
  // processes are witnesses of v (see §9.1 for why the wait is necessary).
  // Termination relies on helpers running for all correct processes.
  void write(const V& v) {
    require_self(1, "Write");
    if (echo_[1]->read().has_value()) return;  // L1: already wrote once
    echo_[1]->write(Slot{v});                  // L2: E1 <- v
    // Free mode: re-read only witness slots whose version moved while
    // awaiting the quorum (observationally equivalent, fewer metered reads).
    detail::VersionedCache<Slot> cache(fast_path() ? cfg_.n : 0);
    for (;;) {                                 // L3-5: await n−f witnesses
      int count = 0;
      for (int i = 1; i <= cfg_.n; ++i) {
        const Slot ri = cache.enabled() ? cache.fetch(i, *witness_[i])
                                        : witness_[i]->read();  // L4
        if (ri.has_value() && *ri == v) ++count;
      }
      if (count >= cfg_.n - cfg_.f) return;    // L5-6
      std::this_thread::yield();
    }
  }

  // ----------------------------------------------------------- reader op

  // Read() — L7-22. Caller must be bound as a reader p2..pn. Returns the
  // unique written value, or std::nullopt for ⊥.
  Slot read() {
    const int k = require_reader("Read");
    // Free-mode fast path: scan the witness registers directly. If some v
    // holds >= n−f witness slots, return it without entering the round
    // protocol (no counter bump, no helper wakeup). Sound because at most
    // one value can ever reach n−f witness slots: two such quorums
    // intersect in >= n−2f >= f+1 processes, hence in an honest process,
    // and honest witness slots are write-once — so a second value's quorum
    // is impossible at any time. The value returned satisfies exactly the
    // L20-21 return condition (n−f distinct processes witnessing v), read
    // from the same registers the helpers would have relayed. ⊥ results
    // MUST still use the full protocol: concluding "no write" requires
    // f+1 distinct processes asserting ⊥ *after* the read began (L22),
    // which only the round counter provides.
    if (fast_path()) {
      if (Slot v = witness_scan(); v.has_value()) return v;
    }
    std::set<int> set_bot;       // set⊥  — L7
    std::map<int, V> setval;     // setval as pj -> value
    // Free-mode cached channel collection — see VerifiableRegister::verify.
    ChannelCache cache(fast_path() ? cfg_.n : 0);
    for (;;) {                   // L8
      const RoundCounter ck =
          round_[k]->update([](RoundCounter& c) { ++c; });  // L9
      // L10: S = processes in neither set.
      // L11-14: repeat reading R_jk of every p_j ∈ S until some c_j >= Ck.
      int chosen = 0;
      HelpTuple chosen_tuple;
      while (chosen == 0) {
        for (int j = 1; j <= cfg_.n; ++j) {
          if (set_bot.contains(j) || setval.contains(j)) continue;
          if (cache.enabled()) {
            const HelpTuple& t = cache.fetch(j, *channel_[j][k]);
            if (t.second >= ck) {
              chosen = j;
              chosen_tuple = t;
              break;
            }
            continue;
          }
          HelpTuple t = channel_[j][k]->read();  // L13
          if (t.second >= ck && chosen == 0) {   // L14
            chosen = j;
            chosen_tuple = std::move(t);
          }
        }
        if (chosen == 0) {
          // While waiting on helpers, the witness quorum may complete —
          // the scan's soundness argument is position-independent.
          if (fast_path()) {
            if (Slot v = witness_scan(); v.has_value()) return v;
          }
          std::this_thread::yield();
        }
      }
      if (chosen_tuple.first.has_value()) {          // L15: u_j != ⊥
        setval.emplace(chosen, *chosen_tuple.first); // L16
        set_bot.clear();                             // L17
      } else {                                       // L18
        set_bot.insert(chosen);                      // L19
      }
      // L20-21: some value witnessed by n−f processes in setval?
      std::map<V, int> tally;
      for (const auto& [pj, u] : setval) ++tally[u];
      for (const auto& [u, cnt] : tally)
        if (cnt >= cfg_.n - cfg_.f) return Slot{u};
      if (static_cast<int>(set_bot.size()) > cfg_.f)  // L22
        return std::nullopt;
    }
  }

  // ------------------------------------------------------------- helping

  // One iteration of the while-loop body of Help() — L24-40.
  bool help_round() {
    const int j = runtime::ThisProcess::id();
    if (j < 1 || j > cfg_.n)
      throw std::logic_error("Help requires a thread bound to p1..pn");
    HelpState& hs = help_state_[static_cast<std::size_t>(j)];

    // Version-gated wakeup (free mode). Unlike Algorithms 1-2, the sticky
    // helper does echo/witness work (L25-30) even without askers, so the
    // aggregate covers every input register of the round: echoes, witness
    // slots, and round counters. If none changed since our last completed
    // round, re-running the round would repeat the identical decisions and
    // writes we already made — skip it. Our own writes during a round bump
    // the aggregate, which costs at most one extra (idle) round before the
    // state quiesces.
    //
    // Once this helper has both echoed and witnessed, L25-30 and L34-36
    // are permanent no-ops (its slots are write-once and already set), so
    // the only inputs that can still demand work are the round counters —
    // the aggregate shrinks from 3n−1 version reads to n−1. The helper
    // keeps serving askers forever; settling only prunes the wakeup scan.
    const bool gate = fast_path();
    std::uint64_t agg = 0;
    if (gate) {
      const bool settled_now =
          hs.settled ||
          (echo_[j]->read().has_value() && witness_[j]->read().has_value());
      if (settled_now != hs.settled) {
        hs.settled = settled_now;
        hs.agg_valid = false;  // aggregate composition changed
      }
      if (!hs.settled)
        for (int i = 1; i <= cfg_.n; ++i)
          agg += slot_version(echo_, i) + slot_version(witness_, i);
      for (int k = 2; k <= cfg_.n; ++k) agg += round_version(k);
      if (hs.agg_valid && agg == hs.round_agg) return false;
    }

    // L25-27: echo the first value seen in E1. The conditional update keeps
    // this race-free against p1's own Write (see Swmr::update). Writing ⊥
    // over ⊥ would be a semantic no-op but still bumps the register version
    // and space epoch, waking every helper of every register in the space —
    // with E1 still ⊥ that feedback loop makes idle helpers churn forever.
    // Skip the store until there is a value to echo.
    if (!echo_[j]->read().has_value()) {
      const Slot e1 = echo_[1]->read();  // L26
      if (e1.has_value()) {
        echo_[j]->update([&](Slot& ej) {  // L27
          if (!ej.has_value()) ej = e1;
        });
      }
    }

    // L28-30: become a witness of v on n−f matching echoes.
    if (!witness_[j]->read().has_value()) {
      std::map<V, int> tally;
      for (int i = 1; i <= cfg_.n; ++i) {
        const Slot ei = echo_[i]->read();  // L29
        if (ei.has_value()) ++tally[*ei];
      }
      for (const auto& [v, cnt] : tally) {
        if (cnt >= cfg_.n - cfg_.f) {      // L30
          witness_[j]->update([&](Slot& rj) {
            if (!rj.has_value()) rj = v;
          });
          break;
        }
      }
    }

    // L31-32: find askers.
    std::map<int, RoundCounter> ck;
    for (int k = 2; k <= cfg_.n; ++k) ck[k] = round_[k]->read();
    std::vector<int> askers;
    for (int k = 2; k <= cfg_.n; ++k)
      if (ck[k] > hs.prev_ck[k]) askers.push_back(k);
    if (askers.empty()) {  // L33
      if (gate) hs.record_agg(agg);
      return false;
    }

    // L34-36: second chance to witness, via f+1 matching witnesses.
    if (!witness_[j]->read().has_value()) {
      std::map<V, int> tally;
      for (int i = 1; i <= cfg_.n; ++i) {
        const Slot ri = witness_[i]->read();  // L35
        if (ri.has_value()) ++tally[*ri];
      }
      for (const auto& [v, cnt] : tally) {
        if (cnt >= cfg_.f + 1) {              // L36
          witness_[j]->update([&](Slot& rj) {
            if (!rj.has_value()) rj = v;
          });
          break;
        }
      }
    }

    const Slot rj = witness_[j]->read();  // L37
    // L38-40: answer each asker.
    for (int k : askers) {
      channel_[j][k]->write({rj, ck[k]});  // L39
      hs.prev_ck[k] = ck[k];               // L40
    }
    if (gate) hs.record_agg(agg);
    return true;
  }

  // --------------------------------------------------- fault injection API
  struct Raw {
    std::vector<SwmrT<Slot>*>* echo;     // E_i
    std::vector<SwmrT<Slot>*>* witness;  // R_i
    std::vector<std::vector<SwsrT<HelpTuple>*>>* channel;  // R_ij
    std::vector<SwmrT<RoundCounter>*>* round;  // C_k
  };
  Raw raw() { return Raw{&echo_, &witness_, &channel_, &round_}; }

 private:
  struct HelpState {
    std::map<int, RoundCounter> prev_ck;  // L23
    std::uint64_t round_agg = 0;  // aggregate version at last completed round
    bool agg_valid = false;
    bool settled = false;  // own echo+witness set; agg is round counters only
    void record_agg(std::uint64_t agg) {
      round_agg = agg;
      agg_valid = true;
    }
  };

  // Free-mode quorum scan over the witness registers; Slot{v} iff some v
  // holds >= n−f slots right now (see read() for the soundness argument).
  Slot witness_scan() {
    std::map<V, int> tally;
    for (int i = 1; i <= cfg_.n; ++i) {
      const Slot ri = witness_[i]->read();
      if (ri.has_value() && ++tally[*ri] >= cfg_.n - cfg_.f) return ri;
    }
    return std::nullopt;
  }

  bool fast_path() const {
    if constexpr (kVersionGate)
      return space_->free_mode();
    else
      return false;
  }

  std::uint64_t round_version(int k) const {
    if constexpr (kVersionGate)
      return round_[static_cast<std::size_t>(k)]->version();
    else
      return 0;
  }

  std::uint64_t slot_version(const std::vector<SwmrT<Slot>*>& regs,
                             int i) const {
    if constexpr (kVersionGate)
      return regs[static_cast<std::size_t>(i)]->version();
    else
      return 0;
  }

  void require_self(int pid, const char* op) const {
    if (runtime::ThisProcess::id() != pid)
      throw std::logic_error(std::string(op) + " may only be called by p" +
                             std::to_string(pid));
  }
  int require_reader(const char* op) const {
    const int k = runtime::ThisProcess::id();
    if (k < 2 || k > cfg_.n)
      throw std::logic_error(std::string(op) +
                             " may only be called by a reader p2..pn");
    return k;
  }

  SpaceT* space_;
  Config cfg_;

  std::vector<SwmrT<Slot>*> echo_;     // E_i
  std::vector<SwmrT<Slot>*> witness_;  // R_i
  std::vector<std::vector<SwsrT<HelpTuple>*>> channel_;  // R_ij
  std::vector<SwmrT<RoundCounter>*> round_;  // C_k

  std::vector<HelpState> help_state_;
};

}  // namespace swsig::core
