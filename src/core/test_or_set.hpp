// Test-or-set object (paper §10, Definition 26) and its three wait-free
// implementations from the registers of this library (Observation 30).
//
// A test-or-set is a register initialized to 0 that a single process (the
// *setter*) can set to 1 and that other processes (*testers*) can test:
// Test returns 1 iff a Set occurred before it. The paper uses this object
// to prove the n > 3f bound optimal (Theorem 29 / 31): it cannot be
// implemented from plain SWMR registers when 3 <= n <= 3f, but it trivially
// can from any one of the three signature-property registers.
//
// The attack side of that argument is mechanized in byzantine/reset_attack;
// see docs/ARCHITECTURE.md (§byzantine) for how the pieces fit.
#pragma once

#include <cstdint>
#include <memory>

#include "core/authenticated_register.hpp"
#include "core/sticky_register.hpp"
#include "core/types.hpp"
#include "core/verifiable_register.hpp"

namespace swsig::core {

// One-shot test-or-set interface. Set is called by the setter (p1 in all
// the register-based implementations below); Test by any tester (p2..pn).
class TestOrSet {
 public:
  virtual ~TestOrSet() = default;
  virtual void set() = 0;
  virtual int test() = 0;
};

// From a verifiable register initialized to 0:
//   Set  = Write(1); Sign(1).
//   Test = Verify(1) ? 1 : 0.
// Linearization: Set at its Sign(1), Test at its Verify(1). (§10)
class TestOrSetFromVerifiable final : public TestOrSet {
 public:
  TestOrSetFromVerifiable(registers::Space& space,
                          VerifiableRegister<int>::Config cfg)
      : reg_(space, [&] {
          cfg.v0 = 0;
          return cfg;
        }()) {}

  void set() override {
    reg_.write(1);
    (void)reg_.sign(1);
  }
  int test() override { return reg_.verify(1) ? 1 : 0; }

  VerifiableRegister<int>& reg() { return reg_; }

 private:
  VerifiableRegister<int> reg_;
};

// From an authenticated register initialized to 0:
//   Set  = Write(1).
//   Test = Verify(1) ? 1 : 0.
class TestOrSetFromAuthenticated final : public TestOrSet {
 public:
  TestOrSetFromAuthenticated(registers::Space& space,
                             AuthenticatedRegister<int>::Config cfg)
      : reg_(space, [&] {
          cfg.v0 = 0;
          return cfg;
        }()) {}

  void set() override { reg_.write(1); }
  int test() override { return reg_.verify(1) ? 1 : 0; }

  AuthenticatedRegister<int>& reg() { return reg_; }

 private:
  AuthenticatedRegister<int> reg_;
};

// From a sticky register initialized to ⊥:
//   Set  = Write(1).
//   Test = (Read() == 1) ? 1 : 0.
class TestOrSetFromSticky final : public TestOrSet {
 public:
  TestOrSetFromSticky(registers::Space& space,
                      StickyRegister<int>::Config cfg)
      : reg_(space, cfg) {}

  void set() override { reg_.write(1); }
  int test() override {
    const auto v = reg_.read();
    return (v.has_value() && *v == 1) ? 1 : 0;
  }

  StickyRegister<int>& reg() { return reg_; }

 private:
  StickyRegister<int> reg_;
};

}  // namespace swsig::core
