// Shared vocabulary for the three register algorithms (Algorithms 1-3):
// the value-domain concept, Sign results (Definition 10), timestamps
// (Algorithm 2), and the n > 3f resilience precondition (Theorems 14/20/25;
// tightness by Theorem 29).
#pragma once

#include <concepts>
#include <cstdint>
#include <stdexcept>

namespace swsig::core {

// Domain values V must be regular and totally ordered (total order is used
// by Algorithm 2's timestamp tie-break, footnote 8 of the paper, and to
// iterate candidate sets deterministically).
template <typename V>
concept RegisterValue = std::regular<V> && std::totally_ordered<V>;

// Result of a verifiable register's Sign(v) (Definition 10).
enum class SignResult { kSuccess, kFail };

// Round counter stored in the Ck registers.
using RoundCounter = std::uint64_t;

// Timestamp ℓ used by the authenticated register (Algorithm 2).
using SeqNo = std::uint64_t;

// Throws if the configuration violates the algorithms' resilience
// precondition n > 3f (and basic sanity n >= 2, f >= 0). The impossibility
// experiment (T5) constructs systems with n <= 3f on purpose; it passes
// `allow_suboptimal = true` to document that it is deliberately stepping
// outside the guaranteed envelope.
inline void check_resilience(int n, int f, bool allow_suboptimal = false) {
  if (n < 2) throw std::invalid_argument("need at least 2 processes");
  if (f < 0) throw std::invalid_argument("f must be non-negative");
  if (!allow_suboptimal && n <= 3 * f)
    throw std::invalid_argument(
        "resilience violated: need n > 3f (pass allow_suboptimal to opt out)");
}

}  // namespace swsig::core
