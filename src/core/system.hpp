// Execution wrappers for the register algorithms — the glue that turns the
// paper's model (§3: n asynchronous processes, each with an operation
// sequence plus the implicit Help() duty) into runnable thread groups. Two
// execution modes mirror docs/ARCHITECTURE.md §runtime: free (real
// concurrency) and deterministic (replayable schedules).
//
// FreeSystem<Alg>: the convenient way to run an algorithm with real
// concurrency — it owns the step controller, register space, algorithm
// instance, and one background helper thread per (non-excluded) process,
// with idle backoff. Operations are invoked from any caller thread via
// as(pid, fn), which temporarily binds the thread to the process.
//
// For deterministic runs, compose runtime::Harness + registers::Space + the
// algorithm directly and use spawn_helpers() below to add the Help() loops.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <stop_token>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "registers/space.hpp"
#include "runtime/harness.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"

namespace swsig::core {

struct HelperOptions {
  // Processes whose honest helper must NOT run (crashed processes, or
  // Byzantine ones replaced by a custom behavior).
  std::set<runtime::ProcessId> exclude;
  // Park idle helpers on the space's write-epoch condvar after consecutive
  // idle rounds (a writer's notify wakes them); disable for
  // latency-sensitive benchmarks at the cost of busy helpers.
  bool idle_backoff = true;
};

template <typename Alg>
class FreeSystem {
 public:
  using Config = typename Alg::Config;

  explicit FreeSystem(Config config, HelperOptions options = {})
      : space_(controller_), alg_(space_, std::move(config)),
        options_(std::move(options)) {
    start_helpers();
  }

  ~FreeSystem() { stop_helpers(); }

  FreeSystem(const FreeSystem&) = delete;
  FreeSystem& operator=(const FreeSystem&) = delete;

  Alg& alg() { return alg_; }
  registers::Space& space() { return space_; }
  registers::Metrics& metrics() { return space_.metrics(); }

  // Runs fn on the calling thread, temporarily bound as process `pid`.
  template <typename F>
  auto as(runtime::ProcessId pid, F&& fn) {
    runtime::ThisProcess::Binder bind(pid);
    return std::forward<F>(fn)(alg_);
  }

  // Spawn an extra long-lived thread bound to `pid` (e.g., a Byzantine
  // behavior loop). Joined at stop_helpers()/destruction.
  void spawn(runtime::ProcessId pid,
             std::function<void(std::stop_token)> body) {
    threads_.emplace_back([pid, body = std::move(body)](std::stop_token st) {
      runtime::ThisProcess::Binder bind(pid);
      body(st);
    });
  }

  void stop_helpers() {
    for (auto& t : threads_) t.request_stop();
    threads_.clear();  // jthread joins on destruction
  }

 private:
  void start_helpers() {
    for (int pid = 1; pid <= alg_.config().n; ++pid) {
      if (options_.exclude.contains(pid)) continue;
      const bool backoff = options_.idle_backoff;
      threads_.emplace_back([this, pid, backoff](std::stop_token st) {
        runtime::ThisProcess::Binder bind(pid);
        int idle_streak = 0;
        while (!st.stop_requested()) {
          // Epoch sampled before the round: a write landing while we help
          // makes the park below return immediately instead of sleeping.
          const std::uint64_t epoch = space_.write_epoch();
          const bool active = alg_.help_round();
          if (active) {
            idle_streak = 0;
          } else if (backoff) {
            ++idle_streak;
            if (idle_streak > 64) {
              // Version-gated wakeup: park until some register in the
              // space is written (writers notify) instead of busy-polling.
              // The timeout bounds stop-request latency.
              space_.wait_write_epoch(epoch,
                                      std::chrono::microseconds(1000));
            } else {
              std::this_thread::yield();
            }
          } else {
            std::this_thread::yield();
          }
        }
      });
    }
  }

  runtime::FreeStepController controller_;
  registers::Space space_;
  Alg alg_;
  HelperOptions options_;
  std::vector<std::jthread> threads_;
};

// Adds a Help() loop for every process 1..n (minus exclusions) to a
// Harness; used for deterministic-mode compositions.
template <typename Alg>
void spawn_helpers(runtime::Harness& harness, Alg& alg,
                   const std::set<runtime::ProcessId>& exclude = {}) {
  for (int pid = 1; pid <= alg.config().n; ++pid) {
    if (exclude.contains(pid)) continue;
    harness.spawn(pid, "help", [&alg](std::stop_token st) {
      while (!st.stop_requested()) alg.help_round();
    });
  }
}

}  // namespace swsig::core
