// SWMR multivalued *authenticated register* — Algorithm 2 of the paper.
//
// Sequential specification (Definition 15): Write/Read behave like a normal
// SWMR register, and every written value is atomically "signed": Verify(v)
// returns true iff a Write(v) happened before it or v = v0. The
// implementation is Byzantine linearizable and all operations of correct
// processes terminate, for n > 3f (Theorem 20).
//
// Differences from the verifiable register (paper §7.1): there is no R*;
// the writer keeps a single register R_1 holding timestamped values ⟨ℓ,v⟩,
// and Read must re-verify the value it selects before returning it, so that
// a Byzantine writer cannot make a Read return a value whose Verify would
// later fail (Observation 19). If verification fails, Read returns v0.
//
// Code comments "L<k>" refer to the paper's Algorithm 2 line numbers. Layer
// invariants and deviations from the paper: docs/ARCHITECTURE.md (§core,
// design notes 1-5).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "core/version_gate.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"

namespace swsig::core {

template <RegisterValue V, typename SpaceT = registers::Space>
class AuthenticatedRegister {
 public:
  // Register types of the underlying substrate (shared-memory Space or
  // msgpass::EmulatedSpace) — the algorithm is substrate-generic.
  template <typename T>
  using SwmrT = typename SpaceT::template SwmrFor<T>;
  template <typename T>
  using SwsrT = typename SpaceT::template SwsrFor<T>;

  using Value = V;
  using ValueSet = std::set<V>;
  using Stamped = std::pair<SeqNo, V>;       // ⟨ℓ, v⟩
  using StampedSet = std::set<Stamped>;      // contents of R_1
  using HelpTuple = std::pair<ValueSet, RoundCounter>;  // ⟨r_j, c_j⟩
  using ChannelCache = detail::VersionedCache<HelpTuple>;

  // See VerifiableRegister::kVersionGate — free-mode fast paths, compiled
  // out for substrates without versions.
  static constexpr bool kVersionGate =
      requires(SpaceT& s, SwsrT<HelpTuple>& c, SwmrT<RoundCounter>& r) {
        { s.free_mode() } -> std::convertible_to<bool>;
        { c.version() } -> std::convertible_to<std::uint64_t>;
        { r.version() } -> std::convertible_to<std::uint64_t>;
      };

  struct Config {
    int n = 4;
    int f = 1;
    V v0 = V{};
    bool allow_suboptimal = false;
  };

  AuthenticatedRegister(SpaceT& space, Config config)
      : space_(&space), cfg_(std::move(config)) {
    check_resilience(cfg_.n, cfg_.f, cfg_.allow_suboptimal);
    const int n = cfg_.n;
    // R_1: writer's register of stamped values, initially {⟨0, v0⟩}.
    writer_set_ = &space.template make_swmr<StampedSet>(1, StampedSet{{0, cfg_.v0}},
                                               "R1");
    // R_k (readers only): witness sets, initially {v0}.
    witness_.resize(n + 1, nullptr);
    for (int k = 2; k <= n; ++k)
      witness_[k] =
          &space.template make_swmr<ValueSet>(k, ValueSet{cfg_.v0},
                                     "R" + std::to_string(k));
    // R_ij helping channels for every process i and reader j.
    channel_.assign(n + 1, std::vector<SwsrT<HelpTuple>*>(n + 1));
    for (int i = 1; i <= n; ++i)
      for (int j = 2; j <= n; ++j)
        channel_[i][j] = &space.template make_swsr<HelpTuple>(
            i, j, {{}, 0},
            "R" + std::to_string(i) + "," + std::to_string(j));
    // C_k round counters.
    round_.resize(n + 1, nullptr);
    for (int k = 2; k <= n; ++k)
      round_[k] =
          &space.template make_swmr<RoundCounter>(k, 0, "C" + std::to_string(k));
    help_state_.resize(n + 1);
    verified_.resize(n + 1);
  }

  const Config& config() const { return cfg_; }

  // ----------------------------------------------------------- writer ops

  // Write(v) — L1-3. Caller must be bound as p1. The value is "signed"
  // atomically by the same step that publishes it.
  void write(const V& v) {
    require_self(1, "Write");
    ++seq_;                                                    // L1: ℓ <- ℓ+1
    writer_set_->update([&](StampedSet& r1) { r1.insert({seq_, v}); });  // L2
  }                                                            // L3

  // ----------------------------------------------------------- reader ops

  // Read() — L4-9. Caller must be bound as a reader p2..pn.
  V read() {
    require_reader("Read");
    const StampedSet r = writer_set_->read();  // L4
    // L5: "if r is a set of tuples ⟨ℓ,v⟩" — with typed registers the only
    // malformed state a Byzantine writer can reach is the empty set.
    if (!r.empty()) {
      // L6: select the pair maximal in the lexicographic order of fn. 8.
      const Stamped& top = *std::max_element(r.begin(), r.end());
      if (verify(top.second)) return top.second;  // L7-8
    }
    return cfg_.v0;  // L9
  }

  // Verify(v) — L10-23; identical mechanism to Algorithm 1's L11-24,
  // including the free-mode cached channel collection (see
  // VerifiableRegister::verify).
  bool verify(const V& v) {
    const int k = require_reader("Verify");
    // Free-mode fast paths — same soundness arguments as
    // VerifiableRegister::verify: positive Verify verdicts are permanent
    // (cacheable per process), and >= n−f attesting registers — counting
    // the writer's R_1 as slot 1, exactly as L33 does — imply >= f+1
    // honest attesters, which is the evidence standard of L22.
    if (fast_path()) {
      auto& seen = verified_[static_cast<std::size_t>(k)];
      if (seen.contains(v)) return true;
      if (witness_scan(v)) {
        seen.insert(v);
        return true;
      }
    }
    std::set<int> set0, set1;  // L10
    ChannelCache cache(fast_path() ? cfg_.n : 0);
    for (;;) {                 // L11
      const RoundCounter ck =
          round_[k]->update([](RoundCounter& c) { ++c; });  // L12
      int chosen = 0;
      HelpTuple chosen_tuple;
      while (chosen == 0) {  // L13-16
        for (int j = 1; j <= cfg_.n; ++j) {
          if (set0.contains(j) || set1.contains(j)) continue;
          if (cache.enabled()) {
            const HelpTuple& t = cache.fetch(j, *channel_[j][k]);
            if (t.second >= ck) {
              chosen = j;
              chosen_tuple = t;
              break;
            }
            continue;
          }
          HelpTuple t = channel_[j][k]->read();  // L15
          if (t.second >= ck && chosen == 0) {   // L16
            chosen = j;
            chosen_tuple = std::move(t);
          }
        }
        if (chosen == 0) {
          if (fast_path() && witness_scan(v)) {
            verified_[static_cast<std::size_t>(k)].insert(v);
            return true;
          }
          std::this_thread::yield();
        }
      }
      if (chosen_tuple.first.contains(v)) {  // L17
        set1.insert(chosen);                 // L18
        set0.clear();                        // L19
      } else {                               // L20
        set0.insert(chosen);                 // L21
      }
      if (static_cast<int>(set1.size()) >= cfg_.n - cfg_.f) {  // L22
        if (fast_path()) verified_[static_cast<std::size_t>(k)].insert(v);
        return true;
      }
      if (static_cast<int>(set0.size()) > cfg_.f)            // L23
        return false;
    }
  }

  // ------------------------------------------------------------- helping

  // One iteration of the while-loop body of Help() — L25-38.
  bool help_round() {
    const int j = runtime::ThisProcess::id();
    if (j < 1 || j > cfg_.n)
      throw std::logic_error("Help requires a thread bound to p1..pn");
    HelpState& hs = help_state_[static_cast<std::size_t>(j)];

    // Version-gated wakeup (free mode): unchanged round-counter versions
    // mean no new askers — skip without a metered read (see
    // VerifiableRegister::help_round).
    const bool gate = fast_path();
    std::uint64_t agg = 0;
    if (gate) {
      for (int k = 2; k <= cfg_.n; ++k) agg += round_version(k);
      if (hs.agg_valid && agg == hs.round_agg) return false;
    }

    // L26-27: find askers.
    std::map<int, RoundCounter> ck;
    for (int k = 2; k <= cfg_.n; ++k) ck[k] = round_[k]->read();
    std::vector<int> askers;
    for (int k = 2; k <= cfg_.n; ++k)
      if (ck[k] > hs.prev_ck[k]) askers.push_back(k);
    if (askers.empty()) {  // L28
      if (gate) hs.record_agg(agg);
      return false;
    }

    // L29-30: r1 = values the writer has written (stamps stripped).
    const StampedSet r = writer_set_->read();
    ValueSet r1;
    for (const Stamped& sv : r) r1.insert(sv.second);

    ValueSet rj;
    if (j != 1) {  // L31
      // L32: read every (reader) witness register.
      std::vector<ValueSet> ri(static_cast<std::size_t>(cfg_.n) + 1);
      ri[1] = r1;  // r1 participates in the count "1 <= i <= n" of L33
      for (int i = 2; i <= cfg_.n; ++i)
        ri[static_cast<std::size_t>(i)] = witness_[i]->read();
      // L33-34: become a witness of v if the writer wrote v, or f+1
      // processes (including possibly the writer) are witnesses of v.
      ValueSet candidates;
      for (int i = 1; i <= cfg_.n; ++i)
        candidates.insert(ri[static_cast<std::size_t>(i)].begin(),
                          ri[static_cast<std::size_t>(i)].end());
      for (const V& v : candidates) {
        int count = 0;
        for (int i = 1; i <= cfg_.n; ++i)
          if (ri[static_cast<std::size_t>(i)].contains(v)) ++count;
        if (r1.contains(v) || count >= cfg_.f + 1)
          witness_[j]->update([&](ValueSet& s) { s.insert(v); });  // L34
      }
      rj = witness_[j]->read();  // L35
    } else {
      // For j = 1 the writer answers with the values of its own R_1
      // (Lemma 103, case j = 1).
      rj = r1;
    }

    // L36-38: answer each asker.
    for (int k : askers) {
      channel_[j][k]->write({rj, ck[k]});  // L37
      hs.prev_ck[k] = ck[k];               // L38
    }
    if (gate) hs.record_agg(agg);
    return true;
  }

  // --------------------------------------------------- fault injection API
  struct Raw {
    SwmrT<StampedSet>* writer_set;                     // R_1
    std::vector<SwmrT<ValueSet>*>* witness;            // R_k
    std::vector<std::vector<SwsrT<HelpTuple>*>>* channel;  // R_ij
    std::vector<SwmrT<RoundCounter>*>* round;          // C_k
  };
  Raw raw() { return Raw{writer_set_, &witness_, &channel_, &round_}; }

 private:
  struct HelpState {
    std::map<int, RoundCounter> prev_ck;  // L24
    std::uint64_t round_agg = 0;  // aggregate version at last completed round
    bool agg_valid = false;
    void record_agg(std::uint64_t agg) {
      round_agg = agg;
      agg_valid = true;
    }
  };

  // True iff >= n−f registers currently attest v, counting the writer's
  // R_1 (values of its stamped set) as slot 1.
  bool witness_scan(const V& v) {
    int count = 0;
    const StampedSet r = writer_set_->read();
    for (const Stamped& sv : r)
      if (sv.second == v) {
        ++count;
        break;
      }
    if (count >= cfg_.n - cfg_.f) return true;
    for (int i = 2; i <= cfg_.n; ++i)
      if (witness_[i]->read().contains(v) && ++count >= cfg_.n - cfg_.f)
        return true;
    return false;
  }

  bool fast_path() const {
    if constexpr (kVersionGate)
      return space_->free_mode();
    else
      return false;
  }

  std::uint64_t round_version(int k) const {
    if constexpr (kVersionGate)
      return round_[static_cast<std::size_t>(k)]->version();
    else
      return 0;
  }

  void require_self(int pid, const char* op) const {
    if (runtime::ThisProcess::id() != pid)
      throw std::logic_error(std::string(op) + " may only be called by p" +
                             std::to_string(pid));
  }
  int require_reader(const char* op) const {
    const int k = runtime::ThisProcess::id();
    if (k < 2 || k > cfg_.n)
      throw std::logic_error(std::string(op) +
                             " may only be called by a reader p2..pn");
    return k;
  }

  SpaceT* space_;
  Config cfg_;

  SwmrT<StampedSet>* writer_set_ = nullptr;            // R_1
  std::vector<SwmrT<ValueSet>*> witness_;              // R_k
  std::vector<std::vector<SwsrT<HelpTuple>*>> channel_;  // R_ij
  std::vector<SwmrT<RoundCounter>*> round_;            // C_k

  SeqNo seq_ = 0;  // ℓ — writer-local (p1's operation thread only)
  std::vector<HelpState> help_state_;

  // Per-process positive-verify memo (free mode only; see verify()).
  std::vector<ValueSet> verified_;
};

}  // namespace swsig::core
