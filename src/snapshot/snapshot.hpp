// Byzantine-tolerant single-writer atomic snapshot, signature-free
// (n > 3f) — the Cohen–Keidar [5] object, translated per the paper's §1
// claim: every place their algorithm relies on a signature property, we
// use an authenticated register property instead.
//
// Structure (translation of Afek et al. [1] + CK's Byzantine hardening):
//  * segment_i  — authenticated register (writer p_i): holds ⟨seq, value⟩.
//    Authenticity of any claimed component is checkable by ANY process via
//    Verify — that is what signatures provided in [5].
//  * scans_i    — authenticated register (writer p_i): holds the embedded
//    scan p_i took during its last update (the classic helping mechanism).
//
//  update(v): s := scan(); scans_i.write(s); segment_i.write(⟨seq+1, v⟩).
//  scan(): double-collect until two identical collects (linearizes in the
//  gap); if some segment moves twice, adopt its embedded scan — but only
//  after (a) the scan register's Read returned it (authentic, Observation
//  19), (b) every component individually passes that segment's Verify
//  (genuinely written values only — no fabricated components), and
//  (c) it lies within this scan's observation window (component-wise
//  between the first and the latest collect).
//
// Liveness caveat (documented, docs/ARCHITECTURE.md design note 7): a Byzantine updater that
// churns forever while publishing non-adoptable embedded scans can starve
// scan() — Cohen–Keidar's signed original bounds this with signed embedded
// scans; our window check (c) rejects exactly the fabrications their
// signatures prevent, at the cost of retrying. Tests bound Byzantine churn.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/authenticated_register.hpp"
#include "core/types.hpp"
#include "core/version_gate.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"

namespace swsig::snapshot {

// One snapshot component: sequence number + value.
struct Cell {
  std::uint64_t seq = 0;
  std::uint64_t value = 0;
  friend auto operator<=>(const Cell&, const Cell&) = default;
};

// A full scan result, one cell per process (index 0 unused).
using Scan = std::vector<Cell>;

class AtomicSnapshot {
 public:
  struct Config {
    int n = 4;
    int f = 1;  // needs n > 3f
    std::uint64_t v0 = 0;
  };

  AtomicSnapshot(registers::Space& space, Config config)
      : space_(&space), cfg_(config), epoch_gate_(config.n) {
    core::check_resilience(cfg_.n, cfg_.f);
    for (int i = 0; i <= cfg_.n; ++i) {
      segments_.push_back(nullptr);
      scans_.push_back(nullptr);
      seq_.push_back(0);
    }
    for (int i = 1; i <= cfg_.n; ++i) {
      SegReg::Config sc;
      sc.n = cfg_.n;
      sc.f = cfg_.f;
      sc.v0 = Cell{0, cfg_.v0};
      segments_[static_cast<std::size_t>(i)] =
          std::make_unique<Remapped<SegReg>>(space, sc, i);
      ScanReg::Config rc;
      rc.n = cfg_.n;
      rc.f = cfg_.f;
      rc.v0 = Scan{};
      scans_[static_cast<std::size_t>(i)] =
          std::make_unique<Remapped<ScanReg>>(space, rc, i);
    }
  }

  const Config& config() const { return cfg_; }

  // Update the caller's segment (single-writer per segment).
  void update(std::uint64_t value) {
    const int self = runtime::ThisProcess::id();
    require_pid(self);
    const Scan s = scan();  // embedded scan (helping)
    scans_[static_cast<std::size_t>(self)]->write(s);
    auto& seq = seq_[static_cast<std::size_t>(self)];
    ++seq;
    segments_[static_cast<std::size_t>(self)]->write(Cell{seq, value});
  }

  // Linearizable scan.
  Scan scan() {
    const int self = runtime::ThisProcess::id();
    require_pid(self);
    const Scan first = collect(self);
    Scan prev = first;
    std::vector<int> moved(static_cast<std::size_t>(cfg_.n) + 1, 0);
    for (;;) {
      Scan cur = collect(self);
      if (cur == prev) return cur;  // clean double collect
      for (int i = 1; i <= cfg_.n; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        if (cur[idx].seq != prev[idx].seq) {
          ++moved[idx];
          if (moved[idx] >= 2) {
            // Segment i moved twice during our scan: its embedded scan was
            // taken entirely inside our window. Adopt it if it validates.
            const auto adopted = try_adopt(self, i, first, cur);
            if (adopted) return *adopted;
          }
        }
      }
      prev = std::move(cur);
    }
  }

  // Reads one segment (authenticated read: verified value or v0).
  Cell read_segment(int i) {
    const int self = runtime::ThisProcess::id();
    require_pid(self);
    return segments_[static_cast<std::size_t>(i)]->read(self);
  }

  bool help_round() {
    const int self = runtime::ThisProcess::id();
    // Version-gated wakeup (free mode): helping can only become necessary
    // after some register in the space was written (an updater's segment,
    // an embedded scan, a reader's round counter — all are writes). If the
    // space-wide write epoch is unchanged since this process's last
    // completed round, skip the 2n inner helping rounds outright.
    const bool gate = space_->free_mode();
    std::uint64_t epoch = 0;
    if (gate && !epoch_gate_.changed(*space_, self, epoch)) return false;
    bool any = false;
    for (int i = 1; i <= cfg_.n; ++i) {
      any |= segments_[static_cast<std::size_t>(i)]->help(self);
      any |= scans_[static_cast<std::size_t>(i)]->help(self);
    }
    if (gate) epoch_gate_.record(self, epoch);
    return any;
  }

 private:
  using SegReg = core::AuthenticatedRegister<Cell>;
  using ScanReg = core::AuthenticatedRegister<Scan>;

  // Identity-relabeled register: register-internal p1 is the segment owner
  // (the algorithms fix the writer as p1; the relabeling pi <-> p_owner is
  // sound by symmetry, as in broadcast/reliable_broadcast.hpp).
  template <typename Reg>
  struct Remapped {
    Remapped(registers::Space& space, typename Reg::Config rc, int owner_pid)
        : owner(owner_pid), reg(space, rc) {}

    int mapped(int pid) const {
      if (pid == owner) return 1;
      if (pid == 1) return owner;
      return pid;
    }

    void write(typename Reg::Value v) {
      runtime::ThisProcess::Binder bind(1);
      reg.write(v);
    }

    typename Reg::Value read(int real_pid) {
      runtime::ThisProcess::Binder bind(mapped(real_pid));
      if (mapped(real_pid) == 1) {
        // Owner reads its own register: take the highest stamped entry
        // (the owner knows its own writes; v0 if none).
        const auto r = reg.raw().writer_set->read();
        if (r.empty()) return reg.config().v0;
        return std::max_element(r.begin(), r.end())->second;
      }
      return reg.read();
    }

    bool verify(int real_pid, const typename Reg::Value& v) {
      runtime::ThisProcess::Binder bind(mapped(real_pid));
      if (mapped(real_pid) == 1) {
        const auto r = reg.raw().writer_set->read();
        for (const auto& [seq, value] : r)
          if (value == v) return true;
        return v == reg.config().v0;
      }
      return reg.verify(v);
    }

    bool help(int real_pid) {
      runtime::ThisProcess::Binder bind(mapped(real_pid));
      return reg.help_round();
    }

    int owner;
    Reg reg;
  };

  void require_pid(int pid) const {
    if (pid < 1 || pid > cfg_.n)
      throw std::logic_error("snapshot ops need a thread bound to p1..pn");
  }

  Scan collect(int self) {
    Scan s(static_cast<std::size_t>(cfg_.n) + 1);
    for (int i = 1; i <= cfg_.n; ++i)
      s[static_cast<std::size_t>(i)] =
          segments_[static_cast<std::size_t>(i)]->read(self);
    return s;
  }

  // Validation gates (a)-(c) from the header comment.
  std::optional<Scan> try_adopt(int self, int mover, const Scan& first,
                                const Scan& latest) {
    const Scan s = scans_[static_cast<std::size_t>(mover)]->read(self);
    if (s.size() != static_cast<std::size_t>(cfg_.n) + 1) return std::nullopt;
    for (int j = 1; j <= cfg_.n; ++j) {
      const auto idx = static_cast<std::size_t>(j);
      // (b) every component is a genuinely written value of segment j.
      if (!segments_[idx]->verify(self, s[idx])) return std::nullopt;
      // (c) within our observation window.
      if (s[idx].seq < first[idx].seq || s[idx].seq > latest[idx].seq)
        return std::nullopt;
    }
    return s;
  }

  registers::Space* space_;
  Config cfg_;
  std::vector<std::unique_ptr<Remapped<SegReg>>> segments_;
  std::vector<std::unique_ptr<Remapped<ScanReg>>> scans_;
  std::vector<std::uint64_t> seq_;  // per-process writer counters
  core::detail::SpaceEpochGate epoch_gate_;
};

}  // namespace swsig::snapshot
