// Byzantine linearizability check for FAULTY-WRITER histories — the
// mechanized form of the paper's witness-history construction
// (Definition 78 for verifiable registers, Definition 143 for
// authenticated registers).
//
// Setting: the writer is Byzantine, so the recorded history H|correct
// contains only reader operations (Read / Verify). Byzantine
// linearizability (Definition 7) asks for SOME history H' with
// H'|correct = H|correct that is linearizable — the paper proves one
// always exists by inserting the writer's operations at specific points:
//
//   * for every value v with a Verify(v) -> true, insert Sign(v)->success
//     inside the interval (tv0, tv1), where tv0 is the latest invocation
//     of a Verify(v)->false and tv1 the earliest response of a
//     Verify(v)->true (non-empty by the relay property, Lemma 48);
//   * for every Read returning v and for every inserted Sign(v), insert a
//     Write(v) immediately before it;
//   * keep all inserted writer operations sequential.
//
// This header performs exactly that construction on a recorded history and
// then runs the partitioned Wing–Gong checker on the completed history.
// The construction is per register: windows are keyed by (object, value)
// and every inserted writer operation inherits the object of the reader
// operations it justifies, so a multi-register reader history decomposes
// into per-register completions checked independently — the same
// P-compositional structure check_linearizable() exploits. If the
// construction is impossible (tv1 <= tv0 — i.e., relay was violated) or
// the completed history fails the checker, the implementation is NOT
// Byzantine linearizable, and we report why.
#pragma once

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "lincheck/register_specs.hpp"

namespace swsig::lincheck {

struct ByzantineCheckResult {
  bool byzantine_linearizable = false;
  // Verdict of the underlying partitioned check on the completed history
  // (kViolation when the witness construction itself was impossible).
  Verdict verdict = Verdict::kViolation;
  std::string reason;  // populated on failure
  std::size_t inserted_ops = 0;
  std::uint64_t states_explored = 0;
};

namespace detail {

// Scales timestamps so there is room to insert writer operations between
// existing events.
inline std::vector<Operation> scale_history(std::vector<Operation> ops,
                                            std::uint64_t k) {
  for (Operation& op : ops) {
    op.invoke_ts *= k;
    op.response_ts *= k;
  }
  return ops;
}

}  // namespace detail

// `writer_op` is "sign" for the verifiable register (a separate Sign is
// inserted and a Write before it) or "write" for the authenticated
// register (Writes only). `v0` is every register's initial value (verifies
// true unconditionally for authenticated registers).
inline ByzantineCheckResult check_byzantine_faulty_writer(
    const std::vector<Operation>& recorded, const SequentialSpec& spec,
    const std::string& writer_op, const std::string& v0,
    const CheckOptions& options = {}) {
  constexpr std::uint64_t kScale = 1000;
  std::vector<Operation> ops = detail::scale_history(recorded, kScale);

  ByzantineCheckResult result;
  int next_id = -1;  // inserted ops get negative ids (diagnostics only)

  // ---- Step 2 (Definition 78): per-(register, value) Sign/Write inside
  // (tv0, tv1).
  std::map<std::pair<std::string, std::string>,
           std::pair<std::uint64_t, std::uint64_t>>
      windows;
  for (const Operation& op : ops) {
    if (op.name != "verify") continue;
    auto& w = windows
                  .try_emplace({op.object, op.arg}, 0,
                               std::numeric_limits<std::uint64_t>::max())
                  .first->second;
    if (op.result == "false") w.first = std::max(w.first, op.invoke_ts);
    if (op.result == "true") w.second = std::min(w.second, op.response_ts);
  }
  for (const auto& [key, window] : windows) {
    const auto& [object, value] = key;
    const bool any_true =
        window.second != std::numeric_limits<std::uint64_t>::max();
    if (!any_true) continue;           // nothing to justify
    if (value == v0 && writer_op == "write") continue;  // v0 pre-signed
    if (window.second <= window.first + 1) {
      result.reason = "relay violated for value " + value +
                      (object.empty() ? "" : " of object '" + object + "'") +
                      ": no room between last verify=false invocation and "
                      "first verify=true response";
      return result;
    }
    // Insert Write(value) [+ Sign(value)] at the start of the window.
    const std::uint64_t t = window.first + 1;  // strictly inside
    Operation write;
    write.id = next_id--;
    write.pid = 1;
    write.object = object;
    write.name = "write";
    write.arg = value;
    write.result = "done";
    write.invoke_ts = t;
    write.response_ts = t;  // zero-length interval: trivially sequential
    ops.push_back(write);
    ++result.inserted_ops;
    if (writer_op == "sign") {
      Operation sign = write;
      sign.id = next_id--;
      sign.name = "sign";
      sign.result = "success";
      // Immediately after its Write, still inside the window.
      sign.invoke_ts = sign.response_ts = t;
      ops.push_back(sign);
      ++result.inserted_ops;
    }
  }

  // ---- Step 3: justify Reads with a Write immediately before each — for
  // EVERY returned value, including v0 (the Byzantine writer may have
  // re-written the initial value after other writes; Definition 78/143
  // insert a Write before every Read). Only sticky-⊥ needs no write.
  for (const Operation& op : recorded) {
    if (op.name != "read") continue;
    if (op.result == "⊥") continue;
    Operation write;
    write.id = next_id--;
    write.pid = 1;
    write.object = op.object;
    write.name = "write";
    write.arg = op.result;
    write.result = "done";
    // Immediately before the read's invocation (scaled => room exists).
    write.invoke_ts = op.invoke_ts * kScale - 1;
    write.response_ts = op.invoke_ts * kScale - 1;
    ops.push_back(write);
    ++result.inserted_ops;
  }

  const CheckResult check = check_linearizable(ops, spec, options);
  result.verdict = check.verdict;
  result.states_explored = check.states_explored;
  result.byzantine_linearizable = check.linearizable();
  if (check.verdict == Verdict::kViolation)
    result.reason = "completed history is not linearizable (" + check.detail +
                    ")";
  else if (check.verdict == Verdict::kBudgetExhausted)
    result.reason = "undecided: " + check.detail;
  return result;
}

// Convenience wrappers for the two register types.
inline ByzantineCheckResult check_byzantine_verifiable(
    const std::vector<Operation>& recorded, const std::string& v0,
    const CheckOptions& options = {}) {
  return check_byzantine_faulty_writer(recorded, VerifiableRegisterSpec(v0),
                                       "sign", v0, options);
}

inline ByzantineCheckResult check_byzantine_authenticated(
    const std::vector<Operation>& recorded, const std::string& v0,
    const CheckOptions& options = {}) {
  return check_byzantine_faulty_writer(
      recorded, AuthenticatedRegisterSpec(v0), "write", v0, options);
}

}  // namespace swsig::lincheck
