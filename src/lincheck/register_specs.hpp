// Sequential specifications of every object in the library, for the
// Wing–Gong checker. Operation encoding (all values stringified):
//
//   plain / verifiable / authenticated register:
//     ("write", v) -> "done"        ("read", "") -> v
//     ("sign",  v) -> "success"|"fail"
//     ("verify",v) -> "true"|"false"
//   sticky register:
//     ("write", v) -> "done"        ("read", "") -> v | "⊥"
//   test-or-set:
//     ("set", "") -> "done"         ("test", "") -> "0"|"1"
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lincheck/checker.hpp"

namespace swsig::lincheck {

// Definition 10-style plain SWMR register (Read/Write only).
class PlainRegisterSpec final : public SequentialSpec {
 public:
  explicit PlainRegisterSpec(std::string v0) : last_(std::move(v0)) {}

  std::unique_ptr<SequentialSpec> clone() const override {
    return std::make_unique<PlainRegisterSpec>(*this);
  }

  bool apply(const Operation& op) override {
    if (op.name == "write") {
      last_ = op.arg;
      return op.result == "done";
    }
    if (op.name == "read") return op.result == last_;
    return false;
  }

  std::string state_key() const override { return last_; }

 private:
  std::string last_;
};

// Definition 10: verifiable register.
class VerifiableRegisterSpec final : public SequentialSpec {
 public:
  explicit VerifiableRegisterSpec(std::string v0) : last_(std::move(v0)) {}

  std::unique_ptr<SequentialSpec> clone() const override {
    return std::make_unique<VerifiableRegisterSpec>(*this);
  }

  bool apply(const Operation& op) override {
    if (op.name == "write") {
      last_ = op.arg;
      written_.insert(op.arg);
      return op.result == "done";
    }
    if (op.name == "read") return op.result == last_;
    if (op.name == "sign") {
      const bool ok = written_.contains(op.arg);
      if (ok) signed_.insert(op.arg);
      return op.result == (ok ? "success" : "fail");
    }
    if (op.name == "verify")
      return op.result == (signed_.contains(op.arg) ? "true" : "false");
    return false;
  }

  std::string state_key() const override {
    std::string key = last_ + "#";
    for (const auto& v : written_) key += v + ",";
    key += "#";
    for (const auto& v : signed_) key += v + ",";
    return key;
  }

 private:
  std::string last_;
  std::set<std::string> written_;
  std::set<std::string> signed_;
};

// Definition 15: authenticated register (every write auto-signed; v0 signed).
class AuthenticatedRegisterSpec final : public SequentialSpec {
 public:
  explicit AuthenticatedRegisterSpec(std::string v0) : last_(v0) {
    written_.insert(std::move(v0));
  }

  std::unique_ptr<SequentialSpec> clone() const override {
    return std::make_unique<AuthenticatedRegisterSpec>(*this);
  }

  bool apply(const Operation& op) override {
    if (op.name == "write") {
      last_ = op.arg;
      written_.insert(op.arg);
      return op.result == "done";
    }
    if (op.name == "read") return op.result == last_;
    if (op.name == "verify")
      return op.result == (written_.contains(op.arg) ? "true" : "false");
    return false;
  }

  std::string state_key() const override {
    std::string key = last_ + "#";
    for (const auto& v : written_) key += v + ",";
    return key;
  }

 private:
  std::string last_;
  std::set<std::string> written_;
};

// Definition 21: sticky register ("⊥" encodes the initial bottom value).
class StickyRegisterSpec final : public SequentialSpec {
 public:
  std::unique_ptr<SequentialSpec> clone() const override {
    return std::make_unique<StickyRegisterSpec>(*this);
  }

  bool apply(const Operation& op) override {
    if (op.name == "write") {
      if (first_.empty()) first_ = op.arg;  // later writes are no-ops
      return op.result == "done";
    }
    if (op.name == "read")
      return op.result == (first_.empty() ? "⊥" : first_);
    return false;
  }

  std::string state_key() const override { return first_; }

 private:
  std::string first_;  // empty = ⊥
};

// Single-writer atomic snapshot (one segment per process).
// Operation encoding: ("update", "<pid>:<value>") -> "done";
//                     ("scan", "") -> "v1|v2|...|vn".
class SnapshotSpec final : public SequentialSpec {
 public:
  SnapshotSpec(int n, std::string v0) : values_(static_cast<std::size_t>(n) + 1, std::move(v0)) {}

  std::unique_ptr<SequentialSpec> clone() const override {
    return std::make_unique<SnapshotSpec>(*this);
  }

  bool apply(const Operation& op) override {
    if (op.name == "update") {
      const auto colon = op.arg.find(':');
      if (colon == std::string::npos) return false;
      const std::size_t pid =
          static_cast<std::size_t>(std::stoi(op.arg.substr(0, colon)));
      if (pid == 0 || pid >= values_.size()) return false;
      values_[pid] = op.arg.substr(colon + 1);
      return op.result == "done";
    }
    if (op.name == "scan") return op.result == render();
    return false;
  }

  std::string state_key() const override { return render(); }

 private:
  std::string render() const {
    std::string out;
    for (std::size_t i = 1; i < values_.size(); ++i) {
      if (i > 1) out += "|";
      out += values_[i];
    }
    return out;
  }

  std::vector<std::string> values_;
};

// Definition 26: one-shot test-or-set.
class TestOrSetSpec final : public SequentialSpec {
 public:
  std::unique_ptr<SequentialSpec> clone() const override {
    return std::make_unique<TestOrSetSpec>(*this);
  }

  bool apply(const Operation& op) override {
    if (op.name == "set") {
      set_ = true;
      return op.result == "done";
    }
    if (op.name == "test") return op.result == (set_ ? "1" : "0");
    return false;
  }

  std::string state_key() const override { return set_ ? "1" : "0"; }

 private:
  bool set_ = false;
};

}  // namespace swsig::lincheck
