#include "lincheck/history.hpp"

namespace swsig::lincheck {

int HistoryRecorder::invoke(const std::string& name, std::string arg) {
  return invoke("", name, std::move(arg));
}

int HistoryRecorder::invoke(const std::string& object, const std::string& name,
                            std::string arg) {
  const std::uint64_t ts = clock_.fetch_add(1);
  std::scoped_lock lock(mu_);
  Operation op;
  op.id = static_cast<int>(pending_.size());
  op.pid = runtime::ThisProcess::id();
  op.object = object;
  op.name = name;
  op.arg = std::move(arg);
  op.invoke_ts = ts;
  pending_.push_back(std::move(op));
  return static_cast<int>(pending_.size()) - 1;
}

void HistoryRecorder::respond(int token, std::string result) {
  const std::uint64_t ts = clock_.fetch_add(1);
  std::scoped_lock lock(mu_);
  Operation& slot = pending_.at(static_cast<std::size_t>(token));
  slot.response_ts = ts;  // marks the token completed for pending_count()
  Operation op = slot;
  op.result = std::move(result);
  completed_.push_back(std::move(op));
}

std::vector<Operation> HistoryRecorder::operations() const {
  std::scoped_lock lock(mu_);
  return completed_;
}

std::size_t HistoryRecorder::completed_count() const {
  std::scoped_lock lock(mu_);
  return completed_.size();
}

std::size_t HistoryRecorder::pending_count() const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const Operation& op : pending_)
    if (op.pending()) ++n;
  return n;
}

}  // namespace swsig::lincheck
