#include "lincheck/history.hpp"

#include <algorithm>
#include <utility>

namespace swsig::lincheck {

int HistoryRecorder::invoke(const std::string& name, std::string arg) {
  return invoke("", name, std::move(arg));
}

int HistoryRecorder::invoke(const std::string& object, const std::string& name,
                            std::string arg) {
  std::scoped_lock lock(mu_);
  const int token = next_token_++;
  Operation op;
  op.id = token;
  op.pid = runtime::ThisProcess::id();
  op.object = object;
  op.name = name;
  op.arg = std::move(arg);
  op.invoke_ts = clock_++;
  pending_.emplace(token, std::move(op));
  return token;
}

void HistoryRecorder::respond(int token, std::string result) {
  std::scoped_lock lock(mu_);
  // The response timestamp is taken under mu_, so completed_ is sorted by
  // response_ts. Moving the stamp from "just before the lock" to "inside
  // it" only delays a response, which can only *shrink* the precedence
  // relation — sound for checking, and exactly what windowed sampling
  // needs: a contiguous slice of completed_ is closed under "completed in
  // between" (lincheck/window.hpp).
  Operation op = std::move(pending_.at(token));  // throws on a bad token
  pending_.erase(token);
  op.response_ts = clock_++;
  op.result = std::move(result);
  completed_.push_back(std::move(op));
}

void HistoryRecorder::abort(int token) {
  std::scoped_lock lock(mu_);
  if (pending_.erase(token) == 0)
    pending_.at(token);  // throws std::out_of_range, same as respond()
  ++aborted_;
}

std::size_t HistoryRecorder::aborted_count() const {
  std::scoped_lock lock(mu_);
  return aborted_;
}

std::vector<Operation> HistoryRecorder::operations() const {
  std::scoped_lock lock(mu_);
  return completed_;
}

std::vector<Operation> HistoryRecorder::drain_completed() {
  std::scoped_lock lock(mu_);
  drained_ += completed_.size();
  return std::exchange(completed_, {});
}

HistoryRecorder::Drain HistoryRecorder::drain() {
  std::scoped_lock lock(mu_);
  Drain d;
  // Future completions are either currently-pending invocations (invoke_ts
  // known) or not yet invoked (invoke_ts will be >= clock_).
  d.watermark = clock_;
  for (const auto& [token, op] : pending_)
    d.watermark = std::min(d.watermark, op.invoke_ts);
  drained_ += completed_.size();
  d.ops = std::exchange(completed_, {});
  return d;
}

std::size_t HistoryRecorder::completed_count() const {
  std::scoped_lock lock(mu_);
  return drained_ + completed_.size();
}

std::size_t HistoryRecorder::pending_count() const {
  std::scoped_lock lock(mu_);
  return pending_.size();
}

std::vector<Operation> HistoryRecorder::pending_snapshot() const {
  std::scoped_lock lock(mu_);
  std::vector<Operation> out;
  out.reserve(pending_.size());
  for (const auto& [token, op] : pending_) out.push_back(op);
  return out;
}

}  // namespace swsig::lincheck
