// Seeded history generator shared by the checker's differential tests and
// bench_lincheck, so both exercise the same history distribution.
//
// gen_widened_sequential() produces a *widened sequential execution*: a
// valid sequential run over k plain registers whose i-th operation gets the
// linearization point (i+2)*spacing, with every interval then stretched by
// a random jitter on both sides. Widening intervals only removes real-time
// precedence constraints, so the original sequential order remains a valid
// witness — the history is linearizable by construction, with concurrency
// width tuned by jitter/spacing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lincheck/history.hpp"
#include "util/rng.hpp"

namespace swsig::lincheck {

struct WidenedHistoryOptions {
  int registers = 1;
  int nops = 64;
  std::uint64_t spacing = 100;  // distance between linearization points
  std::uint64_t jitter = 150;   // max one-sided interval stretch
  int processes = 8;            // pids drawn from [1, processes]
  int max_value = 9;            // write values drawn from [1, max_value]
};

inline std::vector<Operation> gen_widened_sequential(
    const WidenedHistoryOptions& opt, std::uint64_t seed) {
  util::Rng rng(seed);
  std::map<std::string, std::string> current;
  std::vector<Operation> ops;
  ops.reserve(static_cast<std::size_t>(opt.nops));
  for (int i = 0; i < opt.nops; ++i) {
    const std::string obj =
        "r" + std::to_string(rng.uniform(
                  0, static_cast<std::uint64_t>(opt.registers - 1)));
    auto& value = current.try_emplace(obj, "0").first->second;
    const std::uint64_t point =
        (static_cast<std::uint64_t>(i) + 2) * opt.spacing;
    Operation op;
    op.id = i;
    op.pid = static_cast<int>(
        rng.uniform(1, static_cast<std::uint64_t>(opt.processes)));
    op.object = obj;
    const std::uint64_t back = rng.uniform(0, opt.jitter);
    op.invoke_ts = point > back ? point - back : 1;  // clamp: no underflow
    op.response_ts = point + rng.uniform(0, opt.jitter);
    if (rng.chance(1, 2)) {
      op.name = "write";
      op.arg = std::to_string(
          rng.uniform(1, static_cast<std::uint64_t>(opt.max_value)));
      op.result = "done";
      value = op.arg;
    } else {
      op.name = "read";
      op.result = value;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace swsig::lincheck
