// Online (windowed) linearizability checking for long-running histories.
//
// The soak harness (src/soak/) records millions of operations; one
// end-of-run check would exhaust both memory and the checker budget. A
// WindowedChecker instead checks windows of the LIVE completion-ordered
// stream through the partitioned checker (checker.hpp) as the run
// progresses, in constant memory.
//
// Where may a window start and end? NOT at arbitrary positions: an
// operation whose interval crosses a cut hides effects the window cannot
// explain. Concretely, a write that responded just before a cut can be
// concurrent with reads after it — the first post-cut read may return the
// pre-write value and a later one the written value, with no in-window
// write between them: a real-looking "violation" that the full history
// explains. Symmetrically a read can return the value of a write that
// completes only after the window's end. Arbitrary op-count windows
// therefore produce FALSE POSITIVES on perfectly linearizable histories
// (demonstrated by window_check_test's CrossingOpsSlidingWindow).
//
// The sound cut points are the *quiescent* ones: position i is a valid cut
// iff every operation at index >= i (and every operation still pending)
// was invoked AFTER every operation before i responded — for an instant,
// nothing was in flight. Then:
//
//  * Every excluded earlier op precedes every in-window op in real time,
//    so their net effect is one fixed (but unknown) start value per
//    object. WindowRegisterSpec below starts UNANCHORED: the first read of
//    each object adopts its result, any write anchors exactly. The single
//    first-read per object per window is the only checking power given up.
//  * No pending op at the cut means no later-completing op can linearize
//    inside the window, so the window's ops are complete and their
//    real-time edges are exactly the full history's restricted to it.
//
// Hence a violation inside a window is a real violation of the full
// history, and a linearizable history produces no window violations.
//
// Cut detection is timestamp-driven: feed() takes the drained ops plus
// HistoryRecorder's watermark (a lower bound on every future completion's
// invoke_ts); poll() scans the buffer for positions whose suffix-minimum
// invoke_ts (and the watermark) exceed the previous response_ts. Natural
// quiescent instants can be rare under saturating load, so the soak runner
// forces them at a bounded cadence by briefly parking its workers
// (runner.hpp checkpoints); any feeder that pauses between bursts gets
// cuts for free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"

namespace swsig::lincheck {

// Plain SWMR register spec with an unknown initial value: unanchored until
// the first write or read fixes the state (see file comment).
class WindowRegisterSpec final : public SequentialSpec {
 public:
  std::unique_ptr<SequentialSpec> clone() const override {
    return std::make_unique<WindowRegisterSpec>(*this);
  }

  bool apply(const Operation& op) override {
    if (op.name == "write") {
      last_ = op.arg;
      anchored_ = true;
      return op.result == "done";
    }
    if (op.name == "read") {
      if (!anchored_) {
        last_ = op.result;  // adopt: any pre-window value is legitimate
        anchored_ = true;
        return true;
      }
      return op.result == last_;
    }
    return false;
  }

  std::string state_key() const override {
    return anchored_ ? "=" + last_ : "?";
  }

 private:
  bool anchored_ = false;
  std::string last_;
};

inline SpecFactory window_register_factory() {
  return [](const std::string&) -> std::unique_ptr<SequentialSpec> {
    return std::make_unique<WindowRegisterSpec>();
  };
}

// Verdict for one checked window. On a violation the window's operations
// are retained as evidence (replayable, printable); on success `ops` is
// empty and `result.witness` holds the linearization found.
struct WindowVerdict {
  std::uint64_t first_op = 0;  // absolute index in the completion order
  std::uint64_t last_op = 0;   // inclusive
  CheckResult result;
  std::vector<Operation> ops;  // retained on non-linearizable verdicts only

  bool ok() const { return result.linearizable(); }
};

class WindowedChecker {
 public:
  struct Options {
    // Quiescent cuts closer together than this are merged (the union of
    // adjacent closed windows is closed), so a near-sequential stream is
    // checked in batches instead of op-by-op. There is no hard upper
    // bound: a closed window cannot be split soundly, so between forced
    // checkpoints a window grows as large as the feeder lets it (the
    // checker budget turns pathological ones into kBudgetExhausted, not
    // hangs).
    std::size_t min_window_ops = 64;
    CheckOptions check;  // per-window checker budget
    SpecFactory make_spec = window_register_factory();
  };

  explicit WindowedChecker(Options options) : options_(std::move(options)) {
    if (options_.min_window_ops < 2) options_.min_window_ops = 2;
  }

  // Appends newly completed operations (a contiguous extension of the
  // completion order — exactly what HistoryRecorder::drain() returns) and
  // raises the watermark: the promise that every operation fed LATER has
  // invoke_ts >= `watermark`.
  void feed(std::vector<Operation> ops, std::uint64_t watermark) {
    for (Operation& op : ops) buffer_.push_back(std::move(op));
    if (watermark > watermark_) watermark_ = watermark;
  }
  void feed(HistoryRecorder::Drain d) {
    feed(std::move(d.ops), d.watermark);
  }

  // Checks every closed window: buffered spans between quiescent cuts (at
  // least min_window_ops long). Ops after the last cut stay buffered.
  std::vector<WindowVerdict> poll() {
    std::vector<WindowVerdict> out;
    if (buffer_.empty()) return out;
    // suffix_min[i] = min invoke_ts over buffer_[i..): the cheapest way to
    // ask "was anything at or after i already in flight before i?".
    const std::size_t n = buffer_.size();
    std::vector<std::uint64_t> suffix_min(n + 1);
    suffix_min[n] = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = n; i-- > 0;)
      suffix_min[i] = std::min(suffix_min[i + 1], buffer_[i].invoke_ts);
    std::size_t start = 0;  // window start, relative to buffer_
    for (std::size_t j = start + options_.min_window_ops; j <= n; ++j) {
      // Cut before j iff everything at/after j (and everything still to
      // come, per the watermark) was invoked after buffer_[j-1] responded.
      if (buffer_[j - 1].response_ts < std::min(suffix_min[j], watermark_)) {
        out.push_back(check_window(start, j - start));
        start = j;
        j = start + options_.min_window_ops - 1;  // ++j makes start + min
      }
    }
    erase_prefix(start);
    return out;
  }

  // End of run: nothing more will be fed, so the remaining buffer is
  // closed regardless of the watermark. Checks it as the final window.
  std::vector<WindowVerdict> finish() {
    watermark_ = std::numeric_limits<std::uint64_t>::max();
    std::vector<WindowVerdict> out = poll();
    if (buffer_.size() > 1)
      out.push_back(check_window(0, buffer_.size()));
    erase_prefix(buffer_.size());
    return out;
  }

  std::uint64_t windows_checked() const { return windows_checked_; }
  std::uint64_t violations() const { return violations_; }
  std::uint64_t undecided() const { return undecided_; }
  std::uint64_t ops_buffered() const { return buffer_.size(); }

 private:
  WindowVerdict check_window(std::size_t offset, std::size_t count) {
    std::vector<Operation> ops;
    ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      ops.push_back(buffer_[offset + i]);
    WindowVerdict v;
    v.first_op = consumed_ + offset;
    v.last_op = consumed_ + offset + count - 1;
    v.result = check_linearizable(ops, options_.make_spec, options_.check);
    ++windows_checked_;
    if (v.result.verdict == Verdict::kViolation) {
      ++violations_;
      v.ops = std::move(ops);
    } else if (v.result.verdict == Verdict::kBudgetExhausted) {
      ++undecided_;
      v.ops = std::move(ops);
    }
    return v;
  }

  void erase_prefix(std::size_t count) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(count));
    consumed_ += count;
  }

  Options options_;
  std::deque<Operation> buffer_;  // completion-ordered, from consumed_ on
  std::uint64_t consumed_ = 0;    // absolute index of buffer_.front()
  std::uint64_t watermark_ = 0;   // min invoke_ts of any future feed
  std::uint64_t windows_checked_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t undecided_ = 0;
};

}  // namespace swsig::lincheck
