// History-level checkers for the paper's per-register-type observations.
//
// Full Byzantine linearizability of a history with a faulty writer is
// established in the paper by *constructing* a matching witness history
// (Definitions 78/143); checking it mechanically would require synthesizing
// the faulty writer's operations. Instead — exactly as the paper's
// observations suggest — we check the properties that characterize correct-
// process-visible behavior: validity, unforgeability, relay, uniqueness.
// For histories where ALL processes are correct, tests additionally run the
// full Wing–Gong check (checker.hpp).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lincheck/history.hpp"

namespace swsig::lincheck {

struct PropertyViolation {
  std::string property;
  std::string detail;
};

using Violations = std::vector<PropertyViolation>;

// Observation 13 / 18: if Verify(v) -> true precedes Verify(v) -> false,
// relay is broken.
inline Violations check_relay(const std::vector<Operation>& ops) {
  Violations out;
  for (const Operation& a : ops) {
    if (a.name != "verify" || a.result != "true") continue;
    for (const Operation& b : ops) {
      if (b.name != "verify" || b.object != a.object || b.arg != a.arg ||
          b.result != "false")
        continue;
      if (a.precedes(b)) {
        out.push_back({"relay", "verify(" + a.arg + ")=true (op " +
                                    std::to_string(a.id) +
                                    ") precedes verify=false (op " +
                                    std::to_string(b.id) + ")"});
      }
    }
  }
  return out;
}

// Observation 11: Sign(v)=success precedes Verify(v)=false => violation.
// (For authenticated registers pass sign_name = "write".)
inline Violations check_validity(const std::vector<Operation>& ops,
                                 const std::string& sign_name = "sign") {
  Violations out;
  for (const Operation& s : ops) {
    if (s.name != sign_name) continue;
    if (sign_name == "sign" && s.result != "success") continue;
    for (const Operation& v : ops) {
      if (v.name != "verify" || v.object != s.object || v.arg != s.arg ||
          v.result != "false")
        continue;
      if (s.precedes(v)) {
        out.push_back({"validity", sign_name + "(" + s.arg +
                                       ") precedes verify=false (op " +
                                       std::to_string(v.id) + ")"});
      }
    }
  }
  return out;
}

// Observation 12 (writer-correct histories only): Verify(v)=true requires a
// Sign(v)=success (or Write(v) for authenticated) that precedes or overlaps
// it.
inline Violations check_unforgeability(const std::vector<Operation>& ops,
                                       const std::string& sign_name = "sign",
                                       const std::string& v0 = "") {
  Violations out;
  for (const Operation& v : ops) {
    if (v.name != "verify" || v.result != "true") continue;
    if (!v0.empty() && v.arg == v0) continue;  // v0 deemed signed
    bool justified = false;
    for (const Operation& s : ops) {
      if (s.name != sign_name || s.object != v.object || s.arg != v.arg)
        continue;
      if (sign_name == "sign" && s.result != "success") continue;
      if (!v.precedes(s)) {  // s precedes or is concurrent with v
        justified = true;
        break;
      }
    }
    if (!justified)
      out.push_back({"unforgeability",
                     "verify(" + v.arg + ")=true (op " +
                         std::to_string(v.id) + ") has no justifying " +
                         sign_name});
  }
  return out;
}

// Observation 24 (sticky): two reads returning different non-⊥ values, or
// read(v) preceding read(⊥), violate uniqueness.
inline Violations check_uniqueness(const std::vector<Operation>& ops) {
  Violations out;
  std::map<std::string, std::string> value_of;  // per register
  for (const Operation& r : ops) {
    if (r.name != "read" || r.result == "⊥") continue;
    const auto [it, inserted] = value_of.try_emplace(r.object, r.result);
    if (!inserted && it->second != r.result) {
      out.push_back({"uniqueness", "reads returned both " + it->second +
                                       " and " + r.result});
    }
  }
  for (const Operation& a : ops) {
    if (a.name != "read" || a.result == "⊥") continue;
    for (const Operation& b : ops) {
      if (b.name != "read" || b.object != a.object || b.result != "⊥")
        continue;
      if (a.precedes(b))
        out.push_back({"uniqueness", "read=" + a.result + " (op " +
                                         std::to_string(a.id) +
                                         ") precedes read=⊥ (op " +
                                         std::to_string(b.id) + ")"});
    }
  }
  return out;
}

// Test-or-set relay (Lemma 28(3)): test=1 preceding test=0.
inline Violations check_test_relay(const std::vector<Operation>& ops) {
  Violations out;
  for (const Operation& a : ops) {
    if (a.name != "test" || a.result != "1") continue;
    for (const Operation& b : ops) {
      if (b.name != "test" || b.object != a.object || b.result != "0")
        continue;
      if (a.precedes(b))
        out.push_back({"test-relay", "test=1 (op " + std::to_string(a.id) +
                                         ") precedes test=0 (op " +
                                         std::to_string(b.id) + ")"});
    }
  }
  return out;
}

}  // namespace swsig::lincheck
