// Operation-history recording for linearizability checking (§3.2).
//
// Tests wrap implemented-object operations in invoke()/respond() calls; the
// recorder timestamps both ends with a global logical clock, yielding the
// real-time precedence order that a linearization must respect
// (Definition 4). Operations are stored type-erased (name/arg/result
// strings) so one checker serves every object in the library. Each
// operation additionally carries the id of the object it acted on: SWMR
// registers are independent objects, so the checker partitions a
// multi-register history into per-object sub-histories and checks each one
// separately (P-compositionality; see docs/ARCHITECTURE.md).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/process.hpp"

namespace swsig::lincheck {

struct Operation {
  int id = 0;
  runtime::ProcessId pid = runtime::kNoProcess;
  std::string object;  // register/object id ("" = the single implicit object)
  std::string name;    // "write", "read", "sign", "verify", "set", "test"...
  std::string arg;     // stringified argument ("" if none)
  std::string result;  // stringified response
  std::uint64_t invoke_ts = 0;
  std::uint64_t response_ts = 0;  // 0 = invocation still pending

  // Real-time precedence (Definition 1).
  bool precedes(const Operation& other) const {
    return response_ts < other.invoke_ts;
  }

  bool pending() const { return response_ts == 0; }
};

class HistoryRecorder {
 public:
  // Marks the invocation of an operation by the bound process; returns a
  // token to pass to respond(). The two-argument form records against the
  // implicit object "".
  int invoke(const std::string& name, std::string arg = "");
  int invoke(const std::string& object, const std::string& name,
             std::string arg);

  // Marks the response; the operation becomes part of the history.
  void respond(int token, std::string result);

  // Removes a pending invocation from the history entirely — for writes
  // whose outcome is a DETERMINATE abort (the owner's recovery fence proved
  // the value can never be delivered or observed). Definition 2's
  // completion construction permits removing pending invocations, and abort
  // finality is exactly the property that makes the removal sound here: no
  // read can ever return the aborted value, so no window can need the op.
  // Throws on a bad or already-responded token, like respond().
  void abort(int token);

  // Aborted invocations removed so far (telemetry).
  std::size_t aborted_count() const;

  // Convenience: records fn() as one complete operation, stringifying its
  // result with `render`.
  template <typename F, typename R>
  auto record(const std::string& name, std::string arg, F&& fn, R&& render) {
    const int token = invoke(name, std::move(arg));
    auto result = std::forward<F>(fn)();
    respond(token, render(result));
    return result;
  }

  // Same, against a named object (register id) so multi-register histories
  // can be partitioned.
  template <typename F, typename R>
  auto record(const std::string& object, const std::string& name,
              std::string arg, F&& fn, R&& render) {
    const int token = invoke(object, name, std::move(arg));
    auto result = std::forward<F>(fn)();
    respond(token, render(result));
    return result;
  }

  // All completed operations, sorted by response_ts. Incomplete operations
  // are dropped (permitted by Definition 2's completion construction: a
  // correct checker may remove pending invocations).
  std::vector<Operation> operations() const;

  // Moves out the completed operations recorded so far (sorted by
  // response_ts) and forgets them, bounding recorder memory on long runs:
  // the soak harness drains every checker interval, so completed_ holds at
  // most one window's worth of ops and pending_ only the in-flight ones.
  // Counters keep counting across drains.
  std::vector<Operation> drain_completed();

  // drain_completed() plus a *watermark*: a lower bound on the invoke_ts of
  // every operation that will appear in any FUTURE drain (the minimum over
  // currently-pending invocations, or the clock itself when nothing is in
  // flight). The windowed checker needs it to prove a cut point quiescent:
  // a completed prefix is closed — no later-completing operation can
  // overlap it — exactly when the watermark (and every drained-but-newer
  // op's invoke_ts) is beyond the prefix's last response_ts. Watermarks are
  // monotone across drains.
  struct Drain {
    std::vector<Operation> ops;  // completion-ordered, as drain_completed()
    std::uint64_t watermark = 0;
  };
  Drain drain();

  std::size_t completed_count() const;

  // Invocations that never received a respond() call.
  std::size_t pending_count() const;

  // Copies of the currently-pending invocations (response_ts == 0) — the
  // soak harness dumps these when a worker wedges, naming the exact stuck
  // operation.
  std::vector<Operation> pending_snapshot() const;

 private:
  mutable std::mutex mu_;
  std::uint64_t clock_ = 1;           // guarded by mu_ (see respond())
  int next_token_ = 0;
  std::map<int, Operation> pending_;  // by token; erased on respond/abort
  std::vector<Operation> completed_;
  std::uint64_t drained_ = 0;         // completed ops already drained
  std::uint64_t aborted_ = 0;         // pending invocations removed
};

}  // namespace swsig::lincheck
