// Wing–Gong linearizability checker.
//
// Searches for a linearization L of a completed history H that (1) respects
// real-time precedence and (2) conforms to a sequential specification
// (Definition 4). Exponential in the worst case; with memoization on
// (linearized-set, spec-state) it comfortably handles the history sizes our
// stress tests record (<= 64 operations).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lincheck/history.hpp"

namespace swsig::lincheck {

// A sequential object specification. apply() attempts to execute `op`
// (including checking its recorded result) against the current state.
class SequentialSpec {
 public:
  virtual ~SequentialSpec() = default;
  virtual std::unique_ptr<SequentialSpec> clone() const = 0;
  // True iff op (with its recorded result) is legal in the current state;
  // mutates the state accordingly.
  virtual bool apply(const Operation& op) = 0;
  // Canonical encoding of the current state (memoization key component).
  virtual std::string state_key() const = 0;
};

struct CheckResult {
  bool linearizable = false;
  // A witness linearization (operation ids in order) when found.
  std::vector<int> witness;
  std::uint64_t states_explored = 0;
};

// Checks the history against the spec. `ops` may be in any order.
CheckResult check_linearizable(const std::vector<Operation>& ops,
                               const SequentialSpec& initial_spec);

}  // namespace swsig::lincheck
