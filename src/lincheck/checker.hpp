// Partitioned, pruned Wing–Gong linearizability checker.
//
// Searches for a linearization L of a completed history H that (1) respects
// real-time precedence and (2) conforms to a sequential specification
// (Definition 4). Three layers keep the worst-case-exponential search
// tractable on the long histories the stress suites record:
//
//  * Partitioning: SWMR registers are independent objects, so a
//    multi-register history decomposes into per-object sub-histories
//    (partition.hpp) that are checked independently and whose witnesses are
//    merged back into one global order.
//  * Interval pruning: inside a partition, operations sorted by invocation
//    form a *frontier* — every operation before it is already linearized —
//    and only operations invoked before the earliest pending response can
//    be the next linearization point. When that candidate window has size
//    one, the operation is forced and consumed without branching or
//    memoization; the search only ever branches among truly concurrent
//    intervals, so sequential stretches cost O(log n) per operation.
//  * Memoization + budget: branchy configurations are memoized on
//    (frontier, linearized-beyond-frontier, spec-state); total work is
//    bounded by a configurable states_explored budget instead of the old
//    64-operation hard cap, and exhausting it is a distinct verdict, never
//    a wrong answer.
//
// check_linearizable_brute() keeps the original unpartitioned, unpruned
// mask-memoized search (<= 62 operations) as the reference oracle for
// differential testing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lincheck/history.hpp"

namespace swsig::lincheck {

// A sequential object specification. apply() attempts to execute `op`
// (including checking its recorded result) against the current state.
class SequentialSpec {
 public:
  virtual ~SequentialSpec() = default;
  virtual std::unique_ptr<SequentialSpec> clone() const = 0;
  // True iff op (with its recorded result) is legal in the current state;
  // mutates the state accordingly.
  virtual bool apply(const Operation& op) = 0;
  // Canonical encoding of the current state (memoization key component).
  virtual std::string state_key() const = 0;
};

// Maps an object id to a fresh spec in its initial state; lets one check
// cover heterogeneous objects (e.g. a verifiable and a sticky register in
// the same history).
using SpecFactory =
    std::function<std::unique_ptr<SequentialSpec>(const std::string& object)>;

enum class Verdict {
  kLinearizable,     // a witness linearization was found
  kViolation,        // exhaustive search found none
  kBudgetExhausted,  // undecided: states_explored hit the budget
};

struct CheckOptions {
  // Total states_explored budget across all partitions. The default decides
  // every history our suites record in well under a second; pathological
  // (wide, non-linearizable) histories surface as kBudgetExhausted instead
  // of hanging.
  std::uint64_t max_states = 1u << 20;
  // Check each Operation::object sub-history independently (sound for
  // histories over independent objects — every multi-register history in
  // this library). Disable to force one whole-history search.
  bool partition_by_object = true;
};

struct CheckResult {
  Verdict verdict = Verdict::kViolation;
  // A global witness linearization (operation ids in order) when found;
  // per-partition witnesses merged via linearization points.
  std::vector<int> witness;
  std::uint64_t states_explored = 0;
  // Pending (never-responded) invocations dropped before checking
  // (Definition 2's completion construction permits this).
  std::size_t pending_dropped = 0;
  // On kViolation / kBudgetExhausted: which object's partition failed.
  std::string detail;

  bool linearizable() const { return verdict == Verdict::kLinearizable; }
};

// Checks the history against the spec; every partition starts from a
// clone() of `initial_spec`. `ops` may be in any order.
CheckResult check_linearizable(const std::vector<Operation>& ops,
                               const SequentialSpec& initial_spec,
                               const CheckOptions& options = {});

// Heterogeneous-object form: each partition's spec comes from the factory.
CheckResult check_linearizable(const std::vector<Operation>& ops,
                               const SpecFactory& make_spec,
                               const CheckOptions& options = {});

// Reference oracle: the original unpartitioned, unpruned Wing–Gong search
// (bitmask memoization, <= 62 operations — throws std::invalid_argument
// beyond that). Differential tests compare its verdicts against the
// partitioned checker's.
CheckResult check_linearizable_brute(const std::vector<Operation>& ops,
                                     const SequentialSpec& initial_spec,
                                     std::uint64_t max_states = 1u << 20);

// Replays `witness` (operation ids over `ops`) and reports whether it is a
// valid linearization: a permutation of the completed operations that
// respects real-time precedence and applies cleanly to each object's spec.
bool replay_witness(const std::vector<Operation>& ops,
                    const std::vector<int>& witness,
                    const SpecFactory& make_spec);

// Product spec over independent objects: routes each operation to a child
// spec selected by Operation::object, creating children on demand from the
// factory. Used by the brute-force oracle (and tests) to check
// multi-register histories WITHOUT partitioning.
class MultiObjectSpec final : public SequentialSpec {
 public:
  explicit MultiObjectSpec(SpecFactory make_spec)
      : make_spec_(std::move(make_spec)) {}

  MultiObjectSpec(const MultiObjectSpec& other) : make_spec_(other.make_spec_) {
    for (const auto& [object, child] : other.children_)
      children_.emplace(object, child->clone());
  }

  std::unique_ptr<SequentialSpec> clone() const override {
    return std::make_unique<MultiObjectSpec>(*this);
  }

  bool apply(const Operation& op) override {
    auto it = children_.find(op.object);
    if (it == children_.end())
      it = children_.emplace(op.object, make_spec_(op.object)).first;
    return it->second->apply(op);
  }

  std::string state_key() const override {
    std::string key;
    for (const auto& [object, child] : children_)
      key += object + "=" + child->state_key() + ";";
    return key;
  }

 private:
  SpecFactory make_spec_;
  std::map<std::string, std::unique_ptr<SequentialSpec>> children_;
};

}  // namespace swsig::lincheck
