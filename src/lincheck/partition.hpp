// History partitioning and witness merging for the partitioned checker.
//
// SWMR registers are independent objects: no operation touches two of them,
// and a sequential specification for the whole system is the product of the
// per-register specifications. Linearizability is compositional (Herlihy &
// Wing; "P-compositionality" in Horn & Kroening's partitioned checkers): a
// multi-register history is linearizable iff each per-register sub-history
// is. Partitioning therefore turns one 2^N Wing–Gong search over the whole
// history into k independent searches over the (much narrower) per-register
// sub-histories — the same structural decomposition the SWSR->SWMR
// constructions exploit (Hu & Toueg 2022; Kshemkalyani et al. 2024).
//
// The converse direction (stitching the per-register witnesses back into
// ONE total order that respects cross-register real time) is constructive:
// every per-partition linearization admits linearization points
// point_i = max_{j <= i} invoke_ts_j, which lie inside each operation's
// interval and are monotone along the witness; sorting all operations by
// those points yields a global witness. Cross-partition precedence is
// respected because point_a <= response_a < invoke_b <= point_b whenever a
// precedes b.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lincheck/history.hpp"

namespace swsig::lincheck {

// Splits a history into independent per-object sub-histories, keyed by
// Operation::object. Operations recorded without an object id ("") form
// their own partition.
inline std::map<std::string, std::vector<Operation>> partition_by_object(
    const std::vector<Operation>& ops) {
  std::map<std::string, std::vector<Operation>> parts;
  for (const Operation& op : ops) parts[op.object].push_back(op);
  return parts;
}

namespace detail {

// One per-partition witness: the partition's operations (any order) plus
// the operation ids in linearization order.
struct PartitionWitness {
  const std::vector<Operation>* ops = nullptr;
  const std::vector<int>* order = nullptr;
};

}  // namespace detail

// Merges per-partition witnesses into one global linearization order by
// assigning each operation the linearization point max(prefix invoke_ts)
// along its partition's witness and sorting all operations by point.
// Operations whose points tie are concurrent across partitions, so any
// tie-break is valid (we keep emission order for determinism).
inline std::vector<int> merge_partition_witnesses(
    const std::vector<detail::PartitionWitness>& partitions) {
  struct Entry {
    std::uint64_t point;
    std::size_t seq;
    int id;
  };
  std::vector<Entry> entries;
  std::size_t seq = 0;
  for (const detail::PartitionWitness& part : partitions) {
    std::map<int, const Operation*> by_id;
    for (const Operation& op : *part.ops) by_id[op.id] = &op;
    std::uint64_t running = 0;
    for (int id : *part.order) {
      const Operation* op = by_id.at(id);
      running = std::max(running, op->invoke_ts);
      entries.push_back({running, seq++, id});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.point != b.point ? a.point < b.point : a.seq < b.seq;
  });
  std::vector<int> merged;
  merged.reserve(entries.size());
  for (const Entry& e : entries) merged.push_back(e.id);
  return merged;
}

}  // namespace swsig::lincheck
