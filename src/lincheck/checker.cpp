#include "lincheck/checker.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_set>

namespace swsig::lincheck {

namespace {

struct SearchContext {
  const std::vector<Operation>* ops = nullptr;
  std::vector<std::vector<bool>> precedes;  // [i][j]: ops[i] precedes ops[j]
  std::unordered_set<std::string> visited;  // (mask, state) dead ends
  std::vector<int> witness;
  std::uint64_t states = 0;
};

bool search(SearchContext& ctx, std::uint64_t done_mask,
            const SequentialSpec& spec) {
  const auto& ops = *ctx.ops;
  const std::size_t n = ops.size();
  if (std::popcount(done_mask) == static_cast<int>(n)) return true;

  const std::string key = std::to_string(done_mask) + "|" + spec.state_key();
  if (ctx.visited.contains(key)) return false;
  ++ctx.states;

  for (std::size_t i = 0; i < n; ++i) {
    if (done_mask & (1ULL << i)) continue;
    // ops[i] is a candidate next linearization point only if no other
    // pending operation strictly precedes it in real time.
    bool minimal = true;
    for (std::size_t j = 0; j < n && minimal; ++j) {
      if (i == j || (done_mask & (1ULL << j))) continue;
      if (ctx.precedes[j][i]) minimal = false;
    }
    if (!minimal) continue;

    auto next = spec.clone();
    if (!next->apply(ops[i])) continue;
    ctx.witness.push_back(ops[i].id);
    if (search(ctx, done_mask | (1ULL << i), *next)) return true;
    ctx.witness.pop_back();
  }

  ctx.visited.insert(key);
  return false;
}

}  // namespace

CheckResult check_linearizable(const std::vector<Operation>& ops,
                               const SequentialSpec& initial_spec) {
  if (ops.size() > 62)
    throw std::invalid_argument(
        "checker supports histories of at most 62 operations");

  // Sort by invocation time for stable candidate order (pure heuristic).
  std::vector<Operation> sorted = ops;
  std::sort(sorted.begin(), sorted.end(),
            [](const Operation& a, const Operation& b) {
              return a.invoke_ts < b.invoke_ts;
            });

  SearchContext ctx;
  ctx.ops = &sorted;
  ctx.precedes.assign(sorted.size(), std::vector<bool>(sorted.size(), false));
  for (std::size_t i = 0; i < sorted.size(); ++i)
    for (std::size_t j = 0; j < sorted.size(); ++j)
      if (i != j) ctx.precedes[i][j] = sorted[i].precedes(sorted[j]);

  CheckResult result;
  result.linearizable = search(ctx, 0, initial_spec);
  result.witness = std::move(ctx.witness);
  result.states_explored = ctx.states;
  return result;
}

}  // namespace swsig::lincheck
