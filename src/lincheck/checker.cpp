#include "lincheck/checker.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>
#include <unordered_set>

#include "lincheck/partition.hpp"

namespace swsig::lincheck {

namespace {

enum class Outcome { kFound, kDeadEnd, kBudget };

void append_u32(std::string& key, std::uint32_t v) {
  key.push_back(static_cast<char>(v & 0xff));
  key.push_back(static_cast<char>((v >> 8) & 0xff));
  key.push_back(static_cast<char>((v >> 16) & 0xff));
  key.push_back(static_cast<char>(v >> 24));
}

// ---------------------------------------------------------------------------
// Pruned per-partition search.
//
// Operations are sorted by invocation; `frontier` is the first index not yet
// linearized (everything before it is). A non-linearized operation i can be
// the next linearization point iff no other non-linearized j strictly
// precedes it, i.e. iff invoke_ts[i] <= min response_ts over non-linearized
// operations — so the candidates are a small window just past the frontier,
// and when the window has size one the operation is *forced* and consumed
// without branching or memoization.
// ---------------------------------------------------------------------------

struct PrunedContext {
  const std::vector<Operation>* ops = nullptr;
  std::vector<char> done;
  std::size_t n = 0;
  std::size_t ndone = 0;
  std::size_t frontier = 0;
  // response_ts of all non-linearized ops, so the candidate-window bound
  // (min pending response) is O(log n) per linearize/undo instead of a
  // full rescan — the forced fast path stays O(log n) per operation.
  std::multiset<std::uint64_t> pending_resp;
  std::unordered_set<std::string> visited;  // dead-end branch configurations
  std::vector<int> witness;
  std::uint64_t states = 0;
  std::uint64_t budget = 0;
};

void mark_done(PrunedContext& ctx, std::size_t i) {
  ctx.done[i] = 1;
  ++ctx.ndone;
  ctx.pending_resp.erase(ctx.pending_resp.find((*ctx.ops)[i].response_ts));
  while (ctx.frontier < ctx.n && ctx.done[ctx.frontier]) ++ctx.frontier;
}

// Does not restore the frontier (callers save/restore it — it can only
// have moved forward).
void unmark_done(PrunedContext& ctx, std::size_t i) {
  ctx.done[i] = 0;
  --ctx.ndone;
  ctx.pending_resp.insert((*ctx.ops)[i].response_ts);
}

// Fills `out` with the indices of all precedence-minimal non-linearized
// operations. Never empty while operations remain: the operation with the
// earliest pending response is always minimal.
void collect_candidates(const PrunedContext& ctx, std::vector<std::size_t>& out) {
  const auto& ops = *ctx.ops;
  const std::uint64_t min_resp =
      ctx.pending_resp.empty() ? ~0ULL : *ctx.pending_resp.begin();
  out.clear();
  for (std::size_t i = ctx.frontier; i < ctx.n; ++i) {
    if (ctx.done[i]) continue;
    if (ops[i].invoke_ts > min_resp) break;  // sorted: nothing later is minimal
    out.push_back(i);
  }
}

Outcome search(PrunedContext& ctx, const SequentialSpec& spec_in) {
  std::vector<std::size_t> cand;
  std::unique_ptr<SequentialSpec> owned;  // cloned lazily for forced applies
  const SequentialSpec* spec = &spec_in;
  const std::size_t frontier_before = ctx.frontier;

  std::vector<std::size_t> forced_indices;  // forced ops applied in this frame
  const auto undo = [&] {
    for (auto it = forced_indices.rbegin(); it != forced_indices.rend(); ++it) {
      unmark_done(ctx, *it);
      ctx.witness.pop_back();
    }
    forced_indices.clear();
    ctx.frontier = frontier_before;
  };

  // Forced-prefix fast path: consume unique candidates without branching.
  for (;;) {
    if (ctx.ndone == ctx.n) return Outcome::kFound;  // witness complete
    collect_candidates(ctx, cand);
    if (cand.size() != 1) break;
    if (++ctx.states > ctx.budget) {
      undo();
      return Outcome::kBudget;
    }
    const std::size_t i = cand[0];
    if (!owned) {
      owned = spec->clone();
      spec = owned.get();
    }
    if (!owned->apply((*ctx.ops)[i])) {
      undo();
      return Outcome::kDeadEnd;
    }
    mark_done(ctx, i);
    forced_indices.push_back(i);
    ctx.witness.push_back((*ctx.ops)[i].id);
  }

  // Branch point: several truly concurrent candidates. Memoize on
  // (frontier, linearized-beyond-frontier, spec state).
  std::string key;
  key.reserve(4 + 4 * (ctx.ndone - ctx.frontier) + 24);
  append_u32(key, static_cast<std::uint32_t>(ctx.frontier));
  for (std::size_t i = ctx.frontier; i < ctx.n; ++i)
    if (ctx.done[i]) append_u32(key, static_cast<std::uint32_t>(i));
  key.push_back('#');
  key += spec->state_key();
  if (ctx.visited.contains(key)) {
    undo();
    return Outcome::kDeadEnd;
  }
  if (++ctx.states > ctx.budget) {
    undo();
    return Outcome::kBudget;
  }

  for (const std::size_t i : cand) {
    auto next = spec->clone();
    if (!next->apply((*ctx.ops)[i])) continue;
    const std::size_t frontier_saved = ctx.frontier;
    mark_done(ctx, i);
    ctx.witness.push_back((*ctx.ops)[i].id);
    const Outcome o = search(ctx, *next);
    if (o == Outcome::kFound) return o;  // keep witness/state as-is
    ctx.witness.pop_back();
    unmark_done(ctx, i);
    ctx.frontier = frontier_saved;
    if (o == Outcome::kBudget) {
      undo();
      return o;
    }
  }
  ctx.visited.insert(std::move(key));
  undo();
  return Outcome::kDeadEnd;
}

struct PartitionResult {
  Outcome outcome = Outcome::kDeadEnd;
  std::vector<int> witness;
  std::uint64_t states = 0;
};

// Sorts `part` in place (callers own their partitions; downstream witness
// merging looks operations up by id, not position).
PartitionResult check_partition(std::vector<Operation>& part,
                                const SequentialSpec& spec,
                                std::uint64_t budget) {
  std::sort(part.begin(), part.end(),
            [](const Operation& a, const Operation& b) {
              return a.invoke_ts != b.invoke_ts ? a.invoke_ts < b.invoke_ts
                                                : a.id < b.id;
            });
  PrunedContext ctx;
  ctx.ops = &part;
  ctx.n = part.size();
  ctx.done.assign(part.size(), 0);
  for (const Operation& op : part) ctx.pending_resp.insert(op.response_ts);
  ctx.budget = budget;
  PartitionResult result;
  result.outcome = search(ctx, spec);
  result.witness = std::move(ctx.witness);
  result.states = ctx.states;
  return result;
}

std::vector<Operation> drop_pending(const std::vector<Operation>& ops,
                                    std::size_t& dropped) {
  std::vector<Operation> completed;
  completed.reserve(ops.size());
  for (const Operation& op : ops) {
    if (op.pending())
      ++dropped;
    else
      completed.push_back(op);
  }
  return completed;
}

}  // namespace

CheckResult check_linearizable(const std::vector<Operation>& ops,
                               const SpecFactory& make_spec,
                               const CheckOptions& options) {
  CheckResult result;
  const std::vector<Operation> completed = drop_pending(ops, result.pending_dropped);

  std::map<std::string, std::vector<Operation>> parts;
  if (options.partition_by_object) {
    parts = partition_by_object(completed);
  } else if (!completed.empty()) {
    parts.emplace("", completed);
  }

  std::map<std::string, std::vector<int>> orders;
  for (auto& [object, part] : parts) {
    const std::unique_ptr<SequentialSpec> spec = make_spec(object);
    const std::uint64_t budget = options.max_states > result.states_explored
                                     ? options.max_states - result.states_explored
                                     : 0;
    PartitionResult pr = check_partition(part, *spec, budget);
    result.states_explored += pr.states;
    if (pr.outcome == Outcome::kDeadEnd) {
      result.verdict = Verdict::kViolation;
      result.detail = "object '" + object + "' is not linearizable";
      result.witness.clear();
      return result;
    }
    if (pr.outcome == Outcome::kBudget) {
      result.verdict = Verdict::kBudgetExhausted;
      result.detail = "state budget exhausted while checking object '" +
                      object + "'";
      result.witness.clear();
      return result;
    }
    orders.emplace(object, std::move(pr.witness));
  }

  std::vector<detail::PartitionWitness> witnesses;
  witnesses.reserve(parts.size());
  for (const auto& [object, part] : parts)
    witnesses.push_back({&part, &orders.at(object)});
  result.witness = merge_partition_witnesses(witnesses);
  result.verdict = Verdict::kLinearizable;
  return result;
}

CheckResult check_linearizable(const std::vector<Operation>& ops,
                               const SequentialSpec& initial_spec,
                               const CheckOptions& options) {
  return check_linearizable(
      ops,
      [&initial_spec](const std::string&) { return initial_spec.clone(); },
      options);
}

// ---------------------------------------------------------------------------
// Brute-force reference oracle (the pre-partitioning checker, verbatim
// except for the budget and verdict plumbing).
// ---------------------------------------------------------------------------

namespace {

struct BruteContext {
  const std::vector<Operation>* ops = nullptr;
  std::vector<std::vector<bool>> precedes;  // [i][j]: ops[i] precedes ops[j]
  std::unordered_set<std::string> visited;  // (mask, state) dead ends
  std::vector<int> witness;
  std::uint64_t states = 0;
  std::uint64_t budget = 0;
};

Outcome brute_search(BruteContext& ctx, std::uint64_t done_mask,
                     const SequentialSpec& spec) {
  const auto& ops = *ctx.ops;
  const std::size_t n = ops.size();
  if (std::popcount(done_mask) == static_cast<int>(n)) return Outcome::kFound;

  const std::string key = std::to_string(done_mask) + "|" + spec.state_key();
  if (ctx.visited.contains(key)) return Outcome::kDeadEnd;
  if (++ctx.states > ctx.budget) return Outcome::kBudget;

  for (std::size_t i = 0; i < n; ++i) {
    if (done_mask & (1ULL << i)) continue;
    // ops[i] is a candidate next linearization point only if no other
    // pending operation strictly precedes it in real time.
    bool minimal = true;
    for (std::size_t j = 0; j < n && minimal; ++j) {
      if (i == j || (done_mask & (1ULL << j))) continue;
      if (ctx.precedes[j][i]) minimal = false;
    }
    if (!minimal) continue;

    auto next = spec.clone();
    if (!next->apply(ops[i])) continue;
    ctx.witness.push_back(ops[i].id);
    const Outcome o = brute_search(ctx, done_mask | (1ULL << i), *next);
    if (o != Outcome::kDeadEnd) return o;
    ctx.witness.pop_back();
  }

  ctx.visited.insert(key);
  return Outcome::kDeadEnd;
}

}  // namespace

CheckResult check_linearizable_brute(const std::vector<Operation>& ops,
                                     const SequentialSpec& initial_spec,
                                     std::uint64_t max_states) {
  CheckResult result;
  std::vector<Operation> sorted = drop_pending(ops, result.pending_dropped);
  if (sorted.size() > 62)
    throw std::invalid_argument(
        "brute-force checker supports histories of at most 62 operations");

  // Sort by invocation time for stable candidate order (pure heuristic).
  std::sort(sorted.begin(), sorted.end(),
            [](const Operation& a, const Operation& b) {
              return a.invoke_ts != b.invoke_ts ? a.invoke_ts < b.invoke_ts
                                                : a.id < b.id;
            });

  BruteContext ctx;
  ctx.ops = &sorted;
  ctx.budget = max_states;
  ctx.precedes.assign(sorted.size(), std::vector<bool>(sorted.size(), false));
  for (std::size_t i = 0; i < sorted.size(); ++i)
    for (std::size_t j = 0; j < sorted.size(); ++j)
      if (i != j) ctx.precedes[i][j] = sorted[i].precedes(sorted[j]);

  const Outcome o = brute_search(ctx, 0, initial_spec);
  result.states_explored = ctx.states;
  switch (o) {
    case Outcome::kFound:
      result.verdict = Verdict::kLinearizable;
      result.witness = std::move(ctx.witness);
      break;
    case Outcome::kDeadEnd:
      result.verdict = Verdict::kViolation;
      break;
    case Outcome::kBudget:
      result.verdict = Verdict::kBudgetExhausted;
      result.detail = "state budget exhausted";
      break;
  }
  return result;
}

bool replay_witness(const std::vector<Operation>& ops,
                    const std::vector<int>& witness,
                    const SpecFactory& make_spec) {
  std::map<int, const Operation*> by_id;
  for (const Operation& op : ops)
    if (!op.pending()) by_id.emplace(op.id, &op);
  if (witness.size() != by_id.size()) return false;

  MultiObjectSpec spec(make_spec);
  std::set<int> seen;
  std::uint64_t max_invoke = 0;
  for (const int id : witness) {
    const auto it = by_id.find(id);
    if (it == by_id.end() || !seen.insert(id).second) return false;
    const Operation& op = *it->second;
    max_invoke = std::max(max_invoke, op.invoke_ts);
    // An operation invoked earlier in the witness must not strictly follow
    // this one in real time.
    if (op.response_ts < max_invoke) return false;
    if (!spec.apply(op)) return false;
  }
  return true;
}

}  // namespace swsig::lincheck
