#include "byzantine/reset_attack.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "byzantine/behaviors.hpp"
#include "core/verifiable_register.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"

namespace swsig::byzantine {

namespace {

using Reg = core::VerifiableRegister<int>;

}  // namespace

ResetAttackOutcome run_reset_attack(int n, int f) {
  if (n < 3) throw std::invalid_argument("reset attack needs n >= 3");
  if (f < 1) throw std::invalid_argument("reset attack needs f >= 1");

  ResetAttackOutcome out;
  out.n = n;
  out.f = f;

  // Partition per the proof: s=p1, pa=p2, pb=p3; remaining processes fill
  // Q1, Q2, Q3 greedily with at most f-1 each. (For n <= 3f this always
  // fits; for control runs with n > 3f the surplus joins Q2 — awake and
  // correct — which only makes the attack easier to resist, as intended.)
  std::vector<int> q1, q2, q3;
  for (int pid = 4; pid <= n; ++pid) {
    if (static_cast<int>(q1.size()) < f - 1)
      q1.push_back(pid);
    else if (static_cast<int>(q3.size()) < f - 1)
      q3.push_back(pid);
    else
      q2.push_back(pid);
  }
  out.byzantine = q1;
  out.byzantine.insert(out.byzantine.begin(), 1);  // {s} ∪ Q1
  out.asleep = q3;
  out.asleep.insert(out.asleep.begin(), 3);  // {pb} ∪ Q3

  runtime::FreeStepController controller;
  registers::Space space(controller);
  Reg::Config cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.v0 = 0;
  cfg.allow_suboptimal = true;  // the whole point: step outside n > 3f
  Reg reg(space, cfg);

  // phase: 1 = honest pre-attack, 2 = reset in progress, 3 = post-reset.
  std::atomic<int> phase{1};
  std::atomic<int> resets_done{0};

  const auto is_byzantine = [&](int pid) {
    for (int b : out.byzantine)
      if (b == pid) return true;
    return false;
  };
  const auto is_asleep = [&](int pid) {
    for (int a : out.asleep)
      if (a == pid) return true;
    return false;
  };

  std::vector<std::jthread> helpers;
  for (int pid = 1; pid <= n; ++pid) {
    if (is_byzantine(pid)) {
      // Honest helper during phase 1; at phase 2, reset own registers and
      // switch to the denying helper forever after.
      helpers.emplace_back([&, pid](std::stop_token st) {
        runtime::ThisProcess::Binder bind(pid);
        DenyingHelper<Reg> denier(reg);
        bool reset_done = false;
        while (!st.stop_requested()) {
          if (phase.load() == 1) {
            if (!reg.help_round()) std::this_thread::yield();
          } else {
            if (!reset_done) {
              erase_verifiable_registers(reg);
              reset_done = true;
              resets_done.fetch_add(1);
            }
            if (!denier.round()) std::this_thread::yield();
          }
        }
      });
    } else if (is_asleep(pid)) {
      // Takes no steps before phase 3 (the proof's "blank interval").
      helpers.emplace_back([&, pid](std::stop_token st) {
        runtime::ThisProcess::Binder bind(pid);
        while (!st.stop_requested() && phase.load() < 3)
          std::this_thread::yield();
        while (!st.stop_requested()) {
          if (!reg.help_round()) std::this_thread::yield();
        }
      });
    } else {
      helpers.emplace_back([&, pid](std::stop_token st) {
        runtime::ThisProcess::Binder bind(pid);
        while (!st.stop_requested()) {
          if (!reg.help_round()) std::this_thread::yield();
        }
      });
    }
  }

  // ---- Phase 1: Set by s (acting honestly so far), Test by pa.
  {
    runtime::ThisProcess::Binder bind(1);
    reg.write(1);
    reg.sign(1);
  }
  {
    runtime::ThisProcess::Binder bind(2);
    out.first_test = reg.verify(1) ? 1 : 0;
  }

  // ---- Phase 2: Byzantine processes reset and turn into deniers.
  phase.store(2);
  while (resets_done.load() < static_cast<int>(out.byzantine.size()))
    std::this_thread::yield();

  // ---- Phase 3: wake {pb} ∪ Q3; Test' by pb.
  phase.store(3);
  {
    runtime::ThisProcess::Binder bind(3);
    out.second_test = reg.verify(1) ? 1 : 0;
  }

  for (auto& t : helpers) t.request_stop();
  helpers.clear();
  return out;
}

}  // namespace swsig::byzantine
