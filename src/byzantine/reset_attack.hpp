// Mechanization of the Theorem 29 impossibility construction (Fig. 1).
//
// The proof builds three indistinguishable histories H1/H2/H3 of any
// register-based test-or-set implementation with 3 <= n <= 3f and derives a
// contradiction with Lemma 28. This module *executes* the construction
// against our own verifiable-register-based test-or-set, deliberately
// configured outside its guaranteed envelope (allow_suboptimal):
//
//   partition   {s=p1} {pa=p2} {pb=p3}  Q1  Q2  Q3   (|Qi| <= f-1)
//   Byzantine   {s} ∪ Q1                              (<= f processes)
//   asleep      {pb} ∪ Q3  — take no steps before phase 3
//
//   phase 1   s performs Set (Write(1); Sign(1)); pa performs Test -> 1
//   phase 2   the Byzantine processes reset all their registers to initial
//             values and thereafter answer all helping requests with the
//             empty witness set ("you can deny" — outside n > 3f)
//   phase 3   {pb} ∪ Q3 wake; pb performs Test'
//
// For n <= 3f, Test' returns 0 although Test returned 1 — a relay violation
// (Lemma 28(3)) between two CORRECT testers, i.e., the implementation is
// provably not a correct test-or-set at this configuration. For n > 3f the
// same schedule cannot break relay: at least n-2f >= f+1 correct witnesses
// survive the reset, so pb's Test' returns 1. Benchmark T5 sweeps both
// sides of the boundary.
#pragma once

#include <string>
#include <vector>

namespace swsig::byzantine {

struct ResetAttackOutcome {
  int n = 0;
  int f = 0;             // tolerance the implementation is configured with
  int first_test = -1;   // pa's Test   (phase 1); expected 1
  int second_test = -1;  // pb's Test'  (phase 3)
  std::vector<int> byzantine;  // {s} ∪ Q1
  std::vector<int> asleep;     // {pb} ∪ Q3

  // Lemma 28(3) violated: a correct tester saw 1, a later correct tester 0.
  bool relay_violated() const {
    return first_test == 1 && second_test == 0;
  }
};

// Runs the attack against a fresh verifiable-register test-or-set with the
// given (n, f). Requires n >= 4 in this harness (s, pa, pb plus at least
// one helper-capable process; the n == 3 case of the theorem uses the same
// schedule with empty Qi and works identically — included in tests).
// Deterministic given the phase structure: the outcome does not depend on
// thread timing (see the boundary analysis above).
ResetAttackOutcome run_reset_attack(int n, int f);

}  // namespace swsig::byzantine
