// Reusable Byzantine behaviors.
//
// A Byzantine process in this library is an ordinary thread bound to its
// ProcessId running *arbitrary* code — but the register substrate still
// enforces the write-port axiom, so everything here operates only on the
// adversary's own registers (exactly the paper's fault model, §3).
//
// The behaviors target the helping protocol shared by Algorithms 1-3:
//   * DenyingHelper    — answers every asker with the empty witness set:
//                        "I have never witnessed anything" (the denial the
//                        paper's title refers to, and the post-reset
//                        behavior of the Theorem-29 attack).
//   * VoteFlipHelper   — alternates between claiming and denying a target
//                        value across rounds, the §5.1 strawman-breaking
//                        behavior (defeated by the set0-reset mechanism).
//   * erase_*          — wipes the adversary's own registers back to their
//                        initial states ("deny that it ever wrote v", §1).
#pragma once

#include <map>
#include <optional>
#include <set>

#include "core/authenticated_register.hpp"
#include "core/sticky_register.hpp"
#include "core/types.hpp"
#include "core/verifiable_register.hpp"
#include "runtime/process.hpp"

namespace swsig::byzantine {

// Answers every asker with an empty witness set. Works for all three
// algorithms (their HelpTuple first components all default-construct to
// "witness of nothing"). Runs as the process the thread is bound to.
template <typename Alg>
class DenyingHelper {
 public:
  explicit DenyingHelper(Alg& alg) : alg_(&alg) {}

  // One round; returns true if it answered someone.
  bool round() {
    const int j = runtime::ThisProcess::id();
    auto raw = alg_->raw();
    bool helped = false;
    for (int k = 2; k <= alg_->config().n; ++k) {
      const core::RoundCounter ck = (*raw.round)[k]->read();
      if (ck > prev_[k]) {
        (*raw.channel)[j][k]->write(typename Alg::HelpTuple{{}, ck});
        prev_[k] = ck;
        helped = true;
      }
    }
    return helped;
  }

 private:
  Alg* alg_;
  std::map<int, core::RoundCounter> prev_;
};

// Alternates answers about a single target value: witness in odd rounds,
// denier in even rounds. This is the collusion pattern from §5.1 that
// forces f < k < 2f+1 "Yes" counts against a naive quorum-based Verify.
template <typename Alg>
class VoteFlipHelper {
 public:
  using V = typename Alg::Value;

  VoteFlipHelper(Alg& alg, V target) : alg_(&alg), target_(std::move(target)) {}

  bool round() {
    const int j = runtime::ThisProcess::id();
    auto raw = alg_->raw();
    bool helped = false;
    for (int k = 2; k <= alg_->config().n; ++k) {
      const core::RoundCounter ck = (*raw.round)[k]->read();
      if (ck > prev_[k]) {
        typename Alg::HelpTuple answer{{}, ck};
        if (flip_) insert_target(answer.first);
        (*raw.channel)[j][k]->write(answer);
        prev_[k] = ck;
        flip_ = !flip_;
        helped = true;
      }
    }
    return helped;
  }

 private:
  void insert_target(std::set<V>& s) { s.insert(target_); }
  void insert_target(std::optional<V>& s) { s = target_; }

  Alg* alg_;
  V target_;
  bool flip_ = true;
  std::map<int, core::RoundCounter> prev_;
};

// Wipes the calling process's registers of a verifiable register instance
// back to initial state — the "reset" step of the Theorem-29 attack. Must
// be called by a thread bound to the register-owning process.
template <typename V>
void erase_verifiable_registers(core::VerifiableRegister<V>& alg) {
  const int b = runtime::ThisProcess::id();
  auto raw = alg.raw();
  (*raw.witness)[b]->write({});
  for (int k = 2; k <= alg.config().n; ++k)
    (*raw.channel)[b][k]->write({{}, 0});
  if (b == 1) raw.last_value->write(alg.config().v0);
}

// Same for an authenticated register: the writer erases every stamped value
// (including the initial one, if it wants to be maximally hostile).
template <typename V>
void erase_authenticated_registers(core::AuthenticatedRegister<V>& alg) {
  const int b = runtime::ThisProcess::id();
  auto raw = alg.raw();
  if (b == 1) raw.writer_set->write({});
  if (b >= 2) (*raw.witness)[b]->write({});
  for (int k = 2; k <= alg.config().n; ++k)
    (*raw.channel)[b][k]->write({{}, 0});
}

// Sticky register: the adversary erases its echo + witness registers.
template <typename V>
void erase_sticky_registers(core::StickyRegister<V>& alg) {
  const int b = runtime::ThisProcess::id();
  auto raw = alg.raw();
  (*raw.echo)[b]->write(std::nullopt);
  (*raw.witness)[b]->write(std::nullopt);
  for (int k = 2; k <= alg.config().n; ++k)
    (*raw.channel)[b][k]->write({std::nullopt, 0});
}

}  // namespace swsig::byzantine
