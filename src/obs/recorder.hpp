// Lock-free per-thread ring-buffer flight recorder for protocol events.
//
// Design constraints (design note 13 in docs/ARCHITECTURE.md):
//   * cheap enough to stay on in Release: the hot path is one relaxed flag
//     load, one timestamp, five relaxed stores into a cache-resident slot
//     this thread alone writes, and one relaxed head bump — no locks, no
//     allocation (the ring is allocated once, on a thread's first event),
//     no shared cache lines between recording threads;
//   * crash-forensics-readable while writers are live: slots are plain
//     64-bit relaxed atomics, so a concurrent snapshot() is race-free by
//     the memory model; torn slots (overwritten mid-read after a ring
//     wraparound) are detected by re-checking the ring head and discarded;
//   * compile-time kill switch: building with -DSWSIG_OBS_DISABLED (CMake
//     -DSWSIG_OBS=OFF) compiles obs::record() to nothing, for measuring
//     the true zero-cost floor. The runtime toggle (set_enabled) costs one
//     relaxed load on the hot path and is what bench_obs compares against.
//
// Ring discipline: each thread owns one ring of kRingCapacity slots; event
// number h lands in slot h % capacity, and the head counter (number of
// completed events) is bumped with release order after the slot is fully
// written. A reader accepts event h only while head' - h < capacity for
// the head' re-read AFTER copying the slot — anything older may have been
// overwritten mid-copy and is dropped (bounded, counted, never blocking
// the writer).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(__x86_64__)
#include <x86intrin.h>  // __rdtsc: ~3x cheaper than the vdso clock
#endif

#include "obs/event.hpp"
#include "util/sharded_counter.hpp"

#if !defined(SWSIG_OBS_DISABLED)
#define SWSIG_OBS_ENABLED 1
#endif

namespace swsig::obs {

class FlightRecorder {
 public:
  // Events retained per thread. 4096 × 40 B = 160 KiB per recording
  // thread — a soak run's n+clients threads stay well under 8 MiB.
  static constexpr std::size_t kRingCapacity = 4096;
  // Thread ordinals past this record nothing (counted, never UB). The soak
  // harness peaks at tens of threads; 1024 is process-lifetime headroom.
  static constexpr std::size_t kMaxThreads = 1024;

  static FlightRecorder& instance() {
    static FlightRecorder recorder;
    return recorder;
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Nanoseconds since the recorder's epoch (first instance() call).
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // Hot path. Timestamp is stamped here iff the caller left ts_ns == 0.
  // On x86-64 the stamp is a raw TSC tick count (bit 63 set as a marker),
  // converted to epoch-relative nanoseconds lazily in snapshot() — the
  // clock read is the single most expensive instruction on this path, and
  // __rdtsc is ~3x cheaper than the vdso steady_clock. Assumes the
  // invariant TSC of every post-2010 x86; worst case on exotic hardware
  // is skewed forensic timestamps, never corrupt events.
  void record(Event e) {
    if (!enabled()) return;
    const std::size_t ordinal = util::thread_ordinal();
    if (ordinal >= kMaxThreads) {
      overflow_threads_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Ring* ring = rings_[ordinal].load(std::memory_order_acquire);
    if (!ring) ring = allocate(ordinal);
    if (e.ts_ns == 0) {
#if defined(__x86_64__)
      e.ts_ns = kTickStamp | ((__rdtsc() - epoch_tsc_) & ~kTickStamp);
#else
      e.ts_ns = now_ns();
#endif
    }
    std::uint64_t w[5];
    pack(e, w);
    const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
    Slot& slot = ring->slots[h % kRingCapacity];
    for (int i = 0; i < 5; ++i)
      slot.w[static_cast<std::size_t>(i)].store(w[i],
                                                std::memory_order_relaxed);
    // Release: a snapshot reader that observes head > h sees the slot's
    // words (its relaxed loads are ordered after the acquire head load).
    ring->head.store(h + 1, std::memory_order_release);
  }

  // Copies out the last `last_n_per_thread` events of every thread's ring,
  // merged and sorted by timestamp. Safe concurrently with writers; slots
  // overwritten mid-copy are dropped (see file comment). A full ring
  // yields capacity - 1 events: the oldest slot is exactly one wraparound
  // behind the writer, which could be mid-overwrite on it, so the torn
  // check can never accept it and the window skips it up front.
  std::vector<Event> snapshot(
      std::size_t last_n_per_thread = kRingCapacity) const {
    std::vector<Event> out;
    // Tick -> ns conversion factor, calibrated against the elapsed steady
    // clock once per snapshot (forensics path; precision drift is noise).
    double ns_per_tick = 0.0;
#if defined(__x86_64__)
    const std::uint64_t ticks_now = (__rdtsc() - epoch_tsc_) & ~kTickStamp;
    if (ticks_now > 0)
      ns_per_tick =
          static_cast<double>(now_ns()) / static_cast<double>(ticks_now);
#endif
    for (std::size_t t = 0; t < kMaxThreads; ++t) {
      const Ring* ring = rings_[t].load(std::memory_order_acquire);
      if (!ring) continue;
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      const std::uint64_t reachable =
          head < kRingCapacity ? head : kRingCapacity - 1;
      const std::uint64_t window =
          std::min<std::uint64_t>(reachable, last_n_per_thread);
      for (std::uint64_t h = head - window; h < head; ++h) {
        std::uint64_t w[5];
        const Slot& slot = ring->slots[h % kRingCapacity];
        for (int i = 0; i < 5; ++i)
          w[i] = slot.w[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
        // Torn-slot check: if the writer has meanwhile advanced to (or
        // past) event h + capacity, the slot we just copied may mix two
        // events — discard it.
        if (ring->head.load(std::memory_order_acquire) - h >= kRingCapacity)
          continue;
        Event e = unpack(w);
        if (e.ts_ns & kTickStamp)
          e.ts_ns = static_cast<std::uint64_t>(
              static_cast<double>(e.ts_ns & ~kTickStamp) * ns_per_tick);
        out.push_back(e);
      }
    }
    std::sort(out.begin(), out.end(),
              [](const Event& a, const Event& b) { return a.ts_ns < b.ts_ns; });
    return out;
  }

  // Events recorded process-wide (monotone; includes overwritten ones).
  std::uint64_t events_recorded() const {
    std::uint64_t total = 0;
    for (std::size_t t = 0; t < kMaxThreads; ++t) {
      const Ring* ring = rings_[t].load(std::memory_order_acquire);
      if (ring) total += ring->head.load(std::memory_order_relaxed);
    }
    return total;
  }

  std::uint64_t overflow_thread_events() const {
    return overflow_threads_.load(std::memory_order_relaxed);
  }

  // Test hook: rewinds every ring. Callers must quiesce recording threads
  // first (a concurrent record() would race the rewind benignly but leave
  // a mixed trace).
  void clear() {
    for (std::size_t t = 0; t < kMaxThreads; ++t) {
      Ring* ring = rings_[t].load(std::memory_order_acquire);
      if (ring) ring->head.store(0, std::memory_order_release);
    }
    overflow_threads_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::array<std::atomic<std::uint64_t>, 5> w{};
  };
  struct Ring {
    std::atomic<std::uint64_t> head{0};
    std::array<Slot, kRingCapacity> slots{};
  };

  // Bit 63 of ts_ns marks a raw-tick stamp awaiting conversion; caller
  // pre-stamped nanosecond values (tests, benchmarks) never set it.
  static constexpr std::uint64_t kTickStamp = 1ull << 63;

  FlightRecorder() : epoch_(std::chrono::steady_clock::now()) {
#if defined(__x86_64__)
    epoch_tsc_ = __rdtsc();
#endif
  }
  ~FlightRecorder() {
    for (auto& r : rings_) delete r.load(std::memory_order_acquire);
  }
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  Ring* allocate(std::size_t ordinal) {
    auto* fresh = new Ring();
    Ring* expected = nullptr;
    if (!rings_[ordinal].compare_exchange_strong(expected, fresh,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
      delete fresh;  // only possible if ordinals were ever shared; they are
      return expected;  // per-thread, so in practice this branch is dead
    }
    return fresh;
  }

  const std::chrono::steady_clock::time_point epoch_;
#if defined(__x86_64__)
  std::uint64_t epoch_tsc_ = 0;
#endif
  std::atomic<bool> enabled_{true};
  std::array<std::atomic<Ring*>, kMaxThreads> rings_{};
  std::atomic<std::uint64_t> overflow_threads_{0};
};

// The instrumentation entry point. With SWSIG_OBS_DISABLED this inlines to
// nothing — call sites need no #ifdefs.
inline void record(const Event& e) {
#if defined(SWSIG_OBS_ENABLED)
  FlightRecorder::instance().record(e);
#else
  (void)e;
#endif
}

inline bool recording() {
#if defined(SWSIG_OBS_ENABLED)
  return FlightRecorder::instance().enabled();
#else
  return false;
#endif
}

}  // namespace swsig::obs
