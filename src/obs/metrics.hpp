// Unified metrics registry: named sharded counters and log-bucketed
// latency histograms for every layer of the message-passing stack.
//
// The registry replaces the ad-hoc telemetry that had grown per layer —
// registers::Metrics' bare counter pair, the raw latency vectors in
// soak/report.hpp, Network's three hand-rolled atomics — with one named
// namespace ("net.send.WRITE", "soak.read_us", ...) that exporters walk
// uniformly (bench-JSON via each_counter/each_histogram, human dumps via
// obs/export.hpp). Layers that keep their own hot-path counters (the
// free-mode step accounting needs registers::Metrics' raw ShardedCounter)
// publish through gauge callbacks instead of moving their storage.
//
// Hot-path costs: counter add = one per-thread sharded relaxed add
// (util::ShardedCounter); histogram add = one frexp + one relaxed
// fetch_add on a 8-sub-bucket-per-octave log-linear bucket array. Name
// lookup takes a mutex and is done ONCE per call site (construction time),
// never per operation.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/sharded_counter.hpp"

namespace swsig::obs {

// Log-linear latency histogram over positive doubles (canonically µs).
//
// Buckets: kSub sub-buckets per power-of-two octave across exponents
// [kMinExp, kMaxExp) — with kSub = 8 the bucket width ratio is 2^(1/8) ≈
// 1.09, so any reconstructed quantile is within ~9% (relative) of the
// exact sample quantile; quantile() returns the geometric midpoint of the
// selected bucket, halving that to ~4.5% (tested against util::Samples'
// exact percentiles in tests/obs_test.cpp). add() is wait-free: one
// relaxed fetch_add on the bucket. Values outside the range clamp into the
// edge buckets (2^-11 µs ≈ 0.5 ps to 2^29 µs ≈ 9 min — nothing we time
// escapes it).
class LogHistogram {
 public:
  static constexpr int kSub = 8;
  static constexpr int kMinExp = -10;
  static constexpr int kMaxExp = 30;
  static constexpr int kBuckets = (kMaxExp - kMinExp) * kSub;

  void add(double v) {
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }

  // Quantile reconstruction: nearest-rank over bucket counts, geometric
  // midpoint of the winning bucket. p in [0, 100]. 0 on an empty histogram.
  double quantile(double p) const {
    std::uint64_t counts[kBuckets];
    std::uint64_t total = 0;
    for (int b = 0; b < kBuckets; ++b) {
      counts[b] = buckets_[static_cast<std::size_t>(b)].load(
          std::memory_order_relaxed);
      total += counts[b];
    }
    if (total == 0) return 0.0;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(total - 1));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen > rank) return bucket_mid(b);
    }
    return bucket_mid(kBuckets - 1);
  }

  double p50() const { return quantile(50.0); }
  double p99() const { return quantile(99.0); }
  double p999() const { return quantile(99.9); }

  // Lower/upper value bounds of bucket b — exposed for the exactness test.
  static double bucket_lo(int b) {
    const int exp = kMinExp + b / kSub;
    const int sub = b % kSub;
    return std::ldexp(1.0 + static_cast<double>(sub) / kSub, exp - 1);
  }
  static double bucket_hi(int b) { return bucket_lo(b + 1); }

  static int bucket_of(double v) {
    if (!(v > 0)) return 0;  // nonpositive / NaN clamp to the first bucket
    int exp;
    const double mant = std::frexp(v, &exp);  // mant in [0.5, 1)
    const int sub = static_cast<int>((mant - 0.5) * 2.0 * kSub);
    const int idx = (exp - kMinExp) * kSub + std::min(sub, kSub - 1);
    return std::clamp(idx, 0, kBuckets - 1);
  }

  // Quiescent-only rewind (soak runs reset their histograms between
  // substrates; concurrent add()s during a reset are not torn, just
  // attributed to whichever side of the reset they land on).
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  static double bucket_mid(int b) {
    return std::sqrt(bucket_lo(b) * bucket_hi(b));
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double p50 = 0, p99 = 0, p999 = 0;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global() {
    static MetricsRegistry registry;
    return registry;
  }

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the counter named `name`, creating it on first use. The
  // reference is stable for the registry's lifetime — call sites resolve
  // once and hold it.
  util::ShardedCounter& counter(const std::string& name) {
    std::scoped_lock lock(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<util::ShardedCounter>();
    return *slot;
  }

  LogHistogram& histogram(const std::string& name) {
    std::scoped_lock lock(mu_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<LogHistogram>();
    return *slot;
  }

  // Gauge: a named readout callback for layers that keep their own
  // counter storage (registers::Metrics, Network totals). The handle
  // deregisters on destruction — gauges must not outlive their source.
  class GaugeHandle {
   public:
    GaugeHandle() = default;
    GaugeHandle(MetricsRegistry* reg, std::uint64_t id)
        : reg_(reg), id_(id) {}
    GaugeHandle(GaugeHandle&& other) noexcept { *this = std::move(other); }
    GaugeHandle& operator=(GaugeHandle&& other) noexcept {
      release();
      reg_ = other.reg_;
      id_ = other.id_;
      other.reg_ = nullptr;
      return *this;
    }
    ~GaugeHandle() { release(); }
    GaugeHandle(const GaugeHandle&) = delete;
    GaugeHandle& operator=(const GaugeHandle&) = delete;

    void release() {
      if (reg_) reg_->remove_gauge(id_);
      reg_ = nullptr;
    }

   private:
    MetricsRegistry* reg_ = nullptr;
    std::uint64_t id_ = 0;
  };

  [[nodiscard]] GaugeHandle gauge(std::string name,
                                  std::function<std::uint64_t()> read) {
    std::scoped_lock lock(mu_);
    const std::uint64_t id = ++next_gauge_;
    gauges_[id] = {std::move(name), std::move(read)};
    return GaugeHandle(this, id);
  }

  // Snapshots (counters include gauges). `prefix` filters by name prefix;
  // empty matches everything. Counters with value 0 are still reported —
  // a zero SLO counter is information.
  std::vector<CounterSnapshot> counters(const std::string& prefix = "") const {
    std::scoped_lock lock(mu_);
    std::vector<CounterSnapshot> out;
    for (const auto& [name, c] : counters_)
      if (name.rfind(prefix, 0) == 0) out.push_back({name, c->value()});
    for (const auto& [id, g] : gauges_)
      if (g.name.rfind(prefix, 0) == 0) out.push_back({g.name, g.read()});
    return out;
  }

  // Quiescent-only rewind of every histogram under `prefix` — soak runs
  // reset their latency namespaces between substrates so one process can
  // host several runs without cross-contamination.
  void reset_histograms(const std::string& prefix = "") {
    std::scoped_lock lock(mu_);
    for (auto& [name, h] : histograms_)
      if (name.rfind(prefix, 0) == 0) h->reset();
  }

  std::vector<HistogramSnapshot> histograms(
      const std::string& prefix = "") const {
    std::scoped_lock lock(mu_);
    std::vector<HistogramSnapshot> out;
    for (const auto& [name, h] : histograms_)
      if (name.rfind(prefix, 0) == 0)
        out.push_back({name, h->count(), h->p50(), h->p99(), h->p999()});
    return out;
  }

 private:
  friend class GaugeHandle;
  void remove_gauge(std::uint64_t id) {
    std::scoped_lock lock(mu_);
    gauges_.erase(id);
  }

  struct Gauge {
    std::string name;
    std::function<std::uint64_t()> read;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<util::ShardedCounter>> counters_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
  std::map<std::uint64_t, Gauge> gauges_;
  std::uint64_t next_gauge_ = 0;
};

}  // namespace swsig::obs
