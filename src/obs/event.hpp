// Typed protocol events for the flight recorder (obs/recorder.hpp).
//
// One Event is one observable step of the message-passing stack: a message
// crossing the network, a Bracha-ladder phase transition, a quorum wait, a
// crash/restart/resync. Ladder events carry the correlation key
// (reg, origin, sn) — register id, ladder origin (the owner leading the
// write or round), and the sequence/round number — so one write's full
// echo/accept/amplify/deliver lifecycle can be reconstructed across all n
// processes from a dumped trace (obs/export.hpp groups by this key).
//
// Events are fixed-size and trivially packable into 5 64-bit words
// (recorder slots are relaxed-atomic words, so concurrent dump reads are
// race-free without locking the hot path).
#pragma once

#include <cstdint>
#include <string>

namespace swsig::obs {

enum class EventKind : std::uint8_t {
  kNone = 0,
  // Network plane (pid = recording process; peer = the other endpoint).
  kMsgSend,   // message accepted by the network (before fault decisions)
  kMsgRecv,   // message pulled from the inbox by a server/client thread
  kMsgDrop,   // fault injector dropped it (aux unused)
  kMsgDelay,  // fault injector held it back (aux = delay in ms)
  // Client operations (pid = invoking process).
  kWriteStart,  // owner broadcast WRITE/BWRITE; sn = write sn or round
  kWriteDone,   // ACK/BACK quorum landed (aux = latency in ns)
  kReadStart,   // quorum read round opened; sn = rid
  kReadRetry,   // no sufficiently-supported pair; retrying with fresh rid
  kReadDone,    // quorum pair adopted (sn = rid, aux = adopted write sn)
  kQuorumWait,  // about to block for a quorum (aux = replies still needed)
  // Bracha ladder, per process (pid = the process moving phase).
  kPhaseEcho,     // echoed (WRITE seen first time / round interned)
  kPhaseAccept,   // sent ACCEPT via the n-f echo quorum (aux = echoes)
  kPhaseAmplify,  // sent ACCEPT via the f+1 accept amplification rule
  kPhaseDeliver,  // delivered: applied (sn, value) / round op to the store
  kPhaseAck,      // sent ACK/BACK to the ladder origin
  // Batched round protocol (reg = kBatchProto sentinel, sn = round).
  kRoundLead,      // origin broadcast BWRITE (aux = ops in the batch)
  kRoundComplete,  // origin's BACK quorum landed (aux = last ticket)
  // Fault plane (pid = the affected process).
  kCrash,
  kRestart,
  kResync,
  // Retry / abort plane (pid = the retrying or aborting process).
  kOpRetry,    // deadline lapsed, op re-issued (aux = backoff ms just waited)
  kOpTimeout,  // op gave up at its overall deadline (retries disabled/spent)
  kWriteAbort,  // owner's recovery fence finalized the write as aborted
  // Read coalescing (pid = the reader that adopted another round's result;
  // sn = the adopted round generation, aux = the adopted write sn).
  kReadCoalesced,
  // Partition plane (pid = the cut-off process; aux = PartitionMode).
  kPartitionCut,
  kPartitionHeal,
  // Certificate plane (pid = the verifying process; origin = slot sender,
  // sn = slot seq, aux = the interned certificate handle). Recorded when a
  // fully-verified aggregate certificate is interned, so dumps can
  // attribute later handle-only deliveries back to the witnessed slot.
  kCertIntern,
  kCount
};

inline const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kNone: return "none";
    case EventKind::kMsgSend: return "send";
    case EventKind::kMsgRecv: return "recv";
    case EventKind::kMsgDrop: return "drop";
    case EventKind::kMsgDelay: return "delay";
    case EventKind::kWriteStart: return "write_start";
    case EventKind::kWriteDone: return "write_done";
    case EventKind::kReadStart: return "read_start";
    case EventKind::kReadRetry: return "read_retry";
    case EventKind::kReadDone: return "read_done";
    case EventKind::kQuorumWait: return "quorum_wait";
    case EventKind::kPhaseEcho: return "echo";
    case EventKind::kPhaseAccept: return "accept";
    case EventKind::kPhaseAmplify: return "amplify";
    case EventKind::kPhaseDeliver: return "deliver";
    case EventKind::kPhaseAck: return "ack";
    case EventKind::kRoundLead: return "round_lead";
    case EventKind::kRoundComplete: return "round_complete";
    case EventKind::kCrash: return "crash";
    case EventKind::kRestart: return "restart";
    case EventKind::kResync: return "resync";
    case EventKind::kOpRetry: return "op_retry";
    case EventKind::kOpTimeout: return "op_timeout";
    case EventKind::kWriteAbort: return "write_abort";
    case EventKind::kReadCoalesced: return "read_coalesced";
    case EventKind::kPartitionCut: return "partition_cut";
    case EventKind::kPartitionHeal: return "partition_heal";
    case EventKind::kCertIntern: return "cert_intern";
    default: return "?";
  }
}

// Interned Message::type tags: the protocol vocabulary is a small closed
// set, so network-plane events carry a one-byte tag instead of a string.
enum class MsgTag : std::uint8_t {
  kOther = 0,
  kWrite, kEcho, kAccept, kAck, kRead, kState,          // per-write ladder
  kBWrite, kBEcho, kBAccept, kBack,                     // batched rounds
  kInit, kWbEcho, kReady,                               // witness broadcast
  kAbort, kAbAck, kCWrite,                              // write-abort fence
  kCount
};

inline const char* tag_name(MsgTag t) {
  switch (t) {
    case MsgTag::kOther: return "OTHER";
    case MsgTag::kWrite: return "WRITE";
    case MsgTag::kEcho: return "ECHO";
    case MsgTag::kAccept: return "ACCEPT";
    case MsgTag::kAck: return "ACK";
    case MsgTag::kRead: return "READ";
    case MsgTag::kState: return "STATE";
    case MsgTag::kBWrite: return "BWRITE";
    case MsgTag::kBEcho: return "BECHO";
    case MsgTag::kBAccept: return "BACCEPT";
    case MsgTag::kBack: return "BACK";
    case MsgTag::kInit: return "INIT";
    case MsgTag::kWbEcho: return "WECHO";
    case MsgTag::kReady: return "READY";
    case MsgTag::kAbort: return "ABORT";
    case MsgTag::kAbAck: return "ABACK";
    case MsgTag::kCWrite: return "CWRITE";
    default: return "?";
  }
}

// Interns a Message::type string. ECHO/READY are shared between the
// per-write ladder and witness broadcast; the ladder's reg field
// disambiguates in dumps, so ECHO maps to one tag.
inline MsgTag tag_of(const std::string& type) {
  if (type.empty()) return MsgTag::kOther;
  switch (type[0]) {
    case 'W': return type == "WRITE" ? MsgTag::kWrite : MsgTag::kOther;
    case 'E': return type == "ECHO" ? MsgTag::kEcho : MsgTag::kOther;
    case 'A':
      if (type == "ACCEPT") return MsgTag::kAccept;
      if (type == "ACK") return MsgTag::kAck;
      if (type == "ABORT") return MsgTag::kAbort;
      return type == "ABACK" ? MsgTag::kAbAck : MsgTag::kOther;
    case 'C': return type == "CWRITE" ? MsgTag::kCWrite : MsgTag::kOther;
    case 'R':
      if (type == "READ") return MsgTag::kRead;
      return type == "READY" ? MsgTag::kReady : MsgTag::kOther;
    case 'S': return type == "STATE" ? MsgTag::kState : MsgTag::kOther;
    case 'B':
      if (type == "BWRITE") return MsgTag::kBWrite;
      if (type == "BECHO") return MsgTag::kBEcho;
      if (type == "BACCEPT") return MsgTag::kBAccept;
      return type == "BACK" ? MsgTag::kBack : MsgTag::kOther;
    case 'I': return type == "INIT" ? MsgTag::kInit : MsgTag::kOther;
    default: return MsgTag::kOther;
  }
}

struct Event {
  std::uint64_t ts_ns = 0;  // monotonic, recorder-epoch-relative
  EventKind kind = EventKind::kNone;
  MsgTag tag = MsgTag::kOther;  // network-plane events only
  std::int16_t pid = 0;         // process recording the event
  std::int16_t peer = 0;        // other endpoint of a message (0 if n/a)
  std::int32_t reg = 0;         // register / protocol instance id
  std::int32_t origin = 0;      // ladder origin pid (0 if n/a)
  std::uint64_t sn = 0;         // sn / round / rid
  std::uint64_t aux = 0;        // kind-specific (see EventKind comments)
};

// Word packing for the recorder's atomic slots.
inline void pack(const Event& e, std::uint64_t w[5]) {
  w[0] = e.ts_ns;
  w[1] = static_cast<std::uint64_t>(static_cast<std::uint8_t>(e.kind)) |
         static_cast<std::uint64_t>(static_cast<std::uint8_t>(e.tag)) << 8 |
         static_cast<std::uint64_t>(static_cast<std::uint16_t>(e.pid)) << 16 |
         static_cast<std::uint64_t>(static_cast<std::uint16_t>(e.peer)) << 32;
  w[2] = static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.reg)) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.origin))
             << 32;
  w[3] = e.sn;
  w[4] = e.aux;
}

inline Event unpack(const std::uint64_t w[5]) {
  Event e;
  e.ts_ns = w[0];
  e.kind = static_cast<EventKind>(static_cast<std::uint8_t>(w[1]));
  e.tag = static_cast<MsgTag>(static_cast<std::uint8_t>(w[1] >> 8));
  e.pid = static_cast<std::int16_t>(static_cast<std::uint16_t>(w[1] >> 16));
  e.peer = static_cast<std::int16_t>(static_cast<std::uint16_t>(w[1] >> 32));
  e.reg = static_cast<std::int32_t>(static_cast<std::uint32_t>(w[2]));
  e.origin = static_cast<std::int32_t>(static_cast<std::uint32_t>(w[2] >> 32));
  e.sn = w[3];
  e.aux = w[4];
  return e;
}

}  // namespace swsig::obs
