// Flight-recorder and metrics exporters: the machine-parseable trace dump
// (tools/trace_view.py renders it), the human-readable ladder correlation
// that wedge forensics print next to REPRO lines, and the metric walk the
// bench-JSON reporters use.
//
// Trace format (one event per line, whitespace-separated):
//
//   # swsig-trace v1
//   EV <ts_us> <pid> <kind> <tag> <reg> <origin> <sn> <aux> <peer>
//
// Ladder correlation groups phase events by (reg, origin, sn) — one
// group is one write's (or one batched round's) life across all n
// processes. A ladder that opened (write_start / round_lead / echo) but
// never completed (no write_done / round_complete, and fewer delivers
// than echoes) is STALLED; the wedge report names its key and the last
// phase any process completed, which localizes a wedge to a protocol rung
// instead of a printf hunt (the PR-6 delay-pump bug took exactly that).
#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace swsig::obs {

inline bool is_phase(EventKind k) {
  switch (k) {
    case EventKind::kWriteStart:
    case EventKind::kWriteDone:
    case EventKind::kRoundLead:
    case EventKind::kRoundComplete:
    case EventKind::kPhaseEcho:
    case EventKind::kPhaseAccept:
    case EventKind::kPhaseAmplify:
    case EventKind::kPhaseDeliver:
    case EventKind::kPhaseAck:
      return true;
    default:
      return false;
  }
}

// Machine-parseable dump of `events` (normally a recorder snapshot).
inline void dump_trace(std::ostream& os, const std::vector<Event>& events) {
  os << "# swsig-trace v1\n";
  for (const Event& e : events) {
    os << "EV " << static_cast<double>(e.ts_ns) / 1000.0 << " " << e.pid
       << " " << kind_name(e.kind) << " " << tag_name(e.tag) << " " << e.reg
       << " " << e.origin << " " << e.sn << " " << e.aux << " " << e.peer
       << "\n";
  }
}

// One ladder's life, reconstructed across processes.
struct LadderSummary {
  std::int32_t reg = 0;
  std::int32_t origin = 0;
  std::uint64_t sn = 0;
  std::uint64_t first_ts_ns = 0, last_ts_ns = 0;
  // Distinct processes that reached each rung.
  std::set<std::int16_t> echoed, accepted, delivered, acked;
  bool started = false;    // write_start / round_lead seen
  bool completed = false;  // write_done / round_complete seen

  // Highest rung ANY process completed, as a phase name.
  const char* last_phase() const {
    if (completed) return "complete";
    if (!acked.empty()) return "ack";
    if (!delivered.empty()) return "deliver";
    if (!accepted.empty()) return "accept";
    if (!echoed.empty()) return "echo";
    return started ? "start" : "none";
  }

  // A ladder is stalled when it opened but no completion landed and no
  // process delivered: messages went out, the quorum never closed.
  bool stalled() const {
    return (started || !echoed.empty()) && !completed && delivered.empty();
  }
};

inline std::vector<LadderSummary> correlate_ladders(
    const std::vector<Event>& events) {
  std::map<std::tuple<std::int32_t, std::int32_t, std::uint64_t>,
           LadderSummary>
      ladders;
  for (const Event& e : events) {
    if (!is_phase(e.kind)) continue;
    auto& l = ladders[{e.reg, e.origin, e.sn}];
    if (l.first_ts_ns == 0) {
      l.reg = e.reg;
      l.origin = e.origin;
      l.sn = e.sn;
      l.first_ts_ns = e.ts_ns;
    }
    l.last_ts_ns = e.ts_ns;
    switch (e.kind) {
      case EventKind::kWriteStart:
      case EventKind::kRoundLead:
        l.started = true;
        break;
      case EventKind::kWriteDone:
      case EventKind::kRoundComplete:
        l.completed = true;
        break;
      case EventKind::kPhaseEcho:
        l.echoed.insert(e.pid);
        break;
      case EventKind::kPhaseAccept:
      case EventKind::kPhaseAmplify:
        l.accepted.insert(e.pid);
        break;
      case EventKind::kPhaseDeliver:
        l.delivered.insert(e.pid);
        break;
      case EventKind::kPhaseAck:
        l.acked.insert(e.pid);
        break;
      default:
        break;
    }
  }
  std::vector<LadderSummary> out;
  out.reserve(ladders.size());
  for (auto& [key, l] : ladders) out.push_back(std::move(l));
  return out;
}

inline void print_ladder(std::ostream& os, const LadderSummary& l) {
  os << "  ladder reg=" << l.reg << " origin=p" << l.origin << " sn=" << l.sn
     << ": last phase " << l.last_phase() << " (echo " << l.echoed.size()
     << ", accept " << l.accepted.size() << ", deliver "
     << l.delivered.size() << ", ack " << l.acked.size() << " procs; "
     << (l.completed ? "completed" : l.stalled() ? "STALLED" : "in flight")
     << ", " << static_cast<double>(l.last_ts_ns - l.first_ts_ns) / 1000.0
     << " us span)\n";
}

// Human-readable wedge report: every stalled ladder (oldest first), then
// the most recent events for context. This is what the soak harness and
// stress suites print next to the REPRO line on a liveness stall, SLO
// breach, or wedge.
inline void wedge_report(std::ostream& os, const std::vector<Event>& events,
                         std::size_t last_events = 48) {
  std::vector<LadderSummary> ladders = correlate_ladders(events);
  std::vector<const LadderSummary*> stalled;
  for (const LadderSummary& l : ladders)
    if (l.stalled()) stalled.push_back(&l);
  std::sort(stalled.begin(), stalled.end(),
            [](const LadderSummary* a, const LadderSummary* b) {
              return a->first_ts_ns < b->first_ts_ns;
            });
  os << "flight recorder: " << events.size() << " events, "
     << ladders.size() << " ladders, " << stalled.size() << " stalled\n";
  for (const LadderSummary* l : stalled) print_ladder(os, *l);
  if (events.empty()) return;
  os << "last " << std::min(last_events, events.size()) << " events:\n";
  const std::size_t begin =
      events.size() > last_events ? events.size() - last_events : 0;
  for (std::size_t i = begin; i < events.size(); ++i) {
    const Event& e = events[i];
    os << "  [" << static_cast<double>(e.ts_ns) / 1000.0 << "us] p" << e.pid
       << " " << kind_name(e.kind);
    if (e.tag != MsgTag::kOther) os << " " << tag_name(e.tag);
    os << " reg=" << e.reg;
    if (e.origin != 0) os << " origin=p" << e.origin;
    os << " sn=" << e.sn;
    if (e.aux != 0) os << " aux=" << e.aux;
    if (e.peer != 0) os << " peer=p" << e.peer;
    os << "\n";
  }
}

// Writes the full machine trace + wedge report to `path`. Returns false
// (best-effort, never throws) when the file cannot be written. The soak
// driver and CI upload these as failure artifacts.
inline bool write_trace_file(const std::string& path,
                             const std::vector<Event>& events) {
  std::ofstream out(path);
  if (!out) return false;
  dump_trace(out, events);
  out << "# ladders\n";
  for (const LadderSummary& l : correlate_ladders(events)) print_ladder(out, l);
  return static_cast<bool>(out);
}

}  // namespace swsig::obs
