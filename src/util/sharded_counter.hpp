// Per-thread-sharded monotone counter for write-heavy / read-rarely
// telemetry (access metering, free-mode step counts).
//
// Each thread owns a private cache-line-padded slot, indexed by a
// process-wide thread ordinal: the increment is a relaxed load+add+store on
// memory no other thread writes — no locked instruction, no shared cache
// line — and value() folds the slots. Slots live in lazily allocated
// fixed-size chunks, so ordinals never wrap and slots are never shared
// (single-writer => the unlocked read-modify-write is exact). Threads past
// the chunk capacity (kChunks * kSlotsPerChunk = 16384 per process
// lifetime) fall back to one shared fetch_add slot, trading speed for
// correctness, never dropping counts.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace swsig::util {

// Ordinal of the calling thread, assigned on first use (monotone,
// process-wide, never reused). Stable for the thread's lifetime.
inline std::size_t thread_ordinal() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

class ShardedCounter {
 public:
  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  ~ShardedCounter() {
    for (auto& c : chunks_) delete c.load(std::memory_order_acquire);
  }

  void add(std::uint64_t delta = 1) {
    Slot* slot = slot_for(thread_ordinal());
    if (slot) {
      // Single writer per slot: an unlocked read-modify-write is exact.
      slot->v.store(slot->v.load(std::memory_order_relaxed) + delta,
                    std::memory_order_relaxed);
    } else {
      overflow_.fetch_add(delta, std::memory_order_relaxed);
    }
  }

  std::uint64_t value() const {
    std::uint64_t sum = overflow_.load(std::memory_order_relaxed);
    for (const auto& c : chunks_) {
      const Chunk* chunk = c.load(std::memory_order_acquire);
      if (!chunk) continue;
      for (const Slot& s : chunk->slots)
        sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  // 64 is the destructive-interference size on every target we build for;
  // hardcoded (not std::hardware_destructive_interference_size) so the
  // slot layout is ABI-stable across compiler flags.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  static constexpr std::size_t kSlotsPerChunk = 64;  // 4 KiB per chunk
  static constexpr std::size_t kChunks = 256;
  struct Chunk {
    std::array<Slot, kSlotsPerChunk> slots{};
  };

  Slot* slot_for(std::size_t ordinal) {
    const std::size_t c = ordinal / kSlotsPerChunk;
    if (c >= kChunks) return nullptr;
    Chunk* chunk = chunks_[c].load(std::memory_order_acquire);
    if (!chunk) chunk = allocate(c);
    return &chunk->slots[ordinal % kSlotsPerChunk];
  }

  Chunk* allocate(std::size_t c) {
    auto* fresh = new Chunk();
    Chunk* expected = nullptr;
    if (!chunks_[c].compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      delete fresh;  // another thread won the race
      return expected;
    }
    return fresh;
  }

  std::array<std::atomic<Chunk*>, kChunks> chunks_{};
  std::atomic<std::uint64_t> overflow_{0};
};

}  // namespace swsig::util
