// Markdown table printer shared by all benchmark binaries, so every
// experiment in EXPERIMENTS.md renders a uniform, copy-pastable table.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace swsig::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  // Row cells as preformatted strings.
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string num(std::uint64_t v) { return std::to_string(v); }
  static std::string num(int v) { return std::to_string(v); }

  void print(std::ostream& out = std::cout) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& cells) {
      out << "|";
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : empty_;
        out << ' ' << cell << std::string(widths[c] - cell.size(), ' ')
            << " |";
      }
      out << '\n';
    };

    emit(headers_);
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
      out << std::string(widths[c] + 2, '-') << "|";
    out << '\n';
    for (const auto& row : rows_) emit(row);
    out.flush();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::string empty_;
};

}  // namespace swsig::util
