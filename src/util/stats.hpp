// Lightweight sample statistics used by the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace swsig::util {

// Collects double-valued samples and reports summary statistics.
// Not thread-safe; benchmarks aggregate per-thread samples before merging.
class Samples {
 public:
  void add(double v) { values_.push_back(v); }

  void merge(const Samples& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const {
    if (values_.empty()) return 0.0;
    double sum = 0.0;
    for (double v : values_) sum += v;
    return sum / static_cast<double>(values_.size());
  }

  double stddev() const {
    if (values_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : values_) acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values_.size() - 1));
  }

  double min() const {
    return values_.empty() ? 0.0
                           : *std::min_element(values_.begin(), values_.end());
  }

  double max() const {
    return values_.empty() ? 0.0
                           : *std::max_element(values_.begin(), values_.end());
  }

  // p in [0,100]; nearest-rank percentile.
  double percentile(double p) const {
    if (values_.empty()) return 0.0;
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }

  double median() const { return percentile(50.0); }

 private:
  std::vector<double> values_;
};

}  // namespace swsig::util
