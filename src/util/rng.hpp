// Seeded pseudo-random number generation for deterministic simulation.
//
// All randomness in the library flows through `Rng` so a run is fully
// reproducible from a single 64-bit seed. The engine is xoshiro256**,
// seeded via SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace swsig::util {

// SplitMix64 step; used to expand one seed word into an engine state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] (inclusive). Debiased via rejection.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return (*this)();  // full range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + draw % span;
  }

  // True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return uniform(1, den) <= num;
  }

  // Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& pool) {
    return pool[static_cast<std::size_t>(uniform(0, pool.size() - 1))];
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(0, i));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  // Derive an independent child generator (e.g., one per process).
  Rng fork() { return Rng((*this)() ^ 0xa5a5a5a5a5a5a5a5ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace swsig::util
