// Fault-injection seam for the simulated network.
//
// A FaultInjector attached to a Network observes every delivery and may
// drop it, hold it for a bounded delay, or request receive-side reordering
// — the three failure modes the soak harness schedules (src/soak/). The
// network stays a reliable authenticated channel by default; faults exist
// only while an injector is attached, so protocol code never changes.
//
// Contract for implementations:
//  * on_deliver runs on the sender's thread under no network lock; it must
//    be cheap and must not call back into the network.
//  * Decisions must be deterministic functions of (seed, schedule window,
//    message fields) so a failing run is replayable from its seed — see
//    soak::FaultSchedule and the determinism tests in
//    tests/fault_injection_test.cpp.
//  * Dropping is LOSS on a channel the protocols assume reliable: a drop
//    schedule must keep the set of affected processes within the f
//    fault budget (design note 12 in docs/ARCHITECTURE.md), otherwise
//    quorum waits can block forever — there is no retransmission layer.
//    Delay and reorder are loss-free and may touch any process.
#pragma once

#include <chrono>
#include <cstdint>

#include "runtime/process.hpp"

namespace swsig::msgpass {

struct Message;

struct FaultDecision {
  bool drop = false;
  // > 0: hold the message for this long before enqueueing it (bounded
  // delay; the message is still delivered, modeling a slow link).
  std::chrono::milliseconds delay{0};
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  // Called once per point-to-point delivery, before the message is
  // enqueued into the receiver's inbox.
  virtual FaultDecision on_deliver(const Message& m) = 0;

  // True while receive-side reordering should be active for `receiver`
  // (each recv then picks a seeded-random queued message instead of the
  // oldest, exactly like Network::Options::reorder_seed).
  virtual bool reorder(runtime::ProcessId receiver) = 0;
};

}  // namespace swsig::msgpass
