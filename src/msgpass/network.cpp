#include "msgpass/network.hpp"

#include <stdexcept>

namespace swsig::msgpass {

Network::Network(Options options) : options_(options) {
  if (options_.n < 1) throw std::invalid_argument("network needs n >= 1");
  inboxes_.reserve(static_cast<std::size_t>(options_.n) + 1);
  for (int pid = 0; pid <= options_.n; ++pid) {
    inboxes_.push_back(std::make_unique<Inbox>());
    if (options_.reorder_seed != 0)
      inboxes_.back()->rng =
          util::Rng(options_.reorder_seed + static_cast<std::uint64_t>(pid));
  }
}

Network::Inbox& Network::inbox_for(runtime::ProcessId pid) {
  if (pid < 1 || pid > options_.n)
    throw std::invalid_argument("no inbox for p" + std::to_string(pid));
  return *inboxes_[static_cast<std::size_t>(pid)];
}

void Network::send(Message m) {
  const runtime::ProcessId self = runtime::ThisProcess::id();
  if (self < 1 || self > options_.n)
    throw std::logic_error("send requires a thread bound to p1..pn");
  m.from = self;  // authenticated channel: identity cannot be spoofed
  deliver(std::move(m));
}

void Network::broadcast(Message m) {
  for (int pid = 1; pid <= options_.n; ++pid) {
    Message copy = m;
    copy.to = pid;
    send(std::move(copy));
  }
}

void Network::deliver(Message m) {
  Inbox& inbox = inbox_for(m.to);
  {
    std::scoped_lock lock(inbox.mu);
    inbox.queue.push_back(std::move(m));
  }
  inbox.cv.notify_all();
  sent_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<Message> Network::recv(std::stop_token st) {
  Inbox& inbox = inbox_for(runtime::ThisProcess::id());
  std::unique_lock lock(inbox.mu);
  // Stop-token-aware wait: returns false (with the queue still empty) when
  // the token is stopped before a message arrives. No timed polling — the
  // stop request itself wakes the wait.
  if (!inbox.cv.wait(lock, st, [&] { return !inbox.queue.empty(); }))
    return std::nullopt;
  std::size_t index = 0;
  if (options_.reorder_seed != 0 && inbox.queue.size() > 1)
    index = static_cast<std::size_t>(
        inbox.rng.uniform(0, inbox.queue.size() - 1));
  Message m = std::move(inbox.queue[index]);
  inbox.queue.erase(inbox.queue.begin() + static_cast<std::ptrdiff_t>(index));
  return m;
}

std::optional<Message> Network::try_recv() {
  Inbox& inbox = inbox_for(runtime::ThisProcess::id());
  std::scoped_lock lock(inbox.mu);
  if (inbox.queue.empty()) return std::nullopt;
  Message m = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  return m;
}

std::uint64_t Network::messages_sent() const {
  return sent_.load(std::memory_order_relaxed);
}

}  // namespace swsig::msgpass
