#include "msgpass/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace swsig::msgpass {

Network::TypeCounters::TypeCounters() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  for (std::size_t t = 0; t < static_cast<std::size_t>(obs::MsgTag::kCount);
       ++t) {
    const std::string suffix = obs::tag_name(static_cast<obs::MsgTag>(t));
    send[t] = &reg.counter("net.send." + suffix);
    recv[t] = &reg.counter("net.recv." + suffix);
    drop[t] = &reg.counter("net.drop." + suffix);
  }
}

Network::TypeCounters& Network::TypeCounters::get() {
  static TypeCounters counters;
  return counters;
}

namespace {

// One flight-recorder event for a message crossing the network plane.
inline void record_msg(obs::EventKind kind, obs::MsgTag tag, int pid,
                       int peer, const Message& m, std::uint64_t aux = 0) {
  obs::Event e;
  e.kind = kind;
  e.tag = tag;
  e.pid = static_cast<std::int16_t>(pid);
  e.peer = static_cast<std::int16_t>(peer);
  e.reg = m.reg;
  e.sn = m.sn;
  e.aux = aux;
  obs::record(e);
}

}  // namespace

Network::Network(Options options) : options_(options) {
  if (options_.n < 1) throw std::invalid_argument("network needs n >= 1");
  inboxes_.reserve(static_cast<std::size_t>(options_.n) + 1);
  squelched_.reserve(static_cast<std::size_t>(options_.n) + 1);
  for (int pid = 0; pid <= options_.n; ++pid) {
    squelched_.push_back(std::make_unique<std::atomic<bool>>(false));
    inboxes_.push_back(std::make_unique<Inbox>());
    // Per-inbox streams are always seeded (reorder_seed may be 0): the rng
    // is only consulted when reordering is active — via reorder_seed or a
    // fault injector's reorder window — and must be deterministic in both.
    inboxes_.back()->rng =
        util::Rng(options_.reorder_seed + static_cast<std::uint64_t>(pid));
  }
}

Network::Inbox& Network::inbox_for(runtime::ProcessId pid) {
  if (pid < 1 || pid > options_.n)
    throw std::invalid_argument("no inbox for p" + std::to_string(pid));
  return *inboxes_[static_cast<std::size_t>(pid)];
}

void Network::set_squelched(runtime::ProcessId pid, bool on) {
  if (pid < 1 || pid > options_.n) return;
  squelched_[static_cast<std::size_t>(pid)]->store(on,
                                                   std::memory_order_release);
}

bool Network::is_squelched(runtime::ProcessId pid) const {
  return pid >= 1 && pid <= options_.n &&
         squelched_[static_cast<std::size_t>(pid)]->load(
             std::memory_order_acquire);
}

std::uint64_t Network::messages_squelched() const {
  return squelched_count_.load(std::memory_order_relaxed);
}

void Network::send(Message m) {
  const runtime::ProcessId self = runtime::ThisProcess::id();
  if (self < 1 || self > options_.n)
    throw std::logic_error("send requires a thread bound to p1..pn");
  if (is_squelched(self)) {  // crashed: the send never happens
    squelched_count_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  m.from = self;  // authenticated channel: identity cannot be spoofed
  deliver(std::move(m));
}

void Network::broadcast(Message m) {
  const runtime::ProcessId self = runtime::ThisProcess::id();
  if (self < 1 || self > options_.n)
    throw std::logic_error("broadcast requires a thread bound to p1..pn");
  if (is_squelched(self)) {
    squelched_count_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  m.from = self;
  // One consolidated send event for the n-way fan-out (peer = -1, aux = n):
  // a broadcast is one protocol action, and per-destination events would
  // multiply the hot-path event volume by n for no forensic value — the
  // receive side already records what actually arrived where.
  record_msg(obs::EventKind::kMsgSend, obs::tag_of(m.type), self, -1, m,
             static_cast<std::uint64_t>(options_.n));
  for (int pid = 1; pid <= options_.n; ++pid) {
    Message copy = m;
    copy.to = pid;
    deliver(std::move(copy), /*note_send=*/false);
  }
}

void Network::set_fault_injector(FaultInjector* injector) {
  {
    std::scoped_lock lock(delay_mu_);
    if (injector != nullptr && !pump_.joinable())
      pump_ = std::jthread([this](std::stop_token st) { pump(st); });
  }
  injector_.store(injector, std::memory_order_release);
  // Detaching flushes held-back messages immediately: the channel is
  // reliable again, so nothing may stay parked behind a dead schedule.
  if (injector == nullptr) delay_cv_.notify_all();
}

void Network::deliver(Message m, bool note_send) {
  // The send event precedes the fault decision: a dropped message was
  // still sent, and the drop event right after it is the forensic signal.
  if (note_send)
    record_msg(obs::EventKind::kMsgSend, obs::tag_of(m.type), m.from, m.to,
               m);
  if (FaultInjector* fi = injector_.load(std::memory_order_acquire)) {
    const FaultDecision d = fi->on_deliver(m);
    if (d.drop) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      const obs::MsgTag tag = obs::tag_of(m.type);
      TypeCounters::get().drop[static_cast<std::size_t>(tag)]->add();
      record_msg(obs::EventKind::kMsgDrop, tag, m.from, m.to, m);
      return;
    }
    if (d.delay.count() > 0) {
      delayed_total_.fetch_add(1, std::memory_order_relaxed);
      record_msg(obs::EventKind::kMsgDelay, obs::tag_of(m.type), m.from,
                 m.to, m, static_cast<std::uint64_t>(d.delay.count()));
      {
        std::scoped_lock lock(delay_mu_);
        delayed_.push_back(
            Delayed{std::chrono::steady_clock::now() + d.delay, std::move(m)});
        std::push_heap(delayed_.begin(), delayed_.end(),
                       [](const Delayed& a, const Delayed& b) {
                         return a.due > b.due;  // min-heap by due time
                       });
      }
      delay_cv_.notify_all();
      return;
    }
  }
  enqueue(std::move(m));
}

void Network::enqueue(Message m) {
  const obs::MsgTag tag = obs::tag_of(m.type);
  TypeCounters::get().send[static_cast<std::size_t>(tag)]->add();
  Inbox& inbox = inbox_for(m.to);
  {
    std::scoped_lock lock(inbox.mu);
    inbox.queue.push_back(std::move(m));
  }
  inbox.cv.notify_all();
  sent_.fetch_add(1, std::memory_order_relaxed);
}

// Delay pump: sleeps until the earliest held message is due (or a new one
// arrives, or the injector detaches), then re-delivers everything due. With
// no injector attached, any remaining messages are flushed unconditionally.
void Network::pump(std::stop_token st) {
  const auto heap_cmp = [](const Delayed& a, const Delayed& b) {
    return a.due > b.due;
  };
  std::unique_lock lock(delay_mu_);
  while (!st.stop_requested()) {
    if (delayed_.empty()) {
      delay_cv_.wait(lock, st, [&] { return !delayed_.empty(); });
      continue;
    }
    const bool flush_all = injector_.load(std::memory_order_acquire) == nullptr;
    const auto now = std::chrono::steady_clock::now();
    if (flush_all || delayed_.front().due <= now) {
      std::pop_heap(delayed_.begin(), delayed_.end(), heap_cmp);
      Message m = std::move(delayed_.back().m);
      delayed_.pop_back();
      lock.unlock();
      enqueue(std::move(m));
      lock.lock();
      continue;
    }
    // Copy the deadline out of the heap: wait_until binds its abs_time
    // parameter by reference and releases the lock while blocked, so a
    // concurrent deliver() pushing into delayed_ (reallocation / heap sift)
    // would leave the reference dangling — the pump then re-sleeps on a
    // garbage deadline forever and parked messages never flush.
    const auto due = delayed_.front().due;
    delay_cv_.wait_until(lock, st, due, [] { return false; });
  }
}

std::optional<Message> Network::recv(std::stop_token st) {
  const runtime::ProcessId self = runtime::ThisProcess::id();
  Inbox& inbox = inbox_for(self);
  std::unique_lock lock(inbox.mu);
  // Stop-token-aware wait: returns false (with the queue still empty) when
  // the token is stopped before a message arrives. No timed polling — the
  // stop request itself wakes the wait.
  if (!inbox.cv.wait(lock, st, [&] { return !inbox.queue.empty(); }))
    return std::nullopt;
  bool reorder = options_.reorder_seed != 0;
  if (!reorder) {
    FaultInjector* fi = injector_.load(std::memory_order_acquire);
    reorder = fi != nullptr && fi->reorder(self);
  }
  std::size_t index = 0;
  if (reorder && inbox.queue.size() > 1)
    index = static_cast<std::size_t>(
        inbox.rng.uniform(0, inbox.queue.size() - 1));
  Message m = std::move(inbox.queue[index]);
  inbox.queue.erase(inbox.queue.begin() + static_cast<std::ptrdiff_t>(index));
  const obs::MsgTag tag = obs::tag_of(m.type);
  TypeCounters::get().recv[static_cast<std::size_t>(tag)]->add();
  record_msg(obs::EventKind::kMsgRecv, tag, self, m.from, m);
  return m;
}

std::optional<Message> Network::try_recv() {
  const runtime::ProcessId self = runtime::ThisProcess::id();
  Inbox& inbox = inbox_for(self);
  std::unique_lock lock(inbox.mu);
  if (inbox.queue.empty()) return std::nullopt;
  Message m = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  lock.unlock();
  const obs::MsgTag tag = obs::tag_of(m.type);
  TypeCounters::get().recv[static_cast<std::size_t>(tag)]->add();
  record_msg(obs::EventKind::kMsgRecv, tag, self, m.from, m);
  return m;
}

std::uint64_t Network::messages_sent() const {
  return sent_.load(std::memory_order_relaxed);
}

std::uint64_t Network::messages_dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::uint64_t Network::messages_delayed() const {
  return delayed_total_.load(std::memory_order_relaxed);
}

std::uint64_t Network::queued_messages() const {
  std::uint64_t total = 0;
  // Per-inbox locks, taken one at a time: the count is a snapshot, not a
  // consistent cut — good enough for the wedge forensics it feeds.
  for (const auto& inbox : inboxes_) {
    std::scoped_lock lock(inbox->mu);
    total += inbox->queue.size();
  }
  {
    std::scoped_lock lock(delay_mu_);
    total += delayed_.size();
  }
  return total;
}

}  // namespace swsig::msgpass
