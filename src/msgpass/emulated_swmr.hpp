// Signature-free emulation of atomic SWMR registers in an asynchronous
// Byzantine message-passing system with n > 3f — the substrate behind the
// paper's closing corollary ("SWMR registers can be implemented in
// message-passing systems with n > 3f [11], hence so can our registers").
//
// This is a documented reconstruction in the spirit of Mostéfaoui,
// Petrolia, Raynal, Jard (2017) — their exact pseudo-code is not in the
// reproduced paper. Structure (per register, writer w):
//
//   Write(sn, v)   by w: broadcast WRITE(sn, v); wait for ACK(sn) from
//                  n−f distinct processes.
//   on WRITE(sn,v) first WRITE seen for this sn: broadcast ECHO(sn, v)
//                  (echo-once-per-sn blocks equivocation support).
//   on n−f ECHO(sn,v):   broadcast ACCEPT(sn, v)         [once per pair]
//   on f+1 ACCEPT(sn,v): broadcast ACCEPT(sn, v)         [amplification]
//   on n−f ACCEPT(sn,v): deliver — store (sn,v) if sn is the highest
//                  delivered so far; send ACK(sn) to w.
//
//   Read()   by r: broadcast READ(rid); wait for STATE(rid, sn, v) replies;
//            return v of the highest pair reported identically by n−f
//            distinct processes; if no pair reaches n−f support among the
//            replies, retry with a fresh rid.
//
// Why it is safe (n > 3f):
//  * Per sn, only one value can gather n−f echoes (echo-once + quorum
//    intersection), so delivered pairs are unique per sn.
//  * The ECHO→ACCEPT→amplify→deliver ladder is Bracha's totality argument:
//    if any correct process delivers (sn,v), every correct process
//    eventually delivers it. Hence a read that returns (sn,v) — which
//    requires n−f identical STATEs, i.e. at least f+1 correct holders —
//    guarantees every later read sees at least sn: at most n−f−(f+1)+f =
//    n−f−1 < n−f processes can still report an older pair. No write-back
//    phase is needed because the n−f read threshold self-certifies.
//  * Liveness: reads terminate once the writer quiesces (correct stores
//    converge via totality); under an infinite write storm a read may
//    retry unboundedly — the shared-memory algorithms built on top issue
//    finitely many writes per operation. Recorded as design note 6 in docs/ARCHITECTURE.md.
//
// The owner's client-side state (writer mutex, sn-monotone local view) and
// the READ/STATE quorum machinery are shared with the batched substrate:
// detail::SwmrCore in msgpass/swmr_core.hpp.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "msgpass/network.hpp"
#include "msgpass/server_pool.hpp"
#include "msgpass/swmr_core.hpp"
#include "registers/errors.hpp"
#include "runtime/process.hpp"

namespace swsig::msgpass {

class EmulatedSpace;

namespace detail {
struct HandlerBase {
  virtual ~HandlerBase() = default;
  // Runs on the server thread of the receiving process (bound to its pid).
  virtual void handle(const Message& m) = 0;
  // Crash model (driven by the owning Space): wipe the volatile protocol
  // state process pid held for this register. Stable-storage state (the
  // echoed/delivered dedup sets) survives — see EmulatedSwmr::crash_process.
  virtual void crash_process(int pid) = 0;
  // Recovery: the calling thread is bound as process `self` (rejoined after
  // a crash); replay the missed certificates from f+1 live peers.
  virtual void resync_process(int self) = 0;
};
}  // namespace detail

// One emulated SWMR register: protocol state for all n processes plus the
// client-side operations. All state is guarded by one mutex; message
// handling runs on per-process server threads owned by the EmulatedSpace.
template <typename T>
class EmulatedSwmr : public detail::HandlerBase, public detail::SwmrCore<T> {
  using Core = detail::SwmrCore<T>;

 public:
  EmulatedSwmr(Network& net, int reg_id, int n, int f,
               runtime::ProcessId owner, T initial, std::string name,
               runtime::ProcessId sole_reader = runtime::kNoProcess)
      : Core(reg_id, n, f, owner, std::move(initial), std::move(name),
             sole_reader),
        net_(&net) {
    ladder_.resize(static_cast<std::size_t>(n) + 1);
  }

  // ------------------------------------------------------------- client

  // Write by the owner: completes after n−f ACKs. The model has a single
  // writing *process*, but that process may write from two threads (its op
  // thread and its Help() thread — Algorithms 1–3 do both). writer_mu_
  // serializes those whole-operation, the same discipline as the seqlock
  // engine's writer mutex (registers/storage.hpp); readers never touch it.
  void write(T v) {
    this->require_owner("write");
    std::scoped_lock wl(this->writer_mu_);
    write_locked(std::move(v));
  }

  // Owner read-modify-write (single-writer, so the owner's local view IS
  // the register's last written value). Atomicity against the owner's other
  // writing thread lives in SwmrCore::update_with.
  template <typename F>
  T update(F&& fn) {
    this->require_owner("update");
    return this->update_with(std::forward<F>(fn),
                             [this](T v) { write_locked(std::move(v)); });
  }

  // Read by any process (or the sole reader, for SWSR use).
  T read() { return this->read_via(*net_); }

  // ------------------------------------------------------------- server

  void handle(const Message& m) override {
    const runtime::ProcessId self = runtime::ThisProcess::id();
    if (m.type == "WRITE") {
      if (m.from != this->owner_) return;  // only the owner's writes count
      on_write(self, m);
    } else if (m.type == "ECHO") {
      on_echo(self, m);
    } else if (m.type == "ACCEPT") {
      on_accept(self, m);
    } else if (m.type == "ACK") {
      if (self != this->owner_) return;
      std::scoped_lock lock(this->mu_);
      // Only count ACKs for the write currently in flight (the slot is
      // opened by write_locked before the broadcast): late or replayed
      // ACKs would otherwise recreate map entries that are never erased.
      const auto it = acks_.find(m.sn);
      if (it == acks_.end()) return;
      it->second.insert(m.from);
      this->cv_.notify_all();
    } else if (m.type == "READ") {
      this->serve_read(*net_, self, m);
    } else if (m.type == "STATE") {
      this->accept_state(m);
    }
  }

  // Crash semantics: a crash loses the server's volatile state — its stored
  // (sn, value) pair and any in-progress ladder tallies (echo/accept vote
  // counts for undelivered sns). The echoed and delivered dedup sets are
  // modeled as stable storage (a write-ahead bit flipped before the
  // corresponding broadcast): without them a rejoined server could echo a
  // second value for an sn it already echoed — becoming equivocation
  // support the safety argument forbids — or re-deliver and re-ACK old sns.
  void crash_process(int pid) override {
    std::scoped_lock lock(this->mu_);
    this->reset_stored_locked(pid);
    ladder_[static_cast<std::size_t>(pid)].cands.clear();
  }

  void resync_process(int self) override { this->resync_via(*net_, self); }

 private:
  struct Candidate {
    int value_id = 0;
    std::set<int> echoes;
    std::set<int> accepts;
    bool sent_accept = false;
  };
  struct LadderState {
    std::set<std::uint64_t> echoed;  // echo-once-per-sn (must persist)
    // Delivered sns (persists, like echoed): ECHO/ACCEPT votes for a
    // delivered sn are ignored, so a Byzantine ACCEPT replay landing after
    // the candidate map below is pruned cannot pool with a correct
    // straggler's vote into a fresh f+1 and re-trigger the whole
    // amplification + ACK storm.
    std::set<std::uint64_t> delivered;
    // per sn: candidate values (usually 1; >1 only under equivocation).
    // The entry is erased once a candidate delivers; `delivered` above
    // keeps post-delivery votes from resurrecting it.
    std::map<std::uint64_t, std::vector<Candidate>> cands;
  };

  // Core of write(): caller holds writer_mu_.
  void write_locked(T v) {
    static obs::LogHistogram& ack_hist =
        obs::MetricsRegistry::global().histogram("msgpass.write_ack_wait_us");
    const std::uint64_t sn = this->allocate_sn_locked(v);
    {
      // Open the ACK wait slot before broadcasting so the ACK handler can
      // tell the in-flight write from stale/replayed sns.
      std::scoped_lock lock(this->mu_);
      acks_[sn];
    }
    detail::record_phase(obs::EventKind::kWriteStart, this->owner_,
                         this->reg_id_, this->owner_, sn);
    const auto t0 = std::chrono::steady_clock::now();
    Message m;
    m.reg = this->reg_id_;
    m.type = "WRITE";
    m.sn = sn;
    m.payload = std::move(v);
    net_->broadcast(m);
    detail::record_phase(obs::EventKind::kQuorumWait, this->owner_,
                         this->reg_id_, this->owner_, sn,
                         static_cast<std::uint64_t>(this->n_ - this->f_));
    std::unique_lock lock(this->mu_);
    this->cv_.wait(lock, [&] {
      return static_cast<int>(acks_[sn].size()) >= this->n_ - this->f_;
    });
    acks_.erase(sn);
    lock.unlock();
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    ack_hist.add(std::chrono::duration<double, std::micro>(elapsed).count());
    detail::record_phase(
        obs::EventKind::kWriteDone, this->owner_, this->reg_id_, this->owner_,
        sn,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  Candidate& candidate(LadderState& st, std::uint64_t sn, int value_id) {
    for (Candidate& c : st.cands[sn])
      if (c.value_id == value_id) return c;
    st.cands[sn].push_back(Candidate{value_id, {}, {}, false});
    return st.cands[sn].back();
  }

  void on_write(int self, const Message& m) {
    std::unique_lock lock(this->mu_);
    LadderState& st = ladder_[static_cast<std::size_t>(self)];
    if (st.echoed.contains(m.sn)) return;  // echo at most once per sn
    st.echoed.insert(m.sn);
    const int vid = this->intern_locked(std::any_cast<const T&>(m.payload));
    lock.unlock();
    detail::record_phase(obs::EventKind::kPhaseEcho, self, this->reg_id_,
                         this->owner_, m.sn);
    Message echo;
    echo.reg = this->reg_id_;
    echo.type = "ECHO";
    echo.sn = m.sn;
    echo.payload = value_snapshot(vid);
    net_->broadcast(echo);
  }

  void on_echo(int self, const Message& m) {
    std::unique_lock lock(this->mu_);
    LadderState& st = ladder_[static_cast<std::size_t>(self)];
    if (st.delivered.contains(m.sn)) return;  // post-delivery vote: inert
    const int vid = this->intern_locked(std::any_cast<const T&>(m.payload));
    Candidate& c = candidate(st, m.sn, vid);
    c.echoes.insert(m.from);
    progress(self, st, m.sn, c, lock);
  }

  void on_accept(int self, const Message& m) {
    std::unique_lock lock(this->mu_);
    LadderState& st = ladder_[static_cast<std::size_t>(self)];
    if (st.delivered.contains(m.sn)) return;  // post-delivery vote: inert
    const int vid = this->intern_locked(std::any_cast<const T&>(m.payload));
    Candidate& c = candidate(st, m.sn, vid);
    c.accepts.insert(m.from);
    progress(self, st, m.sn, c, lock);
  }

  // Evaluates the Bracha ladder for one candidate. Called under mu_;
  // releases it to send messages. Delivery prunes the candidate map, which
  // invalidates `c` — everything needed is copied out before that.
  void progress(int self, LadderState& st, std::uint64_t sn, Candidate& c,
                std::unique_lock<std::mutex>& lock) {
    const int vid = c.value_id;
    bool send_accept = false;
    bool amplified = false;
    bool deliver = false;
    if (!c.sent_accept &&
        (static_cast<int>(c.echoes.size()) >= this->n_ - this->f_ ||
         static_cast<int>(c.accepts.size()) >= this->f_ + 1)) {
      c.sent_accept = true;
      send_accept = true;
      // Which rung fired: the echo quorum (accept) or f+1 accepts (amplify).
      amplified = static_cast<int>(c.echoes.size()) < this->n_ - this->f_;
    }
    if (static_cast<int>(c.accepts.size()) >= this->n_ - this->f_) {
      deliver = true;
      this->apply_locked(self, sn, vid);
      st.delivered.insert(sn);
      st.cands.erase(sn);  // prune: c is dangling beyond this point
    }
    lock.unlock();
    if (send_accept)
      detail::record_phase(amplified ? obs::EventKind::kPhaseAmplify
                                     : obs::EventKind::kPhaseAccept,
                           self, this->reg_id_, this->owner_, sn);
    if (deliver) {
      detail::record_phase(obs::EventKind::kPhaseDeliver, self, this->reg_id_,
                           this->owner_, sn, static_cast<std::uint64_t>(vid));
      detail::record_phase(obs::EventKind::kPhaseAck, self, this->reg_id_,
                           this->owner_, sn);
    }
    if (send_accept) {
      Message acc;
      acc.reg = this->reg_id_;
      acc.type = "ACCEPT";
      acc.sn = sn;
      acc.payload = value_snapshot(vid);
      net_->broadcast(acc);
    }
    if (deliver) {
      Message ack;
      ack.reg = this->reg_id_;
      ack.type = "ACK";
      ack.sn = sn;
      ack.to = this->owner_;
      net_->send(ack);
    }
    lock.lock();
  }

  T value_snapshot(int vid) {
    std::scoped_lock lock(this->mu_);
    return this->values_[static_cast<std::size_t>(vid)];
  }

  Network* net_;
  std::vector<LadderState> ladder_;              // per process
  std::map<std::uint64_t, std::set<int>> acks_;  // per write sn
};

// SWSR flavor: same protocol, read restricted to one process.
template <typename T>
class EmulatedSwsr : public EmulatedSwmr<T> {
 public:
  using EmulatedSwmr<T>::EmulatedSwmr;
};

// Factory + server threads. API-compatible with registers::Space for the
// operations the core algorithms use, so Algorithms 1–3 run unchanged on
// top of message passing (see core/* template parameter SpaceT).
class EmulatedSpace {
 public:
  template <typename T>
  using SwmrFor = EmulatedSwmr<T>;
  template <typename T>
  using SwsrFor = EmulatedSwsr<T>;

  struct Options {
    int n = 4;
    int f = 1;
    std::uint64_t reorder_seed = 0;
    // Run the quorum resync when a crashed process restarts. Disabled only
    // by the crash/rejoin regression test, to demonstrate the stale state a
    // rejoined server would otherwise serve.
    bool recover_on_restart = true;
  };

  explicit EmulatedSpace(Options options)
      : options_(options),
        net_(Network::Options{options.n, options.reorder_seed}),
        crashed_(static_cast<std::size_t>(options.n) + 1),
        pool_(net_, options.n,
              [this](int pid, const Message& m) { dispatch(pid, m); }) {
    for (auto& c : crashed_) c.store(false, std::memory_order_relaxed);
  }

  ~EmulatedSpace() { stop(); }

  void stop() { pool_.stop(); }

  // ---------------------------------------------------- crash / restart
  //
  // Precondition (driver-enforced): pid has no in-flight client operations
  // of its own — crash models a server, not an operation, dying. Its
  // server thread keeps running but drops everything (a crashed process
  // neither receives nor sends), and each register wipes pid's volatile
  // protocol state. At most f processes may be down at once or quorum
  // waits of live clients block (there is no retransmission).

  void crash(runtime::ProcessId pid) {
    detail::record_phase(obs::EventKind::kCrash, pid, -1, pid, 0);
    std::vector<detail::HandlerBase*> regs = handlers();
    crashed_[static_cast<std::size_t>(pid)].store(true,
                                                  std::memory_order_release);
    for (auto* reg : regs) reg->crash_process(pid);
  }

  // Brings pid back. With recover_on_restart the rejoining server replays
  // the certificates it missed from f+1 live peers (resync) before the
  // call returns; without it the server rejoins with its wiped (0, initial)
  // state and serves stale STATE replies until organic traffic catches it
  // up — exactly what the regression test demonstrates.
  void restart(runtime::ProcessId pid) {
    detail::record_phase(obs::EventKind::kRestart, pid, -1, pid, 0);
    crashed_[static_cast<std::size_t>(pid)].store(false,
                                                  std::memory_order_release);
    if (options_.recover_on_restart) resync(pid);
  }

  // Quorum resync of every register's state for pid, callable on its own —
  // the soak driver also uses it to heal drop-window staleness.
  void resync(runtime::ProcessId pid) {
    detail::record_phase(obs::EventKind::kResync, pid, -1, pid, 0);
    runtime::ThisProcess::Binder bind(pid);
    for (auto* reg : handlers()) reg->resync_process(pid);
  }

  template <typename T>
  EmulatedSwmr<T>& make_swmr(runtime::ProcessId owner, T initial,
                             std::string name) {
    std::scoped_lock lock(mu_);
    const int id = static_cast<int>(registry_.size());
    auto reg = std::make_unique<EmulatedSwmr<T>>(
        net_, id, options_.n, options_.f, owner, std::move(initial),
        std::move(name));
    auto& ref = *reg;
    registry_.push_back(std::move(reg));
    return ref;
  }

  template <typename T>
  EmulatedSwsr<T>& make_swsr(runtime::ProcessId owner,
                             runtime::ProcessId reader, T initial,
                             std::string name) {
    std::scoped_lock lock(mu_);
    const int id = static_cast<int>(registry_.size());
    auto reg = std::make_unique<EmulatedSwsr<T>>(
        net_, id, options_.n, options_.f, owner, std::move(initial),
        std::move(name), reader);
    auto& ref = *reg;
    registry_.push_back(std::move(reg));
    return ref;
  }

  Network& network() { return net_; }
  const Options& options() const { return options_; }

 private:
  void dispatch(int pid, const Message& m) {
    // Crashed process: neither receives nor reacts (and since all its
    // protocol sends happen from this handler, it does not send either).
    if (crashed_[static_cast<std::size_t>(pid)].load(
            std::memory_order_acquire))
      return;
    detail::HandlerBase* handler = nullptr;
    {
      std::scoped_lock lock(mu_);
      if (m.reg >= 0 && m.reg < static_cast<int>(registry_.size()))
        handler = registry_[static_cast<std::size_t>(m.reg)].get();
    }
    if (!handler) return;
    try {
      handler->handle(m);
    } catch (const std::bad_any_cast&) {
      // Malformed payload from a Byzantine sender: drop it, exactly as a
      // deserialization failure would be dropped in a real system.
    }
  }

  std::vector<detail::HandlerBase*> handlers() {
    std::scoped_lock lock(mu_);
    std::vector<detail::HandlerBase*> out;
    out.reserve(registry_.size());
    for (auto& reg : registry_) out.push_back(reg.get());
    return out;
  }

  Options options_;
  Network net_;
  std::mutex mu_;
  std::vector<std::unique_ptr<detail::HandlerBase>> registry_;
  std::vector<std::atomic<bool>> crashed_;  // index by pid
  detail::ServerPool pool_;  // last member: threads stop before state dies
};

}  // namespace swsig::msgpass
