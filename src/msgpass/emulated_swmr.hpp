// Signature-free emulation of atomic SWMR registers in an asynchronous
// Byzantine message-passing system with n > 3f — the substrate behind the
// paper's closing corollary ("SWMR registers can be implemented in
// message-passing systems with n > 3f [11], hence so can our registers").
//
// This is a documented reconstruction in the spirit of Mostéfaoui,
// Petrolia, Raynal, Jard (2017) — their exact pseudo-code is not in the
// reproduced paper. Structure (per register, writer w):
//
//   Write(sn, v)   by w: broadcast WRITE(sn, v); wait for ACK(sn) from
//                  n−f distinct processes.
//   on WRITE(sn,v) first WRITE seen for this sn: broadcast ECHO(sn, v)
//                  (echo-once-per-sn blocks equivocation support).
//   on n−f ECHO(sn,v):   broadcast ACCEPT(sn, v)         [once per pair]
//   on f+1 ACCEPT(sn,v): broadcast ACCEPT(sn, v)         [amplification]
//   on n−f ACCEPT(sn,v): deliver — store (sn,v) if sn is the highest
//                  delivered so far; send ACK(sn) to w.
//
//   Read()   by r: broadcast READ(rid); wait for STATE(rid, sn, v) replies;
//            return v of the highest pair reported identically by n−f
//            distinct processes; if no pair reaches n−f support among the
//            replies, retry with a fresh rid.
//
// Why it is safe (n > 3f):
//  * Per sn, only one value can gather n−f echoes (echo-once + quorum
//    intersection), so delivered pairs are unique per sn.
//  * The ECHO→ACCEPT→amplify→deliver ladder is Bracha's totality argument:
//    if any correct process delivers (sn,v), every correct process
//    eventually delivers it. Hence a read that returns (sn,v) — which
//    requires n−f identical STATEs, i.e. at least f+1 correct holders —
//    guarantees every later read sees at least sn: at most n−f−(f+1)+f =
//    n−f−1 < n−f processes can still report an older pair. No write-back
//    phase is needed because the n−f read threshold self-certifies.
//  * Liveness: reads terminate once the writer quiesces (correct stores
//    converge via totality); under an infinite write storm a read may
//    retry unboundedly — the shared-memory algorithms built on top issue
//    finitely many writes per operation. Recorded as design note 6 in docs/ARCHITECTURE.md.
//
// The owner's client-side state (writer mutex, sn-monotone local view) and
// the READ/STATE quorum machinery are shared with the batched substrate:
// detail::SwmrCore in msgpass/swmr_core.hpp.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "msgpass/network.hpp"
#include "msgpass/server_pool.hpp"
#include "msgpass/swmr_core.hpp"
#include "registers/errors.hpp"
#include "runtime/process.hpp"

namespace swsig::msgpass {

class EmulatedSpace;

namespace detail {
struct HandlerBase {
  virtual ~HandlerBase() = default;
  // Runs on the server thread of the receiving process (bound to its pid).
  virtual void handle(const Message& m) = 0;
  // Crash model (driven by the owning Space): wipe the volatile protocol
  // state process pid held for this register. Stable-storage state (the
  // echoed/delivered dedup sets) survives — see EmulatedSwmr::crash_process.
  virtual void crash_process(int pid) = 0;
  // Recovery: the calling thread is bound as process `self` (rejoined after
  // a crash); replay the missed certificates from f+1 live peers.
  virtual void resync_process(int self) = 0;
  // Client-role recovery after the OWNER restarted (thread bound as pid):
  // decide the fate of writes pid had in flight when it crashed. With
  // `recover` false only the retry suppression is lifted (no fence).
  virtual void owner_restarted(int pid, bool recover) {
    (void)pid;
    (void)recover;
  }
};
}  // namespace detail

// One emulated SWMR register: protocol state for all n processes plus the
// client-side operations. All state is guarded by one mutex; message
// handling runs on per-process server threads owned by the EmulatedSpace.
template <typename T>
class EmulatedSwmr : public detail::HandlerBase, public detail::SwmrCore<T> {
  using Core = detail::SwmrCore<T>;

 public:
  EmulatedSwmr(Network& net, int reg_id, int n, int f,
               runtime::ProcessId owner, T initial, std::string name,
               runtime::ProcessId sole_reader = runtime::kNoProcess,
               RetryPolicy retry = {})
      : Core(reg_id, n, f, owner, std::move(initial), std::move(name),
             sole_reader, retry),
        net_(&net) {
    ladder_.resize(static_cast<std::size_t>(n) + 1);
  }

  // ------------------------------------------------------------- client

  // Write by the owner: completes after n−f ACKs. The model has a single
  // writing *process*, but that process may write from two threads (its op
  // thread and its Help() thread — Algorithms 1–3 do both). writer_mu_
  // serializes those whole-operation, the same discipline as the seqlock
  // engine's writer mutex (registers/storage.hpp); readers never touch it.
  void write(T v) {
    this->require_owner("write");
    std::scoped_lock wl(this->writer_mu_);
    write_locked(std::move(v));
  }

  // Owner read-modify-write (single-writer, so the owner's local view IS
  // the register's last written value). Atomicity against the owner's other
  // writing thread lives in SwmrCore::update_with.
  template <typename F>
  T update(F&& fn) {
    this->require_owner("update");
    return this->update_with(std::forward<F>(fn),
                             [this](T v) { write_locked(std::move(v)); });
  }

  // Read by any process (or the sole reader, for SWSR use).
  T read() { return this->read_via(*net_); }

  // ------------------------------------------------------------- server

  void handle(const Message& m) override {
    const runtime::ProcessId self = runtime::ThisProcess::id();
    if (m.type == "WRITE") {
      if (m.from != this->owner_) return;  // only the owner's writes count
      on_write(self, m, /*complete=*/false);
    } else if (m.type == "CWRITE") {
      // Completion re-issue from the owner's crash recovery: the only
      // message that lifts an abort fence (a plain retried WRITE must stay
      // inert at fenced servers or a delayed pre-crash copy could undo a
      // finalized abort).
      if (m.from != this->owner_) return;
      on_write(self, m, /*complete=*/true);
    } else if (m.type == "ECHO") {
      on_echo(self, m);
    } else if (m.type == "ACCEPT") {
      on_accept(self, m);
    } else if (m.type == "ACK") {
      if (self != this->owner_) return;
      std::scoped_lock lock(this->mu_);
      // Only count ACKs for the write currently in flight (the slot is
      // opened by write_locked before the broadcast): late or replayed
      // ACKs would otherwise recreate map entries that are never erased.
      const auto it = acks_.find(m.sn);
      if (it == acks_.end()) return;
      it->second.acks.insert(m.from);
      this->cv_.notify_all();
    } else if (m.type == "ABORT") {
      if (m.from != this->owner_) return;  // only the owner fences its sns
      on_abort(self, m);
    } else if (m.type == "ABACK") {
      if (self != this->owner_) return;
      on_aback(m);
    } else if (m.type == "READ") {
      this->serve_read(*net_, self, m);
    } else if (m.type == "STATE") {
      this->accept_state(m);
    }
  }

  // Crash semantics: a crash loses the server's volatile state — its stored
  // (sn, value) pair and any in-progress ladder tallies (echo/accept vote
  // counts for undelivered sns). The echoed and delivered dedup sets are
  // modeled as stable storage (a write-ahead bit flipped before the
  // corresponding broadcast): without them a rejoined server could echo a
  // second value for an sn it already echoed — becoming equivocation
  // support the safety argument forbids — or re-deliver and re-ACK old sns.
  void crash_process(int pid) override {
    std::scoped_lock lock(this->mu_);
    this->reset_stored_locked(pid);
    ladder_[static_cast<std::size_t>(pid)].cands.clear();
    if (pid == this->owner_) {
      // In-flight writes just lost their owner: mark them interrupted so
      // the client's retry timer stops re-broadcasting (the network
      // squelch already discards its sends) and the blocked writer thread
      // parks until restart, when owner_restarted decides each fate.
      for (auto& [sn, w] : acks_)
        if (w.fate == AckWait::Fate::kPending) w.interrupted = true;
      this->cv_.notify_all();
    }
  }

  void resync_process(int self) override { this->resync_via(*net_, self); }

  // Owner-side crash recovery (design note 14). Runs bound as `pid` after
  // the server-side resync healed this process's replica. Each write that
  // was in flight when the owner died gets a determinate outcome:
  //  * the resynced state already carries sn (some correct quorum certified
  //    it) -> complete: re-drive the ladder with CWRITE until the ACKs land.
  //  * otherwise run the abort fence: broadcast ABORT(sn) until n−f
  //    processes reply ABACK. A replier that delivered sn — or had already
  //    sent ACCEPT for it — says so (unsafe) -> complete after all.
  //    Repliers that had done neither promise never to echo/accept/deliver
  //    sn. With n−f clean fences, accept-senders are capped at 2f < n−f
  //    forever (f non-repliers + f lying Byzantine repliers; see on_abort):
  //    no correct process ever delivers sn, so no read (n−f vouchers) or
  //    resync (f+1 vouchers, inductively no correct holder) can surface it.
  //    The abort is FINAL; the owner's local view rolls back to the
  //    resynced certified state and the writer gets registers::WriteAborted.
  // With `recover` false (recovery subsystem disabled), only the retry
  // suppression is lifted: client retries resume, nothing is decided.
  void owner_restarted(int pid, bool recover) override {
    if (pid != this->owner_) return;
    std::vector<std::uint64_t> inflight;
    {
      std::scoped_lock lock(this->mu_);
      for (auto& [sn, w] : acks_) {
        if (w.fate != AckWait::Fate::kPending) continue;
        if (recover)
          inflight.push_back(sn);
        else
          w.interrupted = false;
      }
      if (!recover) {
        this->cv_.notify_all();
        return;
      }
    }
    for (const std::uint64_t sn : inflight) recover_write(sn);
  }

 private:
  struct Candidate {
    int value_id = 0;
    std::set<int> echoes;
    std::set<int> accepts;
    bool sent_accept = false;
  };
  struct LadderState {
    // Echo-once-per-sn, sn -> echoed value id (must persist). Storing the
    // vid rather than bare membership lets a duplicate WRITE re-issue the
    // ORIGINAL echo — idempotent refresh of a lost message, never support
    // for an equivocated second value.
    std::map<std::uint64_t, int> echoed;
    // Delivered sns (persists, like echoed): ECHO/ACCEPT votes for a
    // delivered sn are ignored, so a Byzantine ACCEPT replay landing after
    // the candidate map below is pruned cannot pool with a correct
    // straggler's vote into a fresh f+1 and re-trigger the whole
    // amplification + ACK storm.
    std::set<std::uint64_t> delivered;
    // Abort-fenced sns (persists): this server promised the recovering
    // owner it would never echo, accept, or deliver these. Only a CWRITE
    // from the owner lifts the fence.
    std::set<std::uint64_t> blocked;
    // per sn: candidate values (usually 1; >1 only under equivocation).
    // The entry is erased once a candidate delivers; `delivered` above
    // keeps post-delivery votes from resurrecting it.
    std::map<std::uint64_t, std::vector<Candidate>> cands;
  };

  // Owner-side wait slot for one in-flight write sn.
  struct AckWait {
    enum class Fate { kPending, kCompleted, kAborted };
    int vid = -1;  // interned value, for retry re-broadcasts
    std::set<int> acks;
    // Owner crashed with this write in flight: suppresses the client's
    // retry timer until restart (recovery owns the sn meanwhile).
    bool interrupted = false;
    // Recovery proved the sn delivered somewhere: retries switch to CWRITE
    // so they also lift any fences granted before the delivery was found.
    bool recovered = false;
    Fate fate = Fate::kPending;
  };

  // Owner-side wait slot for one abort fence (recovery only).
  struct FenceWait {
    std::set<int> repliers;
    // Some replier delivered sn or had already sent ACCEPT for it: the
    // write must complete, not abort (see on_abort).
    bool unsafe_any = false;
  };

  // Core of write(): caller holds writer_mu_. Completes on n−f ACKs (or a
  // recovery completion); throws registers::WriteAborted if the owner
  // crashed mid-write and recovery's fence finalized the sn as aborted, or
  // registers::OpTimeout past retry_.op_timeout_ms. Retry layer (design
  // note 14): each lapsed backoff slice re-broadcasts the WRITE — a pure
  // refresh of lost messages, idempotent at every server (echo-once re-
  // issues the original echo, delivered servers just re-ACK) — so a retry
  // can never re-certify a quorum or recruit equivocation support.
  void write_locked(T v) {
    static obs::LogHistogram& ack_hist =
        obs::MetricsRegistry::global().histogram("msgpass.write_ack_wait_us");
    const std::uint64_t sn = this->allocate_sn_locked(v);
    int vid;
    {
      // Open the ACK wait slot before broadcasting so the ACK handler can
      // tell the in-flight write from stale/replayed sns.
      std::scoped_lock lock(this->mu_);
      vid = this->intern_locked(v);
      acks_[sn].vid = vid;
    }
    detail::record_phase(obs::EventKind::kWriteStart, this->owner_,
                         this->reg_id_, this->owner_, sn);
    const auto t0 = std::chrono::steady_clock::now();
    const auto op_deadline =
        this->retry_.op_timeout_ms > 0
            ? t0 + std::chrono::milliseconds(this->retry_.op_timeout_ms)
            : std::chrono::steady_clock::time_point::max();
    Message m;
    m.reg = this->reg_id_;
    m.type = "WRITE";
    m.sn = sn;
    m.payload = std::move(v);
    net_->broadcast(m);
    detail::record_phase(obs::EventKind::kQuorumWait, this->owner_,
                         this->reg_id_, this->owner_, sn,
                         static_cast<std::uint64_t>(this->n_ - this->f_));
    std::uint64_t backoff = std::max<std::uint64_t>(this->retry_.base_ms, 1);
    std::unique_lock lock(this->mu_);
    const auto settled = [&] {
      const AckWait& w = acks_[sn];
      return static_cast<int>(w.acks.size()) >= this->n_ - this->f_ ||
             w.fate != AckWait::Fate::kPending;
    };
    for (;;) {
      AckWait& w = acks_[sn];
      if (w.fate == AckWait::Fate::kAborted) {
        acks_.erase(sn);
        lock.unlock();
        detail::record_phase(obs::EventKind::kWriteAbort, this->owner_,
                             this->reg_id_, this->owner_, sn);
        detail::abort_counter().add();
        throw registers::WriteAborted(
            "write sn " + std::to_string(sn) + " on '" + this->name_ +
            "' aborted: owner crashed before the value could deliver");
      }
      if (static_cast<int>(w.acks.size()) >= this->n_ - this->f_ ||
          w.fate == AckWait::Fate::kCompleted)
        break;
      if (!this->retry_.enabled) {
        if (this->retry_.op_timeout_ms > 0) {
          if (!this->cv_.wait_until(lock, op_deadline, settled)) {
            acks_.erase(sn);
            lock.unlock();
            detail::record_phase(obs::EventKind::kOpTimeout, this->owner_,
                                 this->reg_id_, this->owner_, sn);
            detail::timeout_counter().add();
            throw registers::OpTimeout(
                "write sn " + std::to_string(sn) + " on '" + this->name_ +
                "' timed out after " +
                std::to_string(this->retry_.op_timeout_ms) +
                " ms (outcome indeterminate)");
          }
        } else {
          this->cv_.wait(lock, settled);
        }
        continue;
      }
      const auto until = std::min(std::chrono::steady_clock::now() +
                                      std::chrono::milliseconds(backoff),
                                  op_deadline);
      if (this->cv_.wait_until(lock, until, settled)) continue;
      if (std::chrono::steady_clock::now() >= op_deadline) {
        acks_.erase(sn);
        lock.unlock();
        detail::record_phase(obs::EventKind::kOpTimeout, this->owner_,
                             this->reg_id_, this->owner_, sn);
        detail::timeout_counter().add();
        throw registers::OpTimeout(
            "write sn " + std::to_string(sn) + " on '" + this->name_ +
            "' timed out after " +
            std::to_string(this->retry_.op_timeout_ms) +
            " ms (outcome indeterminate)");
      }
      if (w.interrupted) continue;  // owner down: recovery owns this sn
      const bool cwrite = w.recovered;
      lock.unlock();
      detail::record_phase(obs::EventKind::kOpRetry, this->owner_,
                           this->reg_id_, this->owner_, sn, backoff);
      detail::retry_counter().add();
      Message rm;
      rm.reg = this->reg_id_;
      rm.type = cwrite ? "CWRITE" : "WRITE";
      rm.sn = sn;
      rm.payload = value_snapshot(vid);
      net_->broadcast(rm);
      lock.lock();
      backoff = std::min(backoff * 2,
                         std::max(this->retry_.max_ms, this->retry_.base_ms));
    }
    acks_.erase(sn);
    lock.unlock();
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    ack_hist.add(std::chrono::duration<double, std::micro>(elapsed).count());
    detail::record_phase(
        obs::EventKind::kWriteDone, this->owner_, this->reg_id_, this->owner_,
        sn,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  Candidate& candidate(LadderState& st, std::uint64_t sn, int value_id) {
    for (Candidate& c : st.cands[sn])
      if (c.value_id == value_id) return c;
    st.cands[sn].push_back(Candidate{value_id, {}, {}, false});
    return st.cands[sn].back();
  }

  // WRITE and CWRITE. A duplicate (retried) WRITE is inert except for
  // refreshing what may have been lost: a delivered server re-ACKs, an
  // echoed server re-broadcasts its ORIGINAL echo (receivers dedup votes by
  // sender, so tallies never double-count — and an equivocating retry
  // cannot recruit this server's support either). `complete` (CWRITE only)
  // additionally lifts an abort fence — see handle().
  void on_write(int self, const Message& m, bool complete) {
    std::unique_lock lock(this->mu_);
    LadderState& st = ladder_[static_cast<std::size_t>(self)];
    if (st.delivered.contains(m.sn)) {
      lock.unlock();
      Message ack;
      ack.reg = this->reg_id_;
      ack.type = "ACK";
      ack.sn = m.sn;
      ack.to = this->owner_;
      net_->send(ack);
      return;
    }
    if (st.blocked.contains(m.sn)) {
      if (!complete) return;  // fenced: plain retries must stay inert
      st.blocked.erase(m.sn);
    }
    int vid;
    const auto it = st.echoed.find(m.sn);
    if (it != st.echoed.end()) {
      vid = it->second;  // re-issue the original echo, never a new one
    } else {
      vid = this->intern_locked(std::any_cast<const T&>(m.payload));
      st.echoed.emplace(m.sn, vid);
    }
    lock.unlock();
    detail::record_phase(obs::EventKind::kPhaseEcho, self, this->reg_id_,
                         this->owner_, m.sn);
    Message echo;
    echo.reg = this->reg_id_;
    echo.type = "ECHO";
    echo.sn = m.sn;
    echo.payload = value_snapshot(vid);
    net_->broadcast(echo);
  }

  void on_echo(int self, const Message& m) {
    std::unique_lock lock(this->mu_);
    LadderState& st = ladder_[static_cast<std::size_t>(self)];
    if (st.delivered.contains(m.sn)) return;  // post-delivery vote: inert
    if (st.blocked.contains(m.sn)) return;    // abort-fenced: no support
    const int vid = this->intern_locked(std::any_cast<const T&>(m.payload));
    Candidate& c = candidate(st, m.sn, vid);
    c.echoes.insert(m.from);
    progress(self, st, m.sn, c, lock);
  }

  void on_accept(int self, const Message& m) {
    std::unique_lock lock(this->mu_);
    LadderState& st = ladder_[static_cast<std::size_t>(self)];
    if (st.delivered.contains(m.sn)) return;  // post-delivery vote: inert
    if (st.blocked.contains(m.sn)) return;    // abort-fenced: no support
    const int vid = this->intern_locked(std::any_cast<const T&>(m.payload));
    Candidate& c = candidate(st, m.sn, vid);
    c.accepts.insert(m.from);
    progress(self, st, m.sn, c, lock);
  }

  // Server side of the abort fence. The reply payload is an unsafe-to-
  // abort bit: true if this server DELIVERED sn — or merely SENT ACCEPT for
  // it. The accepted case matters for finality: fencing is not retroactive
  // for ACCEPTs already in flight, so if an accept-sender could grant a
  // "clean" fence, n−f clean replies might coexist with enough pre-fence
  // ACCEPTs for some unfenced process to still deliver the value later.
  // Counting accept-senders as unsafe restores the bound: when every one of
  // n−f repliers has neither delivered nor accepted, total accept-senders
  // are at most f non-repliers + f lying Byzantine repliers = 2f < n−f,
  // forever — so no correct process can ever deliver sn. An undelivered sn
  // is blocked either way (a persistent promise to never echo/accept/
  // deliver it, same stable-storage model as the dedup sets); if the owner
  // ends up completing, its CWRITE lifts the block.
  void on_abort(int self, const Message& m) {
    bool unsafe;
    {
      std::scoped_lock lock(this->mu_);
      LadderState& st = ladder_[static_cast<std::size_t>(self)];
      unsafe = st.delivered.contains(m.sn);
      if (!unsafe) {
        const auto cit = st.cands.find(m.sn);
        if (cit != st.cands.end())
          for (const Candidate& c : cit->second)
            if (c.sent_accept) {
              unsafe = true;
              break;
            }
        st.blocked.insert(m.sn);
        st.cands.erase(m.sn);  // in-progress tallies for sn die with it
      }
    }
    Message r;
    r.reg = this->reg_id_;
    r.type = "ABACK";
    r.sn = m.sn;
    r.to = m.from;
    r.payload = unsafe;
    net_->send(r);
  }

  void on_aback(const Message& m) {
    std::scoped_lock lock(this->mu_);
    const auto it = fence_.find(m.sn);
    if (it == fence_.end()) return;  // reply to a finished fence
    it->second.repliers.insert(m.from);
    if (std::any_cast<bool>(m.payload)) it->second.unsafe_any = true;
    this->cv_.notify_all();
  }

  // Evaluates the Bracha ladder for one candidate. Called under mu_;
  // releases it to send messages. Delivery prunes the candidate map, which
  // invalidates `c` — everything needed is copied out before that.
  void progress(int self, LadderState& st, std::uint64_t sn, Candidate& c,
                std::unique_lock<std::mutex>& lock) {
    const int vid = c.value_id;
    bool send_accept = false;
    bool amplified = false;
    bool deliver = false;
    if (!c.sent_accept &&
        (static_cast<int>(c.echoes.size()) >= this->n_ - this->f_ ||
         static_cast<int>(c.accepts.size()) >= this->f_ + 1)) {
      c.sent_accept = true;
      send_accept = true;
      // Which rung fired: the echo quorum (accept) or f+1 accepts (amplify).
      amplified = static_cast<int>(c.echoes.size()) < this->n_ - this->f_;
    }
    if (static_cast<int>(c.accepts.size()) >= this->n_ - this->f_) {
      deliver = true;
      this->apply_locked(self, sn, vid);
      st.delivered.insert(sn);
      st.cands.erase(sn);  // prune: c is dangling beyond this point
    }
    lock.unlock();
    if (send_accept)
      detail::record_phase(amplified ? obs::EventKind::kPhaseAmplify
                                     : obs::EventKind::kPhaseAccept,
                           self, this->reg_id_, this->owner_, sn);
    if (deliver) {
      detail::record_phase(obs::EventKind::kPhaseDeliver, self, this->reg_id_,
                           this->owner_, sn, static_cast<std::uint64_t>(vid));
      detail::record_phase(obs::EventKind::kPhaseAck, self, this->reg_id_,
                           this->owner_, sn);
    }
    if (send_accept) {
      Message acc;
      acc.reg = this->reg_id_;
      acc.type = "ACCEPT";
      acc.sn = sn;
      acc.payload = value_snapshot(vid);
      net_->broadcast(acc);
    }
    if (deliver) {
      Message ack;
      ack.reg = this->reg_id_;
      ack.type = "ACK";
      ack.sn = sn;
      ack.to = this->owner_;
      net_->send(ack);
    }
    lock.lock();
  }

  T value_snapshot(int vid) {
    std::scoped_lock lock(this->mu_);
    return this->values_[static_cast<std::size_t>(vid)];
  }

  // Recovery for one interrupted write sn (thread bound as the owner; see
  // owner_restarted for the safety argument). Decides complete-vs-abort and
  // applies the outcome to the writer's wait slot.
  void recover_write(std::uint64_t sn) {
    bool certified;
    {
      // The server-side resync just adopted the highest f+1-vouched pair
      // into our own replica: if it carries sn, the write delivered
      // somewhere and must complete.
      std::scoped_lock lock(this->mu_);
      certified =
          this->state_[static_cast<std::size_t>(this->owner_)].stored_sn >= sn;
    }
    const bool complete = certified || !fence_write(sn);
    std::unique_lock lock(this->mu_);
    const auto it = acks_.find(sn);
    if (it == acks_.end()) return;  // writer gave up (op timeout) meanwhile
    AckWait& w = it->second;
    if (complete) {
      w.recovered = true;
      w.interrupted = false;
      const int vid = w.vid;
      this->cv_.notify_all();
      lock.unlock();
      // Kick the completion now rather than waiting a backoff slice: the
      // CWRITE lifts any fences granted mid-recovery and re-drives the
      // ladder toward the missing ACKs (the writer's own retries continue
      // as CWRITE from here).
      Message cm;
      cm.reg = this->reg_id_;
      cm.type = "CWRITE";
      cm.sn = sn;
      cm.payload = value_snapshot(vid);
      net_->broadcast(cm);
    } else {
      w.fate = AckWait::Fate::kAborted;
      w.interrupted = false;
      // The aborted value is unreachable by any read or resync; roll the
      // owner's local view back to what the quorum actually certified
      // (resync wrote it into our replica just above). write_sn_ is NOT
      // rolled back — sns are never reused, or stale echo-once refusals
      // would wedge the next write.
      const auto& own = this->state_[static_cast<std::size_t>(this->owner_)];
      this->owner_view_ = own.stored_val;
      this->owner_view_sn_ = own.stored_sn;
      this->cv_.notify_all();
    }
  }

  // Broadcast ABORT(sn) until n−f ABACKs arrive (bounded-exponential
  // re-broadcast, like every other quorum wait). Returns true if the fence
  // fully committed (write aborted): every replier had neither delivered
  // nor accepted sn. False means some replier is unsafe — complete instead.
  bool fence_write(std::uint64_t sn) {
    {
      std::scoped_lock lock(this->mu_);
      fence_[sn];  // open the wait slot before broadcasting
    }
    std::uint64_t backoff = std::max<std::uint64_t>(this->retry_.base_ms, 1);
    Message m;
    m.reg = this->reg_id_;
    m.type = "ABORT";
    m.sn = sn;
    for (;;) {
      net_->broadcast(m);
      std::unique_lock lock(this->mu_);
      const auto quorum = [&] {
        return static_cast<int>(fence_[sn].repliers.size()) >=
               this->n_ - this->f_;
      };
      if (this->cv_.wait_for(lock, std::chrono::milliseconds(backoff),
                             quorum)) {
        const bool unsafe_any = fence_[sn].unsafe_any;
        fence_.erase(sn);
        return !unsafe_any;
      }
      backoff = std::min(backoff * 2,
                         std::max(this->retry_.max_ms, this->retry_.base_ms));
    }
  }

  Network* net_;
  std::vector<LadderState> ladder_;         // per process
  std::map<std::uint64_t, AckWait> acks_;   // per in-flight write sn (owner)
  std::map<std::uint64_t, FenceWait> fence_;  // per recovering sn (owner)
};

// SWSR flavor: same protocol, read restricted to one process.
template <typename T>
class EmulatedSwsr : public EmulatedSwmr<T> {
 public:
  using EmulatedSwmr<T>::EmulatedSwmr;
};

// Factory + server threads. API-compatible with registers::Space for the
// operations the core algorithms use, so Algorithms 1–3 run unchanged on
// top of message passing (see core/* template parameter SpaceT).
class EmulatedSpace {
 public:
  template <typename T>
  using SwmrFor = EmulatedSwmr<T>;
  template <typename T>
  using SwsrFor = EmulatedSwsr<T>;

  struct Options {
    int n = 4;
    int f = 1;
    std::uint64_t reorder_seed = 0;
    // Run the quorum resync when a crashed process restarts. Disabled only
    // by the crash/rejoin regression test, to demonstrate the stale state a
    // rejoined server would otherwise serve.
    bool recover_on_restart = true;
    // Client-op retry/deadline policy, applied to every register created by
    // this space (design note 14).
    RetryPolicy retry{};
  };

  explicit EmulatedSpace(Options options)
      : options_(options),
        net_(Network::Options{options.n, options.reorder_seed}),
        crashed_(static_cast<std::size_t>(options.n) + 1),
        pool_(net_, options.n,
              [this](int pid, const Message& m) { dispatch(pid, m); }) {
    for (auto& c : crashed_) c.store(false, std::memory_order_relaxed);
  }

  ~EmulatedSpace() { stop(); }

  void stop() { pool_.stop(); }

  // ---------------------------------------------------- crash / restart
  //
  // A crash may land mid-operation: pid's server thread keeps running but
  // drops everything it receives, the network squelches everything it would
  // send, and each register wipes pid's volatile protocol state. Writes pid
  // had in flight as a CLIENT are suspended (their retry timers park) until
  // restart, when the recovery pass gives each one a determinate outcome —
  // completed or aborted (EmulatedSwmr::owner_restarted). At most f
  // processes may be down at once or quorum waits of live clients stall
  // until the window heals.

  void crash(runtime::ProcessId pid) {
    detail::record_phase(obs::EventKind::kCrash, pid, -1, pid, 0);
    std::vector<detail::HandlerBase*> regs = handlers();
    net_.set_squelched(pid, true);
    crashed_[static_cast<std::size_t>(pid)].store(true,
                                                  std::memory_order_release);
    for (auto* reg : regs) reg->crash_process(pid);
  }

  // Brings pid back. With recover_on_restart the rejoining server replays
  // the certificates it missed from f+1 live peers (resync) before the
  // call returns, then the client-role recovery pass settles any writes pid
  // had in flight when it died (complete or abort; design note 14). Without
  // it the server rejoins with its wiped (0, initial) state and serves
  // stale STATE replies until organic traffic catches it up — exactly what
  // the regression test demonstrates — and interrupted writes just resume
  // their retry timers.
  void restart(runtime::ProcessId pid) {
    detail::record_phase(obs::EventKind::kRestart, pid, -1, pid, 0);
    net_.set_squelched(pid, false);
    crashed_[static_cast<std::size_t>(pid)].store(false,
                                                  std::memory_order_release);
    if (options_.recover_on_restart) resync(pid);
    runtime::ThisProcess::Binder bind(pid);
    for (auto* reg : handlers())
      reg->owner_restarted(pid, options_.recover_on_restart);
  }

  // Quorum resync of every register's state for pid, callable on its own —
  // the soak driver also uses it to heal drop-window staleness.
  void resync(runtime::ProcessId pid) {
    detail::record_phase(obs::EventKind::kResync, pid, -1, pid, 0);
    runtime::ThisProcess::Binder bind(pid);
    for (auto* reg : handlers()) reg->resync_process(pid);
  }

  template <typename T>
  EmulatedSwmr<T>& make_swmr(runtime::ProcessId owner, T initial,
                             std::string name) {
    std::scoped_lock lock(mu_);
    const int id = static_cast<int>(registry_.size());
    auto reg = std::make_unique<EmulatedSwmr<T>>(
        net_, id, options_.n, options_.f, owner, std::move(initial),
        std::move(name), runtime::kNoProcess, options_.retry);
    auto& ref = *reg;
    registry_.push_back(std::move(reg));
    return ref;
  }

  template <typename T>
  EmulatedSwsr<T>& make_swsr(runtime::ProcessId owner,
                             runtime::ProcessId reader, T initial,
                             std::string name) {
    std::scoped_lock lock(mu_);
    const int id = static_cast<int>(registry_.size());
    auto reg = std::make_unique<EmulatedSwsr<T>>(
        net_, id, options_.n, options_.f, owner, std::move(initial),
        std::move(name), reader, options_.retry);
    auto& ref = *reg;
    registry_.push_back(std::move(reg));
    return ref;
  }

  Network& network() { return net_; }
  const Options& options() const { return options_; }

 private:
  void dispatch(int pid, const Message& m) {
    // Crashed process: neither receives nor reacts (and since all its
    // protocol sends happen from this handler, it does not send either).
    if (crashed_[static_cast<std::size_t>(pid)].load(
            std::memory_order_acquire))
      return;
    detail::HandlerBase* handler = nullptr;
    {
      std::scoped_lock lock(mu_);
      if (m.reg >= 0 && m.reg < static_cast<int>(registry_.size()))
        handler = registry_[static_cast<std::size_t>(m.reg)].get();
    }
    if (!handler) return;
    try {
      handler->handle(m);
    } catch (const std::bad_any_cast&) {
      // Malformed payload from a Byzantine sender: drop it, exactly as a
      // deserialization failure would be dropped in a real system.
    }
  }

  std::vector<detail::HandlerBase*> handlers() {
    std::scoped_lock lock(mu_);
    std::vector<detail::HandlerBase*> out;
    out.reserve(registry_.size());
    for (auto& reg : registry_) out.push_back(reg.get());
    return out;
  }

  Options options_;
  Network net_;
  std::mutex mu_;
  std::vector<std::unique_ptr<detail::HandlerBase>> registry_;
  std::vector<std::atomic<bool>> crashed_;  // index by pid
  detail::ServerPool pool_;  // last member: threads stop before state dies
};

}  // namespace swsig::msgpass
