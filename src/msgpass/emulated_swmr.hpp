// Signature-free emulation of atomic SWMR registers in an asynchronous
// Byzantine message-passing system with n > 3f — the substrate behind the
// paper's closing corollary ("SWMR registers can be implemented in
// message-passing systems with n > 3f [11], hence so can our registers").
//
// This is a documented reconstruction in the spirit of Mostéfaoui,
// Petrolia, Raynal, Jard (2017) — their exact pseudo-code is not in the
// reproduced paper. Structure (per register, writer w):
//
//   Write(sn, v)   by w: broadcast WRITE(sn, v); wait for ACK(sn) from
//                  n−f distinct processes.
//   on WRITE(sn,v) first WRITE seen for this sn: broadcast ECHO(sn, v)
//                  (echo-once-per-sn blocks equivocation support).
//   on n−f ECHO(sn,v):   broadcast ACCEPT(sn, v)         [once per pair]
//   on f+1 ACCEPT(sn,v): broadcast ACCEPT(sn, v)         [amplification]
//   on n−f ACCEPT(sn,v): deliver — store (sn,v) if sn is the highest
//                  delivered so far; send ACK(sn) to w.
//
//   Read()   by r: broadcast READ(rid); wait for STATE(rid, sn, v) replies;
//            return v of the highest pair reported identically by n−f
//            distinct processes; if no pair reaches n−f support among the
//            replies, retry with a fresh rid.
//
// Why it is safe (n > 3f):
//  * Per sn, only one value can gather n−f echoes (echo-once + quorum
//    intersection), so delivered pairs are unique per sn.
//  * The ECHO→ACCEPT→amplify→deliver ladder is Bracha's totality argument:
//    if any correct process delivers (sn,v), every correct process
//    eventually delivers it. Hence a read that returns (sn,v) — which
//    requires n−f identical STATEs, i.e. at least f+1 correct holders —
//    guarantees every later read sees at least sn: at most n−f−(f+1)+f =
//    n−f−1 < n−f processes can still report an older pair. No write-back
//    phase is needed because the n−f read threshold self-certifies.
//  * Liveness: reads terminate once the writer quiesces (correct stores
//    converge via totality); under an infinite write storm a read may
//    retry unboundedly — the shared-memory algorithms built on top issue
//    finitely many writes per operation. Recorded as design note 6 in docs/ARCHITECTURE.md.
//
// The server-side state machine itself — echo-once / accept-once /
// amplify / deliver tallies, the delivered-set replay guard, and the
// abort-fence state — is detail::BrachaLadder<sn> (bracha_ladder.hpp),
// shared verbatim with the batched substrate; this file keeps only the
// message I/O policy around it. The owner's client-side state (writer
// mutex, sn-monotone local view) and the READ/STATE quorum machinery are
// shared too: detail::SwmrCore in msgpass/swmr_core.hpp.
//
// Pipelined writes (design note 15): the owner may keep up to
// pipeline_depth ladders in flight at once. write_async(v) allocates the
// next sn, opens its ACK-wait slot, broadcasts the WRITE, and returns the
// sn without waiting; await(sn) blocks until every in-flight sn <= that
// one has settled (quorum ACKs, a recovery completion, or an abort) and
// then reports sn's own fate — so client-visible completion is
// sn-monotone even though ladders race freely. Safety needs no new
// argument: each sn is its own candidate key (per-key dedup), servers
// apply deliveries sn-monotonically, and the owner's view was already
// updated at allocation, exactly as in the blocking path. write(v) is
// write_async + await with depth-1 semantics — byte-identical message
// traces to the pre-pipeline protocol.
#pragma once

#include <any>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "msgpass/detail/bracha_ladder.hpp"
#include "msgpass/network.hpp"
#include "msgpass/server_pool.hpp"
#include "msgpass/swmr_core.hpp"
#include "registers/errors.hpp"
#include "runtime/process.hpp"

namespace swsig::msgpass {

class EmulatedSpace;

namespace detail {
struct HandlerBase {
  virtual ~HandlerBase() = default;
  // Runs on the server thread of the receiving process (bound to its pid).
  virtual void handle(const Message& m) = 0;
  // Crash model (driven by the owning Space): wipe the volatile protocol
  // state process pid held for this register. Stable-storage state (the
  // echoed/delivered dedup sets) survives — see EmulatedSwmr::crash_process.
  virtual void crash_process(int pid) = 0;
  // Recovery: the calling thread is bound as process `self` (rejoined after
  // a crash); replay the missed certificates from f+1 live peers.
  virtual void resync_process(int self) = 0;
  // Client-role recovery after the OWNER restarted (thread bound as pid):
  // decide the fate of writes pid had in flight when it crashed. With
  // `recover` false only the retry suppression is lifted (no fence).
  virtual void owner_restarted(int pid, bool recover) {
    (void)pid;
    (void)recover;
  }
};
}  // namespace detail

// One emulated SWMR register: protocol state for all n processes plus the
// client-side operations. All state is guarded by one mutex; message
// handling runs on per-process server threads owned by the EmulatedSpace.
template <typename T>
class EmulatedSwmr : public detail::HandlerBase, public detail::SwmrCore<T> {
  using Core = detail::SwmrCore<T>;
  using Ladder = detail::BrachaLadder<std::uint64_t>;

 public:
  // Fired once when an async write settles: (sn, aborted). Runs on the
  // thread that observed the settle (the owner's server thread for the ACK
  // quorum, the recovery thread for an abort) — keep it non-blocking and
  // do not call back into this register's write path from it.
  using SettleCallback = std::function<void(std::uint64_t, bool)>;

  EmulatedSwmr(Network& net, int reg_id, int n, int f,
               runtime::ProcessId owner, T initial, std::string name,
               runtime::ProcessId sole_reader = runtime::kNoProcess,
               RetryPolicy retry = {}, int pipeline_depth = 1)
      : Core(reg_id, n, f, owner, std::move(initial), std::move(name),
             sole_reader, retry),
        net_(&net),
        pipeline_depth_(std::max(pipeline_depth, 1)) {
    ladder_.assign(static_cast<std::size_t>(n) + 1, Ladder(n, f));
  }

  // ------------------------------------------------------------- client

  // Write by the owner: completes after n−f ACKs. The model has a single
  // writing *process*, but that process may write from two threads (its op
  // thread and its Help() thread — Algorithms 1–3 do both). writer_mu_
  // serializes those whole-operation, the same discipline as the seqlock
  // engine's writer mutex (registers/storage.hpp); readers never touch it.
  void write(T v) {
    this->require_owner("write");
    std::scoped_lock wl(this->writer_mu_);
    await_locked(write_async_locked(std::move(v), {}));
  }

  // Asynchronous write: broadcasts the WRITE and returns its sn without
  // waiting for the ACK quorum. At most pipeline_depth writes may be
  // unsettled at once — past that the call blocks (driving retries of the
  // in-flight ladders) until a slot frees. Every async write must
  // eventually be awaited: await(sn) reports its fate (WriteAborted if the
  // owner crashed and recovery fenced it) and releases its slot. The
  // optional callback fires once at settle time, before any await returns.
  std::uint64_t write_async(T v) { return write_async(std::move(v), {}); }
  std::uint64_t write_async(T v, SettleCallback on_settled) {
    this->require_owner("write_async");
    std::scoped_lock wl(this->writer_mu_);
    return write_async_locked(std::move(v), std::move(on_settled));
  }

  // Blocks until every in-flight write with sn' <= sn has settled, then
  // reports sn's own outcome: returns normally on completion, throws
  // registers::WriteAborted if recovery finalized sn as aborted, or
  // registers::OpTimeout past retry_.op_timeout_ms. Waiting for the whole
  // prefix keeps client-visible completion sn-monotone: a later write is
  // never observed settled while an earlier one is still undecided.
  void await(std::uint64_t sn) {
    this->require_owner("await");
    await_locked(sn);
  }

  // Owner read-modify-write (single-writer, so the owner's local view IS
  // the register's last written value). Atomicity against the owner's other
  // writing thread lives in SwmrCore::update_with.
  template <typename F>
  T update(F&& fn) {
    this->require_owner("update");
    return this->update_with(std::forward<F>(fn), [this](T v) {
      await_locked(write_async_locked(std::move(v), {}));
    });
  }

  // Read by any process (or the sole reader, for SWSR use).
  T read() { return this->read_via(*net_); }

  // ------------------------------------------------------------- server

  void handle(const Message& m) override {
    const runtime::ProcessId self = runtime::ThisProcess::id();
    if (m.type == "WRITE") {
      if (m.from != this->owner_) return;  // only the owner's writes count
      on_write(self, m, /*complete=*/false);
    } else if (m.type == "CWRITE") {
      // Completion re-issue from the owner's crash recovery: the only
      // message that lifts an abort fence (a plain retried WRITE must stay
      // inert at fenced servers or a delayed pre-crash copy could undo a
      // finalized abort).
      if (m.from != this->owner_) return;
      on_write(self, m, /*complete=*/true);
    } else if (m.type == "ECHO") {
      on_vote_msg(self, m, /*is_echo=*/true);
    } else if (m.type == "ACCEPT") {
      on_vote_msg(self, m, /*is_echo=*/false);
    } else if (m.type == "ACK") {
      if (self != this->owner_) return;
      SettleCallback cb;
      {
        std::scoped_lock lock(this->mu_);
        // Only count ACKs for writes currently in flight (the slot is
        // opened by write_async_locked before the broadcast): late or
        // replayed ACKs would otherwise recreate map entries that are
        // never erased.
        const auto it = acks_.find(m.sn);
        if (it == acks_.end()) return;
        AckWait& w = it->second;
        w.acks.insert(m.from);
        if (static_cast<int>(w.acks.size()) >= this->n_ - this->f_ &&
            w.fate == AckWait::Fate::kPending && !w.fired && w.on_settled) {
          w.fired = true;
          cb = std::move(w.on_settled);
        }
        this->cv_.notify_all();
      }
      if (cb) cb(m.sn, /*aborted=*/false);
    } else if (m.type == "ABORT") {
      if (m.from != this->owner_) return;  // only the owner fences its sns
      on_abort(self, m);
    } else if (m.type == "ABACK") {
      if (self != this->owner_) return;
      on_aback(m);
    } else if (m.type == "READ") {
      this->serve_read(*net_, self, m);
    } else if (m.type == "STATE") {
      this->accept_state(m);
    }
  }

  // Crash semantics: a crash loses the server's volatile state — its stored
  // (sn, value) pair and any in-progress ladder tallies (echo/accept vote
  // counts for undelivered sns). The ladder's echoed / delivered / blocked
  // dedup sets are modeled as stable storage (a write-ahead bit flipped
  // before the corresponding broadcast): without them a rejoined server
  // could echo a second value for an sn it already echoed — becoming
  // equivocation support the safety argument forbids — or re-deliver and
  // re-ACK old sns (see bracha_ladder.hpp).
  void crash_process(int pid) override {
    std::scoped_lock lock(this->mu_);
    this->reset_stored_locked(pid);
    ladder_[static_cast<std::size_t>(pid)].crash();
    if (pid == this->owner_) {
      // In-flight writes just lost their owner: mark them interrupted so
      // the client's retry timer stops re-broadcasting (the network
      // squelch already discards its sends) and the blocked writer thread
      // parks until restart, when owner_restarted decides each fate.
      for (auto& [sn, w] : acks_)
        if (w.fate == AckWait::Fate::kPending) w.interrupted = true;
      this->cv_.notify_all();
    }
  }

  void resync_process(int self) override { this->resync_via(*net_, self); }

  // Owner-side crash recovery (design note 14). Runs bound as `pid` after
  // the server-side resync healed this process's replica. Each write that
  // was in flight when the owner died gets a determinate outcome:
  //  * the resynced state already carries sn (some correct quorum certified
  //    it) -> complete: re-drive the ladder with CWRITE until the ACKs land.
  //  * otherwise run the abort fence: broadcast ABORT(sn) until n−f
  //    processes reply ABACK. A replier that delivered sn — or had already
  //    sent ACCEPT for it — says so (unsafe) -> complete after all.
  //    Repliers that had done neither promise never to echo/accept/deliver
  //    sn. With n−f clean fences, accept-senders are capped at 2f < n−f
  //    forever (f non-repliers + f lying Byzantine repliers; see
  //    BrachaLadder::fence): no correct process ever delivers sn, so no
  //    read (n−f vouchers) or resync (f+1 vouchers, inductively no correct
  //    holder) can surface it. The abort is FINAL; the writer gets
  //    registers::WriteAborted from await.
  //
  // With several writes in flight (pipelining), the sns are decided in
  // ascending order, so the client-visible settle order stays sn-monotone:
  // a later sn never completes-or-aborts before an earlier one was decided.
  // The owner's local view is then rolled back ONLY if the write it mirrors
  // was itself aborted — to the highest surviving write: the best completed
  // in-flight sn or, if lower, the quorum-certified pair the resync adopted
  // (a per-sn rollback would let an early abort clobber the view of a later
  // completed write). write_sn_ is never rolled back — sns are never
  // reused, or stale echo-once refusals would wedge the next write.
  //
  // With `recover` false (recovery subsystem disabled), only the retry
  // suppression is lifted: client retries resume, nothing is decided.
  void owner_restarted(int pid, bool recover) override {
    if (pid != this->owner_) return;
    std::vector<std::uint64_t> inflight;  // ascending (map order)
    {
      std::scoped_lock lock(this->mu_);
      for (auto& [sn, w] : acks_) {
        if (settled_locked(w)) continue;
        if (recover)
          inflight.push_back(sn);
        else
          w.interrupted = false;
      }
      if (!recover) {
        this->cv_.notify_all();
        return;
      }
    }
    std::set<std::uint64_t> aborted;
    std::uint64_t live_sn = 0;  // highest in-flight sn that completed
    int live_vid = -1;
    for (const std::uint64_t sn : inflight) {
      const Recovered out = recover_write(sn);
      if (out.outcome == Recovered::Outcome::kCompleted) {
        live_sn = sn;
        live_vid = out.vid;
      } else if (out.outcome == Recovered::Outcome::kAborted) {
        aborted.insert(sn);
      }
    }
    std::scoped_lock lock(this->mu_);
    if (this->owner_view_sn_ != 0 && aborted.contains(this->owner_view_sn_)) {
      const auto& own = this->state_[static_cast<std::size_t>(this->owner_)];
      if (live_vid >= 0 && live_sn >= own.stored_sn) {
        this->owner_view_ = this->values_[static_cast<std::size_t>(live_vid)];
        this->owner_view_sn_ = live_sn;
      } else {
        this->owner_view_ = own.stored_val;
        this->owner_view_sn_ = own.stored_sn;
      }
    }
  }

 private:
  // Owner-side wait slot for one in-flight write sn.
  struct AckWait {
    enum class Fate { kPending, kCompleted, kAborted };
    int vid = -1;  // interned value, for retry re-broadcasts
    std::set<int> acks;
    // Owner crashed with this write in flight: suppresses the client's
    // retry timer until restart (recovery owns the sn meanwhile).
    bool interrupted = false;
    // Recovery proved the sn delivered somewhere: retries switch to CWRITE
    // so they also lift any fences granted before the delivery was found.
    bool recovered = false;
    bool fired = false;          // settle callback fired (at most once)
    SettleCallback on_settled;   // optional, from write_async
    int slot = 0;                // writes already in flight at issue (obs)
    std::chrono::steady_clock::time_point t0{};  // issue time (latency)
    Fate fate = Fate::kPending;
  };

  // Owner-side wait slot for one abort fence (recovery only).
  struct FenceWait {
    std::set<int> repliers;
    // Some replier delivered sn or had already sent ACCEPT for it: the
    // write must complete, not abort (see BrachaLadder::fence).
    bool unsafe_any = false;
  };

  bool settled_locked(const AckWait& w) const {
    return static_cast<int>(w.acks.size()) >= this->n_ - this->f_ ||
           w.fate != AckWait::Fate::kPending;
  }

  int unsettled_locked() const {
    int k = 0;
    for (const auto& [sn, w] : acks_)
      if (!settled_locked(w)) ++k;
    return k;
  }

  [[noreturn]] void throw_op_timeout(std::unique_lock<std::mutex>& lock,
                                     std::uint64_t victim) {
    if (victim != 0) acks_.erase(victim);
    lock.unlock();
    detail::record_phase(obs::EventKind::kOpTimeout, this->owner_,
                         this->reg_id_, this->owner_, victim);
    detail::timeout_counter().add();
    throw registers::OpTimeout(
        "write sn " + std::to_string(victim) + " on '" + this->name_ +
        "' timed out after " + std::to_string(this->retry_.op_timeout_ms) +
        " ms (outcome indeterminate)");
  }

  // The shared quorum-wait loop of the pipelined write path: waits under
  // `lock` (mu_) until pred(); each lapsed backoff slice re-broadcasts
  // every unsettled, non-interrupted in-flight sn <= limit — WRITE, or
  // CWRITE once recovery proved the sn delivered. Retries are pure
  // refreshes of lost messages, idempotent at every server (echo-once
  // re-issues the original echo, delivered servers just re-ACK), so a
  // retry can never re-certify a quorum or recruit equivocation support
  // (design note 14). Throws registers::OpTimeout at op_deadline, erasing
  // `victim`'s slot (0 = none — the capacity gate has no slot yet).
  template <typename Pred>
  void drive_quorum_locked(std::unique_lock<std::mutex>& lock,
                           std::chrono::steady_clock::time_point op_deadline,
                           std::uint64_t limit, std::uint64_t victim,
                           Pred&& pred) {
    std::uint64_t backoff = std::max<std::uint64_t>(this->retry_.base_ms, 1);
    for (;;) {
      if (pred()) return;
      if (!this->retry_.enabled) {
        if (this->retry_.op_timeout_ms > 0) {
          if (!this->cv_.wait_until(lock, op_deadline, pred))
            throw_op_timeout(lock, victim);
        } else {
          this->cv_.wait(lock, pred);
        }
        continue;
      }
      const auto until = std::min(std::chrono::steady_clock::now() +
                                      std::chrono::milliseconds(backoff),
                                  op_deadline);
      if (this->cv_.wait_until(lock, until, pred)) return;
      if (std::chrono::steady_clock::now() >= op_deadline)
        throw_op_timeout(lock, victim);
      struct Resend {
        std::uint64_t sn;
        int vid;
        bool cwrite;
      };
      std::vector<Resend> resend;
      for (const auto& [sn, w] : acks_) {
        if (sn > limit) break;
        if (settled_locked(w) || w.interrupted) continue;
        resend.push_back({sn, w.vid, w.recovered});
      }
      if (!resend.empty()) {
        lock.unlock();
        for (const Resend& r : resend) {
          detail::record_phase(obs::EventKind::kOpRetry, this->owner_,
                               this->reg_id_, this->owner_, r.sn, backoff);
          detail::retry_counter().add();
          Message rm;
          rm.reg = this->reg_id_;
          rm.type = r.cwrite ? "CWRITE" : "WRITE";
          rm.sn = r.sn;
          rm.payload = value_snapshot(r.vid);
          net_->broadcast(rm);
        }
        lock.lock();
      }
      backoff = std::min(backoff * 2,
                         std::max(this->retry_.max_ms, this->retry_.base_ms));
    }
  }

  // Issue half of the pipelined write path: caller holds writer_mu_.
  // Blocks only on the capacity gate (unsettled in-flight >= depth).
  std::uint64_t write_async_locked(T v, SettleCallback on_settled) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto op_deadline =
        this->retry_.op_timeout_ms > 0
            ? t0 + std::chrono::milliseconds(this->retry_.op_timeout_ms)
            : std::chrono::steady_clock::time_point::max();
    {
      // Capacity gate. The wait drives retries of the in-flight sns so a
      // lossy window cannot wedge an issuer behind ladders whose awaiters
      // have not started waiting yet.
      std::unique_lock lock(this->mu_);
      drive_quorum_locked(lock, op_deadline,
                          std::numeric_limits<std::uint64_t>::max(),
                          /*victim=*/0,
                          [&] { return unsettled_locked() < pipeline_depth_; });
    }
    const std::uint64_t sn = this->allocate_sn_locked(v);
    int slot;
    {
      // Open the ACK wait slot before broadcasting so the ACK handler can
      // tell the in-flight write from stale/replayed sns.
      std::scoped_lock lock(this->mu_);
      slot = unsettled_locked();  // writes already in flight (0 = none)
      AckWait& w = acks_[sn];
      w.vid = this->intern_locked(v);
      w.on_settled = std::move(on_settled);
      w.slot = slot;
      w.t0 = t0;
    }
    detail::record_phase(obs::EventKind::kWriteStart, this->owner_,
                         this->reg_id_, this->owner_, sn,
                         static_cast<std::uint64_t>(slot));
    Message m;
    m.reg = this->reg_id_;
    m.type = "WRITE";
    m.sn = sn;
    m.payload = std::move(v);
    net_->broadcast(m);
    detail::record_phase(obs::EventKind::kQuorumWait, this->owner_,
                         this->reg_id_, this->owner_, sn,
                         static_cast<std::uint64_t>(this->n_ - this->f_));
    return sn;
  }

  // Settle half: waits for every in-flight sn <= target, then reports
  // target's fate and releases (only) its slot. See await() for semantics.
  void await_locked(std::uint64_t target) {
    static obs::LogHistogram& ack_hist =
        obs::MetricsRegistry::global().histogram("msgpass.write_ack_wait_us");
    std::unique_lock lock(this->mu_);
    const auto it0 = acks_.find(target);
    if (it0 == acks_.end()) return;  // already awaited (or timed out)
    const auto t0 = it0->second.t0;
    const auto op_deadline =
        this->retry_.op_timeout_ms > 0
            ? t0 + std::chrono::milliseconds(this->retry_.op_timeout_ms)
            : std::chrono::steady_clock::time_point::max();
    drive_quorum_locked(lock, op_deadline, target, /*victim=*/target, [&] {
      for (auto it = acks_.begin(); it != acks_.end() && it->first <= target;
           ++it)
        if (!settled_locked(it->second)) return false;
      return true;
    });
    const auto it = acks_.find(target);
    if (it == acks_.end()) return;  // raced with a concurrent await(target)
    const bool was_aborted = it->second.fate == AckWait::Fate::kAborted;
    acks_.erase(it);
    lock.unlock();
    if (was_aborted) {
      detail::record_phase(obs::EventKind::kWriteAbort, this->owner_,
                           this->reg_id_, this->owner_, target);
      detail::abort_counter().add();
      throw registers::WriteAborted(
          "write sn " + std::to_string(target) + " on '" + this->name_ +
          "' aborted: owner crashed before the value could deliver");
    }
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    ack_hist.add(std::chrono::duration<double, std::micro>(elapsed).count());
    detail::record_phase(
        obs::EventKind::kWriteDone, this->owner_, this->reg_id_, this->owner_,
        target,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  // WRITE and CWRITE. The ladder decides (bracha_ladder.hpp): a delivered
  // server re-ACKs, a fenced server stays inert unless this is the
  // completion re-issue, an echoed server re-broadcasts its ORIGINAL echo
  // (receivers dedup votes by sender, so tallies never double-count — and
  // an equivocating retry cannot recruit this server's support either).
  void on_write(int self, const Message& m, bool complete) {
    typename Ladder::WriteStep step;
    {
      std::scoped_lock lock(this->mu_);
      step = ladder_[static_cast<std::size_t>(self)].on_write(
          m.sn, complete,
          [&] { return this->intern_locked(std::any_cast<const T&>(m.payload)); });
    }
    switch (step.action) {
      case Ladder::WriteAction::kReAck: {
        Message ack;
        ack.reg = this->reg_id_;
        ack.type = "ACK";
        ack.sn = m.sn;
        ack.to = this->owner_;
        net_->send(ack);
        return;
      }
      case Ladder::WriteAction::kFenced:
      case Ladder::WriteAction::kRefused:
        return;
      case Ladder::WriteAction::kEcho:
        break;
    }
    detail::record_phase(obs::EventKind::kPhaseEcho, self, this->reg_id_,
                         this->owner_, m.sn);
    Message echo;
    echo.reg = this->reg_id_;
    echo.type = "ECHO";
    echo.sn = m.sn;
    echo.payload = value_snapshot(step.value_id);
    net_->broadcast(echo);
  }

  // ECHO and ACCEPT: one vote into the ladder; act on what it fired.
  void on_vote_msg(int self, const Message& m, bool is_echo) {
    int vid;
    typename Ladder::VoteStep step;
    {
      std::scoped_lock lock(this->mu_);
      vid = this->intern_locked(std::any_cast<const T&>(m.payload));
      step = ladder_[static_cast<std::size_t>(self)].on_vote(m.sn, vid,
                                                             m.from, is_echo);
      if (step.deliver) this->apply_locked(self, m.sn, vid);
    }
    if (step.send_accept)
      detail::record_phase(step.amplified ? obs::EventKind::kPhaseAmplify
                                          : obs::EventKind::kPhaseAccept,
                           self, this->reg_id_, this->owner_, m.sn);
    if (step.deliver) {
      detail::record_phase(obs::EventKind::kPhaseDeliver, self, this->reg_id_,
                           this->owner_, m.sn, static_cast<std::uint64_t>(vid));
      detail::record_phase(obs::EventKind::kPhaseAck, self, this->reg_id_,
                           this->owner_, m.sn);
    }
    if (step.send_accept) {
      Message acc;
      acc.reg = this->reg_id_;
      acc.type = "ACCEPT";
      acc.sn = m.sn;
      acc.payload = value_snapshot(vid);
      net_->broadcast(acc);
    }
    if (step.deliver) {
      Message ack;
      ack.reg = this->reg_id_;
      ack.type = "ACK";
      ack.sn = m.sn;
      ack.to = this->owner_;
      net_->send(ack);
    }
  }

  // Server side of the abort fence — BrachaLadder::fence holds the safety
  // argument (delivered-or-accepted repliers are unsafe; the rest promise
  // never to support sn again).
  void on_abort(int self, const Message& m) {
    bool unsafe;
    {
      std::scoped_lock lock(this->mu_);
      unsafe = ladder_[static_cast<std::size_t>(self)].fence(m.sn);
    }
    Message r;
    r.reg = this->reg_id_;
    r.type = "ABACK";
    r.sn = m.sn;
    r.to = m.from;
    r.payload = unsafe;
    net_->send(r);
  }

  void on_aback(const Message& m) {
    std::scoped_lock lock(this->mu_);
    const auto it = fence_.find(m.sn);
    if (it == fence_.end()) return;  // reply to a finished fence
    it->second.repliers.insert(m.from);
    if (std::any_cast<bool>(m.payload)) it->second.unsafe_any = true;
    this->cv_.notify_all();
  }

  T value_snapshot(int vid) {
    std::scoped_lock lock(this->mu_);
    return this->values_[static_cast<std::size_t>(vid)];
  }

  // Recovery for one interrupted write sn (thread bound as the owner; see
  // owner_restarted for the safety argument). Decides complete-vs-abort and
  // applies the outcome to the writer's wait slot; owner_restarted folds
  // the outcomes into the owner-view rollback decision.
  struct Recovered {
    enum class Outcome { kCompleted, kAborted, kVanished };
    Outcome outcome = Outcome::kVanished;
    int vid = -1;
  };
  Recovered recover_write(std::uint64_t sn) {
    bool certified;
    {
      // The server-side resync just adopted the highest f+1-vouched pair
      // into our own replica: if it carries sn, the write delivered
      // somewhere and must complete.
      std::scoped_lock lock(this->mu_);
      certified =
          this->state_[static_cast<std::size_t>(this->owner_)].stored_sn >= sn;
    }
    const bool complete = certified || !fence_write(sn);
    SettleCallback cb;
    std::unique_lock lock(this->mu_);
    const auto it = acks_.find(sn);
    if (it == acks_.end())
      return {};  // writer gave up (op timeout) meanwhile
    AckWait& w = it->second;
    const int vid = w.vid;
    if (complete) {
      w.recovered = true;
      w.interrupted = false;
      this->cv_.notify_all();
      lock.unlock();
      // Kick the completion now rather than waiting a backoff slice: the
      // CWRITE lifts any fences granted mid-recovery and re-drives the
      // ladder toward the missing ACKs (the writer's own retries continue
      // as CWRITE from here).
      Message cm;
      cm.reg = this->reg_id_;
      cm.type = "CWRITE";
      cm.sn = sn;
      cm.payload = value_snapshot(vid);
      net_->broadcast(cm);
      return {Recovered::Outcome::kCompleted, vid};
    }
    w.fate = AckWait::Fate::kAborted;
    w.interrupted = false;
    if (!w.fired && w.on_settled) {
      w.fired = true;
      cb = std::move(w.on_settled);
    }
    this->cv_.notify_all();
    lock.unlock();
    if (cb) cb(sn, /*aborted=*/true);
    return {Recovered::Outcome::kAborted, vid};
  }

  // Broadcast ABORT(sn) until n−f ABACKs arrive (bounded-exponential
  // re-broadcast, like every other quorum wait). Returns true if the fence
  // fully committed (write aborted): every replier had neither delivered
  // nor accepted sn. False means some replier is unsafe — complete instead.
  bool fence_write(std::uint64_t sn) {
    {
      std::scoped_lock lock(this->mu_);
      fence_[sn];  // open the wait slot before broadcasting
    }
    std::uint64_t backoff = std::max<std::uint64_t>(this->retry_.base_ms, 1);
    Message m;
    m.reg = this->reg_id_;
    m.type = "ABORT";
    m.sn = sn;
    for (;;) {
      net_->broadcast(m);
      std::unique_lock lock(this->mu_);
      const auto quorum = [&] {
        return static_cast<int>(fence_[sn].repliers.size()) >=
               this->n_ - this->f_;
      };
      if (this->cv_.wait_for(lock, std::chrono::milliseconds(backoff),
                             quorum)) {
        const bool unsafe_any = fence_[sn].unsafe_any;
        fence_.erase(sn);
        return !unsafe_any;
      }
      backoff = std::min(backoff * 2,
                         std::max(this->retry_.max_ms, this->retry_.base_ms));
    }
  }

  Network* net_;
  const int pipeline_depth_;                // max unsettled async writes
  std::vector<Ladder> ladder_;              // per process
  std::map<std::uint64_t, AckWait> acks_;   // per in-flight write sn (owner)
  std::map<std::uint64_t, FenceWait> fence_;  // per recovering sn (owner)
};

// SWSR flavor: same protocol, read restricted to one process.
template <typename T>
class EmulatedSwsr : public EmulatedSwmr<T> {
 public:
  using EmulatedSwmr<T>::EmulatedSwmr;
};

// Factory + server threads. API-compatible with registers::Space for the
// operations the core algorithms use, so Algorithms 1–3 run unchanged on
// top of message passing (see core/* template parameter SpaceT).
class EmulatedSpace {
 public:
  template <typename T>
  using SwmrFor = EmulatedSwmr<T>;
  template <typename T>
  using SwsrFor = EmulatedSwsr<T>;

  struct Options {
    int n = 4;
    int f = 1;
    std::uint64_t reorder_seed = 0;
    // Run the quorum resync when a crashed process restarts. Disabled only
    // by the crash/rejoin regression test, to demonstrate the stale state a
    // rejoined server would otherwise serve.
    bool recover_on_restart = true;
    // Client-op retry/deadline policy, applied to every register created by
    // this space (design note 14).
    RetryPolicy retry{};
    // Max unsettled write_async ladders per register owner (design note
    // 15). 1 (the default) reproduces the blocking protocol exactly.
    int pipeline_depth = 1;
  };

  explicit EmulatedSpace(Options options)
      : options_(options),
        net_(Network::Options{options.n, options.reorder_seed}),
        crashed_(static_cast<std::size_t>(options.n) + 1),
        pool_(net_, options.n,
              [this](int pid, const Message& m) { dispatch(pid, m); }) {
    for (auto& c : crashed_) c.store(false, std::memory_order_relaxed);
  }

  ~EmulatedSpace() { stop(); }

  void stop() { pool_.stop(); }

  // ---------------------------------------------------- crash / restart
  //
  // A crash may land mid-operation: pid's server thread keeps running but
  // drops everything it receives, the network squelches everything it would
  // send, and each register wipes pid's volatile protocol state. Writes pid
  // had in flight as a CLIENT are suspended (their retry timers park) until
  // restart, when the recovery pass gives each one a determinate outcome —
  // completed or aborted (EmulatedSwmr::owner_restarted). At most f
  // processes may be down at once or quorum waits of live clients stall
  // until the window heals.

  void crash(runtime::ProcessId pid) {
    detail::record_phase(obs::EventKind::kCrash, pid, -1, pid, 0);
    std::vector<detail::HandlerBase*> regs = handlers();
    net_.set_squelched(pid, true);
    crashed_[static_cast<std::size_t>(pid)].store(true,
                                                  std::memory_order_release);
    for (auto* reg : regs) reg->crash_process(pid);
  }

  // Brings pid back. With recover_on_restart the rejoining server replays
  // the certificates it missed from f+1 live peers (resync) before the
  // call returns, then the client-role recovery pass settles any writes pid
  // had in flight when it died (complete or abort; design note 14). Without
  // it the server rejoins with its wiped (0, initial) state and serves
  // stale STATE replies until organic traffic catches it up — exactly what
  // the regression test demonstrates — and interrupted writes just resume
  // their retry timers.
  void restart(runtime::ProcessId pid) {
    detail::record_phase(obs::EventKind::kRestart, pid, -1, pid, 0);
    net_.set_squelched(pid, false);
    crashed_[static_cast<std::size_t>(pid)].store(false,
                                                  std::memory_order_release);
    if (options_.recover_on_restart) resync(pid);
    runtime::ThisProcess::Binder bind(pid);
    for (auto* reg : handlers())
      reg->owner_restarted(pid, options_.recover_on_restart);
  }

  // Quorum resync of every register's state for pid, callable on its own —
  // the soak driver also uses it to heal drop-window staleness.
  void resync(runtime::ProcessId pid) {
    detail::record_phase(obs::EventKind::kResync, pid, -1, pid, 0);
    runtime::ThisProcess::Binder bind(pid);
    for (auto* reg : handlers()) reg->resync_process(pid);
  }

  template <typename T>
  EmulatedSwmr<T>& make_swmr(runtime::ProcessId owner, T initial,
                             std::string name) {
    std::scoped_lock lock(mu_);
    const int id = static_cast<int>(registry_.size());
    auto reg = std::make_unique<EmulatedSwmr<T>>(
        net_, id, options_.n, options_.f, owner, std::move(initial),
        std::move(name), runtime::kNoProcess, options_.retry,
        options_.pipeline_depth);
    auto& ref = *reg;
    registry_.push_back(std::move(reg));
    return ref;
  }

  template <typename T>
  EmulatedSwsr<T>& make_swsr(runtime::ProcessId owner,
                             runtime::ProcessId reader, T initial,
                             std::string name) {
    std::scoped_lock lock(mu_);
    const int id = static_cast<int>(registry_.size());
    auto reg = std::make_unique<EmulatedSwsr<T>>(
        net_, id, options_.n, options_.f, owner, std::move(initial),
        std::move(name), reader, options_.retry, options_.pipeline_depth);
    auto& ref = *reg;
    registry_.push_back(std::move(reg));
    return ref;
  }

  Network& network() { return net_; }
  const Options& options() const { return options_; }

 private:
  void dispatch(int pid, const Message& m) {
    // Crashed process: neither receives nor reacts (and since all its
    // protocol sends happen from this handler, it does not send either).
    if (crashed_[static_cast<std::size_t>(pid)].load(
            std::memory_order_acquire))
      return;
    detail::HandlerBase* handler = nullptr;
    {
      std::scoped_lock lock(mu_);
      if (m.reg >= 0 && m.reg < static_cast<int>(registry_.size()))
        handler = registry_[static_cast<std::size_t>(m.reg)].get();
    }
    if (!handler) return;
    try {
      handler->handle(m);
    } catch (const std::bad_any_cast&) {
      // Malformed payload from a Byzantine sender: drop it, exactly as a
      // deserialization failure would be dropped in a real system.
    }
  }

  std::vector<detail::HandlerBase*> handlers() {
    std::scoped_lock lock(mu_);
    std::vector<detail::HandlerBase*> out;
    out.reserve(registry_.size());
    for (auto& reg : registry_) out.push_back(reg.get());
    return out;
  }

  Options options_;
  Network net_;
  std::mutex mu_;
  std::vector<std::unique_ptr<detail::HandlerBase>> registry_;
  std::vector<std::atomic<bool>> crashed_;  // index by pid
  detail::ServerPool pool_;  // last member: threads stop before state dies
};

}  // namespace swsig::msgpass
