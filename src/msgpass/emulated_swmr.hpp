// Signature-free emulation of atomic SWMR registers in an asynchronous
// Byzantine message-passing system with n > 3f — the substrate behind the
// paper's closing corollary ("SWMR registers can be implemented in
// message-passing systems with n > 3f [11], hence so can our registers").
//
// This is a documented reconstruction in the spirit of Mostéfaoui,
// Petrolia, Raynal, Jard (2017) — their exact pseudo-code is not in the
// reproduced paper. Structure (per register, writer w):
//
//   Write(sn, v)   by w: broadcast WRITE(sn, v); wait for ACK(sn) from
//                  n−f distinct processes.
//   on WRITE(sn,v) first WRITE seen for this sn: broadcast ECHO(sn, v)
//                  (echo-once-per-sn blocks equivocation support).
//   on n−f ECHO(sn,v):   broadcast ACCEPT(sn, v)         [once per pair]
//   on f+1 ACCEPT(sn,v): broadcast ACCEPT(sn, v)         [amplification]
//   on n−f ACCEPT(sn,v): deliver — store (sn,v) if sn is the highest
//                  delivered so far; send ACK(sn) to w.
//
//   Read()   by r: broadcast READ(rid); wait for STATE(rid, sn, v) replies;
//            return v of the highest pair reported identically by n−f
//            distinct processes; if no pair reaches n−f support among the
//            replies, retry with a fresh rid.
//
// Why it is safe (n > 3f):
//  * Per sn, only one value can gather n−f echoes (echo-once + quorum
//    intersection), so delivered pairs are unique per sn.
//  * The ECHO→ACCEPT→amplify→deliver ladder is Bracha's totality argument:
//    if any correct process delivers (sn,v), every correct process
//    eventually delivers it. Hence a read that returns (sn,v) — which
//    requires n−f identical STATEs, i.e. at least f+1 correct holders —
//    guarantees every later read sees at least sn: at most n−f−(f+1)+f =
//    n−f−1 < n−f processes can still report an older pair. No write-back
//    phase is needed because the n−f read threshold self-certifies.
//  * Liveness: reads terminate once the writer quiesces (correct stores
//    converge via totality); under an infinite write storm a read may
//    retry unboundedly — the shared-memory algorithms built on top issue
//    finitely many writes per operation. Recorded as design note 6 in docs/ARCHITECTURE.md.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "msgpass/network.hpp"
#include "registers/errors.hpp"
#include "runtime/process.hpp"

namespace swsig::msgpass {

class EmulatedSpace;

namespace detail {
struct HandlerBase {
  virtual ~HandlerBase() = default;
  // Runs on the server thread of the receiving process (bound to its pid).
  virtual void handle(const Message& m) = 0;
};
}  // namespace detail

// One emulated SWMR register: protocol state for all n processes plus the
// client-side operations. All state is guarded by one mutex; message
// handling runs on per-process server threads owned by the EmulatedSpace.
template <typename T>
class EmulatedSwmr : public detail::HandlerBase {
 public:
  EmulatedSwmr(Network& net, int reg_id, int n, int f,
               runtime::ProcessId owner, T initial, std::string name,
               runtime::ProcessId sole_reader = runtime::kNoProcess)
      : net_(&net),
        reg_id_(reg_id),
        n_(n),
        f_(f),
        owner_(owner),
        sole_reader_(sole_reader),
        name_(std::move(name)),
        initial_(initial),
        owner_view_(std::move(initial)) {
    state_.resize(static_cast<std::size_t>(n_) + 1);
    for (int pid = 0; pid <= n_; ++pid) {
      state_[static_cast<std::size_t>(pid)].stored_sn = 0;
      state_[static_cast<std::size_t>(pid)].stored_val = initial_;
    }
  }

  const std::string& name() const { return name_; }
  runtime::ProcessId owner() const { return owner_; }

  // ------------------------------------------------------------- client

  // Write by the owner: completes after n−f ACKs.
  void write(T v) {
    require_owner("write");
    std::unique_lock lock(mu_);
    owner_view_ = v;
    const std::uint64_t sn = ++write_sn_;
    lock.unlock();
    Message m;
    m.reg = reg_id_;
    m.type = "WRITE";
    m.sn = sn;
    m.payload = v;
    net_->broadcast(m);
    lock.lock();
    cv_.wait(lock, [&] {
      return static_cast<int>(acks_[sn].size()) >= n_ - f_;
    });
    acks_.erase(sn);
  }

  // Owner read-modify-write (single-writer, so the owner's local view IS
  // the register's last written value).
  template <typename F>
  T update(F&& fn) {
    require_owner("update");
    std::unique_lock lock(mu_);
    T next = owner_view_;
    fn(next);
    const bool changed = !(next == owner_view_);
    lock.unlock();
    if (changed) write(next);
    return next;
  }

  // Read by any process (or the sole reader, for SWSR use).
  T read() {
    const runtime::ProcessId self = runtime::ThisProcess::id();
    if (sole_reader_ != runtime::kNoProcess && self != sole_reader_ &&
        self != owner_) {
      throw registers::PortViolation("read of emulated SWSR '" + name_ +
                                     "' by p" + std::to_string(self));
    }
    if (self == owner_) {
      // The single writer's latest write is trivially the current value.
      std::scoped_lock lock(mu_);
      return owner_view_;
    }
    for (;;) {
      std::uint64_t rid;
      {
        std::scoped_lock lock(mu_);
        rid = ++read_rid_;
        reads_[rid];  // create wait slot
      }
      Message m;
      m.reg = reg_id_;
      m.type = "READ";
      m.sn = rid;
      net_->broadcast(m);
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] {
        return static_cast<int>(reads_[rid].senders.size()) >= n_ - f_;
      });
      // Highest pair reported identically by n−f distinct processes.
      std::optional<T> result;
      std::uint64_t best_sn = 0;
      bool found = false;
      for (const auto& [key, support] : reads_[rid].support) {
        if (static_cast<int>(support.size()) >= n_ - f_ &&
            (!found || key.first > best_sn)) {
          best_sn = key.first;
          result = values_.at(key.second);
          found = true;
        }
      }
      reads_.erase(rid);
      if (found) return *result;
      // No quorum-supported pair among these replies (stores still
      // converging): retry with a fresh request.
      lock.unlock();
      std::this_thread::yield();
    }
  }

  // ------------------------------------------------------------- server

  void handle(const Message& m) override {
    const runtime::ProcessId self = runtime::ThisProcess::id();
    if (m.type == "WRITE") {
      if (m.from != owner_) return;  // only the owner's writes count
      on_write(self, m);
    } else if (m.type == "ECHO") {
      on_echo(self, m);
    } else if (m.type == "ACCEPT") {
      on_accept(self, m);
    } else if (m.type == "ACK") {
      if (self != owner_) return;
      std::scoped_lock lock(mu_);
      acks_[m.sn].insert(m.from);
      cv_.notify_all();
    } else if (m.type == "READ") {
      on_read(self, m);
    } else if (m.type == "STATE") {
      on_state(m);
    }
  }

 private:
  struct Candidate {
    int value_id = 0;
    std::set<int> echoes;
    std::set<int> accepts;
    bool sent_accept = false;
    bool delivered = false;
  };
  struct ServerState {
    std::uint64_t stored_sn = 0;
    T stored_val{};
    std::set<std::uint64_t> echoed;  // echo-once-per-sn
    // per sn: candidate values (usually 1; >1 only under equivocation)
    std::map<std::uint64_t, std::vector<Candidate>> cands;
  };
  struct ReadWait {
    std::set<int> senders;
    // (sn, value_id) -> supporting processes
    std::map<std::pair<std::uint64_t, int>, std::set<int>> support;
  };

  void require_owner(const char* op) const {
    if (runtime::ThisProcess::id() != owner_)
      throw registers::PortViolation(std::string(op) + " on emulated '" +
                                     name_ + "' by non-owner p" +
                                     std::to_string(runtime::ThisProcess::id()));
  }

  // Interns a value, returning a stable id (values are only ever compared
  // for equality; ids keep the maps cheap and hashable-free).
  int intern(const T& v) {
    for (std::size_t i = 0; i < values_.size(); ++i)
      if (values_[i] == v) return static_cast<int>(i);
    values_.push_back(v);
    return static_cast<int>(values_.size()) - 1;
  }

  Candidate& candidate(ServerState& st, std::uint64_t sn, int value_id) {
    for (Candidate& c : st.cands[sn])
      if (c.value_id == value_id) return c;
    st.cands[sn].push_back(Candidate{value_id, {}, {}, false, false});
    return st.cands[sn].back();
  }

  void on_write(int self, const Message& m) {
    std::unique_lock lock(mu_);
    ServerState& st = state_[static_cast<std::size_t>(self)];
    if (st.echoed.contains(m.sn)) return;  // echo at most once per sn
    st.echoed.insert(m.sn);
    const int vid = intern(std::any_cast<const T&>(m.payload));
    lock.unlock();
    Message echo;
    echo.reg = reg_id_;
    echo.type = "ECHO";
    echo.sn = m.sn;
    echo.payload = values_snapshot(vid);
    net_->broadcast(echo);
  }

  void on_echo(int self, const Message& m) {
    std::unique_lock lock(mu_);
    ServerState& st = state_[static_cast<std::size_t>(self)];
    const int vid = intern(std::any_cast<const T&>(m.payload));
    Candidate& c = candidate(st, m.sn, vid);
    c.echoes.insert(m.from);
    progress(self, st, m.sn, c, lock);
  }

  void on_accept(int self, const Message& m) {
    std::unique_lock lock(mu_);
    ServerState& st = state_[static_cast<std::size_t>(self)];
    const int vid = intern(std::any_cast<const T&>(m.payload));
    Candidate& c = candidate(st, m.sn, vid);
    c.accepts.insert(m.from);
    progress(self, st, m.sn, c, lock);
  }

  // Evaluates the Bracha ladder for one candidate. Called under mu_; may
  // temporarily release it to send messages.
  void progress(int /*self*/, ServerState& st, std::uint64_t sn,
                Candidate& c, std::unique_lock<std::mutex>& lock) {
    const int vid = c.value_id;
    bool send_accept = false;
    bool deliver = false;
    if (!c.sent_accept && (static_cast<int>(c.echoes.size()) >= n_ - f_ ||
                           static_cast<int>(c.accepts.size()) >= f_ + 1)) {
      c.sent_accept = true;
      send_accept = true;
    }
    if (!c.delivered && static_cast<int>(c.accepts.size()) >= n_ - f_) {
      c.delivered = true;
      deliver = true;
      if (sn > st.stored_sn) {
        st.stored_sn = sn;
        st.stored_val = values_[static_cast<std::size_t>(vid)];
      }
    }
    lock.unlock();
    if (send_accept) {
      Message acc;
      acc.reg = reg_id_;
      acc.type = "ACCEPT";
      acc.sn = sn;
      acc.payload = values_snapshot(vid);
      net_->broadcast(acc);
    }
    if (deliver) {
      Message ack;
      ack.reg = reg_id_;
      ack.type = "ACK";
      ack.sn = sn;
      ack.to = owner_;
      net_->send(ack);
    }
    lock.lock();
  }

  void on_read(int self, const Message& m) {
    Message reply;
    reply.reg = reg_id_;
    reply.type = "STATE";
    reply.sn = m.sn;  // rid
    reply.to = m.from;
    {
      std::scoped_lock lock(mu_);
      const ServerState& st = state_[static_cast<std::size_t>(self)];
      reply.payload = std::pair<std::uint64_t, T>(st.stored_sn, st.stored_val);
    }
    net_->send(reply);
  }

  void on_state(const Message& m) {
    std::scoped_lock lock(mu_);
    auto it = reads_.find(m.sn);
    if (it == reads_.end()) return;  // reply to a finished/foreign read
    const auto& [sn, val] = std::any_cast<const std::pair<std::uint64_t, T>&>(
        m.payload);
    if (!it->second.senders.insert(m.from).second) return;  // dup sender
    it->second.support[{sn, intern(val)}].insert(m.from);
    cv_.notify_all();
  }

  T values_snapshot(int vid) {
    std::scoped_lock lock(mu_);
    return values_[static_cast<std::size_t>(vid)];
  }

  Network* net_;
  int reg_id_;
  int n_;
  int f_;
  runtime::ProcessId owner_;
  runtime::ProcessId sole_reader_;  // kNoProcess = SWMR
  std::string name_;
  T initial_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> values_;                  // interned values
  std::vector<ServerState> state_;         // per process
  std::uint64_t write_sn_ = 0;             // owner-local
  T owner_view_;                           // owner-local latest value
  std::map<std::uint64_t, std::set<int>> acks_;  // per write sn
  std::uint64_t read_rid_ = 0;
  std::map<std::uint64_t, ReadWait> reads_;
};

// SWSR flavor: same protocol, read restricted to one process.
template <typename T>
class EmulatedSwsr : public EmulatedSwmr<T> {
 public:
  using EmulatedSwmr<T>::EmulatedSwmr;
};

// Factory + server threads. API-compatible with registers::Space for the
// operations the core algorithms use, so Algorithms 1–3 run unchanged on
// top of message passing (see core/* template parameter SpaceT).
class EmulatedSpace {
 public:
  template <typename T>
  using SwmrFor = EmulatedSwmr<T>;
  template <typename T>
  using SwsrFor = EmulatedSwsr<T>;

  struct Options {
    int n = 4;
    int f = 1;
    std::uint64_t reorder_seed = 0;
  };

  explicit EmulatedSpace(Options options)
      : options_(options), net_(Network::Options{options.n,
                                                 options.reorder_seed}) {
    for (int pid = 1; pid <= options_.n; ++pid) {
      servers_.emplace_back([this, pid](std::stop_token st) {
        runtime::ThisProcess::Binder bind(pid);
        while (!st.stop_requested()) {
          auto m = net_.recv(st);
          if (!m) continue;
          detail::HandlerBase* handler = nullptr;
          {
            std::scoped_lock lock(mu_);
            if (m->reg >= 0 &&
                m->reg < static_cast<int>(registry_.size()))
              handler = registry_[static_cast<std::size_t>(m->reg)].get();
          }
          if (handler) {
            try {
              handler->handle(*m);
            } catch (const std::bad_any_cast&) {
              // Malformed payload from a Byzantine sender: drop it, exactly
              // as a deserialization failure would be dropped in a real
              // system.
            }
          }
        }
      });
    }
  }

  ~EmulatedSpace() { stop(); }

  void stop() {
    for (auto& t : servers_) t.request_stop();
    servers_.clear();
  }

  template <typename T>
  EmulatedSwmr<T>& make_swmr(runtime::ProcessId owner, T initial,
                             std::string name) {
    std::scoped_lock lock(mu_);
    const int id = static_cast<int>(registry_.size());
    auto reg = std::make_unique<EmulatedSwmr<T>>(
        net_, id, options_.n, options_.f, owner, std::move(initial),
        std::move(name));
    auto& ref = *reg;
    registry_.push_back(std::move(reg));
    return ref;
  }

  template <typename T>
  EmulatedSwsr<T>& make_swsr(runtime::ProcessId owner,
                             runtime::ProcessId reader, T initial,
                             std::string name) {
    std::scoped_lock lock(mu_);
    const int id = static_cast<int>(registry_.size());
    auto reg = std::make_unique<EmulatedSwsr<T>>(
        net_, id, options_.n, options_.f, owner, std::move(initial),
        std::move(name), reader);
    auto& ref = *reg;
    registry_.push_back(std::move(reg));
    return ref;
  }

  Network& network() { return net_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  Network net_;
  std::mutex mu_;
  std::vector<std::unique_ptr<detail::HandlerBase>> registry_;
  std::vector<std::jthread> servers_;
};

}  // namespace swsig::msgpass
