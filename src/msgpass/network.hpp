// Simulated asynchronous reliable network.
//
// Reliable, authenticated, point-to-point channels between n processes:
// messages between correct processes are eventually delivered, unordered
// delivery is modeled by thread scheduling (and an optional seeded
// reordering of each inbox). There is no synchrony assumption anywhere —
// receivers block until something arrives.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stop_token>
#include <thread>
#include <vector>

#include "msgpass/message.hpp"
#include "runtime/process.hpp"
#include "util/rng.hpp"

namespace swsig::msgpass {

class Network {
 public:
  struct Options {
    int n = 4;
    // If > 0, each delivery picks a random queued message instead of the
    // oldest, modeling out-of-order asynchrony (seeded => reproducible).
    std::uint64_t reorder_seed = 0;
  };

  explicit Network(Options options);

  // Sends m to m.to; the sender identity is stamped from the calling
  // thread's bound process (authenticated channels).
  void send(Message m);

  // Sends m to every process 1..n, including the sender itself (protocol
  // symmetry: the sender is also a server).
  void broadcast(Message m);

  // Blocking receive for the bound process. Returns nullopt on stop.
  std::optional<Message> recv(std::stop_token st);

  // Non-blocking receive.
  std::optional<Message> try_recv();

  std::uint64_t messages_sent() const;
  int n() const { return options_.n; }

 private:
  struct Inbox {
    std::mutex mu;
    // _any so recv() can wait with a stop_token (no polling): a stop
    // request wakes the waiter exactly like a delivery does.
    std::condition_variable_any cv;
    std::deque<Message> queue;
    util::Rng rng{0};
  };

  Inbox& inbox_for(runtime::ProcessId pid);
  void deliver(Message m);

  Options options_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;  // index by pid
  std::atomic<std::uint64_t> sent_{0};
};

// Polls `count` — typically [&]{ return net.messages_sent(); }, or an
// aggregate across shards — until it is stable for `stable_polls`
// consecutive intervals, then returns the stable value. Client write
// operations return on n−f ACKs, so protocol traffic from the trailing f
// servers is still in flight when the call returns; benchmarks and tests
// that assert on message counts use this to drain that tail first.
// Multiple stable polls are required so a briefly descheduled server
// thread holding a still-cascading message doesn't end the wait early.
template <typename CountFn>
std::uint64_t drain_message_count(
    CountFn&& count, std::chrono::milliseconds poll = std::chrono::milliseconds(5),
    int stable_polls = 3) {
  std::uint64_t prev = count();
  for (int stable = 0; stable < stable_polls;) {
    std::this_thread::sleep_for(poll);
    const std::uint64_t cur = count();
    if (cur == prev) {
      ++stable;
    } else {
      stable = 0;
      prev = cur;
    }
  }
  return prev;
}

}  // namespace swsig::msgpass
