// Simulated asynchronous reliable network.
//
// Reliable, authenticated, point-to-point channels between n processes:
// messages between correct processes are eventually delivered, unordered
// delivery is modeled by thread scheduling (and an optional seeded
// reordering of each inbox). There is no synchrony assumption anywhere —
// receivers block until something arrives.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stop_token>
#include <thread>
#include <vector>

#include "msgpass/faults.hpp"
#include "msgpass/message.hpp"
#include "obs/event.hpp"
#include "runtime/process.hpp"
#include "util/rng.hpp"
#include "util/sharded_counter.hpp"

namespace swsig::msgpass {

class Network {
 public:
  struct Options {
    int n = 4;
    // If > 0, each delivery picks a random queued message instead of the
    // oldest, modeling out-of-order asynchrony (seeded => reproducible).
    std::uint64_t reorder_seed = 0;
  };

  explicit Network(Options options);

  // Sends m to m.to; the sender identity is stamped from the calling
  // thread's bound process (authenticated channels).
  void send(Message m);

  // Sends m to every process 1..n, including the sender itself (protocol
  // symmetry: the sender is also a server).
  void broadcast(Message m);

  // Blocking receive for the bound process. Returns nullopt on stop.
  std::optional<Message> recv(std::stop_token st);

  // Non-blocking receive.
  std::optional<Message> try_recv();

  // Attaches (or, with nullptr, detaches) a fault injector. The injector
  // must outlive its attachment; the first attach starts the delay pump
  // thread that re-delivers held-back messages when their hold expires.
  void set_fault_injector(FaultInjector* injector);

  // Crash model, sender side: while squelched, every send/broadcast from
  // pid is silently discarded at the network boundary — a crashed process
  // does not send. (The receive side is the dispatcher's job.) Messages
  // already in flight — inboxes, the delay pump — still deliver: they left
  // the sender before it died. Squelched sends are counted separately from
  // injector drops so fault accounting stays exact.
  void set_squelched(runtime::ProcessId pid, bool on);
  std::uint64_t messages_squelched() const;

  std::uint64_t messages_sent() const;
  // Fault accounting (0 unless an injector dropped/held something).
  std::uint64_t messages_dropped() const;
  std::uint64_t messages_delayed() const;
  // Messages currently sitting in inboxes or the delay pump — the
  // in-flight backlog. With pipelined writers a wedge can hide behind a
  // deep backlog rather than a silent network, so the soak forensics
  // report it alongside the send/drop totals. O(n) lock acquisitions;
  // diagnostics only, not for the hot path.
  std::uint64_t queued_messages() const;
  int n() const { return options_.n; }

  // Per-message-type counters ("net.send.WRITE", "net.recv.ECHO",
  // "net.drop.ACK", ...) in the global obs::MetricsRegistry, shared by
  // every Network in the process so sharded substrates aggregate for free.
  // Resolved once, here; the per-message cost is one sharded relaxed add.
  struct TypeCounters {
    util::ShardedCounter* send[static_cast<std::size_t>(obs::MsgTag::kCount)];
    util::ShardedCounter* recv[static_cast<std::size_t>(obs::MsgTag::kCount)];
    util::ShardedCounter* drop[static_cast<std::size_t>(obs::MsgTag::kCount)];
    TypeCounters();
    static TypeCounters& get();  // process-wide singleton
  };

 private:
  struct Inbox {
    std::mutex mu;
    // _any so recv() can wait with a stop_token (no polling): a stop
    // request wakes the waiter exactly like a delivery does.
    std::condition_variable_any cv;
    std::deque<Message> queue;
    util::Rng rng{0};
  };
  struct Delayed {
    std::chrono::steady_clock::time_point due;
    Message m;
  };

  Inbox& inbox_for(runtime::ProcessId pid);
  // note_send records the flight-recorder send event; broadcast() passes
  // false after recording one consolidated event for the whole fan-out.
  void deliver(Message m, bool note_send = true);
  void enqueue(Message m);  // final step: into the receiver's inbox
  void pump(std::stop_token st);

  // True while the pid may not send (crashed). Checked lock-free on every
  // send/broadcast.
  bool is_squelched(runtime::ProcessId pid) const;

  Options options_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;  // index by pid
  std::vector<std::unique_ptr<std::atomic<bool>>> squelched_;  // by pid
  std::atomic<std::uint64_t> squelched_count_{0};
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> delayed_total_{0};
  std::atomic<FaultInjector*> injector_{nullptr};
  // Held-back (delayed) messages, re-delivered by the pump thread.
  // (mutable: queued_messages() is logically const.)
  mutable std::mutex delay_mu_;
  std::condition_variable_any delay_cv_;
  std::vector<Delayed> delayed_;  // min-heap by due
  std::jthread pump_;             // started lazily by set_fault_injector
};

// Polls `count` — typically [&]{ return net.messages_sent(); }, or an
// aggregate across shards — until it is stable for `stable_polls`
// consecutive intervals, then returns the stable value. Client write
// operations return on n−f ACKs, so protocol traffic from the trailing f
// servers is still in flight when the call returns; benchmarks and tests
// that assert on message counts use this to drain that tail first.
// Multiple stable polls are required so a briefly descheduled server
// thread holding a still-cascading message doesn't end the wait early.
template <typename CountFn>
std::uint64_t drain_message_count(
    CountFn&& count, std::chrono::milliseconds poll = std::chrono::milliseconds(5),
    int stable_polls = 3) {
  std::uint64_t prev = count();
  for (int stable = 0; stable < stable_polls;) {
    std::this_thread::sleep_for(poll);
    const std::uint64_t cur = count();
    if (cur == prev) {
      ++stable;
    } else {
      stable = 0;
      prev = cur;
    }
  }
  return prev;
}

}  // namespace swsig::msgpass
