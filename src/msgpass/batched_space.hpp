// Batched + sharded emulation of atomic SWMR registers over Byzantine
// message passing — the "heavy traffic" substrate (design note 10 in
// docs/ARCHITECTURE.md).
//
// The per-write protocol in emulated_swmr.hpp costs one full
// ECHO/ACCEPT/ACK ladder per write: ~2n² + 2n messages each. Algorithms
// 1–3 issue many small register writes from the same owner (witness-set
// updates, helping-channel writes), so the substrate here amortizes the
// ladder over *rounds*:
//
//   * Each owner's pending writes — across ALL of its registers on a shard
//     — are drained into a round of at most `batch_max` ops. One round
//     carries a vector of (reg, sn, value) ops and runs ONE ladder:
//
//       BWRITE(round, ops)        broadcast by the owner (round leader)
//       on first BWRITE for (origin, round): intern the batch to a digest
//                                 id; broadcast BECHO(origin, round, digest)
//       on n−f  BECHO(o,r,d):     broadcast BACCEPT(o,r,d)     [once]
//       on f+1  BACCEPT(o,r,d):   broadcast BACCEPT(o,r,d)     [amplify]
//       on n−f  BACCEPT(o,r,d):   deliver — apply every op sn-monotonically
//                                 to its register; send BACK(r) to origin.
//       origin, on n−f BACK(r):   round complete — wake waiting writers,
//                                 lead the next round if ops are pending.
//
//     Messages per round: n + 2n² + n, i.e. per write the unbatched cost
//     divided by the achieved batch size.
//   * Registers are sharded round-robin across `shards` independent
//     Network instances (each with its own server threads), so writes to
//     independent registers on different shards never serialize through
//     one inbox queue or one protocol mutex.
//
// Safety is the same quorum argument as the unbatched protocol, lifted
// from values to batch digests: echo-once-per-(origin, round) means at
// most one digest gathers n−f echoes per round, the ACCEPT ladder is
// Bracha totality, and per-register sn-monotone apply makes out-of-order
// round delivery harmless. One invariant does NOT lift for free: the
// unbatched echo-once-per-sn rule also made values unique per register sn,
// and rounds are independent candidate keys — so servers additionally
// echo-support each (reg, sn) op at most once ACROSS rounds. The state
// machine enforcing all of this — tallies, replay guard, cross-round op
// claims — is detail::BrachaLadder<(origin, round)> (bracha_ladder.hpp),
// the SAME code the per-write substrate runs; this file keeps only the
// batching policy around it. Without the cross-round claim, a Byzantine
// owner could certify two values for the
// same register sn via two rounds, splitting correct servers' stored state
// and livelocking honest quorum reads. Batching only ever *groups* writes of a single
// owner; it never reorders them (rounds are led FIFO, one in flight per
// owner), so the register-level semantics are exactly those of
// EmulatedSwmr — tests/batched_msgpass_test.cpp checks trace equivalence
// against the unbatched space under a deterministic reorder seed.
#pragma once

#include <any>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "msgpass/detail/bracha_ladder.hpp"
#include "msgpass/message.hpp"
#include "msgpass/network.hpp"
#include "msgpass/server_pool.hpp"
#include "msgpass/swmr_core.hpp"
#include "registers/errors.hpp"
#include "runtime/process.hpp"

namespace swsig::msgpass {

namespace detail {

// Register-side hooks the shard protocol needs. One implementation per
// register type T (BatchedSwmr<T>); the shard itself stays untemplated.
struct BatchRegOps {
  virtual ~BatchRegOps() = default;
  virtual runtime::ProcessId reg_owner() const = 0;
  // Interns a raw payload value, returning a stable per-register value id.
  // Throws std::bad_any_cast on a malformed (Byzantine) payload.
  virtual int intern_any(const std::any& value) = 0;
  // Applies a delivered op to process `self`'s stored state, sn-monotone.
  virtual void apply(int self, std::uint64_t sn, int vid) = 0;
  // Serves per-register READ/STATE messages (same as the unbatched path).
  virtual void handle(const Message& m) = 0;
  // Crash/recovery hooks — same contract as detail::HandlerBase in
  // emulated_swmr.hpp (the shard wipes its own round tallies).
  virtual void crash_process(int pid) = 0;
  virtual void resync_process(int self) = 0;
};

}  // namespace detail

// One write op inside a round's batch.
struct BatchOp {
  int reg = 0;
  std::uint64_t sn = 0;
  std::any value;
};
using Batch = std::vector<BatchOp>;

// One shard: an independent Network plus the round protocol state for all
// n processes and the registers assigned to this shard.
class BatchShard {
 public:
  // Round-protocol messages are dispatched at shard level, not to a
  // register; they use this sentinel in Message::reg.
  static constexpr int kBatchProto = -1;

  // The candidate key of one ladder run is (origin, round); the cross-run
  // op-dedup key is (reg, sn) — structurally the same pair, semantically
  // distinct (see bracha_ladder.hpp for why both guards live in the one
  // ladder, shared with the per-write substrate).
  using RoundKey = std::pair<int, std::uint64_t>;
  using Ladder = detail::BrachaLadder<RoundKey, RoundKey>;

  BatchShard(int n, int f, std::uint64_t reorder_seed, int batch_max,
             RetryPolicy retry = {}, int pipeline_depth = 1)
      : n_(n),
        f_(f),
        batch_max_(batch_max),
        pipeline_depth_(std::max(pipeline_depth, 1)),
        retry_(retry),
        net_(Network::Options{n, reorder_seed}),
        state_(static_cast<std::size_t>(n) + 1, Ladder(n, f)),
        crashed_(static_cast<std::size_t>(n) + 1),
        writers_(static_cast<std::size_t>(n) + 1),
        pool_(net_, n, [this](int self, const Message& m) { handle(self, m); }) {
    for (auto& c : crashed_) c.store(false, std::memory_order_relaxed);
  }

  ~BatchShard() { stop(); }
  void stop() { pool_.stop(); }

  Network& network() { return net_; }

  // Crash model, shard side: while crashed, pid's server thread drops every
  // message (neither receives nor sends), and its in-progress round tallies
  // are wiped (BrachaLadder::crash). The ladder's echoed / claimed /
  // delivered dedup sets persist — stable storage, same rationale as
  // EmulatedSwmr::crash_process (without them a rejoined server could
  // echo-support an sn twice across rounds, reopening the equivocation
  // vector the sets exist to close). Register stored state is wiped by the
  // Space via BatchRegOps::crash_process.
  void crash(runtime::ProcessId pid) {
    crashed_[static_cast<std::size_t>(pid)].store(true,
                                                  std::memory_order_release);
    net_.set_squelched(pid, true);
    {
      std::scoped_lock lock(mu_);
      state_[static_cast<std::size_t>(pid)].crash();
    }
    // Suspend pid's client role too: a round it was leading loses its
    // driver, so waiting writer threads park (no retries) until restart.
    WriterState& ws = writers_[static_cast<std::size_t>(pid)];
    std::scoped_lock wlock(ws.mu);
    if (ws.in_flight) ws.interrupted = true;
    ws.cv.notify_all();
  }

  void restart(runtime::ProcessId pid) {
    crashed_[static_cast<std::size_t>(pid)].store(false,
                                                  std::memory_order_release);
    net_.set_squelched(pid, false);
  }

  // Client-role recovery after restart (thread bound as pid): re-lead the
  // round that was in flight when the owner crashed. Unlike the per-write
  // substrate there is no abort fence here — recovery is complete-only,
  // which is always safe: re-broadcasting a BWRITE is idempotent (echo-once
  // per (origin, round) + cross-round sn dedup make duplicates inert, and
  // delivered servers just re-BACK), so the round either already delivered
  // or will now.
  void recover(runtime::ProcessId pid) {
    WriterState& ws = writers_[static_cast<std::size_t>(pid)];
    std::unique_lock lock(ws.mu);
    ws.interrupted = false;
    ws.cv.notify_all();
    if (!retry_.enabled) return;
    if (ws.in_flight) {
      Batch copy = ws.inflight_batch;
      const std::uint64_t round = ws.inflight_round;
      lock.unlock();
      Message m;
      m.reg = kBatchProto;
      m.type = "BWRITE";
      m.sn = round;
      m.payload = std::move(copy);
      net_.broadcast(m);
    } else {
      maybe_lead(ws, lock);
    }
  }

  void add_register(int reg_id, detail::BatchRegOps* ops) {
    std::scoped_lock lock(mu_);
    registry_[reg_id] = ops;
  }

  // ------------------------------------------------------------- client

  // Enqueues one write op for `owner` and returns a completion ticket.
  // The calling thread must be bound as the owner (it may have to lead a
  // round, which broadcasts under its identity). Tickets complete in issue
  // order: rounds drain the pending queue FIFO, one round in flight per
  // owner.
  std::uint64_t submit(runtime::ProcessId owner, int reg_id, std::uint64_t sn,
                       std::any value) {
    WriterState& ws = writers_[static_cast<std::size_t>(owner)];
    std::unique_lock lock(ws.mu);
    const std::uint64_t ticket = ++ws.last_ticket;
    ws.pending.push_back(Pending{ticket, BatchOp{reg_id, sn, std::move(value)}});
    // Group-commit gate (design note 15): a depth-D pipelined client issues
    // up to D overlapping ops before blocking in await, so leading on the
    // first enqueue burns a whole quorum round on a 1-op batch and halves
    // the achievable amortization. Lead once the owner's outstanding window
    // is full; await() flushes partial windows immediately, so nothing
    // waits on a timer. Depth 1 (the default) leads on every submit — the
    // pre-pipeline behavior, message for message.
    if (static_cast<int>(ws.last_ticket - ws.completed_ticket) >=
        pipeline_depth_)
      maybe_lead(ws, lock);
    return ticket;
  }

  // Ops of `owner` currently unsettled on this shard (queued plus riding
  // the in-flight round) — the pipeline slot the register stamps on the
  // next submit's kWriteStart event, mirroring the unbatched substrate.
  int pending_depth(runtime::ProcessId owner) {
    WriterState& ws = writers_[static_cast<std::size_t>(owner)];
    std::scoped_lock lock(ws.mu);
    return static_cast<int>(ws.last_ticket - ws.completed_ticket);
  }

  // Blocks until `ticket` (from submit for the same owner) has completed,
  // i.e. its round gathered n−f BACKs. Retry layer (design note 14): each
  // lapsed backoff slice re-broadcasts the in-flight round's BWRITE — a
  // pure refresh of lost messages, idempotent at every server (echo-once
  // per (origin, round) re-issues the original digest vote, delivered
  // servers re-BACK) — or, if no round is in flight (the chain stalled
  // between rounds), leads the next one. The calling thread must be bound
  // as the owner.
  void await(runtime::ProcessId owner, std::uint64_t ticket) {
    WriterState& ws = writers_[static_cast<std::size_t>(owner)];
    std::unique_lock lock(ws.mu);
    const auto done = [&] { return ws.completed_ticket >= ticket; };
    const auto t0 = std::chrono::steady_clock::now();
    const auto op_deadline =
        retry_.op_timeout_ms > 0
            ? t0 + std::chrono::milliseconds(retry_.op_timeout_ms)
            : std::chrono::steady_clock::time_point::max();
    std::uint64_t backoff = std::max<std::uint64_t>(retry_.base_ms, 1);
    for (;;) {
      if (done()) return;
      // Flush a partial pipeline window: with the group-commit gate above,
      // ops short of the depth threshold sit queued until someone awaits
      // them — that someone is here, so lead before sleeping.
      if (!ws.in_flight && !ws.pending.empty()) {
        maybe_lead(ws, lock);
        continue;
      }
      if (!retry_.enabled) {
        if (retry_.op_timeout_ms > 0) {
          if (!ws.cv.wait_until(lock, op_deadline, done)) {
            lock.unlock();
            detail::record_phase(obs::EventKind::kOpTimeout, owner,
                                 kBatchProto, owner, ticket);
            detail::timeout_counter().add();
            throw registers::OpTimeout(
                "batched write ticket " + std::to_string(ticket) + " by p" +
                std::to_string(owner) + " timed out after " +
                std::to_string(retry_.op_timeout_ms) +
                " ms (outcome indeterminate)");
          }
        } else {
          ws.cv.wait(lock, done);
        }
        continue;
      }
      const auto until = std::min(std::chrono::steady_clock::now() +
                                      std::chrono::milliseconds(backoff),
                                  op_deadline);
      if (ws.cv.wait_until(lock, until, done)) return;
      if (std::chrono::steady_clock::now() >= op_deadline) {
        lock.unlock();
        detail::record_phase(obs::EventKind::kOpTimeout, owner, kBatchProto,
                             owner, ticket);
        detail::timeout_counter().add();
        throw registers::OpTimeout(
            "batched write ticket " + std::to_string(ticket) + " by p" +
            std::to_string(owner) + " timed out after " +
            std::to_string(retry_.op_timeout_ms) +
            " ms (outcome indeterminate)");
      }
      if (ws.interrupted) continue;  // owner down: recovery re-leads
      detail::record_phase(obs::EventKind::kOpRetry, owner, kBatchProto,
                           owner, ws.inflight_round, backoff);
      detail::retry_counter().add();
      if (ws.in_flight) {
        Batch copy = ws.inflight_batch;
        const std::uint64_t round = ws.inflight_round;
        lock.unlock();
        Message m;
        m.reg = kBatchProto;
        m.type = "BWRITE";
        m.sn = round;
        m.payload = std::move(copy);
        net_.broadcast(m);
        lock.lock();
      } else {
        maybe_lead(ws, lock);
      }
      backoff = std::min(backoff * 2, std::max(retry_.max_ms, retry_.base_ms));
    }
  }

 private:
  // Canonical (interned) batch: (reg, sn, value id) triples. Two raw
  // batches with equal triples are the same digest — the candidate key of
  // the round ladder.
  using CanonicalBatch = std::vector<std::tuple<int, std::uint64_t, int>>;

  struct Pending {
    std::uint64_t ticket = 0;
    BatchOp op;
  };

  // Per-owner round driver state. One round in flight at a time; the next
  // round is led either by a submitting client thread or by the owner's
  // server thread when the previous round's BACK quorum lands (both run
  // bound as the owner).
  struct WriterState {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Pending> pending;
    std::uint64_t last_ticket = 0;
    std::uint64_t completed_ticket = 0;
    std::uint64_t last_round = 0;
    bool in_flight = false;
    std::uint64_t inflight_round = 0;
    std::uint64_t inflight_last_ticket = 0;
    Batch inflight_batch;  // kept for retry / crash-recovery re-leads
    // Owner crashed with the round in flight: parks await()'s retry timer
    // until restart, when recover() re-leads the round.
    bool interrupted = false;
    std::set<int> backs;
  };

  // Caller holds ws.mu (passed as `lock`); releases it around the BWRITE
  // broadcast. Requires the calling thread bound as the owner.
  void maybe_lead(WriterState& ws, std::unique_lock<std::mutex>& lock) {
    if (ws.in_flight || ws.pending.empty()) return;
    const std::size_t take =
        std::min(ws.pending.size(), static_cast<std::size_t>(batch_max_));
    Batch batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) batch.push_back(ws.pending[i].op);
    ws.inflight_last_ticket = ws.pending[take - 1].ticket;
    ws.pending.erase(ws.pending.begin(),
                     ws.pending.begin() + static_cast<std::ptrdiff_t>(take));
    ws.in_flight = true;
    ws.inflight_round = ++ws.last_round;
    ws.inflight_batch = batch;  // retained for retry / recovery re-leads
    ws.backs.clear();
    const std::uint64_t round = ws.inflight_round;
    lock.unlock();
    detail::record_phase(obs::EventKind::kRoundLead,
                         runtime::ThisProcess::id(), kBatchProto,
                         runtime::ThisProcess::id(), round,
                         static_cast<std::uint64_t>(take));
    Message m;
    m.reg = kBatchProto;
    m.type = "BWRITE";
    m.sn = round;
    m.payload = std::move(batch);
    net_.broadcast(m);
    lock.lock();
  }

  // ------------------------------------------------------------- server

  void handle(int self, const Message& m) {
    if (crashed_[static_cast<std::size_t>(self)].load(
            std::memory_order_acquire))
      return;  // crashed process: neither receives nor reacts
    if (m.reg == kBatchProto) {
      try {
        if (m.type == "BWRITE") {
          on_bwrite(self, m);
        } else if (m.type == "BECHO") {
          on_vote(self, m, /*is_echo=*/true);
        } else if (m.type == "BACCEPT") {
          on_vote(self, m, /*is_echo=*/false);
        } else if (m.type == "BACK") {
          on_back(self, m);
        }
      } catch (const std::bad_any_cast&) {
        // Malformed payload from a Byzantine sender: dropped.
      }
      return;
    }
    detail::BatchRegOps* reg = nullptr;
    {
      std::scoped_lock lock(mu_);
      const auto it = registry_.find(m.reg);
      if (it != registry_.end()) reg = it->second;
    }
    if (!reg) return;
    try {
      reg->handle(m);
    } catch (const std::bad_any_cast&) {
    }
  }

  // Interns a raw batch under mu_ for server ladder `lad`. Returns the
  // digest id, or -1 when the batch is malformed: empty, oversized, an
  // unknown register, an op for a register the origin does not own (a
  // Byzantine process smuggling writes into someone else's round), a
  // (reg, sn) this server already echo-supported — within this batch or in
  // any earlier round (cross-round sn reuse, the equivocation vector rounds
  // reopen; BrachaLadder::op_claimed). Honest owners never reuse a register
  // sn (allocate_sn_locked is strictly increasing), so only a Byzantine
  // origin's batches ever trip the claim check; refusing them keeps values
  // unique per (reg, sn): at most one value can gather n−f echoes. Lookup
  // is O(log R) via digest_index_ — the digest table itself is the
  // content-addressed log of all rounds and is the only state that grows
  // with history (in a real system it is simply the message payloads).
  int intern_batch(Ladder& lad, int origin, const Batch& raw) {
    if (raw.empty() || static_cast<int>(raw.size()) > batch_max_) return -1;
    CanonicalBatch canon;
    canon.reserve(raw.size());
    std::set<RoundKey> batch_ops;
    for (const BatchOp& op : raw) {
      const auto it = registry_.find(op.reg);
      if (it == registry_.end()) return -1;
      if (it->second->reg_owner() != origin) return -1;
      const RoundKey key{op.reg, op.sn};
      if (!batch_ops.insert(key).second) return -1;  // sn reused in batch
      if (lad.op_claimed(key)) return -1;  // sn reused across rounds
      int vid;
      try {
        vid = it->second->intern_any(op.value);
      } catch (const std::bad_any_cast&) {
        return -1;
      }
      canon.emplace_back(op.reg, op.sn, vid);
    }
    // The whole batch is valid: this server now echo-supports each of its
    // ops, exactly once, forever.
    for (const RoundKey& key : batch_ops) lad.claim_op(key);
    const auto [it, inserted] = digest_index_.try_emplace(
        canon, static_cast<int>(digests_.size()));
    if (inserted) digests_.push_back(std::move(canon));
    return it->second;
  }

  void on_bwrite(int self, const Message& m) {
    const int origin = m.from;  // authenticated by the network
    Ladder::WriteStep step;
    {
      std::scoped_lock lock(mu_);
      Ladder& lad = state_[static_cast<std::size_t>(self)];
      // Recovery on this substrate is complete-only (see recover()), so no
      // round is ever abort-fenced: complete stays false.
      step = lad.on_write(RoundKey{origin, m.sn}, /*complete=*/false, [&] {
        return intern_batch(lad, origin,
                            std::any_cast<const Batch&>(m.payload));
      });
    }
    switch (step.action) {
      case Ladder::WriteAction::kReAck: {
        // Retried round already delivered here: the only effect left is
        // refreshing the (possibly lost) BACK. Origins dedup by sender.
        Message back;
        back.reg = kBatchProto;
        back.type = "BACK";
        back.sn = m.sn;
        back.to = origin;
        net_.send(back);
        return;
      }
      case Ladder::WriteAction::kFenced:   // unreachable: never fenced
      case Ladder::WriteAction::kRefused:  // malformed: stays refused
        return;
      case Ladder::WriteAction::kEcho:
        break;  // first == false: echo once, re-issue of the original vote
    }
    if (step.first)
      detail::record_phase(obs::EventKind::kPhaseEcho, self, kBatchProto,
                           origin, m.sn,
                           static_cast<std::uint64_t>(step.value_id));
    vote("BECHO", origin, m.sn, step.value_id);
  }

  void on_vote(int self, const Message& m, bool is_echo) {
    const auto& [origin, digest] =
        std::any_cast<const std::pair<int, int>&>(m.payload);
    if (origin < 1 || origin > n_) return;  // forged origin
    Ladder::VoteStep step;
    {
      std::scoped_lock lock(mu_);
      // A digest id outside the interned table can only come from a
      // Byzantine sender (correct processes vote for digests they interned).
      if (digest < 0 || digest >= static_cast<int>(digests_.size())) return;
      step = state_[static_cast<std::size_t>(self)].on_vote(
          RoundKey{origin, m.sn}, digest, m.from, is_echo);
      if (step.deliver) {
        for (const auto& [reg_id, sn, vid] :
             digests_[static_cast<std::size_t>(digest)]) {
          const auto it = registry_.find(reg_id);
          if (it != registry_.end()) it->second->apply(self, sn, vid);
          // Per-op deliver event under the op's own (reg, origin, sn) key so
          // register-level ladder correlation spans both substrates.
          detail::record_phase(obs::EventKind::kPhaseDeliver, self, reg_id,
                               origin, sn, static_cast<std::uint64_t>(vid));
        }
      }
    }
    if (step.send_accept) {
      detail::record_phase(step.amplified ? obs::EventKind::kPhaseAmplify
                                          : obs::EventKind::kPhaseAccept,
                           self, kBatchProto, origin, m.sn,
                           static_cast<std::uint64_t>(digest));
      vote("BACCEPT", origin, m.sn, digest);
    }
    if (step.deliver) {
      detail::record_phase(obs::EventKind::kPhaseAck, self, kBatchProto,
                           origin, m.sn);
      Message back;
      back.reg = kBatchProto;
      back.type = "BACK";
      back.sn = m.sn;
      back.to = origin;
      net_.send(back);
    }
  }

  void on_back(int self, const Message& m) {
    WriterState& ws = writers_[static_cast<std::size_t>(self)];
    std::unique_lock lock(ws.mu);
    if (!ws.in_flight || m.sn != ws.inflight_round) return;  // stale/forged
    ws.backs.insert(m.from);
    if (static_cast<int>(ws.backs.size()) < n_ - f_) return;
    detail::record_phase(obs::EventKind::kRoundComplete, self, kBatchProto,
                         self, ws.inflight_round,
                         static_cast<std::uint64_t>(ws.backs.size()));
    ws.completed_ticket = ws.inflight_last_ticket;
    ws.in_flight = false;
    ws.cv.notify_all();
    // The owner's server thread (bound as the owner) chains the next round
    // so asynchronous submitters never stall.
    maybe_lead(ws, lock);
  }

  void vote(const char* type, int origin, std::uint64_t round, int digest) {
    Message m;
    m.reg = kBatchProto;
    m.type = type;
    m.sn = round;
    m.payload = std::pair<int, int>(origin, digest);
    net_.broadcast(m);
  }

  const int n_;
  const int f_;
  const int batch_max_;
  const int pipeline_depth_;  // submit's group-commit threshold (>= 1)
  const RetryPolicy retry_;
  Network net_;
  std::mutex mu_;  // protocol state: registry_, state_, digests_
  std::map<int, detail::BatchRegOps*> registry_;
  std::vector<Ladder> state_;            // per-process protocol ladder
  std::vector<std::atomic<bool>> crashed_;  // index by pid
  std::vector<CanonicalBatch> digests_;  // interned batches, id = index
  std::map<CanonicalBatch, int> digest_index_;  // canon -> id, O(log R)
  std::vector<WriterState> writers_;     // per owner (own mutex each)
  detail::ServerPool pool_;  // last member: threads stop before state dies
};

// One emulated SWMR register on a shard. Client semantics match
// EmulatedSwmr (write blocks for the quorum, owner RMW is atomic, reads
// quorum over STATE replies — all shared via detail::SwmrCore);
// write_async/await additionally expose the batch seam so an owner can
// pipeline several writes into one round.
template <typename T>
class BatchedSwmr : public detail::BatchRegOps, public detail::SwmrCore<T> {
  using Core = detail::SwmrCore<T>;

 public:
  BatchedSwmr(BatchShard& shard, int reg_id, int n, int f,
              runtime::ProcessId owner, T initial, std::string name,
              runtime::ProcessId sole_reader = runtime::kNoProcess,
              RetryPolicy retry = {})
      : Core(reg_id, n, f, owner, std::move(initial), std::move(name),
             sole_reader, retry),
        shard_(&shard) {}

  // ------------------------------------------------------------- client

  // Blocking write: completes once the op's round gathered n−f BACKs.
  // Same writer-mutex discipline as EmulatedSwmr::write.
  void write(T v) {
    static obs::LogHistogram& round_hist =
        obs::MetricsRegistry::global().histogram("msgpass.batched_write_us");
    this->require_owner("write");
    std::scoped_lock wl(this->writer_mu_);
    const auto t0 = std::chrono::steady_clock::now();
    await_locked(submit_locked(std::move(v)));
    round_hist.add(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  }

  // Asynchronous write: enqueues the op and returns a ticket. Pending ops
  // of the same owner ride one round together (up to batch_max); await()
  // blocks on the ticket. owner_view_ already reflects the write.
  std::uint64_t write_async(T v) {
    this->require_owner("write_async");
    std::scoped_lock wl(this->writer_mu_);
    return submit_locked(std::move(v));
  }

  void await(std::uint64_t ticket) {
    this->require_owner("await");
    await_locked(ticket);
  }

  // Owner read-modify-write, atomic against the owner's other writing
  // thread — the shared SwmrCore::update_with discipline, committed
  // through this substrate's round protocol.
  template <typename F>
  T update(F&& fn) {
    this->require_owner("update");
    return this->update_with(std::forward<F>(fn), [this](T v) {
      await_locked(submit_locked(std::move(v)));
    });
  }

  // Read by any process (or the sole reader, for SWSR use): broadcast READ,
  // quorum over STATE replies — identical to the unbatched protocol.
  T read() { return this->read_via(shard_->network()); }

  // ------------------------------------------ shard-facing (BatchRegOps)

  runtime::ProcessId reg_owner() const override { return this->owner_; }

  int intern_any(const std::any& value) override {
    const T& v = std::any_cast<const T&>(value);  // may throw: shard drops
    std::scoped_lock lock(this->mu_);
    return this->intern_locked(v);
  }

  void apply(int self, std::uint64_t sn, int vid) override {
    std::scoped_lock lock(this->mu_);
    if (vid < 0 || vid >= static_cast<int>(this->values_.size())) return;
    this->apply_locked(self, sn, vid);
  }

  void handle(const Message& m) override {
    const int self = runtime::ThisProcess::id();
    if (m.type == "READ") {
      this->serve_read(shard_->network(), self, m);
    } else if (m.type == "STATE") {
      this->accept_state(m);
    }
  }

  void crash_process(int pid) override {
    std::scoped_lock lock(this->mu_);
    this->reset_stored_locked(pid);
    // Round tallies live in the shard; it wipes them in BatchShard::crash.
  }

  void resync_process(int self) override {
    this->resync_via(shard_->network(), self);
  }

 private:
  // Allocates the sn, updates owner_view_ sn-monotonically, and hands the
  // op to the shard. Caller holds writer_mu_.
  std::uint64_t submit_locked(T v) {
    const std::uint64_t sn = this->allocate_sn_locked(v);
    detail::record_phase(
        obs::EventKind::kWriteStart, this->owner_, this->reg_id_,
        this->owner_, sn,
        static_cast<std::uint64_t>(shard_->pending_depth(this->owner_)));
    std::any payload(std::move(v));
    return shard_->submit(this->owner_, this->reg_id_, sn, std::move(payload));
  }

  // Blocks on the shard until `ticket`'s round completed.
  void await_locked(std::uint64_t ticket) {
    shard_->await(this->owner_, ticket);
  }

  BatchShard* shard_;
};

// SWSR flavor: same protocol, read restricted to one process.
template <typename T>
class BatchedSwsr : public BatchedSwmr<T> {
 public:
  using BatchedSwmr<T>::BatchedSwmr;
};

// Factory: shards + registers. API-compatible with registers::Space and
// msgpass::EmulatedSpace for everything the core algorithms use, so
// Algorithms 1–3 run unchanged on the batched substrate.
class BatchedEmulatedSpace {
 public:
  template <typename T>
  using SwmrFor = BatchedSwmr<T>;
  template <typename T>
  using SwsrFor = BatchedSwsr<T>;

  struct Options {
    int n = 4;
    int f = 1;
    std::uint64_t reorder_seed = 0;
    int shards = 1;     // independent networks; registers round-robin
    int batch_max = 8;  // max ops per broadcast round
    // Run the quorum resync when a crashed process restarts (see
    // EmulatedSpace::Options::recover_on_restart).
    bool recover_on_restart = true;
    // Client-op retry/deadline policy, applied to every shard and register
    // (design note 14).
    RetryPolicy retry{};
    // Expected async write pipeline depth per owner (design note 15).
    // submit() defers leading a round until this many ops are outstanding
    // (await flushes partial windows), so a depth-D burst rides one round
    // instead of splintering into 1-op rounds. 1 = lead on every submit.
    int pipeline_depth = 1;
  };

  explicit BatchedEmulatedSpace(Options options) : options_(options) {
    if (options_.shards < 1) options_.shards = 1;
    if (options_.batch_max < 1) options_.batch_max = 1;
    for (int s = 0; s < options_.shards; ++s) {
      // Distinct per-shard reorder streams, still fully seed-determined.
      const std::uint64_t seed =
          options_.reorder_seed == 0
              ? 0
              : options_.reorder_seed + 7919u * static_cast<std::uint64_t>(s);
      shards_.push_back(std::make_unique<BatchShard>(
          options_.n, options_.f, seed, options_.batch_max, options_.retry,
          options_.pipeline_depth));
    }
  }

  ~BatchedEmulatedSpace() { stop(); }

  void stop() {
    for (auto& s : shards_) s->stop();
  }

  template <typename T>
  BatchedSwmr<T>& make_swmr(runtime::ProcessId owner, T initial,
                            std::string name) {
    return make_reg<T>(owner, runtime::kNoProcess, std::move(initial),
                       std::move(name));
  }

  template <typename T>
  BatchedSwsr<T>& make_swsr(runtime::ProcessId owner,
                            runtime::ProcessId reader, T initial,
                            std::string name) {
    return static_cast<BatchedSwsr<T>&>(
        make_reg<T>(owner, reader, std::move(initial), std::move(name)));
  }

  int shard_count() const { return static_cast<int>(shards_.size()); }
  BatchShard& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }

  // Crash / restart / resync across all shards — same contract and driver
  // preconditions as EmulatedSpace (crash only quiesced pids, ≤ f down).
  void crash(runtime::ProcessId pid) {
    detail::record_phase(obs::EventKind::kCrash, pid, -1, pid, 0);
    for (auto& s : shards_) s->crash(pid);
    for (auto* reg : reg_ops()) reg->crash_process(pid);
  }

  void restart(runtime::ProcessId pid) {
    detail::record_phase(obs::EventKind::kRestart, pid, -1, pid, 0);
    for (auto& s : shards_) s->restart(pid);
    if (options_.recover_on_restart) resync(pid);
    // Client-role recovery: re-lead any round pid was driving when it
    // crashed (complete-only — see BatchShard::recover).
    runtime::ThisProcess::Binder bind(pid);
    for (auto& s : shards_) s->recover(pid);
  }

  void resync(runtime::ProcessId pid) {
    detail::record_phase(obs::EventKind::kResync, pid, -1, pid, 0);
    runtime::ThisProcess::Binder bind(pid);
    for (auto* reg : reg_ops()) reg->resync_process(pid);
  }

  // Aggregate across shards (each shard has its own Network).
  std::uint64_t messages_sent() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->network().messages_sent();
    return total;
  }

  const Options& options() const { return options_; }

 private:
  template <typename T>
  BatchedSwmr<T>& make_reg(runtime::ProcessId owner,
                           runtime::ProcessId reader, T initial,
                           std::string name) {
    // writers_/state_ are indexed by pid 0..n; an out-of-range owner would
    // be undefined behavior at the first submit, not a clean error.
    if (owner < 1 || owner > options_.n)
      throw std::invalid_argument("BatchedEmulatedSpace register '" + name +
                                  "': owner p" + std::to_string(owner) +
                                  " outside 1.." + std::to_string(options_.n));
    std::scoped_lock lock(mu_);
    const int id = next_reg_++;
    BatchShard& shard = *shards_[static_cast<std::size_t>(
        id % static_cast<int>(shards_.size()))];
    std::unique_ptr<BatchedSwmr<T>> reg;
    if (reader == runtime::kNoProcess) {
      reg = std::make_unique<BatchedSwmr<T>>(
          shard, id, options_.n, options_.f, owner, std::move(initial),
          std::move(name), runtime::kNoProcess, options_.retry);
    } else {
      reg = std::make_unique<BatchedSwsr<T>>(
          shard, id, options_.n, options_.f, owner, std::move(initial),
          std::move(name), reader, options_.retry);
    }
    auto& ref = *reg;
    shard.add_register(id, reg.get());
    registry_.push_back(std::move(reg));
    return ref;
  }

  std::vector<detail::BatchRegOps*> reg_ops() {
    std::scoped_lock lock(mu_);
    std::vector<detail::BatchRegOps*> out;
    out.reserve(registry_.size());
    for (auto& reg : registry_) out.push_back(reg.get());
    return out;
  }

  Options options_;
  std::mutex mu_;
  int next_reg_ = 0;
  std::vector<std::unique_ptr<detail::BatchRegOps>> registry_;
  std::vector<std::unique_ptr<BatchShard>> shards_;
};

}  // namespace swsig::msgpass
