// Shared register core for the message-passing SWMR emulations.
//
// EmulatedSwmr (per-write ladder) and BatchedSwmr (per-round ladder) differ
// only in how a write reaches the servers; everything else — the owner's
// writer-mutex discipline and sn-monotone local view, value interning, the
// per-process stored (sn, value) state, and the READ/STATE quorum read —
// is identical and lives here so a protocol fix lands in both substrates
// at once (the same reason detail::ServerPool owns the server loops).
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "msgpass/network.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "registers/errors.hpp"
#include "runtime/process.hpp"
#include "util/sharded_counter.hpp"

namespace swsig::msgpass {

// Client-operation deadline/retry policy, shared by both substrates. A
// blocked quorum wait re-issues its request after a bounded-exponential
// backoff slice — safe because every re-issue is idempotent at the servers
// (sn-keyed dedup: a retried WRITE/READ/BWRITE can refresh lost messages
// but never re-certify or split a quorum; design note 14). op_timeout_ms
// bounds the whole operation: 0 means retry forever (the soak default —
// fault windows heal, so liveness comes from the schedule, and an
// acknowledged-write guarantee must never be traded for a deadline).
struct RetryPolicy {
  bool enabled = true;
  std::uint64_t base_ms = 40;      // first backoff slice
  std::uint64_t max_ms = 640;      // backoff cap
  std::uint64_t op_timeout_ms = 0;  // overall deadline; 0 = none
};

namespace detail {

// One flight-recorder event for a ladder/read phase of register `reg`,
// keyed (reg, origin, sn) for trace correlation (obs/export.hpp).
inline void record_phase(obs::EventKind kind, int pid, int reg, int origin,
                         std::uint64_t sn, std::uint64_t aux = 0) {
  obs::Event e;
  e.kind = kind;
  e.pid = static_cast<std::int16_t>(pid);
  e.reg = reg;
  e.origin = origin;
  e.sn = sn;
  e.aux = aux;
  obs::record(e);
}

// Process-wide retry/abort telemetry (obs::MetricsRegistry), resolved once.
inline util::ShardedCounter& retry_counter() {
  static util::ShardedCounter& c =
      obs::MetricsRegistry::global().counter("msgpass.op_retry");
  return c;
}
inline util::ShardedCounter& timeout_counter() {
  static util::ShardedCounter& c =
      obs::MetricsRegistry::global().counter("msgpass.op_timeout");
  return c;
}
inline util::ShardedCounter& abort_counter() {
  static util::ShardedCounter& c =
      obs::MetricsRegistry::global().counter("msgpass.write_abort");
  return c;
}
inline util::ShardedCounter& coalesce_counter() {
  static util::ShardedCounter& c =
      obs::MetricsRegistry::global().counter("msgpass.read_coalesced");
  return c;
}

template <typename T>
class SwmrCore {
 public:
  const std::string& name() const { return name_; }
  runtime::ProcessId owner() const { return owner_; }

  // Inspection hook for crash/recovery tests and the soak harness: process
  // pid's stored (sn, value) pair.
  std::pair<std::uint64_t, T> stored_state(int pid) const {
    std::scoped_lock lock(mu_);
    const StoredState& st = state_.at(static_cast<std::size_t>(pid));
    return {st.stored_sn, st.stored_val};
  }

 protected:
  SwmrCore(int reg_id, int n, int f, runtime::ProcessId owner, T initial,
           std::string name, runtime::ProcessId sole_reader,
           RetryPolicy retry = {})
      : reg_id_(reg_id),
        n_(n),
        f_(f),
        owner_(owner),
        sole_reader_(sole_reader),
        name_(std::move(name)),
        initial_(initial),
        retry_(retry),
        owner_view_(initial) {
    state_.resize(static_cast<std::size_t>(n_) + 1);
    for (int pid = 0; pid <= n_; ++pid) {
      state_[static_cast<std::size_t>(pid)].stored_sn = 0;
      state_[static_cast<std::size_t>(pid)].stored_val = initial;
    }
  }

  struct StoredState {
    std::uint64_t stored_sn = 0;
    T stored_val{};
  };
  struct ReadWait {
    std::set<int> senders;
    // (sn, value_id) -> supporting processes
    std::map<std::pair<std::uint64_t, int>, std::set<int>> support;
  };
  // Per-(register, reader-pid) coalescing state for batched READ quorum
  // rounds (design note 15): overlapping reads by the same process share
  // quorum rounds instead of each broadcasting their own.
  struct ReadRound {
    std::uint64_t round = 0;       // generations led so far
    bool in_flight = false;        // some thread is leading a round now
    std::uint64_t done_round = 0;  // highest generation published
    std::uint64_t done_sn = 0;     // its result pair
    int done_vid = -1;
  };

  void require_owner(const char* op) const {
    if (runtime::ThisProcess::id() != owner_)
      throw registers::PortViolation(std::string(op) + " on emulated '" +
                                     name_ + "' by non-owner p" +
                                     std::to_string(runtime::ThisProcess::id()));
  }

  // Interns a value under mu_ (caller holds it), returning a stable id
  // (values are only ever compared for equality; ids keep the protocol
  // maps cheap and hashable-free).
  int intern_locked(const T& v) {
    for (std::size_t i = 0; i < values_.size(); ++i)
      if (values_[i] == v) return static_cast<int>(i);
    values_.push_back(v);
    return static_cast<int>(values_.size()) - 1;
  }

  // Allocates the next write sn and updates owner_view_ sn-monotonically,
  // so an owner-local RMW never observes an older value after a higher sn
  // was handed to the write path. Caller holds writer_mu_.
  std::uint64_t allocate_sn_locked(const T& v) {
    std::scoped_lock lock(mu_);
    const std::uint64_t sn = ++write_sn_;
    if (sn >= owner_view_sn_) {
      owner_view_ = v;
      owner_view_sn_ = sn;
    }
    return sn;
  }

  // Owner read-modify-write, shared by both substrates (they differ only in
  // how the new value reaches the servers — the `commit` step). Holds
  // writer_mu_ across the whole read-compute-commit: without it, two owner
  // threads both read the same owner_view_, each apply their fn, and the
  // second commit erases the first's modification (lost update). `commit`
  // runs with writer_mu_ held and must block until the write is durable.
  template <typename F, typename Commit>
  T update_with(F&& fn, Commit&& commit) {
    std::scoped_lock wl(writer_mu_);
    T next;
    bool changed;
    {
      std::scoped_lock lock(mu_);
      next = owner_view_;
      fn(next);
      changed = !(next == owner_view_);
    }
    if (changed) commit(next);
    return next;
  }

  // Read by any process (or the sole reader, for SWSR use): broadcast READ
  // on `net`, return the value of the highest (sn, value) pair reported
  // identically by n−f distinct processes; retry until stores converge.
  //
  // The owner takes the same quorum path as everyone else. Any owner-local
  // shortcut is unsound in one direction or the other: serving the pending
  // owner_view_ surfaces a value before remote readers can see it (old-new
  // inversion against a later remote read), while serving the last
  // ACK-quorum-committed value LAGS remote visibility — a remote read can
  // assemble its n−f identical STATEs and respond before the owner's ACK
  // wait finishes, so a later owner-local read of the committed view
  // returns the older value (new-old inversion; caught fault-free by the
  // soak's windowed checker and the owner-read race regression test).
  // Linearizability of the quorum path itself is self-certifying: n−f
  // identical replies pin every later read at that sn or higher.
  T read_via(Network& net) {
    const runtime::ProcessId self = runtime::ThisProcess::id();
    if (sole_reader_ != runtime::kNoProcess && self != sole_reader_ &&
        self != owner_) {
      throw registers::PortViolation("read of emulated SWSR '" + name_ +
                                     "' by p" + std::to_string(self));
    }
    const auto [sn, vid] = coalesced_quorum_pair(net, self);
    (void)sn;
    std::scoped_lock lock(mu_);
    return values_.at(static_cast<std::size_t>(vid));
  }

  // Batched READ quorum rounds (design note 15): k reads of this register
  // by the same process that overlap in time share quorum rounds instead of
  // broadcasting k of them. At most one round per (register, reader) is in
  // flight: the thread that finds none becomes the leader and runs the
  // plain n−f quorum; the others pick a target GENERATION — strictly after
  // their arrival — and adopt the result of the first generation >= it.
  //
  // Linearizability is inherited, not re-argued: the adopted result came
  // from a full n−f quorum round whose READ broadcast happened after the
  // adopting read was invoked (the generation counter is advanced under mu_
  // only after the target was fixed) and whose result landed before it
  // returns — so the quorum round's linearization point lies inside the
  // adopting read's own interval. Waiters never return a round led before
  // they arrived; the generation arithmetic is what rules that out.
  //
  // If a leader throws (op deadline), it releases leadership and wakes the
  // waiters; one of them leads a fresh generation — still >= every parked
  // target, so one successful round releases everyone.
  std::pair<std::uint64_t, int> coalesced_quorum_pair(Network& net, int self) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto op_deadline =
        retry_.op_timeout_ms > 0
            ? t0 + std::chrono::milliseconds(retry_.op_timeout_ms)
            : std::chrono::steady_clock::time_point::max();
    std::unique_lock lock(mu_);
    ReadRound& rr = read_rounds_[self];  // node-stable reference
    std::uint64_t target = 0;            // 0 = not parked yet
    for (;;) {
      if (target != 0 && rr.done_round >= target) {
        const std::uint64_t adopted = rr.done_round;
        const std::pair<std::uint64_t, int> res{rr.done_sn, rr.done_vid};
        lock.unlock();
        coalesce_counter().add();
        record_phase(obs::EventKind::kReadCoalesced, self, reg_id_, owner_,
                     adopted, res.first);
        return res;
      }
      if (!rr.in_flight) {
        rr.in_flight = true;
        const std::uint64_t gen = ++rr.round;
        lock.unlock();
        std::pair<std::uint64_t, int> res;
        try {
          res = quorum_pair_via(net, n_ - f_);
        } catch (...) {
          std::scoped_lock relock(mu_);
          rr.in_flight = false;  // hand leadership to a parked waiter
          cv_.notify_all();
          throw;
        }
        lock.lock();
        rr.done_round = std::max(rr.done_round, gen);
        rr.done_sn = res.first;
        rr.done_vid = res.second;
        rr.in_flight = false;
        cv_.notify_all();
        lock.unlock();
        return res;
      }
      if (target == 0) target = rr.round + 1;
      const auto parked = [&] {
        return rr.done_round >= target || !rr.in_flight;
      };
      if (retry_.op_timeout_ms > 0) {
        if (!cv_.wait_until(lock, op_deadline, parked)) {
          lock.unlock();
          record_phase(obs::EventKind::kOpTimeout, self, reg_id_, owner_,
                       target);
          timeout_counter().add();
          throw registers::OpTimeout(
              "read of '" + name_ + "' by p" + std::to_string(self) +
              " timed out after " + std::to_string(retry_.op_timeout_ms) +
              " ms");
        }
      } else {
        cv_.wait(lock, parked);
      }
    }
  }

  // The quorum loop shared by reads and recovery: broadcast READ, return
  // the highest (sn, value-id) pair vouched identically by >= `support`
  // distinct repliers, retrying with fresh rids until one emerges. Reads
  // use support = n−f (self-certifying, design note 6); recovery uses
  // support = f+1 — enough to pin at least one correct voucher, i.e. a
  // certificate the Bracha ladder really delivered.
  //
  // Retry layer (design note 14): a reply quorum that fails to assemble
  // within the current backoff slice — replies lost to drops, partitions,
  // or a crashed server — re-broadcasts with a FRESH rid (reads have no
  // server-side effects; stale STATE replies to the abandoned rid are
  // ignored by accept_state). retry_.op_timeout_ms, if set, bounds the
  // whole operation with registers::OpTimeout.
  std::pair<std::uint64_t, int> quorum_pair_via(Network& net, int support) {
    static obs::LogHistogram& quorum_hist =
        obs::MetricsRegistry::global().histogram("msgpass.read_quorum_us");
    const int self = runtime::ThisProcess::id();
    const auto t0 = std::chrono::steady_clock::now();
    const auto op_deadline =
        retry_.op_timeout_ms > 0
            ? t0 + std::chrono::milliseconds(retry_.op_timeout_ms)
            : std::chrono::steady_clock::time_point::max();
    std::uint64_t backoff = std::max<std::uint64_t>(retry_.base_ms, 1);
    for (;;) {
      std::uint64_t rid;
      {
        std::scoped_lock lock(mu_);
        rid = ++read_rid_;
        reads_[rid];  // create wait slot
      }
      record_phase(obs::EventKind::kReadStart, self, reg_id_, owner_, rid,
                   static_cast<std::uint64_t>(support));
      Message m;
      m.reg = reg_id_;
      m.type = "READ";
      m.sn = rid;
      net.broadcast(m);
      record_phase(obs::EventKind::kQuorumWait, self, reg_id_, owner_, rid,
                   static_cast<std::uint64_t>(n_ - f_));
      std::unique_lock lock(mu_);
      const auto reply_quorum = [&] {
        return static_cast<int>(reads_[rid].senders.size()) >= n_ - f_;
      };
      bool replied = true;
      if (!retry_.enabled) {
        if (retry_.op_timeout_ms > 0)
          replied = cv_.wait_until(lock, op_deadline, reply_quorum);
        else
          cv_.wait(lock, reply_quorum);
      } else {
        const auto until = std::min(
            std::chrono::steady_clock::now() +
                std::chrono::milliseconds(backoff),
            op_deadline);
        replied = cv_.wait_until(lock, until, reply_quorum);
      }
      if (replied) {
        // Highest pair reported identically by >= support distinct
        // processes.
        std::uint64_t best_sn = 0;
        int best_vid = -1;
        for (const auto& [key, vouchers] : reads_[rid].support) {
          if (static_cast<int>(vouchers.size()) >= support &&
              (best_vid < 0 || key.first > best_sn)) {
            best_sn = key.first;
            best_vid = key.second;
          }
        }
        reads_.erase(rid);
        if (best_vid >= 0) {
          lock.unlock();
          quorum_hist.add(
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
          record_phase(obs::EventKind::kReadDone, self, reg_id_, owner_, rid,
                       best_sn);
          return {best_sn, best_vid};
        }
        // No sufficiently-supported pair among these replies (stores still
        // converging): retry with a fresh request, no backoff — replies ARE
        // arriving, the stores just have not converged yet.
        lock.unlock();
        record_phase(obs::EventKind::kReadRetry, self, reg_id_, owner_, rid);
        std::this_thread::yield();
        continue;
      }
      // Backoff slice lapsed short of a reply quorum: replies were lost.
      reads_.erase(rid);
      lock.unlock();
      if (std::chrono::steady_clock::now() >= op_deadline) {
        record_phase(obs::EventKind::kOpTimeout, self, reg_id_, owner_, rid);
        timeout_counter().add();
        throw registers::OpTimeout(
            "read of '" + name_ + "' by p" + std::to_string(self) +
            " timed out after " + std::to_string(retry_.op_timeout_ms) +
            " ms");
      }
      record_phase(obs::EventKind::kOpRetry, self, reg_id_, owner_, rid,
                   backoff);
      retry_counter().add();
      backoff = std::min(backoff * 2, std::max(retry_.max_ms, retry_.base_ms));
    }
  }

  // ---------------------------------------------------- crash / recovery

  // Wipes process pid's server-side stored pair back to (0, initial) — the
  // volatile state lost in a crash. The subclass wipes its own ladder
  // tallies; echo/delivery dedup sets persist (modeled as a stable-storage
  // write-ahead bit, exactly what keeps a rejoined server from
  // re-supporting an equivocation it already refused). Caller holds mu_.
  void reset_stored_locked(int pid) {
    StoredState& st = state_[static_cast<std::size_t>(pid)];
    st.stored_sn = 0;
    st.stored_val = initial_;
  }

  // The recovery subsystem: a rejoining server (calling thread bound as
  // `self`) replays the certificates it missed by adopting the highest
  // (sn, value) pair vouched by f+1 live peers — at least one of them
  // correct, so the pair was genuinely certified by a delivered ladder.
  // Safe against Byzantine repliers by the f+1 threshold and idempotent /
  // monotone by the sn-guarded apply. Requires n−f live repliers (the
  // driver restarts one process at a time, within the fault budget).
  void resync_via(Network& net, int self) {
    const auto [sn, vid] = quorum_pair_via(net, f_ + 1);
    std::scoped_lock lock(mu_);
    apply_locked(self, sn, vid);
  }

  // Server side of read_via: reply with process `self`'s stored pair.
  void serve_read(Network& net, int self, const Message& m) {
    Message reply;
    reply.reg = reg_id_;
    reply.type = "STATE";
    reply.sn = m.sn;  // rid
    reply.to = m.from;
    {
      std::scoped_lock lock(mu_);
      const StoredState& st = state_[static_cast<std::size_t>(self)];
      reply.payload = std::pair<std::uint64_t, T>(st.stored_sn, st.stored_val);
    }
    net.send(reply);
  }

  // Client side of read_via: account a STATE reply.
  void accept_state(const Message& m) {
    std::scoped_lock lock(mu_);
    auto it = reads_.find(m.sn);
    if (it == reads_.end()) return;  // reply to a finished/foreign read
    const auto& [sn, val] =
        std::any_cast<const std::pair<std::uint64_t, T>&>(m.payload);
    if (!it->second.senders.insert(m.from).second) return;  // dup sender
    it->second.support[{sn, intern_locked(val)}].insert(m.from);
    cv_.notify_all();
  }

  // Applies a delivered (sn, value id) to process `self`'s stored state,
  // sn-monotone — late or reordered deliveries cannot roll it back.
  // Caller holds mu_.
  void apply_locked(int self, std::uint64_t sn, int vid) {
    StoredState& st = state_[static_cast<std::size_t>(self)];
    if (sn > st.stored_sn) {
      st.stored_sn = sn;
      st.stored_val = values_[static_cast<std::size_t>(vid)];
    }
  }

  const int reg_id_;
  const int n_;
  const int f_;
  const runtime::ProcessId owner_;
  const runtime::ProcessId sole_reader_;  // kNoProcess = SWMR
  const std::string name_;
  const T initial_;  // crash wipes a server's store back to this
  const RetryPolicy retry_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Serializes the owner's writing threads (op + Help) whole-operation —
  // the seqlock engine's writer-mutex discipline (registers/storage.hpp);
  // never touched by readers.
  std::mutex writer_mu_;
  std::vector<T> values_;            // interned values
  std::vector<StoredState> state_;   // per process
  std::uint64_t write_sn_ = 0;       // owner-local
  T owner_view_;                     // owner-local latest (possibly pending)
  std::uint64_t owner_view_sn_ = 0;  // sn owner_view_ corresponds to
  std::uint64_t read_rid_ = 0;
  std::map<std::uint64_t, ReadWait> reads_;
  std::map<int, ReadRound> read_rounds_;  // per reader pid (coalescing)
};

}  // namespace detail
}  // namespace swsig::msgpass
