// Witness-based ("authenticated") broadcast in message passing, in the
// style of Srikanth–Toueg [13] / Bracha: INIT → ECHO → READY with
// (n−f, f+1, n−f) thresholds, n > 3f, no signatures.
//
// This is the related-work baseline the paper contrasts against (§2):
// delivery here is only *eventual* — there is no operation a process can
// invoke that returns "not delivered" consistently across processes — which
// is exactly why simulating it in shared memory does not yield the
// linearizable Verify of the paper's registers. Benchmark T7 compares it
// against the register-based reliable broadcast objects.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "msgpass/network.hpp"
#include "msgpass/server_pool.hpp"
#include "obs/recorder.hpp"
#include "runtime/process.hpp"

namespace swsig::msgpass {

// Flight-recorder register id for witness-broadcast ladders (they have no
// register; -1 is taken by the batch round protocol).
inline constexpr int kWitnessObsReg = -2;

// One instance serves the whole system: any process may broadcast any
// number of sequenced messages; every correct process eventually delivers
// each broadcast message of a correct sender, and no two correct processes
// deliver different values for the same (sender, seq) — non-equivocation
// via the echo quorum.
class WitnessBroadcast {
 public:
  struct Options {
    int n = 4;
    int f = 1;
  };

  WitnessBroadcast(Options options, std::uint64_t reorder_seed = 0)
      : options_(options),
        net_(Network::Options{options.n, reorder_seed}),
        state_(static_cast<std::size_t>(options.n) + 1),
        pool_(net_, options.n,
              [this](int self, const Message& m) { handle(self, m); }) {}

  ~WitnessBroadcast() { stop(); }

  void stop() { pool_.stop(); }

  // Broadcast `value` under the caller's (bound) identity with sequence
  // number `seq`. Returns immediately — delivery is eventual.
  void broadcast(std::uint64_t seq, std::uint64_t value) {
    Message m;
    m.type = "INIT";
    m.sn = seq;
    m.payload = value;
    net_.broadcast(m);
  }

  // Blocks until the bound process delivers (sender, seq); returns the
  // delivered value.
  std::uint64_t await_delivery(runtime::ProcessId sender, std::uint64_t seq) {
    const int self = runtime::ThisProcess::id();
    std::unique_lock lock(mu_);
    auto& slot = state_[static_cast<std::size_t>(self)].delivered;
    cv_.wait(lock, [&] { return slot.contains({sender, seq}); });
    return slot.at({sender, seq});
  }

  // Non-blocking query.
  std::optional<std::uint64_t> delivered(runtime::ProcessId pid,
                                         runtime::ProcessId sender,
                                         std::uint64_t seq) const {
    std::scoped_lock lock(mu_);
    const auto& slot = state_[static_cast<std::size_t>(pid)].delivered;
    const auto it = slot.find({sender, seq});
    if (it == slot.end()) return std::nullopt;
    return it->second;
  }

  Network& network() { return net_; }

 private:
  // Per (sender, seq, value): who echoed / readied.
  struct Tally {
    std::set<int> echoes;
    std::set<int> readies;
    bool sent_echo = false;
    bool sent_ready = false;
  };
  struct PerProcess {
    // (sender, seq) -> value -> tally
    std::map<std::pair<int, std::uint64_t>, std::map<std::uint64_t, Tally>>
        tallies;
    std::map<std::pair<int, std::uint64_t>, std::uint64_t> delivered;
  };

  void handle(int self, const Message& m) {
    std::uint64_t value = 0;
    try {
      value = std::any_cast<std::uint64_t>(m.payload);
    } catch (const std::bad_any_cast&) {
      return;  // malformed Byzantine payload
    }
    const int n = options_.n;
    const int f = options_.f;

    std::unique_lock lock(mu_);
    PerProcess& st = state_[static_cast<std::size_t>(self)];

    std::pair<int, std::uint64_t> key;
    if (m.type == "INIT") {
      key = {m.from, m.sn};  // the INIT sender is the broadcast origin
    } else {
      // ECHO/READY carry the origin in reg (abused as origin pid field).
      key = {m.reg, m.sn};
    }
    auto& per_value = st.tallies[key];
    Tally& tally = per_value[value];

    bool send_echo = false;
    bool send_ready = false;
    bool ready_amplified = false;
    bool delivered_now = false;
    if (m.type == "INIT") {
      // Echo only the FIRST value seen from this (sender, seq) — the
      // non-equivocation guard.
      bool echoed_any = false;
      for (auto& [v, t] : per_value) echoed_any |= t.sent_echo;
      if (!echoed_any) {
        tally.sent_echo = true;
        send_echo = true;
      }
    } else if (m.type == "ECHO") {
      tally.echoes.insert(m.from);
      if (!tally.sent_ready &&
          static_cast<int>(tally.echoes.size()) >= n - f) {
        tally.sent_ready = true;
        send_ready = true;
      }
    } else if (m.type == "READY") {
      tally.readies.insert(m.from);
      if (!tally.sent_ready &&
          static_cast<int>(tally.readies.size()) >= f + 1) {
        tally.sent_ready = true;
        send_ready = true;
        ready_amplified = true;
      }
      if (static_cast<int>(tally.readies.size()) >= n - f &&
          !st.delivered.contains(key)) {
        st.delivered[key] = value;
        delivered_now = true;
        cv_.notify_all();
      }
    }
    lock.unlock();

    if (send_echo)
      record_witness_phase(obs::EventKind::kPhaseEcho, self, key);
    if (send_ready)
      record_witness_phase(ready_amplified ? obs::EventKind::kPhaseAmplify
                                           : obs::EventKind::kPhaseAccept,
                           self, key);
    if (delivered_now)
      record_witness_phase(obs::EventKind::kPhaseDeliver, self, key, value);
    if (send_echo) relay("ECHO", key, value);
    if (send_ready) relay("READY", key, value);
  }

  // One ladder-correlated event under the witness sentinel register,
  // keyed (kWitnessObsReg, origin, seq).
  static void record_witness_phase(obs::EventKind kind, int self,
                                   const std::pair<int, std::uint64_t>& key,
                                   std::uint64_t aux = 0) {
    obs::Event e;
    e.kind = kind;
    e.pid = static_cast<std::int16_t>(self);
    e.reg = kWitnessObsReg;
    e.origin = key.first;
    e.sn = key.second;
    e.aux = aux;
    obs::record(e);
  }

  void relay(const std::string& type,
             const std::pair<int, std::uint64_t>& key, std::uint64_t value) {
    Message m;
    m.type = type;
    m.reg = key.first;  // origin pid rides in the reg field
    m.sn = key.second;
    m.payload = value;
    net_.broadcast(m);
  }

  Options options_;
  Network net_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<PerProcess> state_;
  detail::ServerPool pool_;  // last member: threads stop before state dies
};

}  // namespace swsig::msgpass
