// The one Bracha reliable-broadcast ladder behind both message-passing
// substrates (design note 15 in docs/ARCHITECTURE.md).
//
// EmulatedSwmr (one ladder run per write sn) and BatchShard (one run per
// (origin, round) batch) used to carry their own copies of the
// echo/accept/amplify/deliver state machine, so every protocol fix — the
// PR-4 delivered-set replay guard, the cross-round echo dedup, the PR-8
// abort fences — had to land twice by hand. This header is the single
// copy. A BrachaLadder<Key, OpKey> instance holds ONE process's server-side
// protocol state for one register (or one shard) and answers, for each
// incoming message, what the process is allowed to do:
//
//   on_write(key)        WRITE/BWRITE arrived: re-ACK (already delivered),
//                        stay inert (abort-fenced / refused-as-malformed),
//                        or echo — re-issuing the ORIGINAL vote on a
//                        duplicate, never support for an equivocated value.
//   on_vote(key, v, p)   ECHO/ACCEPT tally for candidate v by voter p:
//                        n−f echoes or f+1 accepts => send ACCEPT once
//                        (the latter is Bracha's amplification rung);
//                        n−f accepts => deliver.
//   fence(key)           PR-8 abort fence: promise never to echo / accept /
//                        deliver key unless a completion re-issue lifts the
//                        fence; reports unsafe if this process delivered or
//                        ever sent ACCEPT for key.
//   crash()              lose the volatile tallies; the dedup and fence
//                        sets persist (stable storage, see below).
//
// The caller keeps everything substrate-specific: message I/O, value /
// digest interning, sn-monotone apply of delivered payloads, and the
// owner-side wait machinery. The ladder is not thread-safe — callers hold
// their own protocol mutex across every call (both substrates already
// serialize server state under one).
//
// Persistence model (unchanged from the two originals): `echoed`,
// `delivered`, `blocked`, and `claimed` survive a crash — each is a
// write-ahead bit flipped before the corresponding broadcast. Without them
// a rejoined server could echo a second value for a key it already echoed
// (equivocation support), re-deliver and re-ACK old keys (the replay storm
// the delivered set exists to stop), or forget a fence it granted the
// recovering owner. The candidate tallies are volatile: crash() wipes them.
//
// Why one guard suffices for both substrates: the candidate key is the
// unit of echo-once (sn for per-write ladders, (origin, round) for batched
// ones), and `claimed` extends the same rule to the batched case's inner
// ops — a server echo-supports each (reg, sn) at most once ACROSS rounds,
// closing the two-rounds-same-sn equivocation vector that round-level
// echo-once alone would reopen. tests/bracha_ladder_test.cpp pins both
// properties, once, for both substrates.
#pragma once

#include <map>
#include <set>
#include <utility>
#include <vector>

namespace swsig::msgpass::detail {

// Key: the candidate key of one ladder run (uint64_t sn, or
// (origin, round)). OpKey: the cross-run dedup key for payload ops —
// defaults to Key; the batched substrate uses (reg, sn).
template <typename Key, typename OpKey = Key>
class BrachaLadder {
 public:
  BrachaLadder() = default;
  BrachaLadder(int n, int f) : n_(n), f_(f) {}

  enum class WriteAction {
    kReAck,    // already delivered: the only effect left is refreshing the
               // (possibly lost) ACK/BACK — receivers dedup by sender
    kFenced,   // abort-fenced and not a completion re-issue: stay inert
    kRefused,  // echoed slot holds a refusal (malformed batch): stays refused
    kEcho,     // echo value_id (first == false: re-issue of the original)
  };
  struct WriteStep {
    WriteAction action;
    int value_id = -1;
    bool first = false;  // first echo for this key (drives the echo event)
  };

  // WRITE/BWRITE (or the CWRITE/recovery completion re-issue when
  // `complete`). `intern` runs only for the FIRST write seen for `key` and
  // returns the value id to echo — or a negative id to refuse the payload
  // as malformed (the refusal persists in the echoed slot, so a retried
  // copy cannot be re-judged into support). A duplicate write re-issues
  // the ORIGINAL vote: idempotent refresh of a lost message, never support
  // for an equivocated second value. `complete` additionally lifts an
  // abort fence — the one message allowed to (see fence()).
  template <typename Intern>
  WriteStep on_write(const Key& key, bool complete, Intern&& intern) {
    if (delivered_.contains(key)) return {WriteAction::kReAck, -1, false};
    if (blocked_.contains(key)) {
      if (!complete) return {WriteAction::kFenced, -1, false};
      blocked_.erase(key);
    }
    const auto it = echoed_.find(key);
    if (it != echoed_.end()) {
      if (it->second < 0) return {WriteAction::kRefused, it->second, false};
      return {WriteAction::kEcho, it->second, false};
    }
    const int vid = intern();  // may throw: echoed_ stays untouched
    echoed_.emplace(key, vid);
    if (vid < 0) return {WriteAction::kRefused, vid, true};
    return {WriteAction::kEcho, vid, true};
  }

  struct VoteStep {
    bool send_accept = false;
    // Which rung fired the accept: false = the echo quorum, true = f+1
    // accepts (Bracha's amplification).
    bool amplified = false;
    bool deliver = false;
  };

  // One ECHO or ACCEPT vote for candidate `value_id` by `voter`. Votes for
  // delivered keys are inert — the PR-4 replay guard: a Byzantine ACCEPT
  // replay landing after the candidate map is pruned cannot pool with a
  // correct straggler's vote into a fresh f+1 and re-trigger the whole
  // amplification + ACK storm. Votes for fenced keys are inert too (the
  // fence is a promise to never support the key again). On deliver the
  // candidate map is pruned; the delivered set keeps it pruned.
  VoteStep on_vote(const Key& key, int value_id, int voter, bool is_echo) {
    VoteStep out;
    if (delivered_.contains(key) || blocked_.contains(key)) return out;
    Candidate& c = candidate(key, value_id);
    (is_echo ? c.echoes : c.accepts).insert(voter);
    if (!c.sent_accept &&
        (static_cast<int>(c.echoes.size()) >= n_ - f_ ||
         static_cast<int>(c.accepts.size()) >= f_ + 1)) {
      c.sent_accept = true;
      out.send_accept = true;
      out.amplified = static_cast<int>(c.echoes.size()) < n_ - f_;
    }
    if (static_cast<int>(c.accepts.size()) >= n_ - f_) {
      out.deliver = true;
      delivered_.insert(key);
      cands_.erase(key);  // prune: c is dangling beyond this point
    }
    return out;
  }

  // PR-8 abort fence, server side. Returns the unsafe-to-abort bit: true
  // if this process DELIVERED key — or merely SENT ACCEPT for it. The
  // accepted case matters for finality: fencing is not retroactive for
  // ACCEPTs already in flight, so if an accept-sender could grant a
  // "clean" fence, n−f clean replies might coexist with enough pre-fence
  // ACCEPTs for some unfenced process to still deliver the value later.
  // Counting accept-senders as unsafe restores the bound: when every one
  // of n−f repliers has neither delivered nor accepted, total
  // accept-senders are at most f non-repliers + f lying Byzantine
  // repliers = 2f < n−f, forever. An undelivered key is blocked either
  // way (a persistent promise to never echo/accept/deliver it); if the
  // owner ends up completing, its completion re-issue lifts the block.
  bool fence(const Key& key) {
    if (delivered_.contains(key)) return true;
    bool unsafe = false;
    const auto cit = cands_.find(key);
    if (cit != cands_.end()) {
      for (const Candidate& c : cit->second) {
        if (c.sent_accept) {
          unsafe = true;
          break;
        }
      }
    }
    blocked_.insert(key);
    cands_.erase(key);  // in-progress tallies for key die with it
    return unsafe;
  }

  // Crash: in-progress tallies are volatile and die; echoed / delivered /
  // blocked / claimed persist (stable storage — see the header comment).
  void crash() { cands_.clear(); }

  // Cross-run op dedup (the batched substrate's echoed_ops): has this
  // process already echo-supported `op` in any run?
  bool op_claimed(const OpKey& op) const { return claimed_.contains(op); }
  // Claims `op`, exactly once, forever. Call only after the enclosing
  // write was judged valid (claims are what make the judgment stick).
  void claim_op(OpKey op) { claimed_.insert(std::move(op)); }

  // Inspection (tests, forensics).
  bool has_delivered(const Key& key) const { return delivered_.contains(key); }
  bool is_fenced(const Key& key) const { return blocked_.contains(key); }

 private:
  struct Candidate {
    int value_id = 0;
    std::set<int> echoes;
    std::set<int> accepts;
    bool sent_accept = false;
  };

  Candidate& candidate(const Key& key, int value_id) {
    std::vector<Candidate>& cands = cands_[key];
    for (Candidate& c : cands)
      if (c.value_id == value_id) return c;
    cands.push_back(Candidate{value_id, {}, {}, false});
    return cands.back();
  }

  int n_ = 0;
  int f_ = 0;
  // Echo-once-per-key, key -> echoed value id (persists). Storing the id
  // rather than bare membership lets a duplicate write re-issue the
  // ORIGINAL echo; negative ids persist refusals.
  std::map<Key, int> echoed_;
  // Delivered keys (persists): the replay guard.
  std::set<Key> delivered_;
  // Abort-fenced keys (persists): the PR-8 promise.
  std::set<Key> blocked_;
  // Cross-run op claims (persists): the batched echo-once-per-(reg, sn).
  std::set<OpKey> claimed_;
  // Per key: candidate values (usually 1; >1 only under equivocation).
  // Volatile — crash() wipes it.
  std::map<Key, std::vector<Candidate>> cands_;
};

}  // namespace swsig::msgpass::detail
