// Per-process server threads for message-passing protocol objects.
//
// Every msgpass protocol (EmulatedSpace, BatchedEmulatedSpace shards,
// WitnessBroadcast) runs the same skeleton: one thread per process p1..pn,
// bound to its pid, pulling from the shared Network and dispatching to a
// handler. ServerPool owns that skeleton so the protocols only supply the
// handler body.
#pragma once

#include <functional>
#include <memory>
#include <stop_token>
#include <thread>
#include <utility>
#include <vector>

#include "msgpass/network.hpp"
#include "runtime/process.hpp"

namespace swsig::msgpass::detail {

class ServerPool {
 public:
  using Handler = std::function<void(int self, const Message&)>;

  // Spawns one server thread per process 1..n; each binds its pid and feeds
  // received messages to `handle`. The pool must outlive nothing that
  // `handle` touches — callers stop() it before tearing protocol state down.
  // All n threads share ONE handler instance (the protocols' handlers are
  // stateless closures over their space, and with pipelined owners every
  // server thread multiplexes many concurrent ladders — n identical
  // std::function copies bought nothing).
  ServerPool(Network& net, int n, Handler handle)
      : handle_(std::make_shared<Handler>(std::move(handle))) {
    for (int pid = 1; pid <= n; ++pid) {
      threads_.emplace_back([&net, pid, handle = handle_](std::stop_token st) {
        runtime::ThisProcess::Binder bind(pid);
        while (!st.stop_requested()) {
          auto m = net.recv(st);
          if (m) (*handle)(pid, *m);
        }
      });
    }
  }

  ~ServerPool() { stop(); }

  ServerPool(const ServerPool&) = delete;
  ServerPool& operator=(const ServerPool&) = delete;

  void stop() {
    for (auto& t : threads_) t.request_stop();
    threads_.clear();
  }

 private:
  std::shared_ptr<Handler> handle_;  // shared by all server threads
  std::vector<std::jthread> threads_;
};

}  // namespace swsig::msgpass::detail
