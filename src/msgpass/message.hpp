// Message type for the simulated asynchronous network.
//
// Payloads are std::any holding the typed value of whichever protocol sent
// them (this is an in-process simulation; the network does not interpret
// payloads). Channels are authenticated: `from` is stamped by the network
// from the sender's bound ProcessId, so a Byzantine process can send
// arbitrary CONTENT but cannot spoof its identity — the standard Byzantine
// message-passing model ([11], [13]).
#pragma once

#include <any>
#include <cstdint>
#include <string>

#include "runtime/process.hpp"

namespace swsig::msgpass {

struct Message {
  runtime::ProcessId from = runtime::kNoProcess;  // stamped by Network::send
  runtime::ProcessId to = runtime::kNoProcess;
  int reg = 0;           // register/protocol instance id (dispatch key)
  std::string type;      // "WRITE", "ECHO", "ACCEPT", "ACK", "READ", ...
  std::uint64_t sn = 0;  // sequence number / read id
  std::any payload;      // typed value, interpreted by the endpoint
};

}  // namespace swsig::msgpass
