// The soak run itself: a wall-clock-budgeted adversarial workload over one
// msgpass substrate (EmulatedSpace or BatchedEmulatedSpace), combining
//
//   * client churn: worker threads bound to honest processes, each op
//     picking a register out of thousands (hot-set biased so registers see
//     real cross-window contention),
//   * a FaultSchedule attached to every Network (drop/delay/reorder),
//   * crash windows: the victim's clients are parked, the process crashes
//     mid-protocol, and on restart the recovery subsystem resyncs its
//     state from f+1 live peers,
//   * Byzantine agents toggled on and off at runtime, spraying forged
//     protocol traffic at decoy registers (equivocating WRITEs, bogus
//     votes) from their own authenticated identity,
//   * a LivenessMonitor gating progress and a WindowedChecker sampling
//     sliding windows of the live history through the partitioned
//     linearizability checker.
//
// Fault-budget coordination (the reason the driver, not the schedule, owns
// impairment): the impaired set — crashed ∪ drop-targeted ∪ Byzantine —
// must stay within f at every instant, and a drop victim must have no
// in-flight blocking operation of its own (no retransmission layer). So
// with --byzantine K the Byzantine pids ARE the victim pool, exactly one
// victim is impaired per window, and the driver parks the victim's workers
// before engaging drops or crashing, resyncing and releasing them after.
#pragma once

#include <algorithm>
#include <any>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "lincheck/byzantine_completion.hpp"
#include "lincheck/history.hpp"
#include "lincheck/window.hpp"
#include "msgpass/batched_space.hpp"
#include "msgpass/emulated_swmr.hpp"
#include "registers/errors.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "runtime/process.hpp"
#include "soak/fault_schedule.hpp"
#include "soak/liveness.hpp"
#include "soak/report.hpp"
#include "util/rng.hpp"

namespace swsig::soak {

struct SoakConfig {
  int n = 4;
  int f = 1;
  int registers = 2048;  // honest registers, round-robin over honest pids
  int clients = 8;       // worker threads, round-robin over honest pids
  std::uint64_t duration_ms = 60000;
  std::uint64_t seed = 1;
  FaultKinds faults;
  int byzantine = 0;  // Byzantine processes (<= f): pids n, n-1, ...
  std::string substrate = "emulated";  // label for reports/repro
  std::size_t window_ops = 512;        // min ops per checked window
  std::uint64_t checkpoint_ms = 250;   // forced quiescent-cut cadence
  std::uint64_t stall_budget_ms = 10000;
  int hot_registers = 16;  // per owner; half of all traffic lands here
  int value_pool = 1024;   // distinct values per register (bounds interning)

  // Writes per client burst (design note 15). 1 = blocking write(). >1:
  // each write turn issues up to this many overlapping write_async ops on
  // ONE register and awaits the tickets in issue order, so owner crashes
  // land mid-pipeline with several in-flight sns. The driver constructs
  // the emulated space with a matching Options::pipeline_depth cap.
  int pipeline_depth = 1;

  // Un-parked fault windows: impairment hits ACTIVE clients — including
  // the owner itself mid-write — and the retry/abort layer, not the park
  // gate, is what carries them through (design note 14). The victim pool
  // widens to every process so honest owners crash mid-ladder; the
  // impaired-set ≤ f invariant is kept per instant by quieting Byzantine
  // agents during windows that impair an honest victim.
  bool unparked = false;

  // Everything needed to replay this run, in soak_driver flag syntax —
  // printed on every failure so a failure is one command away from replay.
  std::string repro_line() const {
    std::ostringstream os;
    os << "soak_driver --substrate " << substrate << " --n " << n << " --f "
       << f << " --registers " << registers << " --clients " << clients
       << " --duration " << (duration_ms + 999) / 1000 << " --faults "
       << faults.to_string() << " --byzantine " << byzantine << " --seed "
       << seed;
    if (pipeline_depth != 1) os << " --pipeline-depth " << pipeline_depth;
    if (unparked) os << " --unparked";
    return os.str();
  }
};

namespace detail {

// ------------------------------------------------- per-substrate seams

inline void set_injector(msgpass::EmulatedSpace& space,
                         msgpass::FaultInjector* fi) {
  space.network().set_fault_injector(fi);
}
inline void set_injector(msgpass::BatchedEmulatedSpace& space,
                         msgpass::FaultInjector* fi) {
  for (int s = 0; s < space.shard_count(); ++s)
    space.shard(s).network().set_fault_injector(fi);
}

inline std::pair<std::uint64_t, std::uint64_t> fault_counts(
    msgpass::EmulatedSpace& space) {
  return {space.network().messages_dropped(),
          space.network().messages_delayed()};
}
inline std::pair<std::uint64_t, std::uint64_t> fault_counts(
    msgpass::BatchedEmulatedSpace& space) {
  std::uint64_t dropped = 0, delayed = 0;
  for (int s = 0; s < space.shard_count(); ++s) {
    dropped += space.shard(s).network().messages_dropped();
    delayed += space.shard(s).network().messages_delayed();
  }
  return {dropped, delayed};
}

// In-flight backlog (inboxes + delay pump). With pipelined writers a wedge
// can hide behind a deep backlog rather than a silent network, so the
// wedge forensics report it next to the stuck-operation list.
inline std::uint64_t queued_backlog(msgpass::EmulatedSpace& space) {
  return space.network().queued_messages();
}
inline std::uint64_t queued_backlog(msgpass::BatchedEmulatedSpace& space) {
  std::uint64_t queued = 0;
  for (int s = 0; s < space.shard_count(); ++s)
    queued += space.shard(s).network().queued_messages();
  return queued;
}

// One burst of forged protocol traffic from a Byzantine process (the
// calling thread is bound as it). Equivocating WRITEs — two values for the
// same sn — plus bogus ECHO/ACCEPT votes, all against the process's OWN
// decoy register (the write-port axiom holds even for Byzantine processes;
// forged votes for others' registers are also sprayed, which servers must
// refuse). Sns cycle over a small pool so honest-side dedup state stays
// bounded over an hours-long soak.
inline void spray_garbage(msgpass::EmulatedSpace& space, int decoy_reg,
                          util::Rng& rng) {
  msgpass::Network& net = space.network();
  const std::uint64_t sn = rng.uniform(1, 64);
  for (const char* type : {"WRITE", "WRITE", "ECHO", "ACCEPT"}) {
    msgpass::Message m;
    m.reg = decoy_reg;
    m.type = type;
    m.sn = sn;
    m.payload = std::string("byz#") + std::to_string(rng.uniform(0, 7));
    net.broadcast(m);
  }
}
inline void spray_garbage(msgpass::BatchedEmulatedSpace& space, int decoy_reg,
                          util::Rng& rng) {
  msgpass::BatchShard& shard =
      space.shard(decoy_reg % space.shard_count());
  const std::uint64_t round = rng.uniform(1, 64);
  // Equivocating rounds: same (origin, round), different batches.
  for (int i = 0; i < 2; ++i) {
    msgpass::Batch batch;
    batch.push_back(msgpass::BatchOp{
        decoy_reg, rng.uniform(1, 64),
        std::any(std::string("byz#") + std::to_string(rng.uniform(0, 7)))});
    msgpass::Message m;
    m.reg = msgpass::BatchShard::kBatchProto;
    m.type = "BWRITE";
    m.sn = round;
    m.payload = std::move(batch);
    shard.network().broadcast(m);
  }
  // Bogus votes: digest ids picked blind (out-of-range ones are refused).
  msgpass::Message v;
  v.reg = msgpass::BatchShard::kBatchProto;
  v.type = rng.chance(1, 2) ? "BECHO" : "BACCEPT";
  v.sn = round;
  v.payload = std::pair<int, int>(static_cast<int>(rng.uniform(1, 4)),
                                  static_cast<int>(rng.uniform(0, 9)));
  shard.network().broadcast(v);
}

// Park gate: the fault driver asks a victim's workers to quiesce before
// impairing it (see file comment), and the checker loop parks EVERY
// worker for its quiescent-cut checkpoints — `park` is a request COUNT so
// the two park/release pairs compose (workers run only while no request
// is outstanding).
struct ParkGate {
  std::mutex mu;
  std::condition_variable cv;
  int park = 0;     // outstanding park requests
  int workers = 0;  // workers assigned to this pid
  int parked = 0;

  // Worker side: called between ops; blocks while parked.
  // Returns true if it parked (caller re-attaches to liveness after).
  template <typename OnPark>
  bool pause_if_parked(OnPark&& on_park) {
    std::unique_lock lock(mu);
    if (park == 0) return false;
    on_park();
    ++parked;
    cv.notify_all();
    cv.wait(lock, [&] { return park == 0; });
    --parked;
    return true;
  }

  // Driver side: returns false if the workers failed to quiesce in time
  // (a stall the liveness monitor will flag; the window is skipped).
  bool engage_park(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mu);
    ++park;
    cv.notify_all();
    if (!cv.wait_for(lock, timeout, [&] { return parked == workers; })) {
      --park;
      cv.notify_all();
      return false;
    }
    return true;
  }

  void release() {
    std::scoped_lock lock(mu);
    if (park > 0) --park;
    cv.notify_all();
  }

  // Shutdown: drop every outstanding request so no worker stays parked.
  void force_release() {
    std::scoped_lock lock(mu);
    park = 0;
    cv.notify_all();
  }
};

}  // namespace detail

struct SoakOutcome {
  SoakMetrics metrics;
  std::vector<std::string> failures;  // empty iff the run met its SLO

  bool ok() const { return failures.empty() && metrics.slo_ok(); }
};

// Runs the soak workload against `space` (constructed by the caller with
// matching n/f) for cfg.duration_ms. Registers of type std::string.
template <typename Space>
SoakOutcome run_soak(Space& space, const SoakConfig& cfg) {
  using Clock = std::chrono::steady_clock;
  SoakOutcome out;
  out.metrics.substrate = cfg.substrate;

  // ----- processes: byzantine pids are the top `byzantine` ids and form
  // the victim pool; the rest are honest owners.
  std::vector<runtime::ProcessId> honest, byz;
  for (int pid = 1; pid <= cfg.n; ++pid) {
    if (pid > cfg.n - cfg.byzantine)
      byz.push_back(pid);
    else
      honest.push_back(pid);
  }

  // ----- registers: honest ones round-robin over honest owners; one decoy
  // per Byzantine pid (never recorded, never touched by honest clients —
  // a Byzantine owner's writes are unverifiable by construction).
  struct RegEntry {
    std::string name;
    runtime::ProcessId owner;
    void* reg;  // EmulatedSwmr<std::string>* or BatchedSwmr<std::string>*
  };
  using Reg = typename Space::template SwmrFor<std::string>;
  std::vector<RegEntry> regs;
  std::map<runtime::ProcessId, std::vector<int>> owned;  // pid -> reg index
  regs.reserve(static_cast<std::size_t>(cfg.registers));
  for (int i = 0; i < cfg.registers; ++i) {
    const runtime::ProcessId owner =
        honest[static_cast<std::size_t>(i) % honest.size()];
    const std::string name = "r" + std::to_string(i);
    Reg& r = space.template make_swmr<std::string>(owner, "0", name);
    regs.push_back(RegEntry{name, owner, &r});
    owned[owner].push_back(i);
  }
  std::map<runtime::ProcessId, int> decoys;  // byz pid -> decoy reg id
  // Decoy registers ARE sampled: a reader thread records their reads into
  // a separate history checked through the byzantine_completion
  // construction (the recorded history is reads-only — a Byzantine owner's
  // writes are unverifiable by construction, so the checker must find a
  // witness write sequence, Definition 7).
  struct DecoyEntry {
    std::string name;
    Reg* reg;
  };
  std::vector<DecoyEntry> decoy_regs;
  int next_reg_id = cfg.registers;  // spaces assign ids in creation order
  for (const runtime::ProcessId pid : byz) {
    const std::string name = "decoy-p" + std::to_string(pid);
    Reg& d = space.template make_swmr<std::string>(pid, "0", name);
    decoys[pid] = next_reg_id++;
    decoy_regs.push_back(DecoyEntry{name, &d});
  }

  // ----- shared infrastructure
  lincheck::HistoryRecorder rec;
  LivenessMonitor liveness(
      LivenessMonitor::Options{cfg.stall_budget_ms, /*error_budget=*/0});
  lincheck::WindowedChecker::Options wopts;
  wopts.min_window_ops = cfg.window_ops;
  lincheck::WindowedChecker checker(wopts);

  FaultScheduleConfig fcfg;
  fcfg.seed = cfg.seed;
  fcfg.kinds = cfg.faults;
  if (cfg.unparked) {
    // Un-parked mode: any process — honest owners included — can be the
    // window's victim, so crashes and cuts land on processes with live,
    // mid-operation clients. Still one victim per window (≤ f impaired).
    for (int pid = 1; pid <= cfg.n; ++pid)
      fcfg.victims.push_back(pid);
  } else {
    fcfg.victims = byz.empty() ? std::vector<runtime::ProcessId>{cfg.n} : byz;
  }
  FaultSchedule schedule(fcfg);
  detail::set_injector(space, &schedule);

  std::map<runtime::ProcessId, detail::ParkGate> gates;
  for (int pid = 1; pid <= cfg.n; ++pid) gates[pid];

  std::atomic<bool> stop{false};
  std::atomic<int> live_workers{0};
  std::atomic<std::uint64_t> reads{0}, writes{0}, errors{0};
  std::atomic<std::uint64_t> write_aborts{0}, byz_reads{0};
  std::atomic<bool> byz_on{false};
  std::mutex fail_mu;
  lincheck::HistoryRecorder byz_rec;  // decoy-register samples (reads only)

  // Run-scoped registry telemetry: latency histograms rewound at run start
  // (one process hosts several runs — soak_test, the driver's substrate
  // sweep), traffic counters handled as start-snapshot deltas since
  // counters are shared process-wide and never reset.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.reset_histograms("soak.");
  registry.reset_histograms("msgpass.");
  obs::LogHistogram& read_hist = registry.histogram("soak.read_us");
  obs::LogHistogram& write_hist = registry.histogram("soak.write_us");
  std::map<std::string, std::uint64_t> net_baseline;
  for (const obs::CounterSnapshot& c : registry.counters("net."))
    net_baseline[c.name] = c.value;
  // Retry/abort counters are process-wide and never reset, so this run's
  // contribution is the delta against a start snapshot, like "net." above.
  const std::uint64_t retries0 = msgpass::detail::retry_counter().value();
  const std::uint64_t timeouts0 = msgpass::detail::timeout_counter().value();

  const auto record_failure = [&](std::string what) {
    std::scoped_lock lock(fail_mu);
    if (out.failures.size() < 16) out.failures.push_back(std::move(what));
  };

  // ----- client workers
  const int nclients = std::max(cfg.clients, static_cast<int>(honest.size()));
  std::vector<std::jthread> workers;
  for (int c = 0; c < nclients; ++c) {
    const runtime::ProcessId pid =
        honest[static_cast<std::size_t>(c) % honest.size()];
    gates[pid].workers++;
    live_workers.fetch_add(1, std::memory_order_relaxed);
    workers.emplace_back([&, c, pid](std::stop_token st) {
      runtime::ThisProcess::Binder bind(pid);
      const std::string name =
          "c" + std::to_string(c) + "@p" + std::to_string(pid);
      util::Rng rng(cfg.seed * 1013u + static_cast<std::uint64_t>(c));
      liveness.attach(name);
      std::uint64_t counter = 0;  // write-value counter
      detail::ParkGate& gate = gates[pid];
      const std::vector<int>& mine = owned[pid];
      while (!st.stop_requested() && !stop.load(std::memory_order_relaxed)) {
        if (gate.pause_if_parked([&] { liveness.detach(name); }))
          liveness.attach(name);
        if (stop.load(std::memory_order_relaxed)) break;
        // Hot-set bias: half of all traffic lands on each owner's first
        // hot_registers registers, so some registers see real concurrency.
        const auto pick = [&](const std::vector<int>& pool) {
          const int hot = std::min<int>(cfg.hot_registers,
                                        static_cast<int>(pool.size()));
          if (hot > 0 && rng.chance(1, 2))
            return pool[static_cast<std::size_t>(rng.uniform(
                0, static_cast<std::uint64_t>(hot - 1)))];
          return pool[static_cast<std::size_t>(
              rng.uniform(0, pool.size() - 1))];
        };
        const bool do_write = !mine.empty() && rng.chance(1, 4);
        const int idx = do_write ? pick(mine)
                                 : static_cast<int>(rng.uniform(
                                       0, static_cast<std::uint64_t>(
                                              cfg.registers - 1)));
        RegEntry& entry = regs[static_cast<std::size_t>(idx)];
        Reg& reg = *static_cast<Reg*>(entry.reg);
        if (do_write && cfg.pipeline_depth > 1) {
          // Pipelined burst: issue up to depth overlapping write_asyncs on
          // ONE register, then await the tickets in issue order. Owner
          // crashes now land with several in-flight sns on a single ladder
          // and recovery must settle each deterministically (complete or
          // abort) — exactly what the online checker verifies. The emulated
          // substrate's capacity gate blocks the (depth+1)-th issue; batched
          // tickets are unbounded, so there depth just widens the burst.
          struct InFlight {
            int token;
            std::uint64_t ticket;
          };
          std::vector<InFlight> burst;
          burst.reserve(static_cast<std::size_t>(cfg.pipeline_depth));
          const auto t0 = Clock::now();
          for (int b = 0; b < cfg.pipeline_depth; ++b) {
            const std::string v =
                "p" + std::to_string(pid) + "#" +
                std::to_string(counter++ %
                               static_cast<std::uint64_t>(cfg.value_pool));
            const int token = rec.invoke(entry.name, "write", v);
            try {
              burst.push_back(InFlight{token, reg.write_async(v)});
            } catch (const std::exception& e) {
              // The issue itself failed: the value never left the client,
              // so the pending invocation is removed, not left dangling.
              rec.abort(token);
              errors.fetch_add(1, std::memory_order_relaxed);
              liveness.error(name);
              record_failure("write_async error on " + entry.name + " by " +
                             name + ": " + e.what());
              break;
            }
          }
          for (const InFlight& op : burst) {
            try {
              reg.await(op.ticket);
              rec.respond(op.token, "done");
              writes.fetch_add(1, std::memory_order_relaxed);
              liveness.success(name);
            } catch (const registers::WriteAborted&) {
              // Determinate negative, same as the blocking path below: the
              // recovery fence proved the value can never deliver.
              rec.abort(op.token);
              write_aborts.fetch_add(1, std::memory_order_relaxed);
              liveness.success(name);
            } catch (const std::exception& e) {
              errors.fetch_add(1, std::memory_order_relaxed);
              liveness.error(name);
              record_failure("await error on " + entry.name + " by " + name +
                             ": " + e.what());
            }
          }
          if (!burst.empty()) {
            // Amortized per-op latency, one histogram sample per op, so the
            // depth-1 and depth-k write distributions stay comparable.
            const double us =
                std::chrono::duration<double, std::micro>(Clock::now() - t0)
                    .count() /
                static_cast<double>(burst.size());
            for (std::size_t i = 0; i < burst.size(); ++i) write_hist.add(us);
          }
          continue;
        }
        try {
          const auto t0 = Clock::now();
          if (do_write) {
            // Value pool bounds per-register interning on long runs; pool
            // size >> window size keeps in-window values distinct.
            const std::string v =
                "p" + std::to_string(pid) + "#" +
                std::to_string(counter++ %
                               static_cast<std::uint64_t>(cfg.value_pool));
            const int token = rec.invoke(entry.name, "write", v);
            try {
              reg.write(v);
            } catch (const registers::WriteAborted&) {
              // Determinate negative: the owner's recovery fence proved
              // the value can never be delivered or read, so the pending
              // invocation is removed from the history (Definition 2
              // completion). An abort is a survived crash, not an error.
              rec.abort(token);
              write_aborts.fetch_add(1, std::memory_order_relaxed);
              liveness.success(name);
              continue;
            }
            rec.respond(token, "done");
            writes.fetch_add(1, std::memory_order_relaxed);
          } else {
            const int token = rec.invoke(entry.name, "read", "");
            std::string v = reg.read();
            rec.respond(token, std::move(v));
            reads.fetch_add(1, std::memory_order_relaxed);
          }
          const double us =
              std::chrono::duration<double, std::micro>(Clock::now() - t0)
                  .count();
          // Every op lands in a fixed-size log-bucketed histogram — no
          // sampling or memory cap needed, unlike the raw vectors this
          // replaced (one wait-free fetch_add per op).
          (do_write ? write_hist : read_hist).add(us);
          liveness.success(name);
        } catch (const std::exception& e) {
          errors.fetch_add(1, std::memory_order_relaxed);
          liveness.error(name);
          record_failure("op error on " + entry.name + " by " + name + ": " +
                         e.what());
        }
      }
      liveness.detach(name);
      live_workers.fetch_sub(1, std::memory_order_release);
    });
  }

  // ----- Byzantine agents: forged traffic, toggled on/off per window.
  std::vector<std::jthread> byz_agents;
  for (const runtime::ProcessId pid : byz) {
    byz_agents.emplace_back([&, pid](std::stop_token st) {
      runtime::ThisProcess::Binder bind(pid);
      util::Rng rng(cfg.seed * 7177u + static_cast<std::uint64_t>(pid));
      while (!st.stop_requested()) {
        if (byz_on.load(std::memory_order_relaxed))
          detail::spray_garbage(space, decoys[pid], rng);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  // ----- decoy auditor: reads Byzantine-owned registers from an honest
  // process into byz_rec; the checker loop feeds the samples through the
  // byzantine_completion witness construction. Counted in live_workers so
  // a wedged audit read is caught by the shutdown grace like any worker.
  std::vector<std::jthread> auditors;
  if (!decoy_regs.empty()) {
    const runtime::ProcessId apid = honest.front();
    live_workers.fetch_add(1, std::memory_order_relaxed);
    auditors.emplace_back([&, apid](std::stop_token st) {
      runtime::ThisProcess::Binder bind(apid);
      const std::string name = "audit@p" + std::to_string(apid);
      liveness.attach(name);
      std::size_t i = 0;
      while (!st.stop_requested() && !stop.load(std::memory_order_relaxed)) {
        const DecoyEntry& d = decoy_regs[i++ % decoy_regs.size()];
        try {
          const int token = byz_rec.invoke(d.name, "read", "");
          std::string v = d.reg->read();
          byz_rec.respond(token, std::move(v));
          byz_reads.fetch_add(1, std::memory_order_relaxed);
          liveness.success(name);
        } catch (const std::exception& e) {
          errors.fetch_add(1, std::memory_order_relaxed);
          liveness.error(name);
          record_failure("decoy read error on " + d.name + ": " + e.what());
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
      liveness.detach(name);
      live_workers.fetch_sub(1, std::memory_order_release);
    });
  }

  // ----- fault driver: walks the schedule's windows. Parked mode
  // sequences park → impair → heal → release (see file comment); unparked
  // mode skips the gate entirely — impairment lands on live clients and
  // the retry/abort layer carries them (design note 14). Byzantine
  // behavior toggles window by window in both modes.
  std::uint64_t crashes = 0, resyncs = 0, partitions = 0;
  std::jthread fault_driver([&](std::stop_token st) {
    if (!cfg.faults.any() && byz.empty()) return;
    // Loss faults are survivable without parking once retries exist, so
    // the gate goes up at start and stays up; checkpoint parking still
    // provides the checker's quiescent cuts.
    if (cfg.unparked) schedule.engage(true);
    const std::chrono::milliseconds park_timeout(
        std::max<std::uint64_t>(cfg.stall_budget_ms / 2, 1000));
    while (!st.stop_requested()) {
      const std::uint64_t now = schedule.now_ms();
      const std::uint64_t w = schedule.window_at(now);
      const runtime::ProcessId victim = schedule.victim_of(w);
      const bool want_crash = schedule.crash_window(w) && cfg.faults.crash;
      const bool want_part = !want_crash && schedule.partition_window(w);
      const bool want_drop = !want_crash && !want_part && cfg.faults.drop;
      const bool impair = victim != runtime::kNoProcess &&
                          (want_crash || want_part || want_drop);
      // Byzantine agents act on odd windows — toggled at runtime, as the
      // schedule requires, and verified off again between windows. In
      // unparked mode they stay quiet while an HONEST victim is impaired,
      // keeping the impaired set (crashed ∪ cut ∪ Byzantine) within f.
      const bool victim_is_byz =
          std::find(byz.begin(), byz.end(), victim) != byz.end();
      byz_on.store(!byz.empty() && (w % 2 == 1) &&
                       !(cfg.unparked && impair && !victim_is_byz),
                   std::memory_order_relaxed);
      if (impair && schedule.active_at(now)) {
        const std::uint64_t active_end = w * fcfg.period_ms + fcfg.active_ms;
        const auto hold = [&] {
          while (schedule.now_ms() < active_end && !st.stop_requested())
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        };
        const auto cut_event = [&](obs::EventKind kind) {
          msgpass::detail::record_phase(
              kind, victim, -1, victim, w,
              static_cast<std::uint64_t>(schedule.partition_mode(w)));
        };
        if (cfg.unparked) {
          if (want_crash) {
            space.crash(victim);  // its clients' in-flight ops ride retries
            ++crashes;
          } else if (want_part) {
            cut_event(obs::EventKind::kPartitionCut);
            ++partitions;
          }
          hold();
          if (want_crash) {
            // restart() resyncs AND runs owner recovery: every write the
            // crash left in flight is completed or fence-aborted, waking
            // its (still blocked) client with a definite outcome.
            space.restart(victim);
            ++resyncs;
          } else {
            if (want_part) cut_event(obs::EventKind::kPartitionHeal);
            space.resync(victim);
            ++resyncs;
          }
        } else {
          detail::ParkGate& gate = gates[victim];
          if (gate.engage_park(park_timeout)) {
            if (want_crash) {
              space.crash(victim);
              ++crashes;
            } else {
              schedule.engage(true);
              if (want_part) {
                cut_event(obs::EventKind::kPartitionCut);
                ++partitions;
              }
            }
            hold();
            if (want_crash) {
              space.restart(victim);  // runs the quorum resync
              ++resyncs;
            } else {
              schedule.engage(false);
              if (want_part) cut_event(obs::EventKind::kPartitionHeal);
              // Heal drop-window staleness with the same recovery path, so
              // rotating victims never accumulate into >f stale servers.
              space.resync(victim);
              ++resyncs;
            }
            gate.release();
          }
        }
      }
      // Sleep to the next window boundary.
      const std::uint64_t next = (schedule.window_at(schedule.now_ms()) + 1) *
                                 fcfg.period_ms;
      while (schedule.now_ms() < next && !st.stop_requested())
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (cfg.unparked) schedule.engage(false);
    byz_on.store(false, std::memory_order_relaxed);
  });

  // ----- checker loop (this thread): drain the live history into
  // quiescent-cut windows, gate on liveness, stop at the duration budget.
  // Natural quiescent instants are rare under saturating load, so every
  // checkpoint_ms ALL workers are parked for an instant — nothing in
  // flight, so the drain's watermark closes the whole buffer and the
  // checker gets a sound cut at a bounded cadence (lincheck/window.hpp).
  const auto t_start = Clock::now();
  const auto deadline = t_start + std::chrono::milliseconds(cfg.duration_ms);
  const auto handle_verdicts =
      [&](const std::vector<lincheck::WindowVerdict>& verdicts) {
        for (const auto& v : verdicts) {
          if (v.result.verdict == lincheck::Verdict::kViolation) {
            out.metrics.window_violations++;
            record_failure(
                "window [" + std::to_string(v.first_op) + ", " +
                std::to_string(v.last_op) + "] not linearizable (object " +
                v.result.detail + ", " + std::to_string(v.ops.size()) +
                " ops)");
          } else if (v.result.verdict ==
                     lincheck::Verdict::kBudgetExhausted) {
            out.metrics.windows_undecided++;
          }
        }
      };
  const auto checkpoint = [&] {
    std::vector<detail::ParkGate*> held;
    bool all = true;
    for (auto& [pid, gate] : gates) {
      if (gate.workers == 0) continue;
      if (gate.engage_park(std::chrono::milliseconds(1000))) {
        held.push_back(&gate);
      } else {
        all = false;  // stalled worker: skip the cut, liveness flags it
        break;
      }
    }
    if (all) checker.feed(rec.drain());
    for (detail::ParkGate* g : held) g->release();
    return all;
  };
  // Byzantine-register sampling: decoy reads accumulate into chunks that
  // go through the witness construction (a chunk of completed reads is a
  // valid correct-process sub-history; per-chunk checking samples the run
  // the same way windowing samples the honest history).
  std::vector<lincheck::Operation> byz_samples;
  std::uint64_t byz_checks = 0, byz_failures = 0;
  const auto byz_check = [&](bool flush) {
    if (decoy_regs.empty()) return;
    for (lincheck::Operation& op : byz_rec.drain_completed())
      byz_samples.push_back(std::move(op));
    if (byz_samples.empty() || (!flush && byz_samples.size() < 256)) return;
    const lincheck::ByzantineCheckResult res =
        lincheck::check_byzantine_authenticated(byz_samples, "0");
    ++byz_checks;
    if (!res.byzantine_linearizable &&
        res.verdict == lincheck::Verdict::kViolation) {
      ++byz_failures;
      record_failure("byzantine sample (" + std::to_string(byz_samples.size()) +
                     " decoy reads) not byzantine-linearizable: " + res.reason);
    }
    byz_samples.clear();
  };
  auto next_checkpoint =
      t_start + std::chrono::milliseconds(cfg.checkpoint_ms);
  while (Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (Clock::now() >= next_checkpoint) {
      checkpoint();
      next_checkpoint =
          Clock::now() + std::chrono::milliseconds(cfg.checkpoint_ms);
    } else {
      checker.feed(rec.drain());
    }
    handle_verdicts(checker.poll());
    byz_check(false);
    liveness.check();
  }

  // ----- shutdown: the fault driver first — joining it guarantees any
  // in-progress window is wound down (crashed victim restarted, drops
  // disengaged, gates released; its hold loops poll the stop token), so
  // workers are never left parked or mid-impairment. Then the workers,
  // then the final checker pass.
  fault_driver.request_stop();
  fault_driver = {};
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : workers) t.request_stop();
  for (auto& g : gates) g.second.force_release();
  // A worker that never returns is wedged INSIDE a blocking protocol op —
  // a liveness bug that joining would turn into a silent hang. Give the
  // stragglers a bounded grace, then name the stuck operations (the
  // pending snapshot is exact: invoked, never responded) and abort with
  // the repro line; a wedged workload cannot be unwound thread by thread.
  const auto grace = Clock::now() + std::chrono::milliseconds(
                                        std::max<std::uint64_t>(
                                            cfg.stall_budget_ms / 2, 2000));
  while (live_workers.load(std::memory_order_acquire) > 0 &&
         Clock::now() < grace)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  if (live_workers.load(std::memory_order_acquire) > 0) {
    std::cerr << "SOAK WEDGED (" << cfg.substrate << "): "
              << live_workers.load() << " worker(s) stuck in an operation:\n";
    for (const auto& op : rec.pending_snapshot())
      std::cerr << "  p" << op.pid << " " << op.name << "(" << op.object
                << (op.arg.empty() ? "" : ", " + op.arg) << ") invoked at ts "
                << op.invoke_ts << ", never responded\n";
    for (const auto& op : byz_rec.pending_snapshot())
      std::cerr << "  p" << op.pid << " " << op.name << "(" << op.object
                << ") [decoy audit] invoked at ts " << op.invoke_ts
                << ", never responded\n";
    // A deep in-flight backlog means the network is still churning and the
    // stall is starvation; a zero backlog means the protocol went silent.
    std::cerr << "  in-flight backlog: " << detail::queued_backlog(space)
              << " message(s) queued\n";
    // Flight-recorder forensics: which ladder stalled, and on which rung.
    const std::vector<obs::Event> events =
        obs::FlightRecorder::instance().snapshot();
    obs::wedge_report(std::cerr, events);
    const std::string trace_path = "soak_trace_" + cfg.substrate + ".txt";
    if (obs::write_trace_file(trace_path, events))
      std::cerr << "trace written to " << trace_path << "\n";
    std::cerr << "REPRO: " << cfg.repro_line() << std::endl;
    std::_Exit(3);
  }
  workers.clear();
  auditors.clear();
  for (auto& t : byz_agents) t.request_stop();
  byz_agents.clear();

  checker.feed(rec.drain());
  handle_verdicts(checker.finish());
  byz_check(/*flush=*/true);
  const LivenessMonitor::Report live = liveness.check();
  detail::set_injector(space, nullptr);

  // ----- metrics
  SoakMetrics& m = out.metrics;
  m.duration_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            t_start)
          .count());
  m.reads = reads.load();
  m.writes = writes.load();
  m.op_errors = errors.load();
  m.windows_checked = checker.windows_checked();
  m.liveness_violations = live.violations;
  m.max_stall_ms = live.max_stall_ms;
  const auto [dropped, delayed] = detail::fault_counts(space);
  m.messages_dropped = dropped;
  m.messages_delayed = delayed;
  m.crashes = crashes;
  m.resyncs = resyncs;
  m.partitions = partitions;
  m.op_retries = msgpass::detail::retry_counter().value() - retries0;
  m.op_timeouts = msgpass::detail::timeout_counter().value() - timeouts0;
  m.write_aborts = write_aborts.load();
  m.byz_reads = byz_reads.load();
  m.byz_checks = byz_checks;
  m.byz_failures = byz_failures;
  m.read_p50_us = read_hist.p50();
  m.read_p99_us = read_hist.p99();
  m.write_p50_us = write_hist.p50();
  m.write_p99_us = write_hist.p99();
  // Per-message-type traffic over this run (delta vs the start snapshot;
  // zero-traffic types pruned) and the protocol-phase latency histograms.
  for (const obs::CounterSnapshot& c : registry.counters("net.")) {
    const auto it = net_baseline.find(c.name);
    const std::uint64_t before = it == net_baseline.end() ? 0 : it->second;
    if (c.value > before) m.msg_counters.push_back({c.name, c.value - before});
  }
  for (const obs::HistogramSnapshot& h : registry.histograms("msgpass."))
    if (h.count > 0) m.phase_hists.push_back(h);
  if (live.violations > 0)
    record_failure("liveness: " + std::to_string(live.violations) +
                   " stall violation(s), max stall " +
                   std::to_string(live.max_stall_ms) + " ms");
  return out;
}

}  // namespace swsig::soak
