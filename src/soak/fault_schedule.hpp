// Seeded fault schedules for the soak harness.
//
// A FaultSchedule is the msgpass::FaultInjector the soak driver attaches
// to each Network: wall-clock time is divided into fixed windows, faults
// are active during the first `active_ms` of each window and quiet for the
// rest (so the system repeatedly heals), and every per-message decision is
// a pure function of (seed, window index, message fields) — replaying a
// run with the same seed and timing replays the same schedule shape, and
// the decision function itself is bit-for-bit reproducible (the
// determinism tests compare decide() outputs directly, with an injected
// clock).
//
// Schedule grammar (the --faults flag): '+'-separated subset of
//   drop       victim-targeted probabilistic message loss (needs the
//              engaged gate — see below — and a victim pool of at most f
//              processes)
//   delay      bounded hold of any message (loss-free)
//   reorder    receive-side reordering at every process (loss-free)
//   crash      every crash_every-th window crashes the window's victim
//              instead of dropping (driven by the soak driver, not by the
//              injector: crash/restart are Space operations)
//   partition  link cut isolating the window's victim for the whole active
//              phase: 100% loss on the cut links (vs drop's coin flips),
//              healed at the end of the window. The cut direction is
//              seeded per window — symmetric (both directions), inbound
//              (victim receives nothing), or asymmetric outbound (victim
//              is heard by no one, but hears everyone). A process is never
//              cut from itself (self-delivery models local computation).
// "none" (or "") disables everything.
//
// The engaged gate: without a retry layer, a drop or cut against a process
// with an in-flight blocking operation of its own would stall that
// operation forever (its quorum replies never re-arrive). Time decides
// WHEN a loss window is due; the driver decides IF it applies, by calling
// engage(true) — after parking the victim's client threads (parked mode),
// or permanently at start once the retry layer makes loss survivable
// (unparked mode; design note 14). Delay and reorder are loss-free and
// ignore the gate.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "msgpass/faults.hpp"
#include "msgpass/message.hpp"
#include "runtime/process.hpp"
#include "util/rng.hpp"

namespace swsig::soak {

struct FaultKinds {
  bool drop = false;
  bool delay = false;
  bool reorder = false;
  bool crash = false;
  bool partition = false;

  bool any() const { return drop || delay || reorder || crash || partition; }
  // Kinds whose application loses messages for a targeted process and so
  // must stay within the f budget (the victim rotation).
  bool impairing() const { return drop || crash || partition; }

  // Parses the '+'-separated grammar above; throws on an unknown token,
  // naming the valid kinds so a --faults typo is self-diagnosing.
  static FaultKinds parse(const std::string& spec) {
    FaultKinds k;
    if (spec.empty() || spec == "none") return k;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
      const std::size_t plus = spec.find('+', pos);
      const std::string tok =
          spec.substr(pos, plus == std::string::npos ? plus : plus - pos);
      if (tok == "drop") {
        k.drop = true;
      } else if (tok == "delay") {
        k.delay = true;
      } else if (tok == "reorder") {
        k.reorder = true;
      } else if (tok == "crash") {
        k.crash = true;
      } else if (tok == "partition") {
        k.partition = true;
      } else {
        throw std::invalid_argument(
            "unknown fault kind '" + tok + "' in schedule '" + spec +
            "' (valid: drop, delay, reorder, crash, partition, none)");
      }
      if (plus == std::string::npos) break;
      pos = plus + 1;
    }
    return k;
  }

  std::string to_string() const {
    std::string out;
    const auto add = [&](const char* name) {
      if (!out.empty()) out += "+";
      out += name;
    };
    if (drop) add("drop");
    if (delay) add("delay");
    if (reorder) add("reorder");
    if (crash) add("crash");
    if (partition) add("partition");
    return out.empty() ? "none" : out;
  }
};

// Direction of a partition window's link cut (seeded per window).
enum class PartitionMode : std::uint8_t {
  kSymmetric = 0,  // victim <-/-> everyone
  kInbound,        // everyone -/-> victim (victim still heard)
  kOutbound,       // victim -/-> everyone (victim still hears)
};

inline const char* partition_mode_name(PartitionMode m) {
  switch (m) {
    case PartitionMode::kSymmetric: return "symmetric";
    case PartitionMode::kInbound: return "inbound";
    case PartitionMode::kOutbound: return "outbound";
    default: return "?";
  }
}

struct FaultScheduleConfig {
  std::uint64_t seed = 1;
  FaultKinds kinds;
  // Rotation pool for impairing faults; the impaired set at any instant is
  // one pool member, so the pool models "which processes are flaky" and
  // must satisfy |pool| arbitrary but at most ONE impaired at a time — the
  // driver keeps the overall impaired set (crashed + drop victims + active
  // Byzantine processes) within f.
  std::vector<runtime::ProcessId> victims;
  std::uint64_t period_ms = 400;  // window length
  std::uint64_t active_ms = 150;  // faults active in each window's prefix
  std::uint64_t max_delay_ms = 4;
  std::uint32_t drop_permille = 400;   // P(drop) per victim-touching message
  std::uint32_t delay_permille = 150;  // P(delay) per message
  std::uint64_t crash_every = 4;       // every k-th window is a crash window
};

class FaultSchedule final : public msgpass::FaultInjector {
 public:
  explicit FaultSchedule(FaultScheduleConfig config)
      : config_(std::move(config)),
        epoch_(std::chrono::steady_clock::now()),
        now_ms_([this] {
          return static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - epoch_)
                  .count());
        }) {
    if (config_.period_ms == 0) config_.period_ms = 1;
    if (config_.active_ms > config_.period_ms)
      config_.active_ms = config_.period_ms;
    if (config_.crash_every == 0) config_.crash_every = 1;
  }

  // Tests inject a fake clock to make window boundaries exact.
  void set_clock(std::function<std::uint64_t()> now_ms) {
    now_ms_ = std::move(now_ms);
  }

  const FaultScheduleConfig& config() const { return config_; }

  // Current time on the schedule's clock (ms since construction, unless a
  // test injected its own clock). The driver uses this to align its window
  // loop with the injector's decisions.
  std::uint64_t now_ms() const { return now_ms_(); }

  std::uint64_t window_at(std::uint64_t now_ms) const {
    return now_ms / config_.period_ms;
  }

  bool active_at(std::uint64_t now_ms) const {
    return now_ms % config_.period_ms < config_.active_ms;
  }

  // The (single) process impaired during window w — seeded rotation over
  // the victim pool. kNoProcess when no impairing fault is scheduled.
  runtime::ProcessId victim_of(std::uint64_t window) const {
    if (config_.victims.empty() || !config_.kinds.impairing())
      return runtime::kNoProcess;
    return config_.victims[static_cast<std::size_t>(
        mix(config_.seed, window, kVictimSalt) % config_.victims.size())];
  }

  // Crash windows crash the victim instead of dropping its traffic.
  bool crash_window(std::uint64_t window) const {
    return config_.kinds.crash &&
           window % config_.crash_every == config_.crash_every - 1;
  }

  // Partition windows cut the victim's links for the whole active phase
  // (100% loss, vs drop's per-message coin flips). When drop is also
  // scheduled the two alternate on a seeded coin so both shapes occur;
  // crash windows take precedence over both.
  bool partition_window(std::uint64_t window) const {
    if (!config_.kinds.partition || crash_window(window)) return false;
    if (!config_.kinds.drop) return true;
    return mix(config_.seed, window, kPartitionSalt) % 2 == 0;
  }

  // The cut direction for a partition window — seeded so symmetric and
  // asymmetric cuts all occur over a long run.
  PartitionMode partition_mode(std::uint64_t window) const {
    return static_cast<PartitionMode>(
        mix(config_.seed, window, kPartitionSalt ^ kVictimSalt) % 3);
  }

  // Pure per-message decision at logical time now_ms: same (config, now
  // window, message) => same decision, on any run.
  msgpass::FaultDecision decide(std::uint64_t now_ms,
                                const msgpass::Message& m) const {
    msgpass::FaultDecision d;
    if (!active_at(now_ms)) return d;
    const std::uint64_t w = window_at(now_ms);
    const std::uint64_t h = message_hash(w, m);
    if (partition_window(w)) {
      const runtime::ProcessId victim = victim_of(w);
      // Self-delivery (from == to) is local computation, never cut.
      if (victim != runtime::kNoProcess && m.from != m.to) {
        bool cut = false;
        switch (partition_mode(w)) {
          case PartitionMode::kSymmetric:
            cut = m.from == victim || m.to == victim;
            break;
          case PartitionMode::kInbound:
            cut = m.to == victim;
            break;
          case PartitionMode::kOutbound:
            cut = m.from == victim;
            break;
        }
        if (cut) {
          d.drop = true;
          return d;
        }
      }
    } else if (config_.kinds.drop && !crash_window(w)) {
      const runtime::ProcessId victim = victim_of(w);
      if (victim != runtime::kNoProcess &&
          (m.from == victim || m.to == victim) &&
          h % 1000 < config_.drop_permille) {
        d.drop = true;
        return d;
      }
    }
    if (config_.kinds.delay && config_.max_delay_ms > 0 &&
        (h >> 10) % 1000 < config_.delay_permille) {
      d.delay = std::chrono::milliseconds(
          1 + static_cast<long>((h >> 20) % config_.max_delay_ms));
    }
    return d;
  }

  // Drops apply only while engaged (victim clients parked — see file
  // comment); loss-free faults always apply.
  void engage(bool on) { engaged_.store(on, std::memory_order_release); }
  bool engaged() const { return engaged_.load(std::memory_order_acquire); }

  // ------------------------------------------------- FaultInjector hooks

  msgpass::FaultDecision on_deliver(const msgpass::Message& m) override {
    msgpass::FaultDecision d = decide(now_ms_(), m);
    if (d.drop && !engaged()) d.drop = false;
    return d;
  }

  bool reorder(runtime::ProcessId) override {
    return config_.kinds.reorder && active_at(now_ms_());
  }

 private:
  static constexpr std::uint64_t kVictimSalt = 0x766963ULL;
  static constexpr std::uint64_t kPartitionSalt = 0x706172ULL;

  // Mixes the seed, window and message identity into one 64-bit draw.
  // splitmix64 chains give full avalanche; the type string is folded in
  // via FNV-1a so "ECHO" and "ACCEPT" for the same (sn, from, to) decide
  // independently.
  std::uint64_t message_hash(std::uint64_t window,
                             const msgpass::Message& m) const {
    std::uint64_t fnv = 0xcbf29ce484222325ULL;
    for (const char c : m.type)
      fnv = (fnv ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    std::uint64_t s = config_.seed;
    s = util::splitmix64(s) ^ window;
    s = util::splitmix64(s) ^ fnv;
    s = util::splitmix64(s) ^ (static_cast<std::uint64_t>(m.from) << 32 |
                               static_cast<std::uint64_t>(m.to));
    s = util::splitmix64(s) ^ m.sn;
    s = util::splitmix64(s) ^ static_cast<std::uint64_t>(m.reg);
    return util::splitmix64(s);
  }

  static std::uint64_t mix(std::uint64_t seed, std::uint64_t window,
                           std::uint64_t salt) {
    std::uint64_t s = seed;
    s = util::splitmix64(s) ^ window;
    s = util::splitmix64(s) ^ salt;
    return util::splitmix64(s);
  }

  FaultScheduleConfig config_;
  std::chrono::steady_clock::time_point epoch_;
  std::function<std::uint64_t()> now_ms_;
  std::atomic<bool> engaged_{false};
};

}  // namespace swsig::soak
