// Liveness gating for the soak harness, modeled on the liveness checker
// of YTsaurus's hydra stress tool: every client reports each completed
// operation; a monitor thread periodically scans time-since-last-success
// and flags any client stalled beyond its budget. Clients the driver
// parks on purpose (fault windows) detach first — a parked client is
// exempt, so only *unexpected* stalls count as violations.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace swsig::soak {

class LivenessMonitor {
 public:
  struct Options {
    // A client with no completed op for this long (while attached) is
    // stalled: one liveness violation, re-armed after it recovers.
    std::uint64_t stall_budget_ms = 10000;
    // Operation errors tolerated before error_budget_exceeded() trips.
    std::uint64_t error_budget = 0;
  };

  struct Report {
    std::uint64_t violations = 0;  // cumulative stall violations
    std::uint64_t errors = 0;      // cumulative operation errors
    std::uint64_t max_stall_ms = 0;  // high-water time-between-successes
    std::vector<std::string> stalled;  // clients currently over budget
  };

  explicit LivenessMonitor(Options options) : options_(options) {}

  // Registers `client` (idempotent) and arms its stall clock.
  void attach(const std::string& client) {
    std::scoped_lock lock(mu_);
    Client& c = clients_[client];
    c.attached = true;
    c.last_success = Clock::now();
    c.flagged = false;
  }

  // Parks `client`: exempt from stall detection until re-attached.
  void detach(const std::string& client) {
    std::scoped_lock lock(mu_);
    clients_[client].attached = false;
  }

  void success(const std::string& client) {
    const auto now = Clock::now();
    std::scoped_lock lock(mu_);
    Client& c = clients_[client];
    if (c.attached) {
      const std::uint64_t gap = ms_between(c.last_success, now);
      if (gap > max_stall_ms_) max_stall_ms_ = gap;
    }
    c.last_success = now;
    c.flagged = false;
  }

  void error(const std::string& client) {
    std::scoped_lock lock(mu_);
    ++errors_;
    clients_[client].flagged = false;
  }

  // Scans all attached clients; newly over-budget clients each add one
  // violation (and are not re-counted until they recover). Returns the
  // cumulative report.
  Report check() {
    const auto now = Clock::now();
    std::scoped_lock lock(mu_);
    Report r;
    for (auto& [name, c] : clients_) {
      if (!c.attached) continue;
      const std::uint64_t gap = ms_between(c.last_success, now);
      if (gap > max_stall_ms_) max_stall_ms_ = gap;
      if (gap > options_.stall_budget_ms) {
        r.stalled.push_back(name);
        if (!c.flagged) {
          c.flagged = true;
          ++violations_;
        }
      }
    }
    r.violations = violations_;
    r.errors = errors_;
    r.max_stall_ms = max_stall_ms_;
    return r;
  }

  bool error_budget_exceeded() const {
    std::scoped_lock lock(mu_);
    return errors_ > options_.error_budget;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Client {
    Clock::time_point last_success{};
    bool attached = false;
    bool flagged = false;  // currently counted as stalled
  };

  static std::uint64_t ms_between(Clock::time_point a, Clock::time_point b) {
    if (b <= a) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count());
  }

  const Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Client> clients_;
  std::uint64_t violations_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t max_stall_ms_ = 0;
};

}  // namespace swsig::soak
