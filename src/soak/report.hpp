// Soak run metrics: the throughput / latency / SLO summary one run emits,
// both human-readable and as bench-JSON (bench/baseline.hpp) so
// tools/bench_compare.py can track soak trajectories across commits.
#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "bench/baseline.hpp"
#include "obs/metrics.hpp"

namespace swsig::soak {

// Percentile over a latency sample (µs). Non-destructive; returns 0 on an
// empty sample.
inline double percentile_us(std::vector<double> sample, double p) {
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] + (sample[hi] - sample[lo]) * frac;
}

struct SoakMetrics {
  std::string substrate;  // "emulated" | "batched"
  std::uint64_t duration_ms = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t op_errors = 0;

  std::uint64_t windows_checked = 0;
  std::uint64_t window_violations = 0;
  std::uint64_t windows_undecided = 0;

  std::uint64_t liveness_violations = 0;
  std::uint64_t max_stall_ms = 0;

  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t crashes = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t partitions = 0;  // partition windows applied (cut+heal pairs)

  // Retry/abort layer activity: retried client ops, ops that hit their
  // overall deadline, and owner writes finalized as aborted by the
  // recovery fence (removed from the checked history per Definition 2).
  std::uint64_t op_retries = 0;
  std::uint64_t op_timeouts = 0;
  std::uint64_t write_aborts = 0;

  // Byzantine-register sampling (decoy reads through the
  // byzantine_completion witness construction).
  std::uint64_t byz_reads = 0;
  std::uint64_t byz_checks = 0;
  std::uint64_t byz_failures = 0;

  double read_p50_us = 0, read_p99_us = 0;
  double write_p50_us = 0, write_p99_us = 0;

  // Per-message-type traffic deltas over the run ("net.send.WRITE", ...)
  // and per-phase latency histograms ("msgpass.read_quorum_us", ...), both
  // sourced from the obs::MetricsRegistry by the runner. Zero-count
  // entries are pruned at capture time.
  std::vector<obs::CounterSnapshot> msg_counters;
  std::vector<obs::HistogramSnapshot> phase_hists;

  std::uint64_t total_ops() const { return reads + writes; }

  double ops_per_s() const {
    return duration_ms == 0
               ? 0
               : static_cast<double>(total_ops()) * 1000.0 /
                     static_cast<double>(duration_ms);
  }

  // SLO: the run is healthy iff nothing stalled, no sampled window failed
  // to linearize, no operation errored, and every Byzantine-register
  // sample admitted a witness completion. Retries, aborts and partitions
  // are NOT violations — they are the survivable faults being exercised.
  bool slo_ok() const {
    return liveness_violations == 0 && window_violations == 0 &&
           op_errors == 0 && byz_failures == 0;
  }

  void emit(bench::Reporter& rep) const {
    const std::string p = "soak." + substrate + ".";
    rep.metric(p + "ops_per_s", ops_per_s());
    rep.metric(p + "total_ops", static_cast<double>(total_ops()));
    rep.metric(p + "read_p50_us", read_p50_us);
    rep.metric(p + "read_p99_us", read_p99_us);
    rep.metric(p + "write_p50_us", write_p50_us);
    rep.metric(p + "write_p99_us", write_p99_us);
    rep.metric(p + "max_stall_ms", static_cast<double>(max_stall_ms));
    rep.metric(p + "windows_checked_ops",
               static_cast<double>(windows_checked));
    // SLO counters: hard zeros in a healthy run (lower is better).
    rep.metric(p + "slo.liveness_violations",
               static_cast<double>(liveness_violations));
    rep.metric(p + "slo.window_violations",
               static_cast<double>(window_violations));
    rep.metric(p + "slo.op_errors", static_cast<double>(op_errors));
    rep.metric(p + "slo.byz_failures", static_cast<double>(byz_failures));
    rep.metric(p + "op_retries", static_cast<double>(op_retries));
    rep.metric(p + "op_timeouts", static_cast<double>(op_timeouts));
    rep.metric(p + "write_aborts", static_cast<double>(write_aborts));
    rep.metric(p + "partitions", static_cast<double>(partitions));
    // Registry-sourced telemetry: per-message-type traffic and per-phase
    // latency quantiles. bench_compare only diffs keys present on both
    // sides, so these extend the baseline without invalidating it.
    for (const obs::CounterSnapshot& c : msg_counters)
      rep.metric(p + c.name, static_cast<double>(c.value));
    for (const obs::HistogramSnapshot& h : phase_hists) {
      rep.metric(p + h.name + ".p50", h.p50);
      rep.metric(p + h.name + ".p99", h.p99);
    }
  }

  void print(std::ostream& os) const {
    os << "[" << substrate << "] " << total_ops() << " ops in "
       << duration_ms << " ms (" << static_cast<std::uint64_t>(ops_per_s())
       << " ops/s; " << writes << " writes, " << reads << " reads, "
       << op_errors << " errors)\n"
       << "  latency us: read p50 " << read_p50_us << " p99 " << read_p99_us
       << "; write p50 " << write_p50_us << " p99 " << write_p99_us << "\n"
       << "  checker: " << windows_checked << " windows, "
       << window_violations << " violations, " << windows_undecided
       << " undecided\n"
       << "  liveness: " << liveness_violations << " violations, max stall "
       << max_stall_ms << " ms\n"
       << "  faults: " << messages_dropped << " dropped, "
       << messages_delayed << " delayed, " << crashes << " crashes, "
       << resyncs << " resyncs, " << partitions << " partitions\n"
       << "  retry layer: " << op_retries << " retries, " << op_timeouts
       << " timeouts, " << write_aborts << " write aborts\n";
    if (byz_reads > 0 || byz_checks > 0)
      os << "  byzantine sampling: " << byz_reads << " decoy reads, "
         << byz_checks << " witness checks, " << byz_failures
         << " failures\n";
    if (!msg_counters.empty()) {
      os << "  traffic:";
      for (const obs::CounterSnapshot& c : msg_counters)
        os << " " << c.name << "=" << c.value;
      os << "\n";
    }
    for (const obs::HistogramSnapshot& h : phase_hists)
      os << "  phase " << h.name << ": n=" << h.count << " p50=" << h.p50
         << "us p99=" << h.p99 << "us p999=" << h.p999 << "us\n";
    os << "  SLO: " << (slo_ok() ? "OK" : "VIOLATED") << "\n";
  }
};

}  // namespace swsig::soak
