// soak_driver: fault-injecting soak harness over the msgpass substrates.
//
//   soak_driver --duration 60 --faults drop+delay+crash --byzantine 1
//
// Runs the adversarial workload of soak/runner.hpp for the given budget on
// EmulatedSpace, BatchedEmulatedSpace, or both; prints the throughput /
// latency / SLO report and, with --json, dumps it in bench format for
// tools/bench_compare.py. Exit status 1 if any substrate missed its SLO —
// with the full reproduction line, so a failure is one command away from
// replay. docs/ARCHITECTURE.md design note 12 explains the architecture
// and how to read the numbers.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench/baseline.hpp"
#include "msgpass/batched_space.hpp"
#include "msgpass/emulated_swmr.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "soak/fault_schedule.hpp"
#include "soak/report.hpp"
#include "soak/runner.hpp"

namespace {

using swsig::soak::FaultKinds;
using swsig::soak::SoakConfig;
using swsig::soak::SoakOutcome;

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --duration SECONDS   wall-clock budget per substrate (default 60)\n"
      << "  --faults SPEC        '+'-separated fault schedule (default\n"
      << "                       drop+delay; 'none' disables). Kinds:\n"
      << "                         drop       victim-targeted message loss\n"
      << "                         delay      bounded hold of any message\n"
      << "                         reorder    receive-side reordering\n"
      << "                         crash      crash+restart the window's\n"
      << "                                    victim (owner recovery runs\n"
      << "                                    on restart)\n"
      << "                         partition  cut the victim's links for\n"
      << "                                    the active phase — symmetric\n"
      << "                                    or asymmetric per seeded\n"
      << "                                    window — healed at window end\n"
      << "                       Unknown kinds are rejected with the valid\n"
      << "                       list (no silent typos).\n"
      << "  --unparked           fault windows hit ACTIVE clients (owner\n"
      << "                       crashes mid-write included); the\n"
      << "                       retry/abort layer must carry them.\n"
      << "                       Default parks a victim's clients first.\n"
      << "  --byzantine K        Byzantine processes, <= f (default 0);\n"
      << "                       their decoy registers are sampled through\n"
      << "                       the byzantine_completion checker\n"
      << "  --pipeline-depth D   overlapping async writes per client burst\n"
      << "                       (default 1 = blocking writes; D > 1 makes\n"
      << "                       each write turn issue D write_asyncs on one\n"
      << "                       register and await them in order, so owner\n"
      << "                       crashes land mid-pipeline). Must be >= 1.\n"
      << "  --substrate S        emulated | batched | both (default both)\n"
      << "  --n N --f F          system size (default 4/1, n > 3f)\n"
      << "  --registers R        honest registers (default 2048)\n"
      << "  --clients C          worker threads (default 8)\n"
      << "  --seed S             schedule + workload seed (default 1)\n"
      << "  --json [PATH]        bench-JSON report (default BENCH_soak.json)\n";
  std::exit(2);
}

SoakOutcome run_one(const SoakConfig& cfg, swsig::bench::Reporter& rep) {
  std::cout << "soak: " << cfg.substrate << " n=" << cfg.n << " f=" << cfg.f
            << " registers=" << cfg.registers << " clients=" << cfg.clients
            << " faults=" << cfg.faults.to_string()
            << " byzantine=" << cfg.byzantine << " seed=" << cfg.seed
            << " duration=" << cfg.duration_ms / 1000 << "s"
            << (cfg.pipeline_depth > 1
                    ? " pipeline-depth=" + std::to_string(cfg.pipeline_depth)
                    : "")
            << (cfg.unparked ? " unparked" : "") << std::endl;
  SoakOutcome out;
  if (cfg.substrate == "emulated") {
    swsig::msgpass::EmulatedSpace::Options eopt;
    eopt.n = cfg.n;
    eopt.f = cfg.f;
    eopt.recover_on_restart = true;
    // The space's capacity gate must match the workload's burst depth, or
    // the (depth+1)-th write_async would just block behind the gate.
    eopt.pipeline_depth = cfg.pipeline_depth;
    swsig::msgpass::EmulatedSpace space(eopt);
    out = swsig::soak::run_soak(space, cfg);
    space.stop();
  } else {
    swsig::msgpass::BatchedEmulatedSpace::Options opt;
    opt.n = cfg.n;
    opt.f = cfg.f;
    opt.shards = 4;
    // Group-commit gate matches the workload's burst depth (see the
    // emulated branch above).
    opt.pipeline_depth = cfg.pipeline_depth;
    swsig::msgpass::BatchedEmulatedSpace space(opt);
    out = swsig::soak::run_soak(space, cfg);
    space.stop();
  }
  out.metrics.print(std::cout);
  out.metrics.emit(rep);
  if (!out.ok()) {
    std::cout << "SOAK FAILURE (" << cfg.substrate << "):\n";
    for (const auto& f : out.failures) std::cout << "  " << f << "\n";
    // SLO breach forensics: ladder correlation + last events to stderr,
    // full machine trace to a file CI uploads as a failure artifact.
    const std::vector<swsig::obs::Event> events =
        swsig::obs::FlightRecorder::instance().snapshot();
    swsig::obs::wedge_report(std::cerr, events);
    const std::string trace_path = "soak_trace_" + cfg.substrate + ".txt";
    if (swsig::obs::write_trace_file(trace_path, events))
      std::cerr << "trace written to " << trace_path << "\n";
    std::cout << "REPRO: " << cfg.repro_line() << std::endl;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  SoakConfig cfg;
  cfg.faults = FaultKinds::parse("drop+delay");
  std::string substrate = "both";
  swsig::bench::Reporter rep(argc, argv, "soak");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    try {
      if (arg == "--duration") {
        cfg.duration_ms = std::stoull(value()) * 1000;
      } else if (arg == "--faults") {
        cfg.faults = FaultKinds::parse(value());
      } else if (arg == "--unparked") {
        cfg.unparked = true;
      } else if (arg == "--byzantine") {
        cfg.byzantine = std::stoi(value());
      } else if (arg == "--substrate") {
        substrate = value();
      } else if (arg == "--n") {
        cfg.n = std::stoi(value());
      } else if (arg == "--f") {
        cfg.f = std::stoi(value());
      } else if (arg == "--registers") {
        cfg.registers = std::stoi(value());
      } else if (arg == "--clients") {
        cfg.clients = std::stoi(value());
      } else if (arg == "--pipeline-depth") {
        const std::string raw = value();
        cfg.pipeline_depth = std::stoi(raw);
        // Same contract as FaultKinds::parse: a bad value throws
        // invalid_argument and the handler below prints it with usage.
        if (cfg.pipeline_depth < 1)
          throw std::invalid_argument("invalid pipeline depth '" + raw +
                                      "': must be >= 1 (1 = blocking "
                                      "writes, >1 = overlapping bursts)");
      } else if (arg == "--seed") {
        cfg.seed = std::stoull(value());
      } else if (arg == "--json") {
        if (i + 1 < argc && argv[i + 1][0] != '-') ++i;  // Reporter took it
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
      } else {
        std::cerr << "unknown option " << arg << "\n";
        usage(argv[0]);
      }
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n";
      usage(argv[0]);
    }
  }
  if (cfg.n <= 3 * cfg.f || cfg.byzantine > cfg.f || cfg.byzantine < 0 ||
      cfg.registers < 1 || cfg.clients < 1) {
    std::cerr << "invalid configuration: need n > 3f, 0 <= byzantine <= f\n";
    return 2;
  }

  bool ok = true;
  if (substrate == "emulated" || substrate == "both") {
    SoakConfig c = cfg;
    c.substrate = "emulated";
    ok = run_one(c, rep).ok() && ok;
  }
  if (substrate == "batched" || substrate == "both") {
    SoakConfig c = cfg;
    c.substrate = "batched";
    ok = run_one(c, rep).ok() && ok;
  }
  if (substrate != "emulated" && substrate != "batched" &&
      substrate != "both") {
    std::cerr << "unknown substrate " << substrate << "\n";
    return 2;
  }
  return ok ? 0 : 1;
}
