// Register space: factory and home of all shared registers of one system
// instance. Routes every access through the StepController (the asynchrony
// model's preemption points), meters accesses, and enforces port ownership.
//
// Hot-path design (docs/ARCHITECTURE.md, "Storage engines & the free-mode
// fast path"):
//  * Storage is selected per payload type by RegisterStorage<T>: a seqlock
//    (lock-free read side) for trivially copyable T, a mutex otherwise.
//  * In free mode the step gate is devirtualized: Space caches whether its
//    controller is a FreeStepController at construction, and before_read/
//    before_write become a single relaxed fetch-add on a per-thread shard
//    (the metered access doubles as the step count — the controller pulls
//    the meters in steps()). Deterministic mode is byte-identical to the
//    virtual path: every access still parks on StepController::step().
//  * Every register carries a monotone version() (completed writes), and
//    the Space keeps a write epoch + condvar so idle helpers can park until
//    some register in the space is written (version-gated wakeup).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "registers/errors.hpp"
#include "registers/metrics.hpp"
#include "registers/storage.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"

namespace swsig::registers {

template <typename T, typename Storage = typename RegisterStorage<T>::type>
class Swmr;
template <typename T, typename Storage = typename RegisterStorage<T>::type>
class Swsr;

class Space {
 public:
  enum class Enforcement {
    kEnforcing,   // port violations throw PortViolation
    kPermissive,  // port checks disabled (micro-benchmarks only)
  };
  enum class Dispatch {
    kAuto,     // devirtualize the gate when the controller is free-mode
    kVirtual,  // always dispatch through StepController::step() (the
               // pre-optimization baseline; kept for benchmarks)
  };

  explicit Space(runtime::StepController& controller,
                 Enforcement mode = Enforcement::kEnforcing,
                 Dispatch dispatch = Dispatch::kAuto);
  ~Space();

  // Register-type aliases so algorithms can be parameterized over the
  // register substrate (shared memory here, message-passing emulation in
  // msgpass::EmulatedSpace).
  template <typename T>
  using SwmrFor = Swmr<T>;
  template <typename T>
  using SwsrFor = Swsr<T>;

  Space(const Space&) = delete;
  Space& operator=(const Space&) = delete;

  // Creates a single-writer multi-reader register owned by `owner`.
  // The returned reference lives as long as the Space.
  template <typename T>
  Swmr<T>& make_swmr(runtime::ProcessId owner, T initial, std::string name);

  // Creates a single-writer single-reader register (owner writes, exactly
  // `reader` may read).
  template <typename T>
  Swsr<T>& make_swsr(runtime::ProcessId owner, runtime::ProcessId reader,
                     T initial, std::string name);

  runtime::StepController& controller() { return *controller_; }
  Metrics& metrics() { return metrics_; }
  bool enforcing() const { return mode_ == Enforcement::kEnforcing; }

  // True when accesses take the devirtualized free-mode fast path. The
  // version-gated skip paths in the algorithms key off this: they are
  // observationally equivalent but change the exact step sequence, so they
  // must never run under a deterministic (or forced-virtual) controller.
  bool free_mode() const { return free_ != nullptr; }

  // Gate + meter, called by registers on every access. In free mode this
  // is a single relaxed fetch-add on a per-thread shard: the metered access
  // *is* the step (FreeStepController::steps() sums the meters).
  void before_read() {
    if (!free_) controller_->step();
    metrics_.on_read();
  }
  void before_write() {
    if (!free_) controller_->step();
    metrics_.on_write();
  }

  // ------------------------------------------------- write epoch / parking
  // Bumped after every completed register write in this space; helpers park
  // on it instead of busy-polling (core::FreeSystem). notify_write() is
  // called by the registers post-store, so a waiter that observes a changed
  // epoch also observes the written value.
  std::uint64_t write_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  // Missed-wakeup safety is the classic store-load (Dekker) argument over
  // the seq_cst total order: the notifier bumps the epoch then reads
  // waiters_; the waiter raises waiters_ then reads the epoch (both
  // predicate evaluations run under wait_mu_). Either the notifier's
  // waiters_ read sees the raised count — then it takes wait_mu_ (i.e.
  // serializes after the waiter's predicate check / atomically-released
  // sleep) and notifies — or the waiter's epoch read is ordered after the
  // bump and sees the new epoch, so it never sleeps.
  void notify_write() {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) > 0) {
      std::scoped_lock lock(wait_mu_);
      wait_cv_.notify_all();
    }
  }

  // Blocks until write_epoch() != seen or the timeout elapses; returns the
  // current epoch.
  std::uint64_t wait_write_epoch(std::uint64_t seen,
                                 std::chrono::microseconds timeout) {
    std::unique_lock lock(wait_mu_);
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    wait_cv_.wait_for(lock, timeout, [&] {
      return epoch_.load(std::memory_order_seq_cst) != seen;
    });
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    return write_epoch();
  }

  std::size_t register_count() const;

 private:
  struct RegisterBase {
    virtual ~RegisterBase() = default;
  };
  template <typename T>
  struct Holder;

  runtime::StepController* controller_;
  runtime::FreeStepController* free_ = nullptr;  // cached as_free()
  Enforcement mode_;
  Metrics metrics_;

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> waiters_{0};
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;

  mutable std::mutex mu_;  // guards registry_ during construction only
  std::vector<std::unique_ptr<RegisterBase>> registry_;
};

// ------------------------------------------------------------------- Swmr

// Atomic single-writer multi-reader register. Linearizability comes from
// the storage engine: a seqlock read/write window for trivially copyable
// payloads (readers retry, never block), one critical section on a mutex
// otherwise. In deterministic mode accesses are additionally serialized by
// the step gate.
template <typename T, typename Storage>
class Swmr {
 public:
  Swmr(Space& space, runtime::ProcessId owner, T initial, std::string name)
      : space_(&space),
        owner_(owner),
        name_(std::move(name)),
        storage_(std::move(initial)) {}

  // Readable by any process.
  T read() const {
    space_->before_read();
    return storage_.load();
  }

  // Writable only by the owner.
  void write(T v) {
    if (space_->enforcing() && runtime::ThisProcess::id() != owner_) {
      throw PortViolation("write to SWMR '" + name_ + "' owned by p" +
                          std::to_string(owner_) + " attempted by p" +
                          std::to_string(runtime::ThisProcess::id()));
    }
    space_->before_write();
    storage_.store(std::move(v));
    space_->notify_write();
  }

  // Atomic owner read-modify-write: applies `fn` to the stored value as one
  // linearizable step and returns a copy of the result. In the paper a
  // process's operation steps and Help() steps are sequential (§3.3), so an
  // owner read-then-write can never be interleaved by the same process; we
  // split those onto two threads, and update() restores that per-process
  // step atomicity (docs/ARCHITECTURE.md, design note 2). Other processes only
  // ever read this register, so to them update() is indistinguishable from
  // a plain write.
  template <typename F>
  T update(F&& fn) {
    if (space_->enforcing() && runtime::ThisProcess::id() != owner_) {
      throw PortViolation("update of SWMR '" + name_ + "' owned by p" +
                          std::to_string(owner_) + " attempted by p" +
                          std::to_string(runtime::ThisProcess::id()));
    }
    space_->before_write();
    T result = storage_.apply(std::forward<F>(fn));
    space_->notify_write();
    return result;
  }

  // Completed writes to this register; monotone. Reading the version is not
  // a register access in the model (no step, no meter): it exists so
  // pollers can skip re-reads that would observably return the same value.
  std::uint64_t version() const { return storage_.version(); }

  runtime::ProcessId owner() const { return owner_; }
  const std::string& name() const { return name_; }

 private:
  Space* space_;
  runtime::ProcessId owner_;
  std::string name_;
  Storage storage_;
};

// ------------------------------------------------------------------- Swsr

// Atomic single-writer single-reader register.
template <typename T, typename Storage>
class Swsr {
 public:
  Swsr(Space& space, runtime::ProcessId owner, runtime::ProcessId reader,
       T initial, std::string name)
      : space_(&space),
        owner_(owner),
        reader_(reader),
        name_(std::move(name)),
        storage_(std::move(initial)) {}

  T read() const {
    if (space_->enforcing() && runtime::ThisProcess::id() != reader_) {
      throw PortViolation("read of SWSR '" + name_ + "' readable by p" +
                          std::to_string(reader_) + " attempted by p" +
                          std::to_string(runtime::ThisProcess::id()));
    }
    space_->before_read();
    return storage_.load();
  }

  void write(T v) {
    if (space_->enforcing() && runtime::ThisProcess::id() != owner_) {
      throw PortViolation("write to SWSR '" + name_ + "' owned by p" +
                          std::to_string(owner_) + " attempted by p" +
                          std::to_string(runtime::ThisProcess::id()));
    }
    space_->before_write();
    storage_.store(std::move(v));
    space_->notify_write();
  }

  // See Swmr::version().
  std::uint64_t version() const { return storage_.version(); }

  runtime::ProcessId owner() const { return owner_; }
  runtime::ProcessId reader() const { return reader_; }
  const std::string& name() const { return name_; }

 private:
  Space* space_;
  runtime::ProcessId owner_;
  runtime::ProcessId reader_;
  std::string name_;
  Storage storage_;
};

// --------------------------------------------------------------- factories

template <typename T>
struct Space::Holder : Space::RegisterBase {
  template <typename... Args>
  explicit Holder(Args&&... args) : reg(std::forward<Args>(args)...) {}
  T reg;
};

template <typename T>
Swmr<T>& Space::make_swmr(runtime::ProcessId owner, T initial,
                          std::string name) {
  std::scoped_lock lock(mu_);
  auto holder = std::make_unique<Holder<Swmr<T>>>(*this, owner,
                                                  std::move(initial),
                                                  std::move(name));
  auto& reg = holder->reg;
  registry_.push_back(std::move(holder));
  return reg;
}

template <typename T>
Swsr<T>& Space::make_swsr(runtime::ProcessId owner, runtime::ProcessId reader,
                          T initial, std::string name) {
  std::scoped_lock lock(mu_);
  auto holder = std::make_unique<Holder<Swsr<T>>>(
      *this, owner, reader, std::move(initial), std::move(name));
  auto& reg = holder->reg;
  registry_.push_back(std::move(holder));
  return reg;
}

}  // namespace swsig::registers
