// Register space: factory and home of all shared registers of one system
// instance. Routes every access through the StepController (the asynchrony
// model's preemption points), meters accesses, and enforces port ownership.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "registers/errors.hpp"
#include "registers/metrics.hpp"
#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"

namespace swsig::registers {

template <typename T>
class Swmr;
template <typename T>
class Swsr;

class Space {
 public:
  enum class Enforcement {
    kEnforcing,   // port violations throw PortViolation
    kPermissive,  // port checks disabled (micro-benchmarks only)
  };

  explicit Space(runtime::StepController& controller,
                 Enforcement mode = Enforcement::kEnforcing);
  ~Space();

  // Register-type aliases so algorithms can be parameterized over the
  // register substrate (shared memory here, message-passing emulation in
  // msgpass::EmulatedSpace).
  template <typename T>
  using SwmrFor = Swmr<T>;
  template <typename T>
  using SwsrFor = Swsr<T>;

  Space(const Space&) = delete;
  Space& operator=(const Space&) = delete;

  // Creates a single-writer multi-reader register owned by `owner`.
  // The returned reference lives as long as the Space.
  template <typename T>
  Swmr<T>& make_swmr(runtime::ProcessId owner, T initial, std::string name);

  // Creates a single-writer single-reader register (owner writes, exactly
  // `reader` may read).
  template <typename T>
  Swsr<T>& make_swsr(runtime::ProcessId owner, runtime::ProcessId reader,
                     T initial, std::string name);

  runtime::StepController& controller() { return *controller_; }
  Metrics& metrics() { return metrics_; }
  bool enforcing() const { return mode_ == Enforcement::kEnforcing; }

  // Gate + meter, called by registers on every access.
  void before_read() {
    controller_->step();
    metrics_.on_read();
  }
  void before_write() {
    controller_->step();
    metrics_.on_write();
  }

  std::size_t register_count() const;

 private:
  struct RegisterBase {
    virtual ~RegisterBase() = default;
  };
  template <typename T>
  struct Holder;

  runtime::StepController* controller_;
  Enforcement mode_;
  Metrics metrics_;
  mutable std::mutex mu_;  // guards registry_ during construction only
  std::vector<std::unique_ptr<RegisterBase>> registry_;
};

// ------------------------------------------------------------------- Swmr

// Atomic single-writer multi-reader register. Linearizability comes for
// free: every access is a single critical section on one mutex, and in
// deterministic mode accesses are additionally serialized by the step gate.
template <typename T>
class Swmr {
 public:
  Swmr(Space& space, runtime::ProcessId owner, T initial, std::string name)
      : space_(&space),
        owner_(owner),
        name_(std::move(name)),
        value_(std::move(initial)) {}

  // Readable by any process.
  T read() const {
    space_->before_read();
    std::scoped_lock lock(mu_);
    return value_;
  }

  // Writable only by the owner.
  void write(T v) {
    if (space_->enforcing() && runtime::ThisProcess::id() != owner_) {
      throw PortViolation("write to SWMR '" + name_ + "' owned by p" +
                          std::to_string(owner_) + " attempted by p" +
                          std::to_string(runtime::ThisProcess::id()));
    }
    space_->before_write();
    std::scoped_lock lock(mu_);
    value_ = std::move(v);
  }

  // Atomic owner read-modify-write: applies `fn` to the stored value as one
  // linearizable step and returns a copy of the result. In the paper a
  // process's operation steps and Help() steps are sequential (§3.3), so an
  // owner read-then-write can never be interleaved by the same process; we
  // split those onto two threads, and update() restores that per-process
  // step atomicity (docs/ARCHITECTURE.md, design note 2). Other processes only
  // ever read this register, so to them update() is indistinguishable from
  // a plain write.
  template <typename F>
  T update(F&& fn) {
    if (space_->enforcing() && runtime::ThisProcess::id() != owner_) {
      throw PortViolation("update of SWMR '" + name_ + "' owned by p" +
                          std::to_string(owner_) + " attempted by p" +
                          std::to_string(runtime::ThisProcess::id()));
    }
    space_->before_write();
    std::scoped_lock lock(mu_);
    fn(value_);
    return value_;
  }

  runtime::ProcessId owner() const { return owner_; }
  const std::string& name() const { return name_; }

 private:
  Space* space_;
  runtime::ProcessId owner_;
  std::string name_;
  mutable std::mutex mu_;
  T value_;
};

// ------------------------------------------------------------------- Swsr

// Atomic single-writer single-reader register.
template <typename T>
class Swsr {
 public:
  Swsr(Space& space, runtime::ProcessId owner, runtime::ProcessId reader,
       T initial, std::string name)
      : space_(&space),
        owner_(owner),
        reader_(reader),
        name_(std::move(name)),
        value_(std::move(initial)) {}

  T read() const {
    if (space_->enforcing() && runtime::ThisProcess::id() != reader_) {
      throw PortViolation("read of SWSR '" + name_ + "' readable by p" +
                          std::to_string(reader_) + " attempted by p" +
                          std::to_string(runtime::ThisProcess::id()));
    }
    space_->before_read();
    std::scoped_lock lock(mu_);
    return value_;
  }

  void write(T v) {
    if (space_->enforcing() && runtime::ThisProcess::id() != owner_) {
      throw PortViolation("write to SWSR '" + name_ + "' owned by p" +
                          std::to_string(owner_) + " attempted by p" +
                          std::to_string(runtime::ThisProcess::id()));
    }
    space_->before_write();
    std::scoped_lock lock(mu_);
    value_ = std::move(v);
  }

  runtime::ProcessId owner() const { return owner_; }
  runtime::ProcessId reader() const { return reader_; }
  const std::string& name() const { return name_; }

 private:
  Space* space_;
  runtime::ProcessId owner_;
  runtime::ProcessId reader_;
  std::string name_;
  mutable std::mutex mu_;
  T value_;
};

// --------------------------------------------------------------- factories

template <typename T>
struct Space::Holder : Space::RegisterBase {
  template <typename... Args>
  explicit Holder(Args&&... args) : reg(std::forward<Args>(args)...) {}
  T reg;
};

template <typename T>
Swmr<T>& Space::make_swmr(runtime::ProcessId owner, T initial,
                          std::string name) {
  std::scoped_lock lock(mu_);
  auto holder = std::make_unique<Holder<Swmr<T>>>(*this, owner,
                                                  std::move(initial),
                                                  std::move(name));
  auto& reg = holder->reg;
  registry_.push_back(std::move(holder));
  return reg;
}

template <typename T>
Swsr<T>& Space::make_swsr(runtime::ProcessId owner, runtime::ProcessId reader,
                          T initial, std::string name) {
  std::scoped_lock lock(mu_);
  auto holder = std::make_unique<Holder<Swsr<T>>>(
      *this, owner, reader, std::move(initial), std::move(name));
  auto& reg = holder->reg;
  registry_.push_back(std::move(holder));
  return reg;
}

}  // namespace swsig::registers
