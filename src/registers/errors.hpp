// Error types for the register substrate.
#pragma once

#include <stdexcept>
#include <string>

namespace swsig::registers {

// Thrown when a thread accesses a register port the model forbids: writing
// a SWMR register it does not own, or reading a SWSR register as the wrong
// reader. This is the code-level form of the paper's write-port axiom
// (§1, Remark): even Byzantine processes cannot cross this line, so the
// enforcement is part of the substrate, not of any algorithm.
class PortViolation : public std::logic_error {
 public:
  explicit PortViolation(const std::string& what) : std::logic_error(what) {}
};

}  // namespace swsig::registers
