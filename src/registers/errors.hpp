// Error types for the register substrate.
#pragma once

#include <stdexcept>
#include <string>

namespace swsig::registers {

// Thrown when a thread accesses a register port the model forbids: writing
// a SWMR register it does not own, or reading a SWSR register as the wrong
// reader. This is the code-level form of the paper's write-port axiom
// (§1, Remark): even Byzantine processes cannot cross this line, so the
// enforcement is part of the substrate, not of any algorithm.
class PortViolation : public std::logic_error {
 public:
  explicit PortViolation(const std::string& what) : std::logic_error(what) {}
};

// Thrown when an operation exceeds its configured deadline
// (msgpass::RetryPolicy::op_timeout_ms). For reads this is always safe —
// a quorum read has no server-side effects to abandon. For writes it means
// the outcome is INDETERMINATE: the ladder may still deliver after the
// throw. Only the abort fence (WriteAborted below) gives a write a
// determinate negative outcome; op timeouts exist for callers that opted
// out of retries and accept indeterminacy (tests, bounded-latency probes).
class OpTimeout : public std::runtime_error {
 public:
  explicit OpTimeout(const std::string& what) : std::runtime_error(what) {}
};

// Thrown by a write whose owner crashed mid-ladder and whose recovery
// fence proved the value can never be delivered by any correct process
// (n−f servers attested "not delivered, and I will never support it").
// The write observably did NOT happen — no read, resync, or future quorum
// can surface the value — so the checker may drop the invocation under
// Definition 2's completion construction (HistoryRecorder::abort).
class WriteAborted : public std::runtime_error {
 public:
  explicit WriteAborted(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace swsig::registers
