// Storage engines behind Swmr/Swsr, selected at compile time by the
// RegisterStorage<T> trait:
//
//  * SeqlockStorage<T> — lock-free read side (registers/seqlock.hpp) for
//    trivially copyable T. Readers never block and never block the writer.
//    The model's write ports (enforced in Space::Enforcement::kEnforcing)
//    give a single writing *process*; a light writer-side mutex serializes
//    that process's op and Help() threads, which may both write (e.g. the
//    sticky register's E_1).
//  * MutexStorage<T>   — fallback for payloads with non-trivial copies
//    (sets, maps, strings): one mutex per register, as before.
//
// Both engines expose the same concept:
//   T load() const;                 // linearizable read
//   void store(T v);                // linearizable write (single writer)
//   T apply(fn);                    // owner read-modify-write, returns copy
//   std::uint64_t version() const;  // completed writes, monotone
//
// version() powers the version-gated helper wakeup: "version unchanged"
// implies "no write completed", so pollers (helpers, Verify retry loops)
// can skip re-reading a register without changing what they would observe.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <type_traits>
#include <utility>

#include "registers/seqlock.hpp"

namespace swsig::registers {

template <typename T>
class MutexStorage {
 public:
  explicit MutexStorage(T initial) : value_(std::move(initial)) {}

  T load() const {
    std::scoped_lock lock(mu_);
    return value_;
  }

  void store(T v) {
    {
      std::scoped_lock lock(mu_);
      value_ = std::move(v);
    }
    version_.fetch_add(1, std::memory_order_release);
  }

  template <typename F>
  T apply(F&& fn) {
    T out;
    {
      std::scoped_lock lock(mu_);
      fn(value_);
      out = value_;
    }
    version_.fetch_add(1, std::memory_order_release);
    return out;
  }

  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mu_;
  T value_;
  std::atomic<std::uint64_t> version_{0};
};

template <typename T>
  requires std::is_trivially_copyable_v<T>
class SeqlockStorage {
 public:
  explicit SeqlockStorage(T initial) : cell_(initial) {}

  T load() const { return cell_.read(); }

  void store(T v) {
    // The model has a single writing *process*, but that process may write
    // from two threads (its op thread and its Help() thread — e.g. the
    // sticky register's E_1, written at L2 and updated at L27). The writer
    // mutex serializes those; readers never touch it.
    std::scoped_lock lock(writer_mu_);
    cell_.write(v);
  }

  template <typename F>
  T apply(F&& fn) {
    // Owner read-modify-write, atomic against the owner's other writing
    // thread via the writer mutex (see store()); atomic for readers
    // because the write publishes the new value in one seqlock window.
    std::scoped_lock lock(writer_mu_);
    T v = cell_.read();  // no write in flight: we hold the writer mutex
    fn(v);
    cell_.write(v);
    return v;
  }

  std::uint64_t version() const { return cell_.version(); }

 private:
  std::mutex writer_mu_;
  SeqlockRegister<T> cell_;
};

// Trait: the storage engine Swmr<T>/Swsr<T> use by default. A constrained
// partial specialization (not std::conditional_t) so SeqlockStorage<T> is
// never even named for payloads that cannot satisfy its constraint.
template <typename T>
struct RegisterStorage {
  using type = MutexStorage<T>;
};

template <typename T>
  requires std::is_trivially_copyable_v<T>
struct RegisterStorage<T> {
  using type = SeqlockStorage<T>;
};

}  // namespace swsig::registers
