// Access metering for the register substrate. Benchmarks report register
// operations per implemented-object operation ("steps/op"), which is the
// machine-independent cost measure for these algorithms.
//
// Counters are sharded per thread (util::ShardedCounter) so that the hot
// path of a register access is one uncontended relaxed fetch_add instead of
// a bump on a counter shared by every thread in the system; snapshot()
// aggregates the shards. The observable API (reads/writes/snapshot/delta)
// is unchanged from the single-counter implementation.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "util/sharded_counter.hpp"

namespace swsig::registers {

class Metrics {
 public:
  void on_read() { reads_.add(); }
  void on_write() { writes_.add(); }

  std::uint64_t reads() const { return reads_.value(); }
  std::uint64_t writes() const { return writes_.value(); }
  std::uint64_t total() const { return reads() + writes(); }

  // Raw counters, for aggregation by the free-mode step accounting
  // (runtime::FreeStepController counts metered accesses as steps without
  // a second fetch_add on the hot path).
  const util::ShardedCounter& read_counter() const { return reads_; }
  const util::ShardedCounter& write_counter() const { return writes_; }

  struct Snapshot {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t total() const { return reads + writes; }
    Snapshot delta(const Snapshot& earlier) const {
      return {reads - earlier.reads, writes - earlier.writes};
    }
  };

  Snapshot snapshot() const { return {reads(), writes()}; }

  // Publishes this instance into `registry` as "<prefix>.reads" /
  // "<prefix>.writes" gauges. The counters stay here (the free-mode step
  // accounting aggregates the raw shards on its hot path); the registry
  // only reads them at snapshot time. The returned handles deregister on
  // destruction and must not outlive this Metrics.
  struct Published {
    obs::MetricsRegistry::GaugeHandle reads;
    obs::MetricsRegistry::GaugeHandle writes;
  };
  [[nodiscard]] Published publish(obs::MetricsRegistry& registry,
                                  const std::string& prefix) const {
    Published out;
    out.reads = registry.gauge(prefix + ".reads", [this] { return reads(); });
    out.writes =
        registry.gauge(prefix + ".writes", [this] { return writes(); });
    return out;
  }

 private:
  util::ShardedCounter reads_;
  util::ShardedCounter writes_;
};

}  // namespace swsig::registers
