// Access metering for the register substrate. Benchmarks report register
// operations per implemented-object operation ("steps/op"), which is the
// machine-independent cost measure for these algorithms.
#pragma once

#include <atomic>
#include <cstdint>

namespace swsig::registers {

class Metrics {
 public:
  void on_read() { reads_.fetch_add(1, std::memory_order_relaxed); }
  void on_write() { writes_.fetch_add(1, std::memory_order_relaxed); }

  std::uint64_t reads() const {
    return reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t writes() const {
    return writes_.load(std::memory_order_relaxed);
  }
  std::uint64_t total() const { return reads() + writes(); }

  struct Snapshot {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t total() const { return reads + writes; }
    Snapshot delta(const Snapshot& earlier) const {
      return {reads - earlier.reads, writes - earlier.writes};
    }
  };

  Snapshot snapshot() const { return {reads(), writes()}; }

 private:
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};
};

}  // namespace swsig::registers
