// Seqlock-based single-writer register for trivially copyable payloads.
//
// Originally the ablation substrate for experiment T10a (mutex vs seqlock
// register cost); now the default storage engine behind Swmr/Swsr for
// trivially copyable payloads (registers/storage.hpp). Readers never block
// the writer; a read retries while a write is in flight. The payload is
// stored as relaxed atomic words bracketed by acquire/release fences on the
// sequence counter — the classic data-race-free seqlock recipe (per C++
// Core Guidelines CP.100 we only hand-roll this because measuring it *is*
// the experiment).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <type_traits>

namespace swsig::registers {

template <typename T>
  requires std::is_trivially_copyable_v<T>
class SeqlockRegister {
 public:
  explicit SeqlockRegister(T initial = T{}) { unsafe_store(initial); }

  // Single writer.
  void write(const T& v) {
    const std::uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);  // odd: write in flight
    std::atomic_thread_fence(std::memory_order_release);
    store_words(v);
    seq_.store(s + 2, std::memory_order_release);  // even: stable
  }

  // Any number of readers. A storming writer can keep the sequence odd or
  // moving; after kSpinLimit raw retries the reader yields between attempts
  // (bounded backoff) so it cannot monopolize the writer's core and still
  // makes progress — every completed write leaves a stable even window.
  T read() const {
    int spins = 0;
    for (;;) {
      const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
      if (!(s1 & 1)) {  // even: no write in flight
        T out = load_words();
        std::atomic_thread_fence(std::memory_order_acquire);
        const std::uint64_t s2 = seq_.load(std::memory_order_relaxed);
        if (s1 == s2) return out;
      }
      if (++spins > kSpinLimit) std::this_thread::yield();
    }
  }

  // Number of completed writes; monotone. A changed version implies the
  // stored value may differ; an unchanged version implies no write has
  // completed since (a write in flight shows up once it completes).
  std::uint64_t version() const {
    return seq_.load(std::memory_order_acquire) >> 1;
  }

 private:
  static constexpr int kSpinLimit = 64;
  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

  void unsafe_store(const T& v) { store_words(v); }

  void store_words(const T& v) {
    std::array<std::uint64_t, kWords> buf{};
    std::memcpy(buf.data(), &v, sizeof(T));
    for (std::size_t i = 0; i < kWords; ++i)
      words_[i].store(buf[i], std::memory_order_relaxed);
  }

  T load_words() const {
    std::array<std::uint64_t, kWords> buf{};
    for (std::size_t i = 0; i < kWords; ++i)
      buf[i] = words_[i].load(std::memory_order_relaxed);
    T out;
    std::memcpy(&out, buf.data(), sizeof(T));
    return out;
  }

  std::atomic<std::uint64_t> seq_{0};
  std::array<std::atomic<std::uint64_t>, kWords> words_{};
};

}  // namespace swsig::registers
