#include "registers/space.hpp"

namespace swsig::registers {

Space::Space(runtime::StepController& controller, Enforcement mode)
    : controller_(&controller), mode_(mode) {}

Space::~Space() = default;

std::size_t Space::register_count() const {
  std::scoped_lock lock(mu_);
  return registry_.size();
}

}  // namespace swsig::registers
