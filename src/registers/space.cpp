#include "registers/space.hpp"

namespace swsig::registers {

Space::Space(runtime::StepController& controller, Enforcement mode,
             Dispatch dispatch)
    : controller_(&controller), mode_(mode) {
  if (dispatch == Dispatch::kAuto) {
    free_ = controller.as_free();
    if (free_) {
      // Free mode: a metered access *is* a step — the controller pulls the
      // meters on steps(), so the hot path pays exactly one fetch-add.
      free_->add_access_source(&metrics_.read_counter());
      free_->add_access_source(&metrics_.write_counter());
    }
  }
}

Space::~Space() {
  if (free_) {
    free_->remove_access_source(&metrics_.read_counter());
    free_->remove_access_source(&metrics_.write_counter());
  }
}

std::size_t Space::register_count() const {
  std::scoped_lock lock(mu_);
  return registry_.size();
}

}  // namespace swsig::registers
