// Reliable broadcast objects (Cohen–Keidar [5]) from shared registers.
//
// Interface: every process can broadcast a sequence of values; every
// process can attempt to deliver (sender, seq). Guarantees for correct
// processes: *integrity* (a delivered value for (sender, seq) was broadcast
// by sender, if sender is correct), *agreement / non-equivocation* (no two
// correct processes deliver different values for the same slot, even if
// the sender is Byzantine), and *relay* (once delivered by one correct
// process, a slot stays deliverable for everyone).
//
// Two interchangeable backends, the paper's §1/§2 story in code:
//   * StickyReliableBroadcast  — signature-free, n > 3f: one sticky
//     register per slot; broadcast = Write, deliver = Read. Agreement is
//     the register's uniqueness property, verbatim.
//   * SignedReliableBroadcast  — signatures + ack certificates, n > 2f
//     (Cohen–Keidar's regime): a sender's value is deliverable once it
//     carries n−f signed acknowledgments; two certificates for different
//     values cannot both exist because each correct process acknowledges
//     at most one value per slot and n−f quorums intersect in a correct
//     process when n > 2f.
//
// Values are std::uint64_t (applications encode what they need into it).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/sticky_register.hpp"
#include "core/types.hpp"
#include "core/version_gate.hpp"
#include "crypto/encoding.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signer.hpp"
#include "crypto/verified_cache.hpp"
#include "obs/recorder.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"

namespace swsig::broadcast {

using Value = std::uint64_t;

class ReliableBroadcast {
 public:
  virtual ~ReliableBroadcast() = default;
  // Broadcasts `value` in the caller's slot (caller pid, seq). seq is
  // 0-based and must be < max_broadcasts.
  virtual void broadcast(int seq, Value value) = 0;
  // Attempts to deliver (sender, seq); nullopt = nothing deliverable yet.
  virtual std::optional<Value> deliver(int sender, int seq) = 0;
  // One background helping round for the bound process (drives whatever
  // machinery the backend needs); returns true if it made progress.
  virtual bool help_round() = 0;
};

// --------------------------------------------------------------- sticky

class StickyReliableBroadcast final : public ReliableBroadcast {
 public:
  struct Config {
    int n = 4;
    int f = 1;  // needs n > 3f
    int max_broadcasts = 4;
  };

  StickyReliableBroadcast(registers::Space& space, Config config)
      : space_(&space), cfg_(config), epoch_gate_(config.n) {
    core::check_resilience(cfg_.n, cfg_.f);
    slots_.resize(static_cast<std::size_t>(cfg_.n) + 1);
    for (int sender = 1; sender <= cfg_.n; ++sender) {
      for (int seq = 0; seq < cfg_.max_broadcasts; ++seq) {
        core::StickyRegister<Value>::Config rc;
        rc.n = cfg_.n;
        rc.f = cfg_.f;
        slots_[static_cast<std::size_t>(sender)].push_back(
            std::make_unique<Slot>(space, rc, sender));
      }
    }
  }

  void broadcast(int seq, Value value) override {
    slot(runtime::ThisProcess::id(), seq).write(value);
  }

  std::optional<Value> deliver(int sender, int seq) override {
    return slot(sender, seq).read();
  }

  bool help_round() override {
    const int self = runtime::ThisProcess::id();
    // Version-gated wakeup (free mode): every event that can create helping
    // work (a broadcast, an echo, a reader's round bump) is a register
    // write in this space, so an unchanged space-wide write epoch since our
    // last completed round means all n × max_broadcasts slot rounds would
    // be no-ops — skip them.
    const bool gate = space_->free_mode();
    std::uint64_t epoch = 0;
    if (gate && !epoch_gate_.changed(*space_, self, epoch)) return false;
    bool any = false;
    for (int sender = 1; sender <= cfg_.n; ++sender)
      for (auto& s : slots_[static_cast<std::size_t>(sender)])
        any |= s->help(self);
    if (gate) epoch_gate_.record(self, epoch);
    return any;
  }

 private:
  // A sticky register whose writer is `sender` rather than p1: we remap
  // process identities so that the register's internal writer slot 1 is
  // the slot's sender. The identity remapping is a pure relabeling
  // (pi <-> p_sender swap), sound because the algorithm is symmetric in
  // process names.
  struct Slot {
    Slot(registers::Space& space, core::StickyRegister<Value>::Config rc,
         int sender_pid)
        : sender(sender_pid), reg(space, rc) {}

    void write(Value v) {
      runtime::ThisProcess::Binder bind(1);  // sender acts as the writer p1
      reg.write(v);
    }

    std::optional<Value> read() {
      const int self = runtime::ThisProcess::id();
      runtime::ThisProcess::Binder bind(mapped(self));
      if (mapped(self) == 1) {
        // The slot owner "reads its own slot": return its echo directly
        // (it knows what it wrote; ⊥ if nothing).
        return reg.raw().echo->at(1)->read();
      }
      return reg.read();
    }

    // Helping under the slot's relabeled identity.
    bool help(int real_pid) {
      runtime::ThisProcess::Binder bind(mapped(real_pid));
      return reg.help_round();
    }

    int mapped(int pid) const {
      if (pid == sender) return 1;
      if (pid == 1) return sender;
      return pid;
    }

    int sender;
    core::StickyRegister<Value> reg;
  };

  Slot& slot(int sender, int seq) {
    if (sender < 1 || sender > cfg_.n || seq < 0 ||
        seq >= cfg_.max_broadcasts)
      throw std::out_of_range("broadcast slot out of range");
    return *slots_[static_cast<std::size_t>(sender)]
                  [static_cast<std::size_t>(seq)];
  }

  registers::Space* space_;
  Config cfg_;
  std::vector<std::vector<std::unique_ptr<Slot>>> slots_;
  core::detail::SpaceEpochGate epoch_gate_;
};

// --------------------------------------------------------------- signed

class SignedReliableBroadcast final : public ReliableBroadcast {
 public:
  struct Config {
    int n = 4;
    int f = 1;  // needs n > 2f
    int max_broadcasts = 4;
  };

  struct Ack {
    Value value = 0;
    crypto::Signature sig;
    friend auto operator<=>(const Ack&, const Ack&) = default;
  };
  // sender's published record for one slot.
  struct Record {
    bool present = false;
    Value value = 0;
    crypto::Signature sig;                // sender's signature on value
    std::map<int, crypto::Signature> cert;  // acker pid -> ack signature
    friend auto operator<=>(const Record&, const Record&) = default;
  };
  // relayed records, keyed by (sender, seq)
  using RelayMap = std::map<std::pair<int, int>, Record>;

  SignedReliableBroadcast(registers::Space& space,
                          const crypto::SignatureAuthority& authority,
                          Config config)
      : space_(&space), auth_(&authority), cfg_(config),
        epoch_gate_(config.n) {
    if (cfg_.n <= 2 * cfg_.f)
      throw std::invalid_argument("signed broadcast needs n > 2f");
    publish_.resize(static_cast<std::size_t>(cfg_.n) + 1);
    acks_.resize(static_cast<std::size_t>(cfg_.n) + 1);
    relays_.resize(static_cast<std::size_t>(cfg_.n) + 1, nullptr);
    for (int pid = 1; pid <= cfg_.n; ++pid) {
      for (int seq = 0; seq < cfg_.max_broadcasts; ++seq) {
        publish_[static_cast<std::size_t>(pid)].push_back(
            &space.make_swmr<Record>(pid, {}, slot_name("pub", pid, seq)));
      }
      relays_[static_cast<std::size_t>(pid)] = &space.make_swmr<RelayMap>(
          pid, {}, "rly" + std::to_string(pid));
      acks_[static_cast<std::size_t>(pid)] = &space.make_swmr<AckMap>(
          pid, {}, "acks" + std::to_string(pid));
    }
  }

  // Two-phase: publish signed value, wait for n−f acks, publish the cert.
  void broadcast(int seq, Value value) override {
    const int self = runtime::ThisProcess::id();
    const std::string msg = slot_msg(self, seq, value);
    Record rec;
    rec.present = true;
    rec.value = value;
    rec.sig = auth_->sign(self, msg);
    publish_at(self, seq)->write(rec);
    // Wait for n−f acknowledgments (including our own, produced by our
    // helper) and assemble the certificate. Each pass batch-verifies the
    // candidate acks — one shared message digest, and previously-proven
    // signatures resolve from the verified cache instead of re-MACing.
    for (;;) {
      std::vector<std::pair<int, crypto::Signature>> candidates;
      for (int i = 1; i <= cfg_.n; ++i) {
        const AckMap am = acks_[static_cast<std::size_t>(i)]->read();
        const auto it = am.find({self, seq});
        if (it != am.end() && it->second.value == value &&
            it->second.sig.signer == i)
          candidates.emplace_back(i, it->second.sig);
      }
      std::vector<crypto::SignatureAuthority::VerifyEntry> entries;
      entries.reserve(candidates.size());
      for (const auto& [pid, sig] : candidates) entries.push_back({msg, &sig});
      auth_->verify_all(entries);
      std::map<int, crypto::Signature> cert;
      for (std::size_t idx = 0; idx < candidates.size(); ++idx)
        if (entries[idx].ok) cert[candidates[idx].first] = candidates[idx].second;
      if (static_cast<int>(cert.size()) >= cfg_.n - cfg_.f) {
        rec.cert = std::move(cert);
        publish_at(self, seq)->write(rec);
        return;
      }
      std::this_thread::yield();
    }
  }

  std::optional<Value> deliver(int sender, int seq) override {
    const int self = runtime::ThisProcess::id();
    // A certified record in the sender's register or anyone's relay.
    for (int holder = 0; holder <= cfg_.n; ++holder) {
      Record rec;
      if (holder == 0) {
        rec = publish_at(sender, seq)->read();
      } else {
        const RelayMap rm = relays_[static_cast<std::size_t>(holder)]->read();
        const auto it = rm.find({sender, seq});
        if (it == rm.end()) continue;
        rec = it->second;
      }
      if (!rec.present) continue;
      if (!valid_cert(sender, seq, rec)) continue;
      // Relay before delivering (the sender cannot later deny it).
      if (self >= 1 && self <= cfg_.n && self != sender)
        relays_[static_cast<std::size_t>(self)]->update([&](RelayMap& rm) {
          rm.emplace(std::pair{sender, seq}, rec);
        });
      return rec.value;
    }
    return std::nullopt;
  }

  // Helper: acknowledge the first valid signed value seen per slot.
  bool help_round() override {
    const int self = runtime::ThisProcess::id();
    // Same space-epoch skip as the sticky backend: a new publishable record
    // always arrives as a register write.
    const bool gate = space_->free_mode();
    std::uint64_t epoch = 0;
    if (gate && !epoch_gate_.changed(*space_, self, epoch)) return false;
    bool progress = false;
    for (int sender = 1; sender <= cfg_.n; ++sender) {
      for (int seq = 0; seq < cfg_.max_broadcasts; ++seq) {
        const Record rec = publish_at(sender, seq)->read();
        if (!rec.present) continue;
        const std::string msg = slot_msg(sender, seq, rec.value);
        if (rec.sig.signer != sender || !auth_->verify_cached(msg, rec.sig))
          continue;
        const AckMap mine = acks_[static_cast<std::size_t>(self)]->read();
        if (mine.contains({sender, seq})) continue;  // ack once per slot
        Ack ack;
        ack.value = rec.value;
        ack.sig = auth_->sign(self, msg);
        acks_[static_cast<std::size_t>(self)]->update(
            [&](AckMap& am) { am.emplace(std::pair{sender, seq}, ack); });
        progress = true;
      }
    }
    if (gate) epoch_gate_.record(self, epoch);
    return progress;
  }

 private:
  using AckMap = std::map<std::pair<int, int>, Ack>;

  static std::string slot_name(const char* kind, int pid, int seq) {
    return std::string(kind) + std::to_string(pid) + "." +
           std::to_string(seq);
  }
  // Framed signing statement for one slot: domain-tagged and
  // length-prefixed (crypto/encoding.hpp), so no two (sender, seq, value)
  // triples — and no statement of another protocol — share an encoding.
  static std::string slot_msg(int sender, int seq, Value value) {
    return crypto::encode_message("swsig.rb.slot", sender, seq, value);
  }

  // Digest committing to a record's full certificate: the slot statement
  // plus every aggregated (pid, sig.signer, tag) entry, in signer order.
  // The digest must commit to exactly what verify_all checks — including
  // sig.signer, which valid_cert compares against pid before verifying —
  // so a record with scrambled signer fields can never alias the digest
  // of a previously verified certificate. An interner hit therefore
  // implies this exact certificate was fully verified before.
  static crypto::Digest cert_digest(const std::string& msg,
                                    const Record& rec) {
    crypto::Sha256 h;
    std::string buf = crypto::encode_message("swsig.rb.cert", msg);
    for (const auto& [pid, sig] : rec.cert) {
      crypto::encode_field(buf, pid);
      crypto::encode_field(buf, sig.signer);
      crypto::encode_field(
          buf, std::string_view(reinterpret_cast<const char*>(sig.tag.data()),
                                sig.tag.size()));
    }
    h.update(buf);
    return h.finish();
  }

  registers::Swmr<Record>* publish_at(int pid, int seq) {
    return publish_[static_cast<std::size_t>(pid)]
                   [static_cast<std::size_t>(seq)];
  }

  // Validates a record's aggregate certificate. The first full validation
  // of a certificate interns its digest; every later check of the same
  // certificate — every deliver poll, every process — is one digest plus
  // one interner lookup instead of n−f signature verifications.
  bool valid_cert(int sender, int seq, const Record& rec) const {
    if (static_cast<int>(rec.cert.size()) < cfg_.n - cfg_.f) return false;
    const std::string msg = slot_msg(sender, seq, rec.value);
    const crypto::Digest digest = cert_digest(msg, rec);
    if (interner_.find(digest).has_value()) return true;
    std::vector<crypto::SignatureAuthority::VerifyEntry> entries;
    entries.reserve(rec.cert.size());
    for (const auto& [pid, sig] : rec.cert)
      if (sig.signer == pid) entries.push_back({msg, &sig});
    if (auth_->verify_all(entries) < static_cast<std::size_t>(cfg_.n - cfg_.f))
      return false;
    const std::uint64_t handle = interner_.intern(digest);
    obs::Event e;
    e.kind = obs::EventKind::kCertIntern;
    e.pid = static_cast<std::int16_t>(runtime::ThisProcess::id());
    e.origin = sender;
    e.sn = static_cast<std::uint64_t>(seq);
    e.aux = handle;
    obs::record(e);
    return true;
  }

  registers::Space* space_;
  const crypto::SignatureAuthority* auth_;
  Config cfg_;
  std::vector<std::vector<registers::Swmr<Record>*>> publish_;
  std::vector<registers::Swmr<AckMap>*> acks_;
  std::vector<registers::Swmr<RelayMap>*> relays_;
  core::detail::SpaceEpochGate epoch_gate_;
  mutable crypto::CertInterner interner_;
};

}  // namespace swsig::broadcast
