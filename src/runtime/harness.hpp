// Thread-group harness: spawns process-bound threads under a shared
// StepController and stop source, with clean join/stop semantics.
//
// Usage:
//   Harness h({.deterministic = true, .seed = 7});
//   h.spawn(1, "op",   [&](std::stop_token) { ... });
//   h.spawn(1, "help", [&](std::stop_token st) { while (!st.stop_requested()) ... });
//   h.start();                 // threads begin; deterministic grants start
//   h.join_role("op");         // wait for all operation threads to finish
//   h.request_stop();          // helpers observe the stop token and exit
//   h.join();                  // (also run by the destructor)
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "runtime/process.hpp"
#include "runtime/schedule_policy.hpp"
#include "runtime/step_controller.hpp"

namespace swsig::runtime {

class Harness {
 public:
  struct Options {
    bool deterministic = false;
    std::uint64_t seed = 1;
    // Policy for deterministic mode; default RoundRobinPolicy. Ignored in
    // free mode.
    std::shared_ptr<SchedulePolicy> policy;
  };

  Harness();
  explicit Harness(Options options);
  ~Harness();

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  StepController& controller() { return *controller_; }

  // Must be called before start(). The body runs on a new thread bound to
  // `pid` and attached to the controller.
  void spawn(ProcessId pid, std::string role,
             std::function<void(std::stop_token)> body);

  // Releases all spawned threads (and, in deterministic mode, arms the
  // controller with the final thread count).
  void start();

  void request_stop() { stop_source_.request_stop(); }

  // Waits for every thread whose role matches (e.g., all "op" threads).
  void join_role(const std::string& role);

  // Waits for all threads. Idempotent.
  void join();

  // Deterministic-mode trace hash (0 in free mode).
  std::uint64_t trace_hash() const;

 private:
  struct Entry {
    ProcessId pid;
    std::string role;
    std::thread thread;
    std::shared_ptr<std::promise<void>> done;
    std::shared_future<void> done_future;
  };

  Options options_;
  std::unique_ptr<StepController> controller_;
  std::promise<void> start_promise_;
  std::shared_future<void> start_future_;
  std::stop_source stop_source_;
  std::vector<Entry> entries_;
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace swsig::runtime
