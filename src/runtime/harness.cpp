#include "runtime/harness.hpp"

#include <stdexcept>

namespace swsig::runtime {

Harness::Harness() : Harness(Options{}) {}

Harness::Harness(Options options)
    : options_(std::move(options)), start_future_(start_promise_.get_future()) {
  if (options_.deterministic) {
    if (!options_.policy)
      options_.policy = std::make_shared<RoundRobinPolicy>();
    controller_ =
        std::make_unique<DeterministicStepController>(options_.policy);
  } else {
    controller_ = std::make_unique<FreeStepController>();
  }
}

Harness::~Harness() {
  request_stop();
  if (!started_) {
    // Threads are parked on the start gate; release them so they can run,
    // observe the stop token, and exit.
    start();
  }
  try {
    join();
  } catch (...) {
    // A thread body threw and the caller never join()ed explicitly; the
    // exception cannot escape a destructor. Tests call join() themselves.
  }
}

void Harness::spawn(ProcessId pid, std::string role,
                    std::function<void(std::stop_token)> body) {
  if (started_) throw std::logic_error("Harness::spawn after start()");
  auto done = std::make_shared<std::promise<void>>();
  Entry entry;
  entry.pid = pid;
  entry.role = role;
  entry.done = done;
  entry.done_future = done->get_future().share();
  auto start_gate = start_future_;
  auto stop_token = stop_source_.get_token();
  const int token = static_cast<int>(entries_.size()) + 1;
  entry.thread = std::thread([this, pid, role = std::move(role),
                              body = std::move(body), done, token,
                              start_gate = std::move(start_gate),
                              stop_token = std::move(stop_token)]() mutable {
    start_gate.wait();
    ThisProcess::Binder bind(pid);
    controller_->attach(pid, role, token);
    try {
      body(stop_token);
    } catch (...) {
      controller_->detach();
      done->set_exception(std::current_exception());
      return;
    }
    controller_->detach();
    done->set_value();
  });
  entries_.push_back(std::move(entry));
}

void Harness::start() {
  if (started_) return;
  started_ = true;
  if (auto* det = dynamic_cast<DeterministicStepController*>(controller_.get()))
    det->arm(entries_.size());
  start_promise_.set_value();
}

void Harness::join_role(const std::string& role) {
  if (!started_) throw std::logic_error("Harness::join_role before start()");
  for (auto& entry : entries_)
    if (entry.role == role) entry.done_future.wait();
}

void Harness::join() {
  if (joined_) return;
  joined_ = true;
  for (auto& entry : entries_)
    if (entry.thread.joinable()) entry.thread.join();
  // Propagate the first thread exception, if any, to the caller.
  for (auto& entry : entries_) entry.done_future.get();
}

std::uint64_t Harness::trace_hash() const {
  if (auto* det =
          dynamic_cast<const DeterministicStepController*>(controller_.get()))
    return det->trace_hash();
  return 0;
}

}  // namespace swsig::runtime
