// Asynchrony model: preemption points ("steps").
//
// Every shared-register access passes through StepController::step(). Two
// implementations give the two execution modes of the library:
//
//  * FreeStepController        — steps are free; threads run truly
//                                concurrently (benchmarks, stress tests).
//  * DeterministicStepController — exactly one attached thread proceeds at a
//                                time, chosen by a SchedulePolicy. A run is a
//                                pure function of (program, policy, seed), so
//                                interleavings are replayable; proof-style
//                                schedules (e.g., Fig. 1 of the paper) can be
//                                scripted with GatedPolicy.
//
// The deterministic controller grants a step only when every attached thread
// is parked at a gate ("quiescence"), which serializes execution without any
// dispatcher thread: the grant logic runs inside attach/detach/step of the
// participating threads themselves. Threads must therefore only block at
// gates (true for all algorithms in this library: busy-wait loops re-read
// registers, and every register access gates).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/process.hpp"
#include "util/sharded_counter.hpp"

namespace swsig::runtime {

struct ThreadInfo {
  int token = 0;
  ProcessId pid = kNoProcess;
  std::string role;  // "op", "help", "byz", ... (free-form, for policies)
};

class SchedulePolicy;
class FreeStepController;

class StepController {
 public:
  virtual ~StepController() = default;

  // Non-null iff this controller is a FreeStepController. Callers that gate
  // on every access (registers::Space) cache the result once so that the
  // free-mode hot path pays no virtual dispatch per step.
  virtual FreeStepController* as_free() { return nullptr; }

  // A thread announces itself before taking steps. Returns its token.
  // `preferred_token` (>= 1) fixes the token explicitly — the Harness
  // assigns tokens in spawn order so that deterministic schedules do not
  // depend on the racy order in which threads start up.
  virtual int attach(ProcessId pid, std::string role,
                     int preferred_token = -1) = 0;
  // A thread announces it will take no more steps.
  virtual void detach() = 0;
  // Preemption point. May block (deterministic mode) until granted.
  virtual void step() = 0;
  // Total steps granted/taken so far.
  virtual std::uint64_t steps() const = 0;
};

// Real concurrency; step() only counts. The count is sharded per thread so
// concurrent steppers never contend on one cache line, and a Space in free
// mode counts its metered accesses as steps directly (add_access_source)
// rather than paying a second fetch_add through the virtual gate — steps()
// reports both kinds.
class FreeStepController final : public StepController {
 public:
  FreeStepController* as_free() override { return this; }

  int attach(ProcessId pid, std::string role,
             int preferred_token = -1) override;
  void detach() override;
  void step() override { count_.add(); }
  std::uint64_t steps() const override;

  // Registers an external access counter whose value counts as steps taken
  // through this controller (a free-mode Space registers its read/write
  // meters). The counter must outlive the registration; callers remove it
  // before destruction.
  void add_access_source(const util::ShardedCounter* counter);
  void remove_access_source(const util::ShardedCounter* counter);

 private:
  std::atomic<int> next_token_{1};
  util::ShardedCounter count_;
  mutable std::mutex sources_mu_;
  std::vector<const util::ShardedCounter*> sources_;
};

// Serialized, policy-driven interleaving.
class DeterministicStepController final : public StepController {
 public:
  // No step is granted until arm() fixes the expected thread count and that
  // many threads have attached, making the initial grant independent of
  // thread start-up races.
  explicit DeterministicStepController(std::shared_ptr<SchedulePolicy> policy);
  ~DeterministicStepController() override;

  // Fixes the number of threads that must attach before scheduling begins.
  void arm(std::size_t expected_threads);

  int attach(ProcessId pid, std::string role,
             int preferred_token = -1) override;
  void detach() override;
  void step() override;
  std::uint64_t steps() const override;

  // FNV-1a hash of the granted (token, pid) sequence; equal seeds must give
  // equal hashes (tested), which is the determinism guarantee.
  std::uint64_t trace_hash() const;

 private:
  void maybe_grant(std::unique_lock<std::mutex>& lock);

  std::shared_ptr<SchedulePolicy> policy_;
  bool armed_ = false;
  std::size_t expected_threads_ = 0;
  bool started_ = false;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int next_token_ = 1;
  std::map<int, ThreadInfo> attached_;  // token -> info (ordered => stable)
  std::map<int, ThreadInfo> waiting_;   // subset of attached_
  int granted_ = -1;                    // token currently allowed to run
  std::uint64_t step_count_ = 0;
  std::uint64_t trace_hash_ = 1469598103934665603ULL;  // FNV offset basis
};

}  // namespace swsig::runtime
