// Scheduling policies for DeterministicStepController.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "runtime/process.hpp"
#include "runtime/step_controller.hpp"
#include "util/rng.hpp"

namespace swsig::runtime {

// Chooses, among the threads currently parked at a gate, which one runs
// next. `waiting` is sorted by token (stable across runs); the return value
// is an index into `waiting`. Called under the controller's mutex.
class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;
  virtual std::size_t choose(const std::vector<ThreadInfo>& waiting,
                             std::uint64_t step_no) = 0;
};

// Cycles through threads by token.
class RoundRobinPolicy final : public SchedulePolicy {
 public:
  std::size_t choose(const std::vector<ThreadInfo>& waiting,
                     std::uint64_t step_no) override;

 private:
  int last_token_ = -1;
};

// Uniformly random thread each step (seeded => reproducible).
class RandomPolicy final : public SchedulePolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}
  std::size_t choose(const std::vector<ThreadInfo>& waiting,
                     std::uint64_t step_no) override;

 private:
  util::Rng rng_;
};

// Restricts scheduling to an "enabled" set of processes; used to model the
// paper's proof schedules where some processes are asleep (take no steps,
// Fig. 1). Falls back to the full waiting set if no enabled thread is
// waiting, so a misconfigured script cannot deadlock the run; the fallback
// count is exposed so tests can assert it stayed at zero.
class GatedPolicy final : public SchedulePolicy {
 public:
  GatedPolicy(std::shared_ptr<SchedulePolicy> inner,
              std::set<ProcessId> enabled);

  std::size_t choose(const std::vector<ThreadInfo>& waiting,
                     std::uint64_t step_no) override;

  void enable(ProcessId pid);
  void disable(ProcessId pid);
  void set_enabled(std::set<ProcessId> enabled);
  std::uint64_t fallback_grants() const;

 private:
  std::shared_ptr<SchedulePolicy> inner_;
  mutable std::mutex mu_;
  std::set<ProcessId> enabled_;
  std::uint64_t fallback_grants_ = 0;
};

}  // namespace swsig::runtime
