#include "runtime/schedule_policy.hpp"

#include <algorithm>

namespace swsig::runtime {

std::size_t RoundRobinPolicy::choose(const std::vector<ThreadInfo>& waiting,
                                     std::uint64_t /*step_no*/) {
  // Pick the first waiting token strictly greater than the last one granted,
  // wrapping around; gives a fair cyclic order even as threads come and go.
  std::size_t best = 0;
  bool found = false;
  for (std::size_t i = 0; i < waiting.size(); ++i) {
    if (waiting[i].token > last_token_) {
      best = i;
      found = true;
      break;
    }
  }
  if (!found) best = 0;  // wrap
  last_token_ = waiting[best].token;
  return best;
}

std::size_t RandomPolicy::choose(const std::vector<ThreadInfo>& waiting,
                                 std::uint64_t /*step_no*/) {
  return static_cast<std::size_t>(rng_.uniform(0, waiting.size() - 1));
}

GatedPolicy::GatedPolicy(std::shared_ptr<SchedulePolicy> inner,
                         std::set<ProcessId> enabled)
    : inner_(std::move(inner)), enabled_(std::move(enabled)) {}

std::size_t GatedPolicy::choose(const std::vector<ThreadInfo>& waiting,
                                std::uint64_t step_no) {
  std::scoped_lock lock(mu_);
  std::vector<ThreadInfo> eligible;
  std::vector<std::size_t> back_map;
  for (std::size_t i = 0; i < waiting.size(); ++i) {
    if (enabled_.contains(waiting[i].pid)) {
      eligible.push_back(waiting[i]);
      back_map.push_back(i);
    }
  }
  if (eligible.empty()) {
    ++fallback_grants_;
    return inner_->choose(waiting, step_no);
  }
  const std::size_t idx = inner_->choose(eligible, step_no);
  return back_map[idx];
}

void GatedPolicy::enable(ProcessId pid) {
  std::scoped_lock lock(mu_);
  enabled_.insert(pid);
}

void GatedPolicy::disable(ProcessId pid) {
  std::scoped_lock lock(mu_);
  enabled_.erase(pid);
}

void GatedPolicy::set_enabled(std::set<ProcessId> enabled) {
  std::scoped_lock lock(mu_);
  enabled_ = std::move(enabled);
}

std::uint64_t GatedPolicy::fallback_grants() const {
  std::scoped_lock lock(mu_);
  return fallback_grants_;
}

}  // namespace swsig::runtime
