#include "runtime/step_controller.hpp"

#include <cassert>
#include <stdexcept>

#include "runtime/schedule_policy.hpp"

namespace swsig::runtime {

namespace {

// Which controller the current thread is attached to, and under which token.
// A thread interacts with at most one controller at a time (asserted).
thread_local const void* tls_controller = nullptr;
thread_local int tls_token = 0;

}  // namespace

// ---------------------------------------------------------------- Free mode

int FreeStepController::attach(ProcessId /*pid*/, std::string /*role*/,
                               int preferred_token) {
  if (preferred_token >= 1) return preferred_token;
  return next_token_.fetch_add(1, std::memory_order_relaxed);
}

void FreeStepController::detach() {}

std::uint64_t FreeStepController::steps() const {
  std::uint64_t total = count_.value();
  std::scoped_lock lock(sources_mu_);
  for (const auto* src : sources_) total += src->value();
  return total;
}

void FreeStepController::add_access_source(
    const util::ShardedCounter* counter) {
  std::scoped_lock lock(sources_mu_);
  sources_.push_back(counter);
}

void FreeStepController::remove_access_source(
    const util::ShardedCounter* counter) {
  std::scoped_lock lock(sources_mu_);
  std::erase(sources_, counter);
}

// ------------------------------------------------------- Deterministic mode

DeterministicStepController::DeterministicStepController(
    std::shared_ptr<SchedulePolicy> policy)
    : policy_(std::move(policy)) {
  if (!policy_)
    throw std::invalid_argument("DeterministicStepController: null policy");
}

DeterministicStepController::~DeterministicStepController() = default;

void DeterministicStepController::arm(std::size_t expected_threads) {
  std::unique_lock lock(mu_);
  armed_ = true;
  expected_threads_ = expected_threads;
  if (attached_.size() >= expected_threads_) started_ = true;
  maybe_grant(lock);
}

int DeterministicStepController::attach(ProcessId pid, std::string role,
                                        int preferred_token) {
  std::unique_lock lock(mu_);
  assert(tls_controller == nullptr &&
         "thread already attached to a controller");
  const int token =
      preferred_token >= 1 ? preferred_token : next_token_++;
  assert(!attached_.contains(token) && "duplicate token");
  attached_.emplace(token, ThreadInfo{token, pid, std::move(role)});
  tls_controller = this;
  tls_token = token;
  if (armed_ && !started_ && attached_.size() >= expected_threads_)
    started_ = true;
  maybe_grant(lock);
  return token;
}

void DeterministicStepController::detach() {
  std::unique_lock lock(mu_);
  assert(tls_controller == this && "detach from a controller never attached");
  attached_.erase(tls_token);
  waiting_.erase(tls_token);
  tls_controller = nullptr;
  tls_token = 0;
  maybe_grant(lock);
}

void DeterministicStepController::step() {
  std::unique_lock lock(mu_);
  assert(tls_controller == this && "step on a controller never attached");
  const int token = tls_token;
  waiting_.emplace(token, attached_.at(token));
  maybe_grant(lock);
  cv_.wait(lock, [&] { return granted_ == token; });
  granted_ = -1;
  waiting_.erase(token);
}

std::uint64_t DeterministicStepController::steps() const {
  std::unique_lock lock(mu_);
  return step_count_;
}

std::uint64_t DeterministicStepController::trace_hash() const {
  std::unique_lock lock(mu_);
  return trace_hash_;
}

void DeterministicStepController::maybe_grant(
    std::unique_lock<std::mutex>& /*lock*/) {
  if (!started_ || granted_ != -1 || waiting_.empty()) return;
  if (waiting_.size() != attached_.size()) return;  // someone still running

  std::vector<ThreadInfo> snapshot;
  snapshot.reserve(waiting_.size());
  for (const auto& [token, info] : waiting_) snapshot.push_back(info);

  const std::size_t index = policy_->choose(snapshot, step_count_);
  assert(index < snapshot.size() && "policy returned out-of-range index");
  const ThreadInfo& chosen = snapshot[index];
  granted_ = chosen.token;
  ++step_count_;

  // FNV-1a over (token, pid) pairs.
  auto mix = [this](std::uint64_t v) {
    trace_hash_ ^= v;
    trace_hash_ *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(chosen.token));
  mix(static_cast<std::uint64_t>(chosen.pid));

  cv_.notify_all();
}

}  // namespace swsig::runtime
