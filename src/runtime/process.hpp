// Process identity.
//
// The paper's model (§3) has n asynchronous processes p1..pn. We model a
// process as one or more OS threads bound to a `ProcessId` (an operation
// thread plus a background Help() thread, both acting as the same process).
// The binding is thread-local and RAII-scoped; the register layer uses it to
// enforce the model's key axiom that "no process, even a Byzantine one, can
// access the write port of a SWMR register it does not own" (§1, Remark).
#pragma once

#include <cassert>

namespace swsig::runtime {

// 1-based like the paper (p1 is the writer in all three algorithms).
using ProcessId = int;

inline constexpr ProcessId kNoProcess = 0;

namespace detail {
inline thread_local ProcessId tls_process_id = kNoProcess;
}  // namespace detail

class ThisProcess {
 public:
  // Identity of the process the calling thread is acting as (kNoProcess if
  // the thread is unbound, e.g., a test driver doing setup).
  static ProcessId id() { return detail::tls_process_id; }

  // RAII binder: while alive, the current thread acts as `pid`.
  class Binder {
   public:
    explicit Binder(ProcessId pid) : previous_(detail::tls_process_id) {
      detail::tls_process_id = pid;
    }
    ~Binder() { detail::tls_process_id = previous_; }
    Binder(const Binder&) = delete;
    Binder& operator=(const Binder&) = delete;

   private:
    ProcessId previous_;
  };
};

}  // namespace swsig::runtime
