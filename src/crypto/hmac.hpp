// HMAC-SHA256 (RFC 2104 / RFC 4231). Used by the signature oracle as the
// tag function; verified against RFC 4231 test vectors.
//
// Two entry points:
//  * hmac_sha256(key, message) — one-shot; derives the 64-byte key block
//    and ipad/opad schedules on every call (the seed-era path, kept for
//    callers without a long-lived key).
//  * HmacSchedule + hmac_sha256(schedule, message) — the key block is
//    XOR-folded once and the two SHA-256 compressions of the ipad/opad
//    blocks are precomputed as resumable midstates; each MAC then costs
//    two midstate copies plus the message/digest compressions. This is
//    what SignatureAuthority holds per process key (the keys live for the
//    authority's lifetime, so re-deriving the schedule per call was pure
//    waste — measured in bench_crypto T11d).
#pragma once

#include <string>
#include <string_view>

#include "crypto/sha256.hpp"

namespace swsig::crypto {

// Precomputed per-key HMAC state: SHA-256 midstates with the ipad (inner)
// and opad (outer) blocks already compressed.
class HmacSchedule {
 public:
  HmacSchedule() = default;
  explicit HmacSchedule(std::string_view key);

  const Sha256& inner() const { return inner_; }
  const Sha256& outer() const { return outer_; }

 private:
  Sha256 inner_;
  Sha256 outer_;
};

// Computes HMAC-SHA256(key, message), deriving the key schedule inline.
Digest hmac_sha256(std::string_view key, std::string_view message);

// Computes HMAC-SHA256 with a precomputed key schedule; bit-identical to
// the one-shot form for the schedule's key.
Digest hmac_sha256(const HmacSchedule& schedule, std::string_view message);

}  // namespace swsig::crypto
