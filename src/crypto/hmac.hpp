// HMAC-SHA256 (RFC 2104 / RFC 4231). Used by the signature oracle as the
// tag function; verified against RFC 4231 test vectors.
#pragma once

#include <string>
#include <string_view>

#include "crypto/sha256.hpp"

namespace swsig::crypto {

// Computes HMAC-SHA256(key, message).
Digest hmac_sha256(std::string_view key, std::string_view message);

}  // namespace swsig::crypto
