#include "crypto/hmac.hpp"

#include <array>

namespace swsig::crypto {

namespace {

constexpr std::size_t kBlock = 64;

std::array<std::uint8_t, kBlock> fold_key(std::string_view key) {
  std::array<std::uint8_t, kBlock> k{};
  if (key.size() > kBlock) {
    const Digest kd = Sha256::hash(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  return k;
}

}  // namespace

HmacSchedule::HmacSchedule(std::string_view key) {
  const std::array<std::uint8_t, kBlock> k = fold_key(key);
  std::array<std::uint8_t, kBlock> ipad{}, opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  inner_.update(ipad.data(), kBlock);
  outer_.update(opad.data(), kBlock);
}

Digest hmac_sha256(const HmacSchedule& schedule, std::string_view message) {
  Sha256 inner = schedule.inner();  // midstate copy: ipad block compressed
  inner.update(message.data(), message.size());
  const Digest inner_digest = inner.finish();

  Sha256 outer = schedule.outer();
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

Digest hmac_sha256(std::string_view key, std::string_view message) {
  return hmac_sha256(HmacSchedule(key), message);
}

}  // namespace swsig::crypto
