// Oracle-enforced unforgeable signatures (substitution S8 in
// docs/ARCHITECTURE.md).
//
// The paper assumes signatures whose forgery is computationally hard
// (footnote 1). Offline we have no PKI, so we *enforce* unforgeability
// structurally: a SignatureAuthority holds every process's secret key and
// never reveals it; sign(pid, m) is only honored for the process the
// calling thread is bound to (same thread-identity mechanism the register
// ports use). A Byzantine process can therefore sign anything *as itself* —
// "you can lie" — but cannot produce another process's signature. Tags are
// real HMAC-SHA256 computations so the baseline pays realistic hashing
// cost; kSlowPk mode multiplies the work to model public-key signatures
// (calibrated in bench T11).
//
// Verification cost model (design note 16):
//  * per-key HMAC schedules are precomputed at construction — a tag costs
//    two midstate copies, not a key-block + ipad/opad rebuild;
//  * verify_cached() memoizes POSITIVE verdicts in a VerifiedCache keyed
//    by (signer, SHA-256(message), tag) — each long-lived certificate
//    signature costs one HMAC per OS process per lifetime;
//  * verify_all() batch-verifies the k signatures a quorum round carries,
//    computing the shared message digest once for runs that sign the same
//    message (the common case: one statement, n−f witness signatures).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/encoding.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/verified_cache.hpp"
#include "runtime/process.hpp"

namespace swsig::crypto {

struct Signature {
  runtime::ProcessId signer = runtime::kNoProcess;
  Digest tag{};

  friend auto operator<=>(const Signature&, const Signature&) = default;
};

class SignatureAuthority {
 public:
  enum class Mode {
    kHmac,    // one HMAC per sign/verify
    kSlowPk,  // pk_iterations chained HMACs (public-key cost model)
  };

  struct Options {
    int n = 4;                 // processes p1..pn
    std::uint64_t seed = 1;    // key material derivation
    Mode mode = Mode::kHmac;
    int pk_iterations = 64;    // extra work factor in kSlowPk mode
  };

  explicit SignatureAuthority(Options options);

  // Signs `message` as process `signer`. Throws ForgeryAttempt if the
  // calling thread is not bound as `signer` — this is the unforgeability
  // guarantee.
  Signature sign(runtime::ProcessId signer, std::string_view message) const;

  // Anyone may verify anyone's signature. Pure recomputation, no cache.
  bool verify(std::string_view message, const Signature& sig) const;

  // verify() through the process-lifetime VerifiedCache: a positive
  // verdict for this exact (signer, message, tag) is recorded and every
  // later call is a digest + set lookup. Negative verdicts are never
  // cached. Semantically identical to verify().
  bool verify_cached(std::string_view message, const Signature& sig) const;

  // One entry of a batch verification.
  struct VerifyEntry {
    std::string_view message;
    const Signature* sig = nullptr;
    bool ok = false;  // out
  };

  // Verifies every entry (through the cache), sharing the message-digest
  // work across entries that sign identical message bytes. Returns the
  // number of valid entries; each entry's verdict lands in `ok`.
  std::size_t verify_all(std::span<VerifyEntry> entries) const;

  int n() const { return options_.n; }
  const VerifiedCache& cache() const { return cache_; }

 private:
  Digest tag(runtime::ProcessId signer, std::string_view message) const;
  // Cached verify with the message's SHA-256 precomputed by the caller.
  // PRIVATE contract, asserted in debug builds: message_digest must be
  // exactly Sha256::hash(message). The cache key uses the digest but the
  // fallback HMAC uses the message bytes, so a mismatched pair would
  // poison the cache for the message that really owns that digest.
  bool verify_with_digest(std::string_view message,
                          const Digest& message_digest,
                          const Signature& sig) const;

  Options options_;
  std::vector<std::string> keys_;            // index by pid; [0] unused
  std::vector<HmacSchedule> schedules_;      // precomputed per key
  mutable VerifiedCache cache_;
};

class ForgeryAttempt : public std::logic_error {
 public:
  explicit ForgeryAttempt(const std::string& what) : std::logic_error(what) {}
};

}  // namespace swsig::crypto
